#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "core/protocols.hpp"
#include "core/runcontrol.hpp"
#include "core/runlevel.hpp"
#include "core/scheduler.hpp"
#include "helpers.hpp"

namespace pia {
namespace {

using testing::TransferReceiver;
using testing::TransferSender;

TEST(SwitchCondition, LeafEvaluation) {
  const auto cond = SwitchCondition::at_least("a", ticks(50));
  const auto times = [](const std::string&) { return ticks(49); };
  EXPECT_FALSE(cond.eval(times));
  const auto later = [](const std::string&) { return ticks(50); };
  EXPECT_TRUE(cond.eval(later));
}

TEST(SwitchCondition, ConjunctsAndDisjuncts) {
  const auto cond = SwitchCondition::disj(
      SwitchCondition::conj(SwitchCondition::at_least("a", ticks(10)),
                            SwitchCondition::at_least("b", ticks(20))),
      SwitchCondition::at_least("c", ticks(100)));
  auto view = [](VirtualTime a, VirtualTime b, VirtualTime c) {
    return [=](const std::string& name) {
      if (name == "a") return a;
      if (name == "b") return b;
      return c;
    };
  };
  EXPECT_FALSE(cond.eval(view(ticks(10), ticks(19), ticks(99))));
  EXPECT_TRUE(cond.eval(view(ticks(10), ticks(20), ticks(0))));
  EXPECT_TRUE(cond.eval(view(ticks(0), ticks(0), ticks(100))));
}

TEST(SwitchCondition, ReferencedComponents) {
  const auto cond = SwitchCondition::conj(
      SwitchCondition::at_least("x", ticks(1)),
      SwitchCondition::at_least("y", ticks(2)));
  const auto refs = cond.referenced_components();
  EXPECT_EQ(refs.size(), 2u);
}

TEST(RunControl, ParsesPaperExample) {
  RunControlParser parser;
  const auto sp = parser.parse_statement(
      "when I2CComponent.time >= 67: I2CComponent -> hardwareLevel, "
      "VidCamComponent -> byteLevel");
  EXPECT_EQ(sp.actions.size(), 2u);
  EXPECT_EQ(sp.actions[0].component, "I2CComponent");
  EXPECT_EQ(sp.actions[0].level.name, "hardwareLevel");
  EXPECT_EQ(sp.actions[1].level.name, "byteLevel");
  const auto times = [](const std::string&) { return ticks(67); };
  EXPECT_TRUE(sp.condition.eval(times));
}

TEST(RunControl, ParsesCompoundConditions) {
  RunControlParser parser;
  const auto sp = parser.parse_statement(
      "when (A.time >= 5 && B.time >= 6) || C.time >= 7: A -> packetLevel");
  EXPECT_EQ(sp.condition.referenced_components().size(), 3u);
}

TEST(RunControl, ScriptWithCommentsAndContinuations) {
  RunControlParser parser;
  const auto sps = parser.parse(
      "# detail schedule for the demo\n"
      "when A.time >= 10: A -> wordLevel\n"
      "when B.time >= 20: B -> packetLevel,\n"
      "                   A -> packetLevel  # drop detail together\n"
      "\n"
      "when C.time >= 30: C -> transactionLevel\n");
  ASSERT_EQ(sps.size(), 3u);
  EXPECT_EQ(sps[1].actions.size(), 2u);
}

TEST(RunControl, SyntaxErrorsAreDiagnosed) {
  RunControlParser parser;
  EXPECT_THROW(parser.parse_statement("when : A -> wordLevel"), Error);
  EXPECT_THROW(parser.parse_statement("when A.time >= x: A -> wordLevel"),
               Error);
  EXPECT_THROW(parser.parse_statement("when A.time >= 5 A -> wordLevel"),
               Error);
  EXPECT_THROW(parser.parse_statement("when A.time >= 5: A -> bogusLevel"),
               Error);
  EXPECT_THROW(parser.parse_statement("when A.space >= 5: A -> wordLevel"),
               Error);
}

// --- protocol library ------------------------------------------------------

class ProtocolRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::string, std::size_t>> {};

TEST_P(ProtocolRoundTrip, EncodeDecode) {
  const auto& [level_name, size] = GetParam();
  const RunLevel level{level_name,
                       level_name == "hardwareLevel" ? 3
                       : level_name == "wordLevel"   ? 2
                       : level_name == "packetLevel" ? 1
                                                     : 0};
  Rng rng(size + 1);
  Bytes payload(size);
  for (auto& b : payload) b = static_cast<std::byte>(rng.below(256));

  TransferEncoder enc;
  TransferDecoder dec;
  std::optional<Bytes> result;
  const auto emissions = enc.encode(payload, level);
  EXPECT_EQ(emissions.size(), enc.event_count(size, level));
  for (const auto& emission : emissions) {
    EXPECT_FALSE(result.has_value()) << "payload completed early";
    result = dec.feed(emission.value);
  }
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, payload);
  EXPECT_FALSE(dec.mid_transfer());
}

INSTANTIATE_TEST_SUITE_P(
    LevelsAndSizes, ProtocolRoundTrip,
    ::testing::Combine(
        ::testing::Values("transactionLevel", "packetLevel", "wordLevel",
                          "hardwareLevel"),
        ::testing::Values(std::size_t{1}, std::size_t{3}, std::size_t{4},
                          std::size_t{1023}, std::size_t{1024},
                          std::size_t{1025}, std::size_t{5000})));

TEST(Protocol, EventCountsMatchPaperIntuition) {
  // Dropping detail reduces event count by orders of magnitude — the whole
  // point of runlevels (paper §2, Table 1).
  TransferEncoder enc;
  const std::size_t page = 66 * 1024;  // the paper's 66 KB page
  const auto words = enc.event_count(page, runlevels::kWord);
  const auto packets = enc.event_count(page, runlevels::kPacket);
  const auto transactions = enc.event_count(page, runlevels::kTransaction);
  EXPECT_EQ(packets, 66u);
  EXPECT_EQ(words, 1u + page / 4);
  EXPECT_EQ(transactions, 1u);
  EXPECT_GT(words, 100u * packets);
}

TEST(Protocol, DefaultTimingKeepsDurationConsistentAcrossLevels) {
  // The default profile models the SAME physical link at every level: a
  // 4-byte word takes 4 byte periods, a 1 KB packet takes 1024, so dropping
  // detail changes the event count by orders of magnitude while the modeled
  // transfer duration stays within a few percent.
  TransferEncoder enc;
  const std::size_t n = 64 * 1024;
  const auto hw = enc.duration(n, runlevels::kHardware).ticks();
  const auto word = enc.duration(n, runlevels::kWord).ticks();
  const auto packet = enc.duration(n, runlevels::kPacket).ticks();
  EXPECT_NEAR(static_cast<double>(word) / static_cast<double>(hw), 1.0, 0.05);
  EXPECT_NEAR(static_cast<double>(packet) / static_cast<double>(hw), 1.0,
              0.05);
}

TEST(Protocol, UniformProfileDurationScalesWithUnitCount) {
  // With a uniform per-unit cost, more detail means more units and thus a
  // longer modeled duration.
  TransferEncoder enc{TimingProfile::uniform(ticks(10))};
  EXPECT_GT(enc.duration(4096, runlevels::kHardware),
            enc.duration(4096, runlevels::kWord));
  EXPECT_GT(enc.duration(4096, runlevels::kWord),
            enc.duration(4096, runlevels::kPacket));
  EXPECT_GT(enc.duration(4096, runlevels::kPacket),
            enc.duration(4096, runlevels::kTransaction));
}

TEST(Protocol, MidTransferDetection) {
  TransferEncoder enc;
  TransferDecoder dec;
  const Bytes payload = to_bytes("mid transfer safety");
  const auto emissions = enc.encode(payload, runlevels::kWord);
  dec.feed(emissions[0].value);
  EXPECT_TRUE(dec.mid_transfer());
  dec.reset();
  EXPECT_FALSE(dec.mid_transfer());
}

TEST(Protocol, DecoderStateSurvivesCheckpoint) {
  TransferEncoder enc;
  TransferDecoder dec;
  const Bytes payload = to_bytes("checkpointable decoder state!");
  const auto emissions = enc.encode(payload, runlevels::kWord);
  // Feed half, checkpoint, feed rest on a restored copy.
  const std::size_t half = emissions.size() / 2;
  for (std::size_t i = 0; i < half; ++i) dec.feed(emissions[i].value);
  serial::OutArchive ar;
  dec.save(ar);

  TransferDecoder restored;
  serial::InArchive in(ar.bytes());
  restored.restore(in);
  std::optional<Bytes> result;
  for (std::size_t i = half; i < emissions.size(); ++i)
    result = restored.feed(emissions[i].value);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, payload);
}

TEST(Protocol, GarbageStreamThrows) {
  TransferDecoder dec;
  EXPECT_THROW(dec.feed(Value{std::uint64_t{12345}}), Error);  // no header
  dec.reset();
  EXPECT_THROW(dec.feed(Value::token("bogus")), Error);
}

// --- end-to-end runlevel switching in a simulation --------------------------

TEST(RunLevelSwitch, SwitchpointChangesDetailBetweenTransfers) {
  Scheduler sched;
  auto& sender = sched.emplace<TransferSender>(
      "tx", to_bytes(std::string(256, 'x')), TimingProfile{},
      runlevels::kWord);
  auto& receiver = sched.emplace<TransferReceiver>("rx");
  sched.connect(sender.id(), "out", receiver.id(), "in");

  // After the first transfer completes, drop to packet level.
  sched.add_switchpoint(Switchpoint{
      .condition = SwitchCondition::at_least("tx", ticks(1)),
      .actions = {{"tx", runlevels::kPacket}},
      .fired = false});

  sched.init();
  sched.run();
  ASSERT_EQ(receiver.payloads.size(), 1u);
  const auto events_word_level = sched.stats().events_dispatched;

  // Second transfer at the (switched) packet level: far fewer events.
  sender.trigger();
  sched.run();
  ASSERT_EQ(receiver.payloads.size(), 2u);
  const auto events_packet_level =
      sched.stats().events_dispatched - events_word_level;
  EXPECT_LT(events_packet_level, events_word_level / 4);
  EXPECT_EQ(sender.runlevel().name, "packetLevel");
  EXPECT_EQ(sched.stats().runlevel_switches, 1u);
}

TEST(RunLevelSwitch, UnsafeComponentDefersSwitch) {
  // A receiver mid-transfer refuses the switch until the transfer ends.
  Scheduler sched;
  auto& sender = sched.emplace<TransferSender>(
      "tx", to_bytes(std::string(64, 'y')), TimingProfile{},
      runlevels::kWord);
  auto& receiver = sched.emplace<TransferReceiver>("rx");
  sched.connect(sender.id(), "out", receiver.id(), "in");
  sched.init();

  // Run the sender's burst but only part of the delivery stream.
  sched.run(4);
  ASSERT_TRUE(receiver.payloads.empty());
  sched.set_runlevel("rx", runlevels::kPacket);
  // The receiver is mid-transfer (unsafe): the switch must be deferred.
  if (!receiver.at_safe_point()) {
    EXPECT_EQ(receiver.runlevel().name, "default");
  }
  sched.run();
  // Once the transfer drained, the switch landed.
  EXPECT_EQ(receiver.runlevel().name, "packetLevel");
  EXPECT_EQ(receiver.payloads.size(), 1u);
}

TEST(RunLevelSwitch, ImperativeRequestFromComponentCode) {
  class SelfSwitcher : public Component {
   public:
    SelfSwitcher() : Component("self") {
      set_initial_runlevel(runlevels::kWord);
    }
    void on_init() override { wake_after(ticks(5)); }
    void on_wake() override { request_runlevel(runlevels::kTransaction); }
    void on_receive(PortIndex, const Value&) override {}
    void on_runlevel(const RunLevel& prev) override { previous = prev.name; }
    std::string previous;
  };
  Scheduler sched;
  auto& c = sched.emplace<SelfSwitcher>();
  sched.init();
  sched.run();
  EXPECT_EQ(c.runlevel().name, "transactionLevel");
  EXPECT_EQ(c.previous, "wordLevel");
}

TEST(RunLevelSwitch, SwitchpointValidationCatchesTypos) {
  Scheduler sched;
  sched.emplace<TransferReceiver>("rx");
  EXPECT_THROW(sched.add_switchpoint(Switchpoint{
                   .condition = SwitchCondition::at_least("ghost", ticks(1)),
                   .actions = {{"rx", runlevels::kPacket}},
                   .fired = false}),
               Error);
  EXPECT_THROW(sched.add_switchpoint(Switchpoint{
                   .condition = SwitchCondition::at_least("rx", ticks(1)),
                   .actions = {{"ghost", runlevels::kPacket}},
                   .fired = false}),
               Error);
}

}  // namespace
}  // namespace pia
