#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

#include "base/bytes.hpp"
#include "base/error.hpp"
#include "base/ids.hpp"
#include "base/rng.hpp"
#include "base/time.hpp"

namespace pia {
namespace {

TEST(Ids, DefaultIsInvalid) {
  ComponentId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, ComponentId::invalid());
}

TEST(Ids, DistinctTypesDoNotCompare) {
  // Compile-time property: ComponentId and NetId are different types.
  static_assert(!std::is_convertible_v<ComponentId, NetId>);
  static_assert(!std::is_convertible_v<NetId, ComponentId>);
}

TEST(Ids, OrderingAndHash) {
  ComponentId a{1}, b{2};
  EXPECT_LT(a, b);
  std::unordered_set<ComponentId> set{a, b};
  EXPECT_EQ(set.size(), 2u);
}

TEST(Ids, StreamFormat) {
  std::ostringstream os;
  os << NetId{7} << " " << SubsystemId::invalid();
  EXPECT_EQ(os.str(), "net#7 ss#<invalid>");
}

TEST(VirtualTimeTest, ArithmeticAndOrdering) {
  EXPECT_EQ(ticks(3) + ticks(4), ticks(7));
  EXPECT_LT(ticks(3), ticks(4));
  EXPECT_EQ(min(ticks(3), ticks(9)), ticks(3));
  EXPECT_EQ(max(ticks(3), ticks(9)), ticks(9));
}

TEST(VirtualTimeTest, InfinityAbsorbs) {
  EXPECT_TRUE(VirtualTime::infinity().is_infinite());
  EXPECT_TRUE((VirtualTime::infinity() + ticks(5)).is_infinite());
  EXPECT_TRUE((ticks(5) + VirtualTime::infinity()).is_infinite());
  EXPECT_LT(ticks(1'000'000'000), VirtualTime::infinity());
}

TEST(VirtualTimeTest, StringForms) {
  EXPECT_EQ(ticks(42).str(), "42");
  EXPECT_EQ(VirtualTime::infinity().str(), "inf");
}

TEST(ErrorTest, KindIsPreserved) {
  try {
    raise(ErrorKind::kTopology, "bad graph");
    FAIL() << "raise did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kTopology);
    EXPECT_NE(std::string(e.what()).find("bad graph"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("topology"), std::string::npos);
  }
}

TEST(ErrorTest, CheckMacroThrows) {
  EXPECT_NO_THROW(PIA_CHECK(1 + 1 == 2, "math"));
  EXPECT_THROW(PIA_CHECK(1 + 1 == 3, "math"), Error);
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const auto r = rng.range(-5, 5);
    EXPECT_GE(r, -5);
    EXPECT_LE(r, 5);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(BytesTest, StringRoundTrip) {
  const Bytes b = to_bytes("hello pia");
  EXPECT_EQ(to_string(b), "hello pia");
  EXPECT_EQ(b.size(), 9u);
}

TEST(BytesTest, FnvDistinguishesContent) {
  EXPECT_NE(fnv1a(to_bytes("a")), fnv1a(to_bytes("b")));
  EXPECT_EQ(fnv1a(to_bytes("abc")), fnv1a(to_bytes("abc")));
}

}  // namespace
}  // namespace pia
