#include <gtest/gtest.h>

#include "core/assertional.hpp"
#include "core/protocols.hpp"

namespace pia {
namespace {

/// Re-derive the library's word-level receive protocol as a rule table:
/// the paper's use case for assertional methods is describing a detail
/// level the library doesn't have — here we describe one it does have and
/// check the behaviours coincide.
AssertionalMethod word_level_receiver() {
  constexpr std::uint64_t kMagic = 0x5049414C00000000ULL;
  constexpr std::uint64_t kMask = 0xFFFFFFFF00000000ULL;
  AssertionalMethod method;
  method.set_strict(true);

  // reg == 0: idle, expecting the header word carrying the length.
  method.add_rule(
      "header",
      [](const auto& state, const Value& v) {
        return state.reg == 0 && v.kind() == Value::Kind::kWord &&
               (v.as_word() & kMask) == kMagic;
      },
      [](const auto&, const Value& v) {
        AssertionalMethod::Result result;
        result.set_reg =
            static_cast<std::int64_t>(v.as_word() & 0xFFFFFFFFULL);
        result.delay = ticks(16'000);
        return result;
      });

  // reg > 0: collecting data words; completes when reg bytes gathered.
  method.add_rule(
      "data",
      [](const auto& state, const Value& v) {
        return state.reg > 0 && v.kind() == Value::Kind::kWord;
      },
      [](const auto& state, const Value& v) {
        AssertionalMethod::Result result;
        const auto remaining = static_cast<std::uint64_t>(state.reg);
        const std::size_t take = remaining < 4 ? remaining : 4;
        for (std::size_t k = 0; k < take; ++k)
          result.append.push_back(
              static_cast<std::byte>(v.as_word() >> (8 * k)));
        result.set_reg = state.reg - static_cast<std::int64_t>(take);
        result.delay = ticks(16'000);
        result.complete = (*result.set_reg == 0);
        return result;
      });
  return method;
}

TEST(Assertional, ReDerivesWordLevelProtocol) {
  const Bytes payload = to_bytes("assertional methods describe levels");
  TransferEncoder encoder;
  AssertionalMethod method = word_level_receiver();

  std::optional<Bytes> completed;
  for (const auto& emission : encoder.encode(payload, runlevels::kWord)) {
    auto step = method.feed(emission.value);
    ASSERT_NE(step.fired_rule, nullptr);
    if (step.completed) completed = step.completed;
  }
  ASSERT_TRUE(completed.has_value());
  EXPECT_EQ(*completed, payload);
  EXPECT_TRUE(method.state().accumulator.empty());
}

TEST(Assertional, RulesFireInDeclarationOrder) {
  AssertionalMethod method;
  method.add_rule(
      "first", [](const auto&, const Value&) { return true; },
      [](const auto&, const Value&) {
        AssertionalMethod::Result r;
        r.set_reg = 1;
        return r;
      });
  method.add_rule(
      "second", [](const auto&, const Value&) { return true; },
      [](const auto&, const Value&) {
        AssertionalMethod::Result r;
        r.set_reg = 2;
        return r;
      });
  const auto step = method.feed(Value{std::uint64_t{0}});
  EXPECT_EQ(*step.fired_rule, "first");
  EXPECT_EQ(method.state().reg, 1);
}

TEST(Assertional, StrictModeRejectsUnmatchedStimulus) {
  AssertionalMethod method = word_level_receiver();
  EXPECT_THROW(method.feed(Value::token("garbage")), Error);

  AssertionalMethod lax;
  lax.set_strict(false);
  const auto step = lax.feed(Value::token("garbage"));
  EXPECT_EQ(step.fired_rule, nullptr);  // silently ignored
}

TEST(Assertional, StateCheckpointRoundTrip) {
  TransferEncoder encoder;
  const Bytes payload = to_bytes("checkpoint me halfway through");
  const auto emissions = encoder.encode(payload, runlevels::kWord);

  AssertionalMethod method = word_level_receiver();
  const std::size_t half = emissions.size() / 2;
  for (std::size_t i = 0; i < half; ++i)
    (void)method.feed(emissions[i].value);

  serial::OutArchive ar;
  method.save(ar);
  AssertionalMethod restored = word_level_receiver();
  serial::InArchive in(ar.bytes());
  restored.restore(in);

  std::optional<Bytes> completed;
  for (std::size_t i = half; i < emissions.size(); ++i) {
    auto step = restored.feed(emissions[i].value);
    if (step.completed) completed = step.completed;
  }
  ASSERT_TRUE(completed.has_value());
  EXPECT_EQ(*completed, payload);
}

}  // namespace
}  // namespace pia
