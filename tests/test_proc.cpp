#include <gtest/gtest.h>

#include "core/simulation.hpp"
#include "proc/dma.hpp"
#include "proc/interrupt.hpp"
#include "proc/memory.hpp"
#include "proc/software.hpp"
#include "proc/timing.hpp"
#include "helpers.hpp"

namespace pia::proc {
namespace {

TEST(Timing, CyclesToTimeRoundsUp) {
  ProcessorProfile p;
  p.clock_hz = 1'000'000'000;  // 1 GHz: 1 cycle = 1 ns
  EXPECT_EQ(p.time_for_cycles(7), ticks(7));
  p.clock_hz = 333'000'000;
  EXPECT_EQ(p.time_for_cycles(1), ticks(4));  // 3.003 ns rounds up
}

TEST(Timing, BlockMixAccumulates) {
  BasicBlockTimer timer(ProcessorProfile{.clock_hz = 1'000'000'000,
                                         .alu_cycles = 1,
                                         .load_cycles = 2,
                                         .store_cycles = 3});
  timer.block(/*alu=*/10, /*loads=*/5, /*stores=*/2);
  EXPECT_EQ(timer.take(), ticks(10 + 10 + 6));
  EXPECT_EQ(timer.take(), ticks(0));  // drained
  EXPECT_EQ(timer.total_cycles(), 26u);
}

TEST(Timing, ProfilesDiffer) {
  const auto slow = ProcessorProfile::embedded_33mhz();
  const auto fast = ProcessorProfile::pentium_pro_200();
  EXPECT_GT(slow.time_for_cycles(1000), fast.time_for_cycles(1000));
}

TEST(MemoryModel, ReadWriteAndBounds) {
  Memory mem(64);
  mem.write(10, 0xAB, ticks(1));
  EXPECT_EQ(mem.read(10, ticks(2)), 0xAB);
  mem.write_u32(20, 0xDEADBEEF, ticks(3));
  EXPECT_EQ(mem.read_u32(20, ticks(4)), 0xDEADBEEFu);
  EXPECT_THROW(mem.read(64, ticks(5)), Error);
  EXPECT_THROW(mem.write(1000, 0, ticks(5)), Error);
}

TEST(MemoryModel, DmaBurst) {
  Memory mem(1024);
  mem.dma_write(100, to_bytes("burst data"), ticks(1));
  EXPECT_EQ(to_string(mem.dma_read(100, 10)), "burst data");
  EXPECT_THROW(mem.dma_write(1020, Bytes(8), ticks(1)), Error);
}

TEST(MemoryModel, OptimisticConflictDetected) {
  Memory mem(64);
  // Mainline reads addr 5 at t=100.
  mem.write(5, 1, ticks(50));
  EXPECT_EQ(mem.read(5, ticks(100)), 1);
  // An interrupt handler that logically ran at t=80 writes it: the mainline
  // used a stale value.
  std::uint32_t conflict_addr = 0;
  mem.set_conflict_handler(
      [&](std::uint32_t addr, VirtualTime, VirtualTime) {
        conflict_addr = addr;
      });
  mem.interrupt_write(5, 2, ticks(80));
  EXPECT_EQ(conflict_addr, 5u);
  EXPECT_EQ(mem.conflicts_detected(), 1u);
}

TEST(MemoryModel, SynchronousAddressSkipsDetection) {
  Memory mem(64);
  mem.mark_synchronous(5);
  EXPECT_EQ(mem.read(5, ticks(100)), 0);
  // Synchronous addresses are accessed under the receive discipline, so an
  // interrupt write is applied without the conflict machinery.
  mem.interrupt_write(5, 9, ticks(80));
  EXPECT_EQ(mem.read(5, ticks(101)), 9);
  EXPECT_EQ(mem.conflicts_detected(), 0u);
}

TEST(MemoryModel, NoConflictWhenHandlerIsLater) {
  Memory mem(64);
  EXPECT_EQ(mem.read(7, ticks(100)), 0);
  mem.interrupt_write(7, 3, ticks(150));  // handler after the read: fine
  EXPECT_EQ(mem.conflicts_detected(), 0u);
  EXPECT_EQ(mem.read(7, ticks(200)), 3);
}

TEST(MemoryModel, CheckpointRoundTrip) {
  Memory mem(128);
  mem.write(3, 0x77, ticks(10));
  mem.mark_synchronous(9);
  serial::OutArchive ar;
  mem.save(ar);

  Memory restored(128);
  serial::InArchive in(ar.bytes());
  restored.restore(in);
  EXPECT_EQ(restored.read(3, ticks(20)), 0x77);
  EXPECT_TRUE(restored.is_synchronous(9));
}

// ---------------------------------------------------------------------------
// SoftwareComponent
// ---------------------------------------------------------------------------

/// Software that polls a mailbox word and accumulates; interrupt handler
/// writes a flag the mainline reads — the paper's §2.1.1 scenario.
class Firmware : public SoftwareComponent {
 public:
  static constexpr std::uint32_t kFlagAddr = 0;
  static constexpr std::uint32_t kDataAddr = 8;

  explicit Firmware(std::string name)
      : SoftwareComponent(std::move(name),
                          ProcessorProfile{.clock_hz = 1'000'000'000}) {
    in_ = add_input("in");
    out_ = add_output("out");
    irq_ = add_irq_input("irq", [this](const Value& v, VirtualTime at) {
      // handler: store the payload and set the flag
      memory().interrupt_write(kDataAddr,
                               static_cast<std::uint8_t>(v.as_word()), at);
      memory().interrupt_write(kFlagAddr, 1, at);
      ++irqs_taken;
    });
  }

  void on_data(PortIndex, const Value& value) override {
    exec(/*alu=*/20, /*loads=*/4, /*stores=*/2);  // crunch the input
    const std::uint8_t flag = memory().read(kFlagAddr, local_time());
    std::uint64_t result = value.as_word() * 2;
    if (flag) {
      result += memory().read(kDataAddr, local_time());
      memory().write(kFlagAddr, 0, local_time());
    }
    exec(/*alu=*/5, /*loads=*/2, /*stores=*/1);
    send(out_, Value{result});
  }

  std::uint64_t irqs_taken = 0;
  PortIndex in_, out_, irq_;
};

TEST(Software, BasicBlockTimingAdvancesLocalTime) {
  Scheduler sched;
  auto& fw = sched.emplace<Firmware>("fw");
  auto& producer = sched.emplace<pia::testing::Producer>("p", 1, ticks(10), ticks(10));
  auto& sink = sched.emplace<pia::testing::Sink>("s");
  sched.connect(producer.id(), "out", fw.id(), "in");
  sched.connect(fw.id(), "out", sink.id(), "in");
  sched.init();
  sched.run();
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0], 0u);  // 0*2, no flag
  // 20 alu + 4*2 loads + 2*2 stores = 32 cycles, + 5 + 2*2 + 1*2 = 11
  // cycles @1GHz; the timed memory accesses add no extra cycles here.
  EXPECT_EQ(sink.times[0], ticks(10 + 32 + 11));
}

TEST(Software, InterruptHandlerRunsAtLogicalTime) {
  Scheduler sched;
  auto& fw = sched.emplace<Firmware>("fw");
  auto& producer = sched.emplace<pia::testing::Producer>("p", 1, ticks(10), ticks(500));
  auto& sink = sched.emplace<pia::testing::Sink>("s");
  sched.connect(producer.id(), "out", fw.id(), "in");
  sched.connect(fw.id(), "out", sink.id(), "in");
  sched.init();
  // Interrupt with payload 7 at t=100, long before the data at t=500.
  sched.inject(Event{.time = ticks(100),
                     .target = fw.id(),
                     .port = fw.irq_,
                     .kind = EventKind::kDeliver,
                     .value = Value{std::uint64_t{7}}});
  sched.run();
  EXPECT_EQ(fw.irqs_taken, 1u);
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0], 7u);  // 0*2 + data(7), flag consumed
}

TEST(Software, OptimisticViolationRewindsAndMarks) {
  // The headline §2.1.1 mechanism end to end: mainline reads the flag
  // early, a past-time interrupt arrives, the simulation rewinds, marks the
  // address synchronous and re-executes conservatively.
  Simulation sim;
  auto& fw = sim.emplace<Firmware>("fw");
  auto& producer = sim.emplace<pia::testing::Producer>("p", 3, ticks(100), ticks(100));
  auto& sink = sim.emplace<pia::testing::Sink>("s");
  sim.connect(producer, "out", fw, "in");
  sim.connect(fw, "out", sink, "in");

  fw.memory().set_conflict_handler([&](std::uint32_t addr, VirtualTime,
                                       VirtualTime) {
    fw.memory().mark_synchronous(addr);
  });

  sim.init();
  sim.checkpoints().request();  // baseline image
  sim.run();
  ASSERT_EQ(sink.received.size(), 3u);

  // Now deliver an interrupt whose logical time is in the firmware's past.
  const VirtualTime past = ticks(150);
  ASSERT_LT(past, fw.local_time());
  fw.memory().read(Firmware::kFlagAddr, fw.local_time());  // recent read
  sim.scheduler().inject(Event{.time = fw.local_time(),
                               .target = fw.id(),
                               .port = fw.irq_,
                               .kind = EventKind::kDeliver,
                               .value = Value{std::uint64_t{9}}});
  sim.run();
  // Interrupt taken; flag address now permanently synchronous if a conflict
  // occurred.  At minimum the handler ran and no exception escaped.
  EXPECT_GE(fw.irqs_taken, 1u);
}

TEST(InterruptControllerTest, PriorityAndMasking) {
  Scheduler sched;
  auto& pic = sched.emplace<InterruptController>("pic", 4, ticks(5));
  auto& cpu = sched.emplace<pia::testing::Sink>("cpu");
  // cpu sink receives Packets; adapt via a decoder component.
  class CpuSink : public Component {
   public:
    CpuSink() : Component("cpusink") { in_ = add_input("in"); }
    void on_receive(PortIndex, const Value& v) override {
      auto d = InterruptController::decode_irq(v);
      taken.push_back({d.line, d.payload});
    }
    std::vector<std::pair<std::uint32_t, std::uint64_t>> taken;
    PortIndex in_;
  };
  auto& cpusink = sched.emplace<CpuSink>();
  sched.connect(pic.id(), "cpu", cpusink.id(), "in");
  (void)cpu;

  sched.init();
  // Raise line 2 while masked: latched, not delivered.
  sched.inject(Event{.time = ticks(10), .target = pic.id(),
                     .port = pic.find_port("irq2"),
                     .kind = EventKind::kDeliver,
                     .value = Value{std::uint64_t{22}}});
  sched.run();
  EXPECT_TRUE(cpusink.taken.empty());
  EXPECT_TRUE(pic.pending(2));

  // Enable line 2: the latched request delivers.
  sched.inject(Event{.time = ticks(200), .target = pic.id(),
                     .port = pic.find_port("ctl"),
                     .kind = EventKind::kDeliver,
                     .value = InterruptController::ctl_enable(2)});
  sched.run();
  ASSERT_EQ(cpusink.taken.size(), 1u);
  EXPECT_EQ(cpusink.taken[0], (std::pair<std::uint32_t, std::uint64_t>{2, 22}));

  // While line 2 is in service, a new request waits until acknowledged.
  sched.inject(Event{.time = ticks(300), .target = pic.id(),
                     .port = pic.find_port("irq2"),
                     .kind = EventKind::kDeliver,
                     .value = Value{std::uint64_t{23}}});
  sched.run();
  EXPECT_EQ(cpusink.taken.size(), 1u);
  sched.inject(Event{.time = ticks(400), .target = pic.id(),
                     .port = pic.find_port("ctl"),
                     .kind = EventKind::kDeliver,
                     .value = InterruptController::ctl_ack(2)});
  sched.run();
  ASSERT_EQ(cpusink.taken.size(), 2u);
  EXPECT_EQ(cpusink.taken[1].second, 23u);
}

TEST(InterruptControllerTest, CheckpointRoundTrip) {
  Scheduler sched;
  auto& pic = sched.emplace<InterruptController>("pic", 2);
  class PacketSink : public Component {
   public:
    PacketSink() : Component("psink") { in_ = add_input("in"); }
    void on_receive(PortIndex, const Value&) override {}
    PortIndex in_;
  };
  auto& psink = sched.emplace<PacketSink>();
  sched.connect(pic.id(), "cpu", psink.id(), "in");
  sched.init();
  sched.inject(Event{.time = ticks(10), .target = pic.id(),
                     .port = pic.find_port("irq1"),
                     .kind = EventKind::kDeliver,
                     .value = Value{std::uint64_t{5}}});
  sched.run();
  ASSERT_TRUE(pic.pending(1));
  const Bytes image = pic.save_image();
  sched.inject(Event{.time = ticks(20), .target = pic.id(),
                     .port = pic.find_port("ctl"),
                     .kind = EventKind::kDeliver,
                     .value = InterruptController::ctl_enable(1)});
  sched.run();
  EXPECT_FALSE(pic.pending(1));
  pic.restore_image(image);
  EXPECT_TRUE(pic.pending(1));
  EXPECT_FALSE(pic.enabled(1));
}

TEST(Dma, TransfersPacketsIntoSharedMemory) {
  Scheduler sched;
  auto& fw = sched.emplace<Firmware>("fw");
  auto& dma = sched.emplace<DmaEngine>("dma", fw.memory());
  auto& irq_sink = sched.emplace<pia::testing::Sink>("irqs");
  sched.connect(dma.id(), "irq", irq_sink.id(), "in");

  class Dev : public Component {
   public:
    Dev() : Component("dev") { out_ = add_output("out"); }
    void on_init() override { wake_at(ticks(100)); }
    void on_wake() override {
      if (sent_ >= 3) return;
      send(out_, Value{to_bytes("pkt" + std::to_string(sent_))});
      ++sent_;
      wake_after(ticks(100));
    }
    void on_receive(PortIndex, const Value&) override {}
    int sent_ = 0;
    PortIndex out_;
  };
  auto& dev = sched.emplace<Dev>();
  sched.connect(dev.id(), "out", dma.id(), "dev");

  sched.init();
  // Program the engine: base 1024, 2 buffers of 256 bytes, enable.
  for (const Value& ctl :
       {DmaEngine::ctl_base(1024), DmaEngine::ctl_count(2),
        DmaEngine::ctl_size(256), DmaEngine::ctl_enable()}) {
    sched.inject(Event{.time = ticks(1), .target = dma.id(),
                       .port = dma.find_port("ctl"),
                       .kind = EventKind::kDeliver, .value = ctl});
  }
  sched.run();

  EXPECT_EQ(dma.transfers_completed(), 3u);
  EXPECT_EQ(dma.bytes_transferred(), 12u);
  ASSERT_EQ(irq_sink.received.size(), 3u);
  // First completion: buffer 0 at base 1024, length 4.
  const auto first = DmaEngine::decode_completion(Value{irq_sink.received[0]});
  EXPECT_EQ(first.address, 1024u);
  EXPECT_EQ(first.length, 4u);
  EXPECT_EQ(to_string(fw.memory().dma_read(1024, 4)), "pkt2");  // ring wrapped
  EXPECT_EQ(to_string(fw.memory().dma_read(1024 + 256, 4)), "pkt1");
}

TEST(Dma, DropsWhenDisabled) {
  Scheduler sched;
  auto& fw = sched.emplace<Firmware>("fw");
  auto& dma = sched.emplace<DmaEngine>("dma", fw.memory());
  sched.init();
  sched.inject(Event{.time = ticks(10), .target = dma.id(),
                     .port = dma.find_port("dev"),
                     .kind = EventKind::kDeliver,
                     .value = Value{to_bytes("lost")}});
  sched.run();
  EXPECT_EQ(dma.transfers_completed(), 0u);
  EXPECT_EQ(dma.drops(), 1u);
}

}  // namespace
}  // namespace pia::proc
