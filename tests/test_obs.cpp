#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "dist_helpers.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pia::obs {
namespace {

// Minimal recursive-descent JSON checker: accepts exactly the grammar the
// exporters emit (objects, arrays, strings with escapes, numbers, literals).
// Returns true iff `text` is one complete JSON value.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek('}')) return true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek('}')) return true;
      if (!expect(',')) return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek(']')) return true;
    for (;;) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek(']')) return true;
      if (!expect(',')) return false;
    }
  }
  bool string() {
    if (pos_ >= s_.size() || s_[pos_] != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    return expect('"');
  }
  bool number() {
    const std::size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool literal(const char* word) {
    const std::string w(word);
    if (s_.compare(pos_, w.size(), w) != 0) return false;
    pos_ += w.size();
    return true;
  }
  bool peek(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool expect(char c) { return peek(c); }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\n' || s_[pos_] == '\t' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// Restores the capture flag so tests cannot leak tracing into each other.
struct TraceFlagGuard {
  bool saved = trace_enabled();
  ~TraceFlagGuard() { set_trace_enabled(saved); }
};

TEST(TraceBuffer, RecordsInOrder) {
  TraceBuffer buffer("t");
  buffer.record(TraceKind::kDispatch, ticks(10), 1, 2);
  buffer.record(TraceKind::kGrant, ticks(20), 3);
  const auto records = buffer.snapshot();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].kind, TraceKind::kDispatch);
  EXPECT_EQ(records[0].virtual_time, 10);
  EXPECT_EQ(records[0].arg0, 1u);
  EXPECT_EQ(records[0].arg1, 2u);
  EXPECT_EQ(records[1].kind, TraceKind::kGrant);
  EXPECT_LE(records[0].wall_ns, records[1].wall_ns);
}

TEST(TraceBuffer, RingWrapsAndCountsDrops) {
  TraceBuffer buffer("t", /*capacity=*/4);
  for (std::uint64_t i = 0; i < 10; ++i)
    buffer.record(TraceKind::kDispatch, ticks(static_cast<std::int64_t>(i)),
                  i);
  EXPECT_EQ(buffer.size(), 4u);
  EXPECT_EQ(buffer.total_recorded(), 10u);
  EXPECT_EQ(buffer.dropped(), 6u);
  const auto records = buffer.snapshot();
  ASSERT_EQ(records.size(), 4u);
  // Oldest-first snapshot of the surviving tail: 6,7,8,9.
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(records[i].arg0, 6 + i);
}

TEST(TraceBuffer, ClearResets) {
  TraceBuffer buffer("t", 4);
  buffer.record(TraceKind::kStall, ticks(1));
  buffer.clear();
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(buffer.total_recorded(), 0u);
  EXPECT_TRUE(buffer.snapshot().empty());
}

TEST(TraceFlag, MacroIsGatedOnProcessFlag) {
  TraceFlagGuard guard;
  TraceBuffer buffer("t");
  set_trace_enabled(false);
  PIA_OBS_TRACE(buffer, TraceKind::kDispatch, ticks(1));
  EXPECT_EQ(buffer.size(), 0u);
  set_trace_enabled(true);
  PIA_OBS_TRACE(buffer, TraceKind::kDispatch, ticks(2));
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(TraceFlag, EnvKnobEnablesCapture) {
  TraceFlagGuard guard;
  ::setenv("PIA_TRACE", "1", 1);
  init_trace_from_env();
  EXPECT_TRUE(trace_enabled());
  ::setenv("PIA_TRACE", "0", 1);
  init_trace_from_env();
  EXPECT_FALSE(trace_enabled());
  ::unsetenv("PIA_TRACE");
}

TEST(JsonString, EscapesControlAndQuote) {
  std::string out;
  json_append_string(out, "a\"b\\c\n\t\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\\t\\u0001\"");
  EXPECT_TRUE(JsonChecker(out).valid());
}

TEST(ChromeTrace, EmitsValidJsonWithTracksAndKinds) {
  TraceBuffer alpha("alpha");
  TraceBuffer beta("beta");
  alpha.record(TraceKind::kDispatch, ticks(10), 7, 1);
  alpha.record(TraceKind::kRollback, ticks(5), 1);
  beta.record(TraceKind::kMark, VirtualTime::infinity(), 42, 1);

  std::ostringstream os;
  write_chrome_trace(os, {&alpha, &beta});
  const std::string json = os.str();

  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"alpha\""), std::string::npos);
  EXPECT_NE(json.find("\"beta\""), std::string::npos);
  EXPECT_NE(json.find("\"dispatch\""), std::string::npos);
  EXPECT_NE(json.find("\"rollback\""), std::string::npos);
  EXPECT_NE(json.find("\"mark\""), std::string::npos);
}

TEST(Metrics, SetGetAndTypes) {
  MetricsRegistry registry;
  registry.set("sub/a", "events", std::uint64_t{7});
  registry.set("sub/a", "skew", std::int64_t{-3});
  registry.set("sub/a", "ratio", 1.5);
  EXPECT_TRUE(registry.has_scope("sub/a"));
  EXPECT_FALSE(registry.has_scope("sub/b"));
  EXPECT_EQ(std::get<std::uint64_t>(registry.get("sub/a", "events")), 7u);
  EXPECT_EQ(std::get<std::int64_t>(registry.get("sub/a", "skew")), -3);
  EXPECT_DOUBLE_EQ(std::get<double>(registry.get("sub/a", "ratio")), 1.5);
  // Absent counters read as zero.
  EXPECT_EQ(std::get<std::uint64_t>(registry.get("sub/a", "missing")), 0u);
}

TEST(Metrics, JsonIsValidAndDeterministic) {
  MetricsRegistry registry;
  registry.set("z", "late", std::uint64_t{1});
  registry.set("a", "early", std::uint64_t{2});
  registry.set("a", "quote\"d", std::uint64_t{3});
  const std::string json = registry.to_json();
  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  // Scope-sorted: "a" renders before "z".
  EXPECT_LT(json.find("\"a\""), json.find("\"z\""));
  EXPECT_EQ(json, registry.to_json());
}

TEST(ClusterObservability, ConservativeRunProducesProtocolRecords) {
  TraceFlagGuard guard;
  set_trace_enabled(true);
  dist::testing::SplitPipe pipe(10, dist::ChannelMode::kConservative);
  pipe.cluster.start_all();
  pipe.cluster.run_all();

  std::uint64_t dispatches = 0;
  std::uint64_t grants = 0;
  for (dist::Subsystem* s : pipe.cluster.all_subsystems())
    for (const TraceRecord& r : s->scheduler().trace().snapshot()) {
      dispatches += r.kind == TraceKind::kDispatch;
      grants += r.kind == TraceKind::kGrant;
    }
  EXPECT_GT(dispatches, 0u);
  EXPECT_GT(grants, 0u);

  // The metrics snapshot covers both subsystems and both channel endpoints.
  MetricsRegistry metrics = pipe.cluster.metrics();
  EXPECT_TRUE(metrics.has_scope("sub/ssA"));
  EXPECT_TRUE(metrics.has_scope("sub/ssB"));
  std::size_t chan_scopes = 0;
  for (dist::Subsystem* s : pipe.cluster.all_subsystems())
    chan_scopes += metrics.has_scope("chan/" + s->name() + "/0:ssA<->ssB");
  EXPECT_EQ(chan_scopes, 2u);
}

TEST(ClusterObservability, DuplicateSubsystemNamesGetOrdinalScopes) {
  // Scenario generators (scaleout shard farms) stamp out same-named
  // subsystems on different nodes; the cluster snapshot must keep their
  // scopes distinct instead of silently interleaving their counters.
  dist::NodeCluster cluster;
  dist::PiaNode& node_a = cluster.add_node("nodeA");
  dist::PiaNode& node_b = cluster.add_node("nodeB");
  node_a.add_subsystem("worker");
  node_b.add_subsystem("worker");
  node_b.add_subsystem("solo");
  MetricsRegistry metrics = cluster.metrics();
  EXPECT_TRUE(metrics.has_scope("sub/worker#0"));
  EXPECT_TRUE(metrics.has_scope("sub/worker#1"));
  EXPECT_FALSE(metrics.has_scope("sub/worker"));
  // Unique names keep their plain scope — the stable consumer interface.
  EXPECT_TRUE(metrics.has_scope("sub/solo"));
  EXPECT_FALSE(metrics.has_scope("sub/solo#0"));
}

TEST(ClusterObservability, CollidingManualCollectionIsRejected) {
  dist::NodeCluster cluster;
  dist::Subsystem& sub = cluster.add_node("node").add_subsystem("dup");
  MetricsRegistry registry;
  dist::collect_metrics(sub, registry);
  EXPECT_THROW(dist::collect_metrics(sub, registry), Error);
  MetricsRegistry tagged;
  dist::collect_metrics(sub, tagged, "dup#a");
  dist::collect_metrics(sub, tagged, "dup#b");
  EXPECT_TRUE(tagged.has_scope("sub/dup#a"));
  EXPECT_TRUE(tagged.has_scope("sub/dup#b"));
}

TEST(ClusterObservability, DisabledCaptureRecordsNothing) {
  TraceFlagGuard guard;
  set_trace_enabled(false);
  dist::testing::SplitPipe pipe(5, dist::ChannelMode::kConservative);
  pipe.cluster.start_all();
  pipe.cluster.run_all();
  for (dist::Subsystem* s : pipe.cluster.all_subsystems())
    EXPECT_EQ(s->scheduler().trace().total_recorded(), 0u);
}

}  // namespace
}  // namespace pia::obs
