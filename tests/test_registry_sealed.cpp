#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "core/scheduler.hpp"
#include "core/sealed.hpp"
#include "core/simulation.hpp"
#include "helpers.hpp"

namespace pia {
namespace {

using testing::Sink;

TEST(Registry, RegisterCreateLookup) {
  ComponentRegistry reg;
  reg.register_factory("sink", [](const std::string& instance) {
    return std::make_unique<Sink>(instance);
  });
  EXPECT_TRUE(reg.contains("sink"));
  EXPECT_FALSE(reg.contains("ghost"));
  auto c = reg.create("sink", "s0");
  EXPECT_EQ(c->name(), "s0");
  EXPECT_THROW(reg.create("ghost", "g"), Error);
}

TEST(Registry, ReloadBumpsGeneration) {
  ComponentRegistry reg;
  EXPECT_EQ(reg.generation("sink"), 0u);
  reg.register_factory("sink", [](const std::string& n) {
    return std::make_unique<Sink>(n);
  });
  EXPECT_EQ(reg.generation("sink"), 1u);
  // "Recompile and reload without restarting the simulator": re-register.
  reg.register_factory("sink", [](const std::string& n) {
    return std::make_unique<Sink>(n, PortSync::kAsynchronous);
  });
  EXPECT_EQ(reg.generation("sink"), 2u);
  auto c = reg.create("sink", "s1");
  EXPECT_EQ(c->ports()[0].sync, PortSync::kAsynchronous);
}

TEST(Registry, SimulationCreatesByTypeName) {
  ComponentRegistry reg;
  reg.register_factory("sink", [](const std::string& n) {
    return std::make_unique<Sink>(n);
  });
  Simulation sim;
  Component& c = sim.create("sink", "mysink", reg);
  EXPECT_EQ(sim.scheduler().find_component("mysink"), &c);
}

TEST(SealedBlobTest, SealUnsealRoundTrip) {
  const Bytes secret = to_bytes("coefficients: 3 1 4 1 5 9 2 6");
  const SealedBlob blob = SealedBlob::seal(secret, "vendor-key");
  EXPECT_NE(blob.ciphertext(), secret);  // not stored in the clear
  EXPECT_EQ(blob.unseal("vendor-key"), secret);
}

TEST(SealedBlobTest, WrongKeyNeverYieldsPlaintext) {
  const Bytes secret = to_bytes("the crown jewels");
  const SealedBlob blob = SealedBlob::seal(secret, "right");
  EXPECT_THROW((void)blob.unseal("wrong"), Error);
  EXPECT_THROW((void)blob.unseal(""), Error);
}

TEST(SealedBlobTest, CiphertextTransportable) {
  const Bytes secret = to_bytes("ip block");
  const SealedBlob original = SealedBlob::seal(secret, "k");
  const SealedBlob shipped =
      SealedBlob::from_ciphertext(original.ciphertext());
  EXPECT_EQ(shipped.unseal("k"), secret);
}

/// An "IP" model whose behaviour depends on sealed parameters: adds a secret
/// constant to each received word.
class SecretAdder : public Component {
 public:
  SecretAdder(std::string name, std::uint64_t secret)
      : Component(std::move(name)), secret_(secret) {
    in_ = add_input("in");
    out_ = add_output("out");
  }
  void on_receive(PortIndex, const Value& v) override {
    advance(ticks(2));
    send(out_, Value{v.as_word() + secret_});
  }
  void save_state(serial::OutArchive& ar) const override {
    ar.put_varint(calls_);
  }
  void restore_state(serial::InArchive& ar) override {
    calls_ = ar.get_varint();
  }

 private:
  std::uint64_t secret_;
  std::uint64_t calls_ = 0;
  PortIndex in_, out_;
};

std::unique_ptr<Component> secret_adder_factory(const std::string& instance,
                                                BytesView params) {
  serial::InArchive ar(params);
  return std::make_unique<SecretAdder>(instance, ar.get_varint());
}

TEST(SealedComponentTest, BehavesLikeInnerModel) {
  serial::OutArchive params;
  params.put_varint(1000);
  const SealedBlob blob = SealedBlob::seal(params.bytes(), "vendor");

  Scheduler sched;
  auto& producer = sched.emplace<testing::Producer>("p", 3);
  auto& sealed = sched.emplace<SealedComponent>("ip", blob, "vendor",
                                                secret_adder_factory);
  auto& sink = sched.emplace<Sink>("s");
  sched.connect(producer.id(), "out", sealed.id(), "in");
  sched.connect(sealed.id(), "out", sink.id(), "in");
  sched.init();
  sched.run();
  EXPECT_EQ(sink.received, (std::vector<std::uint64_t>{1000, 1001, 1002}));
}

TEST(SealedComponentTest, InnerComputationTimeIsCharged) {
  serial::OutArchive params;
  params.put_varint(0);
  const SealedBlob blob = SealedBlob::seal(params.bytes(), "vendor");

  Scheduler sched;
  auto& producer = sched.emplace<testing::Producer>("p", 1, ticks(10), ticks(10));
  auto& sealed = sched.emplace<SealedComponent>("ip", blob, "vendor",
                                                secret_adder_factory);
  auto& sink = sched.emplace<Sink>("s");
  sched.connect(producer.id(), "out", sealed.id(), "in");
  sched.connect(sealed.id(), "out", sink.id(), "in");
  sched.init();
  sched.run();
  ASSERT_EQ(sink.times.size(), 1u);
  EXPECT_EQ(sink.times[0], ticks(12));  // 10 emit + 2 inner advance
}

TEST(SealedComponentTest, CheckpointDoesNotLeakParameters) {
  serial::OutArchive params;
  params.put_varint(0xDEADBEEF);
  const SealedBlob blob = SealedBlob::seal(params.bytes(), "vendor");

  Scheduler sched;
  auto& sealed = sched.emplace<SealedComponent>("ip", blob, "vendor",
                                                secret_adder_factory);
  const Bytes image = sealed.save_image();
  // The raw parameter varint (EF BE B7 ED 0D...) must not appear.
  const Bytes needle = [&] {
    serial::OutArchive ar;
    ar.put_varint(0xDEADBEEF);
    return std::move(ar).take();
  }();
  const auto found = std::search(image.begin(), image.end(), needle.begin(),
                                 needle.end());
  EXPECT_EQ(found, image.end()) << "plaintext parameters leaked into image";
  // And the image restores.
  sched.init();
  sealed.restore_image(image);
}

TEST(SealedComponentTest, WrongKeyFailsConstruction) {
  serial::OutArchive params;
  params.put_varint(1);
  const SealedBlob blob = SealedBlob::seal(params.bytes(), "vendor");
  EXPECT_THROW(SealedComponent("ip", blob, "attacker", secret_adder_factory),
               Error);
}

}  // namespace
}  // namespace pia
