// Batched channel I/O behaviour (protocol v2 batch frames).
//
// N messages emitted inside one flush-hold slice must leave as at most
// ⌈N / batch_limit⌉ link frames, arrive in send order, and collapse back to
// the bare single-message wire format when only one message is pending.
// LinkStats (frames_sent vs messages_sent) is the observable.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <memory>
#include <vector>

#include "dist/channel.hpp"
#include "dist/protocol.hpp"
#include "transport/link.hpp"
#include "transport/tcp.hpp"

namespace pia::dist {
namespace {

std::unique_ptr<ChannelEndpoint> make_endpoint(transport::LinkPtr link,
                                               std::uint32_t origin) {
  return std::make_unique<ChannelEndpoint>("test", ChannelMode::kOptimistic,
                                           std::move(link), origin);
}

/// Sends `count` distinguishable messages inside one flush hold.
void send_burst(ChannelEndpoint& endpoint, std::uint64_t count) {
  endpoint.hold_flush();
  for (std::uint64_t i = 0; i < count; ++i)
    endpoint.send_message(SafeTimeGrant{.request_id = i + 1,
                                        .safe_time = ticks(static_cast<
                                            VirtualTime::rep>(i)),
                                        .events_seen = i});
  endpoint.release_flush();
}

/// Receives `count` messages, asserting order via the grant request_id.
void expect_burst(ChannelEndpoint& endpoint, std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    auto message = endpoint.recv_for(std::chrono::milliseconds(2000));
    ASSERT_TRUE(message.has_value()) << "message " << i << " never arrived";
    const auto* grant = std::get_if<SafeTimeGrant>(&*message);
    ASSERT_NE(grant, nullptr);
    EXPECT_EQ(grant->request_id, i + 1) << "batch reordered messages";
  }
  EXPECT_FALSE(endpoint.poll().has_value());
}

TEST(Batching, HeldBurstSharesFramesOverLoopback) {
  transport::LinkPair pair = transport::make_loopback_pair();
  auto sender = make_endpoint(std::move(pair.a), 1);
  auto receiver = make_endpoint(std::move(pair.b), 2);

  const std::uint64_t kCount = 100;  // default batch_limit is 64
  send_burst(*sender, kCount);

  const transport::LinkStats stats = sender->link().stats();
  EXPECT_EQ(stats.messages_sent, kCount);
  EXPECT_EQ(stats.frames_sent, 2u);  // ⌈100/64⌉
  expect_burst(*receiver, kCount);
  EXPECT_EQ(receiver->link().stats().frames_received, 2u);
}

TEST(Batching, FlushesEveryBatchLimitMessages) {
  transport::LinkPair pair = transport::make_loopback_pair();
  auto sender = make_endpoint(std::move(pair.a), 1);
  auto receiver = make_endpoint(std::move(pair.b), 2);
  sender->set_batch_limit(8);

  send_burst(*sender, 100);
  // 12 full frames mid-hold plus the 4-message remainder at release.
  EXPECT_EQ(sender->link().stats().frames_sent, 13u);
  EXPECT_EQ(sender->link().stats().messages_sent, 100u);
  expect_burst(*receiver, 100);
}

TEST(Batching, LimitOfOneDisablesBatching) {
  transport::LinkPair pair = transport::make_loopback_pair();
  auto sender = make_endpoint(std::move(pair.a), 1);
  auto receiver = make_endpoint(std::move(pair.b), 2);
  sender->set_batch_limit(1);

  send_burst(*sender, 20);
  EXPECT_EQ(sender->link().stats().frames_sent, 20u);
  EXPECT_EQ(sender->link().stats().messages_sent, 20u);
  expect_burst(*receiver, 20);
}

TEST(Batching, SingleMessageTravelsBare) {
  // Keep the raw peer link so the frame bytes themselves are observable.
  transport::LinkPair pair = transport::make_loopback_pair();
  auto sender = make_endpoint(std::move(pair.a), 1);

  // Unheld send: flushes immediately, count == 1, bare format.
  sender->send_message(HeartbeatMsg{.seq = 7});
  std::optional<Bytes> frame = pair.b->try_recv();
  ASSERT_TRUE(frame.has_value());
  ASSERT_FALSE(frame->empty());
  EXPECT_NE(static_cast<std::uint8_t>((*frame)[0]), kBatchFrameTag);
  const ChannelMessage bare = decode_message(*frame);
  ASSERT_TRUE(std::holds_alternative<HeartbeatMsg>(bare));
  EXPECT_EQ(std::get<HeartbeatMsg>(bare).seq, 7u);

  // A held pair goes out as one tagged batch frame.
  sender->hold_flush();
  sender->send_message(HeartbeatMsg{.seq = 8});
  sender->send_message(HeartbeatMsg{.seq = 9});
  sender->release_flush();
  frame = pair.b->try_recv();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(static_cast<std::uint8_t>((*frame)[0]), kBatchFrameTag);
  std::deque<ChannelMessage> decoded;
  decode_frame(*frame, decoded);
  ASSERT_EQ(decoded.size(), 2u);
  EXPECT_EQ(std::get<HeartbeatMsg>(decoded[0]).seq, 8u);
  EXPECT_EQ(std::get<HeartbeatMsg>(decoded[1]).seq, 9u);
  EXPECT_FALSE(pair.b->try_recv().has_value());
}

TEST(Batching, DiscardPendingDropsUnflushedBatch) {
  transport::LinkPair pair = transport::make_loopback_pair();
  auto sender = make_endpoint(std::move(pair.a), 1);

  sender->hold_flush();
  sender->send_message(HeartbeatMsg{.seq = 1});
  sender->send_message(HeartbeatMsg{.seq = 2});
  EXPECT_EQ(sender->pending_batch(), 2u);
  sender->discard_pending();
  EXPECT_EQ(sender->pending_batch(), 0u);
  sender->release_flush();
  EXPECT_EQ(sender->link().stats().frames_sent, 0u);
  EXPECT_FALSE(pair.b->try_recv().has_value());
}

TEST(Batching, GiantMessageInBatchSurvivesPrefixWidening) {
  // A message longer than the 2-byte padded length prefix can express
  // (>= 16 KB) forces the send path to widen its back-patched prefix,
  // shifting the batch tail.  Pack one between two small messages so both
  // the shifted bytes and the messages after them are checked.
  transport::LinkPair pair = transport::make_loopback_pair();
  auto sender = make_endpoint(std::move(pair.a), 1);
  auto receiver = make_endpoint(std::move(pair.b), 2);

  Bytes big(40000);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = std::byte(i * 131 % 256);

  sender->hold_flush();
  sender->send_message(HeartbeatMsg{.seq = 1});
  sender->send_message(EventMsg{.id = {.origin = 1, .counter = 9},
                                .net_index = 0,
                                .time = ticks(5),
                                .value = Value::packet(big)});
  sender->send_message(HeartbeatMsg{.seq = 2});
  sender->release_flush();
  EXPECT_EQ(sender->link().stats().frames_sent, 1u);

  auto first = receiver->recv_for(std::chrono::milliseconds(2000));
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(std::get<HeartbeatMsg>(*first).seq, 1u);
  auto middle = receiver->recv_for(std::chrono::milliseconds(2000));
  ASSERT_TRUE(middle.has_value());
  const auto& event = std::get<EventMsg>(*middle);
  EXPECT_EQ(event.id.counter, 9u);
  const BytesView payload = event.value.as_packet();
  ASSERT_EQ(payload.size(), big.size());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), big.begin()));
  auto last = receiver->recv_for(std::chrono::milliseconds(2000));
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(std::get<HeartbeatMsg>(*last).seq, 2u);
}

TEST(Batching, ArenaReachesSteadyStateAcrossBursts) {
  // The zero-copy contract at the channel layer: after a warmup burst the
  // arena must recycle its buffer — epochs advance per flush, capacity
  // stays put (no per-batch reallocation, no growth).
  transport::LinkPair pair = transport::make_loopback_pair();
  auto sender = make_endpoint(std::move(pair.a), 1);
  auto receiver = make_endpoint(std::move(pair.b), 2);

  send_burst(*sender, 64);  // warmup sizes the buffer
  expect_burst(*receiver, 64);
  const std::size_t steady = sender->arena().capacity();
  const std::uint64_t epochs = sender->arena().epochs();
  for (int burst = 0; burst < 50; ++burst) {
    send_burst(*sender, 64);
    expect_burst(*receiver, 64);
  }
  EXPECT_EQ(sender->arena().capacity(), steady);
  EXPECT_EQ(sender->arena().epochs(), epochs + 50);
}

TEST(Batching, HeldBurstSharesFramesOverTcp) {
  transport::TcpListener listener(0);
  auto client = std::async(std::launch::async,
                           [&] { return transport::tcp_connect(listener.port()); });
  transport::LinkPtr accepted = listener.accept();
  auto sender = make_endpoint(std::move(accepted), 1);
  auto receiver = make_endpoint(client.get(), 2);

  const std::uint64_t kCount = 256;
  send_burst(*sender, kCount);
  EXPECT_EQ(sender->link().stats().messages_sent, kCount);
  EXPECT_EQ(sender->link().stats().frames_sent, 4u);  // ⌈256/64⌉
  expect_burst(*receiver, kCount);
  EXPECT_EQ(receiver->link().stats().frames_received, 4u);
}

}  // namespace
}  // namespace pia::dist
