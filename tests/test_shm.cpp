// Shared-memory ring Link: byte-level wraparound torture, spill ordering,
// peer-death close semantics, borrowed-view aliasing rules, and the same
// concurrency storms the other links face (mirrors test_link_threads.cpp —
// the LinkStorm suites here run under ThreadSanitizer in CI).

#include <gtest/gtest.h>

#include <poll.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "dist/node.hpp"
#include "dist/protocol.hpp"
#include "dist_helpers.hpp"
#include "serial/archive.hpp"
#include "transport/link.hpp"
#include "transport/shm.hpp"

namespace pia::transport {
namespace {

using namespace std::chrono_literals;

Bytes frame_for(std::uint32_t i) {
  Bytes b(4);
  b[0] = std::byte(i & 0xff);
  b[1] = std::byte((i >> 8) & 0xff);
  b[2] = std::byte((i >> 16) & 0xff);
  b[3] = std::byte((i >> 24) & 0xff);
  return b;
}

std::uint32_t index_of(const Bytes& b) {
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

/// A frame whose every byte is derived from (seed, position) — a wrap that
/// splices ring bytes from the wrong offset cannot go unnoticed.
Bytes patterned_frame(std::uint32_t seed, std::size_t size) {
  Bytes b(size);
  for (std::size_t i = 0; i < size; ++i)
    b[i] = std::byte((seed * 131 + i * 7) & 0xff);
  return b;
}

TEST(ShmRing, WraparoundTortureAtEveryOffset) {
  // A deliberately tiny ring and a frame-size cycle coprime with it: the
  // record boundary lands on every reachable offset (mod 4 — records are
  // 4-aligned), exercising the wrap marker, the sub-header slack burn, and
  // ordinary wraps.  One-in-one-out keeps the ring nearly full the whole
  // time so the wrap logic runs constantly.
  LinkPair pair = make_shm_pair(256);
  for (std::uint32_t i = 0; i < 4096; ++i) {
    const std::size_t size = (i * 13) % 61;  // 0..60, includes empty frames
    pair.a->send(patterned_frame(i, size));
    auto got = pair.b->try_recv();
    ASSERT_TRUE(got.has_value()) << "frame " << i;
    EXPECT_EQ(*got, patterned_frame(i, size)) << "frame " << i;
  }
  EXPECT_FALSE(pair.b->try_recv().has_value());
}

TEST(ShmRing, FullRingSpillAndDrainOrdering) {
  // Fill far past the ring capacity with no receiver running, so frames
  // land in ring + spill, then drain: order must be exactly send order and
  // the ring must be reusable afterwards.
  LinkPair pair = make_shm_pair(256);
  constexpr std::uint32_t kFrames = 2048;
  for (std::uint32_t i = 0; i < kFrames; ++i) pair.a->send(frame_for(i));
  for (std::uint32_t i = 0; i < kFrames; ++i) {
    auto got = pair.b->try_recv();
    ASSERT_TRUE(got.has_value()) << "frame " << i;
    EXPECT_EQ(index_of(*got), i);
  }
  EXPECT_FALSE(pair.b->try_recv().has_value());
  // Spill fully drained: the next send takes the ring fast path again.
  pair.a->send(frame_for(99));
  auto got = pair.b->try_recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(index_of(*got), 99u);
}

TEST(ShmRing, FrameLargerThanRingSpillsIntact) {
  LinkPair pair = make_shm_pair(256);
  const Bytes giant = patterned_frame(5, 10000);  // 39× the ring
  pair.a->send(BytesView{giant});
  auto got = pair.b->recv_for(2000ms);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, giant);
}

TEST(ShmRing, ClosedOnPeerDeathMidFrame) {
  // Peer endpoint destroyed in the middle of a stream: the survivor must
  // observe closed(), drain everything already delivered — including a
  // frame still sitting in the ring — and then see EOF; its own sends
  // must throw kTransport rather than write into a dead ring.
  LinkPair pair = make_shm_pair(1024);
  pair.a->send(frame_for(0));
  pair.a->send(frame_for(1));
  pair.a.reset();  // peer dies with frames in flight

  EXPECT_TRUE(pair.b->closed());
  auto first = pair.b->try_recv();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(index_of(*first), 0u);
  auto second = pair.b->try_recv();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(index_of(*second), 1u);
  EXPECT_FALSE(pair.b->try_recv().has_value());
  EXPECT_THROW(pair.b->send(frame_for(2)), Error);
}

TEST(ShmRing, BorrowedViewMatchesOwningRecv) {
  LinkPair pair = make_shm_pair(512);
  ASSERT_TRUE(pair.b->supports_recv_view());
  for (std::uint32_t i = 0; i < 512; ++i)
    pair.a->send(patterned_frame(i, (i * 11) % 97));
  for (std::uint32_t i = 0; i < 512; ++i) {
    const Bytes expect = patterned_frame(i, (i * 11) % 97);
    if (i % 2 == 0) {
      const auto view = pair.b->try_recv_view();
      ASSERT_TRUE(view.has_value()) << "frame " << i;
      EXPECT_EQ(Bytes(view->begin(), view->end()), expect);
      pair.b->release_recv_view();
    } else {
      // Alternating with the owning API must preserve FIFO.
      auto got = pair.b->try_recv();
      ASSERT_TRUE(got.has_value()) << "frame " << i;
      EXPECT_EQ(*got, expect);
    }
  }
  EXPECT_FALSE(pair.b->try_recv_view().has_value());
}

TEST(ShmRing, BorrowedViewStableWhileProducerFillsRing) {
  // The aliasing contract: a borrowed frame's slot must not be reused
  // until release, no matter how hard the producer pushes (overflow goes
  // to the spill instead).
  LinkPair pair = make_shm_pair(256);
  const Bytes expect = patterned_frame(7, 48);
  pair.a->send(BytesView{expect});
  const auto view = pair.b->try_recv_view();
  ASSERT_TRUE(view.has_value());
  for (std::uint32_t i = 0; i < 300; ++i) pair.a->send(frame_for(i));
  EXPECT_EQ(Bytes(view->begin(), view->end()), expect);  // untouched
  pair.b->release_recv_view();
  for (std::uint32_t i = 0; i < 300; ++i) {
    auto got = pair.b->try_recv();
    ASSERT_TRUE(got.has_value()) << "frame " << i;
    EXPECT_EQ(index_of(*got), i);
  }
}

TEST(ShmRing, AbandonedViewIsConsumedByNextRecv) {
  // Contract: any subsequent recv call invalidates (and consumes) an
  // unreleased view, so a decode error cannot wedge the ring.
  LinkPair pair = make_shm_pair(256);
  pair.a->send(frame_for(1));
  pair.a->send(frame_for(2));
  ASSERT_TRUE(pair.b->try_recv_view().has_value());  // never released
  auto got = pair.b->try_recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(index_of(*got), 2u);  // frame 1 was consumed with its view
}

TEST(ShmRing, StatsCountMessagesAndBytes) {
  LinkPair pair = make_shm_pair(1024);
  pair.a->send(patterned_frame(1, 100), /*message_count=*/7);
  pair.a->send(patterned_frame(2, 50), /*message_count=*/3);
  ASSERT_TRUE(pair.b->try_recv().has_value());
  const auto view = pair.b->try_recv_view();
  ASSERT_TRUE(view.has_value());
  pair.b->release_recv_view();

  const LinkStats tx = pair.a->stats();
  EXPECT_EQ(tx.messages_sent, 10u);
  EXPECT_EQ(tx.frames_sent, 2u);
  EXPECT_EQ(tx.bytes_sent, 150u);
  const LinkStats rx = pair.b->stats();
  EXPECT_EQ(rx.frames_received, 2u);
  EXPECT_EQ(rx.bytes_received, 150u);
}

TEST(ShmRing, ReadableFdWakesPoll) {
  LinkPair pair = make_shm_pair(1024);
  const int fd = pair.b->readable_fd();
  ASSERT_GE(fd, 0);

  std::thread sender([&] {
    std::this_thread::sleep_for(50ms);
    pair.a->send(frame_for(7));
  });
  pollfd p{fd, POLLIN, 0};
  const int pr = ::poll(&p, 1, 2000);
  sender.join();
  EXPECT_EQ(pr, 1);
  auto got = pair.b->try_recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(index_of(*got), 7u);
}

// --- concurrency storms (mirroring test_link_threads.cpp) ------------------

/// One sender thread streaming `count` indexed frames, one receiver thread
/// draining them, one thread hammering stats() the whole time.  Asserts
/// FIFO delivery of every frame and a consistent final counter snapshot.
void storm(Link& tx, Link& rx, std::uint32_t count) {
  std::atomic<bool> done{false};

  std::thread stats_reader([&] {
    std::uint64_t last_sent = 0;
    while (!done.load(std::memory_order_acquire)) {
      const LinkStats s = tx.stats();
      EXPECT_GE(s.messages_sent, last_sent);
      last_sent = s.messages_sent;
      (void)rx.stats();
    }
  });

  std::thread sender([&] {
    for (std::uint32_t i = 0; i < count; ++i) tx.send(frame_for(i));
  });

  std::uint32_t next = 0;
  while (next < count) {
    auto got = rx.recv_for(2000ms);
    ASSERT_TRUE(got.has_value()) << "lost frame " << next;
    ASSERT_EQ(index_of(*got), next) << "FIFO violated";
    ++next;
  }

  sender.join();
  done.store(true, std::memory_order_release);
  stats_reader.join();

  const LinkStats sent = tx.stats();
  EXPECT_EQ(sent.messages_sent, count);
  EXPECT_EQ(sent.frames_sent, count);
  const LinkStats received = rx.stats();
  EXPECT_EQ(received.frames_received, count);
}

TEST(LinkStorm, ShmFifoUnderStatsRace) {
  LinkPair pair = make_shm_pair(kShmDefaultRingBytes);
  storm(*pair.a, *pair.b, 5000);
}

TEST(LinkStorm, ShmSmallRingFifoUnderStatsRace) {
  // A ring far smaller than the traffic keeps the wrap + spill machinery
  // hot while the consumer races the producer.
  LinkPair pair = make_shm_pair(512);
  storm(*pair.a, *pair.b, 5000);
}

TEST(LinkStorm, ShmBorrowedViewFifoUnderSendRace) {
  // The borrowed-view consumer against a storming producer: views must be
  // byte-exact and FIFO even while the ring wraps and spills around them.
  LinkPair pair = make_shm_pair(512);
  constexpr std::uint32_t kFrames = 5000;
  std::thread sender([&] {
    for (std::uint32_t i = 0; i < kFrames; ++i) pair.a->send(frame_for(i));
  });
  std::uint32_t next = 0;
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (next < kFrames) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "stalled";
    const auto view = pair.b->try_recv_view();
    if (!view) continue;
    ASSERT_EQ(view->size(), 4u);
    ASSERT_EQ(index_of(Bytes(view->begin(), view->end())), next);
    pair.b->release_recv_view();
    ++next;
  }
  sender.join();
}

/// close() racing a send storm: the sender must either complete or observe
/// Error{kTransport}; the receiver drains what was delivered and then sees
/// nullopt.  No deadlock, no crash, FIFO for whatever arrives.
TEST(LinkStorm, ShmCloseMidStorm) {
  LinkPair pair = make_shm_pair(kShmDefaultRingBytes);
  std::atomic<bool> sender_saw_close{false};
  std::thread sender([&] {
    try {
      for (std::uint32_t i = 0; i < 100000; ++i) pair.a->send(frame_for(i));
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kTransport);
      sender_saw_close.store(true, std::memory_order_release);
    }
  });

  std::uint32_t next = 0;
  for (; next < 100; ++next) {
    auto got = pair.b->recv_for(2000ms);
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(index_of(*got), next);
  }
  pair.b->close();
  sender.join();

  while (auto got = pair.b->try_recv()) ASSERT_EQ(index_of(*got), next++);
  EXPECT_FALSE(pair.b->try_recv().has_value());
  EXPECT_TRUE(sender_saw_close.load(std::memory_order_acquire));
}

}  // namespace
}  // namespace pia::transport

namespace pia::dist {
namespace {

using namespace std::chrono_literals;

TEST(ShmNegotiation, ExplicitShmWireConnects) {
  NodeCluster cluster;
  PiaNode& node_a = cluster.add_node("a");
  PiaNode& node_b = cluster.add_node("b");
  Subsystem& a = node_a.add_subsystem("ssA");
  Subsystem& b = node_b.add_subsystem("ssB");
  const ChannelPair chans = cluster.connect_checked(
      a, b, ChannelMode::kConservative, Wire::kShm);
  EXPECT_EQ(a.channel_set().at(chans.a).link().describe(), "shm");
  EXPECT_EQ(b.channel_set().at(chans.b).link().describe(), "shm");
}

TEST(ShmNegotiation, EnvForceUpgradesCoLocatedChannels) {
  ::setenv(kShmEnvVar, "force", 1);
  NodeCluster cluster;
  PiaNode& node_a = cluster.add_node("a");
  PiaNode& node_b = cluster.add_node("b");
  Subsystem& a = node_a.add_subsystem("ssA");
  Subsystem& b = node_b.add_subsystem("ssB");
  const ChannelPair chans =
      cluster.connect_checked(a, b, ChannelMode::kConservative);
  ::unsetenv(kShmEnvVar);
  EXPECT_EQ(a.channel_set().at(chans.a).link().describe(), "shm");
}

TEST(ShmNegotiation, EnvForbidFallsBackToSpsc) {
  ::setenv(kShmEnvVar, "forbid", 1);
  NodeCluster cluster;
  PiaNode& node_a = cluster.add_node("a");
  PiaNode& node_b = cluster.add_node("b");
  Subsystem& a = node_a.add_subsystem("ssA");
  Subsystem& b = node_b.add_subsystem("ssB");
  const ChannelPair chans = cluster.connect_checked(
      a, b, ChannelMode::kConservative, Wire::kShm);
  ::unsetenv(kShmEnvVar);
  EXPECT_EQ(a.channel_set().at(chans.a).link().describe(), "spsc");
}

TEST(ShmNegotiation, RejoinAnnouncesTransportCapability) {
  // The rejoin handshake carries the capability bitmask as a trailing
  // varint: present peers record it, and a legacy message without the
  // field must decode as "TCP baseline" instead of failing.
  const RejoinMsg sent{.token = 42, .events_sent = 3, .events_received = 5};
  EXPECT_EQ(sent.transports & kTransportShm, kTransportShm);
  const Bytes wire = encode_message(sent);
  const auto decoded = std::get<RejoinMsg>(decode_message(wire));
  EXPECT_EQ(decoded.transports, kLocalTransports);

  // A pre-capability peer's message ends after `protocol`.
  serial::OutArchive legacy;
  legacy.put_u8(12);  // Tag::kRejoin
  legacy.put_varint(42);
  legacy.put_varint(3);
  legacy.put_varint(5);
  legacy.put_varint(kChannelProtocolVersion);
  const auto old = std::get<RejoinMsg>(decode_message(legacy.bytes()));
  EXPECT_EQ(old.transports, 0u);
  EXPECT_EQ(old.protocol, kChannelProtocolVersion);
}

TEST(ShmNegotiation, EndToEndPipelineOverShmMatchesLoopback) {
  // The real acceptance check in miniature: the same producer→sink split
  // over shm must deliver the identical event stream the loopback oracle
  // does, quiescing cleanly.
  testing::SplitPipe oracle(40, ChannelMode::kConservative, Wire::kLoopback);
  oracle.cluster.start_all();
  for (const auto& [name, outcome] : oracle.cluster.run_all())
    ASSERT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;

  testing::SplitPipe dut(40, ChannelMode::kConservative, Wire::kShm);
  EXPECT_EQ(dut.a->channel_set().at(dut.channels.a).link().describe(), "shm");
  dut.cluster.start_all();
  for (const auto& [name, outcome] : dut.cluster.run_all())
    ASSERT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;

  EXPECT_EQ(dut.sink->received, oracle.sink->received);
  EXPECT_EQ(dut.sink->times, oracle.sink->times);
}

}  // namespace
}  // namespace pia::dist
