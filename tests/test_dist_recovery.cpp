// Crash recovery: durable snapshot store integrity, kill-and-recover
// equivalence with the single-host oracle, heartbeat failure detection, and
// the rejoin handshake.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <thread>

#include "base/error.hpp"
#include "dist_helpers.hpp"

namespace pia::dist {
namespace {

namespace fs = std::filesystem;
using namespace std::chrono_literals;
using testing::FuzzCluster;
using testing::PipelineResult;
using testing::PipelineSpec;
using testing::RecoveryOptions;
using testing::RecoveryReport;
using testing::run_single_host_pipeline;
using testing::run_with_crash_and_recover;
using testing::SplitPipe;

/// A fresh (empty) per-test scratch directory under the gtest temp root.
std::string fresh_dir(const std::string& name) {
  const fs::path path = fs::path(::testing::TempDir()) / name;
  fs::remove_all(path);
  fs::create_directories(path);
  return path.string();
}

/// Overwrites one byte of `path` at `offset` (negative: from the end).
void patch_file(const std::string& path, std::int64_t offset, char value) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open()) << path;
  if (offset >= 0)
    f.seekp(offset, std::ios::beg);
  else
    f.seekp(offset, std::ios::end);
  f.write(&value, 1);
}

// ---------------------------------------------------------------------------
// Store durability
// ---------------------------------------------------------------------------

TEST(SnapshotStoreRecovery, RoundTripAndRetention) {
  SnapshotStore store(fresh_dir("pia_store_roundtrip"), /*retain=*/2);
  const Bytes payload(48, std::byte{0x5A});
  store.commit(7, payload);
  EXPECT_EQ(store.load(7), payload);
  store.commit(8, payload);
  store.commit(9, payload);
  // Retention keeps only the newest two.
  EXPECT_EQ(store.tokens(), (std::vector<std::uint64_t>{8, 9}));
  EXPECT_EQ(store.stats().pruned, 1u);
  EXPECT_EQ(store.stats().commits, 3u);
  EXPECT_EQ(store.latest_valid_token(), 9u);
}

TEST(SnapshotStoreRecovery, TruncatedFileRejectedWithFallback) {
  const std::string dir = fresh_dir("pia_store_trunc");
  SnapshotStore store(dir, /*retain=*/4);
  const Bytes payload(64, std::byte{0x5A});
  store.commit(1, payload);
  store.commit(2, payload);
  // A torn write that somehow made it past the rename: half the payload.
  fs::resize_file(dir + "/snap-2.pias", 40);
  try {
    (void)store.load(2);
    FAIL() << "truncated snapshot loaded";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kSerialization);
  }
  EXPECT_FALSE(store.valid(2));
  EXPECT_GT(store.stats().load_failures, 0u);
  // Recovery falls back to the previous committed snapshot.
  EXPECT_EQ(store.latest_valid_token(), 1u);
}

TEST(SnapshotStoreRecovery, CorruptPayloadRejectedByCrc) {
  const std::string dir = fresh_dir("pia_store_crc");
  SnapshotStore store(dir, /*retain=*/4);
  const Bytes payload(64, std::byte{0x5A});
  store.commit(3, payload);
  store.commit(4, payload);
  // Flip the last payload byte of snapshot 4: length still matches, only
  // the checksum can catch it.
  patch_file(dir + "/snap-4.pias", -1, '\x00');
  try {
    (void)store.load(4);
    FAIL() << "corrupt snapshot loaded";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kSerialization);
  }
  EXPECT_FALSE(store.valid(4));
  EXPECT_EQ(store.latest_valid_token(), 3u);
}

TEST(SnapshotStoreRecovery, StaleFormatVersionRejected) {
  const std::string dir = fresh_dir("pia_store_version");
  SnapshotStore store(dir, /*retain=*/4);
  const Bytes payload(16, std::byte{0x11});
  store.commit(5, payload);
  store.commit(6, payload);
  // The version varint sits right after the 4-byte magic; claim a future
  // format the reader does not understand.
  patch_file(dir + "/snap-6.pias", 4,
             static_cast<char>(SnapshotStore::kFormatVersion + 1));
  try {
    (void)store.load(6);
    FAIL() << "wrong-version snapshot loaded";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kSerialization);
  }
  EXPECT_FALSE(store.valid(6));
  EXPECT_EQ(store.latest_valid_token(), 5u);
}

TEST(SnapshotStoreRecovery, LatestCommonValidToken) {
  SnapshotStore s1(fresh_dir("pia_store_common1"), /*retain=*/4);
  SnapshotStore s2(fresh_dir("pia_store_common2"), /*retain=*/4);
  const Bytes payload(8, std::byte{1});
  s1.commit(1, payload);
  s1.commit(2, payload);
  s1.commit(3, payload);
  s2.commit(1, payload);
  s2.commit(2, payload);
  // 3 exists only on s1; 2 is the newest everywhere.
  EXPECT_EQ(SnapshotStore::latest_common_valid_token({&s1, &s2}), 2u);
  // Corrupt s2's copy of 2: the cluster-wide choice falls back to 1.
  patch_file(s2.dir() + "/snap-2.pias", -1, '\x7F');
  EXPECT_EQ(SnapshotStore::latest_common_valid_token({&s1, &s2}), 1u);
  // No overlap at all.
  SnapshotStore s3(fresh_dir("pia_store_common3"), /*retain=*/4);
  EXPECT_EQ(SnapshotStore::latest_common_valid_token({&s1, &s3}),
            std::nullopt);
}

// ---------------------------------------------------------------------------
// Durable snapshots and fresh-process restore
// ---------------------------------------------------------------------------

/// Three subsystems, four pipeline stages, results hopping back to the
/// sink on subsystem 0 — every channel carries forward and return traffic.
PipelineSpec recovery_spec() {
  PipelineSpec spec;
  spec.count = 32;
  spec.period = ticks(10);
  spec.relays = {{.think_ticks = 5, .level = runlevels::kWord},
                 {.think_ticks = 7, .level = runlevels::kWord},
                 {.think_ticks = 3, .level = runlevels::kWord}};
  spec.stage_host = {0, 1, 1, 2};
  spec.sink_host = 0;
  return spec;
}

/// Oldest token committed and valid in every store (the deepest cut a whole
/// cluster can restore; the opposite end of latest_common_valid_token).
std::optional<std::uint64_t> earliest_common_valid_token(
    const std::vector<const SnapshotStore*>& stores) {
  for (const std::uint64_t token : stores.front()->tokens())
    if (std::all_of(stores.begin(), stores.end(),
                    [&](const SnapshotStore* s) { return s->valid(token); }))
      return token;
  return std::nullopt;
}

TEST(DistributedRecovery, AutoSnapshotsPersistDurably) {
  SplitPipe pipe(30, ChannelMode::kConservative);
  auto store_a =
      std::make_shared<SnapshotStore>(fresh_dir("pia_auto_a"), /*retain=*/0);
  auto store_b =
      std::make_shared<SnapshotStore>(fresh_dir("pia_auto_b"), /*retain=*/0);
  pipe.a->set_snapshot_store(store_a);
  pipe.b->set_snapshot_store(store_b);
  pipe.a->set_auto_snapshot_interval(5);
  pipe.cluster.start_all();
  pipe.cluster.run_all();

  EXPECT_EQ(pipe.sink->received.size(), 30u);
  EXPECT_GT(store_a->stats().commits, 0u);
  EXPECT_GT(store_b->stats().commits, 0u);
  EXPECT_GT(pipe.a->stats().snapshots_persisted, 0u);
  EXPECT_GT(pipe.a->stats().snapshot_persist_bytes, 0u);
  EXPECT_TRUE(
      SnapshotStore::latest_common_valid_token({store_a.get(), store_b.get()})
          .has_value());
}

TEST(DistributedRecovery, FreshClusterRestoresMidRunCutAndResumes) {
  const PipelineSpec spec = recovery_spec();
  const PipelineResult oracle = run_single_host_pipeline(spec);
  const std::vector<ChannelMode> modes{ChannelMode::kConservative,
                                       ChannelMode::kConservative};
  RecoveryOptions options;
  options.store_root = fresh_dir("pia_fresh_restore");
  options.auto_snapshot_every = 6;
  options.retain = 0;  // keep the earliest (deepest) cut around

  std::optional<std::uint64_t> token;
  {
    FuzzCluster first(spec, modes, Wire::kLoopback, {},
                      transport::FaultPlan::none(), {1});
    first.enable_recovery(options);
    EXPECT_EQ(first.run(4000ms), oracle);
    std::vector<const SnapshotStore*> views;
    for (const auto& store : first.stores) views.push_back(store.get());
    token = earliest_common_valid_token(views);
    ASSERT_TRUE(token.has_value());
  }  // the whole cluster is gone; only the store directories survive

  FuzzCluster second(spec, modes, Wire::kLoopback, {},
                     transport::FaultPlan::none(), {1});
  second.enable_recovery(options);
  second.cluster.start_all();
  for (std::size_t g = 0; g < second.subsystems.size(); ++g)
    second.subsystems[g]->restore_snapshot_image(
        second.stores[g]->load(*token));
  for (Subsystem* s : second.subsystems) s->begin_rejoin(*token);
  auto outcomes = second.cluster.run_all(
      Subsystem::RunConfig{.stall_timeout = 4000ms});
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;
  EXPECT_EQ((PipelineResult{second.sink->received, second.sink->times}),
            oracle);
  for (Subsystem* s : second.subsystems) {
    EXPECT_EQ(s->stats().recoveries, 1u) << s->name();
    EXPECT_GT(s->stats().rejoins_verified, 0u) << s->name();
  }
}

// Regression (recovery fuzzer seeds 5006/5044): on an optimistic channel the
// restored producer resumes dispatching immediately — nothing gates on
// grants — so its live event counters advance before the peer's RejoinMsg
// arrives.  The handshake must compare the counters frozen at begin_rejoin,
// not the live ones, or every optimistic restore of a mid-run cut raises a
// spurious kProtocol "rejoin sequence mismatch".
TEST(DistributedRecovery, OptimisticRejoinIgnoresPostRestoreTraffic) {
  const PipelineSpec spec = recovery_spec();
  const PipelineResult oracle = run_single_host_pipeline(spec);
  const std::vector<ChannelMode> modes{ChannelMode::kOptimistic,
                                       ChannelMode::kOptimistic};
  RecoveryOptions options;
  options.store_root = fresh_dir("pia_optimistic_rejoin");
  options.auto_snapshot_every = 6;
  options.retain = 0;

  std::optional<std::uint64_t> token;
  {
    FuzzCluster first(spec, modes, Wire::kLoopback, {},
                      transport::FaultPlan::none(), {1, 3});
    first.enable_recovery(options);
    EXPECT_EQ(first.run(4000ms), oracle);
    std::vector<const SnapshotStore*> views;
    for (const auto& store : first.stores) views.push_back(store.get());
    token = earliest_common_valid_token(views);
    ASSERT_TRUE(token.has_value());
  }

  FuzzCluster second(spec, modes, Wire::kLoopback, {},
                     transport::FaultPlan::none(), {1, 3});
  second.enable_recovery(options);
  second.cluster.start_all();
  for (std::size_t g = 0; g < second.subsystems.size(); ++g)
    second.subsystems[g]->restore_snapshot_image(
        second.stores[g]->load(*token));
  for (Subsystem* s : second.subsystems) s->begin_rejoin(*token);
  auto outcomes = second.cluster.run_all(
      Subsystem::RunConfig{.stall_timeout = 4000ms});
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;
  EXPECT_EQ((PipelineResult{second.sink->received, second.sink->times}),
            oracle);
  for (Subsystem* s : second.subsystems)
    EXPECT_GT(s->stats().rejoins_verified, 0u) << s->name();
}

// ---------------------------------------------------------------------------
// Kill and recover: bit-exact with the no-crash single-host oracle
// ---------------------------------------------------------------------------

void kill_and_recover_case(const std::vector<ChannelMode>& modes, Wire wire,
                           const std::string& store_tag,
                           std::uint64_t crash_frames) {
  const PipelineSpec spec = recovery_spec();
  const PipelineResult oracle = run_single_host_pipeline(spec);
  RecoveryOptions options;
  options.store_root = fresh_dir(store_tag);
  options.auto_snapshot_every = 6;
  // Fell subsystem 1's endpoint of the ss0<->ss1 channel mid-run.  The frame
  // budget is per-mode: batching packs each scheduler slice's messages into
  // one frame, so an optimistic channel carries the whole run in under a
  // dozen frames while a conservative one exchanges hundreds of
  // request/grant frames.
  const FuzzCluster::CrashSpec crash{
      .channel = 0, .frames = crash_frames, .endpoint = 2};
  const RecoveryReport report = run_with_crash_and_recover(
      spec, modes, wire, {}, transport::FaultPlan::none(), {1, 3}, crash,
      options, /*stall_timeout=*/4000ms);
  EXPECT_TRUE(report.crash_triggered);
  EXPECT_EQ(report.result, oracle);
}

TEST(DistributedRecovery, KillAndRecoverConservativeLoopback) {
  kill_and_recover_case(
      {ChannelMode::kConservative, ChannelMode::kConservative},
      Wire::kLoopback, "pia_kill_cons", /*crash_frames=*/60);
}

TEST(DistributedRecovery, KillAndRecoverOptimisticLoopback) {
  kill_and_recover_case({ChannelMode::kOptimistic, ChannelMode::kOptimistic},
                        Wire::kLoopback, "pia_kill_opt", /*crash_frames=*/5);
}

TEST(DistributedRecovery, KillAndRecoverMixedOverTcp) {
  kill_and_recover_case({ChannelMode::kOptimistic, ChannelMode::kConservative},
                        Wire::kTcp, "pia_kill_mixed_tcp",
                        /*crash_frames=*/5);
}

// ---------------------------------------------------------------------------
// Survivor keeps running state; only the dead peer restarts
// ---------------------------------------------------------------------------

TEST(DistributedRecovery, SurvivorReplacesLinkAndRestartedPeerRejoins) {
  SplitPipe pipe(16, ChannelMode::kConservative);
  pipe.cluster.start_all();
  const std::uint64_t token = pipe.a->initiate_snapshot();
  pipe.cluster.run_all();
  ASSERT_TRUE(pipe.a->snapshot_complete(token));
  ASSERT_TRUE(pipe.b->snapshot_complete(token));
  const auto final_received = pipe.sink->received;
  const auto final_times = pipe.sink->times;
  ASSERT_EQ(final_received.size(), 16u);

  // ssB "dies"; its durable image is all that remains of it.
  const Bytes image = pipe.b->export_snapshot(token);

  // The replacement process: identical wiring, fresh everything.
  PiaNode node2("nodeB2");
  Subsystem& b2 = node2.add_subsystem("ssB");
  auto& sink2 = b2.scheduler().emplace<pia::testing::Sink>("s");
  const NetId net_b2 = b2.scheduler().make_net("wire");
  b2.scheduler().attach(net_b2, sink2.id(), "in");
  transport::LinkPair pair = transport::make_loopback_pair();
  const ChannelId chan_b2 = b2.add_channel(
      "ssA<->ssB", ChannelMode::kConservative, std::move(pair.b));
  b2.export_net(chan_b2, net_b2);

  // Survivor side: swap in the fresh wire and rewind in memory; restarted
  // side: restore the durable image.  Then both announce the rejoin.
  pipe.a->replace_link(pipe.channels.a, std::move(pair.a));
  b2.start();
  b2.restore_snapshot_image(image);
  pipe.a->restore_snapshot(token);
  pipe.a->begin_rejoin(token);
  b2.begin_rejoin(token);

  Subsystem::RunOutcome outcome_a{};
  Subsystem::RunOutcome outcome_b{};
  std::thread ta([&] { outcome_a = pipe.a->run(); });
  std::thread tb([&] { outcome_b = b2.run(); });
  ta.join();
  tb.join();

  EXPECT_EQ(outcome_a, Subsystem::RunOutcome::kQuiescent);
  EXPECT_EQ(outcome_b, Subsystem::RunOutcome::kQuiescent);
  EXPECT_GT(pipe.a->stats().rejoins_verified, 0u);
  EXPECT_GT(b2.stats().rejoins_verified, 0u);
  // The restarted sink replays to exactly the uninterrupted history.
  EXPECT_EQ(sink2.received, final_received);
  EXPECT_EQ(sink2.times, final_times);
}

// ---------------------------------------------------------------------------
// Failure detection
// ---------------------------------------------------------------------------

TEST(DistributedRecovery, HeartbeatDetectsSilentPeer) {
  SplitPipe pipe(5, ChannelMode::kConservative);
  pipe.cluster.start_all();
  // Only A runs; B never services its endpoint, so nothing — not even a
  // heartbeat — ever arrives.  A must report the dead peer, not the stall.
  pipe.a->set_heartbeat(5ms, 60ms);
  const auto outcome =
      pipe.a->run(Subsystem::RunConfig{.stall_timeout = 2000ms});
  EXPECT_EQ(outcome, Subsystem::RunOutcome::kPeerDown);
  EXPECT_GT(pipe.a->stats().heartbeats_sent, 0u);
  EXPECT_EQ(pipe.a->stats().peer_down_events, 1u);
  EXPECT_TRUE(pipe.a->channel(pipe.channels.a).peer_down);
}

TEST(DistributedRecovery, HeartbeatsFlowOnHealthyRun) {
  SplitPipe pipe(10, ChannelMode::kConservative);
  pipe.a->set_heartbeat(1ms, 2000ms);
  pipe.b->set_heartbeat(1ms, 2000ms);
  pipe.cluster.start_all();
  auto outcomes = pipe.cluster.run_all();
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;
  EXPECT_EQ(pipe.sink->received.size(), 10u);
  // The first beacon fires immediately on both sides.
  EXPECT_GT(pipe.a->stats().heartbeats_sent, 0u);
  EXPECT_GT(pipe.b->stats().heartbeats_sent, 0u);
  EXPECT_EQ(pipe.a->stats().peer_down_events, 0u);
  EXPECT_EQ(pipe.b->stats().peer_down_events, 0u);
}

// ---------------------------------------------------------------------------
// Rejoin handshake rejects inconsistent restores
// ---------------------------------------------------------------------------

TEST(DistributedRecovery, UnsolicitedRejoinRaisesProtocolError) {
  SplitPipe pipe(1, ChannelMode::kConservative);
  pipe.cluster.start_all();
  pipe.a->begin_rejoin(42);
  try {
    pipe.b->drain();  // B has no rejoin in progress
    FAIL() << "unsolicited rejoin accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
}

TEST(DistributedRecovery, RejoinTokenMismatchRaisesProtocolError) {
  SplitPipe pipe(4, ChannelMode::kConservative);
  pipe.cluster.start_all();
  pipe.cluster.run_all();
  pipe.a->begin_rejoin(7);
  pipe.b->begin_rejoin(8);
  try {
    pipe.a->drain();  // sees B's token 8 against its own 7
    FAIL() << "token mismatch accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
}

TEST(DistributedRecovery, RejoinCounterMismatchRaisesProtocolError) {
  SplitPipe pipe(6, ChannelMode::kConservative);
  pipe.cluster.start_all();
  pipe.cluster.run_all();
  ASSERT_EQ(pipe.sink->received.size(), 6u);
  // Tamper with the survivor's sequence state: the peer's cross-check must
  // refuse to resume on divergent histories.
  pipe.a->channel(pipe.channels.a).event_msgs_sent += 1;
  pipe.a->begin_rejoin(7);
  pipe.b->begin_rejoin(7);
  try {
    pipe.b->drain();
    FAIL() << "counter mismatch accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.kind(), ErrorKind::kProtocol);
  }
}

}  // namespace
}  // namespace pia::dist
