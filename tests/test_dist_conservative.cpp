#include <gtest/gtest.h>

#include "base/error.hpp"
#include "dist_helpers.hpp"

namespace pia::dist {
namespace {

using testing::SplitLoop;
using testing::SplitPipe;
using testing::single_host_loop_reference;

TEST(Topology, ForestsAreValid) {
  Topology t;
  t.add_channel("a", "b");
  t.add_channel("b", "c");
  t.add_channel("b", "d");
  EXPECT_NO_THROW(t.validate());
  EXPECT_TRUE(t.valid());
}

TEST(Topology, TriangleRejected) {
  // Fig. 4's three subsystems: SS1-SS2, SS1-SS3 is fine; adding SS2-SS3
  // would close a cycle of length 3.
  Topology t;
  t.add_channel("ss1", "ss2");
  t.add_channel("ss1", "ss3");
  EXPECT_TRUE(t.valid());
  t.add_channel("ss2", "ss3");
  EXPECT_THROW(t.validate(), Error);
}

TEST(Topology, SelfChannelRejected) {
  Topology t;
  t.add_channel("a", "a");
  EXPECT_THROW(t.validate(), Error);
}

TEST(Topology, ParallelChannelsRejected) {
  Topology t;
  t.add_channel("a", "b");
  t.add_channel("b", "a");
  EXPECT_THROW(t.validate(), Error);
}

TEST(ConservativePipe, DeliversAcrossSubsystems) {
  SplitPipe pipe(10, ChannelMode::kConservative);
  pipe.cluster.start_all();
  const auto outcomes = pipe.cluster.run_all();
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;

  EXPECT_EQ(pipe.sink->received,
            (std::vector<std::uint64_t>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
  // Delivery times preserved across the split: producer emits at 10,20,...
  for (std::size_t i = 0; i < pipe.sink->times.size(); ++i)
    EXPECT_EQ(pipe.sink->times[i], ticks(10 * (i + 1)));
  EXPECT_EQ(pipe.a->stats().events_sent, 10u);
  EXPECT_EQ(pipe.b->stats().events_received, 10u);
}

TEST(ConservativePipe, WorksOverTcp) {
  SplitPipe pipe(25, ChannelMode::kConservative, Wire::kTcp);
  pipe.cluster.start_all();
  pipe.cluster.run_all();
  ASSERT_EQ(pipe.sink->received.size(), 25u);
  for (std::size_t i = 0; i < 25; ++i)
    EXPECT_EQ(pipe.sink->received[i], i);
}

TEST(ConservativePipe, WorksWithWideAreaLatency) {
  using namespace std::chrono_literals;
  SplitPipe pipe(10, ChannelMode::kConservative, Wire::kLoopback,
                 transport::LatencyModel{.base = 2ms});
  pipe.cluster.start_all();
  pipe.cluster.run_all();
  EXPECT_EQ(pipe.sink->received.size(), 10u);
  EXPECT_EQ(pipe.sink->times.back(), ticks(100));
}

TEST(ConservativeLoop, RoundTripMatchesSingleHost) {
  SplitLoop loop(20, ChannelMode::kConservative);
  loop.cluster.start_all();
  const auto outcomes = loop.cluster.run_all();
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;
  EXPECT_EQ(loop.sink->received, single_host_loop_reference(20));
  EXPECT_EQ(loop.relay->forwarded, 20u);
}

TEST(ConservativeLoop, SafeTimeProtocolExchangesGrants) {
  SplitLoop loop(20, ChannelMode::kConservative);
  loop.cluster.start_all();
  loop.cluster.run_all();
  // Both sides must have granted and received safe times; neither may have
  // rolled back (conservative never does).
  EXPECT_GT(loop.a->stats().grants_received, 0u);
  EXPECT_GT(loop.b->stats().grants_sent, 0u);
  EXPECT_EQ(loop.a->stats().rollbacks, 0u);
  EXPECT_EQ(loop.b->stats().rollbacks, 0u);
}

TEST(ConservativeChain, ThreeSubsystemsConverge) {
  // Fig. 4's shape: SS1 in the middle with channels to SS2 and SS3.  Safe
  // time must flow through the chain without deadlock (self-restriction
  // removal).
  NodeCluster cluster;
  PiaNode& node = cluster.add_node("node");
  Subsystem& ss1 = node.add_subsystem("ss1");
  Subsystem& ss2 = node.add_subsystem("ss2");
  Subsystem& ss3 = node.add_subsystem("ss3");

  // ss2: producer -> ss1: relay -> ss3: sink
  auto& producer = ss2.scheduler().emplace<testing::Producer>("p", 15);
  auto& relay = ss1.scheduler().emplace<testing::Relay>("r");
  auto& sink = ss3.scheduler().emplace<testing::Sink>("s");

  const NetId fwd2 = ss2.scheduler().make_net("fwd");
  ss2.scheduler().attach(fwd2, producer.id(), "out");
  const NetId fwd1 = ss1.scheduler().make_net("fwd");
  ss1.scheduler().attach(fwd1, relay.id(), "in");
  const NetId out1 = ss1.scheduler().make_net("out");
  ss1.scheduler().attach(out1, relay.id(), "out");
  const NetId out3 = ss3.scheduler().make_net("out");
  ss3.scheduler().attach(out3, sink.id(), "in");

  const ChannelPair c12 =
      cluster.connect_checked(ss1, ss2, ChannelMode::kConservative);
  const ChannelPair c13 =
      cluster.connect_checked(ss1, ss3, ChannelMode::kConservative);
  split_net(ss1, c12.a, fwd1, ss2, c12.b, fwd2);
  split_net(ss1, c13.a, out1, ss3, c13.b, out3);

  cluster.start_all();
  const auto outcomes = cluster.run_all();
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;
  ASSERT_EQ(sink.received.size(), 15u);
  for (std::size_t i = 0; i < 15; ++i)
    EXPECT_EQ(sink.received[i], i + 1);  // relay adds 1
}

TEST(ConservativeStall, Fig3SubsystemMustWaitForPeer) {
  // The Fig. 3 scenario: a subsystem with a ready event cannot dispatch it
  // until the peer grants a safe time that covers it.
  SplitPipe pipe(1, ChannelMode::kConservative, Wire::kLoopback,
                 /*latency=*/{}, /*period=*/ticks(10));
  pipe.cluster.start_all();

  // ssB's sink has nothing; ssA's producer will emit at t=10.  ssB cannot
  // know whether ssA will send before its own (hypothetical) events, so any
  // local event on ssB would be blocked until a grant arrives.
  // Drive the loop manually: before any grant exchange, ssB's barrier is 0.
  EXPECT_EQ(pipe.b->scheduler().now(), VirtualTime::zero());
  Event probe{.time = ticks(20),
              .target = pipe.sink->id(),
              .port = 0,
              .kind = EventKind::kDeliver,
              .value = Value{std::uint64_t{99}}};
  pipe.b->scheduler().inject(probe);
  EXPECT_EQ(pipe.b->try_advance(), Subsystem::StepResult::kBlocked);

  // Once both sides run, grants flow: the probe (t=20) and the remote
  // event (t=10) are delivered in timestamp order.
  pipe.cluster.run_all();
  ASSERT_EQ(pipe.sink->received.size(), 2u);
  EXPECT_EQ(pipe.sink->received[0], 0u);   // remote at t=10 first
  EXPECT_EQ(pipe.sink->received[1], 99u);  // probe at t=20 second
  // (Whether run() observes an explicit stall is a wall-clock race — the
  // deterministic kBlocked assertion above is the Fig. 3 property.)
}

TEST(RunLevelCoordination, SwitchPropagatesAcrossChannel) {
  SplitPipe pipe(3, ChannelMode::kConservative);
  pipe.cluster.start_all();
  // ssA asks ssB to switch the sink's runlevel (proxy coordination).
  pipe.a->send_runlevel(pipe.channels.a, "s", runlevels::kPacket);
  pipe.cluster.run_all();
  EXPECT_EQ(pipe.sink->runlevel().name, "packetLevel");
}

// --- effective_grant() boundary cases ---------------------------------------
//
// The grant clamp walks the output log at index granted_in_seen -
// output_trimmed; fossil collection slides that window, so the boundaries
// where the window starts or falls entirely off the log are load-bearing.

struct GrantRig {
  transport::LinkPair pair = transport::make_loopback_pair();
  ChannelEndpoint ep{"grant-test", ChannelMode::kConservative,
                     std::move(pair.a), /*origin_id=*/1};
};

TEST(EffectiveGrant, AllSendsSeenReturnsRawGrant) {
  GrantRig rig;
  ChannelEndpoint& ep = rig.ep;
  ep.granted_in = ticks(100);
  ep.send_event(0, Value{1u}, ticks(40));
  ep.granted_in_seen = ep.event_msgs_sent;  // peer saw everything
  EXPECT_EQ(ep.effective_grant(), ticks(100));
}

TEST(EffectiveGrant, SeenEqualsTrimmedClampsToFirstSurvivingSend) {
  GrantRig rig;
  ChannelEndpoint& ep = rig.ep;
  ep.granted_in = ticks(100);
  ep.granted_in_lookahead = ticks(5);
  for (int i = 0; i < 3; ++i)
    ep.send_event(0, Value{static_cast<std::uint64_t>(i)},
                  ticks(10 * (i + 1)));
  // Fossil collection trimmed the first send; the peer's grant was grounded
  // exactly at that trim point, so the clamp must use output_log[0] (t=20),
  // not walk off the front of the window.
  ep.output_log.erase(ep.output_log.begin());
  ep.output_trimmed = 1;
  ep.granted_in_seen = 1;
  EXPECT_EQ(ep.effective_grant(), ticks(20) + ticks(5));
}

TEST(EffectiveGrant, SeenBelowTrimmedIsPreGvtAndUnclamped) {
  GrantRig rig;
  ChannelEndpoint& ep = rig.ep;
  ep.granted_in = ticks(100);
  ep.granted_in_lookahead = ticks(0);
  for (int i = 0; i < 3; ++i)
    ep.send_event(0, Value{static_cast<std::uint64_t>(i)},
                  ticks(10 * (i + 1)));
  ep.output_log.erase(ep.output_log.begin(), ep.output_log.begin() + 2);
  ep.output_trimmed = 2;
  // A grant grounded before the GVT trim references sends that are already
  // irrevocably committed — it must pass through unclamped.
  ep.granted_in_seen = 1;
  EXPECT_EQ(ep.effective_grant(), ticks(100));
}

TEST(EffectiveGrant, FullyFossilCollectedLogReturnsRawGrant) {
  GrantRig rig;
  ChannelEndpoint& ep = rig.ep;
  ep.granted_in = ticks(100);
  ep.granted_in_lookahead = ticks(0);
  for (int i = 0; i < 3; ++i)
    ep.send_event(0, Value{static_cast<std::uint64_t>(i)},
                  ticks(10 * (i + 1)));
  // Everything the grant could reference is gone: index lands past the end
  // of the (empty) log, which means all those sends are pre-GVT history.
  ep.output_log.clear();
  ep.output_trimmed = 3;
  ep.granted_in_seen = 2;
  EXPECT_EQ(ep.effective_grant(), ticks(100));
}

TEST(SplitNet, RegistrationOrderMismatchIsCaught) {
  NodeCluster cluster;
  PiaNode& node = cluster.add_node("n");
  Subsystem& a = node.add_subsystem("a");
  Subsystem& b = node.add_subsystem("b");
  const NetId na1 = a.scheduler().make_net("n1");
  const NetId na2 = a.scheduler().make_net("n2");
  const NetId nb1 = b.scheduler().make_net("n1");
  const ChannelPair ch = cluster.connect_checked(a, b, ChannelMode::kConservative);
  a.export_net(ch.a, na1);  // a registers one extra net first
  EXPECT_THROW(split_net(a, ch.a, na2, b, ch.b, nb1), Error);
}

}  // namespace
}  // namespace pia::dist
