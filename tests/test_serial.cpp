#include <gtest/gtest.h>

#include <limits>

#include "base/rng.hpp"
#include "serial/archive.hpp"
#include "serial/arena.hpp"

namespace pia::serial {
namespace {

TEST(Archive, VarintRoundTripBoundaries) {
  OutArchive out;
  const std::uint64_t cases[] = {
      0, 1, 127, 128, 16383, 16384, 0xFFFFFFFFull,
      std::numeric_limits<std::uint64_t>::max()};
  for (auto v : cases) out.put_varint(v);
  InArchive in(out.bytes());
  for (auto v : cases) EXPECT_EQ(in.get_varint(), v);
  EXPECT_TRUE(in.at_end());
}

TEST(Archive, SignedZigzag) {
  OutArchive out;
  const std::int64_t cases[] = {0, -1, 1, -64, 63,
                                std::numeric_limits<std::int64_t>::min(),
                                std::numeric_limits<std::int64_t>::max()};
  for (auto v : cases) out.put_i64(v);
  InArchive in(out.bytes());
  for (auto v : cases) EXPECT_EQ(in.get_i64(), v);
}

TEST(Archive, SmallSignedValuesAreCompact) {
  OutArchive out;
  out.put_i64(-3);
  EXPECT_EQ(out.size(), 1u);  // zigzag keeps small negatives in one byte
}

TEST(Archive, DoubleRoundTrip) {
  OutArchive out;
  const double cases[] = {0.0, -0.0, 1.5, -3.25e300, 5e-324};
  for (auto v : cases) out.put_double(v);
  InArchive in(out.bytes());
  for (auto v : cases) EXPECT_EQ(in.get_double(), v);
}

TEST(Archive, StringAndBytes) {
  OutArchive out;
  out.put_string("pia");
  out.put_string("");
  const Bytes binary{std::byte{0x00}, std::byte{0x01}, std::byte{0x02}};
  out.put_bytes(binary);
  InArchive in(out.bytes());
  EXPECT_EQ(in.get_string(), "pia");
  EXPECT_EQ(in.get_string(), "");
  EXPECT_EQ(in.get_bytes(), binary);
}

TEST(Archive, UnderflowThrows) {
  OutArchive out;
  out.put_varint(300);
  InArchive in(out.bytes());
  in.get_varint();
  EXPECT_THROW(in.get_u8(), Error);
}

TEST(Archive, TruncatedStringThrows) {
  OutArchive out;
  out.put_varint(100);  // claims 100 bytes, provides none
  InArchive in(out.bytes());
  EXPECT_THROW(in.get_string(), Error);
}

TEST(Archive, GenericContainers) {
  OutArchive out;
  write(out, std::vector<std::uint32_t>{1, 2, 3});
  write(out, std::optional<std::string>{"x"});
  write(out, std::optional<std::string>{});
  write(out, std::map<std::string, std::int32_t>{{"a", -1}, {"b", 2}});
  write(out, VirtualTime{1234});
  write(out, ComponentId{9});

  InArchive in(out.bytes());
  EXPECT_EQ((read_vector<std::uint32_t>(in)),
            (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(read_optional<std::string>(in), "x");
  EXPECT_EQ(read_optional<std::string>(in), std::nullopt);
  const auto m = (read_map<std::string, std::int32_t>(in));
  EXPECT_EQ(m.at("a"), -1);
  EXPECT_EQ(m.at("b"), 2);
  EXPECT_EQ(read<VirtualTime>(in), VirtualTime{1234});
  EXPECT_EQ((read_id<ComponentTag>(in)), ComponentId{9});
}

TEST(Archive, SectionMatch) {
  OutArchive out;
  begin_section(out, "pia.test", 3);
  InArchive in(out.bytes());
  EXPECT_EQ(expect_section(in, "pia.test"), 3u);
}

TEST(Archive, SectionMismatchThrows) {
  OutArchive out;
  begin_section(out, "pia.test", 3);
  InArchive in(out.bytes());
  EXPECT_THROW(expect_section(in, "pia.other"), Error);
}

// Property sweep: random mixed payloads survive a round trip bit-exactly.
class ArchiveFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArchiveFuzz, MixedRoundTrip) {
  Rng rng(GetParam());
  OutArchive out;
  std::vector<std::uint64_t> u64s;
  std::vector<std::int64_t> i64s;
  std::vector<Bytes> blobs;
  for (int i = 0; i < 200; ++i) {
    u64s.push_back(rng.next() >> rng.below(64));
    i64s.push_back(static_cast<std::int64_t>(rng.next()));
    Bytes blob(rng.below(64));
    for (auto& b : blob) b = static_cast<std::byte>(rng.below(256));
    blobs.push_back(std::move(blob));
  }
  for (int i = 0; i < 200; ++i) {
    out.put_varint(u64s[i]);
    out.put_i64(i64s[i]);
    out.put_bytes(blobs[i]);
  }
  InArchive in(out.bytes());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(in.get_varint(), u64s[i]);
    EXPECT_EQ(in.get_i64(), i64s[i]);
    EXPECT_EQ(in.get_bytes(), blobs[i]);
  }
  EXPECT_TRUE(in.at_end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArchiveFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(VarintEncode, RawMatchesArchive) {
  for (const std::uint64_t v :
       {0ull, 1ull, 127ull, 128ull, 16383ull, 16384ull, 1ull << 32,
        ~0ull}) {
    std::byte raw[10];
    const std::size_t n = encode_varint(raw, v);
    OutArchive out;
    out.put_varint(v);
    ASSERT_EQ(out.bytes().size(), n);
    EXPECT_TRUE(std::equal(raw, raw + n, out.bytes().data()));
  }
}

TEST(VarintEncode, PaddedFormDecodesToSameValue) {
  // The arena send path back-patches fixed-width length prefixes, relying
  // on the decoder accepting redundant LEB128 continuations.
  for (const std::uint64_t v : {0ull, 1ull, 127ull, 300ull, 16383ull}) {
    for (const std::size_t width : {2ull, 3ull, 5ull}) {
      Bytes padded(width);
      encode_padded_varint(padded.data(), width, v);
      InArchive in(padded);
      EXPECT_EQ(in.get_varint(), v) << "width " << width;
      EXPECT_TRUE(in.at_end());
    }
  }
}

TEST(OutArchiveExternal, WritesIntoCallerBuffer) {
  Bytes external;
  OutArchive out(external);
  out.put_varint(300);
  out.put_bytes(Bytes{std::byte{0xAB}, std::byte{0xCD}});
  EXPECT_FALSE(external.empty());
  InArchive in(external);
  EXPECT_EQ(in.get_varint(), 300u);
  EXPECT_EQ(in.get_bytes(), (Bytes{std::byte{0xAB}, std::byte{0xCD}}));
}

TEST(OutArchiveExternal, MovedFromSelfOwnedArchiveKeepsBytes) {
  OutArchive a;
  a.put_varint(7);
  OutArchive b = std::move(a);
  b.put_varint(8);
  InArchive in(b.bytes());
  EXPECT_EQ(in.get_varint(), 7u);
  EXPECT_EQ(in.get_varint(), 8u);
}

TEST(FrameArena, EpochClearsButKeepsCapacity) {
  FrameArena arena;
  arena.storage().resize(10000);
  const std::size_t cap = arena.storage().capacity();
  arena.end_epoch();
  EXPECT_TRUE(arena.storage().empty());
  EXPECT_GE(arena.storage().capacity(), cap);  // steady state: no realloc
  EXPECT_EQ(arena.epochs(), 1u);
}

TEST(FrameArena, ShrinksAfterAWindowOfSmallEpochs) {
  // One giant epoch inflates the buffer; a full window of small epochs must
  // hand the slack back (bounded by the 2× window-peak rule).
  FrameArena arena(/*shrink_window=*/4);
  arena.storage().resize(1 << 20);
  arena.end_epoch();
  for (int i = 0; i < 8; ++i) {
    arena.storage().resize(64);
    arena.end_epoch();
  }
  EXPECT_GE(arena.shrinks(), 1u);
  EXPECT_LT(arena.capacity(), std::size_t{1} << 20);
}

TEST(FrameArena, NeverShrinksBelowFloorOrActivePeak) {
  FrameArena arena(/*shrink_window=*/2);
  for (int i = 0; i < 10; ++i) {
    arena.storage().resize(50000);  // every epoch genuinely needs 50 KB
    arena.end_epoch();
  }
  EXPECT_EQ(arena.shrinks(), 0u);
  EXPECT_GE(arena.capacity(), 50000u);
}

}  // namespace
}  // namespace pia::serial
