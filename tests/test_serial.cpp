#include <gtest/gtest.h>

#include <limits>

#include "base/rng.hpp"
#include "serial/archive.hpp"

namespace pia::serial {
namespace {

TEST(Archive, VarintRoundTripBoundaries) {
  OutArchive out;
  const std::uint64_t cases[] = {
      0, 1, 127, 128, 16383, 16384, 0xFFFFFFFFull,
      std::numeric_limits<std::uint64_t>::max()};
  for (auto v : cases) out.put_varint(v);
  InArchive in(out.bytes());
  for (auto v : cases) EXPECT_EQ(in.get_varint(), v);
  EXPECT_TRUE(in.at_end());
}

TEST(Archive, SignedZigzag) {
  OutArchive out;
  const std::int64_t cases[] = {0, -1, 1, -64, 63,
                                std::numeric_limits<std::int64_t>::min(),
                                std::numeric_limits<std::int64_t>::max()};
  for (auto v : cases) out.put_i64(v);
  InArchive in(out.bytes());
  for (auto v : cases) EXPECT_EQ(in.get_i64(), v);
}

TEST(Archive, SmallSignedValuesAreCompact) {
  OutArchive out;
  out.put_i64(-3);
  EXPECT_EQ(out.size(), 1u);  // zigzag keeps small negatives in one byte
}

TEST(Archive, DoubleRoundTrip) {
  OutArchive out;
  const double cases[] = {0.0, -0.0, 1.5, -3.25e300, 5e-324};
  for (auto v : cases) out.put_double(v);
  InArchive in(out.bytes());
  for (auto v : cases) EXPECT_EQ(in.get_double(), v);
}

TEST(Archive, StringAndBytes) {
  OutArchive out;
  out.put_string("pia");
  out.put_string("");
  const Bytes binary{std::byte{0x00}, std::byte{0x01}, std::byte{0x02}};
  out.put_bytes(binary);
  InArchive in(out.bytes());
  EXPECT_EQ(in.get_string(), "pia");
  EXPECT_EQ(in.get_string(), "");
  EXPECT_EQ(in.get_bytes(), binary);
}

TEST(Archive, UnderflowThrows) {
  OutArchive out;
  out.put_varint(300);
  InArchive in(out.bytes());
  in.get_varint();
  EXPECT_THROW(in.get_u8(), Error);
}

TEST(Archive, TruncatedStringThrows) {
  OutArchive out;
  out.put_varint(100);  // claims 100 bytes, provides none
  InArchive in(out.bytes());
  EXPECT_THROW(in.get_string(), Error);
}

TEST(Archive, GenericContainers) {
  OutArchive out;
  write(out, std::vector<std::uint32_t>{1, 2, 3});
  write(out, std::optional<std::string>{"x"});
  write(out, std::optional<std::string>{});
  write(out, std::map<std::string, std::int32_t>{{"a", -1}, {"b", 2}});
  write(out, VirtualTime{1234});
  write(out, ComponentId{9});

  InArchive in(out.bytes());
  EXPECT_EQ((read_vector<std::uint32_t>(in)),
            (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_EQ(read_optional<std::string>(in), "x");
  EXPECT_EQ(read_optional<std::string>(in), std::nullopt);
  const auto m = (read_map<std::string, std::int32_t>(in));
  EXPECT_EQ(m.at("a"), -1);
  EXPECT_EQ(m.at("b"), 2);
  EXPECT_EQ(read<VirtualTime>(in), VirtualTime{1234});
  EXPECT_EQ((read_id<ComponentTag>(in)), ComponentId{9});
}

TEST(Archive, SectionMatch) {
  OutArchive out;
  begin_section(out, "pia.test", 3);
  InArchive in(out.bytes());
  EXPECT_EQ(expect_section(in, "pia.test"), 3u);
}

TEST(Archive, SectionMismatchThrows) {
  OutArchive out;
  begin_section(out, "pia.test", 3);
  InArchive in(out.bytes());
  EXPECT_THROW(expect_section(in, "pia.other"), Error);
}

// Property sweep: random mixed payloads survive a round trip bit-exactly.
class ArchiveFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ArchiveFuzz, MixedRoundTrip) {
  Rng rng(GetParam());
  OutArchive out;
  std::vector<std::uint64_t> u64s;
  std::vector<std::int64_t> i64s;
  std::vector<Bytes> blobs;
  for (int i = 0; i < 200; ++i) {
    u64s.push_back(rng.next() >> rng.below(64));
    i64s.push_back(static_cast<std::int64_t>(rng.next()));
    Bytes blob(rng.below(64));
    for (auto& b : blob) b = static_cast<std::byte>(rng.below(256));
    blobs.push_back(std::move(blob));
  }
  for (int i = 0; i < 200; ++i) {
    out.put_varint(u64s[i]);
    out.put_i64(i64s[i]);
    out.put_bytes(blobs[i]);
  }
  InArchive in(out.bytes());
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(in.get_varint(), u64s[i]);
    EXPECT_EQ(in.get_i64(), i64s[i]);
    EXPECT_EQ(in.get_bytes(), blobs[i]);
  }
  EXPECT_TRUE(in.at_end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArchiveFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace pia::serial
