#include <gtest/gtest.h>

#include <map>

#include "core/scheduler.hpp"
#include "core/simulation.hpp"
#include "helpers.hpp"

namespace pia {
namespace {

using testing::Producer;
using testing::Relay;
using testing::Sink;

TEST(Kernel, ProducerToSinkDelivery) {
  Scheduler sched;
  auto& producer = sched.emplace<Producer>("p", 5);
  auto& sink = sched.emplace<Sink>("s");
  sched.connect(producer.id(), "out", sink.id(), "in");
  sched.init();
  sched.run();
  EXPECT_EQ(sink.received, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(Kernel, DeliveryTimesFollowPeriodAndNetDelay) {
  Scheduler sched;
  auto& producer =
      sched.emplace<Producer>("p", 3, /*period=*/ticks(10), /*start=*/ticks(100));
  auto& sink = sched.emplace<Sink>("s");
  sched.connect(producer.id(), "out", sink.id(), "in", /*delay=*/ticks(7));
  sched.init();
  sched.run();
  EXPECT_EQ(sink.times, (std::vector<VirtualTime>{ticks(107), ticks(117),
                                                  ticks(127)}));
}

TEST(Kernel, TwoLevelTimeInvariants) {
  // The paper's two-level virtual time (§2.1): subsystem time advances
  // monotonically along dispatched event times; a component's local time
  // never decreases and, once the component is activated, is never behind
  // subsystem time (its view of the world is up to date when restarted).
  Scheduler sched;
  auto& producer = sched.emplace<Producer>("p", 20);
  auto& relay = sched.emplace<Relay>("r", /*think=*/ticks(3));
  auto& sink = sched.emplace<Sink>("s");
  sched.connect(producer.id(), "out", relay.id(), "in");
  sched.connect(relay.id(), "out", sink.id(), "in");
  sched.init();

  std::map<ComponentId, VirtualTime> last_local;
  VirtualTime last_now = VirtualTime::zero();
  while (sched.step()) {
    EXPECT_GE(sched.now(), last_now) << "subsystem time went backwards";
    last_now = sched.now();
    for (ComponentId id : sched.component_ids()) {
      const VirtualTime local = sched.component(id).local_time();
      auto [it, fresh] = last_local.emplace(id, local);
      if (!fresh) {
        EXPECT_GE(local, it->second)
            << sched.component(id).name() << " local time went backwards";
        it->second = local;
      }
      // Once activated (local > 0), a component is never behind the
      // subsystem clock beyond the instant of its last activation.
      if (local > VirtualTime::zero() && local >= sched.now()) {
        EXPECT_LE(sched.now(), local);
      }
    }
  }
  EXPECT_EQ(sink.received.size(), 20u);
  // At quiescence every component caught up with everything it was sent.
  EXPECT_EQ(relay.forwarded, 20u);
}

TEST(Kernel, RelayAddsComputationTime) {
  Scheduler sched;
  auto& producer = sched.emplace<Producer>("p", 1, ticks(10), ticks(10));
  auto& relay = sched.emplace<Relay>("r", ticks(5));
  auto& sink = sched.emplace<Sink>("s");
  sched.connect(producer.id(), "out", relay.id(), "in");
  sched.connect(relay.id(), "out", sink.id(), "in");
  sched.init();
  sched.run();
  // Producer emits at 10; relay thinks 5; sink receives at 15.
  ASSERT_EQ(sink.times.size(), 1u);
  EXPECT_EQ(sink.times[0], ticks(15));
  EXPECT_EQ(sink.received[0], 1u);  // relay forwards value + 1
}

TEST(Kernel, FanOutDeliversToAllSinks) {
  Scheduler sched;
  auto& producer = sched.emplace<Producer>("p", 3);
  auto& s1 = sched.emplace<Sink>("s1");
  auto& s2 = sched.emplace<Sink>("s2");
  const NetId net = sched.make_net("bus");
  sched.attach(net, producer.id(), "out");
  sched.attach(net, s1.id(), "in");
  sched.attach(net, s2.id(), "in");
  sched.init();
  sched.run();
  EXPECT_EQ(s1.received.size(), 3u);
  EXPECT_EQ(s2.received.size(), 3u);
}

TEST(Kernel, DeterministicTieBreaking) {
  // Two producers emitting at identical times must dispatch identically on
  // every run (checkpoint/rollback correctness depends on this).
  auto run_once = [] {
    Scheduler sched;
    auto& p1 = sched.emplace<Producer>("p1", 10, ticks(10), ticks(10));
    auto& p2 = sched.emplace<Producer>("p2", 10, ticks(10), ticks(10));
    auto& sink = sched.emplace<Sink>("s");
    const NetId net = sched.make_net("bus");
    sched.attach(net, p1.id(), "out");
    sched.attach(net, p2.id(), "out");
    sched.attach(net, sink.id(), "in");
    sched.init();
    sched.run();
    return sink.received;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Kernel, SynchronousViolationThrowsWithoutHandler) {
  Scheduler sched;
  auto& sink = sched.emplace<Sink>("s", PortSync::kSynchronous);
  sched.init();
  // Pretend the sink computed ahead, then inject an event in its past.
  sched.inject(Event{.time = ticks(100),
                     .target = sink.id(),
                     .port = 0,
                     .kind = EventKind::kDeliver,
                     .value = Value{std::uint64_t{1}}});
  sched.run();
  EXPECT_EQ(sink.local_time(), ticks(100));
  // Subsystem time is now 100; injecting an earlier event is a straggler.
  EXPECT_THROW(sched.inject(Event{.time = ticks(50),
                                  .target = sink.id(),
                                  .port = 0,
                                  .kind = EventKind::kDeliver,
                                  .value = Value{std::uint64_t{2}}}),
               Error);
}

TEST(Kernel, AsynchronousPortAcceptsInterruptStyleDelivery) {
  Scheduler sched;
  auto& sink = sched.emplace<Sink>("s", PortSync::kAsynchronous);
  // A second component keeps subsystem time honest.
  auto& producer = sched.emplace<Producer>("p", 1, ticks(10), ticks(200));
  auto& psink = sched.emplace<Sink>("ps");
  sched.connect(producer.id(), "out", psink.id(), "in");
  sched.init();

  sched.inject(Event{.time = ticks(100),
                     .target = sink.id(),
                     .port = 0,
                     .kind = EventKind::kDeliver,
                     .value = Value{std::uint64_t{7}}});
  sched.run();
  EXPECT_EQ(sink.received, (std::vector<std::uint64_t>{7}));
  EXPECT_EQ(sched.stats().violations, 0u);
}

TEST(Kernel, ViolationHandlerIntercepts) {
  Scheduler sched;
  auto& sink = sched.emplace<Sink>("s");
  sched.init();
  sched.inject(Event{.time = ticks(100),
                     .target = sink.id(),
                     .port = 0,
                     .kind = EventKind::kDeliver,
                     .value = Value{std::uint64_t{1}}});
  sched.run();

  // Force a violation: deliver at t=100 again after the component reached
  // t=100 but pretend an earlier stamp via direct scheduling below now.
  int handled = 0;
  sched.violation_handler = [&](const Event&, Component&) {
    ++handled;
    return true;
  };
  // Event at the current subsystem time but before the sink's local time
  // would need the sink to have advanced; emulate by advancing via inject at
  // equal time then a later manual check: use a sink that advanced itself.
  // Simplest: inject at time == now but sink local time is 100 == event
  // time, so no violation; instead check handler is not called spuriously.
  sched.inject(Event{.time = ticks(100),
                     .target = sink.id(),
                     .port = 0,
                     .kind = EventKind::kDeliver,
                     .value = Value{std::uint64_t{2}}});
  sched.run();
  EXPECT_EQ(handled, 0);
  EXPECT_EQ(sink.received.size(), 2u);
}

TEST(Kernel, WiringErrors) {
  Scheduler sched;
  auto& producer = sched.emplace<Producer>("p", 1);
  auto& sink = sched.emplace<Sink>("s");
  EXPECT_THROW(sched.connect(producer.id(), "nope", sink.id(), "in"), Error);
  sched.connect(producer.id(), "out", sink.id(), "in");
  // Double-wiring the same port is a precondition failure.
  auto& sink2 = sched.emplace<Sink>("s2");
  EXPECT_THROW(sched.connect(producer.id(), "out", sink2.id(), "in"), Error);
}

TEST(Kernel, DuplicateComponentNameRejected) {
  Scheduler sched;
  sched.emplace<Sink>("same");
  EXPECT_THROW(sched.emplace<Sink>("same"), Error);
}

TEST(Kernel, SendOnInputPortRejected) {
  class Bad : public Component {
   public:
    Bad() : Component("bad") { in_ = add_input("in"); }
    void on_init() override { wake_after(ticks(1)); }
    void on_wake() override { send(in_, Value{std::uint64_t{1}}); }
    void on_receive(PortIndex, const Value&) override {}
    PortIndex in_;
  };
  Scheduler sched;
  sched.emplace<Bad>();
  sched.init();
  EXPECT_THROW(sched.run(), Error);
}

TEST(Kernel, RunUntilStopsAtBoundary) {
  Scheduler sched;
  auto& producer = sched.emplace<Producer>("p", 10, ticks(10), ticks(10));
  auto& sink = sched.emplace<Sink>("s");
  sched.connect(producer.id(), "out", sink.id(), "in");
  sched.init();
  sched.run_until(ticks(45));
  EXPECT_EQ(sink.received.size(), 4u);  // deliveries at 10,20,30,40
  EXPECT_LE(sched.now(), ticks(45));
  sched.run();
  EXPECT_EQ(sink.received.size(), 10u);
}

TEST(Kernel, StatsAreAccurate) {
  Scheduler sched;
  auto& producer = sched.emplace<Producer>("p", 5);
  auto& sink = sched.emplace<Sink>("s");
  sched.connect(producer.id(), "out", sink.id(), "in");
  sched.init();
  sched.run();
  // 5 wakes + 5 deliveries.
  EXPECT_EQ(sched.stats().events_dispatched, 10u);
  EXPECT_EQ(sched.stats().wakes_dispatched, 5u);
}

TEST(Kernel, ComponentLookup) {
  Scheduler sched;
  auto& sink = sched.emplace<Sink>("findme");
  EXPECT_EQ(sched.find_component("findme"), &sink);
  EXPECT_EQ(sched.find_component("ghost"), nullptr);
  EXPECT_EQ(sched.component_id("findme"), sink.id());
  EXPECT_THROW(sched.component_id("ghost"), Error);
}

TEST(SimulationFacade, ConnectAndRun) {
  Simulation sim;
  auto& producer = sim.emplace<Producer>("p", 3);
  auto& sink = sim.emplace<Sink>("s");
  sim.connect(producer, "out", sink, "in");
  sim.init();
  sim.run();
  EXPECT_EQ(sink.received.size(), 3u);
  EXPECT_GT(sim.now(), VirtualTime::zero());
}

}  // namespace
}  // namespace pia
