#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "wubbleu/handwriting.hpp"
#include "wubbleu/jpeg.hpp"
#include "wubbleu/page.hpp"
#include "wubbleu/system.hpp"

namespace pia::wubbleu {
namespace {

// ---------------------------------------------------------------------------
// JPEG codec
// ---------------------------------------------------------------------------

TEST(Jpeg, EncodeDecodeRoundTripDimensions) {
  const GrayImage image = make_test_image(64, 48, 7);
  const Bytes encoded = jpeg_encode(image);
  const GrayImage decoded = jpeg_decode(encoded);
  EXPECT_EQ(decoded.width, 64u);
  EXPECT_EQ(decoded.height, 48u);
}

TEST(Jpeg, LossyButClose) {
  const GrayImage image = make_test_image(64, 64, 3);
  const GrayImage decoded = jpeg_decode(jpeg_encode(image, JpegQuality{16}));
  // Mean absolute error should be small at high quality.
  double err = 0;
  for (std::size_t i = 0; i < image.pixels.size(); ++i)
    err += std::abs(static_cast<int>(image.pixels[i]) -
                    static_cast<int>(decoded.pixels[i]));
  err /= static_cast<double>(image.pixels.size());
  EXPECT_LT(err, 12.0);
}

TEST(Jpeg, HigherQualityIsBiggerAndCloser) {
  const GrayImage image = make_test_image(64, 64, 11);
  const Bytes coarse = jpeg_encode(image, JpegQuality{2});
  const Bytes fine = jpeg_encode(image, JpegQuality{24});
  EXPECT_LT(coarse.size(), fine.size());

  auto mae = [&](const Bytes& data) {
    const GrayImage decoded = jpeg_decode(data);
    double err = 0;
    for (std::size_t i = 0; i < image.pixels.size(); ++i)
      err += std::abs(static_cast<int>(image.pixels[i]) -
                      static_cast<int>(decoded.pixels[i]));
    return err / static_cast<double>(image.pixels.size());
  };
  EXPECT_LT(mae(fine), mae(coarse));
}

TEST(Jpeg, CompressesSmoothContent) {
  const GrayImage image = make_test_image(128, 128, 5);
  const Bytes encoded = jpeg_encode(image);
  EXPECT_LT(encoded.size(), image.pixels.size() / 2);
}

TEST(Jpeg, NonMultipleOfEightDimensions) {
  const GrayImage image = make_test_image(33, 19, 9);
  const GrayImage decoded = jpeg_decode(jpeg_encode(image));
  EXPECT_EQ(decoded.width, 33u);
  EXPECT_EQ(decoded.height, 19u);
}

TEST(Jpeg, CorruptDataThrows) {
  EXPECT_THROW(jpeg_decode(to_bytes("not a jpeg")), Error);
}

class JpegSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(JpegSweep, AllQualitiesRoundTrip) {
  const GrayImage image = make_test_image(40, 40, GetParam());
  for (std::uint32_t q : {1u, 4u, 8u, 16u, 32u}) {
    const GrayImage decoded =
        jpeg_decode(jpeg_encode(image, JpegQuality{q}));
    ASSERT_EQ(decoded.pixels.size(), image.pixels.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JpegSweep, ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Handwriting
// ---------------------------------------------------------------------------

TEST(Handwriting, CanonicalStrokesClassifyExactly) {
  HandwritingClassifier classifier;
  for (char c : stroke_alphabet()) {
    const auto result = classifier.classify(stroke_for_char(c));
    EXPECT_EQ(result.character, c) << "canonical stroke misclassified";
  }
}

TEST(Handwriting, NoisyStrokesMostlyClassify) {
  HandwritingClassifier classifier;
  int correct = 0;
  int total = 0;
  for (char c : stroke_alphabet()) {
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      ++total;
      if (classifier.classify(noisy_stroke_for_char(c, seed)).character == c)
        ++correct;
    }
  }
  EXPECT_GT(correct * 100 / total, 90) << "noisy accuracy too low";
}

TEST(Handwriting, StrokeEncodingRoundTrip) {
  const Stroke stroke = stroke_for_char('w');
  const Stroke decoded = decode_stroke(encode_stroke(stroke));
  ASSERT_EQ(decoded.size(), stroke.size());
  for (std::size_t i = 0; i < stroke.size(); ++i) {
    EXPECT_FLOAT_EQ(decoded[i].x, stroke[i].x);
    EXPECT_FLOAT_EQ(decoded[i].y, stroke[i].y);
  }
}

TEST(Handwriting, FeaturesAreScaleInsensitiveDirectionally) {
  Stroke stroke = stroke_for_char('a');
  Stroke doubled = stroke;
  for (StrokePoint& p : doubled) {
    p.x *= 2;
    p.y *= 2;
  }
  const auto f1 = extract_features(stroke);
  const auto f2 = extract_features(doubled);
  for (std::size_t i = 0; i < 8; ++i)
    EXPECT_NEAR(f1.direction_histogram[i], f2.direction_histogram[i], 1e-4);
  EXPECT_NEAR(f1.aspect, f2.aspect, 1e-4);
}

// ---------------------------------------------------------------------------
// Page + HTTP
// ---------------------------------------------------------------------------

TEST(Page, HitsTargetSize) {
  const HttpResponse page = make_page(PageSpec{});
  EXPECT_NEAR(static_cast<double>(page.body.size()), 66.0 * 1024, 512);
  EXPECT_EQ(page.images.size(), 4u);
  EXPECT_EQ(page.status, 200);
}

TEST(Page, ImagesDecodeFromBody) {
  const HttpResponse page = make_page(PageSpec{.image_count = 2});
  for (const ImageRef& ref : page.images) {
    const GrayImage image =
        jpeg_decode(BytesView{page.body}.subspan(ref.offset, ref.length));
    EXPECT_EQ(image.width, ref.width);
    EXPECT_EQ(image.height, ref.height);
  }
}

TEST(Page, StoreServesAndReports404) {
  PageStore store;
  store.put(make_page(PageSpec{.url = "http://a", .target_bytes = 4096}));
  EXPECT_TRUE(store.contains("http://a"));
  EXPECT_EQ(store.get("http://a").status, 200);
  EXPECT_EQ(store.get("http://nope").status, 404);
}

TEST(Http, RequestResponseRoundTrip) {
  const Bytes req = encode_request(HttpRequest{.url = "http://x/y"});
  EXPECT_EQ(decode_request(req).url, "http://x/y");

  HttpResponse response = make_page(PageSpec{.target_bytes = 8192});
  const HttpResponse decoded = decode_response(encode_response(response));
  EXPECT_EQ(decoded.body, response.body);
  EXPECT_EQ(decoded.images.size(), response.images.size());
  EXPECT_EQ(decoded.url, response.url);
}

// ---------------------------------------------------------------------------
// Full system
// ---------------------------------------------------------------------------

WubbleUConfig small_config(RunLevel level) {
  WubbleUConfig config;
  config.page.target_bytes = 8 * 1024;  // keep unit tests fast
  config.page.image_count = 1;
  config.page.image_width = 32;
  config.page.image_height = 32;
  config.downlink_level = level;
  return config;
}

TEST(WubbleULocal, PageLoadsEndToEnd) {
  Scheduler sched("wubbleu");
  const WubbleUConfig config = small_config(runlevels::kPacket);
  const WubbleUHandles h = build_local(sched, config);
  sched.init();
  sched.run();

  EXPECT_EQ(h.recognizer->classified(),
            config.page.url.size() + 1);  // URL + newline
  ASSERT_EQ(h.ui->loads().size(), 1u);
  EXPECT_EQ(h.ui->completed(), 1u);
  const auto& load = h.ui->loads()[0];
  EXPECT_EQ(load.url, config.page.url);
  EXPECT_GT(load.completed_at, load.requested_at);
  EXPECT_NEAR(static_cast<double>(load.body_bytes), 8 * 1024, 512);
  EXPECT_EQ(load.images, 1u);
  EXPECT_EQ(h.cpu->pages_loaded(), 1u);
  EXPECT_EQ(h.cpu->images_decoded(), 1u);
  EXPECT_EQ(h.cpu->image_pixel_errors(), 0u);
  EXPECT_EQ(h.gateway->requests_served(), 1u);
}

TEST(WubbleULocal, WordLevelCostsFarMoreEventsThanPacketLevel) {
  auto run_level = [](const RunLevel& level) {
    Scheduler sched("wubbleu");
    const WubbleUHandles h = build_local(sched, small_config(level));
    sched.init();
    sched.run();
    EXPECT_EQ(h.ui->completed(), 1u);
    return std::make_pair(sched.stats().events_dispatched,
                          h.asic->host_emissions());
  };
  const auto [packet_events, packet_emissions] =
      run_level(runlevels::kPacket);
  const auto [word_events, word_emissions] = run_level(runlevels::kWord);
  // ~8 KB page: 8 packets vs ~2k words.
  EXPECT_GT(word_emissions, 100 * packet_emissions);
  EXPECT_GT(word_events, 10 * packet_events);
}

TEST(WubbleULocal, MultiPageSession) {
  Scheduler sched("wubbleu");
  WubbleUConfig config = small_config(runlevels::kPacket);
  config.urls = {config.page.url, config.page.url, config.page.url};
  const WubbleUHandles h = build_local(sched, config);
  sched.init();
  sched.run();
  EXPECT_EQ(h.ui->completed(), 3u);
  EXPECT_EQ(h.cpu->pages_loaded(), 3u);
  EXPECT_EQ(h.gateway->requests_served(), 3u);
  // Loads complete in order.
  const auto& loads = h.ui->loads();
  for (std::size_t i = 1; i < loads.size(); ++i)
    EXPECT_GT(loads[i].completed_at, loads[i - 1].completed_at);
}

TEST(WubbleUDistributed, RemoteChipMatchesLocalResults) {
  const WubbleUConfig config = small_config(runlevels::kPacket);

  // Local reference.
  Scheduler local("wubbleu");
  const WubbleUHandles ref = build_local(local, config);
  local.init();
  local.run();
  ASSERT_EQ(ref.ui->completed(), 1u);
  const VirtualTime ref_done = ref.ui->loads()[0].completed_at;

  // Distributed: chip + server remote, conservative channel.
  dist::NodeCluster cluster;
  dist::PiaNode& node_a = cluster.add_node("handheld-node");
  dist::PiaNode& node_b = cluster.add_node("chip-node");
  dist::Subsystem& handheld = node_a.add_subsystem("handheld");
  dist::Subsystem& chip = node_b.add_subsystem("chip");
  const dist::ChannelPair channels = cluster.connect_checked(
      handheld, chip, dist::ChannelMode::kConservative);
  const WubbleUHandles h =
      build_distributed(handheld, chip, channels, config);
  cluster.start_all();
  const auto outcomes = cluster.run_all();
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, dist::Subsystem::RunOutcome::kQuiescent) << name;

  ASSERT_EQ(h.ui->completed(), 1u);
  // Distribution must not change simulated behaviour: identical virtual
  // completion time and page contents.
  EXPECT_EQ(h.ui->loads()[0].completed_at, ref_done);
  EXPECT_EQ(h.cpu->images_decoded(), 1u);
  EXPECT_EQ(h.cpu->image_pixel_errors(), 0u);
}

TEST(WubbleUDistributed, WordLevelMultipliesChannelTraffic) {
  auto run_level = [](const RunLevel& level) {
    dist::NodeCluster cluster;
    dist::PiaNode& node = cluster.add_node("n");
    dist::Subsystem& handheld = node.add_subsystem("handheld");
    dist::Subsystem& chip = node.add_subsystem("chip");
    const dist::ChannelPair channels = cluster.connect_checked(
        handheld, chip, dist::ChannelMode::kConservative);
    const WubbleUHandles h =
        build_distributed(handheld, chip, channels, small_config(level));
    cluster.start_all();
    cluster.run_all();
    EXPECT_EQ(h.ui->completed(), 1u);
    return chip.stats().events_sent;  // messages chip -> handheld
  };
  const auto packet_msgs = run_level(runlevels::kPacket);
  const auto word_msgs = run_level(runlevels::kWord);
  EXPECT_GT(word_msgs, 100 * packet_msgs);
}

TEST(WubbleUNative, ReferenceLoadDecodesEverything) {
  const PageSpec spec{.target_bytes = 16 * 1024, .image_count = 2};
  const NativeLoadResult result = native_page_load(spec);
  EXPECT_NEAR(static_cast<double>(result.body_bytes), 16.0 * 1024, 512);
  EXPECT_EQ(result.images_decoded, 2u);
}

}  // namespace
}  // namespace pia::wubbleu
