// Cross-module integration tests: the full WubbleU stack exercised through
// the framework features the paper combines — run-control switchpoints,
// checkpoint/rewind of a whole application mid-flight, and distributed
// execution with fossil collection.
#include <gtest/gtest.h>

#include "core/checkpoint.hpp"
#include "core/runcontrol.hpp"
#include "wubbleu/system.hpp"

namespace pia::wubbleu {
namespace {

WubbleUConfig tiny_config() {
  WubbleUConfig config;
  config.page.target_bytes = 8 * 1024;
  config.page.image_count = 1;
  config.page.image_width = 32;
  config.page.image_height = 32;
  return config;
}

TEST(Integration, RunControlSwitchpointDropsDetailMidSession) {
  // Two pages; a switchpoint drops the chip from word to packet detail
  // after the first page's downlink, using the paper's script syntax.
  Scheduler sched("wubbleu");
  WubbleUConfig config = tiny_config();
  config.downlink_level = runlevels::kWord;
  config.urls = {config.page.url, config.page.url};
  const WubbleUHandles h = build_local(sched, config);

  RunControlParser parser;
  // The asic's clock passes 34ms while emitting page 1 (its emission
  // handler runs to completion); the switchpoint fires at the safe point
  // right after, so page 2 goes out at packet level.
  for (Switchpoint& sp : parser.parse(
           "when asic.time >= 34000000: asic -> packetLevel\n"))
    sched.add_switchpoint(std::move(sp));

  sched.init();
  sched.run();

  EXPECT_EQ(h.ui->completed(), 2u);
  EXPECT_EQ(h.asic->runlevel().name, "packetLevel");
  EXPECT_EQ(sched.stats().runlevel_switches, 1u);
  // Page 1 at word level: ~2k emissions; page 2 at packet level: ~8.
  // Total must be far below 2x the word-level cost.
  EXPECT_LT(h.asic->host_emissions(), 2'300u);
  EXPECT_GT(h.asic->host_emissions(), 2'000u);
}

TEST(Integration, WholeApplicationCheckpointMidLoadReplaysIdentically) {
  Scheduler sched("wubbleu");
  const WubbleUHandles h = build_local(sched, tiny_config());
  CheckpointManager checkpoints(sched);
  sched.init();

  // Run into the middle of the downlink, checkpoint the whole app.
  sched.run(120);
  ASSERT_EQ(h.ui->completed(), 0u);
  const SnapshotId snap = checkpoints.request();

  sched.run();
  ASSERT_EQ(h.ui->completed(), 1u);
  const auto done_time = h.ui->loads()[0].completed_at;
  const auto decoded = h.cpu->images_decoded();

  checkpoints.restore(snap);
  EXPECT_EQ(h.ui->completed(), 0u);
  sched.run();
  EXPECT_EQ(h.ui->completed(), 1u);
  EXPECT_EQ(h.ui->loads()[0].completed_at, done_time);
  // The decode counter was rewound with the rest of the CPU state, so the
  // replay ends at the same value as the original run.
  EXPECT_EQ(h.cpu->images_decoded(), decoded);
  EXPECT_EQ(h.cpu->image_pixel_errors(), 0u);
}

TEST(Integration, DistributedWubbleUSurvivesFossilCollection) {
  dist::NodeCluster cluster;
  dist::Subsystem& handheld = cluster.add_node("h").add_subsystem("handheld");
  dist::Subsystem& chip = cluster.add_node("c").add_subsystem("chip");
  handheld.set_checkpoint_interval(32);
  chip.set_checkpoint_interval(32);
  const dist::ChannelPair channels = cluster.connect_checked(
      handheld, chip, dist::ChannelMode::kOptimistic);
  WubbleUConfig config = tiny_config();
  config.urls = {config.page.url, config.page.url};
  const WubbleUHandles h =
      build_distributed(handheld, chip, channels, config);
  cluster.start_all();
  cluster.run_all(dist::Subsystem::RunConfig{
      .stall_timeout = std::chrono::milliseconds(15000)});
  ASSERT_EQ(h.ui->completed(), 2u);

  const VirtualTime gvt = cluster.fossil_collect_all();
  EXPECT_TRUE(gvt.is_infinite());  // quiescent: everything collectable
  // Checkpoint storage collapsed to the newest snapshot per subsystem.
  EXPECT_TRUE(handheld.checkpoints().has_checkpoint());
  EXPECT_TRUE(chip.checkpoints().has_checkpoint());
}

TEST(Integration, DistributedVirtualTimesMatchLocalAtEveryDetailLevel) {
  for (const RunLevel& level :
       {runlevels::kTransaction, runlevels::kPacket, runlevels::kWord}) {
    WubbleUConfig config = tiny_config();
    config.downlink_level = level;

    Scheduler local("wubbleu");
    const WubbleUHandles ref = build_local(local, config);
    local.init();
    local.run();
    ASSERT_EQ(ref.ui->completed(), 1u) << level.name;

    dist::NodeCluster cluster;
    dist::Subsystem& a = cluster.add_node("h").add_subsystem("handheld");
    dist::Subsystem& b = cluster.add_node("c").add_subsystem("chip");
    const dist::ChannelPair channels =
        cluster.connect_checked(a, b, dist::ChannelMode::kConservative);
    const WubbleUHandles h = build_distributed(a, b, channels, config);
    cluster.start_all();
    cluster.run_all();
    ASSERT_EQ(h.ui->completed(), 1u) << level.name;
    EXPECT_EQ(h.ui->loads()[0].completed_at,
              ref.ui->loads()[0].completed_at)
        << "distribution changed simulated time at " << level.name;
  }
}

}  // namespace
}  // namespace pia::wubbleu
