#include <gtest/gtest.h>

#include <chrono>

#include "dist_helpers.hpp"

namespace pia::dist {
namespace {

using namespace std::chrono_literals;
using testing::SplitLoop;
using testing::SplitPipe;

TEST(DistributedSnapshot, MarksCompleteAcrossTwoSubsystems) {
  SplitPipe pipe(10, ChannelMode::kConservative);
  pipe.cluster.start_all();

  const std::uint64_t token = pipe.a->initiate_snapshot();
  pipe.cluster.run_all();

  EXPECT_TRUE(pipe.a->snapshot_complete(token));
  EXPECT_TRUE(pipe.b->snapshot_complete(token));
  EXPECT_GT(pipe.b->stats().marks_received, 0u);
}

TEST(DistributedSnapshot, EachSubsystemCheckpointsOncePerToken) {
  SplitLoop loop(10, ChannelMode::kConservative);
  loop.cluster.start_all();
  const std::uint64_t token = loop.a->initiate_snapshot();
  loop.cluster.run_all();
  ASSERT_TRUE(loop.a->snapshot_complete(token));
  ASSERT_TRUE(loop.b->snapshot_complete(token));
  // One base checkpoint from start() + exactly one for the token.
  EXPECT_EQ(loop.a->stats().checkpoints, 2u);
  EXPECT_EQ(loop.b->stats().checkpoints, 2u);
}

TEST(DistributedSnapshot, ThreeSubsystemMarksPropagate) {
  NodeCluster cluster;
  PiaNode& node = cluster.add_node("n");
  Subsystem& ss1 = node.add_subsystem("ss1");
  Subsystem& ss2 = node.add_subsystem("ss2");
  Subsystem& ss3 = node.add_subsystem("ss3");

  auto& producer = ss2.scheduler().emplace<testing::Producer>("p", 10);
  auto& relay = ss1.scheduler().emplace<testing::Relay>("r");
  auto& sink = ss3.scheduler().emplace<testing::Sink>("s");

  const NetId fwd2 = ss2.scheduler().make_net("fwd");
  ss2.scheduler().attach(fwd2, producer.id(), "out");
  const NetId fwd1 = ss1.scheduler().make_net("fwd");
  ss1.scheduler().attach(fwd1, relay.id(), "in");
  const NetId out1 = ss1.scheduler().make_net("out");
  ss1.scheduler().attach(out1, relay.id(), "out");
  const NetId out3 = ss3.scheduler().make_net("out");
  ss3.scheduler().attach(out3, sink.id(), "in");

  const ChannelPair c12 =
      cluster.connect_checked(ss1, ss2, ChannelMode::kConservative);
  const ChannelPair c13 =
      cluster.connect_checked(ss1, ss3, ChannelMode::kConservative);
  split_net(ss1, c12.a, fwd1, ss2, c12.b, fwd2);
  split_net(ss1, c13.a, out1, ss3, c13.b, out3);

  cluster.start_all();
  // ss3 (a leaf) initiates; the mark must reach ss2 through ss1.
  const std::uint64_t token = ss3.initiate_snapshot();
  cluster.run_all();

  EXPECT_TRUE(ss1.snapshot_complete(token));
  EXPECT_TRUE(ss2.snapshot_complete(token));
  EXPECT_TRUE(ss3.snapshot_complete(token));
  EXPECT_EQ(sink.received.size(), 10u);
}

TEST(DistributedSnapshot, CoordinatedRestoreReplaysDeterministically) {
  SplitPipe pipe(12, ChannelMode::kConservative);
  pipe.cluster.start_all();

  const std::uint64_t token = pipe.a->initiate_snapshot();
  pipe.cluster.run_all();
  ASSERT_TRUE(pipe.a->snapshot_complete(token));
  ASSERT_TRUE(pipe.b->snapshot_complete(token));

  const auto final_received = pipe.sink->received;
  const auto final_times = pipe.sink->times;
  ASSERT_EQ(final_received.size(), 12u);

  // Global restore at quiescence, then re-run: the future must replay
  // identically.
  pipe.a->restore_snapshot(token);
  pipe.b->restore_snapshot(token);
  pipe.cluster.run_all();

  EXPECT_EQ(pipe.sink->received, final_received);
  EXPECT_EQ(pipe.sink->times, final_times);
}

TEST(DistributedSnapshot, RestoreOfIncompleteSnapshotRejected) {
  SplitPipe pipe(5, ChannelMode::kConservative);
  pipe.cluster.start_all();
  const std::uint64_t token = pipe.a->initiate_snapshot();
  // Marks not yet circulated.
  EXPECT_FALSE(pipe.a->snapshot_complete(token));
  EXPECT_THROW(pipe.a->restore_snapshot(token), Error);
}

TEST(DistributedSnapshot, ChannelStateIsRecorded) {
  // Initiate on the receiving side while traffic is in flight: events sent
  // before the peer's mark but after our checkpoint are channel state.
  SplitPipe pipe(20, ChannelMode::kConservative);
  pipe.cluster.start_all();

  // Let the producer enqueue its sends by running A alone for a while.
  pipe.a->drain();
  while (pipe.a->try_advance() == Subsystem::StepResult::kStepped) {
  }
  // Now initiate on B: B checkpoints before consuming those in-flight
  // events, so they land in recorded channel state.
  const std::uint64_t token = pipe.b->initiate_snapshot();
  pipe.cluster.run_all();
  ASSERT_TRUE(pipe.b->snapshot_complete(token));

  const auto final_received = pipe.sink->received;
  ASSERT_EQ(final_received.size(), 20u);

  pipe.a->restore_snapshot(token);
  pipe.b->restore_snapshot(token);
  pipe.cluster.run_all();
  EXPECT_EQ(pipe.sink->received, final_received);
}

}  // namespace
}  // namespace pia::dist
