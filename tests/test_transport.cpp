#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <future>
#include <limits>
#include <thread>

#include "base/error.hpp"
#include "base/rng.hpp"
#include "dist/protocol.hpp"
#include "dist/subsystem.hpp"
#include "transport/crc32.hpp"
#include "transport/fault.hpp"
#include "transport/frame.hpp"
#include "transport/latency.hpp"
#include "transport/link.hpp"
#include "transport/tcp.hpp"

namespace pia::transport {
namespace {

using namespace std::chrono_literals;

TEST(Crc32, KnownVector) {
  // CRC-32("123456789") = 0xCBF43926 (IEEE 802.3 check value).
  EXPECT_EQ(crc32(to_bytes("123456789")), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32({}), 0u); }

TEST(Frame, RoundTrip) {
  const Bytes payload = to_bytes("hello frames");
  FrameDecoder dec;
  dec.feed(encode_frame(payload));
  const auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
  EXPECT_FALSE(dec.next().has_value());
}

TEST(Frame, PartialFeedReassembles) {
  const Bytes frame = encode_frame(to_bytes("split across reads"));
  FrameDecoder dec;
  // Feed one byte at a time: the decoder must never yield early.
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    dec.feed(BytesView{&frame[i], 1});
    EXPECT_FALSE(dec.next().has_value());
  }
  dec.feed(BytesView{&frame.back(), 1});
  const auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(to_string(*out), "split across reads");
}

TEST(Frame, MultipleFramesInOneFeed) {
  Bytes stream = encode_frame(to_bytes("one"));
  const Bytes second = encode_frame(to_bytes("two"));
  stream.insert(stream.end(), second.begin(), second.end());
  FrameDecoder dec;
  dec.feed(stream);
  EXPECT_EQ(to_string(*dec.next()), "one");
  EXPECT_EQ(to_string(*dec.next()), "two");
  EXPECT_FALSE(dec.next().has_value());
}

TEST(Frame, CorruptMagicThrows) {
  Bytes frame = encode_frame(to_bytes("x"));
  frame[0] = std::byte{0xFF};
  FrameDecoder dec;
  dec.feed(frame);
  EXPECT_THROW(dec.next(), Error);
}

TEST(Frame, CorruptPayloadFailsCrc) {
  Bytes frame = encode_frame(to_bytes("payload"));
  frame[kFrameHeaderSize] ^= std::byte{0x01};
  FrameDecoder dec;
  dec.feed(frame);
  EXPECT_THROW(dec.next(), Error);
}

TEST(Loopback, FifoOrder) {
  auto [a, b] = make_loopback_pair();
  for (int i = 0; i < 100; ++i)
    a->send(to_bytes("msg" + std::to_string(i)));
  for (int i = 0; i < 100; ++i) {
    const auto msg = b->try_recv();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(to_string(*msg), "msg" + std::to_string(i));
  }
  EXPECT_FALSE(b->try_recv().has_value());
}

TEST(Loopback, Duplex) {
  auto [a, b] = make_loopback_pair();
  a->send(to_bytes("ping"));
  b->send(to_bytes("pong"));
  EXPECT_EQ(to_string(*b->try_recv()), "ping");
  EXPECT_EQ(to_string(*a->try_recv()), "pong");
}

TEST(Loopback, RecvForTimesOut) {
  auto [a, b] = make_loopback_pair();
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(b->recv_for(30ms).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 25ms);
  (void)a;
}

TEST(Loopback, RecvForWakesOnSend) {
  auto pair = make_loopback_pair();
  auto sender = std::async(std::launch::async, [&] {
    std::this_thread::sleep_for(20ms);
    pair.a->send(to_bytes("late"));
  });
  const auto msg = pair.b->recv_for(2000ms);
  sender.get();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(to_string(*msg), "late");
}

TEST(Loopback, SendOnClosedThrows) {
  auto [a, b] = make_loopback_pair();
  b->close();
  EXPECT_THROW(a->send(to_bytes("x")), Error);
}

TEST(Loopback, StatsCount) {
  auto [a, b] = make_loopback_pair();
  a->send(to_bytes("abcd"));
  (void)b->try_recv();
  EXPECT_EQ(a->stats().messages_sent, 1u);
  EXPECT_EQ(a->stats().bytes_sent, 4u);
  EXPECT_EQ(b->stats().messages_received, 1u);
}

TEST(Tcp, ConnectSendReceive) {
  TcpListener listener(0);
  auto client_future = std::async(std::launch::async, [&] {
    return tcp_connect(listener.port());
  });
  LinkPtr server = listener.accept();
  LinkPtr client = client_future.get();

  client->send(to_bytes("over tcp"));
  const auto msg = server->recv_for(2000ms);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(to_string(*msg), "over tcp");

  server->send(to_bytes("reply"));
  const auto reply = client->recv_for(2000ms);
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(to_string(*reply), "reply");
}

TEST(Tcp, ManySmallMessagesKeepOrder) {
  TcpListener listener(0);
  auto client_future = std::async(std::launch::async, [&] {
    return tcp_connect(listener.port());
  });
  LinkPtr server = listener.accept();
  LinkPtr client = client_future.get();

  constexpr int kCount = 500;
  for (int i = 0; i < kCount; ++i)
    client->send(to_bytes(std::to_string(i)));
  for (int i = 0; i < kCount; ++i) {
    const auto msg = server->recv_for(2000ms);
    ASSERT_TRUE(msg.has_value()) << "lost message " << i;
    EXPECT_EQ(to_string(*msg), std::to_string(i));
  }
}

TEST(Tcp, LargeMessage) {
  TcpListener listener(0);
  auto client_future = std::async(std::launch::async, [&] {
    return tcp_connect(listener.port());
  });
  LinkPtr server = listener.accept();
  LinkPtr client = client_future.get();

  Rng rng(3);
  Bytes big(256 * 1024);
  for (auto& b : big) b = static_cast<std::byte>(rng.below(256));
  client->send(big);
  const auto msg = server->recv_for(5000ms);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(*msg, big);
}

TEST(Latency, DelaysDelivery) {
  auto pair = make_latency_pair(LatencyModel{.base = 50ms});
  pair.a->send(to_bytes("slow"));
  // Not visible immediately...
  EXPECT_FALSE(pair.b->try_recv().has_value());
  // ...but visible after the modeled delay.
  const auto t0 = std::chrono::steady_clock::now();
  const auto msg = pair.b->recv_for(2000ms);
  const auto waited = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(to_string(*msg), "slow");
  EXPECT_GE(waited, 40ms);
}

TEST(Latency, PerByteCostScales) {
  auto pair = make_latency_pair(
      LatencyModel{.per_byte = std::chrono::nanoseconds(20000)});  // 20 us/B
  pair.a->send(Bytes(1000));  // => ~20 ms
  const auto t0 = std::chrono::steady_clock::now();
  const auto msg = pair.b->recv_for(2000ms);
  const auto waited = std::chrono::steady_clock::now() - t0;
  ASSERT_TRUE(msg.has_value());
  EXPECT_GE(waited, 15ms);
}

TEST(Latency, JitterPreservesFifo) {
  auto pair = make_latency_pair(
      LatencyModel{.base = 1ms, .jitter_max = 5ms, .jitter_seed = 99});
  for (int i = 0; i < 50; ++i)
    pair.a->send(to_bytes(std::to_string(i)));
  for (int i = 0; i < 50; ++i) {
    const auto msg = pair.b->recv_for(2000ms);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(to_string(*msg), std::to_string(i));
  }
}

// Connects a raw (frameless) socket so a test can inject partial frames and
// die mid-send, like a peer crashing.
int raw_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  return fd;
}

TEST(Tcp, ConnectFailureReportsConnectErrno) {
  // A port nothing listens on: bind one ephemerally, then close it.
  std::uint16_t dead_port = 0;
  {
    TcpListener probe(0);
    dead_port = probe.port();
  }
  try {
    tcp_connect(dead_port, /*deadline=*/std::chrono::milliseconds(0));
    FAIL() << "connect to a dead port must throw";
  } catch (const Error& e) {
    // Regression: the fd was closed before raising, so the message carried
    // close()'s errno ("Success") instead of the refused connection.
    const std::string message = e.what();
    EXPECT_NE(message.find("connect"), std::string::npos) << message;
    EXPECT_NE(message.find(std::strerror(ECONNREFUSED)), std::string::npos)
        << message;
  }
}

TEST(Tcp, PeerDeathMidFrameReportsClosed) {
  TcpListener listener(0);
  auto raw = std::async(std::launch::async,
                        [&] { return raw_connect(listener.port()); });
  LinkPtr server = listener.accept();
  const int fd = raw.get();

  const Bytes frame = encode_frame(to_bytes("never finished"));
  ASSERT_GT(frame.size(), 3u);
  ASSERT_EQ(::send(fd, frame.data(), frame.size() - 3, MSG_NOSIGNAL),
            static_cast<ssize_t>(frame.size() - 3));
  ::close(fd);

  EXPECT_FALSE(server->recv_for(2000ms).has_value());
  // Regression: with the fd dead but partial bytes buffered, closed()
  // returned false forever and pollers spun on the residue.
  EXPECT_TRUE(server->closed());
}

TEST(Tcp, CompleteFrameBufferedAtPeerDeathIsStillDelivered) {
  TcpListener listener(0);
  auto raw = std::async(std::launch::async,
                        [&] { return raw_connect(listener.port()); });
  LinkPtr server = listener.accept();
  const int fd = raw.get();

  // One whole frame followed by a truncated one, then the peer dies.
  Bytes stream = encode_frame(to_bytes("last words"));
  const Bytes partial = encode_frame(to_bytes("cut off"));
  stream.insert(stream.end(), partial.begin(), partial.end() - 3);
  ASSERT_EQ(::send(fd, stream.data(), stream.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(stream.size()));
  ::close(fd);

  const auto msg = server->recv_for(2000ms);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(to_string(*msg), "last words");
  EXPECT_FALSE(server->recv_for(100ms).has_value());
  EXPECT_TRUE(server->closed());
}

TEST(Tcp, RecvForHugeTimeoutDoesNotOverflowPoll) {
  TcpListener listener(0);
  auto client_future = std::async(std::launch::async, [&] {
    return tcp_connect(listener.port());
  });
  LinkPtr server = listener.accept();
  LinkPtr client = client_future.get();

  auto sender = std::async(std::launch::async, [&] {
    std::this_thread::sleep_for(50ms);
    client->send(to_bytes("eventually"));
  });
  // Regression: > INT_MAX ms wrapped negative in the narrowing cast, putting
  // the deadline in the past — recv_for returned nullopt immediately instead
  // of waiting, so this receive failed.
  const auto msg = server->recv_for(std::chrono::milliseconds(
      static_cast<std::int64_t>(std::numeric_limits<int>::max()) + 1));
  sender.get();
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(to_string(*msg), "eventually");
}

TEST(Fault, ChaosPreservesFifoExactlyOnce) {
  auto pair = make_fault_pair(FaultPlan::chaos(7));
  constexpr int kCount = 200;
  for (int i = 0; i < kCount; ++i)
    pair.a->send(to_bytes(std::to_string(i)));
  for (int i = 0; i < kCount; ++i) {
    const auto msg = pair.b->recv_for(5000ms);
    ASSERT_TRUE(msg.has_value()) << "lost message " << i;
    EXPECT_EQ(to_string(*msg), std::to_string(i));
  }
  EXPECT_FALSE(pair.b->try_recv().has_value());
  // The plan actually did something.
  const LinkStats stats = pair.a->stats();
  EXPECT_GT(stats.faults_delayed + stats.faults_duplicated +
                stats.faults_dropped + stats.faults_partition_held,
            0u);
}

TEST(Fault, DuplicatesAreDiscardedBySequence) {
  FaultPlan plan;
  plan.seed = 11;
  plan.dup_probability = 1.0;  // every frame transmitted twice
  auto pair = make_fault_pair(plan);
  for (int i = 0; i < 20; ++i)
    pair.a->send(to_bytes(std::to_string(i)));
  for (int i = 0; i < 20; ++i) {
    const auto msg = pair.b->recv_for(2000ms);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(to_string(*msg), std::to_string(i));
  }
  EXPECT_FALSE(pair.b->try_recv().has_value());
  EXPECT_EQ(pair.a->stats().faults_duplicated, 20u);
  EXPECT_EQ(pair.b->stats().faults_dup_discarded, 20u);
}

TEST(Fault, DropIsRetriedNotLost) {
  FaultPlan plan;
  plan.seed = 3;
  plan.drop_probability = 1.0;
  plan.retry_delay = std::chrono::microseconds(50'000);
  auto pair = make_fault_pair(plan);
  pair.a->send(to_bytes("resent"));
  // The first transmission was "lost": nothing visible immediately...
  EXPECT_FALSE(pair.b->try_recv().has_value());
  // ...but the retransmission delivers it, in order, without loss.
  const auto t0 = std::chrono::steady_clock::now();
  const auto msg = pair.b->recv_for(2000ms);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(to_string(*msg), "resent");
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 40ms);
  EXPECT_EQ(pair.a->stats().faults_dropped, 1u);
}

TEST(Fault, PartitionHoldsTrafficUntilHeal) {
  auto pair = make_fault_pair(FaultPlan::partition(5, 0ms, 80ms));
  pair.a->send(to_bytes("across the partition"));
  EXPECT_FALSE(pair.b->try_recv().has_value());
  const auto t0 = std::chrono::steady_clock::now();
  const auto msg = pair.b->recv_for(2000ms);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(to_string(*msg), "across the partition");
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 50ms);
  EXPECT_EQ(pair.a->stats().faults_partition_held, 1u);
}

TEST(Fault, AbruptCloseBehavesLikePeerCrash) {
  FaultPlan plan;
  plan.seed = 2;
  plan.close_after_sends = 2;
  auto inner = make_loopback_pair();
  auto a = make_fault_link(std::move(inner.a), plan);
  auto& b = inner.b;

  a->send(to_bytes("one"));
  a->send(to_bytes("two"));
  EXPECT_THROW(a->send(to_bytes("three")), Error);
  EXPECT_TRUE(a->closed());
  EXPECT_EQ(a->stats().faults_abrupt_closes, 1u);

  // The peer drains what made it out, then observes the close.
  EXPECT_TRUE(b->recv_for(2000ms).has_value());
  EXPECT_TRUE(b->recv_for(2000ms).has_value());
  EXPECT_FALSE(b->recv_for(50ms).has_value());
  EXPECT_TRUE(b->closed());
}

TEST(Fault, SameSeedSameFaults) {
  for (int round = 0; round < 2; ++round) {
    static LinkStats first;
    auto pair = make_fault_pair(FaultPlan::chaos(42));
    for (int i = 0; i < 50; ++i)
      pair.a->send(to_bytes(std::to_string(i)));
    for (int i = 0; i < 50; ++i)
      ASSERT_TRUE(pair.b->recv_for(5000ms).has_value());
    const LinkStats stats = pair.a->stats();
    if (round == 0) {
      first = stats;
    } else {
      EXPECT_EQ(stats.faults_delayed, first.faults_delayed);
      EXPECT_EQ(stats.faults_duplicated, first.faults_duplicated);
      EXPECT_EQ(stats.faults_dropped, first.faults_dropped);
    }
  }
}

TEST(Fault, TcpLinkCanBeDecorated) {
  TcpListener listener(0);
  const FaultPlan plan = FaultPlan::chaos(13);
  auto client_future = std::async(std::launch::async, [&] {
    return make_fault_link(tcp_connect(listener.port()),
                           plan.for_endpoint(1));
  });
  auto server = make_fault_link(listener.accept(), plan.for_endpoint(2));
  auto client = client_future.get();
  for (int i = 0; i < 40; ++i)
    client->send(to_bytes(std::to_string(i)));
  for (int i = 0; i < 40; ++i) {
    const auto msg = server->recv_for(5000ms);
    ASSERT_TRUE(msg.has_value()) << "lost message " << i;
    EXPECT_EQ(to_string(*msg), std::to_string(i));
  }
}

TEST(Latency, TcpLinkCanBeDecorated) {
  TcpListener listener(0);
  auto client_future = std::async(std::launch::async, [&] {
    return make_latency_link(tcp_connect(listener.port()),
                             LatencyModel{.base = 5ms});
  });
  auto server = make_latency_link(listener.accept(), LatencyModel{.base = 5ms});
  auto client = client_future.get();
  client->send(to_bytes("wan"));
  const auto msg = server->recv_for(2000ms);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(to_string(*msg), "wan");
}

}  // namespace
}  // namespace pia::transport

// ---------------------------------------------------------------------------
// Mode-negotiation wire format (adaptive synchronization handshake)
// ---------------------------------------------------------------------------

namespace pia::dist {
namespace {

TEST(ModeWire, ProposalRoundTrip) {
  const ModeProposalMsg in{
      .nonce = (std::uint64_t{7} << 32) | 42,
      .epoch = 3,
      .target = static_cast<std::uint8_t>(ChannelMode::kOptimistic),
      .caps = kLocalSyncCaps};
  const auto out = std::get<ModeProposalMsg>(decode_message(encode_message(in)));
  EXPECT_EQ(out.nonce, in.nonce);
  EXPECT_EQ(out.epoch, in.epoch);
  EXPECT_EQ(out.target, in.target);
  EXPECT_EQ(out.caps, in.caps);
}

TEST(ModeWire, AckCommitResumeRoundTrip) {
  const ModeAckMsg ack{.nonce = 9, .phase = 1, .accept = true, .reason = 0};
  const auto ack_out = std::get<ModeAckMsg>(decode_message(encode_message(ack)));
  EXPECT_EQ(ack_out.nonce, 9u);
  EXPECT_EQ(ack_out.phase, 1);
  EXPECT_TRUE(ack_out.accept);

  const ModeCommitMsg commit{.nonce = 9, .token = 4};
  const auto commit_out =
      std::get<ModeCommitMsg>(decode_message(encode_message(commit)));
  EXPECT_EQ(commit_out.nonce, 9u);
  EXPECT_EQ(commit_out.token, 4u);

  const ModeResumeMsg resume{.nonce = 9};
  const auto resume_out =
      std::get<ModeResumeMsg>(decode_message(encode_message(resume)));
  EXPECT_EQ(resume_out.nonce, 9u);
}

TEST(ModeWire, ProposalWithoutTrailingCapsDecodesAsFixedModePeer) {
  // The capability word is a trailing varint, mirroring the rejoin
  // transport-caps pattern: a frame from a build that predates it simply
  // ends sooner, and must decode as caps=0 (a fixed-mode peer), not throw.
  Bytes wire = encode_message(ModeProposalMsg{
      .nonce = 1, .epoch = 0,
      .target = static_cast<std::uint8_t>(ChannelMode::kConservative),
      .caps = kLocalSyncCaps});
  ASSERT_EQ(kLocalSyncCaps, 1u);  // encodes as exactly one trailing byte
  wire.pop_back();
  const auto out = std::get<ModeProposalMsg>(decode_message(wire));
  EXPECT_EQ(out.caps, 0u);
}

TEST(ModeWire, HandshakeMessagesAreControlMessages) {
  // The termination probe balances event+retract counters; handshake
  // traffic must not disturb that ledger.
  EXPECT_TRUE(is_control_message(ChannelMessage{ModeProposalMsg{}}));
  EXPECT_TRUE(is_control_message(ChannelMessage{ModeAckMsg{}}));
  EXPECT_TRUE(is_control_message(ChannelMessage{ModeCommitMsg{}}));
  EXPECT_TRUE(is_control_message(ChannelMessage{ModeResumeMsg{}}));
}

// Drives two facades' run loops by hand until both go idle (no events are
// scheduled in these tests, so all progress is protocol traffic).
void pump(Subsystem& a, Subsystem& b) {
  const Subsystem::RunConfig cfg{};
  int quiet = 0;
  for (int i = 0; i < 400 && quiet < 8; ++i) {
    bool pa = false;
    bool pb = false;
    a.run_slice(cfg, pa);
    b.run_slice(cfg, pb);
    quiet = (pa || pb) ? 0 : quiet + 1;
  }
}

struct FacadePair {
  Subsystem a{"adapt_a", 1};
  Subsystem b{"adapt_b", 2};
  ChannelId ca;
  ChannelId cb;

  explicit FacadePair(ChannelMode mode) {
    auto link = transport::make_loopback_pair();
    ca = a.add_channel("ab", mode, std::move(link.a));
    cb = b.add_channel("ab", mode, std::move(link.b));
    a.start();
    b.start();
  }
};

TEST(ModeNegotiation, PeerWithoutCapabilityRejectsAndChannelStaysFixed) {
  FacadePair pair(ChannelMode::kConservative);
  // Only one side opts in: the peer must answer "unsupported" and the
  // channel must keep its configured mode on BOTH endpoints.
  pair.a.set_adaptive_sync();
  pair.a.request_mode_change(pair.ca, ChannelMode::kOptimistic);
  pump(pair.a, pair.b);

  EXPECT_EQ(pair.a.channel(pair.ca).mode(), ChannelMode::kConservative);
  EXPECT_EQ(pair.b.channel(pair.cb).mode(), ChannelMode::kConservative);
  EXPECT_EQ(pair.a.channel(pair.ca).mode_epoch(), 0u);
  EXPECT_EQ(pair.b.channel(pair.cb).mode_epoch(), 0u);
  EXPECT_EQ(pair.a.adaptive_stats().proposals_sent, 1u);
  EXPECT_EQ(pair.a.adaptive_stats().mode_changes, 0u);
  EXPECT_EQ(pair.b.adaptive_stats().proposals_rejected, 1u);
  // The "unsupported" answer is remembered: no re-proposal storm.
  pump(pair.a, pair.b);
  EXPECT_EQ(pair.a.adaptive_stats().proposals_sent, 1u);
}

TEST(ModeNegotiation, ForcedFlipLandsOnBothEndpointsAtTheCut) {
  FacadePair pair(ChannelMode::kConservative);
  pair.a.set_adaptive_sync();
  pair.b.set_adaptive_sync();
  pair.a.request_mode_change(pair.ca, ChannelMode::kOptimistic);
  pump(pair.a, pair.b);

  EXPECT_EQ(pair.a.channel(pair.ca).mode(), ChannelMode::kOptimistic);
  EXPECT_EQ(pair.b.channel(pair.cb).mode(), ChannelMode::kOptimistic);
  // The epoch fence advanced in lockstep.
  EXPECT_EQ(pair.a.channel(pair.ca).mode_epoch(), 1u);
  EXPECT_EQ(pair.b.channel(pair.cb).mode_epoch(), 1u);
  EXPECT_EQ(pair.a.adaptive_stats().mode_changes, 1u);
  EXPECT_EQ(pair.b.adaptive_stats().mode_changes, 1u);
  EXPECT_EQ(pair.a.stats().mode_changes, 1u);

  // And back again, symmetrically, proposed from the other side.
  pair.b.request_mode_change(pair.cb, ChannelMode::kConservative);
  pump(pair.a, pair.b);
  EXPECT_EQ(pair.a.channel(pair.ca).mode(), ChannelMode::kConservative);
  EXPECT_EQ(pair.b.channel(pair.cb).mode(), ChannelMode::kConservative);
  EXPECT_EQ(pair.a.channel(pair.ca).mode_epoch(), 2u);
  EXPECT_EQ(pair.b.channel(pair.cb).mode_epoch(), 2u);
}

}  // namespace
}  // namespace pia::dist
