// Randomized cluster fuzzer with a single-host equivalence oracle.
//
// Pia's core guarantee (paper, DAC '98) is that distributing a simulation
// across nodes never changes simulated behaviour.  This fuzzer turns that
// guarantee into a continuously checked property: each seed deterministically
// generates a pipeline topology (stage count, placement across 2..4
// subsystems, optional loop-back result net), a workload (event count,
// period, per-relay think times and runlevels), per-subsystem checkpoint
// intervals, a transport (loopback or TCP, optional latency) and a
// FaultPlan — then runs it under conservative, optimistic and (when the
// topology allows) mixed channel modes, each with and without the faults,
// and requires EXACT equivalence (values and virtual times) against the
// single-host kernel reference.
//
// Usage:
//   fuzz_cluster                 # checked-in deterministic seed list (CI)
//   fuzz_cluster --seed=42       # reproduce one seed, verbosely
//   fuzz_cluster --seeds=1,7,13  # explicit list
//   fuzz_cluster --runs=50 --start-seed=1000   # a range (nightly CI)
//   fuzz_cluster --recovery [...]  # crash-recovery arm: kill one endpoint
//                                  # mid-run, restart from durable snapshots
//   fuzz_cluster --shm [...]       # force every channel onto the
//                                  # shared-memory ring (zero-copy receive)
//   fuzz_cluster --adaptive [...]  # arm runtime mode renegotiation: an
//                                  # aggressive cost watcher everywhere plus
//                                  # one seed-derived forced flip
//
// The --recovery arm checks the crash-recovery guarantee instead: each seed
// additionally derives a crash point (channel, frame budget, endpoint) and
// a snapshot cadence, fells that endpoint mid-run, restarts the cluster
// from the newest common on-disk snapshot (falling back to older cuts, then
// a cold start) and requires the final result to STILL match the
// uninterrupted single-host oracle bit-exactly.
//
// --adaptive composes with the plain, --recovery, --shm, --threads and
// --replicas arms: channels renegotiate conservative<->optimistic mid-run
// over snapshot cuts, and the result must STILL be bit-exact — protocol
// choice may move cost, never events.  Under --recovery the forced flip is
// re-requested on the restarted cluster, so it has to defer through the
// rejoin handshake; under --replicas only plain subsystems arm (proposals
// into a ReplicaSet are refused "unsupported" and pin the channel fixed).
//
// Any failure prints the seed and the exact repro command, and exits 1.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "base/error.hpp"

#include "base/rng.hpp"
#include "dist_helpers.hpp"
#include "wubbleu/scaleout.hpp"

namespace pia::dist {
namespace {

using namespace std::chrono_literals;
using testing::FuzzCluster;
using testing::PipelineResult;
using testing::PipelineSpec;
using testing::run_single_host_pipeline;

const RunLevel kLevels[] = {runlevels::kTransaction, runlevels::kPacket,
                           runlevels::kWord, runlevels::kHardware};
const std::uint64_t kCheckpointIntervals[] = {1, 2, 4, 8, 16, 64};

struct FuzzCase {
  PipelineSpec spec;
  Wire wire = Wire::kLoopback;
  transport::LatencyModel latency;
  transport::FaultPlan fault;
  std::vector<std::uint64_t> checkpoint_intervals;
};

FuzzCase generate(std::uint64_t seed) {
  Rng rng(seed);
  FuzzCase c;

  // Workload.
  const std::size_t relays = 1 + rng.below(4);
  c.spec.count = 4 + rng.below(20);
  c.spec.period = ticks(static_cast<VirtualTime::rep>(2 + rng.below(12)));
  c.spec.start = ticks(static_cast<VirtualTime::rep>(1 + rng.below(10)));
  for (std::size_t i = 0; i < relays; ++i)
    c.spec.relays.push_back(
        {.think_ticks = 1 + rng.below(6), .level = kLevels[rng.below(4)]});

  // Placement: cut the relay chain into 2..min(4, stages) non-empty
  // contiguous groups (each subsystem hosts at least one stage).
  const std::size_t stages = relays + 1;
  const std::size_t hosts =
      2 + rng.below(std::min<std::uint64_t>(3, stages - 1));
  std::vector<bool> cut(stages, false);  // cut[i]: host boundary before i
  std::size_t cuts_placed = 0;
  while (cuts_placed < hosts - 1) {
    const std::size_t at = 1 + rng.below(stages - 1);
    if (!cut[at]) {
      cut[at] = true;
      ++cuts_placed;
    }
  }
  std::size_t host = 0;
  for (std::size_t s = 0; s < stages; ++s) {
    if (cut[s]) ++host;
    c.spec.stage_host.push_back(host);
  }
  // 1-in-3 pipelines route the result net all the way back to subsystem 0,
  // hopping every channel (multi-hop SplitLoop).
  c.spec.sink_host = rng.chance(0.35) ? 0 : hosts - 1;

  for (std::size_t g = 0; g < hosts; ++g)
    c.checkpoint_intervals.push_back(kCheckpointIntervals[rng.below(6)]);

  // Transport.
  c.wire = rng.chance(0.25) ? Wire::kTcp : Wire::kLoopback;
  if (rng.chance(0.3))
    c.latency.base = std::chrono::microseconds(50 + rng.below(300));
  // Channel batching: distribution must be bit-equivalent at any batch
  // size, including fully disabled.
  const std::uint32_t kBatchLimits[] = {1, 8, 64};
  c.spec.batch_limit = kBatchLimits[rng.below(3)];

  // Fault plan (applied only in the "faulty" arm of each run).
  switch (rng.below(5)) {
    case 0:
      c.fault = transport::FaultPlan::jitter(
          seed, std::chrono::microseconds(100 + rng.below(600)));
      break;
    case 1:
      c.fault = transport::FaultPlan::duplication(
          seed, 0.1 + 0.5 * rng.uniform());
      break;
    case 2:
      c.fault = transport::FaultPlan::drops(
          seed, 0.05 + 0.3 * rng.uniform(),
          std::chrono::microseconds(500 + rng.below(2000)));
      break;
    case 3:
      c.fault = transport::FaultPlan::partition(
          seed, std::chrono::milliseconds(5 + rng.below(30)),
          std::chrono::milliseconds(10 + rng.below(60)));
      break;
    case 4:
      c.fault = transport::FaultPlan::chaos(seed);
      break;
  }
  return c;
}

std::vector<ChannelMode> uniform_modes(std::size_t channels,
                                       ChannelMode mode) {
  return std::vector<ChannelMode>(channels, mode);
}

std::string describe_modes(const std::vector<ChannelMode>& modes) {
  std::string out;
  for (const ChannelMode m : modes)
    out += (m == ChannelMode::kConservative ? 'C' : 'O');
  return out;
}

std::string describe_case(const FuzzCase& c) {
  std::ostringstream os;
  os << "stages=" << c.spec.stage_host.size() << " hosts="
     << c.spec.subsystem_count() << " count=" << c.spec.count
     << " period=" << c.spec.period.str() << " sink_host=" << c.spec.sink_host
     << " wire="
     << (c.wire == Wire::kTcp   ? "tcp"
         : c.wire == Wire::kShm ? "shm"
                                : "loopback")
     << " latency_us=" << c.latency.base.count()
     << " batch=" << c.spec.batch_limit << " placement=";
  for (const std::size_t h : c.spec.stage_host) os << h;
  return os.str();
}

std::string dump(const PipelineResult& result) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < result.received.size(); ++i) {
    if (i) os << " ";
    os << result.received[i] << "@" << result.times[i].str();
  }
  os << "]";
  return os.str();
}

// The engine split pins aggregate stats as a compatibility contract:
// Subsystem::stats() must be exactly the recombination of the facade's
// traffic counters and the four per-engine stat blocks, field for field.
// Checked on every gating config so a future counter migration that forgets
// a field (or double-counts one) fails the fuzzer, not a metrics consumer.
bool stats_recombine(const Subsystem& s) {
  const SubsystemStats agg = s.stats();
  const TrafficStats& traffic = s.traffic_stats();
  const sync::ConservativeStats& cons = s.conservative_stats();
  const sync::OptimisticStats& opt = s.optimistic_stats();
  const sync::SnapshotStats& snap = s.snapshot_stats();
  const sync::RecoveryStats& rec = s.recovery_stats();
  return agg.events_sent == traffic.events_sent &&
         agg.events_received == traffic.events_received &&
         agg.grants_sent == cons.grants_sent &&
         agg.grants_received == cons.grants_received &&
         agg.requests_sent == cons.requests_sent &&
         agg.stalls == cons.stalls && agg.rollbacks == opt.rollbacks &&
         agg.retracts_sent == opt.retracts_sent &&
         agg.retracts_received == opt.retracts_received &&
         agg.checkpoints == opt.checkpoints &&
         agg.marks_received == snap.marks_received &&
         agg.heartbeats_sent == rec.heartbeats_sent &&
         agg.heartbeats_received == rec.heartbeats_received &&
         agg.peer_down_events == rec.peer_down_events &&
         agg.snapshots_persisted == snap.snapshots_persisted &&
         agg.snapshot_persist_bytes == snap.snapshot_persist_bytes &&
         agg.snapshots_invalidated == snap.snapshots_invalidated &&
         agg.recoveries == rec.recoveries &&
         agg.rejoins_verified == rec.rejoins_verified &&
         agg.mode_changes == s.adaptive_stats().mode_changes;
}

// At clean quiescence every EventMsg sent by some subsystem was received by
// its peer (events only: grants, statuses and retracts are not conserved
// this way, and faults affect wall-clock timing, never delivery).
bool events_conserved(const std::vector<Subsystem*>& subsystems,
                      std::uint64_t* sent, std::uint64_t* received) {
  *sent = 0;
  *received = 0;
  for (const Subsystem* s : subsystems) {
    *sent += s->stats().events_sent;
    *received += s->stats().events_received;
  }
  return *sent == *received;
}

bool run_one_config(std::uint64_t seed, const FuzzCase& c,
                    const std::vector<ChannelMode>& modes, bool with_faults,
                    const PipelineResult& reference, bool verbose,
                    std::size_t threads, bool adaptive) {
  const transport::FaultPlan plan =
      with_faults ? c.fault : transport::FaultPlan::none();
  FuzzCluster dut(c.spec, modes, c.wire, c.latency, plan,
                  c.checkpoint_intervals, std::nullopt, threads);
  if (adaptive) dut.arm_adaptive(seed);
  std::map<std::string, Subsystem::RunOutcome> outcomes;
  const PipelineResult result = dut.run(20'000ms, &outcomes);

  bool ok = result == reference;
  for (const auto& [name, outcome] : outcomes)
    ok &= (outcome == Subsystem::RunOutcome::kQuiescent);

  bool stats_ok = true;
  for (const Subsystem* s : dut.subsystems) {
    if (!stats_recombine(*s)) {
      std::printf(
          "FAIL seed=%llu: aggregate stats != per-engine recombination "
          "for %s\n",
          static_cast<unsigned long long>(seed), s->name().c_str());
      stats_ok = false;
    }
  }
  std::uint64_t total_sent = 0;
  std::uint64_t total_received = 0;
  if (ok && !events_conserved(dut.subsystems, &total_sent, &total_received)) {
    std::printf(
        "FAIL seed=%llu: event conservation at quiescence: sent=%llu "
        "received=%llu\n",
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(total_sent),
        static_cast<unsigned long long>(total_received));
    stats_ok = false;
  }
  ok &= stats_ok;

  if (ok) {
    if (verbose) {
      std::uint64_t flips = 0;
      for (const Subsystem* s : dut.subsystems)
        flips += s->adaptive_stats().mode_changes;
      std::printf(
          "  modes=%s faults=%d threads=%zu ... ok (%zu events, %llu "
          "flips)\n",
          describe_modes(modes).c_str(), with_faults ? 1 : 0, threads,
          result.received.size(), static_cast<unsigned long long>(flips));
    }
    return true;
  }

  std::printf("FAIL seed=%llu modes=%s faults=%d threads=%zu adaptive=%d\n",
              static_cast<unsigned long long>(seed),
              describe_modes(modes).c_str(), with_faults ? 1 : 0, threads,
              adaptive ? 1 : 0);
  std::printf("  case: %s\n", describe_case(c).c_str());
  for (const auto& [name, outcome] : outcomes)
    if (outcome != Subsystem::RunOutcome::kQuiescent)
      std::printf("  outcome[%s] = %s\n", name.c_str(),
                  outcome == Subsystem::RunOutcome::kStalled ? "STALLED"
                  : outcome == Subsystem::RunOutcome::kDisconnected
                      ? "DISCONNECTED"
                  : outcome == Subsystem::RunOutcome::kPeerDown
                      ? "PEER_DOWN"
                      : "HORIZON");
  std::printf("  expected %s\n  got      %s\n",
              dump(reference).c_str(), dump(result).c_str());
  std::printf("  reproduce: fuzz_cluster --seed=%llu%s%s%s\n",
              static_cast<unsigned long long>(seed),
              c.wire == Wire::kShm ? " --shm" : "",
              threads > 0
                  ? (" --threads=" + std::to_string(threads)).c_str()
                  : "",
              adaptive ? " --adaptive" : "");
  return false;
}

// ---------------------------------------------------------------------------
// Crash-recovery arm
// ---------------------------------------------------------------------------

bool run_recovery_config(std::uint64_t seed, const FuzzCase& c,
                         const std::vector<ChannelMode>& modes,
                         const PipelineResult& reference, bool verbose,
                         std::size_t threads, bool adaptive) {
  // The crash point and snapshot cadence derive from the seed too, so every
  // failure reproduces from `--recovery --seed=S` alone.
  Rng crash_rng(seed ^ 0xC4A5ED1AD15EA5EDULL);
  const std::size_t channels = c.spec.subsystem_count() - 1;
  const FuzzCluster::CrashSpec crash{
      .channel = static_cast<std::size_t>(crash_rng.below(channels)),
      .frames = 15 + crash_rng.below(50),
      .endpoint = 1 + crash_rng.below(2)};
  testing::RecoveryOptions options;
  // The store root includes the worker-thread count: the --threads ctest
  // arms run the same seeds as the single-threaded arm, and under a
  // parallel ctest both would otherwise remove_all/commit into the same
  // directory at once.
  // ... and the wire: the --shm arm replays the same seeds as the plain
  // recovery arm in a parallel ctest schedule.
  const std::filesystem::path root =
      std::filesystem::temp_directory_path() /
      ("pia_fuzz_recovery_" + std::to_string(seed) + "_" +
       describe_modes(modes) + "_t" + std::to_string(threads) +
       (c.wire == Wire::kShm ? "_shm" : "") + (adaptive ? "_adpt" : ""));
  std::filesystem::remove_all(root);
  options.store_root = root.string();
  options.auto_snapshot_every = 4 + crash_rng.below(12);
  options.heartbeat_interval = std::chrono::milliseconds(10);
  options.heartbeat_timeout = std::chrono::milliseconds(800);
  options.adaptive = adaptive;
  options.adaptive_seed = seed;

  try {
    const testing::RecoveryReport report = testing::run_with_crash_and_recover(
        c.spec, modes, c.wire, c.latency, transport::FaultPlan::none(),
        c.checkpoint_intervals, crash, options, 20'000ms, threads);
    if (report.result == reference) {
      std::filesystem::remove_all(root);
      if (verbose)
        std::printf(
            "  modes=%s crash(ch=%zu frames=%llu ep=%llu) ... ok "
            "(crashed=%d disk=%d attempts=%zu)\n",
            describe_modes(modes).c_str(), crash.channel,
            static_cast<unsigned long long>(crash.frames),
            static_cast<unsigned long long>(crash.endpoint),
            report.crash_triggered ? 1 : 0, report.restored_from_disk ? 1 : 0,
            report.restart_attempts);
      return true;
    }
    std::printf("FAIL seed=%llu modes=%s (recovery mismatch)\n",
                static_cast<unsigned long long>(seed),
                describe_modes(modes).c_str());
    std::printf("  expected %s\n  got      %s\n", dump(reference).c_str(),
                dump(report.result).c_str());
  } catch (const std::exception& e) {
    std::printf("FAIL seed=%llu modes=%s (recovery threw)\n  %s\n",
                static_cast<unsigned long long>(seed),
                describe_modes(modes).c_str(), e.what());
  }
  std::printf("  case: %s\n", describe_case(c).c_str());
  std::printf("  stores left in %s\n", root.string().c_str());
  std::printf("  reproduce: fuzz_cluster --recovery --seed=%llu%s%s\n",
              static_cast<unsigned long long>(seed),
              c.wire == Wire::kShm ? " --shm" : "",
              adaptive ? " --adaptive" : "");
  return false;
}

bool run_recovery_seed(std::uint64_t seed, bool verbose, std::size_t threads,
                       bool shm, bool adaptive) {
  FuzzCase c = generate(seed);
  // --shm re-runs the same seed-derived workloads over the shared-memory
  // ring: every case keeps its placement, faults and batch limits, only the
  // transport changes — so any divergence is the transport's fault.
  if (shm) c.wire = Wire::kShm;
  if (verbose)
    std::printf("seed=%llu %s (recovery, threads=%zu)\n",
                static_cast<unsigned long long>(seed),
                describe_case(c).c_str(), threads);
  const PipelineResult reference = run_single_host_pipeline(c.spec);

  const std::size_t channels = c.spec.subsystem_count() - 1;
  std::vector<std::vector<ChannelMode>> mode_sets = {
      uniform_modes(channels, ChannelMode::kConservative),
      uniform_modes(channels, ChannelMode::kOptimistic),
  };
  if (channels >= 2) {
    std::vector<ChannelMode> mixed;
    for (std::size_t i = 0; i < channels; ++i)
      mixed.push_back((i + seed) % 2 == 0 ? ChannelMode::kConservative
                                          : ChannelMode::kOptimistic);
    mode_sets.push_back(std::move(mixed));
  }

  bool ok = true;
  for (const auto& modes : mode_sets)
    ok &= run_recovery_config(seed, c, modes, reference, verbose, threads,
                              adaptive);
  return ok;
}

// ---------------------------------------------------------------------------
// Scale-out arm
// ---------------------------------------------------------------------------
//
// Each seed derives a small shard farm (2..16 handhelds, 1..4 shards,
// random station fan-in, catalog shape and Zipf exponent) and requires the
// distributed cluster to match the single-host oracle bit-exactly under
// conservative, optimistic and mixed channel modes, in both the aggregated
// (station fan-in) and per-client channel layouts.

wubbleu::ScaleoutSpec generate_scaleout(std::uint64_t seed) {
  Rng rng(seed ^ 0x5CA1E0C7FA23B00CULL);
  wubbleu::ScaleoutSpec spec;
  spec.seed = seed;
  spec.clients = 2 + rng.below(15);
  spec.shards = 1 + static_cast<std::uint32_t>(rng.below(4));
  spec.clients_per_station = 1 + static_cast<std::size_t>(rng.below(6));
  spec.requests_per_client = 1 + rng.below(4);
  spec.catalog.pages = 8 + static_cast<std::uint32_t>(rng.below(56));
  spec.catalog.page_bytes =
      256 + static_cast<std::uint32_t>(rng.below(1792));
  spec.zipf_exponent = 0.7 + 0.7 * rng.uniform();
  const std::uint32_t kBatchLimits[] = {1, 8, 64};
  spec.batch_limit = kBatchLimits[rng.below(3)];
  return spec;
}

std::string describe_scaleout(const wubbleu::ScaleoutSpec& spec) {
  std::ostringstream os;
  os << "clients=" << spec.clients << " shards=" << spec.shards
     << " cps=" << spec.clients_per_station
     << " reqs=" << spec.requests_per_client
     << " pages=" << spec.catalog.pages << " zipf=" << spec.zipf_exponent
     << " batch=" << spec.batch_limit;
  return os.str();
}

bool run_scaleout_config(std::uint64_t seed, wubbleu::ScaleoutSpec spec,
                         const std::vector<ChannelMode>& cycle,
                         std::size_t phase, bool aggregated,
                         const wubbleu::ScaleoutResult& reference,
                         bool verbose, std::size_t threads) {
  spec.mode_cycle = cycle;
  spec.mode_phase = phase;
  spec.aggregated = aggregated;
  spec.worker_threads = threads;
  wubbleu::ScaleoutCluster dut(spec);
  const auto outcomes = dut.run();
  bool ok = true;
  for (const auto& [name, outcome] : outcomes) {
    if (outcome == Subsystem::RunOutcome::kQuiescent) continue;
    std::printf("FAIL seed=%llu (scaleout): outcome[%s] != quiescent\n",
                static_cast<unsigned long long>(seed), name.c_str());
    ok = false;
  }
  const wubbleu::ScaleoutResult result = dut.result();
  if (!(result == reference)) {
    std::printf(
        "FAIL seed=%llu (scaleout) modes=%s agg=%d threads=%zu: "
        "fetch log diverges from single-host oracle\n",
        static_cast<unsigned long long>(seed),
        describe_modes(cycle).c_str(), aggregated ? 1 : 0, threads);
    for (std::size_t c = 0; c < reference.fetches.size(); ++c) {
      const auto& want = reference.fetches[c];
      const auto& got = result.fetches[c];
      if (want == got) continue;
      std::printf("  client %zu: %zu fetches expected, %zu got\n", c,
                  want.size(), got.size());
      for (std::size_t k = 0; k < std::max(want.size(), got.size()); ++k) {
        const auto dump = [](const wubbleu::Fetch& f) {
          return "page=" + std::to_string(f.page) + " issued=" +
                 f.issued.str() + " completed=" + f.completed.str() +
                 " bytes=" + std::to_string(f.body_bytes) + " hash=" +
                 std::to_string(f.body_hash) + " status=" +
                 std::to_string(f.status);
        };
        const std::string w =
            k < want.size() ? dump(want[k]) : std::string("<none>");
        const std::string g =
            k < got.size() ? dump(got[k]) : std::string("<none>");
        if (w != g)
          std::printf("    [%zu] expected %s\n         got      %s\n", k,
                      w.c_str(), g.c_str());
      }
    }
    for (dist::Subsystem* sub : dut.cluster().all_subsystems()) {
      const auto& os = sub->optimistic_stats();
      std::printf("  sub %-12s rollbacks=%llu retracts tx/rx=%llu/%llu\n",
                  sub->name().c_str(),
                  static_cast<unsigned long long>(os.rollbacks),
                  static_cast<unsigned long long>(os.retracts_sent),
                  static_cast<unsigned long long>(os.retracts_received));
      for (std::size_t ch = 0; ch < sub->channel_count(); ++ch) {
        const dist::ChannelEndpoint& e =
            sub->channel(ChannelId(static_cast<std::uint32_t>(ch)));
        std::size_t unconfirmed = 0;
        for (std::size_t k = e.replay_cursor; k < e.output_log.size(); ++k)
          if (!e.output_log[k].retracted) ++unconfirmed;
        std::size_t in_tomb = 0;
        for (const auto& r : e.input_log)
          if (r.retracted) ++in_tomb;
        std::printf(
            "    ch %-24s msgs tx/rx=%llu/%llu out=%zu(cursor=%zu "
            "unconf=%zu) in=%zu(tomb=%zu)\n",
            e.name().c_str(),
            static_cast<unsigned long long>(e.event_msgs_sent),
            static_cast<unsigned long long>(e.event_msgs_received),
            e.output_log.size(), e.replay_cursor, unconfirmed,
            e.input_log.size(), in_tomb);
      }
    }
    ok = false;
  }
  const SubsystemStats total = dut.total_stats();
  if (ok && total.events_sent != total.events_received) {
    std::printf(
        "FAIL seed=%llu (scaleout): event conservation at quiescence: "
        "sent=%llu received=%llu\n",
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(total.events_sent),
        static_cast<unsigned long long>(total.events_received));
    ok = false;
  }
  if (!ok) {
    std::printf("  case: %s\n", describe_scaleout(spec).c_str());
    std::printf("  reproduce: fuzz_cluster --scaleout --seed=%llu%s\n",
                static_cast<unsigned long long>(seed),
                threads > 0
                    ? (" --threads=" + std::to_string(threads)).c_str()
                    : "");
  } else if (verbose) {
    std::printf("  modes=%s agg=%d threads=%zu ... ok (%llu fetches)\n",
                describe_modes(cycle).c_str(), aggregated ? 1 : 0, threads,
                static_cast<unsigned long long>(result.total_fetches()));
  }
  return ok;
}

bool run_scaleout_seed(std::uint64_t seed, bool verbose,
                       std::size_t threads) {
  const wubbleu::ScaleoutSpec spec = generate_scaleout(seed);
  if (verbose)
    std::printf("seed=%llu %s (scaleout, threads=%zu)\n",
                static_cast<unsigned long long>(seed),
                describe_scaleout(spec).c_str(), threads);
  // One oracle serves every configuration: channel modes, worker counts
  // and the station fan-in must never change simulated behaviour.
  const wubbleu::ScaleoutResult reference = wubbleu::run_single_host(spec);

  const std::vector<std::vector<ChannelMode>> cycles = {
      {ChannelMode::kConservative},
      {ChannelMode::kOptimistic},
      {ChannelMode::kConservative, ChannelMode::kOptimistic},
  };
  bool ok = true;
  for (const auto& cycle : cycles)
    for (const bool aggregated : {true, false})
      ok &= run_scaleout_config(seed, spec, cycle,
                                cycle.size() > 1 ? seed % 2 : 0, aggregated,
                                reference, verbose, threads);
  return ok;
}

// ---------------------------------------------------------------------------
// Replication arm
// ---------------------------------------------------------------------------
//
// Each seed reuses the scale-out farm generator, replicates every gateway
// shard K-ways (K in {2,3}, seed-salted) and — in the kill configuration —
// slams one member's wire shut after a frame budget.  The acceptance bar is
// the zero-rollback failover contract: fetch logs bit-exact against the
// UNREPLICATED single-host oracle, every subsystem quiescent, and when the
// kill fired the group must have promoted a survivor in place (one member
// dropped, one promotion, no snapshot restore anywhere).

// Arms runtime mode renegotiation on the farm's plain subsystems (clients,
// stations, frontend).  Replica members stay UNARMED on purpose: a member
// must never propose (its clones would have to flip in lockstep), so the
// frontend's measurement-driven proposals into a ReplicaSet are answered
// "unsupported" and the proposer pins the channel fixed — exercising the
// rejection path while a failover runs elsewhere.  The forced flip rides a
// seed-chosen client uplink, whose endpoints are both plain subsystems.
void arm_adaptive_scaleout(wubbleu::ScaleoutCluster& dut,
                           std::uint64_t seed) {
  std::vector<dist::Subsystem*> clients;
  for (dist::Subsystem* s : dut.cluster().all_subsystems()) {
    if (s->name().rfind("shard", 0) == 0) continue;
    s->set_adaptive_sync();  // default measurement policy
    if (s->name().rfind("client", 0) == 0) clients.push_back(s);
  }
  if (clients.empty()) return;
  Rng pick(seed ^ 0xADA9717EF11A9B5DULL);
  dist::Subsystem& proposer = *clients[pick.below(clients.size())];
  const ChannelMode target =
      proposer.channel(ChannelId{0}).mode() == ChannelMode::kConservative
          ? ChannelMode::kOptimistic
          : ChannelMode::kConservative;
  proposer.request_mode_change(ChannelId{0}, target);
}

bool run_replicas_config(std::uint64_t seed, wubbleu::ScaleoutSpec spec,
                         bool aggregated, bool kill,
                         const wubbleu::ScaleoutResult& reference,
                         bool verbose, std::size_t threads, bool adaptive) {
  Rng salt(seed ^ 0x2E111CA7EDF00DULL);
  spec.aggregated = aggregated;
  spec.worker_threads = threads;
  spec.shard_replicas = 2 + salt.below(2);
  if (kill) {
    spec.replica_kill.shard =
        static_cast<std::uint32_t>(salt.below(spec.shards));
    spec.replica_kill.member = salt.below(spec.shard_replicas);
    spec.replica_kill.frames = 4 + salt.below(24);
    spec.replica_kill.seed = seed;
  }

  wubbleu::ScaleoutCluster dut(spec);
  if (adaptive) arm_adaptive_scaleout(dut, seed);
  const auto outcomes = dut.run();
  // The felled clone's wire dies under it: kDisconnected is its correct
  // exit.  Everyone else must reach clean quiescence.
  const std::string killed =
      kill ? "shard" + std::to_string(spec.replica_kill.shard) + "r" +
                 std::to_string(spec.replica_kill.member)
           : "";
  bool ok = true;
  for (const auto& [name, outcome] : outcomes) {
    const Subsystem::RunOutcome want =
        name == killed ? Subsystem::RunOutcome::kDisconnected
                       : Subsystem::RunOutcome::kQuiescent;
    if (outcome == want) continue;
    std::printf("FAIL seed=%llu (replicas): outcome[%s] unexpected (%d)\n",
                static_cast<unsigned long long>(seed), name.c_str(),
                static_cast<int>(outcome));
    ok = false;
  }

  const wubbleu::ScaleoutResult result = dut.result();
  if (!(result == reference)) {
    std::printf(
        "FAIL seed=%llu (replicas) K=%zu agg=%d kill=%d threads=%zu: fetch "
        "log diverges from unreplicated single-host oracle\n",
        static_cast<unsigned long long>(seed), spec.shard_replicas,
        aggregated ? 1 : 0, kill ? 1 : 0, threads);
    ok = false;
  }

  std::uint64_t dropped = 0;
  std::uint64_t promotions = 0;
  for (std::size_t m = 0; m < dut.replica_set_count(); ++m) {
    const dist::ReplicaGroupStats& stats =
        dut.replica_set(m).group().group_stats();
    dropped += stats.members_dropped;
    promotions += stats.promotions;
  }
  if (kill && (dropped != 1 || promotions != 1)) {
    std::printf(
        "FAIL seed=%llu (replicas): kill fired dropped=%llu promotions=%llu "
        "(want 1/1 — survivor promotion, not a restore)\n",
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(dropped),
        static_cast<unsigned long long>(promotions));
    ok = false;
  }
  if (!kill && dropped != 0) {
    std::printf("FAIL seed=%llu (replicas): spurious member drop (%llu)\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(dropped));
    ok = false;
  }
  // Zero rollback: a promotion must never route through the snapshot
  // ladder.  Any recovery on any subsystem means the failover rolled state
  // back instead of resuming on the survivor.
  const SubsystemStats total = dut.total_stats();
  if (total.recoveries != 0) {
    std::printf("FAIL seed=%llu (replicas): %llu snapshot recoveries during "
                "a replica failover (zero-rollback contract)\n",
                static_cast<unsigned long long>(seed),
                static_cast<unsigned long long>(total.recoveries));
    ok = false;
  }

  if (!ok) {
    std::printf("  case: %s K=%zu\n", describe_scaleout(spec).c_str(),
                spec.shard_replicas);
    std::printf("  reproduce: fuzz_cluster --replicas --seed=%llu%s%s\n",
                static_cast<unsigned long long>(seed),
                threads > 0
                    ? (" --threads=" + std::to_string(threads)).c_str()
                    : "",
                adaptive ? " --adaptive" : "");
  } else if (verbose) {
    std::printf(
        "  K=%zu agg=%d kill=%d threads=%zu ... ok (%llu fetches, "
        "failover=%lluus)\n",
        spec.shard_replicas, aggregated ? 1 : 0, kill ? 1 : 0, threads,
        static_cast<unsigned long long>(result.total_fetches()),
        static_cast<unsigned long long>(
            kill ? dut.replica_set(spec.replica_kill.shard)
                       .group()
                       .group_stats()
                       .last_failover_micros
                 : 0));
  }
  return ok;
}

bool run_replicas_seed(std::uint64_t seed, bool verbose, std::size_t threads,
                       bool adaptive) {
  const wubbleu::ScaleoutSpec spec = generate_scaleout(seed);
  if (verbose)
    std::printf("seed=%llu %s (replicas, threads=%zu)\n",
                static_cast<unsigned long long>(seed),
                describe_scaleout(spec).c_str(), threads);
  const wubbleu::ScaleoutResult reference = wubbleu::run_single_host(spec);

  bool ok = true;
  for (const bool aggregated : {true, false})
    for (const bool kill : {false, true})
      ok &= run_replicas_config(seed, spec, aggregated, kill, reference,
                                verbose, threads, adaptive);
  return ok;
}

bool run_seed(std::uint64_t seed, bool verbose, std::size_t threads,
              bool shm, bool adaptive) {
  FuzzCase c = generate(seed);
  if (shm) c.wire = Wire::kShm;
  if (verbose)
    std::printf("seed=%llu %s\n", static_cast<unsigned long long>(seed),
                describe_case(c).c_str());
  const PipelineResult reference = run_single_host_pipeline(c.spec);

  const std::size_t channels = c.spec.subsystem_count() - 1;
  std::vector<std::vector<ChannelMode>> mode_sets = {
      uniform_modes(channels, ChannelMode::kConservative),
      uniform_modes(channels, ChannelMode::kOptimistic),
  };
  if (channels >= 2) {
    // Mixed: alternate modes per channel, phase chosen by the seed.
    std::vector<ChannelMode> mixed;
    for (std::size_t i = 0; i < channels; ++i)
      mixed.push_back((i + seed) % 2 == 0 ? ChannelMode::kConservative
                                          : ChannelMode::kOptimistic);
    mode_sets.push_back(std::move(mixed));
  }

  bool ok = true;
  for (const auto& modes : mode_sets)
    for (const bool with_faults : {false, true})
      ok &= run_one_config(seed, c, modes, with_faults, reference, verbose,
                           threads, adaptive);
  return ok;
}

}  // namespace
}  // namespace pia::dist

int main(int argc, char** argv) {
  std::vector<std::uint64_t> seeds;
  std::uint64_t runs = 0;
  std::uint64_t start_seed = 1;
  bool verbose = false;
  bool recovery = false;
  bool scaleout = false;
  bool replicas = false;
  bool shm = false;
  bool adaptive = false;
  std::size_t threads = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      seeds.push_back(std::stoull(arg.substr(7)));
      verbose = true;
    } else if (arg.rfind("--seeds=", 0) == 0) {
      std::stringstream ss(arg.substr(8));
      std::string item;
      while (std::getline(ss, item, ',')) seeds.push_back(std::stoull(item));
    } else if (arg.rfind("--runs=", 0) == 0) {
      runs = std::stoull(arg.substr(7));
    } else if (arg.rfind("--start-seed=", 0) == 0) {
      start_seed = std::stoull(arg.substr(13));
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads = std::stoull(arg.substr(10));
    } else if (arg == "--recovery") {
      recovery = true;
    } else if (arg == "--scaleout") {
      scaleout = true;
    } else if (arg == "--replicas") {
      replicas = true;
    } else if (arg == "--shm") {
      shm = true;
    } else if (arg == "--adaptive") {
      adaptive = true;
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: fuzz_cluster [--recovery | --scaleout | "
                   "--replicas] [--seed=S | "
                   "--seeds=S1,S2,... | --runs=N [--start-seed=K]] "
                   "[--shm] [--adaptive] [--threads=N] [--verbose]\n");
      return 2;
    }
  }
  if (runs > 0)
    for (std::uint64_t s = 0; s < runs; ++s) seeds.push_back(start_seed + s);
  if (seeds.empty()) {
    // The PR-gating lists: deterministic, fast; the equivalence list is
    // curated to cover every fault kind, both wires and the multi-hop
    // loop-back topology, the recovery list to cover both wires and 2..4
    // subsystems with mid-run crash points.
    // Recovery gating trio: seed 9 restores from disk over TCP in both
    // modes, seed 11 drives the optimistic fallback ladder (multiple
    // restart attempts), seed 2 crashes a mixed-mode 4-host TCP pipeline.
    // Scale-out gating trio: seed 1 draws a 14-client 3-shard farm, seed 5
    // a 9-client 2-shard farm (the one that exposed the termination-probe
    // revival race under threads), seed 12 a 9-client 4-shard farm; between
    // them they cover both frontend layouts, mixed channel modes and
    // station fan-in > 1.
    // Replica gating trio: seed 1 replicates a 14-client 3-shard farm
    // 2-ways, seed 2 draws K=3 (a kill leaves TWO live clones deduping),
    // seed 7 kills under station fan-in > 1; each seed runs both layouts
    // with and without the kill.
    seeds = recovery   ? std::vector<std::uint64_t>{2, 9, 11}
            : scaleout ? std::vector<std::uint64_t>{1, 5, 12}
            : replicas ? std::vector<std::uint64_t>{1, 2, 7}
                       : std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6,
                                                    7, 8, 11, 13, 17, 23};
  }

  std::uint64_t failures = 0;
  for (const std::uint64_t seed : seeds) {
    const bool ok =
        recovery   ? pia::dist::run_recovery_seed(seed, verbose, threads, shm,
                                                  adaptive)
        : scaleout ? pia::dist::run_scaleout_seed(seed, verbose, threads)
        : replicas ? pia::dist::run_replicas_seed(seed, verbose, threads,
                                                  adaptive)
                   : pia::dist::run_seed(seed, verbose, threads, shm,
                                         adaptive);
    if (!ok) ++failures;
    if (!verbose) {
      std::printf(".");
      std::fflush(stdout);
    }
  }
  if (!verbose) std::printf("\n");
  if (failures > 0) {
    std::printf("%llu of %zu seeds FAILED\n",
                static_cast<unsigned long long>(failures), seeds.size());
    return 1;
  }
  if (recovery)
    std::printf("all %zu seeds passed (kill + restart from durable "
                "snapshots == single-host)\n",
                seeds.size());
  else if (scaleout)
    std::printf("all %zu seeds passed (sharded farm == single-host, "
                "aggregated and per-client, every mode)\n",
                seeds.size());
  else if (replicas)
    std::printf("all %zu seeds passed (K-replicated shards with seeded "
                "member kills == unreplicated single-host, zero rollback)\n",
                seeds.size());
  else
    std::printf("all %zu seeds passed (conservative == optimistic == "
                "single-host, faulty and clean links)\n",
                seeds.size());
  return 0;
}
