// Long-horizon soak for the scale-out harness: a 500-handheld, 4-shard farm
// driven to quiescence in stepped horizons.  Asserts, at every step and at
// the end:
//   - no subsystem ever reports kStalled (a missed wakeup anywhere in the
//     grant/wait machinery shows up here as a stall timeout),
//   - GVT is monotone across steps,
//   - global event conservation at quiescence (every EventMsg sent was
//     received),
//   - the fetch logs match the single-host oracle bit-exactly.
//
// Labelled `soak` in ctest and excluded from the PR-gating tier: without
// PIA_SOAK=1 in the environment the binary exits with the ctest skip code.
// Run it directly with --quick for a scaled-down local smoke.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "wubbleu/scaleout.hpp"

int main(int argc, char** argv) {
  using namespace pia;
  using namespace std::chrono_literals;

  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr, "usage: soak_scaleout [--quick]\n");
      return 2;
    }
  }
  if (!quick && std::getenv("PIA_SOAK") == nullptr) {
    std::printf("soak skipped: set PIA_SOAK=1 (or pass --quick)\n");
    return 77;  // ctest SKIP_RETURN_CODE
  }

  wubbleu::ScaleoutSpec spec;
  spec.clients = quick ? 40 : 500;
  spec.shards = 4;
  spec.clients_per_station = 25;
  spec.requests_per_client = quick ? 3 : 8;
  spec.catalog.pages = 64;
  spec.catalog.page_bytes = 1024;
  spec.seed = 20'260'807;
  // Pool the edge node: 500 thread-per-subsystem clients would be a thread
  // stress test, not a protocol soak.
  spec.worker_threads = 8;

  std::printf("soak: clients=%zu shards=%u stations=%zu requests=%u\n",
              spec.clients, spec.shards, spec.stations(),
              spec.requests_per_client);

  const wubbleu::ScaleoutResult oracle = wubbleu::run_single_host(spec);
  wubbleu::ScaleoutCluster cluster(spec);

  bool ok = true;
  const VirtualTime step = ticks(5'000);
  VirtualTime gvt_prev = VirtualTime::zero();
  VirtualTime horizon = step;
  bool quiescent = false;
  for (std::size_t n = 1; !quiescent; ++n, horizon = horizon + step) {
    if (n > 100'000) {
      std::printf("FAIL: no quiescence after %zu horizon steps\n", n);
      ok = false;
      break;
    }
    const auto outcomes = cluster.run(
        {.horizon = horizon, .stall_timeout = 60'000ms});
    quiescent = true;
    for (const auto& [name, outcome] : outcomes) {
      if (outcome == dist::Subsystem::RunOutcome::kQuiescent) continue;
      quiescent = false;
      if (outcome != dist::Subsystem::RunOutcome::kHorizon) {
        std::printf("FAIL: outcome[%s] at horizon %s is %s\n", name.c_str(),
                    horizon.str().c_str(),
                    outcome == dist::Subsystem::RunOutcome::kStalled
                        ? "STALLED (missed wakeup)"
                        : "not quiescent/horizon");
        ok = false;
      }
    }
    if (!ok) break;
    const VirtualTime gvt = cluster.cluster().compute_gvt();
    if (gvt < gvt_prev) {
      std::printf("FAIL: GVT regressed %s -> %s at horizon %s\n",
                  gvt_prev.str().c_str(), gvt.str().c_str(),
                  horizon.str().c_str());
      ok = false;
      break;
    }
    gvt_prev = gvt;
    if (n % 4 == 0 || quiescent || gvt.is_infinite())
      std::printf("  horizon=%s gvt=%s\n", horizon.str().c_str(),
                  gvt.str().c_str());
    if (!quiescent && gvt.is_infinite()) {
      // Every queue is drained (GVT passed every pending event), but a
      // horizon-bounded run() reports kHorizon regardless, and the
      // termination probe only concludes on an unbounded run: finish with
      // one infinite-horizon slice and require the probe to confirm.
      const auto final_outcomes = cluster.run({.stall_timeout = 60'000ms});
      quiescent = true;
      for (const auto& [name, outcome] : final_outcomes) {
        if (outcome == dist::Subsystem::RunOutcome::kQuiescent) continue;
        quiescent = false;
        std::printf("FAIL: outcome[%s] on the final unbounded run is not "
                    "quiescent\n", name.c_str());
        ok = false;
      }
      if (!ok) break;
    }
  }

  if (ok) {
    const dist::SubsystemStats total = cluster.total_stats();
    if (total.events_sent != total.events_received) {
      std::printf(
          "FAIL: event conservation at quiescence: sent=%llu received=%llu\n",
          static_cast<unsigned long long>(total.events_sent),
          static_cast<unsigned long long>(total.events_received));
      ok = false;
    }
    const wubbleu::ScaleoutResult result = cluster.result();
    if (!(result == oracle)) {
      std::printf("FAIL: fetch logs diverge from the single-host oracle\n");
      ok = false;
    }
    const std::uint64_t expected =
        static_cast<std::uint64_t>(spec.clients) * spec.requests_per_client;
    if (result.total_fetches() != expected) {
      std::printf("FAIL: %llu fetches, expected %llu\n",
                  static_cast<unsigned long long>(result.total_fetches()),
                  static_cast<unsigned long long>(expected));
      ok = false;
    }
    if (ok)
      std::printf(
          "soak ok: %llu fetches, %llu events conserved, gvt monotone\n",
          static_cast<unsigned long long>(result.total_fetches()),
          static_cast<unsigned long long>(total.events_sent));
  }
  return ok ? 0 : 1;
}
