#include <gtest/gtest.h>

#include "core/process.hpp"
#include "core/scheduler.hpp"
#include "helpers.hpp"

namespace pia {
namespace {

/// Straight-line behaviour: wait, then relay three values with think time.
class ProcRelay : public ProcessComponent {
 public:
  explicit ProcRelay(std::string name) : ProcessComponent(std::move(name)) {
    in_ = add_input("in");
    out_ = add_output("out");
  }

  Process body() override {
    co_await delay(ticks(5));
    for (int i = 0; i < 3; ++i) {
      auto [port, value] = co_await receive();
      EXPECT_EQ(port, in_);
      advance(ticks(7));  // basic-block estimate, mid-coroutine
      send(out_, Value{value.as_word() * 10});
    }
    finished_normally = true;
  }

  bool finished_normally = false;
  PortIndex in_, out_;
};

TEST(ProcessComponentTest, StraightLineBodyRelaysValues) {
  Scheduler sched;
  auto& producer = sched.emplace<testing::Producer>("p", 3, ticks(10), ticks(10));
  auto& relay = sched.emplace<ProcRelay>("proc");
  auto& sink = sched.emplace<testing::Sink>("s");
  sched.connect(producer.id(), "out", relay.id(), "in");
  sched.connect(relay.id(), "out", sink.id(), "in");
  sched.init();
  sched.run();

  EXPECT_TRUE(relay.finished_normally);
  EXPECT_TRUE(relay.finished());
  EXPECT_EQ(sink.received, (std::vector<std::uint64_t>{0, 10, 20}));
  // Deliveries at producer times 10/20/30 plus 7 ticks of think time each.
  EXPECT_EQ(sink.times, (std::vector<VirtualTime>{ticks(17), ticks(27),
                                                  ticks(37)}));
}

TEST(ProcessComponentTest, MailboxBuffersBurstsWhileComputing) {
  /// Receives one value, then sleeps a long time; the other arrivals must
  /// queue in the mailbox and be consumed afterwards in order.
  class Sleepy : public ProcessComponent {
   public:
    explicit Sleepy(std::string name) : ProcessComponent(std::move(name)) {
      in_ = add_input("in", PortSync::kAsynchronous);
      out_ = add_output("out");
    }
    Process body() override {
      (void)co_await receive();
      co_await delay(ticks(1'000));  // everything else arrives meanwhile
      while (mailbox_size() > 0) {
        auto [port, value] = co_await receive();
        send(out_, value);
      }
    }
    PortIndex in_, out_;
  };

  Scheduler sched;
  auto& producer = sched.emplace<testing::Producer>("p", 5, ticks(10), ticks(10));
  auto& sleepy = sched.emplace<Sleepy>("sleepy");
  auto& sink = sched.emplace<testing::Sink>("s");
  sched.connect(producer.id(), "out", sleepy.id(), "in");
  sched.connect(sleepy.id(), "out", sink.id(), "in");
  sched.init();
  sched.run();
  EXPECT_EQ(sink.received, (std::vector<std::uint64_t>{1, 2, 3, 4}));
  ASSERT_FALSE(sink.times.empty());
  EXPECT_GE(sink.times[0], ticks(1'010));
}

TEST(ProcessComponentTest, RefusesToRewind) {
  Scheduler sched;
  auto& relay = sched.emplace<ProcRelay>("proc");
  sched.init();
  const Bytes image = relay.save_image();
  EXPECT_THROW(relay.restore_image(image), Error);
}

TEST(ProcessComponentTest, BodyExceptionSurfaces) {
  class Thrower : public ProcessComponent {
   public:
    Thrower() : ProcessComponent("thrower") {}
    Process body() override {
      co_await delay(ticks(1));
      raise(ErrorKind::kState, "deliberate");
    }
  };
  Scheduler sched;
  sched.emplace<Thrower>();
  sched.init();
  EXPECT_THROW(sched.run(), Error);
}

}  // namespace
}  // namespace pia
