#include <gtest/gtest.h>

#include <future>

#include "core/scheduler.hpp"
#include "transport/tcp.hpp"
#include "hw/bridge.hpp"
#include "hw/pamette.hpp"
#include "hw/simhw.hpp"
#include "helpers.hpp"

namespace pia::hw {
namespace {

std::unique_ptr<PametteDevice> make_timer_board(std::uint64_t period = 4) {
  return std::make_unique<PametteDevice>(8, /*clock=*/ticks(100),
                                         make_timer_design(period));
}

TEST(Pamette, ClocksUserDesignOnAdvance) {
  PametteDevice dev(4, ticks(100), make_timer_design(0));
  dev.write(1, 1, VirtualTime::zero());  // enable
  dev.advance(ticks(1000));
  EXPECT_EQ(dev.reg(0), 10u);  // ten ticks of 100 in (0, 1000]
  EXPECT_EQ(dev.ticks_run(), 10u);
}

TEST(Pamette, RaisesPeriodicInterrupts) {
  PametteDevice dev(4, ticks(100), make_timer_design(3));
  dev.write(1, 1, VirtualTime::zero());
  const auto irqs = dev.advance(ticks(1000));
  // Counts 1..10; interrupts at 3, 6, 9.
  ASSERT_EQ(irqs.size(), 3u);
  EXPECT_EQ(irqs[0].payload, 3u);
  EXPECT_EQ(irqs[0].time, ticks(300));
  EXPECT_EQ(irqs[2].time, ticks(900));
}

TEST(Pamette, DisabledDesignDoesNothing) {
  PametteDevice dev(4, ticks(100), make_timer_design(1));
  dev.advance(ticks(1000));
  EXPECT_EQ(dev.reg(0), 0u);
}

TEST(LocalStub, MeetsTheThreeObligations) {
  LocalHardwareStub stub(make_timer_board(2));
  // 1. set and read time
  stub.set_time(ticks(500));
  EXPECT_EQ(stub.read_time(), ticks(500));
  // 2. run / stall
  stub.write_register(1, 1);
  stub.run_until(ticks(1500));
  EXPECT_EQ(stub.read_time(), ticks(1500));
  stub.stall();
  // 3. buffered interrupts
  const auto irqs = stub.take_interrupts();
  ASSERT_FALSE(irqs.empty());
  for (const auto& irq : irqs) EXPECT_LE(irq.time, ticks(1500));
  EXPECT_TRUE(stub.take_interrupts().empty());  // drained
}

TEST(HardwareServer, ServesStubCallsOverLink) {
  auto pair = transport::make_loopback_pair();
  HardwareServer server(make_timer_board(2), std::move(pair.a));
  RemoteHardwareStub stub(std::move(pair.b));

  stub.set_time(VirtualTime::zero());
  stub.write_register(1, 1);  // enable
  stub.run_until(ticks(800));
  EXPECT_EQ(stub.read_time(), ticks(800));
  EXPECT_EQ(stub.read_register(0), 8u);
  const auto irqs = stub.take_interrupts();
  EXPECT_EQ(irqs.size(), 4u);  // counts 2,4,6,8
  EXPECT_GT(server.commands_served(), 4u);
}

TEST(HardwareServer, WorksOverTcp) {
  transport::TcpListener listener(0);
  auto client_link = std::async(std::launch::async, [&] {
    return transport::tcp_connect(listener.port());
  });
  HardwareServer server(make_timer_board(1), listener.accept());
  RemoteHardwareStub stub(client_link.get());

  stub.write_register(1, 1);
  stub.run_until(ticks(300));
  EXPECT_EQ(stub.read_register(0), 3u);
  EXPECT_EQ(stub.take_interrupts().size(), 3u);
}

TEST(Bridge, BusReadWriteRoundTrip) {
  Scheduler sched;
  // period 0: the counter runs but raises no interrupts, so the (unwired)
  // irq port stays silent in this bus-focused test.
  auto& bridge = sched.emplace<HardwareBridge>(
      "hw", std::make_unique<LocalHardwareStub>(make_timer_board(0)),
      /*poll=*/ticks(100000), /*read_latency=*/ticks(50));
  auto& sink = sched.emplace<testing::Sink>("cpu");

  /// A little driver that writes the enable register then reads it back.
  class Driver : public Component {
   public:
    Driver() : Component("drv") { cmd_ = add_output("cmd"); }
    void on_init() override { wake_after(ticks(10)); }
    void on_wake() override {
      send(cmd_, HardwareBridge::encode_write(1, 1));
      advance(ticks(5));
      send(cmd_, HardwareBridge::encode_read(1));
    }
    void on_receive(PortIndex, const Value&) override {}
    PortIndex cmd_;
  };
  auto& driver = sched.emplace<Driver>();
  sched.connect(driver.id(), "cmd", bridge.id(), "cmd");
  sched.connect(bridge.id(), "rdata", sink.id(), "in");
  sched.init();
  sched.run_until(ticks(50000));  // the bridge re-arms its poll forever
  ASSERT_EQ(sink.received.size(), 1u);
  EXPECT_EQ(sink.received[0], 1u);  // read back the enable bit
  EXPECT_EQ(bridge.bus_accesses(), 2u);
}

TEST(Bridge, PollsAndDeliversHardwareInterrupts) {
  Scheduler sched;
  auto board = make_timer_board(/*period=*/5);
  board->write(1, 1, VirtualTime::zero());  // pre-enabled
  auto& bridge = sched.emplace<HardwareBridge>(
      "hw", std::make_unique<LocalHardwareStub>(std::move(board)),
      /*poll=*/ticks(1000));

  class IrqSink : public Component {
   public:
    IrqSink() : Component("irqsink") {
      in_ = add_input("in", PortSync::kAsynchronous);
    }
    void on_receive(PortIndex, const Value& v) override {
      auto irq = HardwareBridge::decode_irq(v);
      payloads.push_back(irq.payload);
      times.push_back(delivery_time());
    }
    std::vector<std::uint64_t> payloads;
    std::vector<VirtualTime> times;
    PortIndex in_;
  };
  auto& sink = sched.emplace<IrqSink>();
  sched.connect(bridge.id(), "irq", sink.id(), "in");
  sched.init();
  sched.run_until(ticks(5000));
  // Board clocks every 100 ticks, irq every 5 counts => every 500 ticks.
  ASSERT_GE(sink.payloads.size(), 8u);
  EXPECT_EQ(sink.payloads[0], 5u);
  EXPECT_EQ(sink.payloads[1], 10u);
  // Interrupt times never travel backwards relative to delivery order.
  for (std::size_t i = 1; i < sink.times.size(); ++i)
    EXPECT_GE(sink.times[i], sink.times[i - 1]);
}

TEST(Bridge, RefusesToRewind) {
  Scheduler sched;
  auto& bridge = sched.emplace<HardwareBridge>(
      "hw", std::make_unique<LocalHardwareStub>(make_timer_board(2)));
  sched.init();
  const Bytes image = bridge.save_image();
  EXPECT_THROW(bridge.restore_image(image), Error);
}

}  // namespace
}  // namespace pia::hw
