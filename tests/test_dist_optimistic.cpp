#include <gtest/gtest.h>

#include <chrono>

#include "dist_helpers.hpp"

namespace pia::dist {
namespace {

using namespace std::chrono_literals;
using testing::SplitLoop;
using testing::SplitPipe;
using testing::single_host_loop_reference;

TEST(OptimisticPipe, DeliversWithoutBlocking) {
  SplitPipe pipe(10, ChannelMode::kOptimistic);
  pipe.cluster.start_all();
  const auto outcomes = pipe.cluster.run_all();
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;
  EXPECT_EQ(pipe.sink->received.size(), 10u);
  // Optimistic channels carry safe-time floors (a mixed-mode neighbour may
  // need them to ground promises to ITS conservative peers), but they are
  // informational only: execution never requests one or blocks on one.
  EXPECT_EQ(pipe.a->stats().stalls + pipe.b->stats().stalls, 0u);
  EXPECT_EQ(pipe.a->stats().requests_sent + pipe.b->stats().requests_sent,
            0u);
}

/// A component that gives the receiving subsystem plenty of local work so it
/// runs ahead of the slow remote producer: the recipe for stragglers.
class BusyCounter : public Component {
 public:
  BusyCounter(std::string name, std::uint64_t iterations)
      : Component(std::move(name)), remaining_(iterations) {
    out_ = add_output("tick");
  }
  void on_init() override { wake_after(ticks(1)); }
  void on_wake() override {
    if (remaining_ == 0) return;
    --remaining_;
    ++count_;
    send(out_, Value{count_});
    wake_after(ticks(1));
  }
  void on_receive(PortIndex, const Value&) override {}
  void save_state(serial::OutArchive& ar) const override {
    ar.put_varint(remaining_);
    ar.put_varint(count_);
  }
  void restore_state(serial::InArchive& ar) override {
    remaining_ = ar.get_varint();
    count_ = ar.get_varint();
  }

 private:
  std::uint64_t remaining_;
  std::uint64_t count_ = 0;
  PortIndex out_;
};

struct StragglerRig {
  NodeCluster cluster;
  Subsystem* fast = nullptr;  // runs ahead on local work
  Subsystem* slow = nullptr;  // produces sparse remote events, slowly
  testing::Sink* remote_sink = nullptr;  // on fast, receives slow's events
  testing::Sink* local_sink = nullptr;   // on fast, receives local ticks

  explicit StragglerRig(std::uint64_t remote_events,
                        std::uint64_t local_ticks,
                        transport::LatencyModel latency = {.base = 2ms}) {
    PiaNode& node = cluster.add_node("n");
    fast = &node.add_subsystem("fast");
    slow = &node.add_subsystem("slow");
    fast->set_checkpoint_interval(32);
    slow->set_checkpoint_interval(32);

    // Local work on `fast`, at virtual period 1: reaches high virtual times
    // quickly.
    auto& busy = fast->scheduler().emplace<BusyCounter>("busy", local_ticks);
    local_sink = &fast->scheduler().emplace<testing::Sink>("local");
    fast->scheduler().connect(busy.id(), "tick", local_sink->id(), "in");

    // Remote events arrive late in wall-clock time (latency link) but carry
    // small virtual timestamps: stragglers.
    auto& producer = slow->scheduler().emplace<testing::Producer>(
        "p", remote_events, /*period=*/ticks(10));
    remote_sink = &fast->scheduler().emplace<testing::Sink>("remote");

    const NetId net_slow = slow->scheduler().make_net("wire");
    slow->scheduler().attach(net_slow, producer.id(), "out");
    const NetId net_fast = fast->scheduler().make_net("wire");
    fast->scheduler().attach(net_fast, remote_sink->id(), "in");

    const ChannelPair ch = cluster.connect_checked(
        *fast, *slow, ChannelMode::kOptimistic, Wire::kLoopback, latency);
    split_net(*slow, ch.b, net_slow, *fast, ch.a, net_fast);
  }
};

TEST(OptimisticStraggler, RollbackRepairsCausality) {
  StragglerRig rig(/*remote_events=*/8, /*local_ticks=*/5000);
  rig.cluster.start_all();
  const auto outcomes = rig.cluster.run_all(
      Subsystem::RunConfig{.stall_timeout = 10000ms});
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;

  // The fast subsystem must have run ahead and been rewound at least once.
  EXPECT_GT(rig.fast->stats().rollbacks, 0u);

  // Despite the rollbacks, every event landed exactly once, in timestamp
  // order, at the right time.
  ASSERT_EQ(rig.remote_sink->received.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(rig.remote_sink->received[i], i);
    EXPECT_EQ(rig.remote_sink->times[i], ticks(10 * (i + 1)));
  }
  ASSERT_EQ(rig.local_sink->received.size(), 5000u);
  for (std::size_t i = 0; i < 5000; ++i)
    EXPECT_EQ(rig.local_sink->received[i], i + 1);
}

TEST(OptimisticStraggler, ResultsMatchConservativeRun) {
  // The whole point of rollback: same results as the safe protocol.
  auto run_mode = [](ChannelMode mode) {
    SplitLoop loop(15, mode);
    loop.a->set_checkpoint_interval(8);
    loop.b->set_checkpoint_interval(8);
    loop.cluster.start_all();
    loop.cluster.run_all(Subsystem::RunConfig{.stall_timeout = 10000ms});
    return loop.sink->received;
  };
  const auto conservative = run_mode(ChannelMode::kConservative);
  const auto optimistic = run_mode(ChannelMode::kOptimistic);
  EXPECT_EQ(conservative, optimistic);
  EXPECT_EQ(conservative, single_host_loop_reference(15));
}

TEST(OptimisticRetraction, CascadesAcrossSubsystems) {
  // fast also forwards remote events onward through a relay loop back to
  // slow; a rollback on fast retracts forwarded events, forcing slow to
  // rewind too (cascading rollback).
  NodeCluster cluster;
  PiaNode& node = cluster.add_node("n");
  Subsystem& fast = node.add_subsystem("fast");
  Subsystem& slow = node.add_subsystem("slow");
  fast.set_checkpoint_interval(16);
  slow.set_checkpoint_interval(16);

  auto& busy = fast.scheduler().emplace<BusyCounter>("busy", 3000);
  auto& busy_sink = fast.scheduler().emplace<testing::Sink>("bs");
  fast.scheduler().connect(busy.id(), "tick", busy_sink.id(), "in");

  auto& producer =
      slow.scheduler().emplace<testing::Producer>("p", 6, ticks(10));
  auto& echo_sink = slow.scheduler().emplace<testing::Sink>("echo");
  auto& relay = fast.scheduler().emplace<testing::Relay>("r");

  const NetId fwd_slow = slow.scheduler().make_net("fwd");
  slow.scheduler().attach(fwd_slow, producer.id(), "out");
  const NetId fwd_fast = fast.scheduler().make_net("fwd");
  fast.scheduler().attach(fwd_fast, relay.id(), "in");
  const NetId back_fast = fast.scheduler().make_net("back");
  fast.scheduler().attach(back_fast, relay.id(), "out");
  const NetId back_slow = slow.scheduler().make_net("back");
  slow.scheduler().attach(back_slow, echo_sink.id(), "in");

  const ChannelPair ch = cluster.connect_checked(
      fast, slow, ChannelMode::kOptimistic, Wire::kLoopback,
      transport::LatencyModel{.base = 1ms});
  split_net(slow, ch.b, fwd_slow, fast, ch.a, fwd_fast);
  split_net(slow, ch.b, back_slow, fast, ch.a, back_fast);

  cluster.start_all();
  const auto outcomes =
      cluster.run_all(Subsystem::RunConfig{.stall_timeout = 10000ms});
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;

  ASSERT_EQ(echo_sink.received.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_EQ(echo_sink.received[i], i + 1);  // relay adds 1
}

TEST(OptimisticFossil, GvtCollectsCheckpointsAndLogs) {
  StragglerRig rig(4, 2000);
  rig.cluster.start_all();
  rig.cluster.run_all(Subsystem::RunConfig{.stall_timeout = 10000ms});

  const std::size_t checkpoints_before = rig.fast->stats().checkpoints;
  EXPECT_GT(checkpoints_before, 2u);

  const VirtualTime gvt = rig.cluster.fossil_collect_all();
  // Quiescent system: GVT is infinite, everything collectable except the
  // newest checkpoint.
  EXPECT_TRUE(gvt.is_infinite());
  EXPECT_TRUE(rig.fast->checkpoints().has_checkpoint());

  // The system still works after collection: more local work can run.
  EXPECT_EQ(rig.fast->run(Subsystem::RunConfig{.stall_timeout = 1000ms}),
            Subsystem::RunOutcome::kQuiescent);
}

TEST(OptimisticDeterminism, RepeatedRunsIdentical) {
  auto run_once = [] {
    StragglerRig rig(6, 1500, transport::LatencyModel{.base = 1ms});
    rig.cluster.start_all();
    rig.cluster.run_all(Subsystem::RunConfig{.stall_timeout = 10000ms});
    return std::make_pair(rig.remote_sink->received,
                          rig.remote_sink->times);
  };
  const auto first = run_once();
  const auto second = run_once();
  // Rollback counts may differ run to run (wall-clock races) but the
  // simulation results may not.
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace pia::dist
