// Shared fixtures for distributed-layer tests and benches: small systems
// split across two or three subsystems.
#pragma once

#include <algorithm>
#include <filesystem>
#include <memory>
#include <optional>

#include "base/error.hpp"
#include "dist/node.hpp"
#include "dist/snapshot_store.hpp"
#include "helpers.hpp"

namespace pia::dist::testing {

using pia::testing::Producer;
using pia::testing::Relay;
using pia::testing::Sink;

/// Producer on subsystem A feeding a Sink on subsystem B through one split
/// net (the minimal Fig. 2 configuration).
struct SplitPipe {
  NodeCluster cluster;
  Subsystem* a = nullptr;
  Subsystem* b = nullptr;
  Producer* producer = nullptr;
  Sink* sink = nullptr;
  ChannelPair channels;

  SplitPipe(std::uint64_t count, ChannelMode mode,
            Wire wire = Wire::kLoopback,
            transport::LatencyModel latency = {},
            VirtualTime period = ticks(10),
            const transport::FaultPlan& fault = {}) {
    PiaNode& node_a = cluster.add_node("nodeA");
    PiaNode& node_b = cluster.add_node("nodeB");
    a = &node_a.add_subsystem("ssA");
    b = &node_b.add_subsystem("ssB");

    producer = &a->scheduler().emplace<Producer>("p", count, period);
    sink = &b->scheduler().emplace<Sink>("s");

    const NetId net_a = a->scheduler().make_net("wire");
    a->scheduler().attach(net_a, producer->id(), "out");
    const NetId net_b = b->scheduler().make_net("wire");
    b->scheduler().attach(net_b, sink->id(), "in");

    channels = cluster.connect_checked(*a, *b, mode, wire, latency, fault);
    split_net(*a, channels.a, net_a, *b, channels.b, net_b);
  }
};

/// Round trip: producer on A -> relay on B -> sink back on A, two split
/// nets over one channel.
struct SplitLoop {
  NodeCluster cluster;
  Subsystem* a = nullptr;
  Subsystem* b = nullptr;
  Producer* producer = nullptr;
  Relay* relay = nullptr;
  Sink* sink = nullptr;
  ChannelPair channels;

  SplitLoop(std::uint64_t count, ChannelMode mode,
            Wire wire = Wire::kLoopback,
            transport::LatencyModel latency = {},
            const transport::FaultPlan& fault = {}) {
    PiaNode& node_a = cluster.add_node("nodeA");
    PiaNode& node_b = cluster.add_node("nodeB");
    a = &node_a.add_subsystem("ssA");
    b = &node_b.add_subsystem("ssB");

    producer = &a->scheduler().emplace<Producer>("p", count);
    sink = &a->scheduler().emplace<Sink>("s");
    relay = &b->scheduler().emplace<Relay>("r");

    const NetId fwd_a = a->scheduler().make_net("fwd");
    a->scheduler().attach(fwd_a, producer->id(), "out");
    const NetId back_a = a->scheduler().make_net("back");
    a->scheduler().attach(back_a, sink->id(), "in");

    const NetId fwd_b = b->scheduler().make_net("fwd");
    b->scheduler().attach(fwd_b, relay->id(), "in");
    const NetId back_b = b->scheduler().make_net("back");
    b->scheduler().attach(back_b, relay->id(), "out");

    channels = cluster.connect_checked(*a, *b, mode, wire, latency, fault);
    split_net(*a, channels.a, fwd_a, *b, channels.b, fwd_b);
    split_net(*a, channels.a, back_a, *b, channels.b, back_b);
  }
};

// ---------------------------------------------------------------------------
// Generalized pipelines: the single-host equivalence oracle the cluster
// fuzzer (tests/fuzz_cluster.cpp) checks every random configuration against.
// ---------------------------------------------------------------------------

/// Relay whose think time scales with its runlevel's detail
/// (think = base * (1 + detail)), so fuzzed runlevels change timing.  The
/// input is asynchronous (interrupt-like): fuzzed workloads routinely
/// overrun a relay (producer period < think time), which a synchronous port
/// must reject as a §2.1.1 consistency violation; an asynchronous port
/// accepts the value at the relay's current local time — still fully
/// deterministic, so the single-host oracle stays exact.
class LeveledRelay : public Component {
 public:
  LeveledRelay(std::string name, std::uint64_t base_ticks, RunLevel initial)
      : Component(std::move(name)), base_(base_ticks) {
    in_ = add_input("in", PortSync::kAsynchronous);
    out_ = add_output("out");
    set_initial_runlevel(initial);
  }

  void on_receive(PortIndex, const Value& value) override {
    const auto detail = static_cast<std::uint64_t>(runlevel().detail);
    advance(ticks(static_cast<VirtualTime::rep>(base_ * (1 + detail))));
    send(out_, Value{value.as_word() + 1});
    ++forwarded;
  }

  void save_state(serial::OutArchive& ar) const override {
    ar.put_varint(forwarded);
  }
  void restore_state(serial::InArchive& ar) override {
    forwarded = ar.get_varint();
  }

  std::uint64_t forwarded = 0;

 private:
  std::uint64_t base_;
  PortIndex in_;
  PortIndex out_;
};

/// A producer -> relay* -> sink pipeline plus its placement across
/// subsystems.  stage_host[i] is the subsystem hosting stage i (stage 0 is
/// the producer, stages 1..N the relays); it must be non-decreasing in
/// steps of at most 1 and cover 0..K-1, so consecutive stages are either
/// co-hosted or split across the channel between adjacent subsystems.  The
/// sink lives on the last subsystem (forward pipeline) or on subsystem 0
/// (loop-back: the result net spans every channel on the way home, the
/// multi-hop generalization of SplitLoop).
struct PipelineSpec {
  std::uint64_t count = 10;
  VirtualTime period = ticks(10);
  VirtualTime start = ticks(10);
  struct RelaySpec {
    std::uint64_t think_ticks = 5;
    RunLevel level = runlevels::kWord;
  };
  std::vector<RelaySpec> relays;
  std::vector<std::size_t> stage_host;  // size = relays.size() + 1
  std::size_t sink_host = 0;
  /// Channel batch limit applied to every subsystem (1 disables batching).
  /// Ignored by the single-host oracle — distribution must be equivalent at
  /// ANY batch size, which is exactly what the fuzzer randomizes.
  std::uint32_t batch_limit = 64;

  [[nodiscard]] std::size_t subsystem_count() const {
    return stage_host.empty() ? 1 : stage_host.back() + 1;
  }
};

struct PipelineResult {
  std::vector<std::uint64_t> received;
  std::vector<VirtualTime> times;

  friend bool operator==(const PipelineResult&,
                         const PipelineResult&) = default;
};

/// The oracle: the same pipeline in one scheduler (single-host Pia).
inline PipelineResult run_single_host_pipeline(const PipelineSpec& spec) {
  Scheduler sched;
  auto& producer =
      sched.emplace<Producer>("p", spec.count, spec.period, spec.start);
  ComponentId prev = producer.id();
  for (std::size_t i = 0; i < spec.relays.size(); ++i) {
    auto& relay = sched.emplace<LeveledRelay>("r" + std::to_string(i),
                                              spec.relays[i].think_ticks,
                                              spec.relays[i].level);
    sched.connect(prev, "out", relay.id(), "in");
    prev = relay.id();
  }
  auto& sink = sched.emplace<Sink>("s");
  sched.connect(prev, "out", sink.id(), "in");
  sched.init();
  sched.run();
  return {sink.received, sink.times};
}

/// How the kill-and-recover driver arms a cluster for crash recovery: a
/// durable SnapshotStore per subsystem under one root directory, periodic
/// Chandy–Lamport cuts initiated by subsystem 0, and heartbeat liveness on
/// every channel so the survivors detect the death instead of hanging.
struct RecoveryOptions {
  std::string store_root;                  // one subdirectory per subsystem
  std::uint64_t auto_snapshot_every = 32;  // dispatches on subsystem 0
  std::chrono::milliseconds heartbeat_interval{20};
  std::chrono::milliseconds heartbeat_timeout{500};
  std::size_t retain = 4;
  /// When set, FuzzCluster::arm_adaptive(adaptive_seed) runs on BOTH the
  /// wounded and every restarted cluster, so the seed's forced mode flip is
  /// re-requested across the restart and must defer through the rejoin
  /// handshake before it can land.
  bool adaptive = false;
  std::uint64_t adaptive_seed = 0;
};

/// The same pipeline distributed per spec.stage_host: one node per
/// subsystem, channels between adjacent subsystems (mode per channel),
/// every cut realized as a split net.
struct FuzzCluster {
  /// Kill switch for crash-recovery runs: fells one endpoint of one
  /// adjacent-pair channel once it has handled `frames` frames in both
  /// directions combined (see FaultPlan::crash_at).
  struct CrashSpec {
    std::size_t channel = 0;     // which adjacent-pair channel carries the bomb
    std::uint64_t frames = 40;   // frames before the endpoint dies
    std::uint64_t endpoint = 2;  // 1 = upstream subsystem g, 2 = downstream g+1
  };

  NodeCluster cluster;
  std::vector<Subsystem*> subsystems;
  std::vector<std::shared_ptr<SnapshotStore>> stores;
  Sink* sink = nullptr;

  /// `worker_threads` == 0: one node per subsystem, each on its own OS
  /// thread (the legacy layout).  > 0: every subsystem co-hosted on ONE
  /// node whose NodeExecutor pool has that many workers — the layout the
  /// threads equivalence arm compares against the single-threaded oracle.
  FuzzCluster(const PipelineSpec& spec,
              const std::vector<ChannelMode>& channel_modes, Wire wire,
              transport::LatencyModel latency,
              const transport::FaultPlan& fault,
              const std::vector<std::uint64_t>& checkpoint_intervals,
              const std::optional<CrashSpec>& crash = std::nullopt,
              std::size_t worker_threads = 0) {
    const std::size_t hosts = spec.subsystem_count();
    PiaNode* pooled = nullptr;
    if (worker_threads > 0) {
      pooled = &cluster.add_node("pool");
      pooled->set_worker_threads(worker_threads);
    }
    for (std::size_t g = 0; g < hosts; ++g) {
      PiaNode& node =
          pooled ? *pooled : cluster.add_node("node" + std::to_string(g));
      subsystems.push_back(&node.add_subsystem("ss" + std::to_string(g)));
      subsystems.back()->set_checkpoint_interval(
          checkpoint_intervals[g % checkpoint_intervals.size()]);
      subsystems.back()->set_channel_batch_limit(spec.batch_limit);
    }

    // Stage components and, per stage, the net its output drives.
    std::vector<ComponentId> stage_ids;
    auto& producer = subsystems[spec.stage_host[0]]->scheduler().emplace<Producer>(
        "p", spec.count, spec.period, spec.start);
    stage_ids.push_back(producer.id());
    for (std::size_t i = 0; i < spec.relays.size(); ++i) {
      auto& relay =
          subsystems[spec.stage_host[i + 1]]->scheduler().emplace<LeveledRelay>(
              "r" + std::to_string(i), spec.relays[i].think_ticks,
              spec.relays[i].level);
      stage_ids.push_back(relay.id());
    }
    sink = &subsystems[spec.sink_host]->scheduler().emplace<Sink>("s");

    // Channels between adjacent subsystems.  The crash bomb (if any) rides
    // on exactly one channel; for_endpoint() inside connect() then pins it
    // to the chosen side of that pair.
    std::vector<ChannelPair> channels;
    for (std::size_t g = 0; g + 1 < hosts; ++g) {
      transport::FaultPlan plan = fault.for_endpoint(g);
      if (crash && crash->channel == g) {
        plan.crash_at_frames = crash->frames;
        plan.crash_endpoint = crash->endpoint;
      }
      channels.push_back(cluster.connect_checked(*subsystems[g],
                                                 *subsystems[g + 1],
                                                 channel_modes[g], wire,
                                                 latency, plan));
    }

    // Forward wiring, one net per stage output.  A cut between hosts g and
    // g+1 becomes a split net on channel g.
    for (std::size_t s = 0; s + 1 < stage_ids.size(); ++s) {
      const std::size_t host_a = spec.stage_host[s];
      const std::size_t host_b = spec.stage_host[s + 1];
      Scheduler& sched_a = subsystems[host_a]->scheduler();
      const NetId net_a = sched_a.make_net("fwd" + std::to_string(s));
      sched_a.attach(net_a, stage_ids[s], "out");
      if (host_a == host_b) {
        sched_a.attach(net_a, stage_ids[s + 1], "in");
      } else {
        Scheduler& sched_b = subsystems[host_b]->scheduler();
        const NetId net_b = sched_b.make_net("fwd" + std::to_string(s));
        sched_b.attach(net_b, stage_ids[s + 1], "in");
        split_net(*subsystems[host_a], channels[host_a].a, net_a,
                  *subsystems[host_b], channels[host_a].b, net_b);
      }
    }

    // Result net: last relay -> sink, possibly hopping several channels
    // back to subsystem 0.
    const std::size_t tail_host = spec.stage_host.back();
    Scheduler& tail_sched = subsystems[tail_host]->scheduler();
    const NetId tail_net = tail_sched.make_net("result");
    tail_sched.attach(tail_net, stage_ids.back(), "out");
    if (spec.sink_host == tail_host) {
      tail_sched.attach(tail_net, sink->id(), "in");
    } else {
      // Local piece per intermediate host; each adjacent pair of pieces is
      // split across the channel between them, after all forward splits so
      // per-channel registration order matches on both sides.
      std::vector<NetId> pieces(hosts);
      pieces[tail_host] = tail_net;
      for (std::size_t g = spec.sink_host; g < tail_host; ++g)
        pieces[g] =
            subsystems[g]->scheduler().make_net("result");
      subsystems[spec.sink_host]->scheduler().attach(pieces[spec.sink_host],
                                                     sink->id(), "in");
      for (std::size_t g = spec.sink_host; g < tail_host; ++g)
        split_net(*subsystems[g], channels[g].a, pieces[g],
                  *subsystems[g + 1], channels[g].b, pieces[g + 1]);
    }
  }

  /// Attaches one durable SnapshotStore per subsystem (re-opening whatever
  /// the directories already hold), arms heartbeat liveness everywhere, and
  /// makes subsystem 0 initiate periodic global snapshots.
  void enable_recovery(const RecoveryOptions& options) {
    for (std::size_t g = 0; g < subsystems.size(); ++g) {
      auto store = std::make_shared<SnapshotStore>(
          (std::filesystem::path(options.store_root) /
           ("ss" + std::to_string(g)))
              .string(),
          options.retain);
      subsystems[g]->set_snapshot_store(store);
      subsystems[g]->set_heartbeat(options.heartbeat_interval,
                                   options.heartbeat_timeout);
      stores.push_back(std::move(store));
    }
    if (options.auto_snapshot_every > 0)
      subsystems[0]->set_auto_snapshot_interval(options.auto_snapshot_every);
  }

  /// Arms runtime mode renegotiation everywhere: an aggressive measurement
  /// policy (tiny windows, no hysteresis slack) on every subsystem plus one
  /// seed-derived FORCED flip, so every armed seed exercises at least one
  /// mid-run conservative<->optimistic handoff regardless of what the cost
  /// watcher decides.  The result must stay bit-exact: renegotiation may
  /// only move protocol cost, never events.
  void arm_adaptive(std::uint64_t seed) {
    sync::AdaptivePolicy policy;
    policy.window_slices = 8;
    policy.hysteresis = 1;
    policy.min_events = 4;
    policy.cooldown_windows = 2;
    for (Subsystem* s : subsystems) s->set_adaptive_sync(policy);
    if (subsystems.size() < 2) return;
    // splitmix64 so the choice is decorrelated from the topology seed.
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    // Channel g joins subsystems g and g+1; on the upstream side it is
    // local channel 0 for subsystem 0 and local channel 1 otherwise (its
    // channel 0 faces g-1).
    const auto pair = static_cast<std::size_t>(z % (subsystems.size() - 1));
    Subsystem& proposer = *subsystems[pair];
    const ChannelId local{pair == 0 ? std::uint32_t{0} : std::uint32_t{1}};
    const ChannelMode target =
        proposer.channel(local).mode() == ChannelMode::kConservative
            ? ChannelMode::kOptimistic
            : ChannelMode::kConservative;
    proposer.request_mode_change(local, target);
  }

  PipelineResult run(std::chrono::milliseconds stall_timeout,
                     std::map<std::string, Subsystem::RunOutcome>* outcomes =
                         nullptr) {
    cluster.start_all();
    auto results = cluster.run_all(
        Subsystem::RunConfig{.stall_timeout = stall_timeout});
    if (outcomes) *outcomes = std::move(results);
    return {sink->received, sink->times};
  }
};

/// What run_with_crash_and_recover observed, alongside the final result.
struct RecoveryReport {
  bool crash_triggered = false;     // phase 1 ended on the injected crash
  bool restored_from_disk = false;  // a common committed snapshot was used
  std::optional<std::uint64_t> token;  // the snapshot the cluster restored
  std::size_t restart_attempts = 0;    // restarts incl. unstable fallbacks
  PipelineResult result;
};

/// The kill-and-recover driver.  Phase 1 runs `spec` with a crash bomb on
/// one channel endpoint and durable snapshotting enabled.  If the bomb never
/// fired (its frame budget exceeded the run's traffic) the phase-1 result is
/// returned as-is.  Otherwise the whole cluster is torn down — the miniature
/// equivalent of the process dying — and rebuilt from scratch: fresh
/// subsystems re-open the same on-disk stores, restore the newest snapshot
/// committed and valid in EVERY store, cross-check channel sequence state
/// via the rejoin handshake, and resume from the cut.  When no common
/// snapshot was committed before the crash, the restart is a cold start from
/// virtual time zero.  In every case the returned result must equal
/// run_single_host_pipeline(spec) bit-exactly.
inline RecoveryReport run_with_crash_and_recover(
    const PipelineSpec& spec, const std::vector<ChannelMode>& modes,
    Wire wire, transport::LatencyModel latency,
    const transport::FaultPlan& fault,
    const std::vector<std::uint64_t>& checkpoint_intervals,
    const FuzzCluster::CrashSpec& crash, const RecoveryOptions& options,
    std::chrono::milliseconds stall_timeout = std::chrono::milliseconds(2000),
    std::size_t worker_threads = 0) {
  RecoveryReport report;

  {
    FuzzCluster wounded(spec, modes, wire, latency, fault,
                        checkpoint_intervals, crash, worker_threads);
    wounded.enable_recovery(options);
    if (options.adaptive) wounded.arm_adaptive(options.adaptive_seed);
    std::map<std::string, Subsystem::RunOutcome> outcomes;
    PipelineResult first = wounded.run(stall_timeout, &outcomes);
    bool all_quiescent = true;
    for (const auto& [name, outcome] : outcomes)
      all_quiescent &= outcome == Subsystem::RunOutcome::kQuiescent;
    if (all_quiescent) {  // the bomb never went off; the run completed
      report.result = std::move(first);
      return report;
    }
    report.crash_triggered = true;
  }  // wounded cluster destroyed: every "process" is now gone

  // Candidate cuts, newest first, then a cold start.  Restoring a snapshot
  // can still fail *after* the fact: an optimistic subsystem's cut may have
  // frozen state the original timeline went on to roll back (the crash beat
  // the invalidation).  Such a restore raises Error{kState} when the replay
  // regenerates the straggler, and the driver falls back to the next-older
  // common snapshot.
  std::vector<std::optional<std::uint64_t>> attempts;
  {
    std::vector<std::unique_ptr<SnapshotStore>> peek;
    std::vector<const SnapshotStore*> views;
    for (std::size_t g = 0; g < spec.subsystem_count(); ++g) {
      peek.push_back(std::make_unique<SnapshotStore>(
          (std::filesystem::path(options.store_root) /
           ("ss" + std::to_string(g)))
              .string(),
          options.retain));
      views.push_back(peek.back().get());
    }
    std::vector<std::uint64_t> candidates = views.front()->tokens();
    for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
      const std::uint64_t token = *it;
      const bool everywhere =
          std::all_of(views.begin(), views.end(),
                      [&](const SnapshotStore* s) { return s->valid(token); });
      if (everywhere) attempts.emplace_back(token);
    }
  }
  attempts.emplace_back(std::nullopt);  // cold start always succeeds

  for (const std::optional<std::uint64_t>& token : attempts) {
    // Freshly constructed subsystems, identical wiring, no bomb.
    FuzzCluster restarted(spec, modes, wire, latency, fault,
                          checkpoint_intervals, std::nullopt,
                          worker_threads);
    restarted.enable_recovery(options);  // re-opens the store directories
    // Arm BEFORE restore/rejoin: restore preserves the enabled policy and
    // any forced request, and the controller refuses to propose until every
    // rejoining channel verifies — the forced flip lands after rejoin.
    if (options.adaptive) restarted.arm_adaptive(options.adaptive_seed);
    restarted.cluster.start_all();
    ++report.restart_attempts;
    try {
      if (token) {
        for (std::size_t g = 0; g < restarted.subsystems.size(); ++g)
          restarted.subsystems[g]->restore_snapshot_image(
              restarted.stores[g]->load(*token));
        // Handshake: every endpoint cross-checks sent/received counters
        // with its peer before new event traffic can diverge silently.
        for (Subsystem* s : restarted.subsystems) s->begin_rejoin(*token);
      }
      auto outcomes = restarted.cluster.run_all(
          Subsystem::RunConfig{.stall_timeout = stall_timeout});
      for (const auto& [name, outcome] : outcomes)
        PIA_CHECK(outcome == Subsystem::RunOutcome::kQuiescent,
                  "recovered run did not quiesce: " + name);
      report.token = token;
      report.restored_from_disk = token.has_value();
      report.result = {restarted.sink->received, restarted.sink->times};
      return report;
    } catch (const Error& e) {
      if (!token) throw;  // a cold start must not fail
      // kState: unstable cut.  kSerialization: the candidate was pruned or
      // invalidated by a previous (failed) restart attempt's own run.
      if (e.kind() != ErrorKind::kState &&
          e.kind() != ErrorKind::kSerialization)
        throw;
    }
  }
  raise(ErrorKind::kState, "unreachable: cold start attempt did not return");
}

/// Reference: the same producer->relay->sink loop in a single subsystem
/// (single-host Pia); the distributed runs must match it exactly.
inline std::vector<std::uint64_t> single_host_loop_reference(
    std::uint64_t count) {
  PipelineSpec spec;
  spec.count = count;
  // detail 0 => think == base == the classic Relay's ticks(5).
  spec.relays.push_back({.think_ticks = 5, .level = runlevels::kTransaction});
  return run_single_host_pipeline(spec).received;
}

}  // namespace pia::dist::testing
