// Shared fixtures for distributed-layer tests and benches: small systems
// split across two or three subsystems.
#pragma once

#include "dist/node.hpp"
#include "helpers.hpp"

namespace pia::dist::testing {

using pia::testing::Producer;
using pia::testing::Relay;
using pia::testing::Sink;

/// Producer on subsystem A feeding a Sink on subsystem B through one split
/// net (the minimal Fig. 2 configuration).
struct SplitPipe {
  NodeCluster cluster;
  Subsystem* a = nullptr;
  Subsystem* b = nullptr;
  Producer* producer = nullptr;
  Sink* sink = nullptr;
  ChannelPair channels;

  SplitPipe(std::uint64_t count, ChannelMode mode,
            Wire wire = Wire::kLoopback,
            transport::LatencyModel latency = {},
            VirtualTime period = ticks(10)) {
    PiaNode& node_a = cluster.add_node("nodeA");
    PiaNode& node_b = cluster.add_node("nodeB");
    a = &node_a.add_subsystem("ssA");
    b = &node_b.add_subsystem("ssB");

    producer = &a->scheduler().emplace<Producer>("p", count, period);
    sink = &b->scheduler().emplace<Sink>("s");

    const NetId net_a = a->scheduler().make_net("wire");
    a->scheduler().attach(net_a, producer->id(), "out");
    const NetId net_b = b->scheduler().make_net("wire");
    b->scheduler().attach(net_b, sink->id(), "in");

    channels = cluster.connect_checked(*a, *b, mode, wire, latency);
    split_net(*a, channels.a, net_a, *b, channels.b, net_b);
  }
};

/// Round trip: producer on A -> relay on B -> sink back on A, two split
/// nets over one channel.
struct SplitLoop {
  NodeCluster cluster;
  Subsystem* a = nullptr;
  Subsystem* b = nullptr;
  Producer* producer = nullptr;
  Relay* relay = nullptr;
  Sink* sink = nullptr;
  ChannelPair channels;

  SplitLoop(std::uint64_t count, ChannelMode mode,
            Wire wire = Wire::kLoopback,
            transport::LatencyModel latency = {}) {
    PiaNode& node_a = cluster.add_node("nodeA");
    PiaNode& node_b = cluster.add_node("nodeB");
    a = &node_a.add_subsystem("ssA");
    b = &node_b.add_subsystem("ssB");

    producer = &a->scheduler().emplace<Producer>("p", count);
    sink = &a->scheduler().emplace<Sink>("s");
    relay = &b->scheduler().emplace<Relay>("r");

    const NetId fwd_a = a->scheduler().make_net("fwd");
    a->scheduler().attach(fwd_a, producer->id(), "out");
    const NetId back_a = a->scheduler().make_net("back");
    a->scheduler().attach(back_a, sink->id(), "in");

    const NetId fwd_b = b->scheduler().make_net("fwd");
    b->scheduler().attach(fwd_b, relay->id(), "in");
    const NetId back_b = b->scheduler().make_net("back");
    b->scheduler().attach(back_b, relay->id(), "out");

    channels = cluster.connect_checked(*a, *b, mode, wire, latency);
    split_net(*a, channels.a, fwd_a, *b, channels.b, fwd_b);
    split_net(*a, channels.a, back_a, *b, channels.b, back_b);
  }
};

/// Reference: the same producer->relay->sink loop in a single subsystem
/// (single-host Pia); the distributed runs must match it exactly.
inline std::vector<std::uint64_t> single_host_loop_reference(
    std::uint64_t count) {
  Scheduler sched;
  auto& producer = sched.emplace<Producer>("p", count);
  auto& relay = sched.emplace<Relay>("r");
  auto& sink = sched.emplace<Sink>("s");
  sched.connect(producer.id(), "out", relay.id(), "in");
  sched.connect(relay.id(), "out", sink.id(), "in");
  sched.init();
  sched.run();
  return sink.received;
}

}  // namespace pia::dist::testing
