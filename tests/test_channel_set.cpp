// ChannelSet::wait_any — the unified idle wait.  Covers the timeout path,
// the shared-signal wake, the decorator-clamp wake, and the acceptance
// check that wake latency on an 8-channel star does not scale with the
// channel count (the old idle path polled channels sequentially at 1 ms
// each, so traffic on the last channel paid N × 1 ms before being noticed).

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dist/channel_set.hpp"
#include "transport/latency.hpp"
#include "transport/link.hpp"

namespace pia::dist {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

milliseconds since(steady_clock::time_point start) {
  return std::chrono::ceil<milliseconds>(steady_clock::now() - start);
}

/// A star of `n` loopback channels; the far ends stay accessible so a test
/// can originate traffic toward the set.
struct Star {
  ChannelSet set;
  std::vector<transport::LinkPtr> far;

  explicit Star(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      auto pair = transport::make_loopback_pair();
      auto endpoint = std::make_unique<ChannelEndpoint>(
          "spoke" + std::to_string(i), ChannelMode::kConservative,
          std::move(pair.a), 1);
      endpoint->index = static_cast<std::uint32_t>(i);
      set.add(std::move(endpoint));
      far.push_back(std::move(pair.b));
    }
  }
};

Bytes payload() { return Bytes{std::byte{0xAB}, std::byte{0xCD}}; }

TEST(ChannelSetWait, TimesOutWhenQuiet) {
  Star star(4);
  const auto start = steady_clock::now();
  EXPECT_FALSE(star.set.wait_any(milliseconds(30)));
  EXPECT_GE(since(start), milliseconds(25));
}

TEST(ChannelSetWait, WakeLatencyIndependentOfChannelCount) {
  // Traffic lands on the LAST of 8 spokes while the set is blocked.  The
  // wake must arrive in one poll round — far below both the 1 s budget and
  // the old sequential-scan bound — regardless of which spoke fired.
  Star star(8);
  std::thread sender([&] {
    std::this_thread::sleep_for(milliseconds(20));
    star.far.back()->send(payload());
  });
  const auto start = steady_clock::now();
  const bool woke = star.set.wait_any(milliseconds(1000));
  const auto elapsed = since(start);
  sender.join();
  EXPECT_TRUE(woke);
  // Generous CI margin; typical wake is ~20 ms (the sender's delay itself).
  EXPECT_LT(elapsed, milliseconds(500));
  EXPECT_TRUE(star.set[7].link().try_recv().has_value());
}

TEST(ChannelSetWait, WakesOnPeerClose) {
  Star star(3);
  std::thread closer([&] {
    std::this_thread::sleep_for(milliseconds(20));
    star.far[1]->close();
  });
  const bool woke = star.set.wait_any(milliseconds(1000));
  closer.join();
  EXPECT_TRUE(woke);
  EXPECT_TRUE(star.set[1].link().closed());
}

TEST(ChannelSetWait, ClampsToBufferedDecoratorFrame) {
  // A latency decorator holds a received frame until its release stamp.
  // Such frames raise neither fd nor signal when they mature, so wait_any
  // must clamp its sleep to the reported next_ready_time instead of
  // sleeping out the caller's full budget.
  auto pair = transport::make_latency_pair(
      transport::LatencyModel{.base = std::chrono::microseconds(30000)});
  ChannelSet set;
  auto endpoint = std::make_unique<ChannelEndpoint>(
      "delayed", ChannelMode::kConservative, std::move(pair.a), 1);
  endpoint->index = 0;
  set.add(std::move(endpoint));

  pair.b->send(payload());
  // Pull the frame into the decorator's hold buffer; it is not yet mature.
  ASSERT_FALSE(set[0].link().try_recv().has_value());
  // The send pulsed the shared signal; a pulse consumed by a wait is an
  // immediate wake (the caller must re-inspect its queues).  Consume it
  // with a zero-budget wait — the role a slice's drain plays in the real
  // loop — so the timed wait below measures only the decorator clamp.
  set.wait_any(milliseconds(0));

  const auto start = steady_clock::now();
  const bool woke = set.wait_any(milliseconds(1000));
  const auto elapsed = since(start);
  EXPECT_TRUE(woke);
  EXPECT_GE(elapsed, milliseconds(5));   // did not return eagerly
  EXPECT_LT(elapsed, milliseconds(500)); // did not sleep the full budget

  // The matured frame is receivable now (allow a rounding grace period).
  auto got = set[0].link().try_recv();
  for (int i = 0; !got && i < 20; ++i) {
    std::this_thread::sleep_for(milliseconds(5));
    got = set[0].link().try_recv();
  }
  EXPECT_TRUE(got.has_value());
}

}  // namespace
}  // namespace pia::dist
