#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "core/checkpoint.hpp"
#include "core/scheduler.hpp"
#include "helpers.hpp"

namespace pia {
namespace {

using testing::Producer;
using testing::Relay;
using testing::Sink;

struct Pipeline {
  Scheduler sched;
  Producer* producer;
  Relay* relay;
  Sink* sink;

  explicit Pipeline(std::uint64_t count = 50) {
    producer = &sched.emplace<Producer>("p", count);
    relay = &sched.emplace<Relay>("r");
    sink = &sched.emplace<Sink>("s");
    sched.connect(producer->id(), "out", relay->id(), "in");
    sched.connect(relay->id(), "out", sink->id(), "in");
    sched.init();
  }
};

TEST(DeltaCodec, IdenticalImagesProduceTinyDelta) {
  const Bytes base = to_bytes(std::string(1000, 'a'));
  const Bytes delta_bytes = delta::encode(base, base);
  EXPECT_LT(delta_bytes.size(), 8u);
  EXPECT_EQ(delta::apply(base, delta_bytes), base);
}

TEST(DeltaCodec, SingleByteChange) {
  Bytes base = to_bytes(std::string(1000, 'a'));
  Bytes target = base;
  target[500] = std::byte{'b'};
  const Bytes d = delta::encode(base, target);
  EXPECT_LT(d.size(), 20u);
  EXPECT_EQ(delta::apply(base, d), target);
}

TEST(DeltaCodec, GrowthAndShrink) {
  const Bytes base = to_bytes("short");
  const Bytes longer = to_bytes("short plus a considerable tail");
  EXPECT_EQ(delta::apply(base, delta::encode(base, longer)), longer);
  EXPECT_EQ(delta::apply(longer, delta::encode(longer, base)), base);
}

class DeltaFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeltaFuzz, RandomPairsRoundTrip) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    Bytes base(rng.below(2048));
    for (auto& b : base) b = static_cast<std::byte>(rng.below(256));
    Bytes target = base;
    target.resize(rng.below(2048));
    for (auto& b : target)
      if (rng.chance(0.1)) b = static_cast<std::byte>(rng.below(256));
    EXPECT_EQ(delta::apply(base, delta::encode(base, target)), target);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaFuzz, ::testing::Values(11, 22, 33, 44));

TEST(CheckpointImmediate, RestoreRewindsEverything) {
  Pipeline pl;
  CheckpointManager mgr(pl.sched, CheckpointPolicy::kImmediate);

  pl.sched.run(40);  // partway
  const auto mid_received = pl.sink->received;
  const SnapshotId snap = mgr.request();
  EXPECT_TRUE(mgr.complete(snap));

  pl.sched.run();  // to completion
  EXPECT_EQ(pl.sink->received.size(), 50u);

  mgr.restore(snap);
  EXPECT_EQ(pl.sink->received, mid_received);

  // Re-execution reaches the same final state (determinism).
  pl.sched.run();
  EXPECT_EQ(pl.sink->received.size(), 50u);
  for (std::size_t i = 0; i < 50; ++i)
    EXPECT_EQ(pl.sink->received[i], i + 1);  // relay adds 1
}

TEST(CheckpointImmediate, RepeatedRestoreIsIdempotent) {
  Pipeline pl;
  CheckpointManager mgr(pl.sched, CheckpointPolicy::kImmediate);
  pl.sched.run(30);
  const SnapshotId snap = mgr.request();
  const auto expected = pl.sink->received;

  for (int round = 0; round < 3; ++round) {
    pl.sched.run();
    mgr.restore(snap);
    EXPECT_EQ(pl.sink->received, expected) << "round " << round;
  }
}

TEST(CheckpointImmediate, RestoreDropsLaterSnapshots) {
  Pipeline pl;
  CheckpointManager mgr(pl.sched, CheckpointPolicy::kImmediate);
  pl.sched.run(20);
  const SnapshotId early = mgr.request();
  pl.sched.run(20);
  const SnapshotId late = mgr.request();
  EXPECT_NE(early, late);

  mgr.restore(early);
  // `late` describes a discarded future.
  EXPECT_THROW(mgr.snapshot_time(late), Error);
  EXPECT_EQ(mgr.latest(), early);
}

TEST(CheckpointDeferred, SavesAtFirstDispatchAndRestores) {
  Pipeline pl;
  CheckpointManager mgr(pl.sched, CheckpointPolicy::kDeferred);

  pl.sched.run(40);
  const auto mid_received = pl.sink->received;
  const SnapshotId snap = mgr.request();
  EXPECT_FALSE(mgr.complete(snap));  // nothing dispatched yet

  pl.sched.run(10);  // components hit their save points as they receive
  pl.sched.run();

  mgr.restore(snap);  // finalizes any stragglers internally
  EXPECT_EQ(pl.sink->received, mid_received);

  pl.sched.run();
  EXPECT_EQ(pl.sink->received.size(), 50u);
}

TEST(CheckpointDeferred, ReExecutionIsDeterministic) {
  Pipeline pl(100);
  CheckpointManager mgr(pl.sched, CheckpointPolicy::kDeferred);
  pl.sched.run(77);
  const SnapshotId snap = mgr.request();
  pl.sched.run();
  const auto final_first = pl.sink->received;
  const auto final_times = pl.sink->times;

  mgr.restore(snap);
  pl.sched.run();
  EXPECT_EQ(pl.sink->received, final_first);
  EXPECT_EQ(pl.sink->times, final_times);
}

TEST(CheckpointDeferred, MultipleCheckpointsChain) {
  Pipeline pl(60);
  CheckpointManager mgr(pl.sched, CheckpointPolicy::kDeferred);
  std::vector<SnapshotId> snaps;
  std::vector<std::size_t> sizes;
  for (int k = 0; k < 4; ++k) {
    pl.sched.run(25);
    const SnapshotId s = mgr.request();
    mgr.finalize(s);
    snaps.push_back(s);
    sizes.push_back(pl.sink->received.size());
  }
  pl.sched.run();
  // Restore to the second checkpoint and verify its cut.
  mgr.restore(snaps[1]);
  EXPECT_EQ(pl.sink->received.size(), sizes[1]);
  pl.sched.run();
  EXPECT_EQ(pl.sink->received.size(), 60u);
}

TEST(CheckpointIncremental, DeltasAreSmallerThanFullImages) {
  Pipeline pl(200);
  CheckpointManager mgr(pl.sched, CheckpointPolicy::kImmediate);
  mgr.set_incremental(true);

  pl.sched.run(50);
  const SnapshotId first = mgr.request();
  pl.sched.run(4);  // little state change
  const SnapshotId second = mgr.request();

  EXPECT_GT(mgr.stored_bytes(first), 0u);
  // The second snapshot stores mostly deltas and must be smaller.
  EXPECT_LT(mgr.stored_bytes(second), mgr.stored_bytes(first));

  // Restoring through a delta chain still reproduces exact state.
  pl.sched.run();
  const auto final_state = pl.sink->received;
  mgr.restore(second);
  pl.sched.run();
  EXPECT_EQ(pl.sink->received, final_state);
}

TEST(CheckpointIncremental, FossilCollectionMaterializesBases) {
  Pipeline pl(200);
  CheckpointManager mgr(pl.sched, CheckpointPolicy::kImmediate);
  mgr.set_incremental(true);

  pl.sched.run(50);
  const SnapshotId a = mgr.request();
  pl.sched.run(10);
  const SnapshotId b = mgr.request();
  pl.sched.run(10);
  const SnapshotId c = mgr.request();

  mgr.discard_before(b);  // a's full images go away; b/c must survive
  EXPECT_THROW(mgr.snapshot_time(a), Error);

  pl.sched.run();
  const auto final_state = pl.sink->received;
  mgr.restore(c);
  pl.sched.run();
  EXPECT_EQ(pl.sink->received, final_state);
  mgr.restore(b);
  pl.sched.run();
  EXPECT_EQ(pl.sink->received, final_state);
}

TEST(CheckpointStats, CountsTakenAndRestored) {
  Pipeline pl;
  CheckpointManager mgr(pl.sched, CheckpointPolicy::kImmediate);
  pl.sched.run(10);
  const auto snap = mgr.request();
  pl.sched.run();
  mgr.restore(snap);
  EXPECT_EQ(mgr.stats().checkpoints_taken, 1u);
  EXPECT_EQ(mgr.stats().restores, 1u);
  EXPECT_GT(mgr.stats().full_image_bytes, 0u);
}

TEST(CheckpointErrors, UnknownSnapshotThrows) {
  Pipeline pl;
  CheckpointManager mgr(pl.sched);
  EXPECT_THROW(mgr.restore(SnapshotId{42}), Error);
  EXPECT_THROW(mgr.snapshot_time(SnapshotId{42}), Error);
  EXPECT_THROW(mgr.restore_latest(), Error);
}

TEST(CheckpointErrors, ConcurrentDeferredRequestsRejected) {
  Pipeline pl;
  CheckpointManager mgr(pl.sched, CheckpointPolicy::kDeferred);
  (void)mgr.request();
  EXPECT_THROW(mgr.request(), Error);
}

}  // namespace
}  // namespace pia
