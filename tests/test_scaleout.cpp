// Scale-out harness tests: the Zipf load shape, per-client seed streams,
// wire payload codecs, and bit-exact equivalence of the distributed
// deployments against the single-host oracle at small N.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "base/error.hpp"
#include "dist/sharding.hpp"
#include "wubbleu/scaleout.hpp"

namespace pia::wubbleu {
namespace {

using dist::ChannelMode;

// ---------------------------------------------------------------------------
// Zipf sampler
// ---------------------------------------------------------------------------

TEST(Zipf, ProbabilitiesSumToOneAndDecrease) {
  const dist::ZipfSampler zipf(64, 1.1);
  double total = 0;
  for (std::uint32_t r = 0; r < 64; ++r) {
    total += zipf.probability(r);
    if (r > 0) EXPECT_LT(zipf.probability(r), zipf.probability(r - 1));
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(zipf.probability(64), 0.0);
}

TEST(Zipf, SampleIsMonotoneAndCoversRange) {
  const dist::ZipfSampler zipf(16, 1.0);
  EXPECT_EQ(zipf.sample(0.0), 0u);
  EXPECT_EQ(zipf.sample(0.999'999'9), 15u);
  std::uint32_t last = 0;
  for (double u = 0.0; u < 1.0; u += 1e-3) {
    const std::uint32_t r = zipf.sample(u);
    EXPECT_GE(r, last);
    last = r;
  }
}

TEST(Zipf, ChiSquaredBoundOnLargeSample) {
  // 200k draws through the same counter-based SplitMix64 the load generator
  // uses.  Deterministic, so the bound is a regression check, not a flaky
  // statistical one; 110 is ~the 99.97th percentile of chi^2 with df=63.
  constexpr std::size_t kItems = 64;
  constexpr std::size_t kDraws = 200'000;
  const dist::ZipfSampler zipf(kItems, 1.1);
  std::vector<std::uint64_t> counts(kItems, 0);
  const std::uint64_t stream = dist::stream_seed(20'26, 7);
  for (std::size_t k = 0; k < kDraws; ++k) {
    const std::uint64_t raw =
        dist::mix64(stream + k * 0x9E3779B97F4A7C15ULL);
    const double u = static_cast<double>(raw >> 11) * 0x1.0p-53;
    ++counts[zipf.sample(u)];
  }
  double chi2 = 0;
  for (std::size_t r = 0; r < kItems; ++r) {
    const double expected = zipf.probability(static_cast<std::uint32_t>(r)) *
                            static_cast<double>(kDraws);
    ASSERT_GT(expected, 5.0) << "bin " << r << " too thin for chi-squared";
    const double d = static_cast<double>(counts[r]) - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 110.0) << "Zipf sample diverges from the model";
  // The headline property: rank 0 dominates, the tail is long but present.
  EXPECT_GT(counts[0], counts[kItems - 1] * 20);
  EXPECT_GT(counts[kItems - 1], 0u);
}

// ---------------------------------------------------------------------------
// Seed streams
// ---------------------------------------------------------------------------

TEST(SeedStreams, DistinctPerClientAndPerRun) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t client = 0; client < 4096; ++client)
    seen.insert(dist::stream_seed(1, client));
  EXPECT_EQ(seen.size(), 4096u);
  EXPECT_NE(dist::stream_seed(1, 0), dist::stream_seed(2, 0));
}

TEST(SeedStreams, NeighbouringStreamsAreDecorrelated) {
  // First draw of each of 1000 neighbouring client streams: the mean should
  // sit near 1/2 — shifted copies of one stream would not.
  double sum = 0;
  for (std::uint64_t client = 0; client < 1000; ++client) {
    const std::uint64_t raw = dist::mix64(dist::stream_seed(42, client));
    sum += static_cast<double>(raw >> 11) * 0x1.0p-53;
  }
  EXPECT_NEAR(sum / 1000.0, 0.5, 0.03);
}

TEST(SeedStreams, ShardOfSpreadsShortUrls) {
  std::vector<std::size_t> hits(4, 0);
  for (std::uint32_t rank = 0; rank < 400; ++rank)
    ++hits[dist::shard_of_key(page_url(rank), 4)];
  for (const std::size_t h : hits) {
    EXPECT_GT(h, 60u);
    EXPECT_LT(h, 140u);
  }
  EXPECT_EQ(dist::shard_of_key(page_url(3), 1), 0u);
}

// ---------------------------------------------------------------------------
// Wire payloads
// ---------------------------------------------------------------------------

TEST(Payloads, TaggedRequestRoundTrip) {
  const TaggedRequest tagged{.client = 917, .request = {.url = page_url(12)}};
  const TaggedRequest back = decode_tagged_request(encode_tagged_request(tagged));
  EXPECT_EQ(back.client, 917u);
  EXPECT_EQ(back.request.url, page_url(12));
}

TEST(Payloads, ResponseSummaryRoundTrip) {
  const ResponseSummary summary{.client = 3,
                                .status = 200,
                                .url = page_url(5),
                                .body_bytes = 2311,
                                .images = 2,
                                .body_hash = 0xDEADBEEFCAFEULL};
  const ResponseSummary back =
      decode_response_summary(encode_response_summary(summary));
  EXPECT_EQ(back.client, summary.client);
  EXPECT_EQ(back.status, summary.status);
  EXPECT_EQ(back.url, summary.url);
  EXPECT_EQ(back.body_bytes, summary.body_bytes);
  EXPECT_EQ(back.images, summary.images);
  EXPECT_EQ(back.body_hash, summary.body_hash);
}

// ---------------------------------------------------------------------------
// Determinism and oracle equivalence
// ---------------------------------------------------------------------------

ScaleoutSpec small_spec() {
  ScaleoutSpec spec;
  spec.clients = 6;
  spec.shards = 2;
  spec.clients_per_station = 3;
  spec.requests_per_client = 3;
  spec.catalog.pages = 16;
  spec.catalog.page_bytes = 512;
  spec.seed = 1234;
  return spec;
}

TEST(Scaleout, SingleHostRunsAreIdentical) {
  const ScaleoutSpec spec = small_spec();
  const ScaleoutResult a = run_single_host(spec);
  const ScaleoutResult b = run_single_host(spec);
  EXPECT_GT(a.total_fetches(), 0u);
  EXPECT_EQ(a.total_fetches(), 6u * 3u);
  EXPECT_TRUE(a == b);
}

TEST(Scaleout, SeedChangesTheWorkload) {
  ScaleoutSpec spec = small_spec();
  const ScaleoutResult a = run_single_host(spec);
  spec.seed = 99;
  const ScaleoutResult b = run_single_host(spec);
  EXPECT_FALSE(a == b);
}

TEST(Scaleout, IdenticalSeedAndClientGiveIdenticalFetchLog) {
  // Per-client streams: client 2's log depends only on (seed, client id,
  // catalog) — growing the fleet around it must not disturb it.
  ScaleoutSpec spec = small_spec();
  spec.shards = 1;  // one shard: fleet size cannot reroute anything
  spec.clients_per_station = 100;
  const ScaleoutResult small = run_single_host(spec);
  spec.clients = 12;
  const ScaleoutResult big = run_single_host(spec);
  // Think times and ranks are drawn per client, so the shared-seed prefix
  // clients behave identically in both fleets (service is load-independent
  // in this model).
  for (std::size_t c = 0; c < 6; ++c)
    EXPECT_EQ(small.fetches[c], big.fetches[c]) << "client " << c;
}

TEST(Scaleout, AggregatedOracleMatchesPerClientOracle) {
  // The station mux adds fan-in, not virtual time: per-client mode folds
  // the station hop into its net delays, so both topologies must produce
  // identical fetch logs.
  ScaleoutSpec spec = small_spec();
  spec.aggregated = true;
  const ScaleoutResult agg = run_single_host(spec);
  spec.aggregated = false;
  const ScaleoutResult direct = run_single_host(spec);
  EXPECT_TRUE(agg == direct);
}

void expect_matches_oracle(const ScaleoutSpec& spec) {
  const ScaleoutResult oracle = run_single_host(spec);
  ScaleoutCluster cluster(spec);
  const auto outcomes = cluster.run();
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, dist::Subsystem::RunOutcome::kQuiescent) << name;
  const ScaleoutResult got = cluster.result();
  EXPECT_TRUE(got == oracle);
  EXPECT_EQ(got.total_fetches(),
            spec.clients * spec.requests_per_client);
}

TEST(Scaleout, AggregatedClusterMatchesOracle) {
  expect_matches_oracle(small_spec());
}

TEST(Scaleout, PerClientClusterMatchesOracle) {
  ScaleoutSpec spec = small_spec();
  spec.aggregated = false;
  spec.clients = 4;
  expect_matches_oracle(spec);
}

TEST(Scaleout, PooledWorkersMatchOracle) {
  ScaleoutSpec spec = small_spec();
  spec.worker_threads = 2;
  expect_matches_oracle(spec);
}

TEST(Scaleout, OptimisticChannelsMatchOracle) {
  ScaleoutSpec spec = small_spec();
  spec.mode_cycle = {ChannelMode::kOptimistic};
  expect_matches_oracle(spec);
}

TEST(Scaleout, MixedModesMatchOracle) {
  ScaleoutSpec spec = small_spec();
  spec.mode_cycle = {ChannelMode::kConservative, ChannelMode::kOptimistic};
  spec.mode_phase = 1;
  expect_matches_oracle(spec);
}

TEST(Scaleout, StationAndShardCountersBalance) {
  const ScaleoutSpec spec = small_spec();
  ScaleoutCluster cluster(spec);
  cluster.run();
  const std::uint64_t fetches = cluster.result().total_fetches();
  std::uint64_t relayed_up = 0, relayed_down = 0, served = 0;
  std::size_t partitioned = 0;
  for (const ShardGateway* shard : cluster.shards()) {
    served += shard->served();
    partitioned += shard->partition_size();
  }
  for (const StationMux* station : cluster.station_muxes()) {
    relayed_up += station->relayed_up();
    relayed_down += station->relayed_down();
  }
  EXPECT_EQ(served, fetches);
  EXPECT_EQ(relayed_up, fetches);
  EXPECT_EQ(relayed_down, fetches);
  EXPECT_EQ(cluster.frontend().routed_requests(), fetches);
  EXPECT_EQ(cluster.frontend().routed_replies(), fetches);
  EXPECT_EQ(partitioned, spec.catalog.pages);
  // Farm tree: one channel per client, per station, per shard.
  EXPECT_EQ(cluster.channel_count(),
            spec.clients + spec.stations() + spec.shards);
}

TEST(Scaleout, PerClientChannelCountIsNPlusM) {
  // The baseline keeps one frontend channel per client: N + M channels and
  // O(N) conservative peers at the frontend — the cost aggregation removes.
  ScaleoutSpec spec = small_spec();
  spec.aggregated = false;
  spec.clients = 4;
  ScaleoutCluster cluster(spec);
  EXPECT_EQ(cluster.channel_count(), 4u + spec.shards);
}

}  // namespace
}  // namespace pia::wubbleu
