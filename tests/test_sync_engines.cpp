// Engine-isolation tests: drive the sync engines against a stub
// EngineContext — a real scheduler, checkpoint manager and channel set, but
// no Subsystem facade, no run loop, no sockets.  Each channel is one side of
// a loopback pair whose far end stays in the stub, so a test can decode
// exactly what an engine transmitted.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/scheduler.hpp"
#include "dist/channel_set.hpp"
#include "dist/sync/conservative.hpp"
#include "dist/sync/optimistic.hpp"
#include "dist/sync/snapshot.hpp"
#include "transport/link.hpp"

namespace pia::dist::sync {
namespace {

constexpr std::uint32_t kStubId = 7;

class StubContext : public EngineContext {
 public:
  StubContext() {
    scheduler_.init();
    conservative_ = std::make_unique<ConservativeEngine>(*this);
    optimistic_ = std::make_unique<OptimisticEngine>(*this);
    snapshot_ = std::make_unique<SnapshotCoordinator>(*this);
  }

  ChannelId add_channel(ChannelMode mode) {
    auto pair = transport::make_loopback_pair();
    const ChannelId id{static_cast<std::uint32_t>(channels_.size())};
    auto endpoint = std::make_unique<ChannelEndpoint>(
        "stub" + std::to_string(id.value()), mode, std::move(pair.a), kStubId);
    endpoint->index = id.value();
    channels_.add(std::move(endpoint));
    peers_.push_back(std::make_unique<ChannelEndpoint>(
        "peer" + std::to_string(id.value()), mode, std::move(pair.b), 99));
    return id;
  }

  /// Everything the engine sent on channel `i` since the last call.
  std::vector<ChannelMessage> sent_on(std::size_t i) {
    std::vector<ChannelMessage> out;
    while (auto message = peers_[i]->poll()) out.push_back(std::move(*message));
    return out;
  }

  [[nodiscard]] ConservativeEngine& conservative() { return *conservative_; }
  [[nodiscard]] OptimisticEngine& optimistic() { return *optimistic_; }
  [[nodiscard]] SnapshotCoordinator& snapshot() { return *snapshot_; }

  // Message totals reported to termination probes; tests set these to model
  // in-flight traffic.
  std::uint64_t sent_total = 0;
  std::uint64_t received_total = 0;

  // --- EngineContext -------------------------------------------------------
  Scheduler& scheduler() override { return scheduler_; }
  const Scheduler& scheduler() const override { return scheduler_; }
  CheckpointManager& checkpoints() override { return checkpoints_; }
  const CheckpointManager& checkpoints() const override {
    return checkpoints_;
  }
  ChannelSet& channels() override { return channels_; }
  const ChannelSet& channels() const override { return channels_; }
  const std::string& subsystem_name() const override { return name_; }
  std::uint32_t subsystem_id() const override { return kStubId; }
  void note_activity() override { conservative_->note_activity(); }
  void reset_termination() override { conservative_->reset_termination(); }
  std::uint64_t messages_sent_total() const override { return sent_total; }
  std::uint64_t messages_received_total() const override {
    return received_total;
  }
  void flush_unregenerated(VirtualTime upto) override {
    optimistic_->flush_unregenerated(upto);
  }
  SnapshotId take_checkpoint() override {
    return optimistic_->take_checkpoint();
  }
  void reset_checkpoint_cadence() override { optimistic_->reset_cadence(); }
  SnapshotPositions positions_of(SnapshotId snap) const override {
    return optimistic_->positions_of(snap);
  }
  void drop_positions_after(SnapshotId snap) override {
    optimistic_->drop_positions_after(snap);
  }
  void clear_positions() override { optimistic_->clear_positions(); }
  void scrub_retracted(const SnapshotPositions& positions) override {
    optimistic_->scrub_retracted(positions);
  }
  void inject_input(ChannelEndpoint& endpoint,
                    ChannelEndpoint::InputRecord& record) override {
    optimistic_->inject_input(endpoint, record);
  }
  void invalidate_snapshots_after(SnapshotId kept) override {
    snapshot_->invalidate_after(kept);
  }
  const PendingSnapshot* find_snapshot(std::uint64_t token) const override {
    return snapshot_->find(token);
  }
  std::uint64_t snapshot_next_token() const override {
    return snapshot_->next_token();
  }
  void reset_snapshots(std::uint64_t next_token) override {
    snapshot_->reset(next_token);
  }
  Bytes export_snapshot_image(std::uint64_t /*token*/) const override {
    return Bytes{};
  }
  ChannelCostSample cost_sample() const override { return {}; }
  bool mode_negotiation_hold() const override { return false; }
  bool mode_change_allowed() const override { return true; }
  std::uint64_t initiate_snapshot() override { return snapshot_->initiate(); }

 private:
  Scheduler scheduler_{"stub"};
  CheckpointManager checkpoints_{scheduler_, CheckpointPolicy::kImmediate};
  ChannelSet channels_;
  std::string name_ = "stub";
  std::vector<std::unique_ptr<ChannelEndpoint>> peers_;
  std::unique_ptr<ConservativeEngine> conservative_;
  std::unique_ptr<OptimisticEngine> optimistic_;
  std::unique_ptr<SnapshotCoordinator> snapshot_;
};

// ---------------------------------------------------------------------------
// Conservative grant math
// ---------------------------------------------------------------------------

TEST(SyncConservative, GrantAppliesSelfRestrictionRemoval) {
  StubContext ctx;
  const ChannelId a = ctx.add_channel(ChannelMode::kConservative);
  const ChannelId b = ctx.add_channel(ChannelMode::kConservative);
  ctx.channels().at(a).granted_in = ticks(5);
  ctx.channels().at(a).lookahead = ticks(3);
  ctx.channels().at(b).granted_in = ticks(50);

  // The promise to `a` ignores a's own restriction (only b's grant and the
  // empty local queue bound it) and adds a's lookahead.
  EXPECT_EQ(ctx.conservative().grant_for(a).ticks(), 53);
  // The promise to `b` IS bounded by a's grant.
  EXPECT_EQ(ctx.conservative().grant_for(b).ticks(), 5);
}

TEST(SyncConservative, GrantClampedByFirstLiveUnconfirmedOutput) {
  StubContext ctx;
  const ChannelId a = ctx.add_channel(ChannelMode::kConservative);
  const ChannelId b = ctx.add_channel(ChannelMode::kConservative);
  ctx.channels().at(b).granted_in = VirtualTime::infinity();

  // Two unconfirmed outputs to the requester; the first is retracted, so
  // only the second (t=20) bounds the promise.
  ChannelEndpoint& ea = ctx.channels().at(a);
  ea.output_log.push_back(ChannelEndpoint::OutputRecord{
      .id = SendId{kStubId, 1}, .net_index = 0, .time = ticks(10),
      .value = Value{std::uint64_t{1}}, .retracted = true});
  ea.output_log.push_back(ChannelEndpoint::OutputRecord{
      .id = SendId{kStubId, 2}, .net_index = 0, .time = ticks(20),
      .value = Value{std::uint64_t{2}}});
  ea.replay_cursor = 0;  // whole log unconfirmed

  EXPECT_EQ(ctx.conservative().grant_for(a).ticks(), 20);
  // Confirmed outputs stop bounding the promise.
  ea.replay_cursor = ea.output_log.size();
  EXPECT_TRUE(ctx.conservative().grant_for(a).is_infinite());
}

TEST(SyncConservative, EffectiveGrantGroundsOnEventsSeen) {
  StubContext ctx;
  const ChannelId a = ctx.add_channel(ChannelMode::kConservative);
  ChannelEndpoint& ea = ctx.channels().at(a);

  // The peer promised 100 having seen none of our two sends: the barrier
  // clamps to the first unseen send's time plus the peer's reaction slack.
  ea.output_log.push_back(ChannelEndpoint::OutputRecord{
      .id = SendId{kStubId, 1}, .net_index = 0, .time = ticks(30),
      .value = Value{std::uint64_t{1}}});
  ea.output_log.push_back(ChannelEndpoint::OutputRecord{
      .id = SendId{kStubId, 2}, .net_index = 0, .time = ticks(40),
      .value = Value{std::uint64_t{2}}});
  ea.event_msgs_sent = 2;
  ea.granted_in = ticks(100);
  ea.granted_in_seen = 0;
  ea.granted_in_lookahead = ticks(2);
  EXPECT_EQ(ea.effective_grant().ticks(), 32);

  // Once the peer has seen everything, the grant stands on its own.
  ea.granted_in_seen = 2;
  EXPECT_EQ(ea.effective_grant().ticks(), 100);
}

// ---------------------------------------------------------------------------
// Termination probe state machine
// ---------------------------------------------------------------------------

TEST(SyncConservative, TerminationNeedsTwoIdenticalBalancedRounds) {
  StubContext ctx;
  ctx.add_channel(ChannelMode::kConservative);
  ctx.add_channel(ChannelMode::kConservative);
  ConservativeEngine& engine = ctx.conservative();

  // Round 1: all ok, subtree sums balanced (3 sent, 3 received).  This is
  // only a *candidate* — a lone ok-round can describe a past that an
  // in-flight message is about to invalidate — so no terminate yet.
  engine.maybe_start_probe();
  auto m0 = ctx.sent_on(0);
  ASSERT_EQ(m0.size(), 1u);
  ASSERT_EQ(ctx.sent_on(1).size(), 1u);
  const ProbeMsg probe = std::get<ProbeMsg>(m0[0]);
  EXPECT_EQ(probe.origin, kStubId);
  engine.on_probe_reply(ProbeReply{.origin = probe.origin,
                                   .nonce = probe.nonce,
                                   .ok = true,
                                   .sent = 3,
                                   .received = 3});
  EXPECT_FALSE(engine.terminated());
  engine.on_probe_reply(
      ProbeReply{.origin = probe.origin, .nonce = probe.nonce, .ok = true});
  EXPECT_FALSE(engine.terminated());
  EXPECT_TRUE(ctx.sent_on(0).empty());  // no terminate flood yet

  // Round 2: the pending confirmation re-arms the probe even though the
  // activity counter has not moved; identical sums confirm.
  engine.maybe_start_probe();
  const ProbeMsg confirm = std::get<ProbeMsg>(ctx.sent_on(0).at(0));
  EXPECT_GT(confirm.nonce, probe.nonce);
  ctx.sent_on(1);
  engine.on_probe_reply(ProbeReply{.origin = confirm.origin,
                                   .nonce = confirm.nonce,
                                   .ok = true,
                                   .sent = 3,
                                   .received = 3});
  engine.on_probe_reply(
      ProbeReply{.origin = confirm.origin, .nonce = confirm.nonce, .ok = true});
  EXPECT_TRUE(engine.terminated());

  // Consensus floods TerminateMsg on every channel.
  EXPECT_TRUE(std::holds_alternative<TerminateMsg>(ctx.sent_on(0).at(0)));
  EXPECT_TRUE(std::holds_alternative<TerminateMsg>(ctx.sent_on(1).at(0)));
}

TEST(SyncConservative, InFlightMessageDefersTermination) {
  // Regression for the optimistic revival race: a subsystem replies ok,
  // then a straggler that was already in flight revives it.  The round's
  // global send/receive totals are unbalanced (1 sent, 0 received), so no
  // matter how many times the same picture repeats, the origin must not
  // terminate until the counts balance — and then only after the balanced
  // picture holds for two consecutive rounds.
  StubContext ctx;
  ctx.add_channel(ChannelMode::kConservative);
  ConservativeEngine& engine = ctx.conservative();

  const auto run_round = [&](std::uint64_t sent, std::uint64_t received) {
    engine.maybe_start_probe();
    const auto out = ctx.sent_on(0);
    ASSERT_FALSE(out.empty());
    const ProbeMsg probe = std::get<ProbeMsg>(out[0]);
    engine.on_probe_reply(ProbeReply{.origin = probe.origin,
                                     .nonce = probe.nonce,
                                     .ok = true,
                                     .sent = sent,
                                     .received = received});
  };

  run_round(1, 0);  // message in flight
  EXPECT_FALSE(engine.terminated());
  run_round(1, 0);  // identical round — still unbalanced, still no
  EXPECT_FALSE(engine.terminated());
  run_round(1, 1);  // delivered: balanced, but sums changed — candidate only
  EXPECT_FALSE(engine.terminated());
  run_round(1, 1);  // confirming twin
  EXPECT_TRUE(engine.terminated());
}

TEST(SyncConservative, FailedProbeRetriesOnlyAfterActivity) {
  StubContext ctx;
  ctx.add_channel(ChannelMode::kConservative);
  ConservativeEngine& engine = ctx.conservative();

  engine.maybe_start_probe();
  const ProbeMsg probe = std::get<ProbeMsg>(ctx.sent_on(0).at(0));
  engine.on_probe_reply(
      ProbeReply{.origin = probe.origin, .nonce = probe.nonce, .ok = false});
  EXPECT_FALSE(engine.terminated());

  // Nothing changed since the failed round: no new probe is started.
  engine.maybe_start_probe();
  EXPECT_TRUE(ctx.sent_on(0).empty());

  // Activity re-arms the probe.
  engine.note_activity();
  engine.maybe_start_probe();
  EXPECT_EQ(ctx.sent_on(0).size(), 1u);
}

TEST(SyncConservative, RelayedProbeAnswersTowardOrigin) {
  StubContext ctx;
  ctx.add_channel(ChannelMode::kConservative);
  ctx.add_channel(ChannelMode::kConservative);
  ConservativeEngine& engine = ctx.conservative();

  // A foreign probe arriving on channel 0 relays away from it only.
  engine.on_probe(ChannelId{0}, ProbeMsg{.origin = 42, .nonce = 9});
  EXPECT_TRUE(ctx.sent_on(0).empty());
  const auto relayed = ctx.sent_on(1);
  ASSERT_EQ(relayed.size(), 1u);
  EXPECT_EQ(std::get<ProbeMsg>(relayed[0]).origin, 42u);

  // Once the subtree answers, the reply travels back toward the origin.
  engine.on_probe_reply(ProbeReply{.origin = 42, .nonce = 9, .ok = true});
  const auto back = ctx.sent_on(0);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_TRUE(std::get<ProbeReply>(back[0]).ok);
}

// ---------------------------------------------------------------------------
// Snapshot mark bookkeeping
// ---------------------------------------------------------------------------

TEST(SyncSnapshot, MarkBookkeepingRecordsInFlightChannelState) {
  StubContext ctx;
  ctx.add_channel(ChannelMode::kConservative);
  ctx.add_channel(ChannelMode::kConservative);
  SnapshotCoordinator& snap = ctx.snapshot();

  const std::uint64_t token = snap.initiate();
  EXPECT_EQ(token >> 32, kStubId);
  EXPECT_FALSE(snap.complete(token));
  EXPECT_TRUE(
      std::holds_alternative<MarkMsg>(ctx.sent_on(0).at(0)));
  EXPECT_TRUE(
      std::holds_alternative<MarkMsg>(ctx.sent_on(1).at(0)));

  // An event arriving before a channel's mark belongs to the cut; one
  // arriving after it does not.
  const EventMsg in_flight{.id = SendId{99, 1}, .net_index = 0,
                           .time = ticks(4),
                           .value = Value{std::uint64_t{5}}};
  snap.on_event_received(ChannelId{0}, in_flight);
  snap.on_mark(ChannelId{0}, MarkMsg{.token = token});
  snap.on_event_received(ChannelId{0},
                         EventMsg{.id = SendId{99, 2}, .net_index = 0,
                                  .time = ticks(6),
                                  .value = Value{std::uint64_t{6}}});
  EXPECT_FALSE(snap.complete(token));
  snap.on_mark(ChannelId{1}, MarkMsg{.token = token});
  EXPECT_TRUE(snap.complete(token));

  const PendingSnapshot* pending = snap.find(token);
  ASSERT_NE(pending, nullptr);
  ASSERT_EQ(pending->recorded.size(), 2u);
  ASSERT_EQ(pending->recorded[0].size(), 1u);
  EXPECT_EQ(pending->recorded[0][0].id.counter, 1u);
  EXPECT_TRUE(pending->recorded[1].empty());
  EXPECT_EQ(snap.stats().marks_received, 2u);
}

TEST(SyncSnapshot, PeerMarkCheckpointsOnceAndRelays) {
  StubContext ctx;
  ctx.add_channel(ChannelMode::kConservative);
  ctx.add_channel(ChannelMode::kConservative);
  SnapshotCoordinator& snap = ctx.snapshot();
  const std::uint64_t before = ctx.optimistic().stats().checkpoints;

  // First sight of a peer-initiated token: checkpoint, relay marks on every
  // channel, and treat the arrival channel's state as already complete.
  snap.on_mark(ChannelId{0}, MarkMsg{.token = 77});
  EXPECT_EQ(ctx.optimistic().stats().checkpoints, before + 1);
  EXPECT_EQ(ctx.sent_on(0).size(), 1u);
  EXPECT_EQ(ctx.sent_on(1).size(), 1u);
  const PendingSnapshot* pending = snap.find(77);
  ASSERT_NE(pending, nullptr);
  EXPECT_FALSE(pending->mark_pending[0]);
  EXPECT_TRUE(pending->mark_pending[1]);

  // The second mark completes the cut without another checkpoint or relay.
  snap.on_mark(ChannelId{1}, MarkMsg{.token = 77});
  EXPECT_TRUE(snap.complete(77));
  EXPECT_EQ(ctx.optimistic().stats().checkpoints, before + 1);
  EXPECT_TRUE(ctx.sent_on(0).empty());
}

}  // namespace
}  // namespace pia::dist::sync
