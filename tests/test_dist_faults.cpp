// Distributed protocols under injected transport faults.
//
// FaultLink preserves the Link contract (FIFO, exactly-once), so every fault
// except abrupt close must leave simulated behaviour untouched — these tests
// pin that equivalence for the scenarios most likely to break it: optimistic
// rollback storms under heavy duplication+delay, Chandy–Lamport snapshots
// taken during a partition window, and the graceful wind-down when a link
// does die abruptly.
#include <gtest/gtest.h>

#include <chrono>

#include "dist_helpers.hpp"

namespace pia::dist {
namespace {

using namespace std::chrono_literals;
using testing::SplitLoop;
using testing::SplitPipe;
using testing::single_host_loop_reference;

// --- rollback storm (fossil collection under duress) -------------------------

TEST(DistFaults, OptimisticRollbackStormMatchesReference) {
  // Heavy duplication + jitter makes the optimistic side race far ahead and
  // repeatedly meet stragglers: a rollback storm.  Behaviour must still be
  // exactly the single-host run, and the rollback count must stay bounded by
  // its only legitimate causes (straggler events and retractions).
  transport::FaultPlan plan = transport::FaultPlan::duplication(97, 0.8);
  plan.delay_jitter_max = 800us;

  SplitLoop loop(30, ChannelMode::kOptimistic, Wire::kLoopback, {}, plan);
  // Checkpoint every dispatch: the densest possible rollback targets.
  loop.a->set_checkpoint_interval(1);
  loop.b->set_checkpoint_interval(1);
  loop.cluster.start_all();
  const auto outcomes =
      loop.cluster.run_all(Subsystem::RunConfig{.stall_timeout = 20'000ms});
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;

  EXPECT_EQ(loop.sink->received, single_host_loop_reference(30));

  for (Subsystem* ss : {loop.a, loop.b}) {
    const SubsystemStats& stats = ss->stats();
    EXPECT_LE(stats.rollbacks,
              stats.events_received + stats.retracts_received)
        << ss->name();
  }

  // At quiescence every message is fossil: collection must trim the logs so
  // the storm's checkpoints don't accumulate forever.
  EXPECT_EQ(loop.cluster.fossil_collect_all(), VirtualTime::infinity());
}

TEST(DistFaults, OptimisticChaosOverTcpMatchesReference) {
  SplitLoop loop(20, ChannelMode::kOptimistic, Wire::kTcp, {},
                 transport::FaultPlan::chaos(1234));
  loop.a->set_checkpoint_interval(4);
  loop.b->set_checkpoint_interval(4);
  loop.cluster.start_all();
  const auto outcomes =
      loop.cluster.run_all(Subsystem::RunConfig{.stall_timeout = 20'000ms});
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;
  EXPECT_EQ(loop.sink->received, single_host_loop_reference(20));
}

// --- snapshots during a partition window -------------------------------------

TEST(DistFaults, SnapshotDuringPartitionYieldsConsistentCut) {
  // The partition window opens immediately and holds traffic (marks
  // included) for 60ms of wall-clock time.  The snapshot must still
  // complete, and restoring it must replay the identical future — i.e. the
  // cut is consistent even though the marks crossed a partitioned link.
  const auto plan = transport::FaultPlan::partition(55, 0ms, 60ms);
  SplitPipe pipe(15, ChannelMode::kConservative, Wire::kLoopback, {},
                 ticks(10), plan);
  pipe.cluster.start_all();

  const std::uint64_t token = pipe.a->initiate_snapshot();
  auto outcomes =
      pipe.cluster.run_all(Subsystem::RunConfig{.stall_timeout = 20'000ms});
  for (const auto& [name, outcome] : outcomes)
    ASSERT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;
  ASSERT_TRUE(pipe.a->snapshot_complete(token));
  ASSERT_TRUE(pipe.b->snapshot_complete(token));

  const auto final_received = pipe.sink->received;
  const auto final_times = pipe.sink->times;
  ASSERT_EQ(final_received.size(), 15u);

  pipe.a->restore_snapshot(token);
  pipe.b->restore_snapshot(token);
  pipe.cluster.run_all(Subsystem::RunConfig{.stall_timeout = 20'000ms});
  EXPECT_EQ(pipe.sink->received, final_received);
  EXPECT_EQ(pipe.sink->times, final_times);
}

TEST(DistFaults, SnapshotUnderChaosRestoresDeterministically) {
  SplitPipe pipe(12, ChannelMode::kConservative, Wire::kLoopback, {},
                 ticks(10), transport::FaultPlan::chaos(777));
  pipe.cluster.start_all();

  const std::uint64_t token = pipe.b->initiate_snapshot();
  pipe.cluster.run_all(Subsystem::RunConfig{.stall_timeout = 20'000ms});
  ASSERT_TRUE(pipe.a->snapshot_complete(token));
  ASSERT_TRUE(pipe.b->snapshot_complete(token));

  const auto final_received = pipe.sink->received;
  ASSERT_EQ(final_received.size(), 12u);

  pipe.a->restore_snapshot(token);
  pipe.b->restore_snapshot(token);
  pipe.cluster.run_all(Subsystem::RunConfig{.stall_timeout = 20'000ms});
  EXPECT_EQ(pipe.sink->received, final_received);
}

// --- abrupt close: graceful wind-down, not an exception ----------------------

TEST(DistFaults, AbruptCloseWindsDownAsDisconnected) {
  // The producer side's link dies after a handful of sends.  Before the
  // graceful-disconnect path existed, the transport error unwound through
  // Subsystem::run mid-protocol (or the peer spun until stall_timeout);
  // now both sides must return kDisconnected promptly and without throwing.
  transport::FaultPlan plan;
  plan.seed = 9;
  plan.close_after_sends = 3;

  SplitPipe pipe(50, ChannelMode::kConservative, Wire::kLoopback, {},
                 ticks(10), plan);
  // One frame per message: sink-side endpoints grant infinite safe time up
  // front now, so the producer bursts everything in one slice and the
  // default batch limit would pack the whole run into fewer frames than
  // close_after_sends needs to trigger.
  pipe.a->set_channel_batch_limit(1);
  pipe.b->set_channel_batch_limit(1);
  pipe.cluster.start_all();

  std::map<std::string, Subsystem::RunOutcome> outcomes;
  ASSERT_NO_THROW(outcomes = pipe.cluster.run_all(
                      Subsystem::RunConfig{.stall_timeout = 5'000ms}));
  ASSERT_EQ(outcomes.size(), 2u);
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kDisconnected) << name;
}

TEST(DistFaults, AbruptCloseOverTcpWindsDownAsDisconnected) {
  transport::FaultPlan plan;
  plan.seed = 10;
  plan.close_after_sends = 2;

  SplitPipe pipe(50, ChannelMode::kConservative, Wire::kTcp, {}, ticks(10),
                 plan);
  pipe.cluster.start_all();

  std::map<std::string, Subsystem::RunOutcome> outcomes;
  ASSERT_NO_THROW(outcomes = pipe.cluster.run_all(
                      Subsystem::RunConfig{.stall_timeout = 5'000ms}));
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kDisconnected) << name;
}

TEST(DistFaults, SendAfterPeerClosedIsSilentlyDropped) {
  // Regression for the channel error path: once peer_closed is latched, a
  // further send_message must neither throw nor bump msgs_sent (the counter
  // feeds quiescence detection).
  transport::FaultPlan plan;
  plan.seed = 11;
  plan.close_after_sends = 1;

  SplitPipe pipe(50, ChannelMode::kConservative, Wire::kLoopback, {},
                 ticks(10), plan);
  pipe.cluster.start_all();
  pipe.cluster.run_all(Subsystem::RunConfig{.stall_timeout = 5'000ms});

  ChannelEndpoint& endpoint = pipe.a->channel(pipe.channels.a);
  ASSERT_TRUE(endpoint.peer_closed);
  const std::uint64_t sent_before = endpoint.msgs_sent;
  ASSERT_NO_THROW(endpoint.send_message(
      SafeTimeGrant{.safe_time = VirtualTime::infinity()}));
  EXPECT_EQ(endpoint.msgs_sent, sent_before);
}

// --- mixed-mode regressions (found by fuzz_cluster) ---------------------------

TEST(DistFaults, MixedModeGrantsGroundThroughOptimisticChannels) {
  // Minimized from `fuzz_cluster --seed=2` (modes=COC).  grant_for() used to
  // skip optimistic channels entirely, so the middle subsystems promised
  // infinity to their conservative peers before the optimistic upstream had
  // produced anything — the sink side exited "quiescent" with zero events
  // and the producer side livelocked on request/grant ping-pong.
  testing::PipelineSpec spec;
  spec.count = 10;
  spec.period = ticks(5);
  spec.start = ticks(3);
  spec.relays = {{.think_ticks = 4, .level = runlevels::kWord},
                 {.think_ticks = 2, .level = runlevels::kTransaction},
                 {.think_ticks = 3, .level = runlevels::kPacket}};
  spec.stage_host = {0, 1, 2, 3};
  spec.sink_host = 3;

  const testing::PipelineResult reference =
      testing::run_single_host_pipeline(spec);
  testing::FuzzCluster dut(
      spec,
      {ChannelMode::kConservative, ChannelMode::kOptimistic,
       ChannelMode::kConservative},
      Wire::kLoopback, {}, transport::FaultPlan::none(), {8});
  std::map<std::string, Subsystem::RunOutcome> outcomes;
  const testing::PipelineResult result = dut.run(20'000ms, &outcomes);
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;
  EXPECT_EQ(result, reference);
}

TEST(DistFaults, ConservativeLeafBesideMixedChainTerminates) {
  // Minimized from `fuzz_cluster --seed=13` (modes=OC).  The conservative
  // leaf used to exit unilaterally once its grants reached infinity and then
  // stopped answering termination probes, stranding the optimistic side of
  // the chain in a permanent stall even though every event had been
  // delivered correctly.
  testing::PipelineSpec spec;
  spec.count = 5;
  spec.period = ticks(2);
  spec.relays = {{.think_ticks = 3, .level = runlevels::kWord},
                 {.think_ticks = 1, .level = runlevels::kTransaction}};
  spec.stage_host = {0, 1, 2};
  spec.sink_host = 2;

  const testing::PipelineResult reference =
      testing::run_single_host_pipeline(spec);
  testing::FuzzCluster dut(
      spec, {ChannelMode::kOptimistic, ChannelMode::kConservative},
      Wire::kLoopback, {}, transport::FaultPlan::chaos(13), {4});
  std::map<std::string, Subsystem::RunOutcome> outcomes;
  const testing::PipelineResult result = dut.run(20'000ms, &outcomes);
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;
  EXPECT_EQ(result, reference);
}

}  // namespace
}  // namespace pia::dist
