// Thread-safety storms for the Link implementations, regression tests for
// the hardened ReadySignal / ChannelSet::wait_any, and the NodeExecutor
// worker pool.  Everything here is about concurrency: FIFO order under
// sender/receiver/stats races, close() mid-storm, EINTR resilience, and
// bit-exact pooled execution.  Run under ThreadSanitizer in CI.

#include <gtest/gtest.h>

#include <fcntl.h>
#include <poll.h>
#include <pthread.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "dist/executor.hpp"
#include "dist/node.hpp"
#include "dist_helpers.hpp"
#include "transport/link.hpp"
#include "transport/ready.hpp"
#include "transport/spsc.hpp"
#include "transport/tcp.hpp"

namespace pia::transport {
namespace {

using namespace std::chrono_literals;

Bytes frame_for(std::uint32_t i) {
  Bytes b(4);
  b[0] = std::byte(i & 0xff);
  b[1] = std::byte((i >> 8) & 0xff);
  b[2] = std::byte((i >> 16) & 0xff);
  b[3] = std::byte((i >> 24) & 0xff);
  return b;
}

std::uint32_t index_of(const Bytes& b) {
  return static_cast<std::uint32_t>(b[0]) |
         (static_cast<std::uint32_t>(b[1]) << 8) |
         (static_cast<std::uint32_t>(b[2]) << 16) |
         (static_cast<std::uint32_t>(b[3]) << 24);
}

/// One sender thread streaming `count` indexed frames, one receiver thread
/// draining them, one thread hammering stats() the whole time.  Asserts
/// FIFO delivery of every frame and a consistent final counter snapshot.
void storm(Link& tx, Link& rx, std::uint32_t count) {
  std::atomic<bool> done{false};

  std::thread stats_reader([&] {
    std::uint64_t last_sent = 0;
    while (!done.load(std::memory_order_acquire)) {
      const LinkStats s = tx.stats();
      // Monotone under concurrent sends — a torn counter would go backwards.
      EXPECT_GE(s.messages_sent, last_sent);
      last_sent = s.messages_sent;
      (void)rx.stats();
    }
  });

  std::thread sender([&] {
    for (std::uint32_t i = 0; i < count; ++i) tx.send(frame_for(i));
  });

  std::uint32_t next = 0;
  while (next < count) {
    auto got = rx.recv_for(2000ms);
    ASSERT_TRUE(got.has_value()) << "lost frame " << next;
    ASSERT_EQ(index_of(*got), next) << "FIFO violated";
    ++next;
  }

  sender.join();
  done.store(true, std::memory_order_release);
  stats_reader.join();

  const LinkStats sent = tx.stats();
  EXPECT_EQ(sent.messages_sent, count);
  EXPECT_EQ(sent.frames_sent, count);
  const LinkStats received = rx.stats();
  EXPECT_EQ(received.frames_received, count);
}

TEST(LinkStorm, LoopbackFifoUnderStatsRace) {
  LinkPair pair = make_loopback_pair();
  storm(*pair.a, *pair.b, 5000);
}

TEST(LinkStorm, SpscFifoUnderStatsRace) {
  LinkPair pair = make_spsc_pair();
  // Well above the ring capacity so the spill path runs too.
  storm(*pair.a, *pair.b, 5000);
}

TEST(LinkStorm, TcpFifoUnderStatsRace) {
  TcpListener listener(0);
  LinkPair pair = connect_tcp_pair(listener);
  storm(*pair.a, *pair.b, 2000);
}

TEST(LinkStorm, SpscSpillPreservesOrderAcrossOverflow) {
  // Fill far past the ring capacity with no receiver running, so frames
  // land in ring + spill, then drain: order must be exactly send order.
  LinkPair pair = make_spsc_pair();
  constexpr std::uint32_t kFrames = 2048;  // ring holds 256
  for (std::uint32_t i = 0; i < kFrames; ++i) pair.a->send(frame_for(i));
  for (std::uint32_t i = 0; i < kFrames; ++i) {
    auto got = pair.b->try_recv();
    ASSERT_TRUE(got.has_value()) << "frame " << i;
    EXPECT_EQ(index_of(*got), i);
  }
  EXPECT_FALSE(pair.b->try_recv().has_value());
}

TEST(LinkStorm, SpscReadableFdWakesPoll) {
  LinkPair pair = make_spsc_pair();
  const int fd = pair.b->readable_fd();
  ASSERT_GE(fd, 0);

  std::thread sender([&] {
    std::this_thread::sleep_for(50ms);
    pair.a->send(frame_for(7));
  });
  pollfd p{fd, POLLIN, 0};
  const int pr = ::poll(&p, 1, 2000);
  sender.join();
  EXPECT_EQ(pr, 1);
  auto got = pair.b->try_recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(index_of(*got), 7u);
}

/// close() racing a send storm: the sender must either complete or observe
/// Error{kTransport}; the receiver drains what was delivered and then sees
/// nullopt.  No deadlock, no crash, FIFO for whatever arrives.
void close_storm(LinkPair pair) {
  std::atomic<bool> sender_saw_close{false};
  std::thread sender([&] {
    try {
      for (std::uint32_t i = 0; i < 100000; ++i) pair.a->send(frame_for(i));
    } catch (const Error& e) {
      EXPECT_EQ(e.kind(), ErrorKind::kTransport);
      sender_saw_close.store(true, std::memory_order_release);
    }
  });

  // Take a few frames, then slam the door from the receive side.
  std::uint32_t next = 0;
  for (; next < 100; ++next) {
    auto got = pair.b->recv_for(2000ms);
    ASSERT_TRUE(got.has_value());
    ASSERT_EQ(index_of(*got), next);
  }
  pair.b->close();
  sender.join();

  // Drain whatever was in flight: still FIFO, then EOF.
  while (auto got = pair.b->try_recv()) ASSERT_EQ(index_of(*got), next++);
  EXPECT_FALSE(pair.b->try_recv().has_value());
  EXPECT_TRUE(sender_saw_close.load(std::memory_order_acquire));
}

TEST(LinkStorm, LoopbackCloseMidStorm) { close_storm(make_loopback_pair()); }

TEST(LinkStorm, SpscCloseMidStorm) { close_storm(make_spsc_pair()); }

// --- ReadySignal hardening regressions -----------------------------------

TEST(ReadySignal, DrainOnEmptyPipeReturnsQuietly) {
  ReadySignal signal;
  signal.drain();  // empty pipe: EAGAIN path, must not throw
  pollfd p{signal.fd(), POLLIN, 0};
  EXPECT_EQ(::poll(&p, 1, 0), 0);
}

TEST(ReadySignal, DrainConsumesEveryQueuedPulse) {
  ReadySignal signal;
  for (int i = 0; i < 64; ++i) signal.notify();
  pollfd p{signal.fd(), POLLIN, 0};
  EXPECT_EQ(::poll(&p, 1, 0), 1);
  signal.drain();
  EXPECT_EQ(::poll(&p, 1, 0), 0);  // no stale pulse left to busy-spin on
}

TEST(ReadySignal, ReadEndIsNonBlocking) {
  // The ctor must verify its fcntl calls; a blocking read end would hang
  // drain() forever on an empty pipe.
  ReadySignal signal;
  const int flags = ::fcntl(signal.fd(), F_GETFL);
  ASSERT_GE(flags, 0);
  EXPECT_TRUE(flags & O_NONBLOCK);
}

namespace {
void sigusr1_noop(int) {}
}  // namespace

/// Pepper a blocked recv_for with signals: poll returns EINTR, and the wait
/// must resume with the *remaining* timeout — neither returning early nor
/// restarting from scratch.
TEST(ReadySignal, RecvForSurvivesEintrStorm) {
  struct sigaction sa = {};
  sa.sa_handler = sigusr1_noop;
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, nullptr), 0);

  LinkPair pair = make_spsc_pair();
  std::optional<Bytes> got;
  const auto start = std::chrono::steady_clock::now();
  std::thread waiter([&] { got = pair.b->recv_for(400ms); });
  const pthread_t handle = waiter.native_handle();
  for (int i = 0; i < 8; ++i) {
    std::this_thread::sleep_for(25ms);
    ::pthread_kill(handle, SIGUSR1);
  }
  waiter.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_FALSE(got.has_value());
  EXPECT_GE(elapsed, 350ms);  // signals must not shorten the wait
  EXPECT_LT(elapsed, 5s);     // ...nor restart it indefinitely
}

TEST(ReadySignal, WaitAnySurvivesEintrStorm) {
  struct sigaction sa = {};
  sa.sa_handler = sigusr1_noop;
  ASSERT_EQ(::sigaction(SIGUSR1, &sa, nullptr), 0);

  // A real subsystem channel table with no traffic: wait_any must ride out
  // the interruptions and report a clean timeout.
  dist::testing::SplitPipe pipe(1, dist::ChannelMode::kConservative);
  bool woke = true;
  const auto start = std::chrono::steady_clock::now();
  std::thread waiter(
      [&] { woke = pipe.a->channel_set().wait_any(400ms); });
  const pthread_t handle = waiter.native_handle();
  for (int i = 0; i < 8; ++i) {
    std::this_thread::sleep_for(25ms);
    ::pthread_kill(handle, SIGUSR1);
  }
  waiter.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_FALSE(woke);
  EXPECT_GE(elapsed, 350ms);
  EXPECT_LT(elapsed, 5s);
}

}  // namespace
}  // namespace pia::transport

namespace pia::dist {
namespace {

using namespace std::chrono_literals;

testing::PipelineSpec executor_spec() {
  testing::PipelineSpec spec;
  spec.count = 40;
  spec.relays = {{.think_ticks = 3, .level = runlevels::kWord},
                 {.think_ticks = 5, .level = runlevels::kTransaction},
                 {.think_ticks = 2, .level = runlevels::kWord}};
  spec.stage_host = {0, 1, 2, 3};
  spec.sink_host = 0;  // multi-hop loop-back: result crosses every channel
  return spec;
}

/// The tentpole acceptance check in miniature: the pooled executor must be
/// bit-exact with the single-threaded oracle at every worker count.
TEST(NodeExecutor, BitExactWithOracleAcrossWorkerCounts) {
  const testing::PipelineSpec spec = executor_spec();
  const testing::PipelineResult oracle =
      testing::run_single_host_pipeline(spec);
  const std::vector<ChannelMode> modes{ChannelMode::kConservative,
                                       ChannelMode::kOptimistic,
                                       ChannelMode::kConservative};
  for (const std::size_t workers : {1u, 2u, 8u}) {
    testing::FuzzCluster dut(spec, modes, Wire::kLoopback, {}, {}, {16},
                             std::nullopt, workers);
    std::map<std::string, Subsystem::RunOutcome> outcomes;
    const testing::PipelineResult got = dut.run(20'000ms, &outcomes);
    EXPECT_EQ(got, oracle) << "workers=" << workers;
    for (const auto& [name, outcome] : outcomes)
      EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent)
          << name << " workers=" << workers;
  }
}

TEST(NodeExecutor, CoHostedLoopbackChannelsUpgradeToSpsc) {
  // Two subsystems on one node: connect() must substitute the lock-free
  // SPSC ring for the mutex-protected loopback pipe.
  NodeCluster cluster;
  PiaNode& node = cluster.add_node("pool");
  Subsystem& a = node.add_subsystem("a");
  Subsystem& b = node.add_subsystem("b");
  const ChannelPair chans =
      cluster.connect_checked(a, b, ChannelMode::kConservative);
  EXPECT_EQ(a.channel_set().at(chans.a).link().describe(), "spsc");

  // Split across two nodes the same call stays a loopback pipe.
  PiaNode& other = cluster.add_node("far");
  Subsystem& c = other.add_subsystem("c");
  const ChannelPair remote =
      cluster.connect_checked(a, c, ChannelMode::kConservative);
  EXPECT_EQ(a.channel_set().at(remote.a).link().describe(), "loopback");
}

TEST(NodeExecutor, RunsDirectlyAndCountsSlices) {
  const testing::PipelineSpec spec = executor_spec();
  const std::vector<ChannelMode> modes(3, ChannelMode::kConservative);
  testing::FuzzCluster dut(spec, modes, Wire::kLoopback, {}, {}, {16},
                           std::nullopt, /*worker_threads=*/2);
  dut.cluster.start_all();
  NodeExecutor executor(dut.cluster.node("pool").subsystems(), 2);
  const auto outcomes =
      executor.run(Subsystem::RunConfig{.stall_timeout = 20'000ms});
  ASSERT_EQ(outcomes.size(), 4u);
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;
  EXPECT_GT(executor.stats().slices, 0u);
  EXPECT_EQ(dut.sink->received,
            testing::run_single_host_pipeline(spec).received);
}

TEST(SchedulerConfinement, ForeignThreadStepRaisesConsistency) {
  // The executor's safety net: while one thread holds a slice (the
  // ConfinementGuard), step()/inject() from any other thread must fail
  // loudly instead of corrupting the event queue.
  Scheduler sched;
  const Scheduler::ConfinementGuard guard(sched);
  sched.step();  // owner thread: fine

  std::optional<ErrorKind> kind;
  std::thread intruder([&] {
    try {
      sched.step();
    } catch (const Error& e) {
      kind = e.kind();
    }
  });
  intruder.join();
  ASSERT_TRUE(kind.has_value());
  EXPECT_EQ(*kind, ErrorKind::kConsistency);
}

TEST(SchedulerConfinement, GuardsNestAndRelease) {
  Scheduler sched;
  {
    const Scheduler::ConfinementGuard outer(sched);
    {
      const Scheduler::ConfinementGuard inner(sched);  // same thread: fine
      sched.step();
    }
    sched.step();
  }
  // Fully released: another thread may now take a slice.
  std::optional<ErrorKind> kind;
  std::thread successor([&] {
    try {
      const Scheduler::ConfinementGuard guard(sched);
      sched.step();
    } catch (const Error& e) {
      kind = e.kind();
    }
  });
  successor.join();
  EXPECT_FALSE(kind.has_value());
}

}  // namespace
}  // namespace pia::dist
