// PiaNode id allocation and the in-process TCP channel wiring helper.

#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "dist/node.hpp"
#include "transport/tcp.hpp"

namespace pia::dist {
namespace {

TEST(PiaNode, ConcurrentConstructionHandsOutUniqueIdBlocks) {
  // Nodes are legitimately constructed from concurrent driver threads; the
  // static seed behind each node's subsystem-id block must hand every node
  // a distinct block even under contention.
  constexpr int kThreads = 16;
  constexpr int kNodesPerThread = 8;
  std::vector<std::vector<std::uint32_t>> ids(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &ids] {
      for (int n = 0; n < kNodesPerThread; ++n) {
        PiaNode node("node_t" + std::to_string(t) + "_" + std::to_string(n));
        ids[t].push_back(
            node.add_subsystem("probe").numeric_id());
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::set<std::uint32_t> unique;
  for (const auto& per_thread : ids)
    for (const std::uint32_t id : per_thread) unique.insert(id);
  EXPECT_EQ(unique.size(),
            static_cast<std::size_t>(kThreads) * kNodesPerThread);
}

TEST(ConnectTcpPair, WiresBothDirections) {
  transport::TcpListener listener(0);
  transport::LinkPair pair = transport::connect_tcp_pair(listener);
  ASSERT_NE(pair.a, nullptr);
  ASSERT_NE(pair.b, nullptr);

  const Bytes ping{std::byte{0x01}, std::byte{0x02}};
  pair.a->send(ping);
  auto got = pair.b->recv_for(std::chrono::milliseconds(1000));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, ping);

  const Bytes pong{std::byte{0x03}};
  pair.b->send(pong);
  got = pair.a->recv_for(std::chrono::milliseconds(1000));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, pong);
}

TEST(ConnectTcpPair, FailedAcceptJoinsClientAndPropagates) {
  // Regression: when accept() throws, the in-flight client attempt must be
  // joined deterministically on the error path — not left to the future's
  // destructor, which would silently block while unwinding.  The accept
  // error must propagate, bounded by the client's connect backoff, never
  // hang.
  transport::TcpListener listener(0);
  listener.close();

  const auto start = std::chrono::steady_clock::now();
  try {
    (void)transport::connect_tcp_pair(listener);
    FAIL() << "connect_tcp_pair on a closed listener must throw";
  } catch (const Error& error) {
    EXPECT_EQ(error.kind(), ErrorKind::kTransport);
    EXPECT_NE(std::string(error.what()).find("accept"), std::string::npos);
  }
  const auto elapsed = std::chrono::steady_clock::now() - start;
  // The client's connect backoff deadline is ~1 s; anything wildly beyond
  // it means the error path blocked on something it shouldn't.
  EXPECT_LT(elapsed, std::chrono::seconds(5));
}

}  // namespace
}  // namespace pia::dist
