// Determinism regression for the array-based event queue.
//
// The scheduler's dispatch order — (time, seq), seq unique — is the anchor
// for checkpoint/rollback and the distributed fuzzer's single-host oracle.
// These tests drive EventQueue through randomized storms against the data
// structure it replaced (std::multiset) and require bit-identical behaviour
// through every operation the scheduler uses: push, pop, erase_if,
// sorted_snapshot and the clear-and-rebuild path replace_queue takes.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "base/rng.hpp"
#include "core/event_queue.hpp"
#include "core/scheduler.hpp"
#include "serial/archive.hpp"

namespace pia {
namespace {

Event make_event(VirtualTime time, std::uint64_t seq) {
  Event e;
  e.time = time;
  e.seq = seq;
  e.target = ComponentId{1};
  e.kind = EventKind::kWake;
  return e;
}

VirtualTime random_time(Rng& rng) {
  // A deliberately small range so simultaneous events (seq tie-breaks) are
  // common.
  return ticks(static_cast<VirtualTime::rep>(rng.below(40)));
}

TEST(EventQueue, RandomStormMatchesMultisetOracle) {
  Rng rng(0xE4E47u);
  for (int round = 0; round < 10; ++round) {
    EventQueue queue;
    std::multiset<Event> oracle;
    std::uint64_t next_seq = 0;

    for (int op = 0; op < 3000; ++op) {
      const std::uint64_t pick = rng.below(100);
      if (pick < 55 || oracle.empty()) {
        const Event e = make_event(random_time(rng), next_seq++);
        queue.push(e);
        oracle.insert(e);
      } else if (pick < 85) {
        const Event popped = queue.pop();
        const Event expected = *oracle.begin();
        oracle.erase(oracle.begin());
        ASSERT_EQ(popped.time, expected.time);
        ASSERT_EQ(popped.seq, expected.seq);
      } else if (pick < 93) {
        // The rollback shape: drop everything after a cutoff.
        const VirtualTime cutoff = random_time(rng);
        const auto pred = [cutoff](const Event& e) {
          return e.time > cutoff;
        };
        const std::size_t removed = queue.erase_if(pred);
        std::size_t expected_removed = 0;
        for (auto it = oracle.begin(); it != oracle.end();) {
          if (pred(*it)) {
            it = oracle.erase(it);
            ++expected_removed;
          } else {
            ++it;
          }
        }
        ASSERT_EQ(removed, expected_removed);
      } else {
        // The checkpoint shape: the snapshot must equal the multiset's
        // iteration order...
        const std::vector<Event> snap = queue.sorted_snapshot();
        ASSERT_EQ(snap.size(), oracle.size());
        std::size_t i = 0;
        for (const Event& e : oracle) {
          ASSERT_EQ(snap[i].time, e.time);
          ASSERT_EQ(snap[i].seq, e.seq);
          ++i;
        }
        // ...and rebuilding from it (the replace_queue path) must not
        // perturb anything downstream.
        if (rng.chance(0.3)) {
          queue.clear();
          for (const Event& e : snap) queue.push(e);
        }
      }
      if (!oracle.empty()) {
        ASSERT_EQ(queue.top().time, oracle.begin()->time);
        ASSERT_EQ(queue.top().seq, oracle.begin()->seq);
      }
    }

    // Full drain: pop order is exactly the multiset's iteration order.
    while (!oracle.empty()) {
      const Event popped = queue.pop();
      ASSERT_EQ(popped.time, oracle.begin()->time);
      ASSERT_EQ(popped.seq, oracle.begin()->seq);
      oracle.erase(oracle.begin());
    }
    EXPECT_TRUE(queue.empty());
  }
}

TEST(EventQueue, SchedulerQueueOpsPreserveDispatchOrder) {
  Scheduler sched;
  Rng rng(0x5EEDu);
  std::vector<Event> events;
  for (std::uint64_t k = 0; k < 500; ++k)
    events.push_back(make_event(random_time(rng), k));

  sched.replace_queue(events);
  std::vector<Event> snap = sched.snapshot_queue();
  ASSERT_EQ(snap.size(), events.size());
  for (std::size_t i = 1; i < snap.size(); ++i)
    ASSERT_TRUE(snap[i - 1] < snap[i]) << "snapshot not in dispatch order";
  EXPECT_EQ(sched.next_event_time(), snap.front().time);

  const VirtualTime cutoff = ticks(20);
  sched.drop_events_after(cutoff);
  std::vector<Event> kept = sched.snapshot_queue();
  std::size_t expected_kept = 0;
  for (const Event& e : snap)
    if (e.time <= cutoff) ++expected_kept;
  ASSERT_EQ(kept.size(), expected_kept);
  for (std::size_t i = 1; i < kept.size(); ++i)
    ASSERT_TRUE(kept[i - 1] < kept[i]);

  const std::size_t removed =
      sched.erase_events_if([](const Event& e) { return e.seq % 3 == 0; });
  std::size_t expected_removed = 0;
  for (const Event& e : kept)
    if (e.seq % 3 == 0) ++expected_removed;
  EXPECT_EQ(removed, expected_removed);
  const std::vector<Event> rest = sched.snapshot_queue();
  EXPECT_EQ(rest.size(), kept.size() - expected_removed);
  if (!rest.empty()) EXPECT_EQ(sched.next_event_time(), rest.front().time);
}

// ---------------------------------------------------------------------------
// Event wire format: the compact port sentinel
// ---------------------------------------------------------------------------

TEST(EventSerialization, CompactPortSentinelRoundTrips) {
  Event wake = make_event(ticks(7), 42);  // port defaults to kNoPort
  serial::OutArchive compact;
  wake.save(compact);

  serial::InArchive in(compact.bytes());
  const Event restored = Event::load(in);
  EXPECT_EQ(restored.time, wake.time);
  EXPECT_EQ(restored.seq, wake.seq);
  EXPECT_EQ(restored.port, kNoPort);
  EXPECT_EQ(restored.kind, EventKind::kWake);

  Event deliver = make_event(ticks(9), 43);
  deliver.kind = EventKind::kDeliver;
  deliver.port = 3;
  serial::OutArchive ar2;
  deliver.save(ar2);
  serial::InArchive in2(ar2.bytes());
  EXPECT_EQ(Event::load(in2).port, 3u);

  // The sentinel is the whole point: a kWake event's port must cost one
  // byte, not the 5-byte varint the raw 0xFFFFFFFF encoding paid.
  serial::OutArchive legacy;
  serial::write(legacy, wake.time);
  legacy.put_varint(wake.seq);
  serial::write(legacy, wake.target);
  legacy.put_varint(static_cast<std::uint64_t>(kNoPort));  // old raw port
  legacy.put_varint(static_cast<std::uint64_t>(wake.kind));
  wake.value.save(legacy);
  serial::write(legacy, wake.source);
  EXPECT_EQ(compact.size() + 4, legacy.size());
}

TEST(EventSerialization, LegacyRawPortStillDecodes) {
  // Version-1 recovery images hold the raw port value; Event::load's legacy
  // shim must keep accepting them.
  Event wake = make_event(ticks(5), 9);
  serial::OutArchive legacy;
  serial::write(legacy, wake.time);
  legacy.put_varint(wake.seq);
  serial::write(legacy, wake.target);
  legacy.put_varint(static_cast<std::uint64_t>(kNoPort));
  legacy.put_varint(static_cast<std::uint64_t>(wake.kind));
  wake.value.save(legacy);
  serial::write(legacy, wake.source);

  serial::InArchive in(legacy.bytes());
  const Event restored = Event::load(in, /*legacy_port=*/true);
  EXPECT_EQ(restored.port, kNoPort);
  EXPECT_EQ(restored.seq, 9u);

  // And a legacy in-range port decodes as-is, unshifted.
  serial::OutArchive legacy2;
  serial::write(legacy2, wake.time);
  legacy2.put_varint(wake.seq);
  serial::write(legacy2, wake.target);
  legacy2.put_varint(7);
  legacy2.put_varint(static_cast<std::uint64_t>(EventKind::kDeliver));
  wake.value.save(legacy2);
  serial::write(legacy2, wake.source);
  serial::InArchive in2(legacy2.bytes());
  EXPECT_EQ(Event::load(in2, /*legacy_port=*/true).port, 7u);
}

}  // namespace
}  // namespace pia
