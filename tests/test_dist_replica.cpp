// Functional replication tests: the message-level dedup filter, the
// fan-out/dedup link group, zero-rollback failover in the scale-out
// harness, the total-loss fallback onto the snapshot ladder, and the two
// satellite fixes that ride along (load-independent heartbeat beacons,
// SnapshotStore token caching).
#include <gtest/gtest.h>

#include <chrono>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "dist/node.hpp"
#include "dist/protocol.hpp"
#include "dist/replica.hpp"
#include "dist/snapshot_store.hpp"
#include "dist_helpers.hpp"
#include "transport/fault.hpp"
#include "transport/link.hpp"
#include "wubbleu/scaleout.hpp"

namespace pia::dist {
namespace {
namespace fs = std::filesystem;

using pia::testing::Producer;
using pia::testing::Sink;
using testing::run_single_host_pipeline;

std::string fresh_dir(const std::string& name) {
  const fs::path path = fs::path(::testing::TempDir()) / name;
  fs::remove_all(path);
  fs::create_directories(path);
  return path.string();
}

ChannelMessage event(std::uint64_t counter) {
  return EventMsg{.id = {.origin = 1, .counter = counter},
                  .net_index = 0,
                  .time = ticks(static_cast<VirtualTime::rep>(counter)),
                  .value = Value{counter}};
}

ChannelMessage retract(std::uint64_t counter) {
  return RetractMsg{.id = {.origin = 1, .counter = counter},
                    .time = ticks(static_cast<VirtualTime::rep>(counter))};
}

Bytes frame_of(const ChannelMessage& message) {
  return encode_message(message);
}

Bytes batch_frame(const std::vector<ChannelMessage>& messages) {
  serial::OutArchive ar;
  ar.put_u8(kBatchFrameTag);
  ar.put_varint(messages.size());
  for (const ChannelMessage& m : messages) {
    const Bytes one = encode_message(m);
    ar.put_varint(one.size());
    ar.put_raw(one);
  }
  return std::move(ar).take();
}

std::deque<ChannelMessage> messages_of(BytesView frame) {
  std::deque<ChannelMessage> out;
  decode_frame(frame, out);
  return out;
}

// ---------------------------------------------------------------------------
// ReplicaDedup: the message-level filter
// ---------------------------------------------------------------------------

TEST(ReplicaDedup, PositionalStreamAcceptsExactlyOneCopy) {
  ReplicaDedup dedup(2);
  // Member 0 leads, member 1 trails with the identical stream.
  EXPECT_TRUE(dedup.accept(0, event(1)));
  EXPECT_TRUE(dedup.accept(0, event(2)));
  EXPECT_FALSE(dedup.accept(1, event(1)));
  EXPECT_FALSE(dedup.accept(1, event(2)));
  // Member 1 takes the lead for position 2: first copy wins, origin aside.
  EXPECT_TRUE(dedup.accept(1, event(3)));
  EXPECT_FALSE(dedup.accept(0, event(3)));
  EXPECT_EQ(dedup.sim_accepted(), 3u);
  EXPECT_EQ(dedup.sim_seen(0), 3u);
  EXPECT_EQ(dedup.sim_seen(1), 3u);
}

TEST(ReplicaDedup, DupArrivalAfterRetractionStaysDropped) {
  // The dedup edge case from the optimistic stream: member 0 sends an event
  // AND its retraction; member 1's late copy of the retracted event must
  // not resurface downstream, and neither may its copy of the retraction.
  ReplicaDedup dedup(2);
  EXPECT_TRUE(dedup.accept(0, event(7)));
  EXPECT_TRUE(dedup.accept(0, retract(7)));
  EXPECT_FALSE(dedup.accept(1, event(7)));    // after the retraction
  EXPECT_FALSE(dedup.accept(1, retract(7)));  // dup of the retraction
  // Both cursors caught up: the next fresh message is accepted from either.
  EXPECT_TRUE(dedup.accept(1, event(8)));
  EXPECT_FALSE(dedup.accept(0, event(8)));
}

TEST(ReplicaDedup, ProbeAndReplyNonceDedupIsPerOriginAndSeparate) {
  ReplicaDedup dedup(2);
  const auto probe = [](std::uint64_t origin, std::uint64_t nonce) {
    return ChannelMessage{ProbeMsg{.origin = origin, .nonce = nonce}};
  };
  const auto reply = [](std::uint64_t origin, std::uint64_t nonce) {
    return ChannelMessage{ProbeReply{.origin = origin, .nonce = nonce}};
  };
  EXPECT_TRUE(dedup.accept(0, probe(7, 1)));
  EXPECT_FALSE(dedup.accept(1, probe(7, 1)));  // sibling's copy
  EXPECT_TRUE(dedup.accept(1, probe(7, 2)));   // next round
  EXPECT_FALSE(dedup.accept(0, probe(7, 2)));
  EXPECT_TRUE(dedup.accept(0, probe(9, 1)));  // distinct origin
  // Replies dedup through their own map: a reply for nonce 1 is fresh even
  // though probe nonce 2 was already seen (a dup reply would double-count
  // Safra sums).
  EXPECT_TRUE(dedup.accept(0, reply(7, 1)));
  EXPECT_FALSE(dedup.accept(1, reply(7, 1)));
  EXPECT_TRUE(dedup.accept(1, reply(7, 2)));
}

TEST(ReplicaDedup, GrantsAndHeartbeatsPassThrough) {
  // Grants are idempotent/last-wins and heartbeats are liveness signal:
  // every member's copy is delivered, none counted as a duplicate.
  ReplicaDedup dedup(2);
  const ChannelMessage grant =
      SafeTimeGrant{.request_id = 1, .safe_time = ticks(50)};
  EXPECT_TRUE(dedup.accept(0, grant));
  EXPECT_TRUE(dedup.accept(1, grant));
  const ChannelMessage beat = HeartbeatMsg{.seq = 3};
  EXPECT_TRUE(dedup.accept(0, beat));
  EXPECT_TRUE(dedup.accept(1, beat));
  EXPECT_EQ(dedup.sim_accepted(), 0u);  // none of these are sim-stream
}

TEST(ReplicaDedup, RebaseMemberResumesAtAcceptedPosition) {
  ReplicaDedup dedup(2);
  EXPECT_TRUE(dedup.accept(0, event(1)));
  EXPECT_TRUE(dedup.accept(0, event(2)));
  // A respawned clone on slot 1, primed to the accepted state, resumes at
  // the accepted position instead of replaying from zero.
  dedup.rebase_member(1);
  EXPECT_EQ(dedup.sim_seen(1), 2u);
  EXPECT_TRUE(dedup.accept(1, event(3)));
  EXPECT_FALSE(dedup.accept(0, event(3)));
}

// ---------------------------------------------------------------------------
// ReplicaLinkGroup: the fan-out/dedup link facade
// ---------------------------------------------------------------------------

/// A group with `members` loopback sub-links; the member ends are wrapped
/// in ReplicaTagLink exactly as ReplicaSet::connect wires them.
struct GroupRig {
  ReplicaLinkGroup group{"rig"};
  std::vector<std::unique_ptr<ReplicaTagLink>> members;
  std::vector<transport::Link*> member_raw;  // untagged view of member ends

  explicit GroupRig(std::size_t count) {
    for (std::size_t k = 0; k < count; ++k) {
      transport::LinkPair pair = transport::make_loopback_pair();
      member_raw.push_back(pair.b.get());
      members.push_back(std::make_unique<ReplicaTagLink>(
          std::move(pair.b), static_cast<std::uint32_t>(k), 1));
      group.add_member(std::move(pair.a));
    }
  }
};

TEST(ReplicaLinkGroup, FanOutDuplicatesFramesToEveryLiveMember) {
  GroupRig rig(3);
  const Bytes frame = frame_of(event(1));
  rig.group.send(frame, 1);
  for (std::size_t k = 0; k < 3; ++k) {
    const auto got = rig.member_raw[k]->try_recv();
    ASSERT_TRUE(got.has_value()) << "member " << k;
    EXPECT_EQ(*got, frame) << "member " << k;  // untagged on the way down
  }
  EXPECT_EQ(rig.group.group_stats().frames_fanned_out, 3u);
}

TEST(ReplicaLinkGroup, DedupCollapsesMembersToOneLogicalStream) {
  GroupRig rig(2);
  rig.members[0]->send(frame_of(event(1)), 1);
  rig.members[1]->send(frame_of(event(1)), 1);
  rig.members[0]->send(frame_of(event(2)), 1);
  rig.members[1]->send(frame_of(event(2)), 1);

  std::vector<std::uint64_t> delivered;
  while (const auto frame = rig.group.try_recv())
    for (const ChannelMessage& m : messages_of(*frame))
      delivered.push_back(std::get<EventMsg>(m).id.counter);
  EXPECT_EQ(delivered, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(rig.group.group_stats().duplicates_dropped, 2u);
  EXPECT_EQ(rig.group.group_stats().messages_accepted, 2u);
}

TEST(ReplicaLinkGroup, MemberDeathMidBatchFramePromotesSurvivor) {
  GroupRig rig(2);
  // Member 0 delivers a two-message batch, then dies before the third.
  rig.members[0]->send(batch_frame({event(1), event(2)}), 2);
  auto first = rig.group.try_recv();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(messages_of(*first).size(), 2u);
  rig.members[0]->close();

  // The trailing clone re-sends the same batch (all duplicates) and then
  // the third message only it lived long enough to produce.
  rig.members[1]->send(batch_frame({event(1), event(2)}), 2);
  rig.members[1]->send(frame_of(event(3)), 1);
  auto next = rig.group.try_recv();
  ASSERT_TRUE(next.has_value());
  const auto tail = messages_of(*next);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(std::get<EventMsg>(tail.front()).id.counter, 3u);

  EXPECT_EQ(rig.group.live_count(), 1u);
  EXPECT_EQ(rig.group.group_stats().members_dropped, 1u);
  EXPECT_EQ(rig.group.group_stats().promotions, 1u);
  EXPECT_EQ(rig.group.group_stats().duplicates_dropped, 2u);
  EXPECT_FALSE(rig.group.closed());
}

TEST(ReplicaLinkGroup, StaleEpochFramesDroppedAfterReattach) {
  GroupRig rig(2);
  rig.members[0]->send(frame_of(event(1)), 1);
  rig.members[1]->send(frame_of(event(1)), 1);
  ASSERT_TRUE(rig.group.try_recv().has_value());

  // Slot 1 dies and is re-attached with a bumped epoch.
  rig.members[1]->close();
  while (rig.group.try_recv().has_value()) {
  }
  EXPECT_FALSE(rig.group.member_live(1));
  transport::LinkPair fresh = transport::make_loopback_pair();
  transport::Link* wire = fresh.b.get();  // the revived clone's end
  rig.group.reattach_member(1, std::move(fresh.a));
  EXPECT_EQ(rig.group.member_epoch(1), 2u);
  EXPECT_TRUE(rig.group.member_live(1));

  // A straggler from the dead clone's epoch writing into the reused slot
  // must die at the epoch guard, not reach the dedup filter.
  serial::OutArchive stale;
  encode_replica_frame(stale, 1, 1, frame_of(event(2)));
  wire->send(stale.bytes(), 1);
  EXPECT_FALSE(rig.group.try_recv().has_value());
  EXPECT_EQ(rig.group.group_stats().stale_epoch_frames, 1u);

  // The revived clone's own (epoch 2) frames flow, resuming at the
  // re-based stream position.
  serial::OutArchive current;
  encode_replica_frame(current, 1, 2, frame_of(event(2)));
  wire->send(current.bytes(), 1);
  const auto got = rig.group.try_recv();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(std::get<EventMsg>(messages_of(*got).front()).id.counter, 2u);
}

TEST(ReplicaLinkGroup, AllMembersDeadClosesTheGroup) {
  GroupRig rig(2);
  rig.members[0]->close();
  rig.members[1]->close();
  EXPECT_FALSE(rig.group.try_recv().has_value());
  EXPECT_TRUE(rig.group.closed());
  EXPECT_EQ(rig.group.group_stats().members_dropped, 2u);
  EXPECT_EQ(rig.group.group_stats().promotions, 1u);  // only the first drop
  EXPECT_THROW(rig.group.send(frame_of(event(1)), 1), Error);
}

// ---------------------------------------------------------------------------
// ReplicaSet in the scale-out harness: the flagship failover scenario
// ---------------------------------------------------------------------------

wubbleu::ScaleoutSpec replica_spec(std::size_t replicas) {
  wubbleu::ScaleoutSpec spec;
  spec.clients = 6;
  spec.shards = 2;
  spec.clients_per_station = 3;
  spec.requests_per_client = 3;
  spec.catalog.pages = 16;
  spec.catalog.page_bytes = 512;
  spec.seed = 1234;
  spec.shard_replicas = replicas;
  return spec;
}

TEST(ScaleoutReplica, ReplicatedShardsMatchUnreplicatedOracle) {
  wubbleu::ScaleoutSpec spec = replica_spec(2);
  wubbleu::ScaleoutSpec plain = spec;
  plain.shard_replicas = 1;
  const wubbleu::ScaleoutResult oracle = run_single_host(plain);

  wubbleu::ScaleoutCluster cluster(spec);
  const auto outcomes = cluster.run();
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;
  EXPECT_TRUE(cluster.result() == oracle);
  // Replication does not widen the topology: one logical channel per shard.
  EXPECT_EQ(cluster.channel_count(),
            spec.clients + spec.stations() + spec.shards);
  EXPECT_EQ(cluster.replica_set_count(), spec.shards);
  for (std::uint32_t m = 0; m < spec.shards; ++m)
    EXPECT_EQ(cluster.replica_set(m).live_members(), 2u);
}

TEST(ScaleoutReplica, SeededKillPromotesSurvivorWithZeroRollback) {
  wubbleu::ScaleoutSpec spec = replica_spec(2);
  spec.replica_kill = {.shard = 0, .member = 1, .frames = 25, .seed = 7};
  wubbleu::ScaleoutSpec plain = spec;
  plain.shard_replicas = 1;
  plain.replica_kill.frames = 0;
  const wubbleu::ScaleoutResult oracle = run_single_host(plain);

  wubbleu::ScaleoutCluster cluster(spec);
  const auto outcomes = cluster.run();
  for (const auto& [name, outcome] : outcomes) {
    if (name == "shard0r1")
      EXPECT_EQ(outcome, Subsystem::RunOutcome::kDisconnected) << name;
    else
      EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;
  }
  // Bit-exact against the unreplicated, unkilled single-host oracle: the
  // survivor resumed the logical stream with zero rollback.
  EXPECT_TRUE(cluster.result() == oracle);

  const ReplicaGroupStats& stats =
      cluster.replica_set(0).group().group_stats();
  EXPECT_EQ(stats.members_dropped, 1u);
  EXPECT_EQ(stats.promotions, 1u);
  EXPECT_EQ(cluster.replica_set(0).live_members(), 1u);
  EXPECT_EQ(cluster.replica_set(1).live_members(), 2u);
  // No rollback/retraction anywhere: failover is promotion, not replay.
  EXPECT_EQ(cluster.total_stats().rollbacks, 0u);
  EXPECT_EQ(cluster.total_stats().retracts_sent, 0u);
}

TEST(ScaleoutReplica, TripleReplicaSurvivesKill) {
  wubbleu::ScaleoutSpec spec = replica_spec(3);
  spec.replica_kill = {.shard = 1, .member = 0, .frames = 30, .seed = 11};
  wubbleu::ScaleoutSpec plain = spec;
  plain.shard_replicas = 1;
  plain.replica_kill.frames = 0;
  const wubbleu::ScaleoutResult oracle = run_single_host(plain);

  wubbleu::ScaleoutCluster cluster(spec);
  const auto outcomes = cluster.run();
  for (const auto& [name, outcome] : outcomes) {
    if (name == "shard1r0")
      EXPECT_EQ(outcome, Subsystem::RunOutcome::kDisconnected) << name;
    else
      EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;
  }
  EXPECT_TRUE(cluster.result() == oracle);
  EXPECT_EQ(cluster.replica_set(1).live_members(), 2u);
  EXPECT_EQ(cluster.replica_set(1).group().group_stats().promotions, 1u);
}

TEST(ScaleoutReplica, SelfTuningRetunesDownWhenLinksAreClean) {
  wubbleu::ScaleoutSpec spec = replica_spec(3);
  wubbleu::ScaleoutCluster cluster(spec);
  ReplicaSet& set = cluster.replica_set(0);

  EXPECT_THROW(set.set_target_availability(1.0), Error);
  set.set_target_availability(0.999);
  EXPECT_DOUBLE_EQ(set.target_availability(), 0.999);
  // Clean links: the observed fault rate is zero, one replica suffices.
  EXPECT_EQ(set.desired_replicas(), 1u);
  set.retune();
  EXPECT_EQ(set.live_members(), 1u);

  // The retuned cluster still serves the full workload bit-exactly.
  wubbleu::ScaleoutSpec plain = spec;
  plain.shard_replicas = 1;
  const wubbleu::ScaleoutResult oracle = run_single_host(plain);
  cluster.run();
  EXPECT_TRUE(cluster.result() == oracle);
}

// ---------------------------------------------------------------------------
// Total replica loss: fall back onto the PR 3 snapshot ladder
// ---------------------------------------------------------------------------

/// Producer on `src` feeding identical Sink clones in a two-member
/// ReplicaSet — the minimal replicated pipe, with optional per-member
/// crash bombs and a durable SnapshotStore per subsystem.
struct ReplicatedPipe {
  NodeCluster cluster;
  Subsystem* src = nullptr;
  std::vector<Subsystem*> members;
  Producer* producer = nullptr;
  std::vector<Sink*> sinks;
  ReplicaSet set{"dup"};
  ReplicaSet::Channel channel;
  std::vector<std::shared_ptr<SnapshotStore>> stores;

  ReplicatedPipe(std::uint64_t count,
                 std::vector<transport::FaultPlan> member_faults,
                 const std::string& store_root) {
    PiaNode& src_node = cluster.add_node("srcnode");
    src = &src_node.add_subsystem("src");
    // Small batches: the event stream must span enough frames for the
    // frame-counted crash bombs to land mid-stream, not at the tail.
    src->set_channel_batch_limit(8);
    producer = &src->scheduler().emplace<Producer>("p", count);
    const NetId net_src = src->scheduler().make_net("wire");
    src->scheduler().attach(net_src, producer->id(), "out");

    NetId net_member{};
    for (std::size_t k = 0; k < 2; ++k) {
      PiaNode& node = cluster.add_node("mnode" + std::to_string(k));
      Subsystem& ss = node.add_subsystem("m" + std::to_string(k));
      sinks.push_back(&ss.scheduler().emplace<Sink>("s"));
      net_member = ss.scheduler().make_net("wire");
      ss.scheduler().attach(net_member, sinks.back()->id(), "in");
      members.push_back(&ss);
      set.add_member(ss);
    }

    channel = connect_replicated_checked(cluster, *src, set,
                                         ChannelMode::kConservative,
                                         Wire::kLoopback, {},
                                         std::move(member_faults));
    set.export_net(*src, channel, net_src, net_member);

    std::size_t g = 0;
    for (Subsystem* ss : {src, members[0], members[1]}) {
      stores.push_back(std::make_shared<SnapshotStore>(
          (fs::path(store_root) / ("ss" + std::to_string(g++))).string(),
          4));
      ss->set_snapshot_store(stores.back());
    }
    src->set_auto_snapshot_interval(4);
    cluster.start_all();
  }
};

TEST(ScaleoutReplica, TotalReplicaLossFallsBackToSnapshotLadder) {
  constexpr std::uint64_t kCount = 80;
  const std::string root = fresh_dir("pia_replica_total_loss");
  testing::PipelineSpec reference_spec;
  reference_spec.count = kCount;
  const testing::PipelineResult reference =
      run_single_host_pipeline(reference_spec);

  // Phase 1: both members carry crash bombs.  The first death promotes the
  // survivor (no rollback); the second closes the group and disconnects
  // the peer — functional replication is out of spares.
  {
    // Frame thresholds, not event counts: batching packs the whole 80-event
    // stream into ~15 frames per sub-link, so the bombs sit at 6 and 12 to
    // land mid-stream — first death promotes, second exhausts the set.
    std::vector<transport::FaultPlan> bombs(2);
    bombs[0] = transport::FaultPlan::crash_at(21, 6, 2);
    bombs[1] = transport::FaultPlan::crash_at(22, 12, 2);
    ReplicatedPipe pipe(kCount, std::move(bombs), root);
    const auto outcomes = pipe.cluster.run_all(
        Subsystem::RunConfig{.stall_timeout = std::chrono::seconds(5)});
    EXPECT_EQ(outcomes.at("src"), Subsystem::RunOutcome::kDisconnected);
    const ReplicaGroupStats& stats = pipe.set.group().group_stats();
    EXPECT_EQ(stats.members_dropped, 2u);
    EXPECT_EQ(stats.promotions, 1u);
    EXPECT_TRUE(pipe.set.group().closed());
  }  // every "process" of the wounded system is gone

  // Phase 2: the PR 3 ladder.  Restart UNREPLICATED from the newest cut
  // committed and valid in both surviving stores (src + member 0 — the
  // clones' images are interchangeable), walking down to a cold start.
  std::vector<std::optional<std::uint64_t>> attempts;
  {
    const SnapshotStore peek_src((fs::path(root) / "ss0").string(), 4);
    const SnapshotStore peek_m0((fs::path(root) / "ss1").string(), 4);
    const auto common = SnapshotStore::latest_common_valid_token(
        {&peek_src, &peek_m0});
    if (common) attempts.emplace_back(*common);
  }
  attempts.emplace_back(std::nullopt);  // cold start always succeeds

  bool recovered = false;
  for (const std::optional<std::uint64_t>& token : attempts) {
    NodeCluster cluster;
    Subsystem& src = cluster.add_node("srcnode").add_subsystem("src");
    Subsystem& dst = cluster.add_node("mnode0").add_subsystem("m0");
    auto& producer = src.scheduler().emplace<Producer>("p", kCount);
    auto& sink = dst.scheduler().emplace<Sink>("s");
    const NetId net_a = src.scheduler().make_net("wire");
    src.scheduler().attach(net_a, producer.id(), "out");
    const NetId net_b = dst.scheduler().make_net("wire");
    dst.scheduler().attach(net_b, sink.id(), "in");
    const ChannelPair pair =
        cluster.connect_checked(src, dst, ChannelMode::kConservative);
    split_net(src, pair.a, net_a, dst, pair.b, net_b);
    auto store_src =
        std::make_shared<SnapshotStore>((fs::path(root) / "ss0").string(), 4);
    auto store_dst =
        std::make_shared<SnapshotStore>((fs::path(root) / "ss1").string(), 4);
    src.set_snapshot_store(store_src);
    dst.set_snapshot_store(store_dst);
    cluster.start_all();
    try {
      if (token) {
        src.restore_snapshot_image(store_src->load(*token));
        dst.restore_snapshot_image(store_dst->load(*token));
        src.begin_rejoin(*token);
        dst.begin_rejoin(*token);
      }
      const auto outcomes = cluster.run_all(
          Subsystem::RunConfig{.stall_timeout = std::chrono::seconds(5)});
      for (const auto& [name, outcome] : outcomes)
        ASSERT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;
      const testing::PipelineResult result{sink.received, sink.times};
      EXPECT_TRUE(result == reference);
      recovered = true;
      break;
    } catch (const Error& e) {
      if (!token) throw;  // a cold start must not fail
      if (e.kind() != ErrorKind::kState &&
          e.kind() != ErrorKind::kSerialization)
        throw;
    }
  }
  EXPECT_TRUE(recovered);
}

// ---------------------------------------------------------------------------
// Satellite: heartbeat beacons stay load-independent (no false positives)
// ---------------------------------------------------------------------------

/// A sink that burns real wall-clock time per event — the workload shape
/// that used to starve heartbeat beacons behind a long advance burst.
class SlowSink : public Component {
 public:
  explicit SlowSink(std::string name, std::chrono::microseconds chew)
      : Component(std::move(name)), chew_(chew) {
    in_ = add_input("in");
  }

  void on_receive(PortIndex, const Value& value) override {
    std::this_thread::sleep_for(chew_);
    received.push_back(value.as_word());
  }

  std::vector<std::uint64_t> received;

 private:
  std::chrono::microseconds chew_;
  PortIndex in_;
};

std::map<std::string, Subsystem::RunOutcome> run_slow_sink_pipe(
    std::size_t worker_threads, std::uint64_t count,
    std::chrono::microseconds chew, std::chrono::milliseconds timeout,
    std::uint64_t* delivered) {
  NodeCluster cluster;
  PiaNode* pooled = nullptr;
  if (worker_threads > 0) {
    pooled = &cluster.add_node("pool");
    pooled->set_worker_threads(worker_threads);
  }
  Subsystem& a = (pooled ? *pooled : cluster.add_node("na"))
                     .add_subsystem("src");
  Subsystem& b = (pooled ? *pooled : cluster.add_node("nb"))
                     .add_subsystem("dst");
  auto& producer = a.scheduler().emplace<Producer>("p", count, ticks(1),
                                                   ticks(1));
  auto& sink = b.scheduler().emplace<SlowSink>("s", chew);
  const NetId net_a = a.scheduler().make_net("wire");
  a.scheduler().attach(net_a, producer.id(), "out");
  const NetId net_b = b.scheduler().make_net("wire");
  b.scheduler().attach(net_b, sink.id(), "in");
  const ChannelPair pair =
      cluster.connect_checked(a, b, ChannelMode::kConservative);
  split_net(a, pair.a, net_a, b, pair.b, net_b);
  a.set_heartbeat(std::chrono::milliseconds(10), timeout);
  b.set_heartbeat(std::chrono::milliseconds(10), timeout);
  cluster.start_all();
  auto outcomes = cluster.run_all(
      Subsystem::RunConfig{.stall_timeout = std::chrono::seconds(20)});
  *delivered = sink.received.size();
  EXPECT_EQ(a.recovery_stats().peer_down_events, 0u);
  EXPECT_EQ(b.recovery_stats().peer_down_events, 0u);
  EXPECT_GT(a.recovery_stats().heartbeats_sent, 0u);
  EXPECT_GT(b.recovery_stats().heartbeats_sent, 0u);
  return outcomes;
}

TEST(HeartbeatLoad, BusyPeerIsNotDeclaredDead) {
  // 2ms of wall time per event: a full 256-dispatch advance burst takes
  // ~500ms, twice the 250ms liveness timeout.  Beacons serviced from
  // INSIDE the burst (every 32 dispatches) keep the silence gap an order
  // of magnitude under the timeout; slice-boundary-only beacons would be
  // declared dead here.
  std::uint64_t delivered = 0;
  const auto outcomes =
      run_slow_sink_pipe(0, 400, std::chrono::microseconds(2000),
                         std::chrono::milliseconds(250), &delivered);
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;
  EXPECT_EQ(delivered, 400u);
}

TEST(HeartbeatLoad, SingleWorkerPoolIsNotDeclaredDead) {
  // The pooled regression: both subsystems share ONE worker thread, so a
  // peer is silent for every slice it spends descheduled on top of its own
  // burst time.  Liveness must tolerate the full scheduling gap.
  std::uint64_t delivered = 0;
  const auto outcomes =
      run_slow_sink_pipe(1, 300, std::chrono::microseconds(500),
                         std::chrono::milliseconds(1000), &delivered);
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;
  EXPECT_EQ(delivered, 300u);
}

// ---------------------------------------------------------------------------
// Satellite: SnapshotStore token cache
// ---------------------------------------------------------------------------

TEST(SnapshotStoreCache, TokensStayCoherentAcrossCommitAndRemove) {
  const std::string dir = fresh_dir("pia_store_cache");
  SnapshotStore store(dir, 0);
  EXPECT_TRUE(store.tokens().empty());  // primes the cache on an empty dir
  const Bytes payload{std::byte{1}, std::byte{2}};
  store.commit(5, payload);
  store.commit(1, payload);
  store.commit(9, payload);
  EXPECT_EQ(store.tokens(), (std::vector<std::uint64_t>{1, 5, 9}));
  store.remove(5);
  EXPECT_EQ(store.tokens(), (std::vector<std::uint64_t>{1, 9}));
  // A second store over the same directory scans fresh state: the cached
  // view must agree with the on-disk truth.
  SnapshotStore fresh(dir, 0);
  EXPECT_EQ(fresh.tokens(), store.tokens());
}

TEST(SnapshotStoreCache, RetentionPrunesOldestKeepsNewest) {
  const std::string dir = fresh_dir("pia_store_retention");
  SnapshotStore store(dir, 3);
  const Bytes payload{std::byte{7}};
  for (std::uint64_t t = 1; t <= 6; ++t) store.commit(t, payload);
  EXPECT_EQ(store.tokens(), (std::vector<std::uint64_t>{4, 5, 6}));
  EXPECT_EQ(store.stats().pruned, 3u);
  for (const std::uint64_t t : store.tokens()) EXPECT_TRUE(store.valid(t));
}

TEST(SnapshotStoreCache, RetentionNeverDeletesNewestCommonValidCut) {
  // Two stores advancing at different rates (one crashed before the last
  // cut committed): retention on the leader must never prune the newest
  // cut still valid in BOTH stores while it is within the retain window.
  const std::string root = fresh_dir("pia_store_common");
  SnapshotStore leader((fs::path(root) / "a").string(), 2);
  SnapshotStore laggard((fs::path(root) / "b").string(), 2);
  const Bytes payload{std::byte{3}};
  leader.commit(1, payload);
  laggard.commit(1, payload);
  leader.commit(2, payload);
  laggard.commit(2, payload);
  leader.commit(3, payload);  // the laggard never saw cut 3
  const auto common =
      SnapshotStore::latest_common_valid_token({&leader, &laggard});
  ASSERT_TRUE(common.has_value());
  EXPECT_EQ(*common, 2u);
  EXPECT_TRUE(leader.valid(2));
  EXPECT_TRUE(laggard.valid(2));
}

/// The minimal one-way replicated pipe must terminate through the probe
/// protocol: replica members never originate probes, so the peer's failed
/// first round (members still busy) has to be re-opened by the members'
/// idle status pushes.  This wedged before note_peer_status_changed().
TEST(ScaleoutReplica, OneWayReplicatedPipeTerminates) {
  NodeCluster cluster;
  Subsystem& src = cluster.add_node("srcnode").add_subsystem("src");
  auto& producer = src.scheduler().emplace<Producer>("p", 20);
  const NetId net_src = src.scheduler().make_net("wire");
  src.scheduler().attach(net_src, producer.id(), "out");

  ReplicaSet set{"dup"};
  NetId net_member{};
  std::vector<Sink*> sinks;
  for (std::size_t k = 0; k < 2; ++k) {
    Subsystem& ss = cluster.add_node("mnode" + std::to_string(k))
                        .add_subsystem("m" + std::to_string(k));
    sinks.push_back(&ss.scheduler().emplace<Sink>("s"));
    net_member = ss.scheduler().make_net("wire");
    ss.scheduler().attach(net_member, sinks.back()->id(), "in");
    set.add_member(ss);
  }
  const ReplicaSet::Channel channel = connect_replicated_checked(
      cluster, src, set, ChannelMode::kConservative);
  set.export_net(src, channel, net_src, net_member);
  cluster.start_all();
  const auto outcomes = cluster.run_all(
      Subsystem::RunConfig{.stall_timeout = std::chrono::seconds(10)});
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;
  EXPECT_EQ(sinks[0]->received.size(), 20u);
  EXPECT_EQ(sinks[1]->received.size(), 20u);
}

}  // namespace
}  // namespace pia::dist
