// Property sweep over the distributed layer's configuration space: for
// every combination of synchronization mode, transport and latency, a
// round-trip pipeline must produce exactly the single-host kernel's results
// — the framework's core guarantee that distribution never changes
// simulated behaviour.
#include <gtest/gtest.h>

#include <chrono>
#include <tuple>

#include "dist_helpers.hpp"

namespace pia::dist {
namespace {

using namespace std::chrono_literals;
using testing::SplitLoop;
using testing::single_host_loop_reference;

using Config = std::tuple<ChannelMode, Wire, int /*latency us*/>;

class DistMatrix : public ::testing::TestWithParam<Config> {};

TEST_P(DistMatrix, RoundTripMatchesSingleHostExactly) {
  const auto& [mode, wire, latency_us] = GetParam();
  SplitLoop loop(12, mode, wire,
                 transport::LatencyModel{
                     .base = std::chrono::microseconds(latency_us)});
  loop.a->set_checkpoint_interval(16);
  loop.b->set_checkpoint_interval(16);
  loop.cluster.start_all();
  const auto outcomes =
      loop.cluster.run_all(Subsystem::RunConfig{.stall_timeout = 20'000ms});
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;
  EXPECT_EQ(loop.sink->received, single_host_loop_reference(12));
}

INSTANTIATE_TEST_SUITE_P(
    ModesTransportsLatencies, DistMatrix,
    ::testing::Combine(
        ::testing::Values(ChannelMode::kConservative,
                          ChannelMode::kOptimistic),
        ::testing::Values(Wire::kLoopback, Wire::kTcp),
        ::testing::Values(0, 300, 1500)),
    [](const ::testing::TestParamInfo<Config>& info) {
      const ChannelMode mode = std::get<0>(info.param);
      const Wire wire = std::get<1>(info.param);
      const int latency_us = std::get<2>(info.param);
      return std::string(mode == ChannelMode::kConservative ? "consv"
                                                            : "optim") +
             (wire == Wire::kLoopback ? "_loopback" : "_tcp") + "_" +
             std::to_string(latency_us) + "us";
    });

// --- the same sweep under injected transport faults --------------------------
//
// Each FaultPlan preset stresses a different protocol path: jitter reorders
// nothing but shuffles arrival timing, duplication exercises receiver-side
// dedup (and rollback pressure in optimistic mode), partition/heal holds
// whole grant/event exchanges hostage for a wall-clock window.  Equivalence
// must survive all of them.

enum class FaultPreset { kJitter, kDup, kPartition };

transport::FaultPlan make_preset(FaultPreset preset) {
  switch (preset) {
    case FaultPreset::kJitter:
      return transport::FaultPlan::jitter(301, 600us);
    case FaultPreset::kDup:
      return transport::FaultPlan::duplication(302, 0.5);
    case FaultPreset::kPartition:
      return transport::FaultPlan::partition(303, 10ms, 40ms);
  }
  return transport::FaultPlan::none();
}

using FaultConfig = std::tuple<FaultPreset, ChannelMode, Wire, int>;

class DistFaultMatrix : public ::testing::TestWithParam<FaultConfig> {};

TEST_P(DistFaultMatrix, RoundTripMatchesSingleHostExactly) {
  const auto& [preset, mode, wire, latency_us] = GetParam();
  SplitLoop loop(12, mode, wire,
                 transport::LatencyModel{
                     .base = std::chrono::microseconds(latency_us)},
                 make_preset(preset));
  loop.a->set_checkpoint_interval(16);
  loop.b->set_checkpoint_interval(16);
  loop.cluster.start_all();
  const auto outcomes =
      loop.cluster.run_all(Subsystem::RunConfig{.stall_timeout = 20'000ms});
  for (const auto& [name, outcome] : outcomes)
    EXPECT_EQ(outcome, Subsystem::RunOutcome::kQuiescent) << name;
  EXPECT_EQ(loop.sink->received, single_host_loop_reference(12));
}

INSTANTIATE_TEST_SUITE_P(
    FaultPresets, DistFaultMatrix,
    ::testing::Combine(
        ::testing::Values(FaultPreset::kJitter, FaultPreset::kDup,
                          FaultPreset::kPartition),
        ::testing::Values(ChannelMode::kConservative,
                          ChannelMode::kOptimistic),
        ::testing::Values(Wire::kLoopback, Wire::kTcp),
        ::testing::Values(0, 300)),
    [](const ::testing::TestParamInfo<FaultConfig>& info) {
      const FaultPreset preset = std::get<0>(info.param);
      const ChannelMode mode = std::get<1>(info.param);
      const Wire wire = std::get<2>(info.param);
      const int latency_us = std::get<3>(info.param);
      std::string name;
      switch (preset) {
        case FaultPreset::kJitter: name = "jitter"; break;
        case FaultPreset::kDup: name = "dup"; break;
        case FaultPreset::kPartition: name = "partition"; break;
      }
      name += mode == ChannelMode::kConservative ? "_consv" : "_optim";
      name += wire == Wire::kLoopback ? "_loopback" : "_tcp";
      return name + "_" + std::to_string(latency_us) + "us";
    });

}  // namespace
}  // namespace pia::dist
