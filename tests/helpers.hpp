// Small reusable components and fixtures shared by the test suite.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "core/protocols.hpp"

namespace pia::testing {

/// Emits `count` word values on port "out", one every `period`, starting at
/// `start`.  Counts in checkpointable state.
class Producer : public Component {
 public:
  Producer(std::string name, std::uint64_t count,
           VirtualTime period = ticks(10), VirtualTime start = ticks(10))
      : Component(std::move(name)), count_(count), period_(period),
        start_(start) {
    out_ = add_output("out");
  }

  void on_init() override { wake_at(start_); }

  void on_receive(PortIndex, const Value&) override {}

  void on_wake() override {
    if (sent_ >= count_) return;
    send(out_, Value{sent_});
    ++sent_;
    if (sent_ < count_) wake_after(period_);
  }

  void save_state(serial::OutArchive& ar) const override {
    ar.put_varint(sent_);
  }
  void restore_state(serial::InArchive& ar) override {
    sent_ = ar.get_varint();
  }

  [[nodiscard]] std::uint64_t sent() const { return sent_; }

 private:
  std::uint64_t count_;
  VirtualTime period_;
  VirtualTime start_;
  std::uint64_t sent_ = 0;
  PortIndex out_;
};

/// Accumulates every received word and its delivery time.
class Sink : public Component {
 public:
  explicit Sink(std::string name,
                PortSync sync = PortSync::kSynchronous)
      : Component(std::move(name)) {
    in_ = add_input("in", sync);
  }

  void on_receive(PortIndex, const Value& value) override {
    received.push_back(value.as_word());
    times.push_back(local_time());
  }

  void save_state(serial::OutArchive& ar) const override {
    serial::write(ar, received);
    serial::write(ar, times);
  }
  void restore_state(serial::InArchive& ar) override {
    received = serial::read_vector<std::uint64_t>(ar);
    times = serial::read_vector<VirtualTime>(ar);
  }

  std::vector<std::uint64_t> received;
  std::vector<VirtualTime> times;

 private:
  PortIndex in_;
};

/// Receives a word, spends `think` of computation, forwards value+1.
class Relay : public Component {
 public:
  Relay(std::string name, VirtualTime think = ticks(5))
      : Component(std::move(name)), think_(think) {
    in_ = add_input("in");
    out_ = add_output("out");
  }

  void on_receive(PortIndex, const Value& value) override {
    advance(think_);  // basic-block timing estimate
    send(out_, Value{value.as_word() + 1});
    ++forwarded;
  }

  void save_state(serial::OutArchive& ar) const override {
    ar.put_varint(forwarded);
  }
  void restore_state(serial::InArchive& ar) override {
    forwarded = ar.get_varint();
  }

  std::uint64_t forwarded = 0;

 private:
  VirtualTime think_;
  PortIndex in_;
  PortIndex out_;
};

/// Sends a payload through a TransferEncoder at the current runlevel when
/// poked; used by protocol and runlevel tests.
class TransferSender : public Component {
 public:
  TransferSender(std::string name, Bytes payload,
                 TimingProfile timing = {},
                 RunLevel initial = runlevels::kWord)
      : Component(std::move(name)), payload_(std::move(payload)),
        encoder_(timing) {
    out_ = add_output("out");
    set_initial_runlevel(initial);
  }

  void on_init() override { wake_after(ticks(1)); }

  void on_wake() override {
    for (const auto& emission : encoder_.encode(payload_, runlevel())) {
      advance(emission.delay);
      send(out_, emission.value);
    }
    ++transfers;
  }

  void trigger() { wake_after(ticks(1)); }

  void on_receive(PortIndex, const Value&) override {}

  std::uint64_t transfers = 0;

 private:
  Bytes payload_;
  TransferEncoder encoder_;
  PortIndex out_;
};

/// Reassembles transfers with a TransferDecoder; exposes completed payloads.
class TransferReceiver : public Component {
 public:
  explicit TransferReceiver(std::string name)
      : Component(std::move(name)) {
    in_ = add_input("in");
  }

  void on_receive(PortIndex, const Value& value) override {
    if (auto done = decoder_.feed(value)) payloads.push_back(*std::move(done));
  }

  [[nodiscard]] bool at_safe_point() const override {
    return !decoder_.mid_transfer();
  }

  std::vector<Bytes> payloads;

 private:
  TransferDecoder decoder_;
  PortIndex in_;
};

}  // namespace pia::testing
