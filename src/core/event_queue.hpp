// Contiguous event priority queue.
//
// The scheduler's hot loop is push/pop on the pending-event set.  A
// std::multiset pays a red-black-tree node allocation per event and chases
// pointers on every comparison; this 4-ary min-heap keeps all events in one
// vector, so pushes are an append + sift-up and pops touch at most a few
// cache lines per level.  Keys are the existing (time, seq) pair — seq is a
// per-scheduler monotone counter, so keys are unique and the heap's pop
// order is exactly the multiset's iteration order: dispatch stays
// bit-identical, which checkpoint/rollback and the distributed fuzzer's
// oracle comparisons depend on.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/event.hpp"

namespace pia {

class EventQueue {
 public:
  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }
  /// The (time, seq)-minimal event.  Undefined when empty.
  [[nodiscard]] const Event& top() const { return heap_.front(); }
  /// Read-only view of the pending events in heap order (NOT dispatch
  /// order).  For aggregate scans that need a min over a subset without
  /// disturbing the queue.
  [[nodiscard]] const std::vector<Event>& events() const { return heap_; }

  void reserve(std::size_t n) { heap_.reserve(n); }
  void clear() { heap_.clear(); }

  void push(Event event) {
    heap_.push_back(std::move(event));
    sift_up(heap_.size() - 1);
  }

  /// Removes and returns the minimal event.
  Event pop() {
    Event out = std::move(heap_.front());
    if (heap_.size() > 1) {
      heap_.front() = std::move(heap_.back());
      heap_.pop_back();
      sift_down(0);
    } else {
      heap_.pop_back();
    }
    return out;
  }

  /// Copy of the queue sorted by (time, seq) — the order the events would
  /// dispatch in, matching the old multiset's begin()..end() iteration.
  [[nodiscard]] std::vector<Event> sorted_snapshot() const {
    std::vector<Event> out = heap_;
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Removes every event matching pred; returns how many were removed.
  template <typename Pred>
  std::size_t erase_if(const Pred& pred) {
    const std::size_t before = heap_.size();
    std::erase_if(heap_, pred);
    heapify();
    return before - heap_.size();
  }

 private:
  static constexpr std::size_t kArity = 4;

  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!(heap_[i] < heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      const std::size_t last_child = std::min(first_child + kArity, n);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c)
        if (heap_[c] < heap_[best]) best = c;
      if (!(heap_[best] < heap_[i])) break;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  void heapify() {
    if (heap_.size() < 2) return;
    for (std::size_t i = (heap_.size() - 2) / kArity + 1; i-- > 0;)
      sift_down(i);
  }

  std::vector<Event> heap_;
};

}  // namespace pia
