#include "core/registry.hpp"

#include "base/error.hpp"

namespace pia {

void ComponentRegistry::register_factory(const std::string& type_name,
                                         Factory factory) {
  PIA_REQUIRE(factory != nullptr, "null factory for '" + type_name + "'");
  Entry& entry = entries_[type_name];
  entry.factory = std::move(factory);
  entry.generation++;
}

bool ComponentRegistry::contains(const std::string& type_name) const {
  return entries_.contains(type_name);
}

std::unique_ptr<Component> ComponentRegistry::create(
    const std::string& type_name, const std::string& instance) const {
  const auto it = entries_.find(type_name);
  if (it == entries_.end())
    raise(ErrorKind::kNotFound,
          "no component type registered as '" + type_name + "'");
  auto component = it->second.factory(instance);
  PIA_CHECK(component != nullptr,
            "factory for '" + type_name + "' returned nullptr");
  return component;
}

std::uint32_t ComponentRegistry::generation(
    const std::string& type_name) const {
  const auto it = entries_.find(type_name);
  return it == entries_.end() ? 0 : it->second.generation;
}

std::vector<std::string> ComponentRegistry::type_names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

ComponentRegistry& ComponentRegistry::global() {
  static ComponentRegistry registry;
  return registry;
}

}  // namespace pia
