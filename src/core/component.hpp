// Component: the unit of behaviour in a Pia simulation (paper §2.1).
//
// A component is a container for some basic functionality — an embedded
// processor running a program, an ASIC, an FPGA, a sensor, a web server.
// Each component keeps its own *local* virtual time; the subsystem scheduler
// guarantees that subsystem time never exceeds any component's local time,
// so when a component is (re)activated its view of the world is up to date.
//
// Execution model: handlers run to completion.  on_receive is invoked when a
// value arrives on an input port; on_wake when a self-scheduled timer fires.
// Inside a handler the component may
//   * advance(dt)        — model computation time (basic-block estimates),
//   * send(port, value)  — drive an output net at its current local time,
//   * wake_after(dt)     — schedule a future activation.
// Between handlers every component is at a *safe point*, which is where
// checkpoints are taken and runlevels switched.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/ids.hpp"
#include "base/time.hpp"
#include "core/event.hpp"
#include "core/port.hpp"
#include "core/runlevel.hpp"
#include "serial/archive.hpp"

namespace pia {

class Component;

/// Services the kernel provides to a component while one of its handlers is
/// running.  Implemented by the Scheduler.
class ComponentContext {
 public:
  virtual ~ComponentContext() = default;

  /// Drive `value` onto the net wired to output `port` of `component`,
  /// timestamped at the component's local time plus the net delay plus
  /// `extra_delay`.
  virtual void context_send(Component& component, PortIndex port, Value value,
                            VirtualTime extra_delay) = 0;

  /// Schedule an on_wake for `component` at absolute time `when`.
  virtual void context_wake(Component& component, VirtualTime when) = 0;

  /// Drive `value` onto the net at an explicit absolute timestamp (must not
  /// precede subsystem time).  Used by channel proxies that relay remote
  /// events carrying their original timestamps.
  virtual void context_send_at(Component& component, PortIndex port,
                               Value value, VirtualTime when) = 0;

  /// Imperative runlevel switch from inside component code (trigger (c) of
  /// paper §2.1.3).  Applied at the next safe point.
  virtual void context_request_runlevel(Component& component,
                                        const RunLevel& level) = 0;
};

class Component {
 public:
  explicit Component(std::string name);
  virtual ~Component() = default;

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] ComponentId id() const { return id_; }
  [[nodiscard]] VirtualTime local_time() const { return local_time_; }
  [[nodiscard]] const RunLevel& runlevel() const { return runlevel_; }
  /// Timestamp of the event currently being handled.  For asynchronous
  /// (interrupt-style) ports this may be earlier than local_time() — it is
  /// the interrupt's logical instant.
  [[nodiscard]] VirtualTime delivery_time() const { return delivery_time_; }

  [[nodiscard]] const std::vector<Port>& ports() const { return ports_; }
  [[nodiscard]] const Port& port(PortIndex i) const;
  /// Throws Error{kNotFound} if no port has that name.
  [[nodiscard]] PortIndex find_port(std::string_view port_name) const;

  // --- behaviour hooks ----------------------------------------------------

  /// Called once when the simulation starts, at local time zero.
  virtual void on_init() {}

  /// Value arrived on input `port`.  Local time has already been advanced to
  /// the delivery time (for synchronous ports) before this is called.
  virtual void on_receive(PortIndex port, const Value& value) = 0;

  /// Self-scheduled timer fired.
  virtual void on_wake() {}

  /// Runlevel changed (at a safe point).  Override to reconfigure the
  /// component's communication methods.
  virtual void on_runlevel(const RunLevel& previous) { (void)previous; }

  /// True when the component's interfaces are stable and consistent, i.e. a
  /// runlevel switch or checkpoint may happen now.  The kernel only asks
  /// between handlers; components mid-transfer (e.g. a bus protocol between
  /// strobe and ack) should return false.
  [[nodiscard]] virtual bool at_safe_point() const { return true; }

  // --- checkpointing (paper §2.1.2) ----------------------------------------

  /// Serialize all user state.  The kernel wraps this with local time,
  /// runlevel and a schema section; override both save_state and
  /// restore_state, or neither.
  virtual void save_state(serial::OutArchive& ar) const { (void)ar; }
  virtual void restore_state(serial::InArchive& ar) { (void)ar; }

  /// Full image including kernel-owned fields.  Used by CheckpointManager.
  [[nodiscard]] Bytes save_image() const;
  void restore_image(BytesView image);

 protected:
  /// Declare an input port; returns its index for use in on_receive.
  PortIndex add_input(std::string port_name,
                      PortSync sync = PortSync::kSynchronous);
  /// Declare an output port.
  PortIndex add_output(std::string port_name);
  /// Declare a bidirectional port.
  PortIndex add_inout(std::string port_name,
                      PortSync sync = PortSync::kSynchronous);
  /// Mutable access for subclasses that tweak port metadata (e.g. channel
  /// components marking their proxy ports hidden).
  [[nodiscard]] Port& mutable_port(PortIndex i);

  // --- services (valid only while a handler is running) -------------------

  void send(PortIndex out_port, Value value,
            VirtualTime extra_delay = VirtualTime::zero());
  /// Drive a value stamped at an explicit absolute time (channel proxies).
  void send_at(PortIndex out_port, Value value, VirtualTime when);
  void wake_after(VirtualTime delay);
  void wake_at(VirtualTime when);
  /// Model computation: local time += delta (basic-block timing estimate).
  void advance(VirtualTime delta);
  /// Imperative runlevel switch request.
  void request_runlevel(const RunLevel& level);
  /// Sets the runlevel a component starts in (constructor use only — once
  /// simulation runs, switches go through request_runlevel / switchpoints).
  void set_initial_runlevel(const RunLevel& level) { runlevel_ = level; }

 private:
  friend class Scheduler;
  friend class SealedComponent;  // drives an inner model through a shim

  std::string name_;
  ComponentId id_;  // assigned by the scheduler on add()
  VirtualTime local_time_ = VirtualTime::zero();
  VirtualTime delivery_time_ = VirtualTime::zero();
  RunLevel runlevel_;
  std::vector<Port> ports_;
  ComponentContext* context_ = nullptr;  // non-owning; set while scheduled
};

}  // namespace pia
