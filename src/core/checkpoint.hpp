// Checkpoint and restore facilities (paper §2.1.2).
//
// Components occasionally store images of their state; on a consistency
// problem the simulator restores previous images and re-executes more
// conservatively.  A checkpoint request does NOT require all components to
// save at the same local time — each saves at the earliest safe point after
// the request.  That staggering risks the *domino effect* [Russell 1980]:
// a restore could force a component to load ever-older images to reach a
// causally consistent state.  Pia avoids it by requiring every component to
// save BEFORE receiving any message after a checkpoint request, which
// prevents a message from the post-checkpoint future of one component from
// influencing the pre-checkpoint past of another.
//
// This manager implements both semantics:
//   * kImmediate — all components and the event queue are captured at the
//     instant of the request.  Legal in this kernel because handlers run to
//     completion, so the request instant is a safe point for everyone.
//     (The paper's Java threads could block mid-computation, making this
//     impossible for them.)
//   * kDeferred — the paper's semantics: each component's image is taken
//     right before its first dispatch after the request; undelivered
//     messages that restored senders will not regenerate are recorded as
//     channel state (the in-subsystem analogue of Chandy–Lamport channel
//     recording).
//
// It also implements the paper's stated future work: *incremental*
// checkpoints, storing byte-level deltas against the previous image.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/ids.hpp"
#include "core/scheduler.hpp"

namespace pia {

enum class CheckpointPolicy {
  kImmediate,  // consistent cut at the request instant
  kDeferred,   // paper semantics: earliest safe point after the request
};

struct CheckpointStats {
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t restores = 0;
  std::uint64_t full_image_bytes = 0;        // bytes stored as full images
  std::uint64_t incremental_image_bytes = 0; // bytes stored as deltas
  std::uint64_t recorded_channel_events = 0;
};

class CheckpointManager {
 public:
  /// Installs itself as the scheduler's pre-dispatch/schedule hooks.  The
  /// manager must outlive the scheduler's use of those hooks.
  explicit CheckpointManager(Scheduler& scheduler,
                             CheckpointPolicy policy = CheckpointPolicy::kImmediate);
  ~CheckpointManager();

  CheckpointManager(const CheckpointManager&) = delete;
  CheckpointManager& operator=(const CheckpointManager&) = delete;

  [[nodiscard]] CheckpointPolicy policy() const { return policy_; }

  /// Store deltas against each component's previous image instead of full
  /// images (the paper's future-work extension).
  void set_incremental(bool enabled) { incremental_ = enabled; }
  [[nodiscard]] bool incremental() const { return incremental_; }

  /// ABLATION KNOB — deliberately weakens the paper's domino-avoidance
  /// rule: under kDeferred, a component's image is taken only after it has
  /// absorbed `deliveries` post-request messages instead of before the
  /// first one.  Non-zero values make restored states causally
  /// inconsistent (messages applied twice); bench_ablation_domino measures
  /// exactly that.  Leave at 0 for correct operation.
  void set_deferred_save_delay(std::uint32_t deliveries) {
    deferred_save_delay_ = deliveries;
  }

  /// Issues a checkpoint request and returns its identifier.  Under
  /// kImmediate the snapshot is complete on return; under kDeferred it
  /// completes as components hit their next safe points (finalize() or
  /// restore() force completion).
  SnapshotId request();

  /// Forces any still-unsaved components of a deferred checkpoint to save
  /// now (they are between handlers, hence at safe points).
  void finalize(SnapshotId id);

  [[nodiscard]] bool complete(SnapshotId id) const;

  /// Rolls the whole subsystem back to the checkpoint: restores every
  /// component image, replaces the event queue with the recorded channel
  /// state, and rewinds subsystem time.  The checkpoint remains available
  /// for repeated restores.
  void restore(SnapshotId id);

  /// Restores the most recent complete checkpoint; returns its id.
  SnapshotId restore_latest();

  [[nodiscard]] bool has_checkpoint() const { return !snapshots_.empty(); }
  [[nodiscard]] bool contains(SnapshotId id) const {
    return snapshots_.contains(id);
  }
  [[nodiscard]] std::optional<SnapshotId> latest() const;
  /// Most recent snapshot requested at or before virtual time t (the one a
  /// rewind to t must restore).
  [[nodiscard]] std::optional<SnapshotId> latest_at_or_before(
      VirtualTime t) const;

  /// The subsystem time at which the checkpoint was requested.
  [[nodiscard]] VirtualTime snapshot_time(SnapshotId id) const;

  /// Stored size of one snapshot (full or delta, as stored).
  [[nodiscard]] std::size_t stored_bytes(SnapshotId id) const;

  // --- export (durable snapshots) ------------------------------------------
  // The distributed layer serializes completed Chandy–Lamport snapshots to
  // disk; these give it the materialized cut without performing a restore.

  /// The full (delta-resolved) image of one component in the snapshot.
  [[nodiscard]] Bytes snapshot_image(SnapshotId id, ComponentId comp) const {
    return materialize_image(id, comp);
  }
  /// The event queue the snapshot would restore: the captured queue plus
  /// recorded channel state, deduplicated, in original seq order.
  [[nodiscard]] std::vector<Event> snapshot_events(SnapshotId id) const;

  /// Drops snapshots older than `id` (fossil collection under GVT).
  void discard_before(SnapshotId id);
  void discard_all();

  [[nodiscard]] const CheckpointStats& stats() const { return stats_; }

 private:
  struct StoredImage {
    bool is_delta = false;
    Bytes data;                 // full image, or delta against base below
    SnapshotId delta_base;      // snapshot whose image the delta applies to
  };

  struct Snapshot {
    VirtualTime requested_at;
    bool finalized = false;
    std::unordered_map<ComponentId, StoredImage> images;
    std::vector<Event> channel_events;  // recorded undelivered messages
    std::vector<Event> queue_snapshot;  // kImmediate only
  };

  void on_schedule(const Event& event);
  void on_pre_dispatch(const Event& event);
  void save_component(Snapshot& snap, ComponentId id);
  void record_pending_for(Snapshot& snap, ComponentId id);
  [[nodiscard]] Bytes materialize_image(SnapshotId id, ComponentId comp) const;

  Scheduler& scheduler_;
  CheckpointPolicy policy_;
  bool incremental_ = false;

  std::map<SnapshotId, Snapshot> snapshots_;
  std::uint32_t next_snapshot_ = 0;

  // Deferred-mode working state: the (single) armed request.
  std::optional<SnapshotId> armed_;
  std::uint32_t deferred_save_delay_ = 0;
  std::unordered_map<ComponentId, std::uint32_t> deliveries_since_request_;
  // seq -> "sent while its source was still unsaved in the armed snapshot";
  // such events will NOT be regenerated by restored senders and must be
  // recorded as channel state.
  std::unordered_map<std::uint64_t, bool> sent_by_unsaved_;

  CheckpointStats stats_;
};

/// Byte-level delta encoding used by incremental checkpoints.
/// Format: varint count, then per run: varint offset, varint length, bytes.
/// A trailing varint gives the full length (handles growth/shrink).
namespace delta {
[[nodiscard]] Bytes encode(BytesView base, BytesView target);
[[nodiscard]] Bytes apply(BytesView base, BytesView delta);
}  // namespace delta

}  // namespace pia
