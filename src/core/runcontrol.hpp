// Run-control scripts.
//
// The paper's trigger (b) for runlevel changes is "a switchpoint defined in
// the simulation run control file".  This module parses that file format.
// Grammar (one statement per line; '#' starts a comment):
//
//   statement  := "when" condition ":" action ("," action)*
//   condition  := or_expr
//   or_expr    := and_expr ("||" and_expr)*
//   and_expr   := primary ("&&" primary)*
//   primary    := leaf | "(" or_expr ")"
//   leaf       := IDENT ".time" ">=" INTEGER
//   action     := IDENT "->" IDENT          // component -> runlevel name
//
// The paper's example reads, in this syntax:
//
//   when I2CComponent.time >= 67: I2CComponent -> hardwareLevel,
//                                 VidCamComponent -> byteLevel
//
// Runlevel names resolve through a caller-supplied table (the standard
// levels of runlevel.hpp are preloaded).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/runlevel.hpp"

namespace pia {

class RunControlParser {
 public:
  RunControlParser();

  /// Registers a runlevel name usable in scripts.
  void define_runlevel(const RunLevel& level);

  /// Parses a whole script; throws Error{kInvalidArgument} with a
  /// line/column diagnostic on malformed input.
  [[nodiscard]] std::vector<Switchpoint> parse(const std::string& script) const;

  /// Parses a single `when ...` statement.
  [[nodiscard]] Switchpoint parse_statement(const std::string& line) const;

 private:
  std::map<std::string, RunLevel> runlevels_;
};

}  // namespace pia
