#include "core/sealed.hpp"

#include "base/error.hpp"
#include "base/rng.hpp"
#include "serial/archive.hpp"

namespace pia {
namespace {

std::uint64_t key_seed(const std::string& key) {
  // FNV-1a over the key string seeds the keystream generator.
  return fnv1a(BytesView{reinterpret_cast<const std::byte*>(key.data()),
                         key.size()});
}

void xor_keystream(Bytes& data, const std::string& key) {
  Rng stream(key_seed(key));
  std::uint64_t block = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 8 == 0) block = stream.next();
    data[i] ^= static_cast<std::byte>(block >> (8 * (i % 8)));
  }
}

constexpr std::uint64_t kIntegrityMagic = 0x5649504552F00DULL;  // "VIPER"

}  // namespace

SealedBlob SealedBlob::seal(BytesView plaintext, const std::string& key) {
  serial::OutArchive ar;
  ar.put_varint(kIntegrityMagic);
  ar.put_varint(fnv1a(plaintext));
  ar.put_bytes(plaintext);
  Bytes data = std::move(ar).take();
  xor_keystream(data, key);
  SealedBlob blob;
  blob.ciphertext_ = std::move(data);
  return blob;
}

SealedBlob SealedBlob::from_ciphertext(Bytes ciphertext) {
  SealedBlob blob;
  blob.ciphertext_ = std::move(ciphertext);
  return blob;
}

Bytes SealedBlob::unseal(const std::string& key) const {
  Bytes data = ciphertext_;
  xor_keystream(data, key);
  try {
    serial::InArchive ar(data);
    if (ar.get_varint() != kIntegrityMagic)
      raise(ErrorKind::kState, "sealed blob: wrong key or corrupt data");
    const std::uint64_t digest = ar.get_varint();
    Bytes plaintext = ar.get_bytes();
    if (fnv1a(plaintext) != digest)
      raise(ErrorKind::kState, "sealed blob: integrity check failed");
    return plaintext;
  } catch (const Error& e) {
    if (e.kind() == ErrorKind::kSerialization)
      raise(ErrorKind::kState, "sealed blob: wrong key or corrupt data");
    throw;
  }
}

// ---------------------------------------------------------------------------
// SealedComponent
// ---------------------------------------------------------------------------

namespace {

/// Routes the inner model's kernel calls through the wrapper so the inner
/// component never touches the scheduler directly.
class InnerShim final : public ComponentContext {
 public:
  explicit InnerShim(SealedComponent& wrapper) : wrapper_(wrapper) {}

  void context_send(Component&, PortIndex port, Value value,
                    VirtualTime extra_delay) override {
    wrapper_.forward_send(port, std::move(value), extra_delay);
  }
  void context_send_at(Component&, PortIndex port, Value value,
                       VirtualTime when) override {
    wrapper_.forward_send_at(port, std::move(value), when);
  }
  void context_wake(Component&, VirtualTime when) override {
    wrapper_.forward_wake(when);
  }
  void context_request_runlevel(Component&, const RunLevel& level) override {
    wrapper_.forward_runlevel(level);
  }

 private:
  SealedComponent& wrapper_;
};

}  // namespace

SealedComponent::SealedComponent(std::string name, SealedBlob blob,
                                 std::string key, InnerFactory factory)
    : Component(std::move(name)), blob_(std::move(blob)) {
  const Bytes parameters = blob_.unseal(key);
  inner_ = factory(this->name() + ".inner", parameters);
  PIA_CHECK(inner_ != nullptr, "sealed inner factory returned nullptr");
  shim_ = std::make_unique<InnerShim>(*this);
  inner_->context_ = shim_.get();
  // Mirror the inner model's port list so the wrapper is wire-compatible.
  for (const Port& p : inner_->ports()) {
    switch (p.dir) {
      case PortDir::kIn: add_input(p.name, p.sync); break;
      case PortDir::kOut: add_output(p.name); break;
      case PortDir::kInOut: add_inout(p.name, p.sync); break;
    }
  }
}

SealedComponent::~SealedComponent() = default;

void SealedComponent::sync_in() { inner_->local_time_ = local_time(); }

void SealedComponent::sync_out() {
  if (inner_->local_time() > local_time())
    advance(inner_->local_time() - local_time());
}

void SealedComponent::forward_send(PortIndex port, Value value,
                                   VirtualTime extra_delay) {
  sync_out();  // charge any computation the inner model accrued so far
  send(port, std::move(value), extra_delay);
}

void SealedComponent::forward_send_at(PortIndex port, Value value,
                                      VirtualTime when) {
  sync_out();
  send_at(port, std::move(value), when);
}

void SealedComponent::forward_wake(VirtualTime when) { wake_at(when); }

void SealedComponent::forward_runlevel(const RunLevel& level) {
  request_runlevel(level);
}

void SealedComponent::on_init() {
  sync_in();
  inner_->on_init();
  sync_out();
}

void SealedComponent::on_receive(PortIndex port, const Value& value) {
  sync_in();
  inner_->on_receive(port, value);
  sync_out();
}

void SealedComponent::on_wake() {
  sync_in();
  inner_->on_wake();
  sync_out();
}

bool SealedComponent::at_safe_point() const {
  return inner_->at_safe_point();
}

void SealedComponent::save_state(serial::OutArchive& ar) const {
  // The image carries the sealed parameter blob plus the inner model's
  // runtime state; neither reveals the parameters in plaintext.
  ar.put_bytes(blob_.ciphertext());
  serial::OutArchive inner_ar;
  inner_->save_state(inner_ar);
  ar.put_bytes(std::move(inner_ar).take());
}

void SealedComponent::restore_state(serial::InArchive& ar) {
  const Bytes ciphertext = ar.get_bytes();
  if (ciphertext != blob_.ciphertext())
    raise(ErrorKind::kSerialization,
          "sealed component image carries a different IP blob");
  const Bytes inner_state = ar.get_bytes();
  serial::InArchive inner_ar(inner_state);
  inner_->restore_state(inner_ar);
  inner_->local_time_ = local_time();
}

}  // namespace pia
