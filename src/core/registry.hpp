// Component registry — the native analogue of the Pia class loader
// (paper §3.2).
//
// The Java class loader let a user "recompile and reload a component without
// having to restart the simulator" and fetch components "on demand from
// arbitrary URLs".  In C++ the equivalent capability is a registry of named
// factories: tools register (or *re*-register, i.e. reload) a factory under
// a name, and simulations instantiate components by name.  Factories can be
// registered from anywhere — statically linked models, plugin init
// functions, or test doubles.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/component.hpp"

namespace pia {

class ComponentRegistry {
 public:
  /// A factory builds a component given its instance name.
  using Factory =
      std::function<std::unique_ptr<Component>(const std::string& instance)>;

  /// Registers a factory under `type_name`.  Re-registering replaces the
  /// previous factory ("reload") and bumps the generation counter.
  void register_factory(const std::string& type_name, Factory factory);

  [[nodiscard]] bool contains(const std::string& type_name) const;

  /// Instantiates a component; throws Error{kNotFound} for unknown types.
  [[nodiscard]] std::unique_ptr<Component> create(
      const std::string& type_name, const std::string& instance) const;

  /// How many times `type_name` has been (re)registered; 0 if never.
  [[nodiscard]] std::uint32_t generation(const std::string& type_name) const;

  [[nodiscard]] std::vector<std::string> type_names() const;

  /// The process-wide registry used by the Chinook-style tools.
  static ComponentRegistry& global();

 private:
  struct Entry {
    Factory factory;
    std::uint32_t generation = 0;
  };
  std::map<std::string, Entry> entries_;
};

}  // namespace pia
