#include "core/simulation.hpp"

#include "base/error.hpp"
#include "base/log.hpp"

namespace pia {

Simulation::Simulation(std::string name, CheckpointPolicy policy)
    : scheduler_(std::move(name)),
      checkpoints_(std::make_unique<CheckpointManager>(scheduler_, policy)) {}

Component& Simulation::create(const std::string& type_name,
                              const std::string& instance,
                              const ComponentRegistry& registry) {
  auto component = registry.create(type_name, instance);
  Component& ref = *component;
  scheduler_.add(std::move(component));
  return ref;
}

NetId Simulation::connect(Component& from, std::string_view out_port,
                          Component& to, std::string_view in_port,
                          VirtualTime delay) {
  return scheduler_.connect(from.id(), out_port, to.id(), in_port, delay);
}

void Simulation::load_run_control(const std::string& script) {
  for (Switchpoint& sp : parser_.parse(script))
    scheduler_.add_switchpoint(std::move(sp));
}

void Simulation::enable_optimistic_rewind(RewindCallback on_rewind) {
  scheduler_.violation_handler = [this, on_rewind](const Event& event,
                                                   Component& target) {
    const auto snapshot = checkpoints_->latest_at_or_before(event.time);
    if (!snapshot) return false;  // nothing to rewind to: hard error

    PIA_INFO("optimistic violation: event at "
             << event.time << " hit '" << target.name() << "' at local "
             << target.local_time() << "; rewinding");
    ++rewinds_;
    // Let the model mark the offending location synchronous *before* the
    // restore so re-execution takes the conservative path.
    if (on_rewind) on_rewind(event, target);
    checkpoints_->restore(*snapshot);
    // The violating event still has to be delivered; it now arrives in the
    // re-executed timeline.
    scheduler_.inject(event);
    return true;
  };
}

}  // namespace pia
