#include "core/protocols.hpp"

#include "base/error.hpp"

namespace pia {
namespace {

// Wire tags distinguishing Packet-valued emissions.
constexpr std::uint8_t kTagTransaction = 0x01;
constexpr std::uint8_t kTagPacketFrame = 0x02;

// Header word announcing a word-level transfer: magic in the upper half,
// payload byte count in the lower half.
constexpr std::uint64_t kWordHeaderMagic = 0x5049414C00000000ULL;
constexpr std::uint64_t kWordHeaderMask = 0xFFFFFFFF00000000ULL;

std::size_t div_round_up(std::size_t a, std::size_t b) {
  return (a + b - 1) / b;
}

VirtualTime half(VirtualTime t) { return VirtualTime{t.ticks() / 2}; }

}  // namespace

namespace framing {

Bytes make_packet(std::uint16_t seq, bool last, BytesView chunk) {
  PIA_REQUIRE(seq < 0x8000, "packet sequence number overflow");
  Bytes frame;
  frame.reserve(3 + chunk.size());
  frame.push_back(std::byte{kTagPacketFrame});
  frame.push_back(std::byte{static_cast<std::uint8_t>(seq & 0xFF)});
  frame.push_back(std::byte{static_cast<std::uint8_t>(
      ((seq >> 8) & 0x7F) | (last ? 0x80 : 0x00))});
  frame.insert(frame.end(), chunk.begin(), chunk.end());
  return frame;
}

PacketHeader parse_packet(BytesView frame, BytesView& chunk_out) {
  if (frame.size() < 3 ||
      static_cast<std::uint8_t>(frame[0]) != kTagPacketFrame)
    raise(ErrorKind::kProtocol, "malformed packet frame");
  const auto lo = static_cast<std::uint8_t>(frame[1]);
  const auto hi = static_cast<std::uint8_t>(frame[2]);
  chunk_out = frame.subspan(3);
  return PacketHeader{
      .seq = static_cast<std::uint16_t>(lo | ((hi & 0x7F) << 8)),
      .last = (hi & 0x80) != 0,
  };
}

}  // namespace framing

std::vector<TransferEncoder::Emission> TransferEncoder::encode(
    BytesView payload, const RunLevel& level) const {
  std::vector<Emission> out;

  if (level.name == runlevels::kTransaction.name) {
    Bytes frame;
    frame.reserve(1 + payload.size());
    frame.push_back(std::byte{kTagTransaction});
    frame.insert(frame.end(), payload.begin(), payload.end());
    out.push_back({timing_.transaction_latency, Value{std::move(frame)}});
    return out;
  }

  if (level.name == runlevels::kPacket.name) {
    const std::size_t packets =
        payload.empty() ? 1 : div_round_up(payload.size(), kPacketPayload);
    for (std::size_t i = 0; i < packets; ++i) {
      const std::size_t begin = i * kPacketPayload;
      const std::size_t len =
          std::min(kPacketPayload, payload.size() - begin);
      out.push_back({timing_.packet_period,
                     Value{framing::make_packet(
                         static_cast<std::uint16_t>(i), i + 1 == packets,
                         payload.subspan(begin, len))}});
    }
    return out;
  }

  if (level.name == runlevels::kWord.name ||
      level.name == "byteLevel" /* paper's WubbleU alias */) {
    out.push_back({timing_.word_period,
                   Value{kWordHeaderMagic |
                         static_cast<std::uint64_t>(payload.size())}});
    for (std::size_t i = 0; i < payload.size(); i += kWordBytes) {
      std::uint64_t word = 0;
      for (std::size_t k = 0; k < kWordBytes && i + k < payload.size(); ++k)
        word |= static_cast<std::uint64_t>(
                    static_cast<std::uint8_t>(payload[i + k]))
                << (8 * k);
      out.push_back({timing_.word_period, Value{word}});
    }
    return out;
  }

  if (level.name == runlevels::kHardware.name) {
    for (std::byte b : payload) {
      out.push_back({half(timing_.byte_period), Value{Logic::kHigh}});
      out.push_back({half(timing_.byte_period),
                     Value{static_cast<std::uint64_t>(
                         static_cast<std::uint8_t>(b))}});
    }
    out.push_back({timing_.byte_period, Value{Logic::kLow}});
    return out;
  }

  raise(ErrorKind::kInvalidArgument,
        "no communication method for runlevel '" + level.name + "'");
}

VirtualTime TransferEncoder::duration(std::size_t payload_size,
                                      const RunLevel& level) const {
  if (level.name == runlevels::kTransaction.name)
    return timing_.transaction_latency;
  if (level.name == runlevels::kPacket.name) {
    const std::size_t packets =
        payload_size == 0 ? 1 : div_round_up(payload_size, kPacketPayload);
    return VirtualTime{timing_.packet_period.ticks() *
                       static_cast<VirtualTime::rep>(packets)};
  }
  if (level.name == runlevels::kWord.name || level.name == "byteLevel") {
    const std::size_t words = 1 + div_round_up(payload_size, kWordBytes);
    return VirtualTime{timing_.word_period.ticks() *
                       static_cast<VirtualTime::rep>(words)};
  }
  if (level.name == runlevels::kHardware.name) {
    return VirtualTime{timing_.byte_period.ticks() *
                       static_cast<VirtualTime::rep>(payload_size + 1)};
  }
  raise(ErrorKind::kInvalidArgument,
        "no communication method for runlevel '" + level.name + "'");
}

std::size_t TransferEncoder::event_count(std::size_t payload_size,
                                         const RunLevel& level) const {
  if (level.name == runlevels::kTransaction.name) return 1;
  if (level.name == runlevels::kPacket.name)
    return payload_size == 0 ? 1 : div_round_up(payload_size, kPacketPayload);
  if (level.name == runlevels::kWord.name || level.name == "byteLevel")
    return 1 + div_round_up(payload_size, kWordBytes);
  if (level.name == runlevels::kHardware.name) return 2 * payload_size + 1;
  raise(ErrorKind::kInvalidArgument,
        "no communication method for runlevel '" + level.name + "'");
}

std::optional<Bytes> TransferDecoder::feed(const Value& value) {
  switch (state_) {
    case State::kIdle: {
      switch (value.kind()) {
        case Value::Kind::kPacket: {
          const BytesView frame = value.as_packet();
          if (frame.empty()) raise(ErrorKind::kProtocol, "empty frame");
          const auto tag = static_cast<std::uint8_t>(frame[0]);
          if (tag == kTagTransaction) {
            return Bytes(frame.begin() + 1, frame.end());
          }
          if (tag == kTagPacketFrame) {
            BytesView chunk;
            const auto header = framing::parse_packet(frame, chunk);
            if (header.seq != 0)
              raise(ErrorKind::kProtocol,
                    "packet transfer started mid-stream (seq != 0)");
            partial_.assign(chunk.begin(), chunk.end());
            if (header.last) {
              Bytes done = std::move(partial_);
              reset();
              return done;
            }
            expected_ = 1;  // next expected seq
            state_ = State::kPackets;
            return std::nullopt;
          }
          raise(ErrorKind::kProtocol, "unknown frame tag");
        }
        case Value::Kind::kWord: {
          const std::uint64_t w = value.as_word();
          if ((w & kWordHeaderMask) != kWordHeaderMagic)
            raise(ErrorKind::kProtocol,
                  "word transfer started without header word");
          expected_ = static_cast<std::size_t>(w & 0xFFFFFFFFULL);
          partial_.clear();
          if (expected_ == 0) {
            reset();
            return Bytes{};
          }
          state_ = State::kWords;
          return std::nullopt;
        }
        case Value::Kind::kLogic: {
          if (value.as_logic() == Logic::kHigh) {
            partial_.clear();
            state_ = State::kStrobed;
            return std::nullopt;
          }
          if (value.as_logic() == Logic::kLow) {
            // Empty hardware-level transfer (strobeless end edge).
            reset();
            return Bytes{};
          }
          raise(ErrorKind::kProtocol, "X/Z strobe on idle decoder");
        }
        default:
          raise(ErrorKind::kProtocol,
                "unexpected value on idle decoder: " + value.str());
      }
    }

    case State::kWords: {
      const std::uint64_t w = value.as_word();
      for (std::size_t k = 0; k < kWordBytes && partial_.size() < expected_;
           ++k)
        partial_.push_back(std::byte{static_cast<std::uint8_t>(w >> (8 * k))});
      if (partial_.size() >= expected_) {
        Bytes done = std::move(partial_);
        reset();
        return done;
      }
      return std::nullopt;
    }

    case State::kPackets: {
      BytesView chunk;
      const auto header = framing::parse_packet(value.as_packet(), chunk);
      if (header.seq != expected_)
        raise(ErrorKind::kProtocol,
              "packet sequence gap: expected " + std::to_string(expected_) +
                  ", got " + std::to_string(header.seq));
      partial_.insert(partial_.end(), chunk.begin(), chunk.end());
      ++expected_;
      if (header.last) {
        Bytes done = std::move(partial_);
        reset();
        return done;
      }
      return std::nullopt;
    }

    case State::kStrobed: {
      // Awaiting the data byte following a strobe edge.
      const std::uint64_t w = value.as_word();
      if (w > 0xFF)
        raise(ErrorKind::kProtocol, "hardware-level data exceeds one byte");
      partial_.push_back(std::byte{static_cast<std::uint8_t>(w)});
      state_ = State::kBytes;
      return std::nullopt;
    }

    case State::kBytes: {
      if (value.kind() == Value::Kind::kLogic) {
        if (value.as_logic() == Logic::kHigh) {
          state_ = State::kStrobed;
          return std::nullopt;
        }
        if (value.as_logic() == Logic::kLow) {  // end-of-transfer edge
          Bytes done = std::move(partial_);
          reset();
          return done;
        }
      }
      raise(ErrorKind::kProtocol, "expected strobe edge between bytes");
    }

    case State::kWordsExpectLength:
      break;  // retained for image compatibility; never entered
  }
  raise(ErrorKind::kProtocol, "corrupt decoder state");
}

void TransferDecoder::reset() {
  state_ = State::kIdle;
  expected_ = 0;
  partial_.clear();
}

void TransferDecoder::save(serial::OutArchive& ar) const {
  ar.put_varint(static_cast<std::uint64_t>(state_));
  ar.put_varint(expected_);
  ar.put_bytes(partial_);
}

void TransferDecoder::restore(serial::InArchive& ar) {
  state_ = static_cast<State>(ar.get_varint());
  expected_ = static_cast<std::size_t>(ar.get_varint());
  partial_ = ar.get_bytes();
}

}  // namespace pia
