// Simulation events.
//
// An Event is a timestamped value delivery to one component port (or a
// self-wakeup).  The subsystem scheduler dispatches events in (time, seq)
// order; seq is a per-subsystem monotone counter that makes simultaneous
// events deterministic — two runs of the same model always dispatch in the
// same order, which checkpoint/rollback correctness depends on.
#pragma once

#include <compare>
#include <cstdint>

#include "base/ids.hpp"
#include "base/time.hpp"
#include "core/value.hpp"

namespace pia {

/// Index of a port within its owning component (not globally unique).
using PortIndex = std::uint32_t;
inline constexpr PortIndex kNoPort = 0xFFFFFFFFu;

enum class EventKind : std::uint8_t {
  kDeliver,   // value arriving on an input port
  kWake,      // self-scheduled timer
};

struct Event {
  VirtualTime time;
  std::uint64_t seq = 0;          // dispatch tie-breaker, assigned by scheduler
  ComponentId target;
  PortIndex port = kNoPort;       // valid for kDeliver
  EventKind kind = EventKind::kDeliver;
  Value value;
  ComponentId source;             // sender, invalid for external/wake events

  /// Queue ordering: earliest time first, then insertion order.
  [[nodiscard]] friend bool operator<(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void save(serial::OutArchive& ar) const {
    serial::write(ar, time);
    ar.put_varint(seq);
    serial::write(ar, target);
    // kNoPort (0xFFFFFFFF) would cost a 5-byte varint on every kWake event;
    // encode port shifted by one so the sentinel is a single zero byte.
    ar.put_varint(port == kNoPort ? 0 : static_cast<std::uint64_t>(port) + 1);
    ar.put_varint(static_cast<std::uint64_t>(kind));
    value.save(ar);
    serial::write(ar, source);
  }

  /// legacy_port: version-1 recovery images stored the raw port value
  /// (including the 5-byte kNoPort sentinel); newer images use the shifted
  /// encoding above.
  static Event load(serial::InArchive& ar, bool legacy_port = false) {
    Event e;
    e.time = serial::read<VirtualTime>(ar);
    e.seq = ar.get_varint();
    e.target = serial::read_id<ComponentTag>(ar);
    const std::uint64_t raw_port = ar.get_varint();
    if (legacy_port)
      e.port = static_cast<PortIndex>(raw_port);
    else
      e.port = raw_port == 0 ? kNoPort : static_cast<PortIndex>(raw_port - 1);
    e.kind = static_cast<EventKind>(ar.get_varint());
    e.value = Value::load(ar);
    e.source = serial::read_id<ComponentTag>(ar);
    return e;
  }
};

}  // namespace pia
