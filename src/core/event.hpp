// Simulation events.
//
// An Event is a timestamped value delivery to one component port (or a
// self-wakeup).  The subsystem scheduler dispatches events in (time, seq)
// order; seq is a per-subsystem monotone counter that makes simultaneous
// events deterministic — two runs of the same model always dispatch in the
// same order, which checkpoint/rollback correctness depends on.
#pragma once

#include <compare>
#include <cstdint>

#include "base/ids.hpp"
#include "base/time.hpp"
#include "core/value.hpp"

namespace pia {

/// Index of a port within its owning component (not globally unique).
using PortIndex = std::uint32_t;
inline constexpr PortIndex kNoPort = 0xFFFFFFFFu;

enum class EventKind : std::uint8_t {
  kDeliver,   // value arriving on an input port
  kWake,      // self-scheduled timer
};

struct Event {
  VirtualTime time;
  std::uint64_t seq = 0;          // dispatch tie-breaker, assigned by scheduler
  ComponentId target;
  PortIndex port = kNoPort;       // valid for kDeliver
  EventKind kind = EventKind::kDeliver;
  Value value;
  ComponentId source;             // sender, invalid for external/wake events

  /// Queue ordering: earliest time first, then insertion order.
  [[nodiscard]] friend bool operator<(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  void save(serial::OutArchive& ar) const {
    serial::write(ar, time);
    ar.put_varint(seq);
    serial::write(ar, target);
    ar.put_varint(port);
    ar.put_varint(static_cast<std::uint64_t>(kind));
    value.save(ar);
    serial::write(ar, source);
  }

  static Event load(serial::InArchive& ar) {
    Event e;
    e.time = serial::read<VirtualTime>(ar);
    e.seq = ar.get_varint();
    e.target = serial::read_id<ComponentTag>(ar);
    e.port = static_cast<PortIndex>(ar.get_varint());
    e.kind = static_cast<EventKind>(ar.get_varint());
    e.value = Value::load(ar);
    e.source = serial::read_id<ComponentTag>(ar);
    return e;
  }
};

}  // namespace pia
