#include "core/checkpoint.hpp"

#include <algorithm>

#include "base/error.hpp"
#include "base/log.hpp"
#include "serial/archive.hpp"

namespace pia {

CheckpointManager::CheckpointManager(Scheduler& scheduler,
                                     CheckpointPolicy policy)
    : scheduler_(scheduler), policy_(policy) {
  if (policy_ == CheckpointPolicy::kDeferred) {
    PIA_REQUIRE(!scheduler_.on_schedule_hook && !scheduler_.pre_dispatch_hook,
                "scheduler hooks already in use; CheckpointManager(kDeferred) "
                "must own them");
    scheduler_.on_schedule_hook = [this](const Event& e) { on_schedule(e); };
    scheduler_.pre_dispatch_hook = [this](const Event& e) {
      on_pre_dispatch(e);
    };
  }
}

CheckpointManager::~CheckpointManager() {
  if (policy_ == CheckpointPolicy::kDeferred) {
    scheduler_.on_schedule_hook = nullptr;
    scheduler_.pre_dispatch_hook = nullptr;
  }
}

SnapshotId CheckpointManager::request() {
  const SnapshotId id{next_snapshot_++};
  Snapshot snap;
  snap.requested_at = scheduler_.now();

  if (policy_ == CheckpointPolicy::kImmediate) {
    // Handlers run to completion, so right now every component is at a safe
    // point: capture a consistent cut directly.
    snap.queue_snapshot = scheduler_.snapshot_queue();
    snapshots_.emplace(id, std::move(snap));
    Snapshot& stored = snapshots_.at(id);
    for (ComponentId comp : scheduler_.component_ids())
      save_component(stored, comp);
    stored.finalized = true;
  } else {
    PIA_REQUIRE(!armed_.has_value(),
                "a deferred checkpoint request is already outstanding");
    snapshots_.emplace(id, std::move(snap));
    armed_ = id;
    sent_by_unsaved_.clear();
    deliveries_since_request_.clear();
  }
  stats_.checkpoints_taken++;
  return id;
}

void CheckpointManager::on_schedule(const Event& event) {
  if (!armed_) return;
  Snapshot& snap = snapshots_.at(*armed_);
  const bool source_unsaved =
      !event.source.valid() || !snap.images.contains(event.source);
  sent_by_unsaved_.emplace(event.seq, source_unsaved);
}

void CheckpointManager::on_pre_dispatch(const Event& event) {
  if (!armed_) return;
  Snapshot& snap = snapshots_.at(*armed_);

  // Save-before-receive: the target's image must be taken before this
  // delivery mutates it.  This is the rule that prevents the domino effect.
  // (deferred_save_delay_ != 0 deliberately breaks it for the ablation.)
  if (!snap.images.contains(event.target)) {
    const std::uint32_t seen = deliveries_since_request_[event.target];
    if (seen >= deferred_save_delay_) {
      save_component(snap, event.target);
      record_pending_for(snap, event.target);
    } else {
      deliveries_since_request_[event.target] = seen + 1;
    }
  }

  // The event being dispatched has left the queue; if its (restored) sender
  // will not regenerate it, it is channel state and must be recorded so the
  // restore can redeliver it.
  const auto tag = sent_by_unsaved_.find(event.seq);
  const bool needs_recording =
      tag == sent_by_unsaved_.end() /* scheduled before the request */ ||
      tag->second;
  if (needs_recording) {
    snap.channel_events.push_back(event);
    stats_.recorded_channel_events++;
  }

  if (snap.images.size() == scheduler_.component_count()) {
    snap.finalized = true;
    armed_.reset();
    sent_by_unsaved_.clear();
    deliveries_since_request_.clear();
  }
}

void CheckpointManager::save_component(Snapshot& snap, ComponentId id) {
  Bytes image = scheduler_.component(id).save_image();
  StoredImage stored;

  if (incremental_) {
    // Find the most recent older snapshot holding an image for this
    // component and store a delta against it.
    for (auto it = snapshots_.rbegin(); it != snapshots_.rend(); ++it) {
      if (&it->second == &snap) continue;
      if (!it->second.images.contains(id)) continue;
      const Bytes base = materialize_image(it->first, id);
      Bytes encoded = delta::encode(base, image);
      if (encoded.size() < image.size()) {
        stored.is_delta = true;
        stored.delta_base = it->first;
        stored.data = std::move(encoded);
        stats_.incremental_image_bytes += stored.data.size();
      }
      break;
    }
  }
  if (!stored.is_delta) {
    stored.data = std::move(image);
    stats_.full_image_bytes += stored.data.size();
  }
  snap.images.emplace(id, std::move(stored));
}

void CheckpointManager::record_pending_for(Snapshot& snap, ComponentId id) {
  // Undelivered events already queued for this component whose senders were
  // unsaved at send time: restored senders will not resend them.
  for (const Event& e : scheduler_.snapshot_queue()) {
    if (e.target != id) continue;
    const auto tag = sent_by_unsaved_.find(e.seq);
    const bool needs_recording =
        tag == sent_by_unsaved_.end() || tag->second;
    if (needs_recording) {
      snap.channel_events.push_back(e);
      stats_.recorded_channel_events++;
    }
  }
}

Bytes CheckpointManager::materialize_image(SnapshotId id,
                                           ComponentId comp) const {
  const auto it = snapshots_.find(id);
  PIA_REQUIRE(it != snapshots_.end(), "unknown snapshot");
  const auto img = it->second.images.find(comp);
  PIA_REQUIRE(img != it->second.images.end(),
              "snapshot has no image for component");
  if (!img->second.is_delta) return img->second.data;
  const Bytes base = materialize_image(img->second.delta_base, comp);
  return delta::apply(base, img->second.data);
}

void CheckpointManager::finalize(SnapshotId id) {
  auto it = snapshots_.find(id);
  PIA_REQUIRE(it != snapshots_.end(), "unknown snapshot");
  Snapshot& snap = it->second;
  if (snap.finalized) return;
  PIA_CHECK(armed_ == id, "finalize of a non-armed deferred snapshot");
  for (ComponentId comp : scheduler_.component_ids()) {
    if (!snap.images.contains(comp)) {
      save_component(snap, comp);
      record_pending_for(snap, comp);
    }
  }
  snap.finalized = true;
  armed_.reset();
  sent_by_unsaved_.clear();
}

bool CheckpointManager::complete(SnapshotId id) const {
  const auto it = snapshots_.find(id);
  PIA_REQUIRE(it != snapshots_.end(), "unknown snapshot");
  return it->second.finalized;
}

void CheckpointManager::restore(SnapshotId id) {
  auto it = snapshots_.find(id);
  PIA_REQUIRE(it != snapshots_.end(), "unknown snapshot");
  if (!it->second.finalized) finalize(id);
  Snapshot& snap = it->second;

  // 1. Component images.
  for (ComponentId comp : scheduler_.component_ids())
    scheduler_.component(comp).restore_image(materialize_image(id, comp));

  // 2. Event queue: recorded channel state (plus, for immediate snapshots,
  //    the full queue as captured).  Original seq numbers are kept so that
  //    re-execution dispatches in the original deterministic order.
  scheduler_.replace_queue(snapshot_events(id));

  // 3. Subsystem time: exactly the capture point.  Component images hold
  //    state as of the request, so the clock must say so too — deriving it
  //    from min(component local times) under-shoots whenever some component
  //    sat idle before the snapshot, and a subsystem whose clock trails its
  //    state accepts events *behind* that state as if they were fresh (the
  //    optimistic straggler check compares against now()).
  scheduler_.set_now(snap.requested_at);

  // A restore invalidates any armed later request.
  if (armed_ && *armed_ != id) {
    snapshots_.erase(*armed_);
    armed_.reset();
    sent_by_unsaved_.clear();
  }
  // Snapshots later than the restore point describe a future that no longer
  // exists.
  snapshots_.erase(snapshots_.upper_bound(id), snapshots_.end());

  stats_.restores++;
  PIA_DEBUG("restored snapshot " << id << " at " << scheduler_.now());
}

std::vector<Event> CheckpointManager::snapshot_events(SnapshotId id) const {
  const auto it = snapshots_.find(id);
  PIA_REQUIRE(it != snapshots_.end(), "unknown snapshot");
  const Snapshot& snap = it->second;
  std::vector<Event> queue = snap.queue_snapshot;
  queue.insert(queue.end(), snap.channel_events.begin(),
               snap.channel_events.end());
  std::sort(queue.begin(), queue.end(),
            [](const Event& a, const Event& b) { return a.seq < b.seq; });
  queue.erase(std::unique(queue.begin(), queue.end(),
                          [](const Event& a, const Event& b) {
                            return a.seq == b.seq;
                          }),
              queue.end());
  return queue;
}

SnapshotId CheckpointManager::restore_latest() {
  PIA_REQUIRE(!snapshots_.empty(), "no checkpoint to restore");
  const SnapshotId id = snapshots_.rbegin()->first;
  restore(id);
  return id;
}

std::optional<SnapshotId> CheckpointManager::latest() const {
  if (snapshots_.empty()) return std::nullopt;
  return snapshots_.rbegin()->first;
}

std::optional<SnapshotId> CheckpointManager::latest_at_or_before(
    VirtualTime t) const {
  std::optional<SnapshotId> best;
  for (const auto& [id, snap] : snapshots_) {
    if (snap.requested_at <= t) best = id;
    else break;  // snapshots_ is ordered by id, and ids advance with time
  }
  return best;
}

VirtualTime CheckpointManager::snapshot_time(SnapshotId id) const {
  const auto it = snapshots_.find(id);
  PIA_REQUIRE(it != snapshots_.end(), "unknown snapshot");
  return it->second.requested_at;
}

std::size_t CheckpointManager::stored_bytes(SnapshotId id) const {
  const auto it = snapshots_.find(id);
  PIA_REQUIRE(it != snapshots_.end(), "unknown snapshot");
  std::size_t total = 0;
  for (const auto& [comp, img] : it->second.images) total += img.data.size();
  return total;
}

void CheckpointManager::discard_before(SnapshotId id) {
  // Deltas may chain backwards; materialize any snapshot >= id whose delta
  // base would be collected.
  for (auto it = snapshots_.lower_bound(id); it != snapshots_.end(); ++it) {
    for (auto& [comp, img] : it->second.images) {
      if (img.is_delta && img.delta_base < id) {
        Bytes full = materialize_image(it->first, comp);
        img.is_delta = false;
        img.data = std::move(full);
      }
    }
  }
  snapshots_.erase(snapshots_.begin(), snapshots_.lower_bound(id));
}

void CheckpointManager::discard_all() {
  snapshots_.clear();
  armed_.reset();
  sent_by_unsaved_.clear();
}

namespace delta {

Bytes encode(BytesView base, BytesView target) {
  serial::OutArchive ar;
  // Runs of differing bytes between base and target (over the common
  // prefix), then the target tail beyond the base length.
  const std::size_t common = std::min(base.size(), target.size());
  std::vector<std::pair<std::size_t, std::size_t>> runs;  // offset, length
  std::size_t i = 0;
  while (i < common) {
    if (base[i] == target[i]) {
      ++i;
      continue;
    }
    const std::size_t start = i;
    // Merge gaps shorter than 8 bytes into one run: each run costs ~2-4
    // bytes of header, so tiny gaps are cheaper to include than to skip.
    std::size_t last_diff = i;
    while (i < common && i - last_diff < 8) {
      if (base[i] != target[i]) last_diff = i;
      ++i;
    }
    runs.emplace_back(start, last_diff + 1 - start);
  }
  ar.put_varint(runs.size());
  for (const auto& [offset, length] : runs) {
    ar.put_varint(offset);
    ar.put_varint(length);
    ar.put_raw(target.subspan(offset, length));
  }
  ar.put_varint(target.size());
  if (target.size() > base.size())
    ar.put_raw(target.subspan(base.size()));
  return std::move(ar).take();
}

Bytes apply(BytesView base, BytesView delta_bytes) {
  serial::InArchive ar(delta_bytes);
  Bytes out(base.begin(), base.end());
  const std::uint64_t run_count = ar.get_varint();
  for (std::uint64_t r = 0; r < run_count; ++r) {
    const std::uint64_t offset = ar.get_varint();
    const std::uint64_t length = ar.get_varint();
    if (offset + length > out.size())
      raise(ErrorKind::kSerialization, "delta run beyond base image");
    for (std::uint64_t k = 0; k < length; ++k)
      out[offset + k] = static_cast<std::byte>(ar.get_u8());
  }
  const std::uint64_t target_size = ar.get_varint();
  if (target_size < out.size()) {
    out.resize(target_size);
  } else if (target_size > out.size()) {
    const std::size_t tail = target_size - out.size();
    for (std::size_t k = 0; k < tail; ++k)
      out.push_back(static_cast<std::byte>(ar.get_u8()));
  }
  return out;
}

}  // namespace delta
}  // namespace pia
