// Runlevels — dynamically switchable levels of communication detail
// (paper §2.1.3).
//
// A runlevel names how much detail a component renders: "hardwareLevel"
// toggles individual wires, "wordLevel" passes 4-byte words, "packetLevel"
// passes 1 KB packets, "transactionLevel" passes whole transfers.  Changes
// are triggered by (a) the user/API, (b) *switchpoints* — conditions over
// component local times loaded from a run-control script — or (c) imperative
// switch statements inside component code.  A switch takes effect only at a
// safe point, i.e. where the interface state is stable and consistent.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "base/time.hpp"

namespace pia {

struct RunLevel {
  std::string name = "default";
  /// Relative detail: higher = more detailed = more events per transfer.
  int detail = 0;

  friend bool operator==(const RunLevel&, const RunLevel&) = default;
};

/// The standard levels used by the built-in protocol library.
namespace runlevels {
inline const RunLevel kHardware{"hardwareLevel", 3};     // wire edges
inline const RunLevel kWord{"wordLevel", 2};             // 4-byte words
inline const RunLevel kPacket{"packetLevel", 1};         // 1 KB packets
inline const RunLevel kTransaction{"transactionLevel", 0};  // whole transfers
}  // namespace runlevels

/// Resolves a component name to its current local time.
using LocalTimeView =
    std::function<VirtualTime(const std::string& component)>;

/// Boolean expression over component local times:
///   leaf:  <component>.time >= T
///   nodes: conjunction / disjunction (paper: "the condition can include
///          conjuncts and disjuncts of conditions across multiple
///          components").
class SwitchCondition {
 public:
  static SwitchCondition at_least(std::string component, VirtualTime t);
  static SwitchCondition conj(SwitchCondition lhs, SwitchCondition rhs);
  static SwitchCondition disj(SwitchCondition lhs, SwitchCondition rhs);

  [[nodiscard]] bool eval(const LocalTimeView& times) const;
  [[nodiscard]] std::string str() const;

  /// Component names referenced anywhere in the expression.
  [[nodiscard]] std::vector<std::string> referenced_components() const;

 private:
  enum class Op { kLeaf, kAnd, kOr };

  Op op_ = Op::kLeaf;
  std::string component_;
  VirtualTime threshold_;
  std::shared_ptr<const SwitchCondition> lhs_;
  std::shared_ptr<const SwitchCondition> rhs_;
};

/// One `component -> runlevel` assignment fired by a switchpoint.
struct RunLevelAction {
  std::string component;
  RunLevel level;
};

/// A switchpoint: "as soon as the condition holds, apply the actions".
/// The paper's example —
///   I2CComponent.time >= 67: I2CComponent->hardwareLevel,
///                            VidCamComponent->byteLevel
/// — notes the condition may reference only some of the affected components;
/// the others switch at whatever their local time happens to be.
struct Switchpoint {
  SwitchCondition condition;
  std::vector<RunLevelAction> actions;
  bool fired = false;
};

}  // namespace pia
