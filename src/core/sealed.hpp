// Intellectual-property protection (paper §1).
//
// "It should facilitate the inclusion of intellectual property (IP), such as
// algorithms, new processors, special purpose ICs, etc. without compromising
// the internals of the IP" — the paper cites Viper's encrypted,
// unsynthesizable models.  This module provides the same capability pattern:
// a vendor ships a SealedBlob — model parameters encrypted under a key — and
// a SealedComponent wrapper that unseals them only transiently, inside the
// vendor's own factory, to construct the inner model.  The simulation sees
// ports and behaviour; it can never read the parameters back out.
//
// The cipher is a keyed XOR keystream (SplitMix64 over the key), which
// stands in for whatever commercial scheme a vendor would use; the
// framework-facing API is what this reproduction demonstrates.
#pragma once

#include <memory>
#include <string>

#include "base/bytes.hpp"
#include "core/component.hpp"

namespace pia {

class SealedBlob {
 public:
  /// Vendor side: seal plaintext parameters under `key`.
  static SealedBlob seal(BytesView plaintext, const std::string& key);

  /// Wrap already-encrypted bytes (e.g. loaded from a vendor file).
  static SealedBlob from_ciphertext(Bytes ciphertext);

  [[nodiscard]] const Bytes& ciphertext() const { return ciphertext_; }

  /// Unseal with `key`.  A wrong key yields garbage that fails the embedded
  /// integrity check and throws Error{kState} — it never yields plaintext.
  [[nodiscard]] Bytes unseal(const std::string& key) const;

 private:
  SealedBlob() = default;
  Bytes ciphertext_;
};

/// A component whose behaviour is supplied by a vendor factory taking the
/// unsealed parameters.  The wrapper forwards ports and events to the inner
/// model and exposes nothing else; checkpoint images contain the *sealed*
/// blob, so a saved simulation does not leak IP either.
class SealedComponent : public Component {
 public:
  using InnerFactory = std::function<std::unique_ptr<Component>(
      const std::string& instance, BytesView parameters)>;

  SealedComponent(std::string name, SealedBlob blob, std::string key,
                  InnerFactory factory);
  ~SealedComponent() override;

  void on_init() override;
  void on_receive(PortIndex port, const Value& value) override;
  void on_wake() override;
  [[nodiscard]] bool at_safe_point() const override;
  void save_state(serial::OutArchive& ar) const override;
  void restore_state(serial::InArchive& ar) override;

  [[nodiscard]] const Component& inner() const { return *inner_; }
  [[nodiscard]] Component& inner() { return *inner_; }

  // Internal plumbing used by the inner model's context shim; not part of
  // the user API.
  void forward_send(PortIndex port, Value value, VirtualTime extra_delay);
  void forward_send_at(PortIndex port, Value value, VirtualTime when);
  void forward_wake(VirtualTime when);
  void forward_runlevel(const RunLevel& level);

 private:
  void sync_in();   // push the wrapper's local time into the inner model
  void sync_out();  // pull computation time accrued by the inner model

  SealedBlob blob_;
  std::unique_ptr<Component> inner_;
  std::unique_ptr<ComponentContext> shim_;
};

}  // namespace pia
