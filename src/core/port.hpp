// Ports and nets.
//
// From the designer's point of view (paper §2.1) a Pia system consists of
// components, interfaces, ports and nets: interfaces connect components to
// ports, and ports are interconnected through nets.  A net fans a written
// value out to every attached input port.  Nets are the only user object
// that may be split across subsystems; the split machinery (hidden ports and
// channel components, Fig. 2) lives in pia_dist and uses the `hidden` flag
// declared here.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/ids.hpp"
#include "base/time.hpp"
#include "core/event.hpp"

namespace pia {

enum class PortDir : std::uint8_t { kIn, kOut, kInOut };

/// Synchronization contract of an input port (paper §2.1.1).
///
/// kSynchronous: the component has a distinct receive mode; a delivery whose
///   timestamp is earlier than the component's local time is a consistency
///   violation (the component already computed past that instant).
/// kAsynchronous: the port behaves like a polled latch / interrupt line; the
///   value is accepted at the component's current local time.  Under the
///   optimistic assumption the kernel can dynamically promote an
///   asynchronous location to synchronous and rewind (see pia_proc memory).
enum class PortSync : std::uint8_t { kSynchronous, kAsynchronous };

struct Port {
  std::string name;
  PortDir dir = PortDir::kIn;
  PortSync sync = PortSync::kSynchronous;
  NetId net;             // invalid until wired
  bool hidden = false;   // true for channel-component proxy ports (Fig. 2)
};

/// One endpoint of a net: (component, port index).
struct Endpoint {
  ComponentId component;
  PortIndex port = kNoPort;

  friend bool operator==(const Endpoint&, const Endpoint&) = default;
};

struct Net {
  NetId id;
  std::string name;
  VirtualTime delay = VirtualTime::zero();  // propagation delay
  std::vector<Endpoint> drivers;            // attached output ports
  std::vector<Endpoint> sinks;              // attached input ports
  Value last_value;                         // most recent value driven
  VirtualTime last_change = VirtualTime::zero();
};

}  // namespace pia
