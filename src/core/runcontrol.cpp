#include "core/runcontrol.hpp"

#include <cctype>
#include <optional>
#include <sstream>

#include "base/error.hpp"

namespace pia {
namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokKind {
  kIdent, kInteger, kWhen, kColon, kComma, kArrow, kAndAnd, kOrOr,
  kGreaterEqual, kDot, kLParen, kRParen, kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  std::size_t column = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& line) : line_(line) { advance(); }

  [[nodiscard]] const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  Token expect(TokKind kind, const char* what) {
    if (current_.kind != kind) {
      raise(ErrorKind::kInvalidArgument,
            "run-control parse error at column " +
                std::to_string(current_.column) + ": expected " + what +
                ", found '" + current_.text + "'");
    }
    return take();
  }

 private:
  void advance() {
    while (pos_ < line_.size() &&
           std::isspace(static_cast<unsigned char>(line_[pos_])))
      ++pos_;
    current_.column = pos_ + 1;
    if (pos_ >= line_.size()) {
      current_ = {TokKind::kEnd, "<end>", pos_ + 1};
      return;
    }
    const char c = line_[pos_];
    auto two = [&](char a, char b, TokKind kind, const char* text) {
      if (c == a && pos_ + 1 < line_.size() && line_[pos_ + 1] == b) {
        current_ = {kind, text, pos_ + 1};
        pos_ += 2;
        return true;
      }
      return false;
    };
    if (two('-', '>', TokKind::kArrow, "->")) return;
    if (two('&', '&', TokKind::kAndAnd, "&&")) return;
    if (two('|', '|', TokKind::kOrOr, "||")) return;
    if (two('>', '=', TokKind::kGreaterEqual, ">=")) return;
    switch (c) {
      case ':': current_ = {TokKind::kColon, ":", pos_ + 1}; ++pos_; return;
      case ',': current_ = {TokKind::kComma, ",", pos_ + 1}; ++pos_; return;
      case '.': current_ = {TokKind::kDot, ".", pos_ + 1}; ++pos_; return;
      case '(': current_ = {TokKind::kLParen, "(", pos_ + 1}; ++pos_; return;
      case ')': current_ = {TokKind::kRParen, ")", pos_ + 1}; ++pos_; return;
      default: break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t end = pos_;
      while (end < line_.size() &&
             std::isdigit(static_cast<unsigned char>(line_[end])))
        ++end;
      current_ = {TokKind::kInteger, line_.substr(pos_, end - pos_), pos_ + 1};
      pos_ = end;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t end = pos_;
      while (end < line_.size() &&
             (std::isalnum(static_cast<unsigned char>(line_[end])) ||
              line_[end] == '_'))
        ++end;
      std::string word = line_.substr(pos_, end - pos_);
      pos_ = end;
      if (word == "when") {
        current_ = {TokKind::kWhen, std::move(word), pos_ + 1};
      } else {
        current_ = {TokKind::kIdent, std::move(word), pos_ + 1};
      }
      return;
    }
    raise(ErrorKind::kInvalidArgument,
          std::string("run-control lex error at column ") +
              std::to_string(pos_ + 1) + ": unexpected character '" + c + "'");
  }

  const std::string& line_;
  std::size_t pos_ = 0;
  Token current_{TokKind::kEnd, "", 0};
};

// ---------------------------------------------------------------------------
// Recursive-descent condition parser
// ---------------------------------------------------------------------------

SwitchCondition parse_or(Lexer& lex);

SwitchCondition parse_leaf(Lexer& lex) {
  if (lex.peek().kind == TokKind::kLParen) {
    lex.take();
    SwitchCondition inner = parse_or(lex);
    lex.expect(TokKind::kRParen, "')'");
    return inner;
  }
  const Token comp = lex.expect(TokKind::kIdent, "component name");
  lex.expect(TokKind::kDot, "'.'");
  const Token field = lex.expect(TokKind::kIdent, "'time'");
  if (field.text != "time") {
    raise(ErrorKind::kInvalidArgument,
          "run-control parse error: only '.time' conditions are supported, "
          "found '." + field.text + "'");
  }
  lex.expect(TokKind::kGreaterEqual, "'>='");
  const Token value = lex.expect(TokKind::kInteger, "integer time");
  return SwitchCondition::at_least(comp.text,
                                   VirtualTime{std::stoll(value.text)});
}

SwitchCondition parse_and(Lexer& lex) {
  SwitchCondition lhs = parse_leaf(lex);
  while (lex.peek().kind == TokKind::kAndAnd) {
    lex.take();
    lhs = SwitchCondition::conj(std::move(lhs), parse_leaf(lex));
  }
  return lhs;
}

SwitchCondition parse_or(Lexer& lex) {
  SwitchCondition lhs = parse_and(lex);
  while (lex.peek().kind == TokKind::kOrOr) {
    lex.take();
    lhs = SwitchCondition::disj(std::move(lhs), parse_and(lex));
  }
  return lhs;
}

}  // namespace

RunControlParser::RunControlParser() {
  define_runlevel(runlevels::kHardware);
  define_runlevel(runlevels::kWord);
  define_runlevel(runlevels::kPacket);
  define_runlevel(runlevels::kTransaction);
  // The paper's WubbleU switchpoint uses "byteLevel"; alias it between word
  // and hardware detail.
  define_runlevel(RunLevel{"byteLevel", 2});
}

void RunControlParser::define_runlevel(const RunLevel& level) {
  runlevels_[level.name] = level;
}

std::vector<Switchpoint> RunControlParser::parse(
    const std::string& script) const {
  std::vector<Switchpoint> out;
  std::istringstream in(script);
  std::string line;
  std::string pending;  // statements may wrap lines until ':'+actions end
  while (std::getline(in, line)) {
    if (const auto hash = line.find('#'); hash != std::string::npos)
      line.erase(hash);
    const auto is_blank = line.find_first_not_of(" \t\r") == std::string::npos;
    if (is_blank) continue;
    // A line starting with "when" begins a new statement; otherwise it
    // continues the previous one.
    const auto first = line.find_first_not_of(" \t");
    if (line.compare(first, 4, "when") == 0 && !pending.empty()) {
      out.push_back(parse_statement(pending));
      pending.clear();
    }
    pending += " " + line;
  }
  if (!pending.empty()) out.push_back(parse_statement(pending));
  return out;
}

Switchpoint RunControlParser::parse_statement(const std::string& line) const {
  Lexer lex(line);
  lex.expect(TokKind::kWhen, "'when'");
  Switchpoint sp{.condition = parse_or(lex), .actions = {}, .fired = false};
  lex.expect(TokKind::kColon, "':'");
  for (;;) {
    const Token comp = lex.expect(TokKind::kIdent, "component name");
    lex.expect(TokKind::kArrow, "'->'");
    const Token level = lex.expect(TokKind::kIdent, "runlevel name");
    const auto it = runlevels_.find(level.text);
    if (it == runlevels_.end()) {
      raise(ErrorKind::kNotFound,
            "run-control script names unknown runlevel '" + level.text + "'");
    }
    sp.actions.push_back(RunLevelAction{comp.text, it->second});
    if (lex.peek().kind != TokKind::kComma) break;
    lex.take();
  }
  lex.expect(TokKind::kEnd, "end of statement");
  PIA_REQUIRE(!sp.actions.empty(), "switchpoint with no actions");
  return sp;
}

}  // namespace pia
