// Signal values carried by nets.
//
// Pia renders the same logical communication at several detail levels
// (paper §2.1.3): a transfer can appear as individual bus wires toggling
// (Logic), as a word placed on a bus (Word), as a 1 KB packet (Packet) or as
// a whole high-level transaction (Token).  The Value type is the union of
// those representations; which one a component emits depends on its current
// runlevel.
//
// Values sit inside every queued Event, so their footprint and allocation
// behavior are on the scheduler's hot path.  Storage is a 24-byte tagged
// union with a small-buffer path: Logic and Word are always inline, and
// Packet/Token payloads up to kInlineCapacity bytes live in the object
// itself — only larger payloads touch the heap.  Word-level channel traffic
// (a wrapped word is ~a dozen bytes) therefore never allocates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "base/bytes.hpp"
#include "serial/archive.hpp"

namespace pia {

/// Four-state logic for wire-level detail.
enum class Logic : std::uint8_t {
  kLow = 0,
  kHigh = 1,
  kUnknown = 2,   // X
  kHighZ = 3,     // Z
};

[[nodiscard]] const char* to_string(Logic logic);

class Value {
 public:
  enum class Kind : std::uint8_t { kVoid, kLogic, kWord, kPacket, kToken };

  /// Packet/Token payloads at most this long are stored inline.
  static constexpr std::size_t kInlineCapacity = 14;

  Value() = default;
  /* implicit */ Value(Logic logic) : kind_(Kind::kLogic) {
    store_.logic = logic;
  }
  /* implicit */ Value(std::uint64_t word) : kind_(Kind::kWord) {
    store_.word = word;
  }
  /* implicit */ Value(Bytes packet);
  /// Named high-level transaction (e.g. "DMA_COMPLETE").
  static Value token(std::string_view name);
  /// Packet built from a view — inline when small, one copy either way.
  static Value packet(BytesView bytes);

  Value(const Value& other);
  Value(Value&& other) noexcept;
  Value& operator=(const Value& other);
  Value& operator=(Value&& other) noexcept;
  ~Value() { release(); }

  [[nodiscard]] Kind kind() const { return kind_; }

  [[nodiscard]] bool is_void() const { return kind_ == Kind::kVoid; }

  [[nodiscard]] Logic as_logic() const;
  [[nodiscard]] std::uint64_t as_word() const;
  /// Views into the value — valid while this Value is alive and unmodified.
  [[nodiscard]] BytesView as_packet() const;
  [[nodiscard]] std::string_view as_token() const;

  /// Payload size in modeled bytes — what a channel at this detail level
  /// puts on the wire.  Logic = 0 (a single wire edge), Word = 4 (the paper
  /// passes four-byte words), Packet = its length, Token = 0.
  [[nodiscard]] std::size_t modeled_bytes() const;

  [[nodiscard]] std::string str() const;

  bool operator==(const Value& other) const;

  void save(serial::OutArchive& ar) const;
  static Value load(serial::InArchive& ar);

 private:
  // small_ holds the inline payload length for kPacket/kToken, or kSpilled
  // when the payload lives in *store_.heap.  Unused for other kinds.
  static constexpr std::uint8_t kSpilled = 0xFF;

  [[nodiscard]] bool has_payload() const {
    return kind_ == Kind::kPacket || kind_ == Kind::kToken;
  }
  [[nodiscard]] bool spilled() const { return small_ == kSpilled; }
  [[nodiscard]] BytesView payload() const {
    return spilled() ? BytesView{*store_.heap}
                     : BytesView{store_.inline_bytes, small_};
  }
  void set_payload(BytesView bytes);
  void adopt_payload(Bytes&& bytes);
  void release() {
    if (has_payload() && spilled()) delete store_.heap;
  }

  Kind kind_ = Kind::kVoid;
  std::uint8_t small_ = 0;
  union Store {
    Logic logic;
    std::uint64_t word;
    std::byte inline_bytes[kInlineCapacity];
    Bytes* heap;
  } store_{};
};

static_assert(sizeof(Value) == 24, "Value small-buffer layout regressed");

}  // namespace pia
