// Signal values carried by nets.
//
// Pia renders the same logical communication at several detail levels
// (paper §2.1.3): a transfer can appear as individual bus wires toggling
// (Logic), as a word placed on a bus (Word), as a 1 KB packet (Packet) or as
// a whole high-level transaction (Token).  The Value type is the union of
// those representations; which one a component emits depends on its current
// runlevel.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "base/bytes.hpp"
#include "serial/archive.hpp"

namespace pia {

/// Four-state logic for wire-level detail.
enum class Logic : std::uint8_t {
  kLow = 0,
  kHigh = 1,
  kUnknown = 2,   // X
  kHighZ = 3,     // Z
};

[[nodiscard]] const char* to_string(Logic logic);

class Value {
 public:
  enum class Kind : std::uint8_t { kVoid, kLogic, kWord, kPacket, kToken };

  Value() = default;
  /* implicit */ Value(Logic logic) : data_(logic) {}
  /* implicit */ Value(std::uint64_t word) : data_(word) {}
  /* implicit */ Value(Bytes packet) : data_(std::move(packet)) {}
  /// Named high-level transaction (e.g. "DMA_COMPLETE").
  static Value token(std::string name) {
    Value v;
    v.data_ = Token{std::move(name)};
    return v;
  }

  [[nodiscard]] Kind kind() const {
    return static_cast<Kind>(data_.index());
  }

  [[nodiscard]] bool is_void() const { return kind() == Kind::kVoid; }

  [[nodiscard]] Logic as_logic() const;
  [[nodiscard]] std::uint64_t as_word() const;
  [[nodiscard]] const Bytes& as_packet() const;
  [[nodiscard]] const std::string& as_token() const;

  /// Payload size in modeled bytes — what a channel at this detail level
  /// puts on the wire.  Logic = 0 (a single wire edge), Word = 4 (the paper
  /// passes four-byte words), Packet = its length, Token = 0.
  [[nodiscard]] std::size_t modeled_bytes() const;

  [[nodiscard]] std::string str() const;

  bool operator==(const Value& other) const = default;

  void save(serial::OutArchive& ar) const;
  static Value load(serial::InArchive& ar);

 private:
  struct Void {
    bool operator==(const Void&) const = default;
  };
  struct Token {
    std::string name;
    bool operator==(const Token&) const = default;
  };
  std::variant<Void, Logic, std::uint64_t, Bytes, Token> data_;
};

}  // namespace pia
