#include "core/scheduler.hpp"

#include <algorithm>
#include <thread>

#include "base/error.hpp"
#include "base/log.hpp"

namespace pia {
namespace {

std::uint64_t this_thread_token() {
  const std::uint64_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return h == 0 ? 1 : h;  // 0 is reserved for "unconfined"
}

}  // namespace

Scheduler::ConfinementGuard::ConfinementGuard(Scheduler& scheduler)
    : scheduler_(scheduler) {
  const std::uint64_t self = this_thread_token();
  previous_ = scheduler_.confined_to_.exchange(self,
                                               std::memory_order_acq_rel);
  if (previous_ != 0 && previous_ != self)
    raise(ErrorKind::kConsistency,
          "scheduler '" + scheduler_.name_ +
              "' confined by another thread (concurrent slice?)");
}

Scheduler::ConfinementGuard::~ConfinementGuard() {
  scheduler_.confined_to_.store(previous_, std::memory_order_release);
}

void Scheduler::assert_confined(const char* operation) const {
  const std::uint64_t owner = confined_to_.load(std::memory_order_acquire);
  if (owner != 0 && owner != this_thread_token())
    raise(ErrorKind::kConsistency,
          std::string(operation) + " on scheduler '" + name_ +
              "' from a thread that does not hold its confinement");
}

Scheduler::Scheduler(std::string name)
    : name_(std::move(name)), trace_(name_, obs::default_trace_capacity()) {}

ComponentId Scheduler::add(std::unique_ptr<Component> component) {
  PIA_REQUIRE(component != nullptr, "add(nullptr) on scheduler " + name_);
  PIA_REQUIRE(!components_by_name_.contains(component->name()),
              "duplicate component name '" + component->name() + "'");
  const ComponentId id{static_cast<std::uint32_t>(components_.size())};
  component->id_ = id;
  component->context_ = this;
  components_by_name_.emplace(component->name(), id);
  components_.push_back(std::move(component));
  return id;
}

Component& Scheduler::component(ComponentId id) {
  PIA_REQUIRE(id.valid() && id.value() < components_.size(),
              "bad component id");
  return *components_[id.value()];
}

const Component& Scheduler::component(ComponentId id) const {
  PIA_REQUIRE(id.valid() && id.value() < components_.size(),
              "bad component id");
  return *components_[id.value()];
}

Component* Scheduler::find_component(const std::string& name) {
  const auto it = components_by_name_.find(name);
  return it == components_by_name_.end() ? nullptr
                                         : components_[it->second.value()].get();
}

ComponentId Scheduler::component_id(const std::string& name) const {
  const auto it = components_by_name_.find(name);
  if (it == components_by_name_.end())
    raise(ErrorKind::kNotFound, "no component named '" + name + "'");
  return it->second;
}

std::vector<ComponentId> Scheduler::component_ids() const {
  std::vector<ComponentId> out;
  out.reserve(components_.size());
  for (std::uint32_t i = 0; i < components_.size(); ++i)
    out.emplace_back(i);
  return out;
}

NetId Scheduler::make_net(std::string net_name, VirtualTime delay) {
  PIA_REQUIRE(!nets_by_name_.contains(net_name),
              "duplicate net name '" + net_name + "'");
  const NetId id{static_cast<std::uint32_t>(nets_.size())};
  nets_.push_back(Net{.id = id, .name = net_name, .delay = delay});
  nets_by_name_.emplace(std::move(net_name), id);
  return id;
}

void Scheduler::attach(NetId net_id_arg, ComponentId component_id_arg,
                       std::string_view port_name) {
  Net& n = net(net_id_arg);
  Component& c = component(component_id_arg);
  const PortIndex pi = c.find_port(port_name);
  Port& p = c.ports_[pi];
  PIA_REQUIRE(!p.net.valid(), "port '" + std::string(port_name) + "' of '" +
                                  c.name() + "' is already wired");
  p.net = n.id;
  const Endpoint ep{.component = component_id_arg, .port = pi};
  if (p.dir == PortDir::kOut || p.dir == PortDir::kInOut)
    n.drivers.push_back(ep);
  if (p.dir == PortDir::kIn || p.dir == PortDir::kInOut)
    n.sinks.push_back(ep);
}

NetId Scheduler::connect(ComponentId a, std::string_view out_port,
                         ComponentId b, std::string_view in_port,
                         VirtualTime delay) {
  const std::string net_name = component(a).name() + "." +
                               std::string(out_port) + "->" +
                               component(b).name() + "." + std::string(in_port);
  const NetId id = make_net(net_name, delay);
  attach(id, a, out_port);
  attach(id, b, in_port);
  return id;
}

Net& Scheduler::net(NetId id) {
  PIA_REQUIRE(id.valid() && id.value() < nets_.size(), "bad net id");
  return nets_[id.value()];
}

const Net& Scheduler::net(NetId id) const {
  PIA_REQUIRE(id.valid() && id.value() < nets_.size(), "bad net id");
  return nets_[id.value()];
}

NetId Scheduler::net_id(const std::string& net_name) const {
  const auto it = nets_by_name_.find(net_name);
  if (it == nets_by_name_.end())
    raise(ErrorKind::kNotFound, "no net named '" + net_name + "'");
  return it->second;
}

std::vector<NetId> Scheduler::net_ids() const {
  std::vector<NetId> out;
  out.reserve(nets_.size());
  for (std::uint32_t i = 0; i < nets_.size(); ++i) out.emplace_back(i);
  return out;
}

void Scheduler::init() {
  PIA_REQUIRE(!initialized_, "scheduler '" + name_ + "' already initialized");
  initialized_ = true;
  for (auto& c : components_) c->on_init();
}

VirtualTime Scheduler::next_event_time() const {
  return queue_.empty() ? VirtualTime::infinity() : queue_.top().time;
}

bool Scheduler::step() {
  assert_confined("step()");
  if (queue_.empty()) return false;
  const Event event = queue_.pop();

  PIA_CHECK(event.time >= now_,
            "event queue yielded an event in the past on " + name_);
  now_ = event.time;

  PIA_OBS_TRACE(trace_, obs::TraceKind::kDispatch, event.time,
                event.target.value(), static_cast<std::uint64_t>(event.kind));
  if (pre_dispatch_hook) pre_dispatch_hook(event);
  dispatch(event);

  evaluate_switchpoints();
  apply_pending_runlevels();
  return true;
}

std::uint64_t Scheduler::run_until(VirtualTime t) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    step();
    ++count;
  }
  return count;
}

std::uint64_t Scheduler::run(std::uint64_t max_events) {
  std::uint64_t count = 0;
  while (count < max_events && step()) ++count;
  return count;
}

std::uint64_t Scheduler::inject(Event event) {
  assert_confined("inject()");
  if (event.time < now_) {
    if (straggler_handler && straggler_handler(event)) return 0;
    raise(ErrorKind::kConsistency,
          "straggler event at " + event.time.str() + " injected into '" +
              name_ + "' at subsystem time " + now_.str());
  }
  return schedule(std::move(event));
}

std::uint64_t Scheduler::schedule(Event event) {
  const std::uint64_t seq = event.seq = next_seq_++;
  stats_.events_scheduled++;
  if (on_schedule_hook) on_schedule_hook(event);
  queue_.push(std::move(event));
  return seq;
}

std::uint64_t Scheduler::dispatches(ComponentId id) const {
  return id.value() < dispatch_counts_.size() ? dispatch_counts_[id.value()]
                                              : 0;
}

void Scheduler::dispatch(const Event& event) {
  Component& target = component(event.target);
  stats_.events_dispatched++;
  if (dispatch_counts_.size() <= event.target.value())
    dispatch_counts_.resize(components_.size(), 0);
  dispatch_counts_[event.target.value()]++;

  target.delivery_time_ = event.time;

  if (event.kind == EventKind::kWake) {
    stats_.wakes_dispatched++;
    target.local_time_ = max(target.local_time_, event.time);
    target.on_wake();
    return;
  }

  const Port& p = target.port(event.port);
  if (p.sync == PortSync::kSynchronous && event.time < target.local_time()) {
    // The component already computed past this instant: a consistency
    // violation (paper §2.1.1).  The handler typically restores a
    // checkpoint and re-executes more conservatively.
    stats_.violations++;
    if (violation_handler && violation_handler(event, target)) return;
    raise(ErrorKind::kConsistency,
          "synchronous delivery at " + event.time.str() + " to '" +
              target.name() + "' whose local time is " +
              target.local_time().str() + " [sched=" + name_ + " now=" +
              now_.str() + " port=" + std::to_string(event.port) + " seq=" +
              std::to_string(event.seq) + "]");
  }
  if (p.sync == PortSync::kSynchronous) {
    target.local_time_ = event.time;
  } else {
    // Asynchronous (interrupt-like) delivery is accepted at whichever local
    // time the component has reached, never moving it backwards.
    target.local_time_ = max(target.local_time_, event.time);
  }
  target.on_receive(event.port, event.value);
}

void Scheduler::context_send(Component& component_ref, PortIndex port,
                             Value value, VirtualTime extra_delay) {
  const Port& p = component_ref.port(port);
  PIA_REQUIRE(p.dir != PortDir::kIn,
              "send() on input port '" + p.name + "' of '" +
                  component_ref.name() + "'");
  PIA_REQUIRE(p.net.valid(), "send() on unwired port '" + p.name + "' of '" +
                                 component_ref.name() + "'");
  Net& n = net(p.net);
  const VirtualTime when =
      component_ref.local_time() + n.delay + extra_delay;
  n.last_value = value;
  n.last_change = when;

  for (const Endpoint& sink : n.sinks) {
    if (sink.component == component_ref.id() && sink.port == port)
      continue;  // a driver does not hear its own value on an inout port
    schedule(Event{.time = when,
                   .target = sink.component,
                   .port = sink.port,
                   .kind = EventKind::kDeliver,
                   .value = value,
                   .source = component_ref.id()});
  }
}

void Scheduler::context_send_at(Component& component_ref, PortIndex port,
                                Value value, VirtualTime when) {
  const Port& p = component_ref.port(port);
  PIA_REQUIRE(p.dir != PortDir::kIn,
              "send_at() on input port '" + p.name + "' of '" +
                  component_ref.name() + "'");
  PIA_REQUIRE(p.net.valid(), "send_at() on unwired port '" + p.name +
                                 "' of '" + component_ref.name() + "'");
  PIA_REQUIRE(when >= now_, "send_at() into the subsystem's past on '" +
                                component_ref.name() + "'");
  Net& n = net(p.net);
  n.last_value = value;
  n.last_change = when;
  for (const Endpoint& sink : n.sinks) {
    if (sink.component == component_ref.id() && sink.port == port) continue;
    schedule(Event{.time = when,
                   .target = sink.component,
                   .port = sink.port,
                   .kind = EventKind::kDeliver,
                   .value = value,
                   .source = component_ref.id()});
  }
}

void Scheduler::context_wake(Component& component_ref, VirtualTime when) {
  schedule(Event{.time = when,
                 .target = component_ref.id(),
                 .port = kNoPort,
                 .kind = EventKind::kWake,
                 .source = component_ref.id()});
}

void Scheduler::context_request_runlevel(Component& component_ref,
                                         const RunLevel& level) {
  pending_runlevels_.push_back(
      RunLevelAction{.component = component_ref.name(), .level = level});
}

void Scheduler::add_switchpoint(Switchpoint switchpoint) {
  // Validate component references eagerly; a typo in a run-control file
  // should fail at load time, not never-fire silently.
  for (const auto& comp : switchpoint.condition.referenced_components())
    (void)component_id(comp);
  for (const auto& action : switchpoint.actions)
    (void)component_id(action.component);
  switchpoints_.push_back(std::move(switchpoint));
}

std::size_t Scheduler::pending_switchpoints() const {
  return static_cast<std::size_t>(
      std::count_if(switchpoints_.begin(), switchpoints_.end(),
                    [](const Switchpoint& s) { return !s.fired; }));
}

void Scheduler::set_runlevel(const std::string& component_name,
                             const RunLevel& level) {
  (void)component_id(component_name);  // validate
  pending_runlevels_.push_back(
      RunLevelAction{.component = component_name, .level = level});
  apply_pending_runlevels();
}

LocalTimeView Scheduler::local_time_view() const {
  return [this](const std::string& component_name) {
    return component(component_id(component_name)).local_time();
  };
}

void Scheduler::evaluate_switchpoints() {
  if (switchpoints_.empty()) return;
  const LocalTimeView view = local_time_view();
  for (Switchpoint& sp : switchpoints_) {
    if (sp.fired) continue;
    if (!sp.condition.eval(view)) continue;
    sp.fired = true;
    PIA_DEBUG("switchpoint fired: " << sp.condition.str());
    for (const RunLevelAction& action : sp.actions)
      pending_runlevels_.push_back(action);
  }
}

void Scheduler::apply_pending_runlevels() {
  if (pending_runlevels_.empty()) return;  // hot path: nothing pending
  // Apply each pending switch if its component is at a safe point; otherwise
  // keep it queued and retry after the next dispatch.
  std::deque<RunLevelAction> retry;
  while (!pending_runlevels_.empty()) {
    RunLevelAction action = std::move(pending_runlevels_.front());
    pending_runlevels_.pop_front();
    Component& c = component(component_id(action.component));
    if (!c.at_safe_point()) {
      retry.push_back(std::move(action));
      continue;
    }
    if (c.runlevel() == action.level) continue;  // no-op switch
    const RunLevel previous = c.runlevel();
    c.runlevel_ = action.level;
    stats_.runlevel_switches++;
    c.on_runlevel(previous);
    if (on_runlevel_switch) on_runlevel_switch(c, previous, action.level);
  }
  pending_runlevels_ = std::move(retry);
}

std::vector<Event> Scheduler::snapshot_queue() const {
  return queue_.sorted_snapshot();
}

void Scheduler::replace_queue(std::vector<Event> events) {
  queue_.clear();
  queue_.reserve(events.size());
  // Events scheduled after this restore must sort after every restored
  // event: in a fresh process (durable-snapshot restore) next_seq_ starts at
  // zero and a collision would scramble the deterministic dispatch order.
  for (auto& e : events) {
    ensure_seq_above(e.seq);
    queue_.push(std::move(e));
  }
}

void Scheduler::ensure_seq_above(std::uint64_t seq) {
  if (next_seq_ <= seq) next_seq_ = seq + 1;
}

std::size_t Scheduler::erase_events_if(
    const std::function<bool(const Event&)>& pred) {
  return queue_.erase_if(pred);
}

void Scheduler::drop_events_after(VirtualTime t) {
  queue_.erase_if([t](const Event& e) { return e.time > t; });
}

}  // namespace pia
