// The standard communication-protocol library (paper §2).
//
// "We are in the process of building a library of standard communication
// protocols, each with several built-in detail levels."  This module is that
// library: a TransferEncoder renders an abstract payload transfer as a
// sequence of timed value emissions at the detail level selected by the
// component's current runlevel, and a TransferDecoder reassembles the
// payload on the far side regardless of level.  Because both ends agree on
// the rendering per level, a runlevel switch at a safe point (between
// transfers) is transparent to the application.
//
// Detail levels:
//   transactionLevel  one Packet value carrying the whole payload
//   packetLevel       1 KB Packet values, 2-byte header each (seq | last)
//   wordLevel         a length word, then 4-byte words (the paper's "word
//                     passage": individual four-byte words across the net)
//   hardwareLevel     a strobed byte bus: Logic strobe edge + data byte per
//                     byte transferred (2 events/byte)
//
// Timing: a TimingProfile gives the virtual-time cost of each unit at each
// level, so switching levels also changes how finely time is resolved.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "base/bytes.hpp"
#include "base/time.hpp"
#include "core/runlevel.hpp"
#include "core/value.hpp"
#include "serial/archive.hpp"

namespace pia {

/// Virtual-time cost per protocol unit.  Defaults approximate a late-90s
/// embedded serial link (ticks are nanoseconds).
struct TimingProfile {
  VirtualTime byte_period{ticks(4000)};          // hardwareLevel, per byte
  VirtualTime word_period{ticks(16000)};         // wordLevel, per 4-byte word
  VirtualTime packet_period{ticks(4000000)};     // packetLevel, per 1 KB
  VirtualTime transaction_latency{ticks(8000000)};  // transactionLevel, flat

  static TimingProfile uniform(VirtualTime t) {
    return TimingProfile{t, t, t, t};
  }
};

inline constexpr std::size_t kPacketPayload = 1024;  // the paper's 1 KB packets
inline constexpr std::size_t kWordBytes = 4;         // four-byte words

class TransferEncoder {
 public:
  struct Emission {
    VirtualTime delay;  // virtual time consumed before this value is driven
    Value value;
  };

  explicit TransferEncoder(TimingProfile timing = {}) : timing_(timing) {}

  [[nodiscard]] const TimingProfile& timing() const { return timing_; }

  /// Renders `payload` at `level`.  The sum of emission delays is the
  /// modeled transfer duration; the number of emissions is the event cost.
  [[nodiscard]] std::vector<Emission> encode(BytesView payload,
                                             const RunLevel& level) const;

  /// Modeled duration of a transfer without materializing the emissions.
  [[nodiscard]] VirtualTime duration(std::size_t payload_size,
                                     const RunLevel& level) const;

  /// Number of events a transfer costs at a level (the bandwidth the
  /// designer saves by dropping detail, paper §2).
  [[nodiscard]] std::size_t event_count(std::size_t payload_size,
                                        const RunLevel& level) const;

 private:
  TimingProfile timing_;
};

/// Reassembles payloads from the emission stream of any detail level.  The
/// decoder is checkpointable (save/restore) and reports whether it is
/// mid-transfer, which components use to implement at_safe_point().
class TransferDecoder {
 public:
  /// Feed one received value; returns a completed payload when the transfer
  /// finishes.  Throws Error{kProtocol} on a malformed stream (e.g. a
  /// runlevel switch in the middle of a transfer — exactly the hazard safe
  /// points exist to prevent).
  std::optional<Bytes> feed(const Value& value);

  [[nodiscard]] bool mid_transfer() const { return state_ != State::kIdle; }
  void reset();

  void save(serial::OutArchive& ar) const;
  void restore(serial::InArchive& ar);

 private:
  enum class State : std::uint8_t {
    kIdle,
    kWordsExpectLength,  // unused marker retained for image compatibility
    kWords,              // collecting 4-byte words
    kPackets,            // collecting 1 KB packets
    kStrobed,            // hardware level: strobe seen, awaiting data byte
    kBytes,              // hardware level: collecting bytes
  };

  State state_ = State::kIdle;
  std::size_t expected_ = 0;  // total payload bytes of in-flight transfer
  Bytes partial_;
};

/// Layered on the encoder: header/framing helpers shared with pia_dist and
/// the WubbleU MAC.  A packet-level frame is [seq lo, seq hi | last-flag]
/// then payload.
namespace framing {
[[nodiscard]] Bytes make_packet(std::uint16_t seq, bool last, BytesView chunk);
struct PacketHeader {
  std::uint16_t seq;
  bool last;
};
[[nodiscard]] PacketHeader parse_packet(BytesView frame, BytesView& chunk_out);
}  // namespace framing

}  // namespace pia
