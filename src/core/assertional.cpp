#include "core/assertional.hpp"

#include "base/error.hpp"

namespace pia {

void AssertionalMethod::add_rule(std::string name, Condition condition,
                                 Action action) {
  PIA_REQUIRE(condition != nullptr && action != nullptr,
              "assertional rule '" + name + "' needs condition and action");
  rules_.push_back(
      Rule{std::move(name), std::move(condition), std::move(action)});
}

AssertionalMethod::Step AssertionalMethod::feed(const Value& stimulus) {
  for (const Rule& rule : rules_) {
    if (!rule.condition(state_, stimulus)) continue;
    Result result = rule.action(state_, stimulus);

    Step step;
    step.fired_rule = &rule.name;
    step.emissions = std::move(result.emissions);
    step.delay = result.delay;
    if (result.set_reg) state_.reg = *result.set_reg;
    state_.accumulator.insert(state_.accumulator.end(),
                              result.append.begin(), result.append.end());
    if (result.complete) {
      step.completed = std::move(state_.accumulator);
      state_.accumulator.clear();
    }
    return step;
  }
  if (strict_)
    raise(ErrorKind::kProtocol,
          "no assertional rule matched stimulus " + stimulus.str());
  return Step{};
}

void AssertionalMethod::save(serial::OutArchive& ar) const {
  ar.put_i64(state_.reg);
  ar.put_bytes(state_.accumulator);
}

void AssertionalMethod::restore(serial::InArchive& ar) {
  state_.reg = ar.get_i64();
  state_.accumulator = ar.get_bytes();
}

}  // namespace pia
