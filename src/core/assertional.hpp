// Assertion-based communication methods (paper §2, citing Hines &
// Borriello, Codes/CASHE'97).
//
// "In the cases where the user must provide additional instructions for
// levels of detail not currently in any library, we allow these to be
// entered as a set of assertions which describe the activating conditions,
// and results of any action."
//
// An AssertionalMethod is exactly that: a user-declared rule table.  Each
// rule has an *activating condition* — a predicate over the method's state
// register and the stimulus value — and a *result* — emissions to drive,
// state updates, time to consume and optionally a payload completion.  The
// engine evaluates rules in declaration order and fires the first match,
// so a custom detail level can be described without writing a component.
//
// The state register is a single integer plus a byte accumulator, which is
// enough to express the library's own levels (see tests, which re-derive
// the word-level protocol as a rule table) and is trivially checkpointable.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "base/bytes.hpp"
#include "core/value.hpp"
#include "serial/archive.hpp"

namespace pia {

class AssertionalMethod {
 public:
  /// The method's whole mutable state: checkpointable by construction.
  struct State {
    std::int64_t reg = 0;   // user-defined mode/counter register
    Bytes accumulator;      // bytes gathered so far
  };

  /// What a fired rule does.
  struct Result {
    /// Values to drive out, in order (each may consume `delay` first).
    std::vector<Value> emissions;
    /// New register value (nullopt = unchanged).
    std::optional<std::int64_t> set_reg;
    /// Bytes to append to the accumulator.
    Bytes append;
    /// Virtual time consumed by the action.
    VirtualTime delay = VirtualTime::zero();
    /// If set, the accumulator completes as a payload and is cleared.
    bool complete = false;
  };

  using Condition =
      std::function<bool(const State& state, const Value& stimulus)>;
  using Action =
      std::function<Result(const State& state, const Value& stimulus)>;

  struct Rule {
    std::string name;       // for diagnostics
    Condition condition;    // activating condition
    Action action;          // result of the action
  };

  /// Declares a rule; evaluation order = declaration order.
  void add_rule(std::string name, Condition condition, Action action);

  [[nodiscard]] std::size_t rule_count() const { return rules_.size(); }

  /// Outcome of feeding one stimulus.
  struct Step {
    const std::string* fired_rule = nullptr;  // nullptr: no rule matched
    std::vector<Value> emissions;
    VirtualTime delay;
    std::optional<Bytes> completed;  // reassembled payload, if any
  };

  /// Applies the first matching rule to `stimulus`.  Throws
  /// Error{kProtocol} if no rule matches and `strict` was set.
  Step feed(const Value& stimulus);

  void set_strict(bool strict) { strict_ = strict; }

  [[nodiscard]] const State& state() const { return state_; }
  void reset() { state_ = State{}; }

  void save(serial::OutArchive& ar) const;
  void restore(serial::InArchive& ar);

 private:
  std::vector<Rule> rules_;
  State state_;
  bool strict_ = false;
};

}  // namespace pia
