#include "core/component.hpp"

#include "base/error.hpp"

namespace pia {

namespace {
constexpr std::uint32_t kImageVersion = 1;
}

Component::Component(std::string name) : name_(std::move(name)) {}

const Port& Component::port(PortIndex i) const {
  PIA_REQUIRE(i < ports_.size(), "port index out of range on " + name_);
  return ports_[i];
}

PortIndex Component::find_port(std::string_view port_name) const {
  for (PortIndex i = 0; i < ports_.size(); ++i)
    if (ports_[i].name == port_name) return i;
  raise(ErrorKind::kNotFound,
        "component '" + name_ + "' has no port '" + std::string(port_name) +
            "'");
}

PortIndex Component::add_input(std::string port_name, PortSync sync) {
  ports_.push_back(Port{.name = std::move(port_name),
                        .dir = PortDir::kIn,
                        .sync = sync});
  return static_cast<PortIndex>(ports_.size() - 1);
}

PortIndex Component::add_output(std::string port_name) {
  ports_.push_back(Port{.name = std::move(port_name), .dir = PortDir::kOut});
  return static_cast<PortIndex>(ports_.size() - 1);
}

Port& Component::mutable_port(PortIndex i) {
  PIA_REQUIRE(i < ports_.size(), "port index out of range on " + name_);
  return ports_[i];
}

PortIndex Component::add_inout(std::string port_name, PortSync sync) {
  ports_.push_back(Port{.name = std::move(port_name),
                        .dir = PortDir::kInOut,
                        .sync = sync});
  return static_cast<PortIndex>(ports_.size() - 1);
}

void Component::send(PortIndex out_port, Value value,
                     VirtualTime extra_delay) {
  PIA_REQUIRE(context_ != nullptr,
              "send() outside a scheduled handler on " + name_);
  context_->context_send(*this, out_port, std::move(value), extra_delay);
}

void Component::send_at(PortIndex out_port, Value value, VirtualTime when) {
  PIA_REQUIRE(context_ != nullptr,
              "send_at() outside a scheduled handler on " + name_);
  context_->context_send_at(*this, out_port, std::move(value), when);
}

void Component::wake_after(VirtualTime delay) {
  wake_at(local_time_ + delay);
}

void Component::wake_at(VirtualTime when) {
  PIA_REQUIRE(context_ != nullptr,
              "wake_at() outside a scheduled handler on " + name_);
  PIA_REQUIRE(when >= local_time_, "wake_at() into the past on " + name_);
  context_->context_wake(*this, when);
}

void Component::advance(VirtualTime delta) {
  PIA_REQUIRE(delta >= VirtualTime::zero(),
              "advance() by negative time on " + name_);
  local_time_ += delta;
}

void Component::request_runlevel(const RunLevel& level) {
  PIA_REQUIRE(context_ != nullptr,
              "request_runlevel() outside a scheduled handler on " + name_);
  context_->context_request_runlevel(*this, level);
}

Bytes Component::save_image() const {
  serial::OutArchive ar;
  serial::begin_section(ar, "pia.component", kImageVersion);
  ar.put_string(name_);
  serial::write(ar, local_time_);
  ar.put_string(runlevel_.name);
  ar.put_i64(runlevel_.detail);
  save_state(ar);
  return std::move(ar).take();
}

void Component::restore_image(BytesView image) {
  serial::InArchive ar(image);
  serial::expect_section(ar, "pia.component");
  const std::string stored_name = ar.get_string();
  if (stored_name != name_) {
    raise(ErrorKind::kSerialization,
          "checkpoint image for '" + stored_name +
              "' restored into component '" + name_ + "'");
  }
  local_time_ = serial::read<VirtualTime>(ar);
  runlevel_.name = ar.get_string();
  runlevel_.detail = static_cast<int>(ar.get_i64());
  restore_state(ar);
}

}  // namespace pia
