// Simulation: Pia on a single host (paper §2.1).
//
// The facade most users start from: one subsystem scheduler, a checkpoint
// manager, the run-control loader and the optimistic-interrupt rewind
// policy, assembled and wired together.  A Pia node with a single subsystem
// "behaves very much like the single host version of Pia" — pia_dist builds
// exactly on the pieces exposed here.
#pragma once

#include <memory>
#include <string>

#include "core/checkpoint.hpp"
#include "core/registry.hpp"
#include "core/runcontrol.hpp"
#include "core/scheduler.hpp"

namespace pia {

class Simulation {
 public:
  explicit Simulation(std::string name = "pia",
                      CheckpointPolicy policy = CheckpointPolicy::kImmediate);

  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] const Scheduler& scheduler() const { return scheduler_; }
  [[nodiscard]] CheckpointManager& checkpoints() { return *checkpoints_; }
  [[nodiscard]] RunControlParser& run_control_parser() { return parser_; }

  // --- convenience pass-throughs -------------------------------------------

  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    return scheduler_.emplace<T>(std::forward<Args>(args)...);
  }

  /// Instantiate a registered component type by name (class-loader style).
  Component& create(const std::string& type_name, const std::string& instance,
                    const ComponentRegistry& registry =
                        ComponentRegistry::global());

  NetId connect(Component& from, std::string_view out_port, Component& to,
                std::string_view in_port,
                VirtualTime delay = VirtualTime::zero());

  void init() { scheduler_.init(); }
  bool step() { return scheduler_.step(); }
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX) {
    return scheduler_.run(max_events);
  }
  std::uint64_t run_until(VirtualTime t) { return scheduler_.run_until(t); }
  [[nodiscard]] VirtualTime now() const { return scheduler_.now(); }

  /// Parses a run-control script and installs its switchpoints.
  void load_run_control(const std::string& script);

  // --- optimistic interrupt handling (paper §2.1.1) --------------------------
  //
  // "the simulator can make the optimistic assumption and treat all memory
  // as safe.  When the system detects a violation of this assumption it can
  // dynamically mark the relevant addresses as synchronous, then rewind
  // using Pia's checkpoint and restore facilities."
  //
  // enable_optimistic_rewind() installs a violation handler that (1) invokes
  // the model's on_rewind callback — where it marks the offending location
  // synchronous so re-execution is conservative — then (2) restores the most
  // recent checkpoint at or before the violating event and (3) re-injects
  // the event.

  using RewindCallback =
      std::function<void(const Event& violating, Component& target)>;

  void enable_optimistic_rewind(RewindCallback on_rewind = nullptr);
  [[nodiscard]] std::uint64_t rewinds() const { return rewinds_; }

 private:
  Scheduler scheduler_;
  std::unique_ptr<CheckpointManager> checkpoints_;
  RunControlParser parser_;
  std::uint64_t rewinds_ = 0;
};

}  // namespace pia
