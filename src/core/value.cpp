#include "core/value.hpp"

#include "base/error.hpp"

namespace pia {

const char* to_string(Logic logic) {
  switch (logic) {
    case Logic::kLow: return "0";
    case Logic::kHigh: return "1";
    case Logic::kUnknown: return "X";
    case Logic::kHighZ: return "Z";
  }
  return "?";
}

Logic Value::as_logic() const {
  if (const auto* p = std::get_if<Logic>(&data_)) return *p;
  raise(ErrorKind::kState, "Value is not Logic: " + str());
}

std::uint64_t Value::as_word() const {
  if (const auto* p = std::get_if<std::uint64_t>(&data_)) return *p;
  raise(ErrorKind::kState, "Value is not Word: " + str());
}

const Bytes& Value::as_packet() const {
  if (const auto* p = std::get_if<Bytes>(&data_)) return *p;
  raise(ErrorKind::kState, "Value is not Packet: " + str());
}

const std::string& Value::as_token() const {
  if (const auto* p = std::get_if<Token>(&data_)) return p->name;
  raise(ErrorKind::kState, "Value is not Token: " + str());
}

std::size_t Value::modeled_bytes() const {
  switch (kind()) {
    case Kind::kVoid:
    case Kind::kLogic:
    case Kind::kToken: return 0;
    case Kind::kWord: return 4;
    case Kind::kPacket: return as_packet().size();
  }
  return 0;
}

std::string Value::str() const {
  switch (kind()) {
    case Kind::kVoid: return "void";
    case Kind::kLogic: return std::string("logic:") + to_string(as_logic());
    case Kind::kWord: return "word:" + std::to_string(as_word());
    case Kind::kPacket:
      return "packet[" + std::to_string(as_packet().size()) + "]";
    case Kind::kToken: return "token:" + as_token();
  }
  return "?";
}

void Value::save(serial::OutArchive& ar) const {
  ar.put_varint(static_cast<std::uint64_t>(kind()));
  switch (kind()) {
    case Kind::kVoid: break;
    case Kind::kLogic: ar.put_u8(static_cast<std::uint8_t>(as_logic())); break;
    case Kind::kWord: ar.put_varint(as_word()); break;
    case Kind::kPacket: ar.put_bytes(as_packet()); break;
    case Kind::kToken: ar.put_string(as_token()); break;
  }
}

Value Value::load(serial::InArchive& ar) {
  const auto kind = static_cast<Kind>(ar.get_varint());
  switch (kind) {
    case Kind::kVoid: return Value{};
    case Kind::kLogic: return Value{static_cast<Logic>(ar.get_u8())};
    case Kind::kWord: return Value{ar.get_varint()};
    case Kind::kPacket: return Value{ar.get_bytes()};
    case Kind::kToken: return Value::token(ar.get_string());
  }
  raise(ErrorKind::kSerialization, "unknown Value kind");
}

}  // namespace pia
