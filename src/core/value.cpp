#include "core/value.hpp"

#include <cstring>
#include <utility>

#include "base/error.hpp"

namespace pia {

const char* to_string(Logic logic) {
  switch (logic) {
    case Logic::kLow: return "0";
    case Logic::kHigh: return "1";
    case Logic::kUnknown: return "X";
    case Logic::kHighZ: return "Z";
  }
  return "?";
}

void Value::set_payload(BytesView bytes) {
  if (bytes.size() <= kInlineCapacity) {
    small_ = static_cast<std::uint8_t>(bytes.size());
    if (!bytes.empty())
      std::memcpy(store_.inline_bytes, bytes.data(), bytes.size());
  } else {
    small_ = kSpilled;
    store_.heap = new Bytes(bytes.begin(), bytes.end());
  }
}

void Value::adopt_payload(Bytes&& bytes) {
  if (bytes.size() <= kInlineCapacity) {
    set_payload(bytes);
  } else {
    small_ = kSpilled;
    store_.heap = new Bytes(std::move(bytes));
  }
}

Value::Value(Bytes packet) : kind_(Kind::kPacket) {
  adopt_payload(std::move(packet));
}

Value Value::token(std::string_view name) {
  Value v;
  v.kind_ = Kind::kToken;
  v.set_payload(BytesView{reinterpret_cast<const std::byte*>(name.data()),
                          name.size()});
  return v;
}

Value Value::packet(BytesView bytes) {
  Value v;
  v.kind_ = Kind::kPacket;
  v.set_payload(bytes);
  return v;
}

Value::Value(const Value& other) : kind_(other.kind_), small_(other.small_) {
  if (has_payload() && spilled())
    store_.heap = new Bytes(*other.store_.heap);
  else
    store_ = other.store_;
}

Value::Value(Value&& other) noexcept
    : kind_(other.kind_), small_(other.small_), store_(other.store_) {
  other.kind_ = Kind::kVoid;
  other.small_ = 0;
}

Value& Value::operator=(const Value& other) {
  if (this == &other) return *this;
  release();
  kind_ = other.kind_;
  small_ = other.small_;
  if (has_payload() && spilled())
    store_.heap = new Bytes(*other.store_.heap);
  else
    store_ = other.store_;
  return *this;
}

Value& Value::operator=(Value&& other) noexcept {
  if (this == &other) return *this;
  release();
  kind_ = other.kind_;
  small_ = other.small_;
  store_ = other.store_;
  other.kind_ = Kind::kVoid;
  other.small_ = 0;
  return *this;
}

Logic Value::as_logic() const {
  if (kind_ == Kind::kLogic) return store_.logic;
  raise(ErrorKind::kState, "Value is not Logic: " + str());
}

std::uint64_t Value::as_word() const {
  if (kind_ == Kind::kWord) return store_.word;
  raise(ErrorKind::kState, "Value is not Word: " + str());
}

BytesView Value::as_packet() const {
  if (kind_ == Kind::kPacket) return payload();
  raise(ErrorKind::kState, "Value is not Packet: " + str());
}

std::string_view Value::as_token() const {
  if (kind_ != Kind::kToken)
    raise(ErrorKind::kState, "Value is not Token: " + str());
  const BytesView p = payload();
  return {reinterpret_cast<const char*>(p.data()), p.size()};
}

bool Value::operator==(const Value& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kVoid: return true;
    case Kind::kLogic: return store_.logic == other.store_.logic;
    case Kind::kWord: return store_.word == other.store_.word;
    case Kind::kPacket:
    case Kind::kToken: {
      const BytesView a = payload();
      const BytesView b = other.payload();
      return a.size() == b.size() &&
             (a.empty() || std::memcmp(a.data(), b.data(), a.size()) == 0);
    }
  }
  return false;
}

std::size_t Value::modeled_bytes() const {
  switch (kind_) {
    case Kind::kVoid:
    case Kind::kLogic:
    case Kind::kToken: return 0;
    case Kind::kWord: return 4;
    case Kind::kPacket: return payload().size();
  }
  return 0;
}

std::string Value::str() const {
  switch (kind_) {
    case Kind::kVoid: return "void";
    case Kind::kLogic: return std::string("logic:") + to_string(as_logic());
    case Kind::kWord: return "word:" + std::to_string(as_word());
    case Kind::kPacket:
      return "packet[" + std::to_string(payload().size()) + "]";
    case Kind::kToken: return "token:" + std::string(as_token());
  }
  return "?";
}

void Value::save(serial::OutArchive& ar) const {
  ar.put_varint(static_cast<std::uint64_t>(kind_));
  switch (kind_) {
    case Kind::kVoid: break;
    case Kind::kLogic: ar.put_u8(static_cast<std::uint8_t>(as_logic())); break;
    case Kind::kWord: ar.put_varint(as_word()); break;
    case Kind::kPacket: ar.put_bytes(payload()); break;
    case Kind::kToken: ar.put_string(as_token()); break;
  }
}

Value Value::load(serial::InArchive& ar) {
  const auto kind = static_cast<Kind>(ar.get_varint());
  switch (kind) {
    case Kind::kVoid: return Value{};
    case Kind::kLogic: return Value{static_cast<Logic>(ar.get_u8())};
    case Kind::kWord: return Value{ar.get_varint()};
    case Kind::kPacket: return Value::packet(ar.get_view(ar.get_varint()));
    case Kind::kToken: {
      const BytesView name = ar.get_view(ar.get_varint());
      return Value::token(
          {reinterpret_cast<const char*>(name.data()), name.size()});
    }
  }
  raise(ErrorKind::kSerialization, "unknown Value kind");
}

}  // namespace pia
