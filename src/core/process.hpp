// Process-style components (paper §3.1).
//
// The original Pia ran each component as a Java thread and tricked the VM
// scheduler into running exactly one at a time ("have all the threads queue
// up on mutexes and have the scheduler signal the one it wants to run").
// The modern C++ equivalent is a coroutine: ProcessComponent lets behaviour
// be written as straight-line code —
//
//   Process body() override {
//     co_await delay(ticks(100));
//     for (;;) {
//       auto [port, value] = co_await receive();
//       advance(ticks(50));
//       send(out_, Value{value.as_word() + 1});
//     }
//   }
//
// — while the subsystem scheduler remains the only dispatcher, exactly as
// in the reactive model.  A suspended coroutine frame cannot be serialized,
// so process components refuse checkpoint restores (like hardware bridges,
// they belong in conservative regions); use reactive components where
// rollback must reach.
#pragma once

#include <coroutine>
#include <deque>
#include <optional>
#include <utility>

#include "core/component.hpp"

namespace pia {

class ProcessComponent : public Component {
 public:
  class Process {
   public:
    struct promise_type {
      Process get_return_object() {
        return Process{
            std::coroutine_handle<promise_type>::from_promise(*this)};
      }
      std::suspend_always initial_suspend() noexcept { return {}; }
      std::suspend_always final_suspend() noexcept { return {}; }
      void return_void() {}
      void unhandled_exception() { exception = std::current_exception(); }
      std::exception_ptr exception;
    };

    Process() = default;
    explicit Process(std::coroutine_handle<promise_type> handle)
        : handle_(handle) {}
    Process(Process&& other) noexcept
        : handle_(std::exchange(other.handle_, nullptr)) {}
    Process& operator=(Process&& other) noexcept {
      if (this != &other) {
        destroy();
        handle_ = std::exchange(other.handle_, nullptr);
      }
      return *this;
    }
    Process(const Process&) = delete;
    Process& operator=(const Process&) = delete;
    ~Process() { destroy(); }

    [[nodiscard]] bool done() const { return !handle_ || handle_.done(); }

    void resume() {
      if (done()) return;
      handle_.resume();
      if (handle_.done() && handle_.promise().exception)
        std::rethrow_exception(handle_.promise().exception);
    }

   private:
    void destroy() {
      if (handle_) handle_.destroy();
      handle_ = nullptr;
    }
    std::coroutine_handle<promise_type> handle_;
  };

  /// A value delivered to the process: which port, and what.
  struct Delivery {
    PortIndex port;
    Value value;
  };

  using Component::Component;

  /// The process body, written as a coroutine.  Runs from simulation start;
  /// when it co_returns the component goes quiet.
  virtual Process body() = 0;

  // --- awaitables ------------------------------------------------------------

  /// Suspends the process for `d` of virtual time.
  [[nodiscard]] auto delay(VirtualTime d) {
    struct Awaiter {
      ProcessComponent& self;
      VirtualTime duration;
      bool await_ready() const noexcept {
        return duration == VirtualTime::zero();
      }
      void await_suspend(std::coroutine_handle<>) {
        self.waiting_for_wake_ = true;
        self.wake_after(duration);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Suspends until a value arrives on any input port (or pops one already
  /// queued in the mailbox) — the paper's "continue until it is ready to
  /// receive a value from another component".
  [[nodiscard]] auto receive() {
    struct Awaiter {
      ProcessComponent& self;
      bool await_ready() const noexcept { return !self.mailbox_.empty(); }
      void await_suspend(std::coroutine_handle<>) {
        self.waiting_for_receive_ = true;
      }
      Delivery await_resume() {
        Delivery delivery = std::move(self.mailbox_.front());
        self.mailbox_.pop_front();
        return delivery;
      }
    };
    return Awaiter{*this};
  }

  // --- kernel glue (final: the coroutine IS the behaviour) --------------------

  void on_init() final {
    process_ = body();
    process_->resume();  // run to the first suspension point
  }

  void on_receive(PortIndex port, const Value& value) final {
    mailbox_.push_back(Delivery{port, value});
    if (waiting_for_receive_) {
      waiting_for_receive_ = false;
      process_->resume();
    }
  }

  void on_wake() final {
    if (!waiting_for_wake_) return;
    waiting_for_wake_ = false;
    process_->resume();
  }

  /// A suspended coroutine frame has no serializable representation.
  void restore_state(serial::InArchive&) final {
    raise(ErrorKind::kState,
          "process component '" + name() +
              "' cannot rewind: coroutine frames are not serializable; "
              "use a reactive Component where rollback must reach");
  }

  [[nodiscard]] bool finished() const {
    return process_.has_value() && process_->done();
  }
  [[nodiscard]] std::size_t mailbox_size() const { return mailbox_.size(); }

 private:
  std::optional<Process> process_;
  std::deque<Delivery> mailbox_;
  bool waiting_for_receive_ = false;
  bool waiting_for_wake_ = false;
};

}  // namespace pia
