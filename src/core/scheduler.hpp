// The subsystem scheduler (paper §2.1, §2.2).
//
// One Scheduler is the kernel of one *subsystem*: it owns the components,
// the nets wiring them together, and the event queue, and it is "primarily
// responsible for enforcing the local timing semantics": the subsystem time
// is always <= the local time of every component, and a component receives a
// value only once subsystem time has caught up with the value's timestamp.
//
// Events are dispatched in deterministic (time, seq) order.  Between
// dispatches every component is at a safe point; that is where runlevel
// switches are applied and checkpoints taken.
//
// The distributed layer (pia_dist) drives a Scheduler from outside: it asks
// next_event_time(), compares against the safe times granted by peer
// subsystems (conservative channels) and calls step() only when allowed, or
// runs ahead and restores a checkpoint on a straggler (optimistic channels).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/ids.hpp"
#include "base/time.hpp"
#include "core/component.hpp"
#include "core/event.hpp"
#include "core/event_queue.hpp"
#include "core/port.hpp"
#include "core/runlevel.hpp"
#include "obs/trace.hpp"

namespace pia {

struct SchedulerStats {
  std::uint64_t events_dispatched = 0;
  std::uint64_t events_scheduled = 0;
  std::uint64_t wakes_dispatched = 0;
  std::uint64_t violations = 0;
  std::uint64_t runlevel_switches = 0;
};

class Scheduler final : public ComponentContext {
 public:
  explicit Scheduler(std::string name = "subsystem");
  ~Scheduler() override = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }

  // --- construction --------------------------------------------------------

  /// Adds a component; the scheduler takes ownership and assigns its id.
  ComponentId add(std::unique_ptr<Component> component);

  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto owned = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *owned;
    add(std::move(owned));
    return ref;
  }

  [[nodiscard]] Component& component(ComponentId id);
  [[nodiscard]] const Component& component(ComponentId id) const;
  /// nullptr if absent.
  [[nodiscard]] Component* find_component(const std::string& name);
  [[nodiscard]] ComponentId component_id(const std::string& name) const;
  [[nodiscard]] std::vector<ComponentId> component_ids() const;
  [[nodiscard]] std::size_t component_count() const { return components_.size(); }

  NetId make_net(std::string net_name,
                 VirtualTime delay = VirtualTime::zero());
  void attach(NetId net, ComponentId component, std::string_view port_name);
  /// Convenience: make a net from a's output to b's input.
  NetId connect(ComponentId a, std::string_view out_port, ComponentId b,
                std::string_view in_port,
                VirtualTime delay = VirtualTime::zero());
  [[nodiscard]] Net& net(NetId id);
  [[nodiscard]] const Net& net(NetId id) const;
  [[nodiscard]] NetId net_id(const std::string& net_name) const;
  [[nodiscard]] std::vector<NetId> net_ids() const;

  // --- lifecycle ------------------------------------------------------------

  /// Runs on_init() on every component (once).
  void init();
  [[nodiscard]] bool initialized() const { return initialized_; }

  // --- execution -------------------------------------------------------------

  [[nodiscard]] VirtualTime now() const { return now_; }
  [[nodiscard]] VirtualTime next_event_time() const;
  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  /// Read-only view of the pending events, heap order (NOT dispatch order).
  /// For aggregate scans — e.g. the conservative engine prices queued
  /// channel-proxy crossings at their exact stamps when granting safe times.
  [[nodiscard]] const std::vector<Event>& pending() const {
    return queue_.events();
  }

  /// Dispatches the next event.  Returns false when the queue is empty.
  bool step();
  /// Dispatches every event with time <= t; returns the dispatch count.
  std::uint64_t run_until(VirtualTime t);
  /// Dispatches until the queue drains (or max_events); returns the count.
  std::uint64_t run(std::uint64_t max_events = UINT64_MAX);

  /// Schedules an event originating outside this subsystem (a channel
  /// delivery).  The event keeps its given time; seq is assigned here and
  /// returned so the caller can later address exactly this queue entry
  /// (retraction must not guess by payload — identical payloads are legal).
  /// Injecting into the past (time < now()) invokes the straggler handler —
  /// that is the optimistic-channel rollback trigger — or throws
  /// Error{kConsistency} if none is installed.  Returns 0 when the straggler
  /// handler consumed the event.
  std::uint64_t inject(Event event);

  // --- runlevels ---------------------------------------------------------------

  void add_switchpoint(Switchpoint switchpoint);
  [[nodiscard]] std::size_t pending_switchpoints() const;
  /// Direct user switch (the paper's "detail level slider").
  void set_runlevel(const std::string& component_name, const RunLevel& level);
  [[nodiscard]] LocalTimeView local_time_view() const;

  // --- hooks (checkpoint manager, distributed layer) ---------------------------

  /// Called with each event immediately before it is dispatched.
  std::function<void(const Event&)> pre_dispatch_hook;
  /// Called with each event when it is scheduled (send/wake/inject).
  std::function<void(const Event&)> on_schedule_hook;
  /// Called on a synchronous-port causality violation.  Return true if the
  /// violation was handled (state restored / address re-marked); the
  /// offending event is then *not* delivered here — the handler owns it.
  std::function<bool(const Event&, Component&)> violation_handler;
  /// Called when inject() observes a straggler (event.time < now()).
  /// Return true if handled (rollback performed and event requeued by the
  /// handler).
  std::function<bool(const Event&)> straggler_handler;
  /// Called after a runlevel switch is applied: (component, old, new).
  std::function<void(Component&, const RunLevel&, const RunLevel&)>
      on_runlevel_switch;

  [[nodiscard]] const SchedulerStats& stats() const { return stats_; }
  /// Events dispatched to one component (per-module profile, Fig. 5 bench).
  [[nodiscard]] std::uint64_t dispatches(ComponentId id) const;

  /// This subsystem's trace track.  The scheduler records event dispatches
  /// here; the distributed layer adds its protocol milestones so one buffer
  /// renders as one complete per-subsystem timeline (see obs/chrome_trace).
  [[nodiscard]] obs::TraceBuffer& trace() { return trace_; }
  [[nodiscard]] const obs::TraceBuffer& trace() const { return trace_; }

  // --- thread confinement ----------------------------------------------------------
  //
  // A scheduler is single-threaded by design; what changed with the worker
  // pool is that *which* thread drives it can move between loop slices.
  // The driving thread declares itself with a ConfinementGuard for the
  // duration of a slice; step() and inject() then verify the caller is that
  // thread.  Two workers slicing the same subsystem concurrently — the
  // executor bug class this exists to catch — dies with Error{kConsistency}
  // immediately instead of corrupting the event queue silently.  The guard
  // nests (the legacy run loop wraps slices that may re-enter).

  class ConfinementGuard {
   public:
    explicit ConfinementGuard(Scheduler& scheduler);
    ~ConfinementGuard();
    ConfinementGuard(const ConfinementGuard&) = delete;
    ConfinementGuard& operator=(const ConfinementGuard&) = delete;

   private:
    Scheduler& scheduler_;
    std::uint64_t previous_;
  };

  // --- checkpoint support --------------------------------------------------------
  // Used by CheckpointManager; see checkpoint.hpp for the semantics.

  [[nodiscard]] std::vector<Event> snapshot_queue() const;
  void replace_queue(std::vector<Event> events);
  void set_now(VirtualTime t) { now_ = t; }
  /// Raises the event sequence counter past `seq`.  replace_queue calls it
  /// for every restored event; crash recovery needs it so replayed injects
  /// keep sorting after the restored queue in a fresh process.
  void ensure_seq_above(std::uint64_t seq);
  /// Drops every queued event with time > t (used when rolling back).
  void drop_events_after(VirtualTime t);
  /// Drops queued events matching pred; returns how many were removed
  /// (used to cancel retracted optimistic messages).
  std::size_t erase_events_if(const std::function<bool(const Event&)>& pred);

  // --- ComponentContext ------------------------------------------------------------

  void context_send(Component& component, PortIndex port, Value value,
                    VirtualTime extra_delay) override;
  void context_send_at(Component& component, PortIndex port, Value value,
                       VirtualTime when) override;
  void context_wake(Component& component, VirtualTime when) override;
  void context_request_runlevel(Component& component,
                                const RunLevel& level) override;

 private:
  friend class ConfinementGuard;
  void assert_confined(const char* operation) const;
  std::uint64_t schedule(Event event);
  void dispatch(const Event& event);
  void evaluate_switchpoints();
  void apply_pending_runlevels();

  std::string name_;
  bool initialized_ = false;
  VirtualTime now_ = VirtualTime::zero();
  std::uint64_t next_seq_ = 0;

  std::vector<std::unique_ptr<Component>> components_;
  std::unordered_map<std::string, ComponentId> components_by_name_;
  std::vector<Net> nets_;
  std::unordered_map<std::string, NetId> nets_by_name_;

  EventQueue queue_;

  std::vector<Switchpoint> switchpoints_;
  std::deque<RunLevelAction> pending_runlevels_;

  SchedulerStats stats_;
  std::vector<std::uint64_t> dispatch_counts_;  // indexed by component id
  obs::TraceBuffer trace_;

  // Hash of the thread currently confining this scheduler; 0 = unconfined
  // (single-threaded callers that never enter a guard keep working).
  std::atomic<std::uint64_t> confined_to_{0};
};

}  // namespace pia
