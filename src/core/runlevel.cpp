#include "core/runlevel.hpp"

#include <utility>

#include "base/error.hpp"

namespace pia {

SwitchCondition SwitchCondition::at_least(std::string component,
                                          VirtualTime t) {
  SwitchCondition c;
  c.op_ = Op::kLeaf;
  c.component_ = std::move(component);
  c.threshold_ = t;
  return c;
}

SwitchCondition SwitchCondition::conj(SwitchCondition lhs,
                                      SwitchCondition rhs) {
  SwitchCondition c;
  c.op_ = Op::kAnd;
  c.lhs_ = std::make_shared<SwitchCondition>(std::move(lhs));
  c.rhs_ = std::make_shared<SwitchCondition>(std::move(rhs));
  return c;
}

SwitchCondition SwitchCondition::disj(SwitchCondition lhs,
                                      SwitchCondition rhs) {
  SwitchCondition c;
  c.op_ = Op::kOr;
  c.lhs_ = std::make_shared<SwitchCondition>(std::move(lhs));
  c.rhs_ = std::make_shared<SwitchCondition>(std::move(rhs));
  return c;
}

bool SwitchCondition::eval(const LocalTimeView& times) const {
  switch (op_) {
    case Op::kLeaf: return times(component_) >= threshold_;
    case Op::kAnd: return lhs_->eval(times) && rhs_->eval(times);
    case Op::kOr: return lhs_->eval(times) || rhs_->eval(times);
  }
  raise(ErrorKind::kState, "corrupt switch condition");
}

std::string SwitchCondition::str() const {
  switch (op_) {
    case Op::kLeaf:
      return component_ + ".time >= " + threshold_.str();
    case Op::kAnd:
      return "(" + lhs_->str() + " && " + rhs_->str() + ")";
    case Op::kOr:
      return "(" + lhs_->str() + " || " + rhs_->str() + ")";
  }
  return "?";
}

std::vector<std::string> SwitchCondition::referenced_components() const {
  std::vector<std::string> out;
  switch (op_) {
    case Op::kLeaf:
      out.push_back(component_);
      break;
    case Op::kAnd:
    case Op::kOr: {
      out = lhs_->referenced_components();
      auto rhs = rhs_->referenced_components();
      out.insert(out.end(), rhs.begin(), rhs.end());
      break;
    }
  }
  return out;
}

}  // namespace pia
