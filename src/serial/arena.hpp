// FrameArena: bump-pointer storage for outbound frame batches.
//
// A channel endpoint encodes a whole batch — header gap, per-message length
// prefixes, message bodies — into ONE contiguous buffer owned by the arena,
// so the batch reaches Link::send() as a single write with no intermediate
// scratch→batch→frame copies.  The arena is epoch-recycled: end_epoch() at
// flush resets the write position while keeping the allocation warm, so a
// steady stream of batches performs zero allocations after the first.
//
// The shrink policy bounds the high-water mark: one giant batch (say a
// checkpoint-sized Value flood) would otherwise pin its peak allocation on
// the channel forever.  The arena tracks usage over a rolling window of
// epochs and, once per window, releases capacity that has been running far
// above the recent peak.  This replaces the old per-channel scratch
// OutArchives, whose capacity was never returned.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "base/bytes.hpp"

namespace pia::serial {

class FrameArena {
 public:
  /// Capacity below this is never released — re-growing tiny buffers every
  /// window would churn the allocator for no memory win.
  static constexpr std::size_t kMinRetainedBytes = 4096;

  explicit FrameArena(std::size_t shrink_window = 32)
      : window_(std::max<std::size_t>(shrink_window, 1), 0) {}

  /// The backing buffer.  An OutArchive bound to it appends in place;
  /// callers may also patch reserved gaps (length prefixes, batch headers)
  /// directly.  The reference stays valid for the arena's lifetime.
  [[nodiscard]] Bytes& storage() { return buffer_; }
  [[nodiscard]] const Bytes& storage() const { return buffer_; }

  /// Close out one batch epoch: record how much of the buffer the batch
  /// used, reset the write position (keeping the allocation), and — once per
  /// window — shrink capacity that dwarfs the recent high-water mark.
  void end_epoch() {
    window_[epoch_ % window_.size()] = buffer_.size();
    ++epoch_;
    buffer_.clear();
    if (epoch_ % window_.size() == 0) maybe_shrink();
  }

  /// Drop pending bytes without recording an epoch (discard path).
  void reset() { buffer_.clear(); }

  [[nodiscard]] std::size_t capacity() const { return buffer_.capacity(); }
  [[nodiscard]] std::uint64_t epochs() const { return epoch_; }
  [[nodiscard]] std::uint64_t shrinks() const { return shrinks_; }

  /// High-water usage across the current rolling window.
  [[nodiscard]] std::size_t window_peak() const {
    return *std::max_element(window_.begin(), window_.end());
  }

 private:
  void maybe_shrink() {
    const std::size_t peak = std::max(window_peak(), kMinRetainedBytes);
    if (buffer_.capacity() <= 2 * peak) return;
    Bytes trimmed;
    trimmed.reserve(peak);
    buffer_.swap(trimmed);
    ++shrinks_;
  }

  Bytes buffer_;
  std::vector<std::size_t> window_;
  std::uint64_t epoch_ = 0;
  std::uint64_t shrinks_ = 0;
};

}  // namespace pia::serial
