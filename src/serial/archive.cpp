#include "serial/archive.hpp"

namespace pia::serial {

void begin_section(OutArchive& ar, std::string_view name,
                   std::uint32_t version) {
  ar.put_string(name);
  ar.put_varint(version);
}

std::uint32_t expect_section(InArchive& ar, std::string_view name) {
  const std::string got = ar.get_string();
  if (got != name) {
    raise(ErrorKind::kSerialization,
          "archive section mismatch: expected '" + std::string(name) +
              "', found '" + got + "'");
  }
  return static_cast<std::uint32_t>(ar.get_varint());
}

}  // namespace pia::serial
