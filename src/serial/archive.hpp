// Binary archives: the one serialization format used for both checkpoint
// images (paper §2.1.2) and channel wire messages (paper §2.2.1).
//
// Encoding rules:
//   * unsigned integers: LEB128 varint (checkpoints are dominated by small
//     counters; varint keeps images compact, which matters for the
//     incremental-checkpoint extension)
//   * signed integers: zigzag + varint
//   * bool: one byte
//   * double: 8 bytes little-endian IEEE bits
//   * string / Bytes: varint length + raw bytes
//   * containers: varint size + elements
//
// The format is explicitly little-endian on the wire so that heterogeneous
// Pia nodes interoperate.  Reads validate bounds and throw
// Error{kSerialization} on underflow — a truncated checkpoint must never be
// silently restored.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/bytes.hpp"
#include "base/error.hpp"
#include "base/ids.hpp"
#include "base/time.hpp"

namespace pia::serial {

/// Encode v as LEB128 into out[0..9]; returns the byte count (1–10).
inline std::size_t encode_varint(std::byte* out, std::uint64_t v) {
  std::size_t n = 0;
  while (v >= 0x80) {
    out[n++] = std::byte{static_cast<std::uint8_t>(v | 0x80)};
    v >>= 7;
  }
  out[n++] = std::byte{static_cast<std::uint8_t>(v)};
  return n;
}

/// Encode v as EXACTLY `width` LEB128 bytes by padding with redundant
/// continuation groups (high bits zero).  The decoder accepts redundant
/// encodings, so this lets a length prefix be reserved at a fixed width and
/// back-patched in place once the payload length is known — the heart of the
/// arena's single-pass batch encoding.  v must fit in 7*width bits.
inline void encode_padded_varint(std::byte* out, std::size_t width,
                                 std::uint64_t v) {
  for (std::size_t i = 0; i + 1 < width; ++i) {
    out[i] = std::byte{static_cast<std::uint8_t>((v & 0x7F) | 0x80)};
    v >>= 7;
  }
  out[width - 1] = std::byte{static_cast<std::uint8_t>(v & 0x7F)};
}

class OutArchive {
 public:
  OutArchive() = default;

  /// Arena-backed mode: append into an external buffer (e.g. a
  /// FrameArena's storage) instead of the archive's own.  The caller
  /// guarantees `external` outlives the archive.
  explicit OutArchive(Bytes& external) : buffer_(&external) {}

  OutArchive(const OutArchive&) = delete;
  OutArchive& operator=(const OutArchive&) = delete;
  OutArchive(OutArchive&& other) noexcept
      : own_(std::move(other.own_)),
        buffer_(other.buffer_ == &other.own_ ? &own_ : other.buffer_) {}
  OutArchive& operator=(OutArchive&& other) noexcept {
    if (this == &other) return *this;
    own_ = std::move(other.own_);
    buffer_ = other.buffer_ == &other.own_ ? &own_ : other.buffer_;
    return *this;
  }

  /// Take the encoded bytes out of the archive.
  [[nodiscard]] Bytes take() && { return std::move(*buffer_); }
  [[nodiscard]] const Bytes& bytes() const { return *buffer_; }
  [[nodiscard]] std::size_t size() const { return buffer_->size(); }

  /// Reset for reuse, keeping the allocation (scratch-archive pattern on
  /// the channel send path).
  void clear() { buffer_->clear(); }
  void reserve(std::size_t n) { buffer_->reserve(n); }

  void put_u8(std::uint8_t v) { buffer_->push_back(std::byte{v}); }

  void put_varint(std::uint64_t v) {
    while (v >= 0x80) {
      put_u8(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    put_u8(static_cast<std::uint8_t>(v));
  }

  void put_i64(std::int64_t v) {
    // zigzag
    put_varint((static_cast<std::uint64_t>(v) << 1) ^
               static_cast<std::uint64_t>(v >> 63));
  }

  void put_bool(bool v) { put_u8(v ? 1 : 0); }

  void put_double(double v) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) put_u8(static_cast<std::uint8_t>(bits >> (8 * i)));
  }

  void put_raw(BytesView raw) {
    buffer_->insert(buffer_->end(), raw.begin(), raw.end());
  }

  void put_bytes(BytesView raw) {
    put_varint(raw.size());
    put_raw(raw);
  }

  void put_string(std::string_view s) {
    put_varint(s.size());
    const auto* p = reinterpret_cast<const std::byte*>(s.data());
    buffer_->insert(buffer_->end(), p, p + s.size());
  }

 private:
  Bytes own_;
  Bytes* buffer_ = &own_;
};

// InArchive is a borrowed-buffer reader: it never copies the backing bytes,
// so a receiver can decode a frame in place — straight out of a shared-memory
// ring slot or a loopback queue — as long as the buffer outlives every view
// handed out (get_view, and any Value payloads still aliasing it).  Decoded
// messages copy payloads OUT of the frame (Value::load), so once decoding
// finishes the borrowed frame may be released.
class InArchive {
 public:
  explicit InArchive(BytesView data) : data_(data) {}

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return remaining() == 0; }

  std::uint8_t get_u8() {
    if (pos_ >= data_.size())
      raise(ErrorKind::kSerialization, "archive underflow");
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint64_t get_varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      if (shift > 63) raise(ErrorKind::kSerialization, "varint too long");
      const std::uint8_t b = get_u8();
      v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
      if (!(b & 0x80)) return v;
      shift += 7;
    }
  }

  std::int64_t get_i64() {
    const std::uint64_t z = get_varint();
    return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
  }

  bool get_bool() { return get_u8() != 0; }

  double get_double() {
    std::uint64_t bits = 0;
    for (int i = 0; i < 8; ++i)
      bits |= static_cast<std::uint64_t>(get_u8()) << (8 * i);
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  Bytes get_bytes() {
    const std::uint64_t n = get_varint();
    if (n > remaining())
      raise(ErrorKind::kSerialization, "bytes length exceeds archive");
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }

  std::string get_string() {
    const std::uint64_t n = get_varint();
    if (n > remaining())
      raise(ErrorKind::kSerialization, "string length exceeds archive");
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return out;
  }

  /// Zero-copy view of the next n bytes (valid while the backing buffer
  /// lives).  Batch decoding and Value::load use this to avoid temporaries.
  BytesView get_view(std::uint64_t n) {
    if (n > remaining())
      raise(ErrorKind::kSerialization, "view length exceeds archive");
    const BytesView out = data_.subspan(pos_, static_cast<std::size_t>(n));
    pos_ += static_cast<std::size_t>(n);
    return out;
  }

 private:
  BytesView data_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Generic write/read overload set.  Component authors serialize state with
//   serial::write(ar, member);  member = serial::read<T>(ar);
// ---------------------------------------------------------------------------

inline void write(OutArchive& ar, bool v) { ar.put_bool(v); }
inline void write(OutArchive& ar, double v) { ar.put_double(v); }
inline void write(OutArchive& ar, const std::string& v) { ar.put_string(v); }
inline void write(OutArchive& ar, const Bytes& v) { ar.put_bytes(v); }
inline void write(OutArchive& ar, VirtualTime v) { ar.put_i64(v.ticks()); }

template <typename T>
  requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
void write(OutArchive& ar, T v) {
  if constexpr (std::is_signed_v<T>) ar.put_i64(static_cast<std::int64_t>(v));
  else ar.put_varint(static_cast<std::uint64_t>(v));
}

template <typename T>
  requires std::is_enum_v<T>
void write(OutArchive& ar, T v) {
  ar.put_varint(static_cast<std::uint64_t>(v));
}

template <typename Tag>
void write(OutArchive& ar, Id<Tag> id) {
  ar.put_varint(id.value());
}

template <typename T>
void write(OutArchive& ar, const std::vector<T>& v) {
  ar.put_varint(v.size());
  for (const auto& x : v) write(ar, x);
}

template <typename T>
void write(OutArchive& ar, const std::optional<T>& v) {
  ar.put_bool(v.has_value());
  if (v) write(ar, *v);
}

template <typename K, typename V>
void write(OutArchive& ar, const std::map<K, V>& m) {
  ar.put_varint(m.size());
  for (const auto& [k, v] : m) {
    write(ar, k);
    write(ar, v);
  }
}

template <typename A, typename B>
void write(OutArchive& ar, const std::pair<A, B>& p) {
  write(ar, p.first);
  write(ar, p.second);
}

template <typename T>
T read(InArchive& ar);

template <> inline bool read<bool>(InArchive& ar) { return ar.get_bool(); }
template <> inline double read<double>(InArchive& ar) { return ar.get_double(); }
template <> inline std::string read<std::string>(InArchive& ar) { return ar.get_string(); }
template <> inline Bytes read<Bytes>(InArchive& ar) { return ar.get_bytes(); }
template <> inline VirtualTime read<VirtualTime>(InArchive& ar) {
  return VirtualTime{ar.get_i64()};
}

template <typename T>
  requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
T read_integral(InArchive& ar) {
  if constexpr (std::is_signed_v<T>) return static_cast<T>(ar.get_i64());
  else return static_cast<T>(ar.get_varint());
}

template <> inline std::uint8_t read<std::uint8_t>(InArchive& ar) { return read_integral<std::uint8_t>(ar); }
template <> inline std::uint16_t read<std::uint16_t>(InArchive& ar) { return read_integral<std::uint16_t>(ar); }
template <> inline std::uint32_t read<std::uint32_t>(InArchive& ar) { return read_integral<std::uint32_t>(ar); }
template <> inline std::uint64_t read<std::uint64_t>(InArchive& ar) { return read_integral<std::uint64_t>(ar); }
template <> inline std::int8_t read<std::int8_t>(InArchive& ar) { return read_integral<std::int8_t>(ar); }
template <> inline std::int16_t read<std::int16_t>(InArchive& ar) { return read_integral<std::int16_t>(ar); }
template <> inline std::int32_t read<std::int32_t>(InArchive& ar) { return read_integral<std::int32_t>(ar); }
template <> inline std::int64_t read<std::int64_t>(InArchive& ar) { return read_integral<std::int64_t>(ar); }

template <typename T>
  requires std::is_enum_v<T>
T read_enum(InArchive& ar) {
  return static_cast<T>(ar.get_varint());
}

template <typename Tag>
Id<Tag> read_id(InArchive& ar) {
  return Id<Tag>{static_cast<typename Id<Tag>::underlying_type>(ar.get_varint())};
}

template <typename T>
std::vector<T> read_vector(InArchive& ar) {
  const std::uint64_t n = ar.get_varint();
  std::vector<T> out;
  out.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) out.push_back(read<T>(ar));
  return out;
}

template <typename T>
std::optional<T> read_optional(InArchive& ar) {
  if (!ar.get_bool()) return std::nullopt;
  return read<T>(ar);
}

template <typename K, typename V>
std::map<K, V> read_map(InArchive& ar) {
  const std::uint64_t n = ar.get_varint();
  std::map<K, V> out;
  for (std::uint64_t i = 0; i < n; ++i) {
    K k = read<K>(ar);
    V v = read<V>(ar);
    out.emplace(std::move(k), std::move(v));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Versioned section headers.  Checkpoint images carry a schema version per
// component so an old image is rejected loudly instead of misparsed.
// ---------------------------------------------------------------------------

void begin_section(OutArchive& ar, std::string_view name, std::uint32_t version);

/// Returns the stored version; throws if the name does not match.
std::uint32_t expect_section(InArchive& ar, std::string_view name);

}  // namespace pia::serial
