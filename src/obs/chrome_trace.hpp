// Chrome trace_event export (the observability layer's rendering side).
//
// Serializes a set of TraceBuffers — one per subsystem — into the Chrome
// trace-event JSON object format, loadable in chrome://tracing and
// https://ui.perfetto.dev.  Each buffer becomes one named thread track
// (tid); every TraceRecord becomes a thread-scoped instant event stamped
// with its capture wall time, carrying the virtual time and detail args.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace pia::obs {

/// Renders `tracks` as a Chrome trace-event JSON object to `os`.  With
/// `metrics`, every registry scope additionally becomes one trailing
/// counter event ("ph":"C") so final counter values — e.g. a channel's
/// link_messages_sent vs link_frames_sent batching ratio — show up as
/// counter tracks alongside the instant events.
void write_chrome_trace(std::ostream& os,
                        const std::vector<const TraceBuffer*>& tracks,
                        const MetricsRegistry* metrics = nullptr);

/// Same, to a file.  Throws Error{kState} when the file cannot be written.
void write_chrome_trace_file(const std::string& path,
                             const std::vector<const TraceBuffer*>& tracks,
                             const MetricsRegistry* metrics = nullptr);

}  // namespace pia::obs
