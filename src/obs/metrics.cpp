#include "obs/metrics.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "base/error.hpp"
#include "obs/json.hpp"

namespace pia::obs {
namespace {

void append_value(std::string& out, const MetricsRegistry::MetricValue& v) {
  char buf[64];
  if (const auto* u = std::get_if<std::uint64_t>(&v)) {
    std::snprintf(buf, sizeof(buf), "%" PRIu64, *u);
  } else if (const auto* i = std::get_if<std::int64_t>(&v)) {
    std::snprintf(buf, sizeof(buf), "%" PRId64, *i);
  } else {
    // %.17g round-trips doubles; JSON has no inf/nan, clamp to null.
    const double d = std::get<double>(v);
    if (d != d || d > 1.7e308 || d < -1.7e308) {
      out += "null";
      return;
    }
    std::snprintf(buf, sizeof(buf), "%.17g", d);
  }
  out += buf;
}

}  // namespace

void MetricsRegistry::set(const std::string& scope, const std::string& name,
                          std::uint64_t value) {
  scopes_[scope][name] = value;
}

void MetricsRegistry::set(const std::string& scope, const std::string& name,
                          std::int64_t value) {
  scopes_[scope][name] = value;
}

void MetricsRegistry::set(const std::string& scope, const std::string& name,
                          double value) {
  scopes_[scope][name] = value;
}

MetricsRegistry::MetricValue MetricsRegistry::get(
    const std::string& scope, const std::string& name) const {
  const auto sit = scopes_.find(scope);
  if (sit == scopes_.end()) return std::uint64_t{0};
  const auto nit = sit->second.find(name);
  if (nit == sit->second.end()) return std::uint64_t{0};
  return nit->second;
}

bool MetricsRegistry::has_scope(const std::string& scope) const {
  return scopes_.contains(scope);
}

std::string MetricsRegistry::to_json() const {
  std::string out;
  out.push_back('{');
  bool first_scope = true;
  for (const auto& [scope, metrics] : scopes_) {
    if (!first_scope) out.push_back(',');
    first_scope = false;
    json_append_string(out, scope);
    out += ":{";
    bool first_metric = true;
    for (const auto& [name, value] : metrics) {
      if (!first_metric) out.push_back(',');
      first_metric = false;
      json_append_string(out, name);
      out.push_back(':');
      append_value(out, value);
    }
    out.push_back('}');
  }
  out.push_back('}');
  return out;
}

void MetricsRegistry::write_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) raise(ErrorKind::kState, "cannot open metrics file " + path);
  os << to_json();
  os.flush();
  if (!os) raise(ErrorKind::kState, "failed writing metrics file " + path);
}

}  // namespace pia::obs
