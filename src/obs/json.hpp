// Tiny JSON emission helpers shared by the trace and metrics exporters.
// Emission only — the framework never parses JSON.
#pragma once

#include <string>
#include <string_view>

namespace pia::obs {

/// Appends `text` to `out` as a JSON string literal (quotes included),
/// escaping control characters, quotes and backslashes.
void json_append_string(std::string& out, std::string_view text);

}  // namespace pia::obs
