#include "obs/trace.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "base/error.hpp"

namespace pia::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

std::chrono::steady_clock::time_point trace_epoch() {
  static const auto epoch = std::chrono::steady_clock::now();
  return epoch;
}

// Apply PIA_TRACE before main() so examples and benches can be traced with
// no code changes: PIA_TRACE=1 ./distributed_codesign
const bool g_env_applied = [] {
  init_trace_from_env();
  return true;
}();

}  // namespace

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kDispatch: return "dispatch";
    case TraceKind::kChannelSend: return "channel_send";
    case TraceKind::kChannelRecv: return "channel_recv";
    case TraceKind::kGrantRequest: return "grant_request";
    case TraceKind::kGrant: return "grant";
    case TraceKind::kStall: return "stall";
    case TraceKind::kRollback: return "rollback";
    case TraceKind::kCheckpoint: return "checkpoint";
    case TraceKind::kMark: return "mark";
    case TraceKind::kHeartbeat: return "heartbeat";
    case TraceKind::kPeerDown: return "peer_down";
    case TraceKind::kSnapshotPersist: return "snapshot_persist";
    case TraceKind::kRecover: return "recover";
    case TraceKind::kModeChange: return "mode_change";
  }
  return "unknown";
}

void set_trace_enabled(bool enabled) {
  detail::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

void init_trace_from_env() {
  const char* value = std::getenv("PIA_TRACE");
  if (value == nullptr) return;
  const bool on = std::strcmp(value, "1") == 0 ||
                  std::strcmp(value, "true") == 0 ||
                  std::strcmp(value, "on") == 0;
  set_trace_enabled(on);
}

std::size_t default_trace_capacity() {
  static const std::size_t capacity = [] {
    const char* value = std::getenv("PIA_TRACE_CAPACITY");
    if (value != nullptr) {
      const long long parsed = std::atoll(value);
      if (parsed > 0) return static_cast<std::size_t>(parsed);
    }
    return TraceBuffer::kDefaultCapacity;
  }();
  return capacity;
}

std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - trace_epoch())
          .count());
}

TraceBuffer::TraceBuffer(std::string track, std::size_t capacity)
    : track_(std::move(track)), capacity_(capacity) {
  PIA_REQUIRE(capacity_ > 0, "trace buffer capacity must be positive");
  ring_.reserve(capacity_ < 4096 ? capacity_ : 4096);
}

void TraceBuffer::record(TraceKind kind, VirtualTime virtual_time,
                         std::uint64_t arg0, std::uint64_t arg1) {
  const TraceRecord rec{.kind = kind,
                        .virtual_time = virtual_time.ticks(),
                        .wall_ns = trace_now_ns(),
                        .arg0 = arg0,
                        .arg1 = arg1};
  if (ring_.size() < capacity_) {
    ring_.push_back(rec);
  } else {
    ring_[head_] = rec;
    head_ = (head_ + 1) % capacity_;
  }
  ++total_;
}

std::vector<TraceRecord> TraceBuffer::snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
             ring_.end());
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  return out;
}

std::size_t TraceBuffer::size() const { return ring_.size(); }

std::uint64_t TraceBuffer::dropped() const {
  return total_ - ring_.size();
}

void TraceBuffer::clear() {
  ring_.clear();
  head_ = 0;
  total_ = 0;
}

}  // namespace pia::obs
