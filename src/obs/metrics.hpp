// MetricsRegistry: a flat, scoped counter snapshot with JSON export.
//
// The framework counts everything — SubsystemStats, LinkStats, scheduler
// dispatch counters — but until this layer existed the numbers died inside
// their structs.  A MetricsRegistry collects them as (scope, name, value)
// entries and renders one machine-readable JSON object:
//
//   { "scope": { "name": value, ... }, ... }
//
// Scopes are free-form paths ("sub/handheld", "chan/handheld/hh-chip").
// The distributed layer fills one from a NodeCluster (NodeCluster::metrics);
// bench_util.hpp embeds one into every BENCH_*.json record.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>

namespace pia::obs {

class MetricsRegistry {
 public:
  using MetricValue = std::variant<std::uint64_t, std::int64_t, double>;

  void set(const std::string& scope, const std::string& name,
           std::uint64_t value);
  void set(const std::string& scope, const std::string& name,
           std::int64_t value);
  void set(const std::string& scope, const std::string& name, double value);

  /// Value previously set, or 0 if absent (counters default to zero).
  [[nodiscard]] MetricValue get(const std::string& scope,
                                const std::string& name) const;
  [[nodiscard]] bool has_scope(const std::string& scope) const;
  [[nodiscard]] std::size_t scope_count() const { return scopes_.size(); }

  /// Read-only view of every (scope -> name -> value) entry, sorted.
  [[nodiscard]] const std::map<std::string,
                               std::map<std::string, MetricValue>>&
  entries() const {
    return scopes_;
  }

  /// Deterministic (scope- and name-sorted) JSON object.
  [[nodiscard]] std::string to_json() const;
  /// Throws Error{kState} when the file cannot be written.
  void write_file(const std::string& path) const;

 private:
  std::map<std::string, std::map<std::string, MetricValue>> scopes_;
};

}  // namespace pia::obs
