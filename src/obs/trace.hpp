// Low-overhead structured tracing (the observability layer's capture side).
//
// Every Scheduler owns a TraceBuffer: a fixed-capacity ring of typed
// records, each stamped with the virtual time it describes and the wall
// time it was captured at.  The distributed layer records its protocol
// milestones (channel send/recv, grant request/grant, stall, rollback,
// checkpoint, Chandy–Lamport mark) into the same per-subsystem buffer, so
// one buffer is one track of a whole-cluster timeline (see
// chrome_trace.hpp for the export side).
//
// Capture is gated on a single process-global flag, settable in code
// (set_trace_enabled) or via the PIA_TRACE environment variable.  Hot
// paths go through PIA_OBS_TRACE, which compiles to one relaxed atomic
// load + branch when tracing is off — and to nothing at all when the
// library is built with PIA_OBS_DISABLED.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "base/time.hpp"

namespace pia::obs {

enum class TraceKind : std::uint8_t {
  kDispatch,      // scheduler dispatched an event        a0=component, a1=kind
  kChannelSend,   // EventMsg left on a channel           a0=channel, a1=net
  kChannelRecv,   // EventMsg arrived on a channel        a0=channel, a1=net
  kGrantRequest,  // safe-time request sent               a0=channel
  kGrant,         // safe-time grant received             a0=channel, a1=seen
  kStall,         // run loop blocked on a grant          a0=blocked channels
  kRollback,      // optimistic rollback performed        a0=rollback ordinal
  kCheckpoint,    // checkpoint taken                     a0=snapshot ordinal
  kMark,          // Chandy–Lamport mark                  a0=token, a1=initiated
  kHeartbeat,     // liveness beacon sent                 a0=channel, a1=seq
  kPeerDown,      // liveness timeout expired             a0=channel
  kSnapshotPersist,  // snapshot committed to disk        a0=token, a1=bytes
  kRecover,       // subsystem restored from disk         a0=token
  kModeChange,    // channel sync mode renegotiated       a0=channel, a1=epoch
};

[[nodiscard]] const char* trace_kind_name(TraceKind kind);

struct TraceRecord {
  TraceKind kind{};
  std::int64_t virtual_time = 0;  // ticks (VirtualTime::infinity() verbatim)
  std::uint64_t wall_ns = 0;      // monotonic, since trace_epoch
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// True when capture is on.  Reading is wait-free; keep this the only check
/// on hot paths.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

void set_trace_enabled(bool enabled);

/// Applies the PIA_TRACE environment variable (1/true/on enable capture).
/// Runs once automatically at static-init time; callable again for tests.
void init_trace_from_env();

/// Monotonic nanoseconds since the process trace epoch (first use).
[[nodiscard]] std::uint64_t trace_now_ns();

/// Ring capacity schedulers use for their buffers: TraceBuffer's default
/// unless the PIA_TRACE_CAPACITY environment variable overrides it (deep
/// runs overwrite early records — a snapshot mark at t=0 does not survive a
/// million dispatches in a 64Ki ring).
[[nodiscard]] std::size_t default_trace_capacity();

class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 1u << 16;

  explicit TraceBuffer(std::string track,
                       std::size_t capacity = kDefaultCapacity);

  /// Appends one record, overwriting the oldest when full.  Callers gate on
  /// trace_enabled() (via PIA_OBS_TRACE); record() itself never checks.
  void record(TraceKind kind, VirtualTime virtual_time, std::uint64_t arg0 = 0,
              std::uint64_t arg1 = 0);

  /// Records in capture order, oldest first.
  [[nodiscard]] std::vector<TraceRecord> snapshot() const;

  [[nodiscard]] const std::string& track() const { return track_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t size() const;
  /// Records ever captured, including those the ring has overwritten.
  [[nodiscard]] std::uint64_t total_recorded() const { return total_; }
  [[nodiscard]] std::uint64_t dropped() const;

  void clear();

 private:
  std::string track_;
  std::size_t capacity_;
  std::vector<TraceRecord> ring_;
  std::size_t head_ = 0;  // next slot to write once the ring is full
  std::uint64_t total_ = 0;
};

}  // namespace pia::obs

#if defined(PIA_OBS_DISABLED)
#define PIA_OBS_TRACE(buffer, ...) \
  do {                             \
  } while (false)
#else
#define PIA_OBS_TRACE(buffer, ...)                            \
  do {                                                        \
    if (::pia::obs::trace_enabled()) (buffer).record(__VA_ARGS__); \
  } while (false)
#endif
