#include "obs/chrome_trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <fstream>

#include "base/error.hpp"
#include "obs/json.hpp"

namespace pia::obs {
namespace {

constexpr int kPid = 1;  // one process; tracks are threads within it

void append_event(std::string& out, const TraceRecord& rec, int tid) {
  char buf[192];
  // ts is microseconds (Chrome's unit); keep nanosecond precision in the
  // fraction.  Virtual time rides in args, the record kind is the name.
  std::snprintf(buf, sizeof(buf),
                "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"ts\":%" PRIu64
                ".%03u,\"pid\":%d,\"tid\":%d,\"args\":{\"vt\":%" PRId64
                ",\"a0\":%" PRIu64 ",\"a1\":%" PRIu64 "}}",
                trace_kind_name(rec.kind), rec.wall_ns / 1000,
                static_cast<unsigned>(rec.wall_ns % 1000), kPid, tid,
                rec.virtual_time, rec.arg0, rec.arg1);
  out += buf;
}

void append_metric_value(std::string& out,
                         const MetricsRegistry::MetricValue& value) {
  char buf[48];
  if (const auto* u = std::get_if<std::uint64_t>(&value))
    std::snprintf(buf, sizeof(buf), "%" PRIu64, *u);
  else if (const auto* i = std::get_if<std::int64_t>(&value))
    std::snprintf(buf, sizeof(buf), "%" PRId64, *i);
  else
    std::snprintf(buf, sizeof(buf), "%.17g", std::get<double>(value));
  out += buf;
}

}  // namespace

void write_chrome_trace(std::ostream& os,
                        const std::vector<const TraceBuffer*>& tracks,
                        const MetricsRegistry* metrics) {
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  int tid = 0;
  for (const TraceBuffer* track : tracks) {
    ++tid;
    if (track == nullptr) continue;
    if (!first) out.push_back(',');
    first = false;
    // Name the track after its subsystem.
    out += "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":";
    out += std::to_string(tid);
    out += ",\"args\":{\"name\":";
    json_append_string(out, track->track());
    out += "}}";
    for (const TraceRecord& rec : track->snapshot()) {
      out.push_back(',');
      append_event(out, rec, tid);
    }
  }
  if (metrics != nullptr) {
    // One counter sample per scope, carrying every counter in that scope.
    for (const auto& [scope, values] : metrics->entries()) {
      if (!first) out.push_back(',');
      first = false;
      out += "{\"name\":";
      json_append_string(out, scope);
      out += ",\"ph\":\"C\",\"ts\":0,\"pid\":1,\"args\":{";
      bool first_value = true;
      for (const auto& [name, value] : values) {
        if (!first_value) out.push_back(',');
        first_value = false;
        json_append_string(out, name);
        out.push_back(':');
        append_metric_value(out, value);
      }
      out += "}}";
    }
  }
  out += "]}";
  os << out;
}

void write_chrome_trace_file(const std::string& path,
                             const std::vector<const TraceBuffer*>& tracks,
                             const MetricsRegistry* metrics) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) raise(ErrorKind::kState, "cannot open trace file " + path);
  write_chrome_trace(os, tracks, metrics);
  os.flush();
  if (!os) raise(ErrorKind::kState, "failed writing trace file " + path);
}

}  // namespace pia::obs
