// Shared-memory ring Link for co-located nodes.
//
// One mmap(MAP_SHARED)-backed byte ring per direction: the producer appends
// length-prefixed frames at an acquire/release tail cursor, the consumer
// walks a head cursor, and frames never straddle the wrap point (a wrap
// marker burns the tail slack instead), so every inbound frame is one
// contiguous segment the receiver can decode IN PLACE via the Link
// borrowed-view API — the only copy between two co-located endpoints is the
// producer's single memcpy into the ring.
//
// The ring implements the full Link contract: FIFO, never-blocking send (a
// full ring spills to an in-process overflow queue exactly like the SPSC
// link, bursts only), closed() on peer close/death, atomic LinkStats with
// byte counters, and frame-granular compatibility with the FaultLink /
// LatencyLink decorators.  Readiness integrates with ChannelSet::wait_any
// through the shared ReadySignal doorbell (eventfd on Linux).
//
// Deployment note: the cursors and payload bytes live in the MAP_SHARED
// region (a forked co-located worker inherits them); the doorbell and spill
// queue are in-process conveniences for the node-in-one-process topologies
// this repo runs.  Cross-host traffic stays on TCP — shm is negotiated only
// for same-host peers (see dist/node.cpp and the rejoin capability varint).
#pragma once

#include <cstddef>

#include "transport/link.hpp"

namespace pia::transport {

/// Default per-direction ring capacity.
inline constexpr std::size_t kShmDefaultRingBytes = 1 << 20;

/// Shared-memory ring pair with an explicit per-direction ring size
/// (rounded up to a power of two, minimum 64 bytes).  The zero-argument
/// overload in link.hpp uses kShmDefaultRingBytes.
LinkPair make_shm_pair(std::size_t ring_bytes);

}  // namespace pia::transport
