// ReadySignal: a process-internal readiness pulse shared by many Links.
//
// A subsystem idling on N channels must not scan them sequentially (worst
// case N × poll-timeout wake latency).  Instead every in-process link of the
// subsystem shares one ReadySignal: a sender pulses it when a frame lands in
// a queue the subsystem might be sleeping on, and the subsystem's single
// wait includes the signal's fd alongside the kernel fds of any socket
// links.  Wake latency is then one poll() round regardless of channel count.
//
// On Linux this is an eventfd doorbell: one fd instead of a pipe pair,
// notify() adds to the counter (saturation already reads as ready, so a
// refused add is harmless), drain() reads the counter to zero in one
// syscall.  Elsewhere it falls back to the classic self-pipe.  Either way it
// composes with ::poll over socket fds, and drain() empties the doorbell
// before a wait so stale pulses don't cause busy spinning.
#pragma once

#include <memory>

namespace pia::transport {

class ReadySignal {
 public:
  ReadySignal();
  ~ReadySignal();

  ReadySignal(const ReadySignal&) = delete;
  ReadySignal& operator=(const ReadySignal&) = delete;

  /// Marks the signal ready; safe to call from any thread, never blocks.
  void notify();

  /// Consumes queued pulses.  Callers drain *before* re-inspecting the
  /// queues they guard: a pulse that races the drain re-arms the next wait
  /// rather than being lost.  Returns true if any pulse was consumed — a
  /// consumed pulse means a sender signalled since the last drain, so the
  /// guarded queues must be re-inspected before sleeping at all.
  bool drain();

  /// The fd a waiter adds to its poll set (POLLIN when notified).
  [[nodiscard]] int fd() const { return fds_[0]; }

 private:
  // eventfd mode uses fds_[0] only; pipe mode uses both ends.
  int fds_[2] = {-1, -1};
};

using ReadySignalPtr = std::shared_ptr<ReadySignal>;

}  // namespace pia::transport
