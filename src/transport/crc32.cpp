#include "transport/crc32.hpp"

#include <array>

namespace pia::transport {
namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k)
      c = (c & 1) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32(BytesView data) {
  std::uint32_t c = 0xFFFFFFFFU;
  for (std::byte b : data)
    c = kTable[(c ^ static_cast<std::uint8_t>(b)) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFU;
}

}  // namespace pia::transport
