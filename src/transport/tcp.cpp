#include "transport/tcp.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <future>
#include <limits>
#include <thread>

#include "base/error.hpp"
#include "base/log.hpp"
#include "base/rng.hpp"
#include "transport/frame.hpp"

namespace pia::transport {
namespace {

[[noreturn]] void raise_errno(const std::string& what) {
  raise(ErrorKind::kTransport, what + ": " + std::strerror(errno));
}

class TcpLink final : public Link {
 public:
  explicit TcpLink(int fd) : fd_(fd) {
    const int one = 1;
    // Word-level co-simulation sends thousands of tiny messages; Nagle
    // would serialize them behind ACKs and distort every timing number.
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpLink() override { close(); }

  void send(BytesView frame, std::uint32_t message_count = 1) override {
    if (fd_ < 0) raise(ErrorKind::kTransport, "send on closed tcp link");
    encode_frame_into(frame_scratch_, frame);
    std::size_t off = 0;
    while (off < frame_scratch_.size()) {
      const ssize_t n = ::send(fd_, frame_scratch_.data() + off,
                               frame_scratch_.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        raise_errno("tcp send");
      }
      off += static_cast<std::size_t>(n);
    }
    stats_.count_send(message_count, frame.size());
  }

  std::optional<Bytes> try_recv() override { return recv_impl(0); }

  std::optional<Bytes> recv_for(std::chrono::milliseconds timeout) override {
    // Clamp before narrowing: a timeout over INT_MAX ms would otherwise
    // wrap negative, which poll() treats as "wait forever".
    const auto ms = std::clamp<std::chrono::milliseconds::rep>(
        timeout.count(), 0, std::numeric_limits<int>::max());
    return recv_impl(static_cast<int>(ms));
  }

  void close() override {
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

  // A dead fd alone is not "closed": complete frames may still sit in the
  // decoder and must be drained first.  A *partial* frame left behind by a
  // peer that died mid-send can never complete, though — counting it as
  // open would make pollers spin on the residue forever.
  bool closed() const override {
    return fd_ < 0 && !decoder_.has_complete_frame();
  }

  LinkStats stats() const override { return stats_.snapshot(); }

  std::string describe() const override { return "tcp"; }

  // The socket fd doubles as the readiness source: data and EOF both make
  // it readable.  Complete frames never linger in the decoder across an
  // idle period (every drain pass pops until empty), so fd readiness alone
  // is a complete wake condition.
  int readable_fd() const override { return fd_; }

 private:
  std::optional<Bytes> recv_impl(int timeout_ms) {
    if (auto msg = pop()) return msg;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      if (fd_ < 0) return std::nullopt;
      const auto now = std::chrono::steady_clock::now();
      // Round the remaining wait UP: truncating 0.9 ms to 0 would turn the
      // poll into a busy spin (and starve peers of CPU).
      const int remaining =
          timeout_ms == 0
              ? 0
              : static_cast<int>(std::max<std::int64_t>(
                    0, std::chrono::ceil<std::chrono::milliseconds>(
                           deadline - now)
                           .count()));
      pollfd pfd{.fd = fd_, .events = POLLIN, .revents = 0};
      const int pr = ::poll(&pfd, 1, remaining);
      if (pr < 0) {
        if (errno == EINTR) continue;
        raise_errno("tcp poll");
      }
      if (pr == 0) return std::nullopt;  // timed out

      std::byte chunk[16384];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        raise_errno("tcp recv");
      }
      if (n == 0) {  // peer closed
        ::close(fd_);
        fd_ = -1;
        if (const std::size_t residue = decoder_.truncated_residue())
          PIA_WARN("tcp link closed mid-frame: " << residue
                   << " trailing bytes form no complete frame (truncated)");
        return pop();
      }
      decoder_.feed(BytesView{chunk, static_cast<std::size_t>(n)});
      if (auto msg = pop()) return msg;
      if (timeout_ms == 0) return std::nullopt;
    }
  }

  std::optional<Bytes> pop() {
    auto msg = decoder_.next();
    if (msg) stats_.count_recv(msg->size());
    return msg;
  }

  int fd_;
  FrameDecoder decoder_;
  Bytes frame_scratch_;  // reused PIAF frame assembly buffer
  // A sender and a receiver thread may share this endpoint, and stats() is
  // read without any lock (metrics collection): counters are atomic.
  AtomicLinkStats stats_;
};

}  // namespace

TcpListener::TcpListener(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) raise_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0)
    raise_errno("bind");
  if (::listen(fd_, 16) < 0) raise_errno("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0)
    raise_errno("getsockname");
  port_ = ntohs(addr.sin_port);
}

TcpListener::~TcpListener() { close(); }

LinkPtr TcpListener::accept() {
  if (fd_ < 0) raise(ErrorKind::kTransport, "accept on closed listener");
  const int conn = ::accept(fd_, nullptr, nullptr);
  if (conn < 0) raise_errno("accept");
  return std::make_unique<TcpLink>(conn);
}

void TcpListener::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

LinkPtr tcp_connect(std::uint16_t port, std::chrono::milliseconds deadline) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);

  // The listener may still be racing to bind — or be a whole node mid
  // restart.  Retry with jittered exponential backoff until the deadline.
  const auto give_up_at = std::chrono::steady_clock::now() + deadline;
  Rng jitter(static_cast<std::uint64_t>(
                 std::chrono::steady_clock::now().time_since_epoch().count()) ^
             (static_cast<std::uint64_t>(port) << 48));
  std::chrono::microseconds backoff(1000);
  constexpr std::chrono::microseconds kBackoffCap(128000);
  for (;;) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) raise_errno("socket");
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0)
      return std::make_unique<TcpLink>(fd);
    // Capture the connect failure before close() gets a chance to clobber
    // errno with its own (successful or not) result.
    const int connect_errno = errno;
    ::close(fd);
    if (std::chrono::steady_clock::now() >= give_up_at) {
      errno = connect_errno;
      raise_errno("connect");
    }
    // Sleep a uniform draw from [backoff/2, backoff]: desynchronizes
    // reconnect storms without stretching the expected wait much.
    const auto half = backoff.count() / 2;
    std::this_thread::sleep_for(std::chrono::microseconds(
        half + static_cast<std::int64_t>(
                   jitter.below(static_cast<std::uint64_t>(half) + 1))));
    backoff = std::min(backoff * 2, kBackoffCap);
  }
}

LinkPair connect_tcp_pair(TcpListener& listener) {
  auto client = std::async(std::launch::async,
                           [&] { return tcp_connect(listener.port()); });
  LinkPair pair;
  try {
    pair.a = listener.accept();
  } catch (...) {
    // Join the client attempt before unwinding: left to the future's
    // destructor, a failed accept would silently block for the client's
    // full connect backoff.  Closing the listener makes the pending
    // connect fail fast instead of retrying against a live port.
    listener.close();
    try {
      client.get();
    } catch (...) {
    }
    throw;
  }
  pair.b = client.get();
  return pair;
}

}  // namespace pia::transport
