// Stream framing for socket links.
//
// TCP delivers a byte stream; Pia channels need message boundaries.  Each
// frame is:
//
//   magic   u32  0x50494146 ("PIAF")
//   length  u32  payload byte count (little-endian)
//   crc     u32  CRC-32 of the payload
//   payload length bytes
//
// A FrameDecoder incrementally consumes stream bytes and yields complete
// payloads; corrupt frames throw Error{kProtocol} because a desynchronized
// channel cannot be trusted to carry virtual-time messages.
#pragma once

#include <cstdint>
#include <optional>

#include "base/bytes.hpp"

namespace pia::transport {

inline constexpr std::uint32_t kFrameMagic = 0x50494146;
inline constexpr std::size_t kFrameHeaderSize = 12;
inline constexpr std::size_t kMaxFramePayload = 64u * 1024u * 1024u;

/// Encodes one payload into a self-delimiting frame.
[[nodiscard]] Bytes encode_frame(BytesView payload);

/// Same, but into a caller-owned scratch buffer (cleared first) so the send
/// hot path can reuse one allocation across frames.
void encode_frame_into(Bytes& out, BytesView payload);

/// Incremental frame extractor over one contiguous buffer.  Consumed frames
/// advance a head offset instead of erasing from the front, so feeding and
/// extracting are both amortized O(1); the consumed prefix is compacted
/// away once it dominates the buffer.
class FrameDecoder {
 public:
  /// Append raw stream bytes received from the socket.
  void feed(BytesView data);

  /// Extract the next complete payload, if any.  Throws on corruption.
  std::optional<Bytes> next();

  [[nodiscard]] std::size_t buffered() const {
    return buffer_.size() - head_;
  }

  /// True when the front of the buffer holds a complete frame (next() would
  /// yield a payload or throw on corruption, but never come back empty).
  [[nodiscard]] bool has_complete_frame() const;

  /// Buffered bytes that cannot belong to any complete frame — nonzero
  /// after the stream ends mid-frame (or desynchronizes).  Used to report
  /// truncation when a peer dies mid-send.
  [[nodiscard]] std::size_t truncated_residue() const;

 private:
  Bytes buffer_;
  std::size_t head_ = 0;  // bytes of buffer_ already consumed
};

}  // namespace pia::transport
