// Deterministic fault injection for Links.
//
// Every transport test in the seed ran over perfect pipes, so the rollback,
// safe-time and snapshot machinery was never exercised under the network
// conditions the paper's geographic distribution implies.  A FaultLink
// decorates any Link with seed-driven wire faults while PRESERVING the Link
// contract the distributed protocols depend on (FIFO, exactly-once): it
// models a reliability layer riding an unreliable wire, the way TCP rides
// IP.  Concretely:
//
//   * delay jitter      — each frame's release is pushed by a random extra
//                         wall-clock delay; a monotone release floor keeps
//                         FIFO order (Chandy–Lamport needs FIFO channels),
//   * duplication       — a frame is transmitted twice; the receiving side
//                         discards the copy by sequence number,
//   * drop-with-retry   — the first transmission is "lost" and the frame is
//                         retransmitted after a retry timeout (observable as
//                         extra latency, never as loss),
//   * partition/heal    — scheduled wall-clock windows during which traffic
//                         is held, then released in order at heal time,
//   * abrupt close      — after N sends the link slams shut like a crashed
//                         peer: send() throws Error{kTransport} and the peer
//                         drains then observes closed(),
//   * crash at frame    — like abrupt close, but the trigger counts frames
//                         in BOTH directions and can be pinned to one
//                         endpoint of a pair: the kill switch the crash
//                         recovery tests use to fell a chosen node mid-run.
//
// All decisions derive from FaultPlan::seed through pia::Rng, so any failure
// a fuzzer finds is reproducible from its seed alone.  Faults other than
// abrupt close affect only *wall-clock* timing, never simulated behaviour —
// which is exactly the property the cluster fuzzer checks.
#pragma once

#include <chrono>
#include <vector>

#include "transport/link.hpp"

namespace pia::transport {

struct FaultPlan {
  std::uint64_t seed = 1;

  /// Per-frame extra delay, uniform in [0, delay_jitter_max].
  std::chrono::microseconds delay_jitter_max{0};

  /// Probability a frame is transmitted twice (receiver-side dedup).
  double dup_probability = 0.0;

  /// Probability the first transmission is lost; the frame is retransmitted
  /// `retry_delay` later (a reliability layer's retransmission timeout).
  double drop_probability = 0.0;
  std::chrono::microseconds retry_delay{2000};

  /// Partition windows, relative to link creation: frames whose release
  /// falls inside [start, start+duration) are held until the window heals.
  struct Partition {
    std::chrono::milliseconds start{0};
    std::chrono::milliseconds duration{0};
  };
  std::vector<Partition> partitions;

  /// After this many send() calls the link closes abruptly (peer crash).
  /// 0 means never.
  std::uint64_t close_after_sends = 0;

  /// Crash fault for the recovery tests: after this endpoint has observed
  /// `crash_at_frames` frames IN EITHER DIRECTION (sends plus accepted
  /// receives) it slams shut like close_after_sends — except the trigger
  /// counts both ways, so a pure sink can still be killed at a chosen
  /// point.  0 means never.
  std::uint64_t crash_at_frames = 0;
  /// Which endpoint of a pair the crash applies to: 0 = both trip on their
  /// own counters, 1 / 2 = only the endpoint for_endpoint() derives with
  /// that salt (the other side's crash_at_frames is cleared).
  std::uint64_t crash_endpoint = 0;

  [[nodiscard]] bool enabled() const {
    return delay_jitter_max.count() > 0 || dup_probability > 0.0 ||
           drop_probability > 0.0 || !partitions.empty() ||
           close_after_sends > 0 || crash_at_frames > 0;
  }

  [[nodiscard]] static FaultPlan none() { return {}; }

  [[nodiscard]] static FaultPlan jitter(
      std::uint64_t seed,
      std::chrono::microseconds max = std::chrono::microseconds(500)) {
    FaultPlan plan;
    plan.seed = seed;
    plan.delay_jitter_max = max;
    return plan;
  }

  [[nodiscard]] static FaultPlan duplication(std::uint64_t seed,
                                             double probability = 0.25) {
    FaultPlan plan;
    plan.seed = seed;
    plan.dup_probability = probability;
    return plan;
  }

  [[nodiscard]] static FaultPlan drops(
      std::uint64_t seed, double probability = 0.2,
      std::chrono::microseconds retry = std::chrono::microseconds(2000)) {
    FaultPlan plan;
    plan.seed = seed;
    plan.drop_probability = probability;
    plan.retry_delay = retry;
    return plan;
  }

  [[nodiscard]] static FaultPlan partition(
      std::uint64_t seed, std::chrono::milliseconds start,
      std::chrono::milliseconds duration) {
    FaultPlan plan;
    plan.seed = seed;
    plan.partitions.push_back({start, duration});
    return plan;
  }

  /// Kills one endpoint of the channel once it has seen `frames` frames in
  /// both directions combined (the kill-and-recover driver's trigger).
  [[nodiscard]] static FaultPlan crash_at(std::uint64_t seed,
                                          std::uint64_t frames,
                                          std::uint64_t endpoint = 1) {
    FaultPlan plan;
    plan.seed = seed;
    plan.crash_at_frames = frames;
    plan.crash_endpoint = endpoint;
    return plan;
  }

  /// Everything at once (except abrupt close, which breaks equivalence).
  [[nodiscard]] static FaultPlan chaos(std::uint64_t seed) {
    FaultPlan plan;
    plan.seed = seed;
    plan.delay_jitter_max = std::chrono::microseconds(400);
    plan.dup_probability = 0.3;
    plan.drop_probability = 0.15;
    plan.retry_delay = std::chrono::microseconds(1500);
    plan.partitions.push_back(
        {std::chrono::milliseconds(20), std::chrono::milliseconds(40)});
    return plan;
  }

  /// Derives an endpoint-specific plan so the two directions of a channel
  /// do not mirror each other's fault decisions.
  [[nodiscard]] FaultPlan for_endpoint(std::uint64_t salt) const {
    FaultPlan plan = *this;
    plan.seed = seed * 0x9E3779B97F4A7C15ULL + salt;
    if (crash_endpoint != 0 && salt != crash_endpoint)
      plan.crash_at_frames = 0;  // the crash belongs to the other side
    return plan;
  }
};

/// Wraps `inner` with the plan's faults.  Both endpoints of a channel must
/// be wrapped (each handles its own outgoing faults and deduplicates its
/// incoming frames); use for_endpoint() to de-correlate their seeds.
LinkPtr make_fault_link(LinkPtr inner, FaultPlan plan);

/// A loopback pipe with endpoint-salted faults applied in both directions.
LinkPair make_fault_pair(FaultPlan plan);

}  // namespace pia::transport
