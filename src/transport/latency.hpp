// Wide-area latency injection.
//
// The paper's evaluation ran both Pia nodes on one subnet and still saw the
// Internet-scale effect of per-message cost dominating word-level transfer
// (Table 1: 604 s word vs 80.3 s packet remote).  To reproduce that shape on
// one machine we decorate a Link with an explicit LatencyModel: every message
// is held until `base + size * per_byte (+ jitter)` of real wall-clock time
// has elapsed since it was sent.  FIFO order is preserved (delays are
// monotone per message because jitter is added to a running release floor).
#pragma once

#include <chrono>
#include <memory>

#include "base/rng.hpp"
#include "transport/link.hpp"

namespace pia::transport {

struct LatencyModel {
  std::chrono::microseconds base{0};       // propagation delay per message
  std::chrono::nanoseconds per_byte{0};    // serialization delay
  std::chrono::microseconds jitter_max{0}; // uniform random extra delay
  std::uint64_t jitter_seed = 1;

  [[nodiscard]] static LatencyModel none() { return {}; }

  /// A round-trip-in-the-tens-of-ms profile, scaled down so benches finish:
  /// the *ratios* match a late-90s coast-to-coast path.
  [[nodiscard]] static LatencyModel internet(
      std::chrono::microseconds base_latency,
      std::chrono::nanoseconds per_byte_cost) {
    return {.base = base_latency, .per_byte = per_byte_cost};
  }
};

/// Wraps `inner` so that each message becomes visible to the receiver only
/// after the modeled delay.  The sending side stamps a release deadline into
/// a small header; the receiving side waits it out — so BOTH endpoints of a
/// channel must be wrapped (see make_latency_pair for loopback channels).
LinkPtr make_latency_link(LinkPtr inner, LatencyModel model);

/// A loopback pipe with the latency model applied in both directions.
LinkPair make_latency_pair(LatencyModel model);

}  // namespace pia::transport
