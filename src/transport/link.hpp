// Link: the FIFO duplex message pipe connecting two Pia nodes.
//
// All inter-subsystem traffic — timestamped events, safe-time requests,
// Chandy–Lamport marks, runlevel switches — flows over Links.  The
// Chandy–Lamport snapshot algorithm (paper §2.2.5) requires FIFO channels;
// every Link implementation guarantees order-preserving, loss-free delivery.
//
// Two implementations exist: an in-process loopback pair (used when several
// subsystems share a node or for deterministic tests) and a TCP socket link
// (the "geographically distributed" case; exercised over localhost here).
// A LatencyLink decorator injects wide-area delay into either.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "base/bytes.hpp"
#include "transport/ready.hpp"

namespace pia::transport {

struct LinkStats {
  /// Logical message counts.  The sender declares how many protocol
  /// messages a frame carries (batching), so messages_sent is exact; the
  /// receive side cannot know a frame's message count without decoding the
  /// payload, so messages_received counts frames — the decoded per-message
  /// counters live in dist::ChannelEndpoint.
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_received = 0;
  /// Link-level transmissions: one frame may carry a whole batch.  The
  /// messages_sent / frames_sent ratio is the batching efficiency.
  std::uint64_t frames_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;

  // Fault-injection counters; zero unless the link is a FaultLink
  // (see transport/fault.hpp).
  std::uint64_t faults_delayed = 0;        // frames given extra jitter
  std::uint64_t faults_duplicated = 0;     // frames transmitted twice
  std::uint64_t faults_dropped = 0;        // first transmissions lost+retried
  std::uint64_t faults_dup_discarded = 0;  // duplicate frames discarded
  std::uint64_t faults_partition_held = 0; // frames held by a partition
  std::uint64_t faults_abrupt_closes = 0;  // injected peer-crash closes
};

/// The link implementations' internal counter block.  A link endpoint is
/// legitimately shared between a sending and a receiving thread (and
/// stats() may be read by a third, e.g. a metrics collector), so the
/// counters are lock-free atomics: each path bumps its own counters with
/// relaxed ordering — they are independent monotone tallies, not a
/// consistency group — and stats() returns a plain LinkStats snapshot.
struct AtomicLinkStats {
  std::atomic<std::uint64_t> messages_sent{0};
  std::atomic<std::uint64_t> messages_received{0};
  std::atomic<std::uint64_t> frames_sent{0};
  std::atomic<std::uint64_t> frames_received{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> bytes_received{0};
  std::atomic<std::uint64_t> faults_delayed{0};
  std::atomic<std::uint64_t> faults_duplicated{0};
  std::atomic<std::uint64_t> faults_dropped{0};
  std::atomic<std::uint64_t> faults_dup_discarded{0};
  std::atomic<std::uint64_t> faults_partition_held{0};
  std::atomic<std::uint64_t> faults_abrupt_closes{0};

  /// One frame out: `messages` protocol messages in `bytes` payload bytes.
  void count_send(std::uint32_t messages, std::size_t bytes) {
    messages_sent.fetch_add(messages, std::memory_order_relaxed);
    frames_sent.fetch_add(1, std::memory_order_relaxed);
    bytes_sent.fetch_add(bytes, std::memory_order_relaxed);
  }
  /// One frame in, `bytes` payload bytes.
  void count_recv(std::size_t bytes) {
    messages_received.fetch_add(1, std::memory_order_relaxed);
    frames_received.fetch_add(1, std::memory_order_relaxed);
    bytes_received.fetch_add(bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] LinkStats snapshot() const {
    LinkStats s;
    s.messages_sent = messages_sent.load(std::memory_order_relaxed);
    s.messages_received = messages_received.load(std::memory_order_relaxed);
    s.frames_sent = frames_sent.load(std::memory_order_relaxed);
    s.frames_received = frames_received.load(std::memory_order_relaxed);
    s.bytes_sent = bytes_sent.load(std::memory_order_relaxed);
    s.bytes_received = bytes_received.load(std::memory_order_relaxed);
    s.faults_delayed = faults_delayed.load(std::memory_order_relaxed);
    s.faults_duplicated = faults_duplicated.load(std::memory_order_relaxed);
    s.faults_dropped = faults_dropped.load(std::memory_order_relaxed);
    s.faults_dup_discarded =
        faults_dup_discarded.load(std::memory_order_relaxed);
    s.faults_partition_held =
        faults_partition_held.load(std::memory_order_relaxed);
    s.faults_abrupt_closes =
        faults_abrupt_closes.load(std::memory_order_relaxed);
    return s;
  }
};

class Link {
 public:
  virtual ~Link() = default;

  /// Enqueue one frame carrying `message_count` protocol messages (1 for
  /// unbatched traffic).  Never blocks on the peer; throws
  /// Error{kTransport} if the link is closed.
  virtual void send(BytesView frame, std::uint32_t message_count = 1) = 0;

  /// Dequeue the next message if one is ready, without blocking.
  virtual std::optional<Bytes> try_recv() = 0;

  // --- Borrowed-frame receive (zero-copy hot path) ---
  //
  // Links whose inbound frames already live in stable memory (a loopback
  // queue slot, an SPSC ring slot, a shared-memory ring segment) can hand
  // the receiver a VIEW of the next frame instead of a heap copy.  The view
  // aliases link-owned storage and stays valid only until
  // release_recv_view() or any subsequent recv call on this endpoint; the
  // receiver must finish decoding (copying payloads out, e.g. via
  // Value::load) before releasing.  Exactly one view may be outstanding.
  // The defaults keep new implementations correct: no view support, and the
  // caller falls back to the owning try_recv().

  /// True when try_recv_view() may return frames.
  [[nodiscard]] virtual bool supports_recv_view() const { return false; }

  /// Borrow a view of the next frame without copying or consuming it.
  /// Returns nullopt when no frame is ready (or views are unsupported).
  virtual std::optional<BytesView> try_recv_view() { return std::nullopt; }

  /// Consume the frame most recently borrowed via try_recv_view(),
  /// invalidating the view and freeing its slot for the producer.
  virtual void release_recv_view() {}

  /// Dequeue the next message, waiting up to `timeout`.
  virtual std::optional<Bytes> recv_for(std::chrono::milliseconds timeout) = 0;

  /// Close this endpoint; the peer's recv calls will start returning
  /// nullopt once drained, and its send calls will throw.
  virtual void close() = 0;

  [[nodiscard]] virtual bool closed() const = 0;
  [[nodiscard]] virtual LinkStats stats() const = 0;
  [[nodiscard]] virtual std::string describe() const = 0;

  // --- Readiness plumbing for multi-channel waits (dist::ChannelSet) ---
  //
  // A link participates in a unified wait through exactly one of two
  // mechanisms.  Queue-backed links (loopback) accept a shared ReadySignal
  // and pulse it whenever a frame becomes receivable or the link closes.
  // Kernel-fd-backed links (TCP) instead expose the fd so the waiter can
  // poll it directly.  Decorators forward both calls to the wrapped link.
  // The defaults — no signal, no fd, no buffered release — make new Link
  // implementations safe by construction: the waiter simply falls back to
  // its poll timeout for them.

  /// Attach the waiter's shared signal.  Replaces any previous signal.
  virtual void set_ready_signal(ReadySignalPtr /*signal*/) {}

  /// Kernel fd that turns readable when traffic (or close) arrives, or -1
  /// when readiness is reported via the ReadySignal instead.
  [[nodiscard]] virtual int readable_fd() const { return -1; }

  /// Earliest instant a frame already buffered *inside* this link becomes
  /// receivable (fault/latency decorators holding a stamped frame for
  /// future release).  Such frames raise neither fd nor signal when they
  /// mature, so the waiter clamps its timeout to this.  nullopt when no
  /// buffered frame is pending.
  [[nodiscard]] virtual std::optional<std::chrono::steady_clock::time_point>
  next_ready_time() const {
    return std::nullopt;
  }
};

using LinkPtr = std::unique_ptr<Link>;

/// A connected pair of in-process endpoints.
struct LinkPair {
  LinkPtr a;
  LinkPtr b;
};

/// Creates a FIFO loopback pipe pair.
LinkPair make_loopback_pair();

/// Creates a shared-memory ring pair (see transport/shm.hpp) with the
/// default ring size.  Declared here so the dist wire factory can construct
/// one without seeing the shm internals.
LinkPair make_shm_pair();

}  // namespace pia::transport
