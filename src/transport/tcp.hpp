// TCP socket links: the "geographically distributed" transport.
//
// A Pia node listens on a port; remote nodes connect and each accepted
// connection becomes one FIFO Link carrying framed messages.  In this
// reproduction both ends live on localhost, but nothing here assumes that —
// the wire format is endian-explicit and frames are CRC-protected.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

#include "transport/link.hpp"

namespace pia::transport {

class TcpListener {
 public:
  /// Binds and listens on 127.0.0.1:port.  port 0 picks an ephemeral port;
  /// query the actual one with port().
  explicit TcpListener(std::uint16_t port);
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Blocks until a peer connects; returns the connection as a Link.
  /// Throws Error{kTransport} on failure or if the listener is closed.
  LinkPtr accept();

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Connects to 127.0.0.1:port and returns the connection as a Link.
/// Failed attempts retry with jittered exponential backoff (≈1 ms doubling
/// to a ≈128 ms cap, each delay drawn uniformly from [half, full]) until
/// `deadline` has elapsed — the jitter keeps a cluster of restarting nodes
/// from hammering a recovering listener in lockstep.  At least one attempt
/// is always made; pass a zero deadline for exactly one.  Throws
/// Error{kTransport} carrying the last connect(2) errno on failure.
LinkPtr tcp_connect(std::uint16_t port,
                    std::chrono::milliseconds deadline =
                        std::chrono::milliseconds(1000));

/// Accepts one connection on `listener` while concurrently connecting to it,
/// returning both ends as a pair (in-process wiring of a TCP channel).  If
/// the accept fails, the in-flight client attempt is joined deterministically
/// before the error propagates — it never blocks in a destructor waiting out
/// the full connect backoff.
LinkPair connect_tcp_pair(TcpListener& listener);

}  // namespace pia::transport
