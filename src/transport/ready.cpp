#include "transport/ready.hpp"

#include <fcntl.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/eventfd.h>
#endif

#include <cerrno>
#include <cstdint>
#include <cstring>

#include "base/error.hpp"

namespace pia::transport {

#ifdef __linux__

ReadySignal::ReadySignal() {
  fds_[0] = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (fds_[0] < 0)
    raise(ErrorKind::kTransport,
          std::string("ready signal eventfd: ") + std::strerror(errno));
}

ReadySignal::~ReadySignal() {
  if (fds_[0] >= 0) ::close(fds_[0]);
  fds_[0] = -1;
}

void ReadySignal::notify() {
  const std::uint64_t pulse = 1;
  // EAGAIN means the counter is saturated — already readable, so the waiter
  // wakes either way.  Other errors only occur mid-destruction.
  [[maybe_unused]] const ssize_t n = ::write(fds_[0], &pulse, sizeof(pulse));
}

bool ReadySignal::drain() {
  std::uint64_t count = 0;
  for (;;) {
    const ssize_t n = ::read(fds_[0], &count, sizeof(count));
    if (n == sizeof(count)) return true;  // counter read resets it to zero
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return false;
    if (n < 0 && errno == EINTR) continue;
    // Anything else (EBADF after a double close, EIO) means the wake
    // mechanism is broken — waiting on it would hang forever, so fail loud.
    raise(ErrorKind::kTransport,
          std::string("ready signal drain: ") + std::strerror(errno));
  }
}

#else  // self-pipe fallback for non-Linux hosts

ReadySignal::ReadySignal() {
  if (::pipe(fds_) < 0)
    raise(ErrorKind::kTransport,
          std::string("ready signal pipe: ") + std::strerror(errno));
  // A silently-blocking pipe end would turn notify() into a deadlock and
  // drain() into a hang, so flag-setting failures must not pass unnoticed.
  for (const int fd : fds_) {
    const int fl = ::fcntl(fd, F_GETFL);
    if (fl < 0 || ::fcntl(fd, F_SETFL, fl | O_NONBLOCK) < 0 ||
        ::fcntl(fd, F_SETFD, FD_CLOEXEC) < 0) {
      const int saved = errno;
      for (int& open_fd : fds_) {
        if (open_fd >= 0) ::close(open_fd);
        open_fd = -1;
      }
      raise(ErrorKind::kTransport,
            std::string("ready signal fcntl: ") + std::strerror(saved));
    }
  }
}

ReadySignal::~ReadySignal() {
  for (int& fd : fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void ReadySignal::notify() {
  const char pulse = 1;
  // EAGAIN means the pipe is already full of pulses — already readable, so
  // the waiter wakes either way.  Other errors only occur mid-destruction.
  [[maybe_unused]] const ssize_t n = ::write(fds_[1], &pulse, 1);
}

bool ReadySignal::drain() {
  char sink[256];
  bool consumed = false;
  for (;;) {
    const ssize_t n = ::read(fds_[0], sink, sizeof(sink));
    if (n > 0) {
      consumed = true;
      continue;
    }
    if (n == 0) return consumed;  // write end closed mid-destruction
    if (errno == EAGAIN || errno == EWOULDBLOCK) return consumed;  // empty
    if (errno == EINTR) continue;
    // Anything else (EBADF after a double close, EIO) means the wake
    // mechanism is broken — waiting on it would hang forever, so fail loud.
    raise(ErrorKind::kTransport,
          std::string("ready signal drain: ") + std::strerror(errno));
  }
}

#endif

}  // namespace pia::transport
