#include "transport/ready.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "base/error.hpp"

namespace pia::transport {

ReadySignal::ReadySignal() {
  if (::pipe(fds_) < 0)
    raise(ErrorKind::kTransport,
          std::string("ready signal pipe: ") + std::strerror(errno));
  for (const int fd : fds_) {
    ::fcntl(fd, F_SETFL, ::fcntl(fd, F_GETFL) | O_NONBLOCK);
    ::fcntl(fd, F_SETFD, FD_CLOEXEC);
  }
}

ReadySignal::~ReadySignal() {
  for (int& fd : fds_) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

void ReadySignal::notify() {
  const char pulse = 1;
  // EAGAIN means the pipe is already full of pulses — already readable, so
  // the waiter wakes either way.  Other errors only occur mid-destruction.
  [[maybe_unused]] const ssize_t n = ::write(fds_[1], &pulse, 1);
}

void ReadySignal::drain() {
  char sink[256];
  while (::read(fds_[0], sink, sizeof(sink)) > 0) {
  }
}

}  // namespace pia::transport
