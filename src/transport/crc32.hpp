// CRC-32 (IEEE 802.3 polynomial), used to validate message frames.
#pragma once

#include <cstdint>

#include "base/bytes.hpp"

namespace pia::transport {

[[nodiscard]] std::uint32_t crc32(BytesView data);

}  // namespace pia::transport
