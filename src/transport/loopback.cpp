#include <condition_variable>
#include <deque>
#include <mutex>

#include "base/error.hpp"
#include "transport/link.hpp"

namespace pia::transport {
namespace {

/// One direction of the pipe: a bounded-unbounded FIFO of messages.
struct Pipe {
  std::mutex mutex;
  std::condition_variable ready;
  std::deque<Bytes> queue;
  bool closed = false;
  /// Readiness signal of whoever reads this direction; pulsed (outside the
  /// lock) by the writing side on every push and on close.
  ReadySignalPtr signal;
};

class LoopbackLink final : public Link {
 public:
  LoopbackLink(std::shared_ptr<Pipe> out, std::shared_ptr<Pipe> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  ~LoopbackLink() override { close(); }

  void send(BytesView frame, std::uint32_t message_count = 1) override {
    ReadySignalPtr signal;
    {
      const std::lock_guard<std::mutex> lock(out_->mutex);
      if (out_->closed)
        raise(ErrorKind::kTransport, "send on closed loopback link");
      out_->queue.emplace_back(frame.begin(), frame.end());
      signal = out_->signal;
    }
    // Outside the pipe lock: stats_ is this endpoint's own atomic block.
    stats_.count_send(message_count, frame.size());
    out_->ready.notify_one();
    if (signal) signal->notify();
  }

  std::optional<Bytes> try_recv() override {
    const std::lock_guard<std::mutex> lock(in_->mutex);
    commit_pending_locked();
    return pop_locked();
  }

  std::optional<Bytes> recv_for(std::chrono::milliseconds timeout) override {
    std::unique_lock<std::mutex> lock(in_->mutex);
    commit_pending_locked();
    in_->ready.wait_for(lock, timeout,
                        [&] { return !in_->queue.empty() || in_->closed; });
    return pop_locked();
  }

  bool supports_recv_view() const override { return true; }

  /// Borrow a view of the queue front.  Senders only push_back (which never
  /// moves existing deque elements) and nothing else pops until the view is
  /// released, so the front element — and the view aliasing it — stays put
  /// even once the lock drops.
  std::optional<BytesView> try_recv_view() override {
    const std::lock_guard<std::mutex> lock(in_->mutex);
    commit_pending_locked();
    if (in_->queue.empty()) return std::nullopt;
    pending_view_ = true;
    stats_.count_recv(in_->queue.front().size());
    return BytesView{in_->queue.front()};
  }

  void release_recv_view() override {
    const std::lock_guard<std::mutex> lock(in_->mutex);
    commit_pending_locked();
  }

  void close() override {
    for (auto& pipe : {out_, in_}) {
      ReadySignalPtr signal;
      {
        const std::lock_guard<std::mutex> lock(pipe->mutex);
        pipe->closed = true;
        signal = pipe->signal;
      }
      pipe->ready.notify_all();
      if (signal) signal->notify();
    }
  }

  void set_ready_signal(ReadySignalPtr signal) override {
    const std::lock_guard<std::mutex> lock(in_->mutex);
    in_->signal = std::move(signal);
  }

  bool closed() const override {
    const std::lock_guard<std::mutex> lock(out_->mutex);
    return out_->closed;
  }

  LinkStats stats() const override { return stats_.snapshot(); }

  std::string describe() const override { return "loopback"; }

 private:
  std::optional<Bytes> pop_locked() {
    if (in_->queue.empty()) return std::nullopt;
    Bytes msg = std::move(in_->queue.front());
    in_->queue.pop_front();
    stats_.count_recv(msg.size());
    return msg;
  }

  void commit_pending_locked() {
    if (!pending_view_) return;
    in_->queue.pop_front();
    pending_view_ = false;
  }

  std::shared_ptr<Pipe> out_;
  std::shared_ptr<Pipe> in_;
  // Deferred consumption for the borrowed-view path; guarded by in_->mutex.
  bool pending_view_ = false;
  // Send path and recv path run under *different* pipe mutexes (out_ / in_)
  // and stats() takes no lock at all, so the counters must not rely on
  // either mutex: AtomicLinkStats makes every access lock-free.
  AtomicLinkStats stats_;
};

}  // namespace

LinkPair make_loopback_pair() {
  auto forward = std::make_shared<Pipe>();
  auto backward = std::make_shared<Pipe>();
  return LinkPair{
      .a = std::make_unique<LoopbackLink>(forward, backward),
      .b = std::make_unique<LoopbackLink>(backward, forward),
  };
}

}  // namespace pia::transport
