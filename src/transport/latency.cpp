#include "transport/latency.hpp"

#include <cstring>
#include <thread>

#include "base/error.hpp"

namespace pia::transport {
namespace {

using Clock = std::chrono::steady_clock;

class LatencyLink final : public Link {
 public:
  LatencyLink(LinkPtr inner, LatencyModel model)
      : inner_(std::move(inner)),
        model_(model),
        jitter_rng_(model.jitter_seed) {}

  void send(BytesView message, std::uint32_t message_count = 1) override {
    auto delay = std::chrono::duration_cast<Clock::duration>(model_.base) +
                 model_.per_byte * static_cast<std::int64_t>(message.size());
    if (model_.jitter_max.count() > 0) {
      delay += std::chrono::microseconds(jitter_rng_.below(
          static_cast<std::uint64_t>(model_.jitter_max.count())));
    }
    // FIFO: release deadlines must be monotone even with jitter.
    auto release = Clock::now() + delay;
    if (release < send_floor_) release = send_floor_;
    send_floor_ = release;

    const std::int64_t stamp = release.time_since_epoch().count();
    send_scratch_.resize(sizeof(stamp) + message.size());
    std::memcpy(send_scratch_.data(), &stamp, sizeof(stamp));
    std::memcpy(send_scratch_.data() + sizeof(stamp), message.data(),
                message.size());
    inner_->send(send_scratch_, message_count);
  }

  std::optional<Bytes> try_recv() override {
    if (!pending_) pending_ = inner_->try_recv();
    return release_if_due(/*may_wait=*/false, {});
  }

  std::optional<Bytes> recv_for(std::chrono::milliseconds timeout) override {
    const auto deadline = Clock::now() + timeout;
    if (!pending_) {
      pending_ = inner_->recv_for(timeout);
      if (!pending_) return std::nullopt;
    }
    return release_if_due(/*may_wait=*/true, deadline);
  }

  void close() override { inner_->close(); }
  bool closed() const override { return inner_->closed(); }
  LinkStats stats() const override { return inner_->stats(); }
  std::string describe() const override {
    return inner_->describe() + "+latency";
  }

  void set_ready_signal(ReadySignalPtr signal) override {
    inner_->set_ready_signal(std::move(signal));
  }

  int readable_fd() const override { return inner_->readable_fd(); }

  std::optional<Clock::time_point> next_ready_time() const override {
    if (pending_) {
      if (pending_->size() < sizeof(std::int64_t))
        raise(ErrorKind::kProtocol, "latency header missing");
      std::int64_t stamp = 0;
      std::memcpy(&stamp, pending_->data(), sizeof(stamp));
      return Clock::time_point{Clock::duration{stamp}};
    }
    return inner_->next_ready_time();
  }

 private:
  std::optional<Bytes> release_if_due(bool may_wait,
                                      Clock::time_point deadline) {
    if (!pending_) return std::nullopt;
    if (pending_->size() < sizeof(std::int64_t))
      raise(ErrorKind::kProtocol, "latency header missing");
    std::int64_t stamp = 0;
    std::memcpy(&stamp, pending_->data(), sizeof(stamp));
    const Clock::time_point release{Clock::duration{stamp}};

    const auto now = Clock::now();
    if (release > now) {
      if (!may_wait) return std::nullopt;
      if (release > deadline) {
        std::this_thread::sleep_until(deadline);
        return std::nullopt;
      }
      std::this_thread::sleep_until(release);
    }
    Bytes out(pending_->begin() + sizeof(std::int64_t), pending_->end());
    pending_.reset();
    return out;
  }

  LinkPtr inner_;
  LatencyModel model_;
  Rng jitter_rng_;
  Clock::time_point send_floor_{};
  std::optional<Bytes> pending_;
  Bytes send_scratch_;  // reused release-stamp header assembly buffer
};

}  // namespace

LinkPtr make_latency_link(LinkPtr inner, LatencyModel model) {
  return std::make_unique<LatencyLink>(std::move(inner), model);
}

LinkPair make_latency_pair(LatencyModel model) {
  LinkPair pair = make_loopback_pair();
  return LinkPair{
      .a = make_latency_link(std::move(pair.a), model),
      .b = make_latency_link(std::move(pair.b), model),
  };
}

}  // namespace pia::transport
