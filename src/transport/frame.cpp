#include "transport/frame.hpp"

#include <cstring>

#include "base/error.hpp"
#include "transport/crc32.hpp"

namespace pia::transport {
namespace {

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(std::byte{static_cast<std::uint8_t>(v >> (8 * i))});
}

std::uint32_t read_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
  return v;
}

}  // namespace

Bytes encode_frame(BytesView payload) {
  if (payload.size() > kMaxFramePayload)
    raise(ErrorKind::kProtocol, "frame payload exceeds maximum");
  Bytes out;
  out.reserve(kFrameHeaderSize + payload.size());
  put_u32(out, kFrameMagic);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void FrameDecoder::feed(BytesView data) {
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

bool FrameDecoder::has_complete_frame() const {
  if (buffer_.size() < kFrameHeaderSize) return false;
  if (read_u32(buffer_.data()) != kFrameMagic) return false;
  const std::uint32_t length = read_u32(buffer_.data() + 4);
  if (length > kMaxFramePayload) return false;
  return buffer_.size() >= kFrameHeaderSize + length;
}

std::size_t FrameDecoder::truncated_residue() const {
  std::size_t offset = 0;
  while (buffer_.size() - offset >= kFrameHeaderSize) {
    if (read_u32(buffer_.data() + offset) != kFrameMagic) break;
    const std::uint32_t length = read_u32(buffer_.data() + offset + 4);
    if (length > kMaxFramePayload) break;
    if (buffer_.size() - offset < kFrameHeaderSize + length) break;
    offset += kFrameHeaderSize + length;
  }
  return buffer_.size() - offset;
}

std::optional<Bytes> FrameDecoder::next() {
  if (buffer_.size() < kFrameHeaderSize) return std::nullopt;
  const std::uint32_t magic = read_u32(buffer_.data());
  if (magic != kFrameMagic)
    raise(ErrorKind::kProtocol, "bad frame magic: stream desynchronized");
  const std::uint32_t length = read_u32(buffer_.data() + 4);
  if (length > kMaxFramePayload)
    raise(ErrorKind::kProtocol, "frame length exceeds maximum");
  if (buffer_.size() < kFrameHeaderSize + length) return std::nullopt;
  const std::uint32_t expected_crc = read_u32(buffer_.data() + 8);

  Bytes payload(buffer_.begin() + kFrameHeaderSize,
                buffer_.begin() + static_cast<std::ptrdiff_t>(
                                      kFrameHeaderSize + length));
  if (crc32(payload) != expected_crc)
    raise(ErrorKind::kProtocol, "frame CRC mismatch");
  buffer_.erase(buffer_.begin(),
                buffer_.begin() +
                    static_cast<std::ptrdiff_t>(kFrameHeaderSize + length));
  return payload;
}

}  // namespace pia::transport
