#include "transport/frame.hpp"

#include <cstring>

#include "base/error.hpp"
#include "transport/crc32.hpp"

namespace pia::transport {
namespace {

void put_u32(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(std::byte{static_cast<std::uint8_t>(v >> (8 * i))});
}

std::uint32_t read_u32(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
  return v;
}

}  // namespace

Bytes encode_frame(BytesView payload) {
  Bytes out;
  encode_frame_into(out, payload);
  return out;
}

void encode_frame_into(Bytes& out, BytesView payload) {
  if (payload.size() > kMaxFramePayload)
    raise(ErrorKind::kProtocol, "frame payload exceeds maximum");
  out.clear();
  out.reserve(kFrameHeaderSize + payload.size());
  put_u32(out, kFrameMagic);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload));
  out.insert(out.end(), payload.begin(), payload.end());
}

void FrameDecoder::feed(BytesView data) {
  if (head_ == buffer_.size()) {
    buffer_.clear();
    head_ = 0;
  } else if (head_ >= 4096 && head_ >= buffer_.size() - head_) {
    // The consumed prefix dominates; slide the live bytes down so the
    // buffer does not grow without bound on a long-lived stream.
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  buffer_.insert(buffer_.end(), data.begin(), data.end());
}

bool FrameDecoder::has_complete_frame() const {
  const std::byte* front = buffer_.data() + head_;
  if (buffered() < kFrameHeaderSize) return false;
  if (read_u32(front) != kFrameMagic) return false;
  const std::uint32_t length = read_u32(front + 4);
  if (length > kMaxFramePayload) return false;
  return buffered() >= kFrameHeaderSize + length;
}

std::size_t FrameDecoder::truncated_residue() const {
  std::size_t offset = head_;
  while (buffer_.size() - offset >= kFrameHeaderSize) {
    if (read_u32(buffer_.data() + offset) != kFrameMagic) break;
    const std::uint32_t length = read_u32(buffer_.data() + offset + 4);
    if (length > kMaxFramePayload) break;
    if (buffer_.size() - offset < kFrameHeaderSize + length) break;
    offset += kFrameHeaderSize + length;
  }
  return buffer_.size() - offset;
}

std::optional<Bytes> FrameDecoder::next() {
  if (buffered() < kFrameHeaderSize) return std::nullopt;
  const std::byte* front = buffer_.data() + head_;
  const std::uint32_t magic = read_u32(front);
  if (magic != kFrameMagic)
    raise(ErrorKind::kProtocol, "bad frame magic: stream desynchronized");
  const std::uint32_t length = read_u32(front + 4);
  if (length > kMaxFramePayload)
    raise(ErrorKind::kProtocol, "frame length exceeds maximum");
  if (buffered() < kFrameHeaderSize + length) return std::nullopt;
  const std::uint32_t expected_crc = read_u32(front + 8);

  Bytes payload(front + kFrameHeaderSize, front + kFrameHeaderSize + length);
  if (crc32(payload) != expected_crc)
    raise(ErrorKind::kProtocol, "frame CRC mismatch");
  head_ += kFrameHeaderSize + length;
  return payload;
}

}  // namespace pia::transport
