// SPSC link: the mutex-free in-process pipe for co-scheduled subsystems.
//
// When several subsystems share one worker pool (dist::NodeExecutor), every
// cross-subsystem send lands on the hot path of a scheduler thread — taking
// a mutex there serializes the very threads the pool exists to decouple.
// An SpscLink endpoint is written by exactly one thread (the subsystem that
// sends on it) and read by exactly one thread (its peer's current worker),
// so each direction can be a classic single-producer/single-consumer ring:
// the producer owns the tail index, the consumer owns the head index, and
// the only synchronization is one acquire/release pair per message.
//
// The Link contract (FIFO, loss-free, never blocks the sender) still holds
// when the ring fills: overflow spills into a mutex-protected side queue,
// and the producer keeps spilling until the consumer has drained the spill
// completely — ring items are always older than spilled items, so reading
// ring-first preserves order.  The mutex is touched only in the overflow
// regime; steady-state traffic never takes it.
//
// Readiness: each direction owns an internal ReadySignal whose read end is
// exposed through readable_fd(), exactly like a socket link — a pooled
// waiter polls the fd directly, and the producer pulses it once per send.
#pragma once

#include "transport/link.hpp"

namespace pia::transport {

/// Creates a connected pair of lock-free SPSC ring links.  Each endpoint
/// must be driven by at most one sending thread and one receiving thread at
/// a time (the subsystem-per-worker execution model guarantees this).
LinkPair make_spsc_pair();

}  // namespace pia::transport
