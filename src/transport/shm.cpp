#include "transport/shm.hpp"

#include <poll.h>
#include <sys/mman.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <deque>
#include <limits>
#include <mutex>
#include <new>

#include "base/error.hpp"

namespace pia::transport {
namespace {

using Clock = std::chrono::steady_clock;

// A record is [u32 length][payload][pad to 4] and never wraps: when the
// slack before the wrap point is too small the producer burns it (with a
// wrap marker when there is room for one) and restarts at offset 0.  The
// consumer applies the same rule, so both sides agree on every boundary
// without any out-of-band bookkeeping.
constexpr std::uint32_t kWrapMarker = 0xFFFFFFFFu;
constexpr std::size_t kHeaderBytes = 4;

constexpr std::size_t align4(std::size_t n) { return (n + 3) & ~std::size_t{3}; }

/// Cursor block at the start of the mapped region.  Producer owns tail,
/// consumer owns head; cache-line padding keeps them from false-sharing.
struct Control {
  alignas(64) std::atomic<std::uint64_t> tail;
  alignas(64) std::atomic<std::uint64_t> head;
  alignas(64) std::atomic<std::uint32_t> closed;
};
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shm cursors must be lock-free to be shareable");

constexpr std::size_t kDataOffset = sizeof(Control);

/// One direction of the pair: the MAP_SHARED byte ring plus the in-process
/// spill/doorbell. Spill discipline matches the SPSC link: the flag flips in
/// the same critical section as the push, the producer bypasses the ring
/// while any spill is active, and the consumer drains ring-before-spill — so
/// FIFO order survives overflow.
struct ShmRing {
  explicit ShmRing(std::size_t ring_bytes) {
    cap = std::max<std::size_t>(64, std::bit_ceil(ring_bytes));
    const std::size_t total = kDataOffset + cap;
    void* base = ::mmap(nullptr, total, PROT_READ | PROT_WRITE,
                        MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    if (base == MAP_FAILED)
      raise(ErrorKind::kTransport,
            std::string("shm ring mmap: ") + std::strerror(errno));
    map_base = base;
    map_len = total;
    ctl = new (base) Control{};
    data = static_cast<std::byte*>(base) + kDataOffset;
  }

  ~ShmRing() {
    ctl->~Control();
    ::munmap(map_base, map_len);
  }

  ShmRing(const ShmRing&) = delete;
  ShmRing& operator=(const ShmRing&) = delete;

  void* map_base = nullptr;
  std::size_t map_len = 0;
  Control* ctl = nullptr;
  std::byte* data = nullptr;
  std::size_t cap = 0;

  std::atomic<bool> spill_active{false};
  std::mutex spill_mutex;
  std::deque<Bytes> spill;

  /// Doorbell, elided on the hot path: the producer rings only when
  /// `doorbell_pending` was 0 (first publish since the consumer re-armed),
  /// so a streaming producer pays one eventfd syscall per drain cycle
  /// instead of one per frame.  Invariant: pending == 1 implies the pulse
  /// is still in the fd — the consumer drains and re-arms in that order —
  /// so an external poll on signal.fd() never misses data either.  Lost
  /// wakeups are ruled out by seq_cst fences on both sides (Dekker): the
  /// consumer re-arms then re-checks the ring, the producer publishes then
  /// checks the armed flag, and one of the two must observe the other.
  ReadySignal signal;
  std::atomic<std::uint32_t> doorbell_pending{0};
};

class ShmLink final : public Link {
 public:
  ShmLink(std::shared_ptr<ShmRing> out, std::shared_ptr<ShmRing> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  ~ShmLink() override { close(); }

  void send(BytesView frame, std::uint32_t message_count = 1) override {
    if (out_->ctl->closed.load(std::memory_order_acquire))
      raise(ErrorKind::kTransport, "send on closed shm link");

    bool fast = false;
    if (!out_->spill_active.load(std::memory_order_acquire))
      fast = try_push_ring(frame);
    if (!fast) {
      // Ring full, frame larger than the ring, or older spilled frames
      // still pending: spill.  The flag must flip in the same critical
      // section as the push so the consumer can never observe "active"
      // with an empty queue or vice versa across its own locked drain.
      const std::lock_guard<std::mutex> lock(out_->spill_mutex);
      out_->spill.emplace_back(frame.begin(), frame.end());
      out_->spill_active.store(true, std::memory_order_release);
    }
    stats_.count_send(message_count, frame.size());
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (out_->doorbell_pending.exchange(1, std::memory_order_relaxed) == 0)
      out_->signal.notify();
  }

  std::optional<Bytes> try_recv() override {
    commit_pending_view();
    if (auto msg = pop()) return msg;
    // Looked empty: consume stale pulses so a pooled poll on our fd does
    // not spin, re-arm the doorbell, then re-check.  A push racing the
    // re-arm either sees the armed flag (and rings) or its cursor publish
    // is visible to this second pop — the seq_cst fences make one of the
    // two certain.  Either way no wakeup is lost.
    in_->signal.drain();
    rearm_doorbell();
    return pop();
  }

  std::optional<Bytes> recv_for(std::chrono::milliseconds timeout) override {
    const Clock::time_point deadline = Clock::now() + timeout;
    for (;;) {
      if (auto msg = try_recv()) return msg;
      if (in_->ctl->closed.load(std::memory_order_acquire))
        return std::nullopt;
      const auto remaining =
          std::chrono::ceil<std::chrono::milliseconds>(deadline -
                                                       Clock::now());
      if (remaining.count() <= 0) return std::nullopt;
      pollfd pfd{.fd = in_->signal.fd(), .events = POLLIN, .revents = 0};
      const int pr = ::poll(
          &pfd, 1,
          static_cast<int>(std::clamp<std::int64_t>(
              remaining.count(), 0, std::numeric_limits<int>::max())));
      if (pr < 0 && errno != EINTR)
        raise(ErrorKind::kTransport,
              std::string("shm poll: ") + std::strerror(errno));
    }
  }

  bool supports_recv_view() const override { return true; }

  std::optional<BytesView> try_recv_view() override {
    commit_pending_view();
    if (auto view = peek()) return view;
    in_->signal.drain();
    rearm_doorbell();
    return peek();
  }

  void release_recv_view() override { commit_pending_view(); }

  void close() override {
    for (const auto& ring : {out_, in_}) {
      ring->ctl->closed.store(1, std::memory_order_release);
      ring->signal.notify();
    }
  }

  bool closed() const override {
    return out_->ctl->closed.load(std::memory_order_acquire) != 0;
  }

  LinkStats stats() const override { return stats_.snapshot(); }

  std::string describe() const override { return "shm"; }

  int readable_fd() const override { return in_->signal.fd(); }

 private:
  /// Producer side: append one record, never wrapping a frame.  Returns
  /// false when the ring lacks space (caller spills).
  bool try_push_ring(BytesView frame) {
    Control& c = *out_->ctl;
    const std::size_t cap = out_->cap;
    const std::size_t rec = kHeaderBytes + align4(frame.size());
    std::uint64_t tail = c.tail.load(std::memory_order_relaxed);
    const std::uint64_t head = c.head.load(std::memory_order_acquire);
    const std::size_t pos = tail & (cap - 1);
    const std::size_t slack = cap - pos;
    const std::size_t need = slack >= rec ? rec : slack + rec;
    if (cap - (tail - head) < need) return false;

    std::size_t at = pos;
    if (slack < rec) {
      // Burn the slack so the record stays contiguous; a marker tells the
      // consumer to skip (slack < 4 needs none — too small to even hold a
      // length, so the consumer skips it unconditionally).
      if (slack >= kHeaderBytes) {
        const std::uint32_t marker = kWrapMarker;
        std::memcpy(out_->data + pos, &marker, kHeaderBytes);
      }
      tail += slack;
      at = 0;
    }
    const std::uint32_t len = static_cast<std::uint32_t>(frame.size());
    std::memcpy(out_->data + at, &len, kHeaderBytes);
    if (!frame.empty())
      std::memcpy(out_->data + at + kHeaderBytes, frame.data(), frame.size());
    c.tail.store(tail + rec, std::memory_order_release);
    return true;
  }

  /// Consumer side: locate the next frame, committing skip-bytes (wrap
  /// markers, sub-header slack) immediately — they expose no data, and
  /// releasing them early can only help the producer.  Returns the frame's
  /// start offset and length, or nullopt when the ring is empty.
  struct RingFrame {
    std::size_t at;
    std::size_t len;
    std::uint64_t advance;  // head delta consuming this record
  };

  std::optional<RingFrame> next_ring_frame() {
    Control& c = *in_->ctl;
    const std::size_t cap = in_->cap;
    std::uint64_t head = c.head.load(std::memory_order_relaxed);
    for (;;) {
      const std::uint64_t tail = c.tail.load(std::memory_order_acquire);
      if (head == tail) return std::nullopt;
      const std::size_t pos = head & (cap - 1);
      const std::size_t slack = cap - pos;
      if (slack < kHeaderBytes) {
        head += slack;
        c.head.store(head, std::memory_order_release);
        continue;
      }
      std::uint32_t len = 0;
      std::memcpy(&len, in_->data + pos, kHeaderBytes);
      if (len == kWrapMarker) {
        head += slack;
        c.head.store(head, std::memory_order_release);
        continue;
      }
      return RingFrame{pos + kHeaderBytes, len, kHeaderBytes + align4(len)};
    }
  }

  std::optional<Bytes> pop() {
    // Ring first: while the spill is active the producer bypasses the ring,
    // so anything in the ring predates everything in the spill.
    if (auto f = next_ring_frame()) {
      Bytes msg(in_->data + f->at, in_->data + f->at + f->len);
      advance_head(f->advance);
      stats_.count_recv(msg.size());
      return msg;
    }
    if (in_->spill_active.load(std::memory_order_acquire)) {
      const std::lock_guard<std::mutex> lock(in_->spill_mutex);
      // Re-check the ring under the lock: the empty-ring read above may be
      // stale relative to the spill flag.  Holding the mutex orders us
      // after the producer's spill section, making its prior ring
      // publishes visible.
      if (auto f = next_ring_frame()) {
        Bytes msg(in_->data + f->at, in_->data + f->at + f->len);
        advance_head(f->advance);
        stats_.count_recv(msg.size());
        return msg;
      }
      if (!in_->spill.empty()) {
        Bytes msg = std::move(in_->spill.front());
        in_->spill.pop_front();
        if (in_->spill.empty())
          in_->spill_active.store(false, std::memory_order_release);
        stats_.count_recv(msg.size());
        return msg;
      }
      in_->spill_active.store(false, std::memory_order_release);
    }
    return std::nullopt;
  }

  /// Borrow the next frame without consuming it.  Ring frames alias the
  /// mapped region directly; spilled frames alias the owning deque node
  /// (stable until popped — deque growth never moves existing elements).
  std::optional<BytesView> peek() {
    if (auto f = next_ring_frame()) {
      pending_advance_ = f->advance;
      stats_.count_recv(f->len);
      return BytesView{in_->data + f->at, f->len};
    }
    if (in_->spill_active.load(std::memory_order_acquire)) {
      const std::lock_guard<std::mutex> lock(in_->spill_mutex);
      if (auto f = next_ring_frame()) {
        pending_advance_ = f->advance;
        stats_.count_recv(f->len);
        return BytesView{in_->data + f->at, f->len};
      }
      if (!in_->spill.empty()) {
        pending_spill_ = true;
        stats_.count_recv(in_->spill.front().size());
        return BytesView{in_->spill.front()};
      }
      in_->spill_active.store(false, std::memory_order_release);
    }
    return std::nullopt;
  }

  void commit_pending_view() {
    if (pending_advance_ != 0) {
      advance_head(pending_advance_);
      pending_advance_ = 0;
    }
    if (pending_spill_) {
      const std::lock_guard<std::mutex> lock(in_->spill_mutex);
      in_->spill.pop_front();
      if (in_->spill.empty())
        in_->spill_active.store(false, std::memory_order_release);
      pending_spill_ = false;
    }
  }

  void rearm_doorbell() {
    in_->doorbell_pending.store(0, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
  }

  void advance_head(std::uint64_t delta) {
    Control& c = *in_->ctl;
    c.head.store(c.head.load(std::memory_order_relaxed) + delta,
                 std::memory_order_release);
  }

  std::shared_ptr<ShmRing> out_;
  std::shared_ptr<ShmRing> in_;
  // Deferred consumption for the borrowed-view path; touched only by the
  // consumer thread (the Link SPSC contract).
  std::uint64_t pending_advance_ = 0;
  bool pending_spill_ = false;
  AtomicLinkStats stats_;
};

}  // namespace

LinkPair make_shm_pair(std::size_t ring_bytes) {
  auto forward = std::make_shared<ShmRing>(ring_bytes);
  auto backward = std::make_shared<ShmRing>(ring_bytes);
  return LinkPair{
      .a = std::make_unique<ShmLink>(forward, backward),
      .b = std::make_unique<ShmLink>(backward, forward),
  };
}

LinkPair make_shm_pair() { return make_shm_pair(kShmDefaultRingBytes); }

}  // namespace pia::transport
