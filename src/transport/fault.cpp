#include "transport/fault.hpp"

#include <algorithm>
#include <cstring>
#include <thread>

#include "base/error.hpp"
#include "base/rng.hpp"

namespace pia::transport {
namespace {

using Clock = std::chrono::steady_clock;

// Per-frame header stamped by the sending side: a sequence number (for
// receiver-side dedup of duplicated frames) and a release deadline (for
// delay faults; monotone per link, so FIFO survives).
constexpr std::size_t kHeaderSize =
    sizeof(std::uint64_t) + sizeof(std::int64_t);

class FaultLink final : public Link {
 public:
  FaultLink(LinkPtr inner, FaultPlan plan)
      : inner_(std::move(inner)),
        plan_(std::move(plan)),
        jitter_rng_(plan_.seed ^ 0xD1B54A32D192ED03ULL),
        drop_rng_(plan_.seed ^ 0x8CB92BA72F3D8DD7ULL),
        dup_rng_(plan_.seed ^ 0x2545F4914F6CDD1DULL),
        epoch_(Clock::now()) {}

  void send(BytesView message, std::uint32_t message_count = 1) override {
    if (plan_.close_after_sends > 0 && sends_ >= plan_.close_after_sends) {
      trip();
      raise(ErrorKind::kTransport,
            "fault link closed (injected abrupt close)");
    }
    if (crash_due()) {
      trip();
      raise(ErrorKind::kTransport, "fault link crashed (injected crash_at)");
    }
    ++sends_;
    ++frames_seen_;

    auto delay = Clock::duration::zero();
    if (plan_.delay_jitter_max.count() > 0) {
      const auto extra = std::chrono::microseconds(jitter_rng_.below(
          static_cast<std::uint64_t>(plan_.delay_jitter_max.count()) + 1));
      if (extra.count() > 0)
        stats_.faults_delayed.fetch_add(1, std::memory_order_relaxed);
      delay += std::chrono::duration_cast<Clock::duration>(extra);
    }
    if (plan_.drop_probability > 0.0 &&
        drop_rng_.chance(plan_.drop_probability)) {
      // First transmission lost; model the retransmission as extra latency.
      stats_.faults_dropped.fetch_add(1, std::memory_order_relaxed);
      delay += std::chrono::duration_cast<Clock::duration>(plan_.retry_delay);
    }

    auto release = apply_partitions(Clock::now() + delay);
    // FIFO: release deadlines must be monotone even with random delays.
    if (release < send_floor_) release = send_floor_;
    send_floor_ = release;

    const std::uint64_t seq = ++send_seq_;
    const std::int64_t stamp = release.time_since_epoch().count();
    send_scratch_.resize(kHeaderSize + message.size());
    std::memcpy(send_scratch_.data(), &seq, sizeof(seq));
    std::memcpy(send_scratch_.data() + sizeof(seq), &stamp, sizeof(stamp));
    std::memcpy(send_scratch_.data() + kHeaderSize, message.data(),
                message.size());
    inner_->send(send_scratch_, message_count);
    if (plan_.dup_probability > 0.0 &&
        dup_rng_.chance(plan_.dup_probability)) {
      stats_.faults_duplicated.fetch_add(1, std::memory_order_relaxed);
      inner_->send(send_scratch_, message_count);
    }
    stats_.count_send(message_count, message.size());
  }

  std::optional<Bytes> try_recv() override {
    while (!pending_) {
      auto raw = inner_->try_recv();
      if (!raw) return std::nullopt;
      accept(std::move(*raw));
    }
    return release_if_due(/*may_wait=*/false, {});
  }

  std::optional<Bytes> recv_for(std::chrono::milliseconds timeout) override {
    const auto deadline = Clock::now() + timeout;
    for (;;) {
      while (!pending_) {
        const auto now = Clock::now();
        const auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                                  now);
        if (remaining.count() <= 0) return std::nullopt;
        auto raw = inner_->recv_for(remaining);
        if (!raw) return std::nullopt;
        accept(std::move(*raw));
      }
      auto out = release_if_due(/*may_wait=*/true, deadline);
      if (out) return out;
      if (Clock::now() >= deadline) return std::nullopt;
    }
  }

  void close() override { inner_->close(); }
  bool closed() const override { return tripped_ || inner_->closed(); }

  LinkStats stats() const override {
    // Logical (post-fault) message counts plus the fault counters; the
    // inner link's own stats would double-count duplicated frames.
    return stats_.snapshot();
  }

  std::string describe() const override {
    return inner_->describe() + "+fault";
  }

  void set_ready_signal(ReadySignalPtr signal) override {
    inner_->set_ready_signal(std::move(signal));
  }

  int readable_fd() const override { return inner_->readable_fd(); }

  std::optional<Clock::time_point> next_ready_time() const override {
    // A frame parked in pending_ matures silently at its release stamp —
    // report it so a unified waiter does not sleep past it.
    if (pending_) return Clock::time_point{Clock::duration{pending_stamp_}};
    return inner_->next_ready_time();
  }

 private:
  /// The injected crash_at fault is due: this endpoint has handled its
  /// allotted frames (both directions combined) and dies on the next one.
  [[nodiscard]] bool crash_due() const {
    return plan_.crash_at_frames > 0 && frames_seen_ >= plan_.crash_at_frames;
  }

  void trip() {
    if (tripped_) return;
    tripped_ = true;
    stats_.faults_abrupt_closes.fetch_add(1, std::memory_order_relaxed);
    inner_->close();
  }

  Clock::time_point apply_partitions(Clock::time_point release) {
    for (const FaultPlan::Partition& window : plan_.partitions) {
      const auto start = epoch_ + window.start;
      const auto end = start + window.duration;
      if (release >= start && release < end) {
        release = end;
        stats_.faults_partition_held.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return release;
  }

  /// Parses a framed message; false when it was a duplicate (discarded).
  bool accept(Bytes raw) {
    if (raw.size() < kHeaderSize)
      raise(ErrorKind::kProtocol, "fault link header missing");
    std::uint64_t seq = 0;
    std::memcpy(&seq, raw.data(), sizeof(seq));
    if (seq <= recv_seq_) {  // FIFO inner link => duplicate, not reorder
      stats_.faults_dup_discarded.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    if (crash_due()) {
      // The crash lands mid-receive: the frame is lost with the process.
      trip();
      pending_.reset();
      return false;
    }
    ++frames_seen_;
    recv_seq_ = seq;
    std::memcpy(&pending_stamp_, raw.data() + sizeof(seq),
                sizeof(pending_stamp_));
    pending_ = Bytes(raw.begin() + kHeaderSize, raw.end());
    return true;
  }

  std::optional<Bytes> release_if_due(bool may_wait,
                                      Clock::time_point deadline) {
    if (!pending_) return std::nullopt;
    const Clock::time_point release{Clock::duration{pending_stamp_}};
    const auto now = Clock::now();
    if (release > now) {
      if (!may_wait) return std::nullopt;
      if (release > deadline) {
        std::this_thread::sleep_until(deadline);
        return std::nullopt;
      }
      std::this_thread::sleep_until(release);
    }
    Bytes out = std::move(*pending_);
    pending_.reset();
    stats_.count_recv(out.size());
    return out;
  }

  LinkPtr inner_;
  FaultPlan plan_;
  Rng jitter_rng_;
  Rng drop_rng_;
  Rng dup_rng_;
  Clock::time_point epoch_;
  Clock::time_point send_floor_{};
  std::uint64_t sends_ = 0;
  std::uint64_t frames_seen_ = 0;  // both directions, for crash_at_frames
  std::uint64_t send_seq_ = 0;
  std::uint64_t recv_seq_ = 0;
  bool tripped_ = false;
  std::optional<Bytes> pending_;
  std::int64_t pending_stamp_ = 0;
  Bytes send_scratch_;  // reused seq+stamp header assembly buffer
  // stats() may be read while another thread drives the send or recv path;
  // the counters are lock-free atomics so the read needs no mutex.
  AtomicLinkStats stats_;
};

}  // namespace

LinkPtr make_fault_link(LinkPtr inner, FaultPlan plan) {
  return std::make_unique<FaultLink>(std::move(inner), std::move(plan));
}

LinkPair make_fault_pair(FaultPlan plan) {
  LinkPair pair = make_loopback_pair();
  return LinkPair{
      .a = make_fault_link(std::move(pair.a), plan.for_endpoint(1)),
      .b = make_fault_link(std::move(pair.b), plan.for_endpoint(2)),
  };
}

}  // namespace pia::transport
