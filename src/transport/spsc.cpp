#include "transport/spsc.hpp"

#include <poll.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <limits>
#include <mutex>
#include <vector>

#include "base/error.hpp"

namespace pia::transport {
namespace {

using Clock = std::chrono::steady_clock;

// Ring capacity per direction.  Sized so that ordinary batched traffic
// (one frame per loop slice per channel) never overflows; the spill queue
// exists for correctness under bursts, not as a working regime.
constexpr std::size_t kRingCapacity = 256;
static_assert((kRingCapacity & (kRingCapacity - 1)) == 0,
              "ring indexing relies on a power-of-two capacity");

/// One direction of the pair.  The producer thread touches tail_ and the
/// spill queue; the consumer thread touches head_ and the spill queue; the
/// cache-line padding keeps their counters from false-sharing.
struct Ring {
  std::vector<Bytes> slots{kRingCapacity};

  alignas(64) std::atomic<std::size_t> tail{0};  // producer's next slot
  alignas(64) std::atomic<std::size_t> head{0};  // consumer's next slot
  alignas(64) std::atomic<bool> closed{false};

  /// True while spilled messages exist.  Set by the producer (under the
  /// mutex, together with the push), cleared by the consumer (under the
  /// mutex, only once the spill is empty) — so a producer reading `false`
  /// knows every older message has already been consumed and the ring may
  /// be used again without reordering.
  std::atomic<bool> spill_active{false};
  std::mutex spill_mutex;
  std::deque<Bytes> spill;

  /// Pulsed once per push and on close; the consumer polls signal.fd().
  ReadySignal signal;
};

class SpscLink final : public Link {
 public:
  SpscLink(std::shared_ptr<Ring> out, std::shared_ptr<Ring> in)
      : out_(std::move(out)), in_(std::move(in)) {}

  ~SpscLink() override { close(); }

  void send(BytesView frame, std::uint32_t message_count = 1) override {
    if (out_->closed.load(std::memory_order_acquire))
      raise(ErrorKind::kTransport, "send on closed spsc link");
    Bytes msg(frame.begin(), frame.end());

    bool fast = false;
    if (!out_->spill_active.load(std::memory_order_acquire)) {
      const std::size_t tail = out_->tail.load(std::memory_order_relaxed);
      const std::size_t head = out_->head.load(std::memory_order_acquire);
      if (tail - head < kRingCapacity) {
        out_->slots[tail & (kRingCapacity - 1)] = std::move(msg);
        out_->tail.store(tail + 1, std::memory_order_release);
        fast = true;
      }
    }
    if (!fast) {
      // Ring full (or older spilled messages still pending): spill.  The
      // flag must flip in the same critical section as the push so the
      // consumer can never observe "active" with an empty queue or vice
      // versa across its own locked drain.
      const std::lock_guard<std::mutex> lock(out_->spill_mutex);
      out_->spill.push_back(std::move(msg));
      out_->spill_active.store(true, std::memory_order_release);
    }
    stats_.count_send(message_count, frame.size());
    out_->signal.notify();
  }

  std::optional<Bytes> try_recv() override {
    commit_pending_view();
    if (auto msg = pop()) return msg;
    // Looked empty: consume stale pulses so a pooled poll on our fd does
    // not spin, then re-check.  A push racing the drain is caught by the
    // second pop (the pipe write follows the slot publish, so a consumed
    // pulse implies a visible message); a push after the drain leaves its
    // own pulse in the pipe.  Either way no wakeup is lost.
    in_->signal.drain();
    return pop();
  }

  std::optional<Bytes> recv_for(std::chrono::milliseconds timeout) override {
    const Clock::time_point deadline = Clock::now() + timeout;
    for (;;) {
      if (auto msg = try_recv()) return msg;
      if (in_->closed.load(std::memory_order_acquire)) return std::nullopt;
      const auto remaining =
          std::chrono::ceil<std::chrono::milliseconds>(deadline -
                                                       Clock::now());
      if (remaining.count() <= 0) return std::nullopt;
      pollfd pfd{.fd = in_->signal.fd(), .events = POLLIN, .revents = 0};
      const int pr = ::poll(
          &pfd, 1,
          static_cast<int>(std::clamp<std::int64_t>(
              remaining.count(), 0, std::numeric_limits<int>::max())));
      if (pr < 0 && errno != EINTR)
        raise(ErrorKind::kTransport,
              std::string("spsc poll: ") + std::strerror(errno));
    }
  }

  bool supports_recv_view() const override { return true; }

  std::optional<BytesView> try_recv_view() override {
    commit_pending_view();
    if (auto view = peek()) return view;
    in_->signal.drain();
    return peek();
  }

  void release_recv_view() override { commit_pending_view(); }

  void close() override {
    for (const auto& ring : {out_, in_}) {
      ring->closed.store(true, std::memory_order_release);
      ring->signal.notify();
    }
  }

  bool closed() const override {
    return out_->closed.load(std::memory_order_acquire);
  }

  LinkStats stats() const override { return stats_.snapshot(); }

  std::string describe() const override { return "spsc"; }

  int readable_fd() const override { return in_->signal.fd(); }

 private:
  std::optional<Bytes> pop() {
    // Ring first: while the spill is active the producer bypasses the ring,
    // so anything in the ring predates everything in the spill.
    const std::size_t head = in_->head.load(std::memory_order_relaxed);
    const std::size_t tail = in_->tail.load(std::memory_order_acquire);
    if (head != tail) {
      Bytes msg = std::move(in_->slots[head & (kRingCapacity - 1)]);
      in_->head.store(head + 1, std::memory_order_release);
      stats_.count_recv(msg.size());
      return msg;
    }
    if (in_->spill_active.load(std::memory_order_acquire)) {
      const std::lock_guard<std::mutex> lock(in_->spill_mutex);
      // Re-check the ring under the lock: the empty-ring read above may be
      // stale relative to the spill flag (ring pushes that preceded the
      // spill could be invisible to the earlier unlocked load).  Holding
      // the mutex orders us after the producer's spill section, making its
      // prior ring publishes visible.
      const std::size_t h = in_->head.load(std::memory_order_relaxed);
      const std::size_t t = in_->tail.load(std::memory_order_acquire);
      if (h != t) {
        Bytes msg = std::move(in_->slots[h & (kRingCapacity - 1)]);
        in_->head.store(h + 1, std::memory_order_release);
        stats_.count_recv(msg.size());
        return msg;
      }
      if (!in_->spill.empty()) {
        Bytes msg = std::move(in_->spill.front());
        in_->spill.pop_front();
        if (in_->spill.empty())
          in_->spill_active.store(false, std::memory_order_release);
        stats_.count_recv(msg.size());
        return msg;
      }
      in_->spill_active.store(false, std::memory_order_release);
    }
    return std::nullopt;
  }

  /// Borrow the next frame without consuming it: a ring frame aliases its
  /// slot (the producer cannot reuse the slot until head advances at
  /// commit), a spilled frame aliases the deque front (stable until popped
  /// — deque growth never moves existing elements).
  std::optional<BytesView> peek() {
    const std::size_t head = in_->head.load(std::memory_order_relaxed);
    const std::size_t tail = in_->tail.load(std::memory_order_acquire);
    if (head != tail) {
      const Bytes& msg = in_->slots[head & (kRingCapacity - 1)];
      pending_ring_ = true;
      stats_.count_recv(msg.size());
      return BytesView{msg};
    }
    if (in_->spill_active.load(std::memory_order_acquire)) {
      const std::lock_guard<std::mutex> lock(in_->spill_mutex);
      const std::size_t h = in_->head.load(std::memory_order_relaxed);
      const std::size_t t = in_->tail.load(std::memory_order_acquire);
      if (h != t) {
        const Bytes& msg = in_->slots[h & (kRingCapacity - 1)];
        pending_ring_ = true;
        stats_.count_recv(msg.size());
        return BytesView{msg};
      }
      if (!in_->spill.empty()) {
        pending_spill_ = true;
        stats_.count_recv(in_->spill.front().size());
        return BytesView{in_->spill.front()};
      }
      in_->spill_active.store(false, std::memory_order_release);
    }
    return std::nullopt;
  }

  void commit_pending_view() {
    if (pending_ring_) {
      const std::size_t head = in_->head.load(std::memory_order_relaxed);
      in_->head.store(head + 1, std::memory_order_release);
      pending_ring_ = false;
    }
    if (pending_spill_) {
      const std::lock_guard<std::mutex> lock(in_->spill_mutex);
      in_->spill.pop_front();
      if (in_->spill.empty())
        in_->spill_active.store(false, std::memory_order_release);
      pending_spill_ = false;
    }
  }

  std::shared_ptr<Ring> out_;
  std::shared_ptr<Ring> in_;
  // Deferred consumption for the borrowed-view path; touched only by the
  // consumer thread (the Link SPSC contract).
  bool pending_ring_ = false;
  bool pending_spill_ = false;
  AtomicLinkStats stats_;
};

}  // namespace

LinkPair make_spsc_pair() {
  auto forward = std::make_shared<Ring>();
  auto backward = std::make_shared<Ring>();
  return LinkPair{
      .a = std::make_unique<SpscLink>(forward, backward),
      .b = std::make_unique<SpscLink>(backward, forward),
  };
}

}  // namespace pia::transport
