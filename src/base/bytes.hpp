// Byte-buffer conveniences shared by serialization and transport.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pia {

using Bytes = std::vector<std::byte>;
using BytesView = std::span<const std::byte>;

inline Bytes to_bytes(std::string_view s) {
  Bytes out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

inline std::string to_string(BytesView b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

/// FNV-1a, used for cheap content fingerprints (checkpoint dedup, tests).
inline std::uint64_t fnv1a(BytesView b) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (std::byte x : b) {
    h ^= static_cast<std::uint64_t>(x);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace pia
