// Minimal leveled logger.
//
// The framework logs sparingly (protocol traces at kTrace, lifecycle events
// at kInfo).  Output goes to stderr; the level is settable globally and via
// the PIA_LOG environment variable (trace|debug|info|warn|error|off).
#pragma once

#include <sstream>
#include <string>

namespace pia {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// True if a message at `level` would be emitted (used to skip formatting).
[[nodiscard]] bool log_enabled(LogLevel level);

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}  // namespace detail

}  // namespace pia

#define PIA_LOG(level, stream_expr)                       \
  do {                                                    \
    if (::pia::log_enabled(level)) {                      \
      std::ostringstream pia_log_os;                      \
      pia_log_os << stream_expr;                          \
      ::pia::detail::log_emit(level, pia_log_os.str());   \
    }                                                     \
  } while (false)

#define PIA_TRACE(stream_expr) PIA_LOG(::pia::LogLevel::kTrace, stream_expr)
#define PIA_DEBUG(stream_expr) PIA_LOG(::pia::LogLevel::kDebug, stream_expr)
#define PIA_INFO(stream_expr)  PIA_LOG(::pia::LogLevel::kInfo, stream_expr)
#define PIA_WARN(stream_expr)  PIA_LOG(::pia::LogLevel::kWarn, stream_expr)
#define PIA_ERROR(stream_expr) PIA_LOG(::pia::LogLevel::kError, stream_expr)
