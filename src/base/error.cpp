#include "base/error.hpp"

#include <sstream>
#include <utility>

namespace pia {

const char* to_string(ErrorKind kind) {
  switch (kind) {
    case ErrorKind::kInvalidArgument: return "invalid_argument";
    case ErrorKind::kPrecondition:    return "precondition";
    case ErrorKind::kState:           return "state";
    case ErrorKind::kSerialization:   return "serialization";
    case ErrorKind::kTransport:       return "transport";
    case ErrorKind::kProtocol:        return "protocol";
    case ErrorKind::kConsistency:     return "consistency";
    case ErrorKind::kTopology:        return "topology";
    case ErrorKind::kNotFound:        return "not_found";
  }
  return "unknown";
}

Error::Error(ErrorKind kind, std::string message)
    : std::runtime_error(std::string("[") + to_string(kind) + "] " +
                         std::move(message)),
      kind_(kind) {}

void raise(ErrorKind kind, std::string message) {
  throw Error(kind, std::move(message));
}

namespace detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& message) {
  std::ostringstream os;
  os << "check failed: (" << expr << ") at " << file << ":" << line << ": "
     << message;
  throw Error(ErrorKind::kPrecondition, os.str());
}

}  // namespace detail
}  // namespace pia
