// Error handling for the Pia framework.
//
// Following the Core Guidelines (E.2): throw an exception to signal that a
// function cannot perform its task.  All framework errors derive from
// pia::Error and carry a category so callers can discriminate without string
// matching.  PIA_CHECK/PIA_REQUIRE are used for invariants and preconditions
// that indicate misuse of the API rather than environmental failure.
#pragma once

#include <stdexcept>
#include <string>

namespace pia {

enum class ErrorKind {
  kInvalidArgument,   // caller passed something nonsensical
  kPrecondition,      // API misuse (wiring, lifecycle)
  kState,             // object not in a state that permits the operation
  kSerialization,     // archive underflow / version mismatch
  kTransport,         // socket / pipe failure
  kProtocol,          // malformed channel message
  kConsistency,       // virtual-time consistency violation detected
  kTopology,          // subsystem graph violates the simple-cycle rule
  kNotFound,          // lookup failure (registry, port name, ...)
};

[[nodiscard]] const char* to_string(ErrorKind kind);

class Error : public std::runtime_error {
 public:
  Error(ErrorKind kind, std::string message);

  [[nodiscard]] ErrorKind kind() const { return kind_; }

 private:
  ErrorKind kind_;
};

/// Throws Error{kind, message}.  Out-of-line so the throw does not bloat
/// every call site.
[[noreturn]] void raise(ErrorKind kind, std::string message);

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& message);
}  // namespace detail

}  // namespace pia

/// Invariant check: always on (simulation correctness beats the nanoseconds).
#define PIA_CHECK(expr, message)                                         \
  do {                                                                   \
    if (!(expr))                                                         \
      ::pia::detail::check_failed(#expr, __FILE__, __LINE__, (message)); \
  } while (false)

/// Precondition check: documents intent at API boundaries.
#define PIA_REQUIRE(expr, message) PIA_CHECK(expr, message)
