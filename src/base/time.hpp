// Virtual time.
//
// Pia maintains a two-level hierarchical view of virtual time (paper §2.1):
// every component has a *local* time and every subsystem a *subsystem* time
// that is always <= the local time of each of its components.  All of those
// are values of this one strong type, counted in integer ticks (we interpret
// one tick as a nanosecond of simulated time, but nothing in the kernel
// depends on the unit).
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>
#include <string>

namespace pia {

class VirtualTime {
 public:
  using rep = std::int64_t;

  constexpr VirtualTime() = default;
  constexpr explicit VirtualTime(rep ticks) : ticks_(ticks) {}

  /// Simulation epoch.
  static constexpr VirtualTime zero() { return VirtualTime{0}; }
  /// "Never": later than every reachable time.  Used as the safe time of a
  /// channel with no pending restriction and as the event-queue sentinel.
  static constexpr VirtualTime infinity() {
    return VirtualTime{std::numeric_limits<rep>::max()};
  }

  [[nodiscard]] constexpr rep ticks() const { return ticks_; }
  [[nodiscard]] constexpr bool is_infinite() const {
    return ticks_ == std::numeric_limits<rep>::max();
  }

  friend constexpr auto operator<=>(VirtualTime, VirtualTime) = default;

  constexpr VirtualTime operator+(VirtualTime d) const {
    if (is_infinite() || d.is_infinite()) return infinity();
    return VirtualTime{ticks_ + d.ticks_};
  }
  constexpr VirtualTime operator-(VirtualTime d) const {
    if (is_infinite()) return infinity();
    return VirtualTime{ticks_ - d.ticks_};
  }
  constexpr VirtualTime& operator+=(VirtualTime d) { return *this = *this + d; }

  friend std::ostream& operator<<(std::ostream& os, VirtualTime t) {
    if (t.is_infinite()) return os << "t=inf";
    return os << "t=" << t.ticks_;
  }

  [[nodiscard]] std::string str() const {
    return is_infinite() ? "inf" : std::to_string(ticks_);
  }

 private:
  rep ticks_ = 0;
};

/// A duration literal helper: ticks(5) reads better than VirtualTime{5} at
/// call sites that mean a *delay* rather than an absolute instant.
constexpr VirtualTime ticks(VirtualTime::rep n) { return VirtualTime{n}; }

constexpr VirtualTime min(VirtualTime a, VirtualTime b) { return a < b ? a : b; }
constexpr VirtualTime max(VirtualTime a, VirtualTime b) { return a < b ? b : a; }

}  // namespace pia
