#include "base/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace pia {
namespace {

std::atomic<LogLevel> g_level = [] {
  if (const char* env = std::getenv("PIA_LOG")) {
    if (!std::strcmp(env, "trace")) return LogLevel::kTrace;
    if (!std::strcmp(env, "debug")) return LogLevel::kDebug;
    if (!std::strcmp(env, "info")) return LogLevel::kInfo;
    if (!std::strcmp(env, "warn")) return LogLevel::kWarn;
    if (!std::strcmp(env, "error")) return LogLevel::kError;
    if (!std::strcmp(env, "off")) return LogLevel::kOff;
  }
  return LogLevel::kWarn;
}();

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?????";
}

std::mutex g_emit_mutex;

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }
bool log_enabled(LogLevel level) { return level >= g_level.load(); }

namespace detail {

void log_emit(LogLevel level, const std::string& message) {
  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::fprintf(stderr, "[pia %s] %s\n", level_tag(level), message.c_str());
}

}  // namespace detail
}  // namespace pia
