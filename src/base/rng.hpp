// Deterministic pseudo-random numbers for workload generators and models.
//
// Simulation runs must be reproducible, so everything that needs randomness
// (latency jitter, page content, handwriting strokes, ...) takes an explicit
// Rng seeded by the caller.  The generator is SplitMix64: tiny, fast and
// statistically fine for workload shaping.
#pragma once

#include <cstdint>

namespace pia {

class Rng {
 public:
  constexpr explicit Rng(std::uint64_t seed) : state_(seed) {}

  /// Next raw 64-bit value.
  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound).  bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) {
    return next() % bound;  // modulo bias is irrelevant for workload shaping
  }

  /// Uniform in [lo, hi] inclusive.
  constexpr std::int64_t range(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(below(
                    static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform in [0, 1).
  constexpr double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace pia
