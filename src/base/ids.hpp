// Strongly typed identifiers used throughout the Pia framework.
//
// Components, ports, nets, subsystems, nodes and channels are all referred to
// by small integer handles.  Mixing them up is a classic source of silent
// bugs in simulation kernels, so each gets a distinct non-convertible type.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace pia {

/// CRTP-free strong id: a 32-bit handle tagged with a phantom type.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;

  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) : value_(v) {}

  /// Sentinel meaning "no object".
  static constexpr Id invalid() {
    return Id{std::numeric_limits<underlying_type>::max()};
  }

  [[nodiscard]] constexpr underlying_type value() const { return value_; }
  [[nodiscard]] constexpr bool valid() const { return *this != invalid(); }

  friend constexpr auto operator<=>(Id, Id) = default;

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    if (!id.valid()) return os << Tag::prefix() << "<invalid>";
    return os << Tag::prefix() << id.value_;
  }

 private:
  underlying_type value_ = std::numeric_limits<underlying_type>::max();
};

struct ComponentTag { static constexpr const char* prefix() { return "comp#"; } };
struct PortTag      { static constexpr const char* prefix() { return "port#"; } };
struct NetTag       { static constexpr const char* prefix() { return "net#"; } };
struct SubsystemTag { static constexpr const char* prefix() { return "ss#"; } };
struct NodeTag      { static constexpr const char* prefix() { return "node#"; } };
struct ChannelTag   { static constexpr const char* prefix() { return "chan#"; } };
struct SnapshotTag  { static constexpr const char* prefix() { return "snap#"; } };

using ComponentId = Id<ComponentTag>;
using PortId      = Id<PortTag>;
using NetId       = Id<NetTag>;
using SubsystemId = Id<SubsystemTag>;
using NodeId      = Id<NodeTag>;
using ChannelId   = Id<ChannelTag>;
using SnapshotId  = Id<SnapshotTag>;

}  // namespace pia

namespace std {
template <typename Tag>
struct hash<pia::Id<Tag>> {
  size_t operator()(pia::Id<Tag> id) const noexcept {
    return std::hash<typename pia::Id<Tag>::underlying_type>{}(id.value());
  }
};
}  // namespace std
