#include "proc/dma.hpp"

#include "base/error.hpp"
#include "serial/archive.hpp"

namespace pia::proc {

DmaEngine::DmaEngine(std::string name, Memory& memory,
                     std::uint64_t bytes_per_cycle,
                     ProcessorProfile bus_profile)
    : Component(std::move(name)),
      memory_(memory),
      bytes_per_cycle_(bytes_per_cycle),
      bus_profile_(std::move(bus_profile)) {
  PIA_REQUIRE(bytes_per_cycle_ > 0, "DMA must move at least a byte a cycle");
  dev_ = add_input("dev");
  ctl_ = add_input("ctl", PortSync::kAsynchronous);
  irq_ = add_output("irq");
}

DmaEngine::Completion DmaEngine::decode_completion(const Value& irq_value) {
  const std::uint64_t word = irq_value.as_word();
  return Completion{.address = static_cast<std::uint32_t>(word >> 16),
                    .length = static_cast<std::uint32_t>(word & 0xFFFF)};
}

void DmaEngine::on_receive(PortIndex port, const Value& value) {
  if (port == ctl_) {
    const std::uint64_t word = value.as_word();
    switch (word & 0b1111) {
      case 0b0001: base_ = static_cast<std::uint32_t>(word >> 4); break;
      case 0b0010: buffer_count_ = static_cast<std::uint32_t>(word >> 4); break;
      case 0b0011: buffer_size_ = static_cast<std::uint32_t>(word >> 4); break;
      case 0b0100: enabled_ = true; break;
      case 0b0000: enabled_ = false; break;
      default: raise(ErrorKind::kInvalidArgument, "bad DMA ctl word");
    }
    advance(ticks(10));
    return;
  }

  PIA_REQUIRE(port == dev_, "value on unexpected DMA port");
  const BytesView frame = value.as_packet();
  if (!enabled_) {
    ++drops_;  // real DMA engines drop when not armed
    return;
  }
  PIA_REQUIRE(frame.size() <= buffer_size_,
              "device frame exceeds DMA buffer size");
  const std::uint32_t addr = base_ + next_buffer_ * buffer_size_;
  // Model the bus occupancy of the burst, then land it atomically.
  const std::uint64_t cycles =
      (frame.size() + bytes_per_cycle_ - 1) / bytes_per_cycle_;
  advance(bus_profile_.time_for_cycles(cycles));
  memory_.dma_write(addr, frame, local_time());

  next_buffer_ = (next_buffer_ + 1) % buffer_count_;
  ++transfers_;
  bytes_ += frame.size();
  send(irq_, Value{(static_cast<std::uint64_t>(addr) << 16) |
                   static_cast<std::uint64_t>(frame.size())});
}

void DmaEngine::save_state(serial::OutArchive& ar) const {
  ar.put_varint(base_);
  ar.put_varint(buffer_count_);
  ar.put_varint(buffer_size_);
  ar.put_bool(enabled_);
  ar.put_varint(next_buffer_);
  ar.put_varint(transfers_);
  ar.put_varint(bytes_);
  ar.put_varint(drops_);
}

void DmaEngine::restore_state(serial::InArchive& ar) {
  base_ = static_cast<std::uint32_t>(ar.get_varint());
  buffer_count_ = static_cast<std::uint32_t>(ar.get_varint());
  buffer_size_ = static_cast<std::uint32_t>(ar.get_varint());
  enabled_ = ar.get_bool();
  next_buffer_ = static_cast<std::uint32_t>(ar.get_varint());
  transfers_ = ar.get_varint();
  bytes_ = ar.get_varint();
  drops_ = ar.get_varint();
}

}  // namespace pia::proc
