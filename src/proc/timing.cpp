#include "proc/timing.hpp"

namespace pia::proc {

std::uint32_t ProcessorProfile::cycles_for(OpClass op) const {
  switch (op) {
    case OpClass::kAlu: return alu_cycles;
    case OpClass::kLoad: return load_cycles;
    case OpClass::kStore: return store_cycles;
    case OpClass::kBranch: return branch_cycles;
    case OpClass::kMul: return mul_cycles;
    case OpClass::kDiv: return div_cycles;
  }
  return 1;
}

VirtualTime ProcessorProfile::time_for_cycles(std::uint64_t cycles) const {
  // ticks are nanoseconds: t = cycles * 1e9 / clock_hz, rounded up so a
  // nonzero block always consumes time.
  const std::uint64_t numerator = cycles * 1'000'000'000ULL;
  return VirtualTime{
      static_cast<VirtualTime::rep>((numerator + clock_hz - 1) / clock_hz)};
}

ProcessorProfile ProcessorProfile::embedded_33mhz() {
  return ProcessorProfile{.name = "embedded-33MHz",
                          .clock_hz = 33'000'000,
                          .alu_cycles = 1,
                          .load_cycles = 3,
                          .store_cycles = 3,
                          .branch_cycles = 3,
                          .mul_cycles = 6,
                          .div_cycles = 35};
}

ProcessorProfile ProcessorProfile::pentium_pro_200() {
  return ProcessorProfile{.name = "pentium-pro-200",
                          .clock_hz = 200'000'000,
                          .alu_cycles = 1,
                          .load_cycles = 2,
                          .store_cycles = 2,
                          .branch_cycles = 1,
                          .mul_cycles = 4,
                          .div_cycles = 18};
}

void BasicBlockTimer::block(std::uint64_t alu, std::uint64_t loads,
                            std::uint64_t stores, std::uint64_t branches,
                            std::uint64_t muls, std::uint64_t divs) {
  pending_cycles_ += alu * profile_.alu_cycles + loads * profile_.load_cycles +
                     stores * profile_.store_cycles +
                     branches * profile_.branch_cycles +
                     muls * profile_.mul_cycles + divs * profile_.div_cycles;
}

VirtualTime BasicBlockTimer::take() {
  total_cycles_ += pending_cycles_;
  const VirtualTime t = profile_.time_for_cycles(pending_cycles_);
  pending_cycles_ = 0;
  return t;
}

}  // namespace pia::proc
