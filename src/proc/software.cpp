#include "proc/software.hpp"

namespace pia::proc {

SoftwareComponent::SoftwareComponent(std::string name,
                                     ProcessorProfile profile,
                                     std::size_t memory_bytes)
    : Component(std::move(name)),
      timer_(std::move(profile)),
      memory_(std::make_unique<Memory>(memory_bytes)) {}

PortIndex SoftwareComponent::add_irq_input(std::string port_name,
                                           IrqHandler handler) {
  const PortIndex port =
      add_input(std::move(port_name), PortSync::kAsynchronous);
  irq_handlers_.emplace_back(port, std::move(handler));
  return port;
}

void SoftwareComponent::on_receive(PortIndex port, const Value& value) {
  for (const auto& [irq_port, handler] : irq_handlers_) {
    if (irq_port == port) {
      handler(value, delivery_time());
      return;
    }
  }
  on_data(port, value);
}

void SoftwareComponent::exec(std::uint64_t alu, std::uint64_t loads,
                             std::uint64_t stores, std::uint64_t branches,
                             std::uint64_t muls, std::uint64_t divs) {
  timer_.block(alu, loads, stores, branches, muls, divs);
  advance(timer_.take());
}

void SoftwareComponent::exec_cycles(std::uint64_t cycles) {
  timer_.cycles(cycles);
  advance(timer_.take());
}

void SoftwareComponent::save_state(serial::OutArchive& ar) const {
  memory_->save(ar);
  ar.put_varint(timer_.total_cycles());
  save_software_state(ar);
}

void SoftwareComponent::restore_state(serial::InArchive& ar) {
  memory_->restore(ar);
  ar.get_varint();  // total cycles: informational, not replayed
  restore_software_state(ar);
}

}  // namespace pia::proc
