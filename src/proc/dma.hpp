// DMA engine (paper §4: "an ASIC which transfers packets to the system
// through DMA").
//
// The engine shares the CPU's Memory: device packets arriving on "dev" are
// burst-written into a ring of buffers and a completion interrupt is raised
// on "irq" carrying (buffer address << 16 | length).  The CPU programs it
// over "ctl" (Word values):
//
//   (base  << 4) | 0b0001   set buffer base address
//   (count << 4) | 0b0010   set buffer count (ring of `count` buffers)
//   (size  << 4) | 0b0011   set buffer size in bytes
//                 0b0100    enable
//                 0b0000    disable
//
// Sharing memory directly (rather than sending it through events) is the
// point: DMA bypasses the processor, and the completion interrupt is the
// only synchronization — exactly the interrupt-consistency situation of
// paper §2.1.1.
#pragma once

#include <cstdint>

#include "core/component.hpp"
#include "proc/memory.hpp"
#include "proc/timing.hpp"

namespace pia::proc {

class DmaEngine final : public Component {
 public:
  /// `memory` must outlive the engine (typically the CPU's memory).
  DmaEngine(std::string name, Memory& memory,
            std::uint64_t bytes_per_cycle = 4,
            ProcessorProfile bus_profile = ProcessorProfile{});

  [[nodiscard]] static Value ctl_base(std::uint32_t base) {
    return Value{(static_cast<std::uint64_t>(base) << 4) | 0b0001};
  }
  [[nodiscard]] static Value ctl_count(std::uint32_t count) {
    return Value{(static_cast<std::uint64_t>(count) << 4) | 0b0010};
  }
  [[nodiscard]] static Value ctl_size(std::uint32_t size) {
    return Value{(static_cast<std::uint64_t>(size) << 4) | 0b0011};
  }
  [[nodiscard]] static Value ctl_enable() { return Value{std::uint64_t{0b0100}}; }
  [[nodiscard]] static Value ctl_disable() { return Value{std::uint64_t{0}}; }

  struct Completion {
    std::uint32_t address;
    std::uint32_t length;
  };
  [[nodiscard]] static Completion decode_completion(const Value& irq_value);

  void on_receive(PortIndex port, const Value& value) override;

  void save_state(serial::OutArchive& ar) const override;
  void restore_state(serial::InArchive& ar) override;

  [[nodiscard]] std::uint64_t transfers_completed() const {
    return transfers_;
  }
  [[nodiscard]] std::uint64_t bytes_transferred() const { return bytes_; }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }

 private:
  Memory& memory_;
  std::uint64_t bytes_per_cycle_;
  ProcessorProfile bus_profile_;

  PortIndex dev_;
  PortIndex ctl_;
  PortIndex irq_;

  // Programmed state.
  std::uint32_t base_ = 0;
  std::uint32_t buffer_count_ = 1;
  std::uint32_t buffer_size_ = 2048;
  bool enabled_ = false;
  std::uint32_t next_buffer_ = 0;

  std::uint64_t transfers_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace pia::proc
