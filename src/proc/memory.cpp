#include "proc/memory.hpp"

#include "base/error.hpp"

namespace pia::proc {

Memory::Memory(std::size_t size_bytes) : data_(size_bytes, 0) {
  PIA_REQUIRE(size_bytes > 0, "zero-size memory");
}

void Memory::check(std::uint32_t addr) const {
  PIA_REQUIRE(addr < data_.size(), "memory access out of range: addr " +
                                       std::to_string(addr) + " size " +
                                       std::to_string(data_.size()));
}

void Memory::mark_synchronous(std::uint32_t addr) {
  check(addr);
  synchronous_.insert(addr);
}

void Memory::mark_synchronous_range(std::uint32_t begin, std::uint32_t end) {
  for (std::uint32_t a = begin; a < end; ++a) mark_synchronous(a);
}

bool Memory::is_synchronous(std::uint32_t addr) const {
  return synchronous_.contains(addr);
}

std::uint8_t Memory::read(std::uint32_t addr, VirtualTime at) {
  check(addr);
  auto [it, fresh] = last_read_.emplace(addr, at);
  if (!fresh) it->second = max(it->second, at);
  return data_[addr];
}

void Memory::write(std::uint32_t addr, std::uint8_t value, VirtualTime) {
  check(addr);
  data_[addr] = value;
}

std::uint32_t Memory::read_u32(std::uint32_t addr, VirtualTime at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i)
    v |= static_cast<std::uint32_t>(read(addr + i, at)) << (8 * i);
  return v;
}

void Memory::write_u32(std::uint32_t addr, std::uint32_t value,
                       VirtualTime at) {
  for (int i = 0; i < 4; ++i)
    write(addr + i, static_cast<std::uint8_t>(value >> (8 * i)), at);
}

void Memory::dma_write(std::uint32_t addr, BytesView bytes, VirtualTime) {
  PIA_REQUIRE(addr + bytes.size() <= data_.size(), "DMA burst out of range");
  for (std::size_t i = 0; i < bytes.size(); ++i)
    data_[addr + i] = static_cast<std::uint8_t>(bytes[i]);
}

Bytes Memory::dma_read(std::uint32_t addr, std::size_t len) const {
  PIA_REQUIRE(addr + len <= data_.size(), "DMA read out of range");
  Bytes out(len);
  for (std::size_t i = 0; i < len; ++i)
    out[i] = static_cast<std::byte>(data_[addr + i]);
  return out;
}

void Memory::interrupt_write(std::uint32_t addr, std::uint8_t value,
                             VirtualTime handler_time) {
  check(addr);
  const auto it = last_read_.find(addr);
  if (!is_synchronous(addr) && it != last_read_.end() &&
      it->second > handler_time) {
    // The mainline already read this location at a time after the
    // handler's logical instant: it computed with a stale value.
    ++conflicts_;
    if (on_conflict_) {
      on_conflict_(addr, it->second, handler_time);
      return;  // the handler rewinds; this write replays conservatively
    }
    raise(ErrorKind::kConsistency,
          "optimistic-memory violation at addr " + std::to_string(addr) +
              ": read at " + it->second.str() + ", interrupt write at " +
              handler_time.str());
  }
  data_[addr] = value;
}

void Memory::save(serial::OutArchive& ar) const {
  serial::begin_section(ar, "pia.memory", 1);
  ar.put_bytes(BytesView{reinterpret_cast<const std::byte*>(data_.data()),
                         data_.size()});
  ar.put_varint(synchronous_.size());
  for (std::uint32_t a : synchronous_) ar.put_varint(a);
  ar.put_varint(last_read_.size());
  for (const auto& [addr, t] : last_read_) {
    ar.put_varint(addr);
    serial::write(ar, t);
  }
}

void Memory::restore(serial::InArchive& ar) {
  serial::expect_section(ar, "pia.memory");
  const Bytes bytes = ar.get_bytes();
  PIA_REQUIRE(bytes.size() == data_.size(), "memory image size mismatch");
  for (std::size_t i = 0; i < bytes.size(); ++i)
    data_[i] = static_cast<std::uint8_t>(bytes[i]);
  // Synchronous marks survive the restore on purpose: the rewind exists so
  // that re-execution sees the newly marked address and behaves
  // conservatively.
  const std::uint64_t sync_count = ar.get_varint();
  for (std::uint64_t i = 0; i < sync_count; ++i)
    synchronous_.insert(static_cast<std::uint32_t>(ar.get_varint()));
  last_read_.clear();
  const std::uint64_t read_count = ar.get_varint();
  for (std::uint64_t i = 0; i < read_count; ++i) {
    const auto addr = static_cast<std::uint32_t>(ar.get_varint());
    last_read_.emplace(addr, serial::read<VirtualTime>(ar));
  }
}

}  // namespace pia::proc
