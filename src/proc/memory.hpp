// Processor memory with synchronous-address marking (paper §2.1.1).
//
// Interrupt handlers and mainline code share memory.  If we can statically
// determine which addresses interrupt handlers touch, we mark them
// *synchronous*: accessing one forces the component to be time-consistent.
// If not, "the simulator can make the optimistic assumption and treat all
// memory as safe.  When the system detects a violation of this assumption
// it can dynamically mark the relevant addresses as synchronous, then
// rewind using Pia's checkpoint and restore facilities."
//
// Detection: every read records its (virtual) time.  When an interrupt-
// context write lands at a handler time earlier than a later mainline read
// that already happened, the mainline computed with a stale value — a
// conflict.  The memory reports it; the owning component rewinds and the
// re-execution, seeing the address marked synchronous, waits.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/time.hpp"
#include "serial/archive.hpp"

namespace pia::proc {

class Memory {
 public:
  explicit Memory(std::size_t size_bytes);

  [[nodiscard]] std::size_t size() const { return data_.size(); }

  /// Conflict callback: (address, stale read time, interrupt write time).
  using ConflictFn =
      std::function<void(std::uint32_t addr, VirtualTime read_at,
                         VirtualTime write_at)>;
  void set_conflict_handler(ConflictFn fn) { on_conflict_ = std::move(fn); }

  // --- static marking (when handler footprints are known) -------------------

  void mark_synchronous(std::uint32_t addr);
  void mark_synchronous_range(std::uint32_t begin, std::uint32_t end);
  [[nodiscard]] bool is_synchronous(std::uint32_t addr) const;
  [[nodiscard]] std::size_t synchronous_count() const {
    return synchronous_.size();
  }

  // --- mainline access --------------------------------------------------------

  std::uint8_t read(std::uint32_t addr, VirtualTime at);
  void write(std::uint32_t addr, std::uint8_t value, VirtualTime at);
  std::uint32_t read_u32(std::uint32_t addr, VirtualTime at);
  void write_u32(std::uint32_t addr, std::uint32_t value, VirtualTime at);

  /// Bulk write without conflict tracking (DMA bursts land atomically at
  /// `at`; the completion interrupt is what synchronizes the CPU).
  void dma_write(std::uint32_t addr, BytesView data, VirtualTime at);
  [[nodiscard]] Bytes dma_read(std::uint32_t addr, std::size_t len) const;

  // --- interrupt-context access -------------------------------------------------

  /// A write performed by an interrupt handler that logically ran at
  /// `handler_time` (possibly before the mainline's current local time).
  /// Detects the optimistic-assumption violation described above.
  void interrupt_write(std::uint32_t addr, std::uint8_t value,
                       VirtualTime handler_time);

  // --- checkpointing ---------------------------------------------------------------

  void save(serial::OutArchive& ar) const;
  void restore(serial::InArchive& ar);

  [[nodiscard]] std::uint64_t conflicts_detected() const {
    return conflicts_;
  }

 private:
  void check(std::uint32_t addr) const;

  std::vector<std::uint8_t> data_;
  std::unordered_set<std::uint32_t> synchronous_;
  std::unordered_map<std::uint32_t, VirtualTime> last_read_;
  ConflictFn on_conflict_;
  std::uint64_t conflicts_ = 0;
};

}  // namespace pia::proc
