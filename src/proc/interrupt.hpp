// Interrupt controller: prioritized, maskable interrupt fan-in.
//
// Devices raise lines on the controller's irq inputs; the controller
// forwards the highest-priority enabled request to the CPU as a Packet
// [line varint][payload varint] and latches masked ones until they are
// unmasked.  Line 0 has the highest priority.
//
// Control port ("ctl", Word values):
//   (line << 2) | 0b01   enable line
//   (line << 2) | 0b00   disable (mask) line
//   (line << 2) | 0b10   acknowledge line (clears in-service state)
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/component.hpp"

namespace pia::proc {

class InterruptController final : public Component {
 public:
  InterruptController(std::string name, std::uint32_t lines,
                      VirtualTime dispatch_latency = ticks(100));

  [[nodiscard]] static Value encode_irq(std::uint32_t line,
                                        std::uint64_t payload);
  struct Decoded {
    std::uint32_t line;
    std::uint64_t payload;
  };
  [[nodiscard]] static Decoded decode_irq(const Value& value);

  [[nodiscard]] static Value ctl_enable(std::uint32_t line) {
    return Value{(static_cast<std::uint64_t>(line) << 2) | 0b01};
  }
  [[nodiscard]] static Value ctl_disable(std::uint32_t line) {
    return Value{static_cast<std::uint64_t>(line) << 2};
  }
  [[nodiscard]] static Value ctl_ack(std::uint32_t line) {
    return Value{(static_cast<std::uint64_t>(line) << 2) | 0b10};
  }

  void on_receive(PortIndex port, const Value& value) override;

  void save_state(serial::OutArchive& ar) const override;
  void restore_state(serial::InArchive& ar) override;

  [[nodiscard]] bool enabled(std::uint32_t line) const;
  [[nodiscard]] bool pending(std::uint32_t line) const;
  [[nodiscard]] std::uint64_t delivered() const { return delivered_; }

 private:
  void deliver_pending();

  struct Line {
    bool enabled = false;
    bool in_service = false;
    std::vector<std::uint64_t> latched;  // payloads waiting while masked
  };

  std::vector<Line> lines_;
  std::vector<PortIndex> irq_ports_;
  PortIndex ctl_;
  PortIndex cpu_;
  VirtualTime dispatch_latency_;
  std::uint64_t delivered_ = 0;
};

}  // namespace pia::proc
