// SoftwareComponent: an embedded processor running actual software
// (paper §2.1).
//
// The behaviour IS the program — C++ code in the subclass's handlers, with
// basic-block timing estimates embedded at the points a compiler-assisted
// estimator would place them.  The component owns its processor profile,
// basic-block timer and memory; interrupt inputs are asynchronous ports
// whose handlers run at the interrupt's logical instant (delivery_time()),
// with the optimistic shared-memory discipline of proc/memory.hpp.
#pragma once

#include <functional>
#include <memory>

#include "core/component.hpp"
#include "proc/memory.hpp"
#include "proc/timing.hpp"

namespace pia::proc {

class SoftwareComponent : public Component {
 public:
  SoftwareComponent(std::string name, ProcessorProfile profile,
                    std::size_t memory_bytes = 64 * 1024);

  [[nodiscard]] BasicBlockTimer& timer() { return timer_; }
  [[nodiscard]] Memory& memory() { return *memory_; }
  [[nodiscard]] const ProcessorProfile& profile() const {
    return timer_.profile();
  }

  // --- interrupt plumbing ----------------------------------------------------

  /// An interrupt handler: value + the interrupt's logical time.
  using IrqHandler = std::function<void(const Value&, VirtualTime at)>;

  /// Declares an interrupt input; arriving values invoke `handler` instead
  /// of on_receive.
  PortIndex add_irq_input(std::string port_name, IrqHandler handler);

  /// Base dispatch: routes interrupt ports to their handlers, everything
  /// else to on_data.  Subclasses implement on_data (and may still override
  /// on_receive entirely if they want raw behaviour).
  void on_receive(PortIndex port, const Value& value) override;
  virtual void on_data(PortIndex port, const Value& value) = 0;

  // --- checkpointing -----------------------------------------------------------

  void save_state(serial::OutArchive& ar) const final;
  void restore_state(serial::InArchive& ar) final;
  /// Subclass state hooks (memory + timer are handled by the base).
  virtual void save_software_state(serial::OutArchive& ar) const {
    (void)ar;
  }
  virtual void restore_software_state(serial::InArchive& ar) { (void)ar; }

 protected:
  // --- basic-block timing estimates (embedded in the "source code") ----------

  /// Commit a block given an instruction mix.
  void exec(std::uint64_t alu, std::uint64_t loads, std::uint64_t stores,
            std::uint64_t branches = 0, std::uint64_t muls = 0,
            std::uint64_t divs = 0);
  /// Commit a block given a raw cycle count.
  void exec_cycles(std::uint64_t cycles);

 private:
  BasicBlockTimer timer_;
  std::unique_ptr<Memory> memory_;
  std::vector<std::pair<PortIndex, IrqHandler>> irq_handlers_;
};

}  // namespace pia::proc
