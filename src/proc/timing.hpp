// Basic-block timing estimation (paper §2.1).
//
// "Currently in Pia, processors running software are represented by a
// component which has as its behavior the actual software ... Specific
// processors are characterized by their timing characteristics (in the form
// of a basic block timing estimator) ...  the timing estimates are embedded
// in the source code, and when the simulator encounters one of these, it
// updates a version of virtual time."
//
// Here the "actual software" is C++ code running inside a
// SoftwareComponent; the embedded estimates are cycles() calls converted to
// virtual time through a ProcessorProfile.
#pragma once

#include <cstdint>
#include <string>

#include "base/time.hpp"

namespace pia::proc {

/// Instruction classes a basic-block estimator distinguishes.
enum class OpClass : std::uint8_t {
  kAlu,      // integer arithmetic / logic
  kLoad,     // memory read
  kStore,    // memory write
  kBranch,   // control transfer
  kMul,      // multiply
  kDiv,      // divide
};

struct ProcessorProfile {
  std::string name = "generic";
  std::uint64_t clock_hz = 100'000'000;  // 100 MHz default
  // Cycles per instruction, per class.
  std::uint32_t alu_cycles = 1;
  std::uint32_t load_cycles = 2;
  std::uint32_t store_cycles = 2;
  std::uint32_t branch_cycles = 2;
  std::uint32_t mul_cycles = 4;
  std::uint32_t div_cycles = 20;

  [[nodiscard]] std::uint32_t cycles_for(OpClass op) const;

  /// Converts a cycle count to virtual time (ticks are nanoseconds).
  [[nodiscard]] VirtualTime time_for_cycles(std::uint64_t cycles) const;

  /// A late-90s embedded core (the paper's era: i960/StrongARM class).
  static ProcessorProfile embedded_33mhz();
  /// The Pentium Pro 200 the paper's workstations used.
  static ProcessorProfile pentium_pro_200();
};

/// Accumulates basic-block costs and converts them to time on demand.
class BasicBlockTimer {
 public:
  explicit BasicBlockTimer(ProcessorProfile profile)
      : profile_(std::move(profile)) {}

  [[nodiscard]] const ProcessorProfile& profile() const { return profile_; }

  /// Record a block as an instruction-class mix.
  void block(std::uint64_t alu, std::uint64_t loads, std::uint64_t stores,
             std::uint64_t branches = 0, std::uint64_t muls = 0,
             std::uint64_t divs = 0);
  /// Record a block by raw cycle count.
  void cycles(std::uint64_t n) { pending_cycles_ += n; }

  /// Drains the accumulated cost as virtual time.
  [[nodiscard]] VirtualTime take();

  [[nodiscard]] std::uint64_t total_cycles() const { return total_cycles_; }

 private:
  ProcessorProfile profile_;
  std::uint64_t pending_cycles_ = 0;
  std::uint64_t total_cycles_ = 0;
};

}  // namespace pia::proc
