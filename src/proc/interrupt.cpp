#include "proc/interrupt.hpp"

#include "base/error.hpp"
#include "serial/archive.hpp"

namespace pia::proc {

InterruptController::InterruptController(std::string name,
                                         std::uint32_t line_count,
                                         VirtualTime dispatch_latency)
    : Component(std::move(name)),
      lines_(line_count),
      dispatch_latency_(dispatch_latency) {
  PIA_REQUIRE(line_count > 0, "interrupt controller with no lines");
  irq_ports_.reserve(line_count);
  for (std::uint32_t i = 0; i < line_count; ++i) {
    irq_ports_.push_back(
        add_input("irq" + std::to_string(i), PortSync::kAsynchronous));
  }
  ctl_ = add_input("ctl", PortSync::kAsynchronous);
  cpu_ = add_output("cpu");
}

Value InterruptController::encode_irq(std::uint32_t line,
                                      std::uint64_t payload) {
  serial::OutArchive ar;
  ar.put_varint(line);
  ar.put_varint(payload);
  return Value{std::move(ar).take()};
}

InterruptController::Decoded InterruptController::decode_irq(
    const Value& value) {
  serial::InArchive ar(value.as_packet());
  Decoded d;
  d.line = static_cast<std::uint32_t>(ar.get_varint());
  d.payload = ar.get_varint();
  return d;
}

void InterruptController::on_receive(PortIndex port, const Value& value) {
  if (port == ctl_) {
    const std::uint64_t word = value.as_word();
    const auto line = static_cast<std::uint32_t>(word >> 2);
    PIA_REQUIRE(line < lines_.size(), "ctl write to unknown irq line");
    switch (word & 0b11) {
      case 0b01: lines_[line].enabled = true; break;
      case 0b00: lines_[line].enabled = false; break;
      case 0b10: lines_[line].in_service = false; break;
      default:
        raise(ErrorKind::kInvalidArgument, "bad irq ctl word");
    }
    advance(ticks(10));  // register write settling time
    deliver_pending();
    return;
  }

  for (std::uint32_t i = 0; i < irq_ports_.size(); ++i) {
    if (irq_ports_[i] != port) continue;
    lines_[i].latched.push_back(value.is_void() ? 0 : value.as_word());
    deliver_pending();
    return;
  }
  raise(ErrorKind::kState, "value on unexpected interrupt-controller port");
}

void InterruptController::deliver_pending() {
  // Highest priority (lowest index) enabled line with a latched request and
  // no interrupt already in service on it.
  for (std::uint32_t i = 0; i < lines_.size(); ++i) {
    Line& line = lines_[i];
    if (!line.enabled || line.in_service || line.latched.empty()) continue;
    const std::uint64_t payload = line.latched.front();
    line.latched.erase(line.latched.begin());
    line.in_service = true;
    ++delivered_;
    send(cpu_, encode_irq(i, payload), dispatch_latency_);
  }
}

void InterruptController::save_state(serial::OutArchive& ar) const {
  ar.put_varint(lines_.size());
  for (const Line& line : lines_) {
    ar.put_bool(line.enabled);
    ar.put_bool(line.in_service);
    serial::write(ar, line.latched);
  }
  ar.put_varint(delivered_);
}

void InterruptController::restore_state(serial::InArchive& ar) {
  const std::uint64_t count = ar.get_varint();
  PIA_REQUIRE(count == lines_.size(), "irq line count mismatch in image");
  for (Line& line : lines_) {
    line.enabled = ar.get_bool();
    line.in_service = ar.get_bool();
    line.latched = serial::read_vector<std::uint64_t>(ar);
  }
  delivered_ = ar.get_varint();
}

bool InterruptController::enabled(std::uint32_t line) const {
  return lines_.at(line).enabled;
}

bool InterruptController::pending(std::uint32_t line) const {
  return !lines_.at(line).latched.empty();
}

}  // namespace pia::proc
