#include "wubbleu/handheld.hpp"

#include "base/error.hpp"
#include "serial/archive.hpp"
#include "wubbleu/jpeg.hpp"

namespace pia::wubbleu {

// ---------------------------------------------------------------------------
// StrokeSource
// ---------------------------------------------------------------------------

StrokeSource::StrokeSource(std::string name, std::vector<std::string> urls,
                           VirtualTime stroke_period, std::uint64_t seed)
    : Component(std::move(name)), period_(stroke_period), seed_(seed) {
  for (std::string& url : urls) script_.push_back(url + "\n");
  strokes_ = add_output("strokes");
}

void StrokeSource::on_init() {
  if (!script_.empty()) wake_after(period_);
}

void StrokeSource::on_wake() {
  if (url_index_ >= script_.size()) return;
  const std::string& url = script_[url_index_];
  const char c = url[char_index_];
  // A light jitter: a practiced user on a decent digitizer.  The
  // recognizer's robustness margin is exercised separately in its tests.
  send(strokes_,
       Value{encode_stroke(noisy_stroke_for_char(
           c, seed_ + url_index_ * 1000 + char_index_, /*jitter=*/0.004F))});
  if (++char_index_ >= url.size()) {
    char_index_ = 0;
    ++url_index_;
  }
  if (url_index_ < script_.size()) wake_after(period_);
}

void StrokeSource::on_receive(PortIndex, const Value&) {}

void StrokeSource::save_state(serial::OutArchive& ar) const {
  ar.put_varint(url_index_);
  ar.put_varint(char_index_);
}

void StrokeSource::restore_state(serial::InArchive& ar) {
  url_index_ = ar.get_varint();
  char_index_ = ar.get_varint();
}

// ---------------------------------------------------------------------------
// Recognizer
// ---------------------------------------------------------------------------

Recognizer::Recognizer(std::string name, proc::ProcessorProfile profile)
    : SoftwareComponent(std::move(name), std::move(profile)) {
  strokes_ = add_input("strokes");
  chars_ = add_output("chars");
}

void Recognizer::on_data(PortIndex port, const Value& value) {
  PIA_REQUIRE(port == strokes_, "value on unexpected Recognizer port");
  const Stroke stroke = decode_stroke(value.as_packet());
  const auto result = classifier_.classify(stroke);
  exec_cycles(HandwritingClassifier::classify_cycles(stroke.size()));
  ++classified_;
  send(chars_, Value{static_cast<std::uint64_t>(
                   static_cast<unsigned char>(result.character))});
}

void Recognizer::save_software_state(serial::OutArchive& ar) const {
  ar.put_varint(classified_);
}

void Recognizer::restore_software_state(serial::InArchive& ar) {
  classified_ = ar.get_varint();
}

// ---------------------------------------------------------------------------
// Ui
// ---------------------------------------------------------------------------

Value encode_page_done(const PageDone& done) {
  serial::OutArchive ar;
  ar.put_string(done.url);
  ar.put_varint(done.body_bytes);
  ar.put_varint(done.images);
  return Value{std::move(ar).take()};
}

PageDone decode_page_done(const Value& value) {
  serial::InArchive ar(value.as_packet());
  PageDone done;
  done.url = ar.get_string();
  done.body_bytes = static_cast<std::uint32_t>(ar.get_varint());
  done.images = static_cast<std::uint32_t>(ar.get_varint());
  return done;
}

Ui::Ui(std::string name) : Component(std::move(name)) {
  chars_ = add_input("chars");
  request_ = add_output("request");
  // Completion is a notification: the UI may be ahead in virtual time
  // (already echoing the next URL's strokes) when it arrives.
  done_ = add_input("done", PortSync::kAsynchronous);
}

void Ui::on_receive(PortIndex port, const Value& value) {
  if (port == chars_) {
    const char c = static_cast<char>(value.as_word());
    if (c != '\n') {
      pending_url_.push_back(c);
      return;
    }
    advance(ticks(1000));  // UI latency: echo the URL, start the spinner
    loads_.push_back(PageLoad{.url = pending_url_,
                              .requested_at = local_time(),
                              .completed_at = VirtualTime::infinity()});
    send(request_, Value::token(pending_url_));
    pending_url_.clear();
    return;
  }
  if (port == done_) {
    const PageDone done = decode_page_done(value);
    // Loads complete in request order: match the oldest pending entry.
    for (auto it = loads_.begin(); it != loads_.end(); ++it) {
      if (it->url == done.url && it->completed_at.is_infinite()) {
        it->completed_at = local_time();
        it->body_bytes = done.body_bytes;
        it->images = done.images;
        return;
      }
    }
    raise(ErrorKind::kState, "page-done for a page the UI never requested");
  }
  raise(ErrorKind::kState, "value on unexpected Ui port");
}

std::size_t Ui::completed() const {
  std::size_t n = 0;
  for (const PageLoad& load : loads_)
    if (!load.completed_at.is_infinite()) ++n;
  return n;
}

void Ui::save_state(serial::OutArchive& ar) const {
  ar.put_string(pending_url_);
  ar.put_varint(loads_.size());
  for (const PageLoad& load : loads_) {
    ar.put_string(load.url);
    serial::write(ar, load.requested_at);
    serial::write(ar, load.completed_at);
    ar.put_varint(load.body_bytes);
    ar.put_varint(load.images);
  }
}

void Ui::restore_state(serial::InArchive& ar) {
  pending_url_ = ar.get_string();
  loads_.resize(ar.get_varint());
  for (PageLoad& load : loads_) {
    load.url = ar.get_string();
    load.requested_at = serial::read<VirtualTime>(ar);
    load.completed_at = serial::read<VirtualTime>(ar);
    load.body_bytes = static_cast<std::uint32_t>(ar.get_varint());
    load.images = static_cast<std::uint32_t>(ar.get_varint());
  }
}

// ---------------------------------------------------------------------------
// HandheldCpu
// ---------------------------------------------------------------------------

HandheldCpu::HandheldCpu(std::string name, proc::ProcessorProfile profile,
                         std::size_t memory_bytes)
    : SoftwareComponent(std::move(name), std::move(profile), memory_bytes) {
  request_ = add_input("request");
  tx_ = add_output("tx");
  nic_irq_ = add_irq_input("nic_irq", [this](const Value& irq, VirtualTime at) {
    handle_nic_completion(irq, at);
  });
  done_ = add_output("done");
}

void HandheldCpu::on_data(PortIndex port, const Value& value) {
  PIA_REQUIRE(port == request_, "value on unexpected HandheldCpu port");
  const std::string url{value.as_token()};
  if (inflight_url_.has_value()) {
    queued_urls_.push_back(url);  // the user typed ahead of the network
    return;
  }
  issue_request(url);
}

void HandheldCpu::issue_request(const std::string& url) {
  inflight_url_ = url;
  // Build and send the HTTP request: parsing, socket setup, MAC handoff.
  exec(/*alu=*/400, /*loads=*/120, /*stores=*/80, /*branches=*/60);
  send(tx_, Value{encode_request(HttpRequest{.url = url})});
}

void HandheldCpu::handle_nic_completion(const Value& irq, VirtualTime) {
  // The NIC reassembled a whole response into our memory; read it out.
  const std::uint64_t word = irq.as_word();
  const auto addr = static_cast<std::uint32_t>(word >> 24);
  const auto length = static_cast<std::uint32_t>(word & 0xFFFFFF);

  // Copy-out cost: one load+store per word.
  exec(/*alu=*/length / 8, /*loads=*/length / 4, /*stores=*/length / 4);
  const Bytes raw = memory().dma_read(addr, length);
  const HttpResponse response = decode_response(raw);

  PIA_REQUIRE(inflight_url_.has_value(),
              "NIC completion with no request in flight");

  // Decode every image on the page: this is where the handheld burns its
  // cycles (and where a JPEG chip would earn its keep).
  for (const ImageRef& ref : response.images) {
    const GrayImage image = jpeg_decode(
        BytesView{response.body}.subspan(ref.offset, ref.length));
    exec_cycles(jpeg_decode_cycles(ref.width, ref.height));
    ++images_decoded_;
    if (image.width != ref.width || image.height != ref.height)
      ++image_pixel_errors_;
  }

  ++pages_loaded_;
  const std::string url = *inflight_url_;
  inflight_url_.reset();
  send(done_, encode_page_done(PageDone{
                  .url = url,
                  .body_bytes = static_cast<std::uint32_t>(
                      response.body.size()),
                  .images = static_cast<std::uint32_t>(
                      response.images.size())}));

  if (!queued_urls_.empty()) {
    const std::string next = queued_urls_.front();
    queued_urls_.erase(queued_urls_.begin());
    issue_request(next);
  }
}

void HandheldCpu::save_software_state(serial::OutArchive& ar) const {
  serial::write(ar, std::optional<std::string>(inflight_url_));
  serial::write(ar, queued_urls_);
  ar.put_varint(pages_loaded_);
  ar.put_varint(images_decoded_);
  ar.put_varint(image_pixel_errors_);
}

void HandheldCpu::restore_software_state(serial::InArchive& ar) {
  inflight_url_ = serial::read_optional<std::string>(ar);
  queued_urls_ = serial::read_vector<std::string>(ar);
  pages_loaded_ = ar.get_varint();
  images_decoded_ = ar.get_varint();
  image_pixel_errors_ = ar.get_varint();
}

}  // namespace pia::wubbleu
