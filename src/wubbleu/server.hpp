// The server side of WubbleU: the base station terminating the cellular
// link and the web gateway that connects to the "Internet" (paper §4:
// "a simple cellular connection to a server which connects to the
// Internet").
#pragma once

#include "core/component.hpp"
#include "core/protocols.hpp"
#include "proc/software.hpp"
#include "wubbleu/page.hpp"

namespace pia::wubbleu {

/// Terminates the radio link: MAC frames from the handheld become requests
/// to the gateway; gateway responses are framed back onto the air.
class BaseStation final : public Component {
 public:
  BaseStation(std::string name, VirtualTime airtime_per_byte = ticks(500));

  void on_receive(PortIndex port, const Value& value) override;
  [[nodiscard]] bool at_safe_point() const override;

  void save_state(serial::OutArchive& ar) const override;
  void restore_state(serial::InArchive& ar) override;

  [[nodiscard]] std::uint64_t frames_relayed() const { return frames_; }

 private:
  VirtualTime airtime_per_byte_;
  TransferDecoder radio_decoder_;

  PortIndex radio_rx_;  // from the handheld's chip
  PortIndex radio_tx_;  // back to the chip
  PortIndex gw_tx_;     // to the gateway
  PortIndex gw_rx_;     // from the gateway

  std::uint64_t frames_ = 0;
};

/// The web gateway: a server-class processor looking pages up in its
/// PageStore (our stand-in for the Internet) and streaming them back.
class WebGateway final : public proc::SoftwareComponent {
 public:
  WebGateway(std::string name, PageStore store,
             proc::ProcessorProfile profile =
                 proc::ProcessorProfile::pentium_pro_200());

  void on_data(PortIndex port, const Value& value) override;

  void save_software_state(serial::OutArchive& ar) const override;
  void restore_software_state(serial::InArchive& ar) override;

  [[nodiscard]] std::uint64_t requests_served() const { return served_; }
  [[nodiscard]] const PageStore& store() const { return store_; }

 private:
  PageStore store_;
  std::uint64_t served_ = 0;
  PortIndex rx_;
  PortIndex tx_;
};

}  // namespace pia::wubbleu
