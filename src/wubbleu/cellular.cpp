#include "wubbleu/cellular.hpp"

#include "base/error.hpp"

namespace pia::wubbleu {

CellularAsic::CellularAsic(std::string name, TimingProfile downlink_timing,
                           VirtualTime airtime_per_byte,
                           RunLevel initial_level)
    : Component(std::move(name)),
      encoder_(downlink_timing),
      airtime_per_byte_(airtime_per_byte) {
  host_tx_ = add_input("host_tx");
  radio_tx_ = add_output("radio_tx");
  radio_rx_ = add_input("radio_rx");
  host_data_ = add_output("host_data");
  set_initial_runlevel(initial_level);
}

void CellularAsic::on_receive(PortIndex port, const Value& value) {
  if (port == host_tx_) {
    // Uplink: MAC-frame the request and put it on the air.  Requests are
    // small; they always travel as one framed packet.
    const BytesView payload = value.as_packet();
    advance(VirtualTime{airtime_per_byte_.ticks() *
                        static_cast<VirtualTime::rep>(payload.size())});
    send(radio_tx_, Value{framing::make_packet(0, true, payload)});
    ++frames_up_;
    return;
  }

  if (port == radio_rx_) {
    // Downlink: reassemble the radio frame stream; each completed payload
    // is rendered onto the host net at the current runlevel.
    auto complete = radio_decoder_.feed(value);
    if (!complete) return;
    bytes_down_ += complete->size();
    for (const auto& emission : encoder_.encode(*complete, runlevel())) {
      advance(emission.delay);
      send(host_data_, emission.value);
      ++host_emissions_;
    }
    return;
  }
  raise(ErrorKind::kState, "value on unexpected CellularAsic port");
}

bool CellularAsic::at_safe_point() const {
  return !radio_decoder_.mid_transfer();
}

void CellularAsic::save_state(serial::OutArchive& ar) const {
  radio_decoder_.save(ar);
  ar.put_varint(frames_up_);
  ar.put_varint(bytes_down_);
  ar.put_varint(host_emissions_);
}

void CellularAsic::restore_state(serial::InArchive& ar) {
  radio_decoder_.restore(ar);
  frames_up_ = ar.get_varint();
  bytes_down_ = ar.get_varint();
  host_emissions_ = ar.get_varint();
}

// ---------------------------------------------------------------------------

NicDma::NicDma(std::string name, proc::Memory& memory,
               std::uint32_t buffer_base, std::uint64_t bytes_per_cycle)
    : Component(std::move(name)),
      memory_(memory),
      buffer_base_(buffer_base),
      bytes_per_cycle_(bytes_per_cycle) {
  net_ = add_input("net");
  irq_ = add_output("irq");
}

NicDma::Completion NicDma::decode_completion(const Value& irq) {
  const std::uint64_t word = irq.as_word();
  return Completion{.address = static_cast<std::uint32_t>(word >> 24),
                    .length = static_cast<std::uint32_t>(word & 0xFFFFFF)};
}

void NicDma::on_receive(PortIndex port, const Value& value) {
  PIA_REQUIRE(port == net_, "value on unexpected NicDma port");
  ++net_events_;
  auto complete = decoder_.feed(value);
  if (!complete) return;

  // Burst the reassembled payload into host memory, charge bus occupancy
  // and raise the completion interrupt.
  const std::uint64_t cycles =
      (complete->size() + bytes_per_cycle_ - 1) / bytes_per_cycle_;
  advance(VirtualTime{static_cast<VirtualTime::rep>(cycles) * 10});
  memory_.dma_write(buffer_base_, *complete, local_time());
  ++transfers_;
  send(irq_, Value{(static_cast<std::uint64_t>(buffer_base_) << 24) |
                   static_cast<std::uint64_t>(complete->size())});
}

bool NicDma::at_safe_point() const { return !decoder_.mid_transfer(); }

void NicDma::save_state(serial::OutArchive& ar) const {
  decoder_.save(ar);
  ar.put_varint(transfers_);
  ar.put_varint(net_events_);
}

void NicDma::restore_state(serial::InArchive& ar) {
  decoder_.restore(ar);
  transfers_ = ar.get_varint();
  net_events_ = ar.get_varint();
}

}  // namespace pia::wubbleu
