#include "wubbleu/page.hpp"

#include "base/rng.hpp"
#include "wubbleu/jpeg.hpp"

namespace pia::wubbleu {
namespace {

const char* kLoremWords[] = {
    "embedded", "system",   "design",  "validation", "simulation",
    "hardware", "software", "virtual", "time",       "channel",
    "subsystem", "detail",  "level",   "checkpoint", "restore",
    "pia",      "chinook",  "node",    "socket",     "internet"};

std::string make_html_filler(std::size_t bytes, Rng& rng) {
  std::string out = "<html><head><title>Pia project</title></head><body>\n";
  while (out.size() < bytes) {
    out += "<p>";
    const std::size_t words = 8 + rng.below(12);
    for (std::size_t i = 0; i < words; ++i) {
      out += kLoremWords[rng.below(std::size(kLoremWords))];
      out += ' ';
    }
    out += "</p>\n";
  }
  out.resize(bytes);
  return out;
}

}  // namespace

HttpResponse make_page(const PageSpec& spec) {
  Rng rng(spec.seed);
  HttpResponse page;
  page.status = 200;
  page.url = spec.url;

  // Encode the images first to know how much HTML padding remains.
  std::vector<Bytes> encoded;
  encoded.reserve(spec.image_count);
  std::size_t image_bytes = 0;
  for (std::uint32_t i = 0; i < spec.image_count; ++i) {
    const GrayImage img =
        make_test_image(spec.image_width, spec.image_height,
                        spec.seed * 131 + i);
    encoded.push_back(jpeg_encode(img, JpegQuality{8}));
    image_bytes += encoded.back().size();
  }

  const std::size_t html_bytes =
      spec.target_bytes > image_bytes ? spec.target_bytes - image_bytes : 64;
  const std::string html = make_html_filler(html_bytes, rng);

  page.body.reserve(html.size() + image_bytes);
  page.body = to_bytes(html);
  for (std::uint32_t i = 0; i < spec.image_count; ++i) {
    page.images.push_back(
        ImageRef{.offset = static_cast<std::uint32_t>(page.body.size()),
                 .length = static_cast<std::uint32_t>(encoded[i].size()),
                 .width = spec.image_width,
                 .height = spec.image_height});
    page.body.insert(page.body.end(), encoded[i].begin(), encoded[i].end());
  }
  return page;
}

void PageStore::put(HttpResponse page) {
  pages_[page.url] = std::move(page);
}

const HttpResponse& PageStore::get(const std::string& url) const {
  const auto it = pages_.find(url);
  return it == pages_.end() ? not_found_ : it->second;
}

bool PageStore::contains(const std::string& url) const {
  return pages_.contains(url);
}

}  // namespace pia::wubbleu
