// Minimal HTTP-style request/response framing for the WubbleU browser.
//
// The handheld issues GET requests and the web gateway answers with a
// header (status, content length, image manifest) followed by the body.
// The format is binary (archive-encoded) rather than RFC text — the paper's
// point is the traffic shape, not wire nostalgia — but the roles match:
// request, status line, headers, entity body.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/bytes.hpp"

namespace pia::wubbleu {

struct HttpRequest {
  std::string url;
};

/// Byte range of one embedded image inside a response body.
struct ImageRef {
  std::uint32_t offset = 0;
  std::uint32_t length = 0;
  std::uint32_t width = 0;
  std::uint32_t height = 0;
};

struct HttpResponse {
  std::uint16_t status = 200;
  std::string url;
  std::vector<ImageRef> images;
  Bytes body;  // HTML text + encoded images at the listed offsets
};

[[nodiscard]] Bytes encode_request(const HttpRequest& request);
[[nodiscard]] HttpRequest decode_request(BytesView data);

[[nodiscard]] Bytes encode_response(const HttpResponse& response);
[[nodiscard]] HttpResponse decode_response(BytesView data);

}  // namespace pia::wubbleu
