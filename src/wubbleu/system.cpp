#include "wubbleu/system.hpp"

#include "wubbleu/jpeg.hpp"

namespace pia::wubbleu {
namespace {

/// Creates the modules of the handheld unit in `sched` and wires the ones
/// that stay internal to it.  The cpu->chip and nic<-chip nets are created
/// by the caller (they differ between local and distributed builds).
WubbleUHandles build_handheld(Scheduler& sched, const WubbleUConfig& config) {
  WubbleUHandles handles;
  handles.stylus = &sched.emplace<StrokeSource>(
      "stylus", config.session_urls(), config.stroke_period);
  handles.recognizer =
      &sched.emplace<Recognizer>("recognizer", config.handheld_cpu);
  handles.ui = &sched.emplace<Ui>("ui");
  handles.cpu =
      &sched.emplace<HandheldCpu>("cpu", config.handheld_cpu);
  handles.nic = &sched.emplace<NicDma>("nic", handles.cpu->memory(),
                                       HandheldCpu::kDmaBufferBase);

  sched.connect(handles.stylus->id(), "strokes", handles.recognizer->id(),
                "strokes");
  sched.connect(handles.recognizer->id(), "chars", handles.ui->id(), "chars");
  sched.connect(handles.ui->id(), "request", handles.cpu->id(), "request");
  sched.connect(handles.cpu->id(), "done", handles.ui->id(), "done");
  sched.connect(handles.nic->id(), "irq", handles.cpu->id(), "nic_irq");
  return handles;
}

/// Creates the chip + server side in `sched` and wires its internals.
void build_chip_side(Scheduler& sched, const WubbleUConfig& config,
                     WubbleUHandles& handles) {
  handles.asic = &sched.emplace<CellularAsic>(
      "asic", config.downlink_timing, ticks(500), config.downlink_level);
  handles.base_station = &sched.emplace<BaseStation>("basestation");
  PageStore store;
  store.put(make_page(config.page));
  handles.gateway = &sched.emplace<WebGateway>("gateway", std::move(store),
                                               config.server_cpu);

  sched.connect(handles.asic->id(), "radio_tx", handles.base_station->id(),
                "radio_rx");
  sched.connect(handles.base_station->id(), "radio_tx", handles.asic->id(),
                "radio_rx");
  sched.connect(handles.base_station->id(), "gw_tx", handles.gateway->id(),
                "rx");
  sched.connect(handles.gateway->id(), "tx", handles.base_station->id(),
                "gw_rx");
}

}  // namespace

WubbleUHandles build_local(Scheduler& sched, const WubbleUConfig& config) {
  WubbleUHandles handles = build_handheld(sched, config);
  build_chip_side(sched, config, handles);

  // CPU <-> chip stay on local nets.
  sched.connect(handles.cpu->id(), "tx", handles.asic->id(), "host_tx");
  sched.connect(handles.asic->id(), "host_data", handles.nic->id(), "net");
  return handles;
}

WubbleUHandles build_distributed(dist::Subsystem& handheld,
                                 dist::Subsystem& chip_side,
                                 const dist::ChannelPair& channels,
                                 const WubbleUConfig& config) {
  WubbleUHandles handles = build_handheld(handheld.scheduler(), config);
  build_chip_side(chip_side.scheduler(), config, handles);

  // Split net 0: cpu.tx --- [channel] --- asic.host_tx
  const NetId tx_local = handheld.scheduler().make_net("cpu_tx");
  handheld.scheduler().attach(tx_local, handles.cpu->id(), "tx");
  const NetId tx_remote = chip_side.scheduler().make_net("cpu_tx");
  chip_side.scheduler().attach(tx_remote, handles.asic->id(), "host_tx");
  dist::split_net(handheld, channels.a, tx_local, chip_side, channels.b,
                  tx_remote);

  // Split net 1: asic.host_data --- [channel] --- nic.net.  This is the
  // high-volume direction: its traffic is word- or packet-grained
  // depending on the chip's runlevel.
  const NetId data_local = handheld.scheduler().make_net("host_data");
  handheld.scheduler().attach(data_local, handles.nic->id(), "net");
  const NetId data_remote = chip_side.scheduler().make_net("host_data");
  chip_side.scheduler().attach(data_remote, handles.asic->id(), "host_data");
  dist::split_net(handheld, channels.a, data_local, chip_side, channels.b,
                  data_remote);

  return handles;
}

NativeLoadResult native_page_load(const PageSpec& spec) {
  return native_page_load(make_page(spec));
}

NativeLoadResult native_page_load(const HttpResponse& page) {
  // Round-trip the wire encoding (a real browser parses what it fetched).
  const Bytes wire = encode_response(page);
  const HttpResponse fetched = decode_response(wire);
  NativeLoadResult result;
  result.body_bytes = fetched.body.size();
  for (const ImageRef& ref : fetched.images) {
    const GrayImage image = jpeg_decode(
        BytesView{fetched.body}.subspan(ref.offset, ref.length));
    if (image.width == ref.width) ++result.images_decoded;
  }
  return result;
}

}  // namespace pia::wubbleu
