#include "wubbleu/server.hpp"

#include "base/error.hpp"

namespace pia::wubbleu {

BaseStation::BaseStation(std::string name, VirtualTime airtime_per_byte)
    : Component(std::move(name)), airtime_per_byte_(airtime_per_byte) {
  radio_rx_ = add_input("radio_rx");
  radio_tx_ = add_output("radio_tx");
  gw_tx_ = add_output("gw_tx");
  gw_rx_ = add_input("gw_rx");
}

void BaseStation::on_receive(PortIndex port, const Value& value) {
  if (port == radio_rx_) {
    // Uplink frame from the handheld: reassemble and hand to the gateway.
    auto complete = radio_decoder_.feed(value);
    if (!complete) return;
    ++frames_;
    advance(ticks(2000));  // demodulation + backhaul handoff
    send(gw_tx_, Value{*std::move(complete)});
    return;
  }
  if (port == gw_rx_) {
    // Response from the gateway: frame it and model the downlink airtime.
    const BytesView payload = value.as_packet();
    advance(VirtualTime{airtime_per_byte_.ticks() *
                        static_cast<VirtualTime::rep>(payload.size())});
    ++frames_;
    send(radio_tx_, Value{framing::make_packet(0, true, payload)});
    return;
  }
  raise(ErrorKind::kState, "value on unexpected BaseStation port");
}

bool BaseStation::at_safe_point() const {
  return !radio_decoder_.mid_transfer();
}

void BaseStation::save_state(serial::OutArchive& ar) const {
  radio_decoder_.save(ar);
  ar.put_varint(frames_);
}

void BaseStation::restore_state(serial::InArchive& ar) {
  radio_decoder_.restore(ar);
  frames_ = ar.get_varint();
}

// ---------------------------------------------------------------------------

WebGateway::WebGateway(std::string name, PageStore store,
                       proc::ProcessorProfile profile)
    : SoftwareComponent(std::move(name), std::move(profile)),
      store_(std::move(store)) {
  rx_ = add_input("rx");
  tx_ = add_output("tx");
}

void WebGateway::on_data(PortIndex port, const Value& value) {
  PIA_REQUIRE(port == rx_, "value on unexpected WebGateway port");
  const HttpRequest request = decode_request(value.as_packet());
  const HttpResponse& page = store_.get(request.url);
  // Request parsing + page lookup + response assembly on the server CPU.
  exec(/*alu=*/2000, /*loads=*/800, /*stores=*/400, /*branches=*/300);
  exec_cycles(page.body.size() / 16);  // streaming the body out of cache
  ++served_;
  send(tx_, Value{encode_response(page)});
}

void WebGateway::save_software_state(serial::OutArchive& ar) const {
  ar.put_varint(served_);
}

void WebGateway::restore_software_state(serial::InArchive& ar) {
  served_ = ar.get_varint();
}

}  // namespace pia::wubbleu
