#include "wubbleu/jpeg.hpp"

#include <array>
#include <cmath>
#include <numbers>

#include "base/error.hpp"
#include "base/rng.hpp"
#include "serial/archive.hpp"

namespace pia::wubbleu {
namespace {

constexpr std::uint32_t kBlock = 8;

/// Base luminance quantization table (ITU T.81 Annex K flavour).
constexpr std::array<int, 64> kBaseQuant = {
    16, 11, 10, 16, 24,  40,  51,  61,   //
    12, 12, 14, 19, 26,  58,  60,  55,   //
    14, 13, 16, 24, 40,  57,  69,  56,   //
    14, 17, 22, 29, 51,  87,  80,  62,   //
    18, 22, 37, 56, 68,  109, 103, 77,   //
    24, 35, 55, 64, 81,  104, 113, 92,   //
    49, 64, 78, 87, 103, 121, 120, 101,  //
    72, 92, 95, 98, 112, 100, 103, 99};

/// Zig-zag scan order for an 8x8 block.
constexpr std::array<int, 64> kZigZag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63};

struct DctTables {
  // cosine basis: c[u][x] = cos((2x+1) u pi / 16) * scale(u)
  double c[kBlock][kBlock];
  DctTables() {
    for (std::uint32_t u = 0; u < kBlock; ++u) {
      const double scale = u == 0 ? std::sqrt(1.0 / kBlock)
                                  : std::sqrt(2.0 / kBlock);
      for (std::uint32_t x = 0; x < kBlock; ++x)
        c[u][x] = scale * std::cos((2.0 * x + 1.0) * u *
                                   std::numbers::pi / (2.0 * kBlock));
    }
  }
};

const DctTables& tables() {
  static const DctTables t;
  return t;
}

void forward_dct(const double in[kBlock][kBlock],
                 double out[kBlock][kBlock]) {
  const DctTables& t = tables();
  double tmp[kBlock][kBlock];
  for (std::uint32_t u = 0; u < kBlock; ++u)      // rows
    for (std::uint32_t x = 0; x < kBlock; ++x) {
      double s = 0;
      for (std::uint32_t k = 0; k < kBlock; ++k) s += in[x][k] * t.c[u][k];
      tmp[x][u] = s;
    }
  for (std::uint32_t v = 0; v < kBlock; ++v)      // columns
    for (std::uint32_t u = 0; u < kBlock; ++u) {
      double s = 0;
      for (std::uint32_t k = 0; k < kBlock; ++k) s += tmp[k][u] * t.c[v][k];
      out[v][u] = s;
    }
}

void inverse_dct(const double in[kBlock][kBlock],
                 double out[kBlock][kBlock]) {
  const DctTables& t = tables();
  double tmp[kBlock][kBlock];
  for (std::uint32_t x = 0; x < kBlock; ++x)
    for (std::uint32_t v = 0; v < kBlock; ++v) {
      double s = 0;
      for (std::uint32_t u = 0; u < kBlock; ++u) s += in[v][u] * t.c[u][x];
      tmp[v][x] = s;
    }
  for (std::uint32_t y = 0; y < kBlock; ++y)
    for (std::uint32_t x = 0; x < kBlock; ++x) {
      double s = 0;
      for (std::uint32_t v = 0; v < kBlock; ++v) s += tmp[v][x] * t.c[v][y];
      out[y][x] = s;
    }
}

int quant_divisor(std::size_t index, std::uint32_t quality) {
  // quality 32 => divisor ~1 (near lossless); quality 1 => 32x coarser.
  const int q = kBaseQuant[index] * 32 / static_cast<int>(quality);
  return q < 1 ? 1 : q;
}

}  // namespace

Bytes jpeg_encode(const GrayImage& image, JpegQuality quality) {
  PIA_REQUIRE(image.width > 0 && image.height > 0, "empty image");
  PIA_REQUIRE(quality.level >= 1 && quality.level <= 32,
              "jpeg quality out of range");
  PIA_REQUIRE(image.pixels.size() ==
                  static_cast<std::size_t>(image.width) * image.height,
              "pixel buffer size mismatch");

  serial::OutArchive ar;
  serial::begin_section(ar, "pia.jpeg", 1);
  ar.put_varint(image.width);
  ar.put_varint(image.height);
  ar.put_varint(quality.level);

  const std::uint32_t blocks_x = (image.width + kBlock - 1) / kBlock;
  const std::uint32_t blocks_y = (image.height + kBlock - 1) / kBlock;
  int previous_dc = 0;

  for (std::uint32_t by = 0; by < blocks_y; ++by) {
    for (std::uint32_t bx = 0; bx < blocks_x; ++bx) {
      double block[kBlock][kBlock];
      for (std::uint32_t y = 0; y < kBlock; ++y)
        for (std::uint32_t x = 0; x < kBlock; ++x) {
          const std::uint32_t px = std::min(bx * kBlock + x, image.width - 1);
          const std::uint32_t py = std::min(by * kBlock + y, image.height - 1);
          block[y][x] = static_cast<double>(image.at(px, py)) - 128.0;
        }
      double coeffs[kBlock][kBlock];
      forward_dct(block, coeffs);

      std::array<int, 64> quantized{};
      for (std::size_t i = 0; i < 64; ++i) {
        const int row = kZigZag[i] / 8;
        const int col = kZigZag[i] % 8;
        quantized[i] = static_cast<int>(
            std::lround(coeffs[row][col] /
                        quant_divisor(static_cast<std::size_t>(kZigZag[i]),
                                      quality.level)));
      }

      // DC delta, then AC run-length: (zero-run, value) pairs, 0xFF = EOB.
      ar.put_i64(quantized[0] - previous_dc);
      previous_dc = quantized[0];
      std::uint32_t run = 0;
      for (std::size_t i = 1; i < 64; ++i) {
        if (quantized[i] == 0) {
          ++run;
          continue;
        }
        ar.put_varint(run);
        ar.put_i64(quantized[i]);
        run = 0;
      }
      ar.put_varint(0xFF);  // end of block
    }
  }
  return std::move(ar).take();
}

GrayImage jpeg_decode(BytesView data) {
  serial::InArchive ar(data);
  serial::expect_section(ar, "pia.jpeg");
  GrayImage image;
  image.width = static_cast<std::uint32_t>(ar.get_varint());
  image.height = static_cast<std::uint32_t>(ar.get_varint());
  const auto quality = static_cast<std::uint32_t>(ar.get_varint());
  PIA_REQUIRE(image.width > 0 && image.height > 0, "corrupt jpeg header");
  image.pixels.assign(
      static_cast<std::size_t>(image.width) * image.height, 0);

  const std::uint32_t blocks_x = (image.width + kBlock - 1) / kBlock;
  const std::uint32_t blocks_y = (image.height + kBlock - 1) / kBlock;
  int previous_dc = 0;

  for (std::uint32_t by = 0; by < blocks_y; ++by) {
    for (std::uint32_t bx = 0; bx < blocks_x; ++bx) {
      std::array<int, 64> quantized{};
      previous_dc += static_cast<int>(ar.get_i64());
      quantized[0] = previous_dc;
      std::size_t i = 1;
      for (;;) {
        const std::uint64_t run = ar.get_varint();
        if (run == 0xFF) break;
        i += run;
        if (i >= 64) raise(ErrorKind::kSerialization, "jpeg AC overflow");
        quantized[i++] = static_cast<int>(ar.get_i64());
      }

      double coeffs[kBlock][kBlock] = {};
      for (std::size_t k = 0; k < 64; ++k) {
        const int row = kZigZag[k] / 8;
        const int col = kZigZag[k] % 8;
        coeffs[row][col] =
            static_cast<double>(quantized[k]) *
            quant_divisor(static_cast<std::size_t>(kZigZag[k]), quality);
      }
      double block[kBlock][kBlock];
      inverse_dct(coeffs, block);

      for (std::uint32_t y = 0; y < kBlock; ++y)
        for (std::uint32_t x = 0; x < kBlock; ++x) {
          const std::uint32_t px = bx * kBlock + x;
          const std::uint32_t py = by * kBlock + y;
          if (px >= image.width || py >= image.height) continue;
          const double v = block[y][x] + 128.0;
          image.pixels[py * image.width + px] = static_cast<std::uint8_t>(
              v < 0 ? 0 : (v > 255 ? 255 : std::lround(v)));
        }
    }
  }
  return image;
}

std::uint64_t jpeg_decode_cycles(std::uint32_t width, std::uint32_t height) {
  const std::uint64_t blocks =
      ((width + kBlock - 1) / kBlock) *
      static_cast<std::uint64_t>((height + kBlock - 1) / kBlock);
  // ~2 * 8 * 64 MACs per separable IDCT plus dequant/clamp overhead.
  return blocks * 1400;
}

GrayImage make_test_image(std::uint32_t width, std::uint32_t height,
                          std::uint64_t seed) {
  GrayImage image{.width = width, .height = height, .pixels = {}};
  image.pixels.resize(static_cast<std::size_t>(width) * height);
  Rng rng(seed);
  const double phase_x = rng.uniform() * 6.28;
  const double phase_y = rng.uniform() * 6.28;
  const double freq = 0.02 + rng.uniform() * 0.1;
  for (std::uint32_t y = 0; y < height; ++y) {
    for (std::uint32_t x = 0; x < width; ++x) {
      const double smooth =
          96.0 + 60.0 * std::sin(freq * x + phase_x) *
                     std::cos(freq * y + phase_y) +
          0.2 * x + 0.1 * y;
      const double noise = static_cast<double>(rng.below(24));
      const double v = smooth + noise;
      image.pixels[y * width + x] = static_cast<std::uint8_t>(
          v < 0 ? 0 : (v > 255 ? 255 : v));
    }
  }
  return image;
}

}  // namespace pia::wubbleu
