// Scale-out workload harness: N handhelds against a sharded gateway farm.
//
// The paper's case study is one handheld fetching one page; the product it
// models shipped to millions.  This generator stamps out N handheld
// subsystems driving Zipf-distributed page fetches over the HTTP stack
// against gateway state hash-partitioned across M shard nodes
// (dist/sharding.hpp owns the partition function and the per-client seed
// streams).
//
// Topology.  The paper's interconnection rule (§2.2.3, enforced by
// dist::Topology) requires the subsystem graph to be a forest — only
// bidirectional-edge cycles — so a flat clients x shards mesh is illegal.
// The farm is therefore a tree rooted at a gateway *frontend*: the fan-in
// point that routes requests to the shard owning each URL and replies back
// by client tag.  Two client-facing layouts, selected by
// ScaleoutSpec::aggregated:
//
//   * per-client (baseline): every client holds its own channel straight to
//     the frontend.  Gateway-farm channel count is N and conservative
//     grant/request traffic at the frontend scales O(N) — the cost the
//     aggregation exists to beat.
//
//   * aggregated: clients uplink to a base-station mux co-hosted on their
//     edge node; each station fans its ~clients_per_station uplinks into
//     ONE batched channel to the frontend (the aggregation/decimation idea
//     of the scalable co-sim interface literature).  Farm-side channel
//     count drops to N/clients_per_station and frame batching packs many
//     client requests per link frame.
//
// Decimation: the shard replies with a fixed-size summary (status, byte
// count, image count, body fingerprint) instead of streaming the page body
// — the channel carries the traffic *shape*, the content stays checkable
// through the fingerprint.
//
// Determinism contract: every client draws from an RNG stream derived as
// stream_seed(seed, client_id); service and routing are pure functions of
// the request.  No component on a many-client fan-in path ever calls
// advance() — each reply is stamped relative to the request's delivery time
// — so results cannot depend on the wall-clock arrival order of same-time
// events.  Any (N, shards, workers, mode) run is therefore reproducible
// from its seed, and run_single_host() builds the identical component graph
// in one scheduler as a bit-exact oracle for the distributed runs.  The two
// layouts fold the same total delay into their net paths, so their fetch
// logs are identical too.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "core/scheduler.hpp"
#include "dist/node.hpp"
#include "dist/replica.hpp"
#include "dist/sharding.hpp"
#include "wubbleu/http.hpp"
#include "wubbleu/page.hpp"

namespace pia::wubbleu {

// ---------------------------------------------------------------------------
// Catalog: the page population all shards partition between them
// ---------------------------------------------------------------------------

struct CatalogSpec {
  std::size_t pages = 32;
  std::size_t page_bytes = 2048;  // base body size; varies a little by rank
  std::uint32_t images = 1;
  std::uint64_t seed = 1998;
};

/// URL of catalog rank `rank` (rank 0 is the hottest page under Zipf).
[[nodiscard]] std::string page_url(std::uint32_t rank);

/// PageSpec for one catalog entry: sizes vary by rank so shards serve a mix,
/// content seed derives from (catalog seed, rank).
[[nodiscard]] PageSpec catalog_page_spec(const CatalogSpec& catalog,
                                         std::uint32_t rank);

// ---------------------------------------------------------------------------
// Wire payloads
// ---------------------------------------------------------------------------

/// Uplink payload: the client's id rides in front of the plain HTTP request
/// so fan-in points (station mux, gateway frontend) can route replies back
/// without per-client connection state.
struct TaggedRequest {
  std::uint32_t client = 0;
  HttpRequest request;
};

[[nodiscard]] Bytes encode_tagged_request(const TaggedRequest& tagged);
[[nodiscard]] TaggedRequest decode_tagged_request(BytesView data);

/// Downlink payload: the decimated reply.  Fixed-size summary of the page
/// the gateway served; body_hash fingerprints the full body so tests can
/// check content equivalence without shipping it.
struct ResponseSummary {
  std::uint32_t client = 0;
  std::uint16_t status = 200;
  std::string url;
  std::uint64_t body_bytes = 0;
  std::uint32_t images = 0;
  std::uint64_t body_hash = 0;
};

[[nodiscard]] Bytes encode_response_summary(const ResponseSummary& summary);
[[nodiscard]] ResponseSummary decode_response_summary(BytesView data);

// ---------------------------------------------------------------------------
// Components
// ---------------------------------------------------------------------------

/// One completed page fetch as observed by a client.  The per-client fetch
/// logs are the equivalence artifact: identical (seed, topology) runs must
/// produce identical logs, bit for bit, on any worker count or node layout.
struct Fetch {
  std::uint32_t page = 0;
  VirtualTime issued = VirtualTime::zero();
  VirtualTime completed = VirtualTime::zero();
  std::uint64_t body_bytes = 0;
  std::uint64_t body_hash = 0;
  std::uint16_t status = 0;

  friend bool operator==(const Fetch&, const Fetch&) = default;
};

/// Closed-loop load generator standing in for one handheld user: think,
/// pick a page by Zipf rank, fetch, think again.  Draws come from a
/// counter-based SplitMix64 stream (trivially checkpointable), seeded as
/// stream_seed(run seed, client id).  Ports: one req/resp pair.
class ClientLoadGen : public Component {
 public:
  struct Config {
    std::uint32_t client_id = 0;
    std::uint64_t seed = 1;
    std::uint32_t requests = 4;
    std::shared_ptr<const dist::ZipfSampler> popularity;
    VirtualTime think_base = ticks(1'000);
    std::uint64_t think_spread = 2'000;
    std::uint64_t start_spread = 500;
  };

  ClientLoadGen(std::string name, Config config);

  void on_init() override;
  void on_wake() override;
  void on_receive(PortIndex port, const Value& value) override;

  void save_state(serial::OutArchive& ar) const override;
  void restore_state(serial::InArchive& ar) override;

  [[nodiscard]] const std::vector<Fetch>& fetches() const { return fetches_; }
  [[nodiscard]] std::uint32_t issued() const { return issued_; }
  [[nodiscard]] bool done() const {
    return fetches_.size() == config_.requests;
  }

 private:
  [[nodiscard]] std::uint64_t next_u64();
  [[nodiscard]] double next_uniform();
  void issue_request();

  Config config_;
  PortIndex req_ = 0;
  PortIndex resp_ = 0;
  std::uint64_t stream_;     // counter-based SplitMix64 stream seed
  std::uint64_t draws_ = 0;  // draws consumed so far
  std::uint32_t issued_ = 0;
  std::uint32_t pending_page_ = 0;
  VirtualTime pending_issued_ = VirtualTime::zero();
  std::vector<Fetch> fetches_;
};

/// Base-station mux: fans `clients` handheld uplinks into one upstream
/// channel toward the gateway frontend and routes replies back by the
/// client tag.  Pure per-event relay — no advance(), no routing state
/// beyond the static client list — so its outputs are independent of
/// same-time arrival order.
class StationMux : public Component {
 public:
  struct Config {
    std::vector<std::uint32_t> clients;  // global ids; local index = position
  };

  StationMux(std::string name, Config config);

  void on_receive(PortIndex port, const Value& value) override;

  void save_state(serial::OutArchive& ar) const override;
  void restore_state(serial::InArchive& ar) override;

  [[nodiscard]] std::uint64_t relayed_up() const { return relayed_up_; }
  [[nodiscard]] std::uint64_t relayed_down() const { return relayed_down_; }

 private:
  Config config_;
  std::vector<PortIndex> up_;    // in, one per local client
  std::vector<PortIndex> down_;  // out, one per local client
  PortIndex tx_ = 0;             // out, toward the frontend
  PortIndex rx_ = 0;             // in, from the frontend
  std::map<std::uint32_t, std::uint32_t> local_index_;  // client id -> slot
  std::uint64_t relayed_up_ = 0;
  std::uint64_t relayed_down_ = 0;
};

/// Gateway frontend: root of the farm tree.  Routes each request to the
/// shard owning its URL (the shared partition function) and each reply back
/// to the peer hosting the tagged client.  Pure per-event relay, like the
/// station.  This is where per-client vs aggregated channel fan-in shows up
/// as protocol cost: `peers` is N in the baseline, N/clients_per_station
/// with aggregation.
class ShardFrontend : public Component {
 public:
  struct Config {
    std::uint32_t peers = 1;   // client channels (baseline) or stations
    std::uint32_t shards = 1;
    /// Clients multiplexed per peer: 1 in the baseline, clients_per_station
    /// with aggregation.  peer_of(client) = client / clients_per_peer.
    std::uint32_t clients_per_peer = 1;
  };

  ShardFrontend(std::string name, Config config);

  void on_receive(PortIndex port, const Value& value) override;

  void save_state(serial::OutArchive& ar) const override;
  void restore_state(serial::InArchive& ar) override;

  [[nodiscard]] std::uint64_t routed_requests() const {
    return routed_requests_;
  }
  [[nodiscard]] std::uint64_t routed_replies() const {
    return routed_replies_;
  }

 private:
  Config config_;
  std::vector<PortIndex> up_;    // in, one per peer
  std::vector<PortIndex> down_;  // out, one per peer
  std::vector<PortIndex> tx_;    // out, one per shard
  std::vector<PortIndex> rx_;    // in, one per shard
  std::uint64_t routed_requests_ = 0;
  std::uint64_t routed_replies_ = 0;
};

/// One gateway shard: owns the catalog partition shard_of_key(url) == shard
/// and serves decimated replies over its single channel to the frontend.
/// Service is a pure function of the request — the reply is stamped at
/// delivery time + service delay via send()'s extra_delay, never via
/// advance() — so N clients hammering one shard at the same virtual time
/// always produce the same replies.
class ShardGateway : public Component {
 public:
  struct Config {
    std::uint32_t shard = 0;
    std::uint32_t shards = 1;
    CatalogSpec catalog;
    VirtualTime service_base = ticks(200);
    VirtualTime service_per_kb = ticks(8);
  };

  ShardGateway(std::string name, Config config);

  void on_receive(PortIndex port, const Value& value) override;

  void save_state(serial::OutArchive& ar) const override;
  void restore_state(serial::InArchive& ar) override;

  [[nodiscard]] std::uint64_t served() const { return served_; }
  [[nodiscard]] std::size_t partition_size() const { return pages_.size(); }

 private:
  struct Entry {
    ResponseSummary summary;  // client field patched per request
    VirtualTime service = VirtualTime::zero();
  };

  Config config_;
  PortIndex rx_ = 0;
  PortIndex tx_ = 0;
  std::map<std::string, Entry> pages_;  // the hash-partitioned gateway state
  std::uint64_t served_ = 0;
};

// ---------------------------------------------------------------------------
// Scenario generator
// ---------------------------------------------------------------------------

struct ScaleoutSpec {
  std::size_t clients = 4;
  std::uint32_t shards = 2;
  std::size_t clients_per_station = 50;
  /// true: station mux + one batched channel per station into the frontend.
  /// false: one frontend channel per client — the O(N) baseline.
  bool aggregated = true;

  std::uint32_t requests_per_client = 4;
  CatalogSpec catalog{};
  double zipf_exponent = 1.1;
  std::uint64_t seed = 1;

  // Virtual-time shape.  Net delays double as channel lookahead.  The
  // baseline folds uplink+backhaul (and backhaul+downlink) into its direct
  // client<->frontend nets, so both layouts share one end-to-end timing.
  VirtualTime uplink = ticks(400);     // client -> station
  VirtualTime backhaul = ticks(150);   // station -> frontend
  VirtualTime fanout = ticks(100);     // frontend -> shard
  VirtualTime downlink = ticks(400);   // station -> client
  VirtualTime service_base = ticks(200);
  VirtualTime service_per_kb = ticks(8);
  VirtualTime think_base = ticks(1'000);
  std::uint64_t think_spread = 2'000;
  std::uint64_t start_spread = 500;

  /// Channel sync modes, cycled over channels in creation order starting at
  /// mode_phase — {kConservative} for uniform conservative, two entries for
  /// mixed, etc.
  std::vector<dist::ChannelMode> mode_cycle{dist::ChannelMode::kConservative};
  std::size_t mode_phase = 0;

  std::uint32_t batch_limit = 64;
  std::size_t worker_threads = 0;  // 0 = thread per subsystem

  /// Functional replication of the gateway shards (dist/replica.hpp): each
  /// shard is stamped out `shard_replicas` times on distinct nodes and
  /// wired to the frontend as ONE logical channel (fan-out + dedup).  The
  /// replica channel is forced conservative.  1 = unreplicated (the exact
  /// pre-replication topology, channel for channel).
  std::size_t shard_replicas = 1;

  /// Seeded mid-run kill of one shard replica member: member `member` of
  /// shard `shard` has its wire slammed shut (FaultPlan::crash_at) after
  /// `frames` frames, and the group must promote a survivor with zero
  /// rollback — the fetch logs must stay bit-exact vs the unreplicated
  /// oracle.  frames == 0 disables the kill.
  struct ReplicaKill {
    std::uint32_t shard = 0;
    std::size_t member = 1;
    std::uint64_t frames = 0;  // 0 = no kill
    std::uint64_t seed = 42;
  };
  ReplicaKill replica_kill{};

  [[nodiscard]] dist::ChannelMode mode_at(std::size_t channel) const {
    return mode_cycle[(mode_phase + channel) % mode_cycle.size()];
  }
  [[nodiscard]] std::size_t stations() const {
    return aggregated
               ? (clients + clients_per_station - 1) / clients_per_station
               : 0;
  }
};

/// The equivalence artifact of one run: every client's fetch log, plus the
/// total dispatch count for throughput reporting.  Equality compares the
/// logs only (dispatch counts legitimately differ between layouts).
struct ScaleoutResult {
  std::vector<std::vector<Fetch>> fetches;  // indexed by client id
  std::uint64_t events_dispatched = 0;

  [[nodiscard]] std::uint64_t total_fetches() const;
  [[nodiscard]] std::uint64_t total_bytes() const;
  friend bool operator==(const ScaleoutResult& a, const ScaleoutResult& b) {
    return a.fetches == b.fetches;
  }
};

/// Single-host oracle: the identical component graph in one Scheduler, run
/// to `horizon`.  The reference every distributed configuration must match
/// bit-exactly.
[[nodiscard]] ScaleoutResult run_single_host(
    const ScaleoutSpec& spec, VirtualTime horizon = VirtualTime::infinity());

/// The distributed deployment: client (+ station) subsystems pooled on an
/// edge node, the frontend on a core node, one node per gateway shard,
/// channels and lookahead derived from the spec.  Build once, run to one or
/// more horizons, then read the result.
class ScaleoutCluster {
 public:
  explicit ScaleoutCluster(const ScaleoutSpec& spec);

  /// Runs every subsystem to the config horizon (defaults: run to
  /// quiescence — the closed loop drains once every client finishes).
  std::map<std::string, dist::Subsystem::RunOutcome> run(
      const dist::Subsystem::RunConfig& config = {});

  [[nodiscard]] ScaleoutResult result() const;
  [[nodiscard]] const ScaleoutSpec& spec() const { return spec_; }
  [[nodiscard]] dist::NodeCluster& cluster() { return cluster_; }
  [[nodiscard]] const std::vector<ClientLoadGen*>& clients() const {
    return clients_;
  }
  [[nodiscard]] const std::vector<ShardGateway*>& shards() const {
    return shards_;
  }
  /// Replica member k of shard m (member 0 == shards()[m]).  Only indices
  /// below spec().shard_replicas exist.
  [[nodiscard]] ShardGateway* shard_member(std::size_t m,
                                           std::size_t k) const {
    return shard_members_.at(m).at(k);
  }
  /// The ReplicaSet carrying shard m's logical channel; only populated when
  /// spec().shard_replicas > 1.
  [[nodiscard]] dist::ReplicaSet& replica_set(std::size_t m) {
    return *replica_sets_.at(m);
  }
  [[nodiscard]] std::size_t replica_set_count() const {
    return replica_sets_.size();
  }
  [[nodiscard]] const std::vector<StationMux*>& station_muxes() const {
    return stations_;
  }
  [[nodiscard]] const ShardFrontend& frontend() const { return *frontend_; }

  /// Sum of SubsystemStats over every subsystem (sync-overhead reporting).
  [[nodiscard]] dist::SubsystemStats total_stats() const;
  /// SubsystemStats of the frontend subsystem alone — where per-client vs
  /// aggregated grant traffic shows up.
  [[nodiscard]] dist::SubsystemStats frontend_stats() const;
  /// Sum of scheduler events dispatched over every subsystem.
  [[nodiscard]] std::uint64_t events_dispatched() const;
  /// Channels in the topology (N + S + M aggregated, N + M baseline).
  [[nodiscard]] std::size_t channel_count() const { return channel_count_; }

 private:
  ScaleoutSpec spec_;
  dist::NodeCluster cluster_;
  std::vector<dist::Subsystem*> subsystems_;
  dist::Subsystem* frontend_ss_ = nullptr;
  std::vector<ClientLoadGen*> clients_;
  std::vector<StationMux*> stations_;
  ShardFrontend* frontend_ = nullptr;
  std::vector<ShardGateway*> shards_;  // member 0 of each shard
  std::vector<std::vector<ShardGateway*>> shard_members_;  // [shard][member]
  std::vector<std::unique_ptr<dist::ReplicaSet>> replica_sets_;
  std::size_t channel_count_ = 0;
};

/// Best-effort bump of the process fd soft limit to its hard limit.  A
/// thousand-subsystem topology holds a ready-signal pipe per subsystem and
/// per SPSC ring; default soft limits (1024) are too small for that.
void raise_fd_limit();

}  // namespace pia::wubbleu
