#include "wubbleu/http.hpp"

#include "serial/archive.hpp"

namespace pia::wubbleu {

Bytes encode_request(const HttpRequest& request) {
  serial::OutArchive ar;
  serial::begin_section(ar, "pia.http.req", 1);
  ar.put_string(request.url);
  return std::move(ar).take();
}

HttpRequest decode_request(BytesView data) {
  serial::InArchive ar(data);
  serial::expect_section(ar, "pia.http.req");
  return HttpRequest{.url = ar.get_string()};
}

Bytes encode_response(const HttpResponse& response) {
  serial::OutArchive ar;
  serial::begin_section(ar, "pia.http.resp", 1);
  ar.put_varint(response.status);
  ar.put_string(response.url);
  ar.put_varint(response.images.size());
  for (const ImageRef& image : response.images) {
    ar.put_varint(image.offset);
    ar.put_varint(image.length);
    ar.put_varint(image.width);
    ar.put_varint(image.height);
  }
  ar.put_bytes(response.body);
  return std::move(ar).take();
}

HttpResponse decode_response(BytesView data) {
  serial::InArchive ar(data);
  serial::expect_section(ar, "pia.http.resp");
  HttpResponse response;
  response.status = static_cast<std::uint16_t>(ar.get_varint());
  response.url = ar.get_string();
  response.images.resize(ar.get_varint());
  for (ImageRef& image : response.images) {
    image.offset = static_cast<std::uint32_t>(ar.get_varint());
    image.length = static_cast<std::uint32_t>(ar.get_varint());
    image.width = static_cast<std::uint32_t>(ar.get_varint());
    image.height = static_cast<std::uint32_t>(ar.get_varint());
  }
  response.body = ar.get_bytes();
  return response;
}

}  // namespace pia::wubbleu
