// The handheld unit's modules (paper Fig. 5): UI, handwriting recognition,
// browser control + JPEG decoding on the CPU, and the stylus input source.
//
// Mapping (the paper's chosen architecture, Fig. 6): all of these processes
// run on the embedded processor; only the network interface lives on the
// cellular ASIC (cellular.hpp).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/component.hpp"
#include "proc/software.hpp"
#include "wubbleu/handwriting.hpp"
#include "wubbleu/http.hpp"

namespace pia::wubbleu {

/// Scripted stylus: plays back the strokes for each URL of a browse
/// session, one character every `stroke_period`.
class StrokeSource final : public Component {
 public:
  StrokeSource(std::string name, std::vector<std::string> urls,
               VirtualTime stroke_period = ticks(200'000),
               std::uint64_t seed = 42);

  void on_init() override;
  void on_wake() override;
  void on_receive(PortIndex port, const Value& value) override;

  void save_state(serial::OutArchive& ar) const override;
  void restore_state(serial::InArchive& ar) override;

 private:
  std::vector<std::string> script_;  // each URL followed by '\n'
  VirtualTime period_;
  std::uint64_t seed_;
  std::size_t url_index_ = 0;
  std::size_t char_index_ = 0;
  PortIndex strokes_;
};

/// Handwriting recognition process: strokes in, characters out.
class Recognizer final : public proc::SoftwareComponent {
 public:
  Recognizer(std::string name,
             proc::ProcessorProfile profile = proc::ProcessorProfile::embedded_33mhz());

  void on_data(PortIndex port, const Value& value) override;

  [[nodiscard]] std::uint64_t classified() const { return classified_; }

  void save_software_state(serial::OutArchive& ar) const override;
  void restore_software_state(serial::InArchive& ar) override;

 private:
  HandwritingClassifier classifier_;
  std::uint64_t classified_ = 0;
  PortIndex strokes_;
  PortIndex chars_;
};

/// UI process: assembles recognized characters into a URL, asks the browser
/// to load it, records completion metrics.
class Ui final : public Component {
 public:
  explicit Ui(std::string name);

  struct PageLoad {
    std::string url;
    VirtualTime requested_at;
    VirtualTime completed_at;
    std::uint32_t body_bytes = 0;
    std::uint32_t images = 0;
  };

  void on_receive(PortIndex port, const Value& value) override;

  void save_state(serial::OutArchive& ar) const override;
  void restore_state(serial::InArchive& ar) override;

  [[nodiscard]] const std::vector<PageLoad>& loads() const { return loads_; }
  [[nodiscard]] std::size_t completed() const;

 private:
  std::string pending_url_;
  std::vector<PageLoad> loads_;
  PortIndex chars_;    // from the recognizer
  PortIndex request_;  // to the browser (CPU)
  PortIndex done_;     // from the browser
};

/// Browser control + page handling on the embedded CPU: issues HTTP
/// requests through the cellular chip, reassembles responses from DMA
/// buffers, decodes the images, reports completion to the UI.
class HandheldCpu final : public proc::SoftwareComponent {
 public:
  static constexpr std::uint32_t kDmaBufferBase = 0x1000;

  HandheldCpu(std::string name,
              proc::ProcessorProfile profile = proc::ProcessorProfile::embedded_33mhz(),
              std::size_t memory_bytes = 512 * 1024);

  void on_data(PortIndex port, const Value& value) override;

  void save_software_state(serial::OutArchive& ar) const override;
  void restore_software_state(serial::InArchive& ar) override;

  [[nodiscard]] std::uint64_t pages_loaded() const { return pages_loaded_; }
  [[nodiscard]] std::uint64_t images_decoded() const {
    return images_decoded_;
  }
  [[nodiscard]] std::uint64_t image_pixel_errors() const {
    return image_pixel_errors_;
  }

 private:
  void handle_nic_completion(const Value& irq, VirtualTime at);
  void issue_request(const std::string& url);

  std::optional<std::string> inflight_url_;
  std::vector<std::string> queued_urls_;  // user typed ahead of the network
  std::uint64_t pages_loaded_ = 0;
  std::uint64_t images_decoded_ = 0;
  std::uint64_t image_pixel_errors_ = 0;

  PortIndex request_;  // from the UI
  PortIndex tx_;       // to the cellular chip
  PortIndex nic_irq_;  // DMA completion
  PortIndex done_;     // to the UI
};

/// Encoding of the "page done" notification on the UI's done port.
struct PageDone {
  std::string url;
  std::uint32_t body_bytes = 0;
  std::uint32_t images = 0;
};
[[nodiscard]] Value encode_page_done(const PageDone& done);
[[nodiscard]] PageDone decode_page_done(const Value& value);

}  // namespace pia::wubbleu
