// The cellular communication chip and its host-side DMA receiver (paper §4,
// Fig. 6).
//
// "The cellular connection is controlled by an ASIC which transfers packets
// to the system through DMA.  This chip is our candidate for remote
// operation."
//
// CellularAsic sits between the handheld CPU and the base station:
//   * uplink: HTTP request packets from the CPU ("host_tx") go out over the
//     air ("radio_tx") after MAC framing and airtime;
//   * downlink: responses from the base station ("radio_rx") are rendered
//     onto the host data net ("host_data") at the ASIC's CURRENT RUNLEVEL —
//     word passage (4-byte words) or packet passage (1 KB packets).  This
//     net is the one that gets split across subsystems when the chip runs
//     remotely, so the runlevel directly controls Internet bandwidth —
//     Table 1's experiment.
//
// NicDma is the handheld side of the DMA path: it reassembles whatever
// detail level the ASIC used, lands the bytes in CPU memory as a DMA burst
// and raises a completion interrupt.
#pragma once

#include "core/component.hpp"
#include "core/protocols.hpp"
#include "proc/memory.hpp"
#include "proc/timing.hpp"

namespace pia::wubbleu {

class CellularAsic final : public Component {
 public:
  CellularAsic(std::string name, TimingProfile downlink_timing,
               VirtualTime airtime_per_byte = ticks(500),
               RunLevel initial_level = runlevels::kPacket);

  void on_receive(PortIndex port, const Value& value) override;
  [[nodiscard]] bool at_safe_point() const override;

  void save_state(serial::OutArchive& ar) const override;
  void restore_state(serial::InArchive& ar) override;

  [[nodiscard]] std::uint64_t frames_up() const { return frames_up_; }
  [[nodiscard]] std::uint64_t bytes_down() const { return bytes_down_; }
  [[nodiscard]] std::uint64_t host_emissions() const {
    return host_emissions_;
  }

 private:
  TransferEncoder encoder_;
  TransferDecoder radio_decoder_;
  VirtualTime airtime_per_byte_;

  PortIndex host_tx_;    // CPU -> chip (requests)
  PortIndex radio_tx_;   // chip -> base station
  PortIndex radio_rx_;   // base station -> chip
  PortIndex host_data_;  // chip -> NicDma (THE split candidate)

  std::uint64_t frames_up_ = 0;
  std::uint64_t bytes_down_ = 0;
  std::uint64_t host_emissions_ = 0;
};

class NicDma final : public Component {
 public:
  /// `memory` is the handheld CPU's memory; bursts land at `buffer_base`.
  NicDma(std::string name, proc::Memory& memory, std::uint32_t buffer_base,
         std::uint64_t bytes_per_cycle = 4);

  void on_receive(PortIndex port, const Value& value) override;
  [[nodiscard]] bool at_safe_point() const override;

  void save_state(serial::OutArchive& ar) const override;
  void restore_state(serial::InArchive& ar) override;

  struct Completion {
    std::uint32_t address;
    std::uint32_t length;
  };
  [[nodiscard]] static Completion decode_completion(const Value& irq);

  [[nodiscard]] std::uint64_t transfers() const { return transfers_; }
  [[nodiscard]] std::uint64_t net_events() const { return net_events_; }

 private:
  proc::Memory& memory_;
  std::uint32_t buffer_base_;
  std::uint64_t bytes_per_cycle_;
  TransferDecoder decoder_;

  PortIndex net_;  // from the ASIC's host_data (possibly via a channel)
  PortIndex irq_;  // completion interrupt to the CPU

  std::uint64_t transfers_ = 0;
  std::uint64_t net_events_ = 0;
};

}  // namespace pia::wubbleu
