// WubbleU system builders (paper §4, Figs. 5 and 6).
//
// build_local() assembles the whole system — Fig. 6's architecture — inside
// one subsystem: the single-host rows of Table 1.  build_distributed()
// places the handheld's modules in one subsystem and the cellular chip (+
// base station + gateway) in another, splitting the CPU<->chip nets across
// the channel: the chip is "our candidate for remote operation", and the
// split nets carry word- or packet-level traffic depending on the chip's
// runlevel — the remote rows of Table 1.
#pragma once

#include "core/scheduler.hpp"
#include "dist/node.hpp"
#include "wubbleu/cellular.hpp"
#include "wubbleu/handheld.hpp"
#include "wubbleu/server.hpp"

namespace pia::wubbleu {

struct WubbleUConfig {
  PageSpec page{};
  /// Browse session; defaults to loading page.url once.
  std::vector<std::string> urls{};
  /// Detail level the chip renders the downlink at ("word passage" vs
  /// "packet passage", Table 1).
  RunLevel downlink_level = runlevels::kPacket;
  TimingProfile downlink_timing{};
  VirtualTime stroke_period = ticks(200'000);
  proc::ProcessorProfile handheld_cpu =
      proc::ProcessorProfile::embedded_33mhz();
  proc::ProcessorProfile server_cpu =
      proc::ProcessorProfile::pentium_pro_200();

  [[nodiscard]] std::vector<std::string> session_urls() const {
    return urls.empty() ? std::vector<std::string>{page.url} : urls;
  }
};

/// Non-owning handles to the system's modules (owned by the scheduler(s)).
struct WubbleUHandles {
  StrokeSource* stylus = nullptr;
  Recognizer* recognizer = nullptr;
  Ui* ui = nullptr;
  HandheldCpu* cpu = nullptr;
  NicDma* nic = nullptr;
  CellularAsic* asic = nullptr;
  BaseStation* base_station = nullptr;
  WebGateway* gateway = nullptr;
};

/// Everything in one subsystem (Fig. 6 simulated on a single host).
WubbleUHandles build_local(Scheduler& scheduler, const WubbleUConfig& config);

/// Handheld modules in `handheld`, the chip + server side in `chip_side`,
/// with the CPU->chip and chip->NIC nets split across the given channel
/// pair (channels.a must belong to `handheld`).
WubbleUHandles build_distributed(dist::Subsystem& handheld,
                                 dist::Subsystem& chip_side,
                                 const dist::ChannelPair& channels,
                                 const WubbleUConfig& config);

/// The "HotJava" reference: load the same content natively, with no
/// simulation at all — fetch the page bytes and decode every image.
struct NativeLoadResult {
  std::size_t body_bytes = 0;
  std::size_t images_decoded = 0;
};
NativeLoadResult native_page_load(const PageSpec& spec);
/// Same, but serving an already-built page (fair timing: the simulated
/// gateway also pre-builds its PageStore before the clock starts).
NativeLoadResult native_page_load(const HttpResponse& page);

}  // namespace pia::wubbleu
