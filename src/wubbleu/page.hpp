// Synthetic web content (substitution for the 1998 Pia homepage).
//
// "The test performed is the loading of the Pia homepage, which contains
// approximately 66KB of data, including graphics."  That page is long gone;
// this generator produces a deterministic equivalent: HTML-looking text
// plus several JPEG-encoded images, padded/assembled to hit a target byte
// size.  A PageStore plays the role of the Internet behind the web gateway.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "wubbleu/http.hpp"

namespace pia::wubbleu {

struct PageSpec {
  std::string url = "http://www.cs.washington.edu/research/chinook/pia.html";
  std::size_t target_bytes = 66 * 1024;  // the paper's ~66 KB
  std::uint32_t image_count = 4;
  std::uint32_t image_width = 96;
  std::uint32_t image_height = 96;
  std::uint64_t seed = 1998;
};

/// Builds the response the gateway will serve: HTML filler + encoded
/// images, body size ~= target_bytes.
[[nodiscard]] HttpResponse make_page(const PageSpec& spec);

class PageStore {
 public:
  void put(HttpResponse page);
  /// Serves the page, or a 404 response for unknown URLs.
  [[nodiscard]] const HttpResponse& get(const std::string& url) const;
  [[nodiscard]] bool contains(const std::string& url) const;
  [[nodiscard]] std::size_t size() const { return pages_.size(); }

 private:
  std::map<std::string, HttpResponse> pages_;
  HttpResponse not_found_{.status = 404, .url = {}, .images = {}, .body = {}};
};

}  // namespace pia::wubbleu
