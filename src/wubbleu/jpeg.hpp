// Simplified JPEG-style image codec.
//
// WubbleU's handheld decodes images in the pages it loads (the paper lists
// "JPEG chips" among the IP an implementation can contain, and the test
// page "contains approximately 66KB of data, including graphics").  This
// codec gives the workload real computational substance: 8x8 forward/
// inverse DCT, quantization, zig-zag ordering and run-length/varint entropy
// coding of grayscale images.  It is not bitstream-compatible with ITU
// JPEG, but it has the same computational shape, which is what the timing
// model needs.
#pragma once

#include <cstdint>
#include <vector>

#include "base/bytes.hpp"

namespace pia::wubbleu {

struct GrayImage {
  std::uint32_t width = 0;
  std::uint32_t height = 0;
  std::vector<std::uint8_t> pixels;  // row-major, width*height

  [[nodiscard]] std::uint8_t at(std::uint32_t x, std::uint32_t y) const {
    return pixels[y * width + x];
  }
  bool operator==(const GrayImage&) const = default;
};

/// Quality 1 (coarse) .. 32 (near-lossless): scales the quantization table.
struct JpegQuality {
  std::uint32_t level = 8;
};

[[nodiscard]] Bytes jpeg_encode(const GrayImage& image, JpegQuality quality = {});
[[nodiscard]] GrayImage jpeg_decode(BytesView data);

/// Decode cost estimate in processor cycles (for basic-block timing): DCT
/// blocks dominate, so cost ~ blocks * cycles_per_block.
[[nodiscard]] std::uint64_t jpeg_decode_cycles(std::uint32_t width,
                                               std::uint32_t height);

/// Deterministic synthetic photo (smooth gradients + texture) for page
/// generation.
[[nodiscard]] GrayImage make_test_image(std::uint32_t width,
                                        std::uint32_t height,
                                        std::uint64_t seed);

}  // namespace pia::wubbleu
