#include "wubbleu/handwriting.hpp"

#include <cmath>

#include "base/error.hpp"
#include "base/rng.hpp"
#include "serial/archive.hpp"

namespace pia::wubbleu {
namespace {

/// Canonical strokes are generated procedurally per character: a polyline
/// through waypoints derived from the character code, shaped so distinct
/// characters produce distinct feature vectors.  (Real recognizers train
/// templates; a generated alphabet keeps this reproduction deterministic.)
Stroke generate_canonical(char c) {
  Rng rng(static_cast<std::uint64_t>(c) * 0x9E3779B97F4A7C15ULL + 7);
  const std::size_t waypoints = 3 + rng.below(4);
  std::vector<StrokePoint> anchors;
  anchors.reserve(waypoints);
  for (std::size_t i = 0; i < waypoints; ++i) {
    anchors.push_back(StrokePoint{
        static_cast<float>(rng.uniform()),
        static_cast<float>(rng.uniform()),
    });
  }
  // Densify: 12 samples per segment, linearly interpolated.
  Stroke stroke;
  for (std::size_t i = 0; i + 1 < anchors.size(); ++i) {
    for (int k = 0; k < 12; ++k) {
      const float t = static_cast<float>(k) / 12.0F;
      stroke.push_back(StrokePoint{
          anchors[i].x + t * (anchors[i + 1].x - anchors[i].x),
          anchors[i].y + t * (anchors[i + 1].y - anchors[i].y),
      });
    }
  }
  stroke.push_back(anchors.back());
  return stroke;
}

}  // namespace

const std::string& stroke_alphabet() {
  static const std::string alphabet =
      "abcdefghijklmnopqrstuvwxyz0123456789:/._-~\n";
  return alphabet;
}

Stroke stroke_for_char(char c) {
  if (stroke_alphabet().find(c) == std::string::npos)
    raise(ErrorKind::kInvalidArgument,
          std::string("no stroke for character '") + c + "'");
  return generate_canonical(c);
}

Stroke noisy_stroke_for_char(char c, std::uint64_t seed, float jitter) {
  Stroke stroke = stroke_for_char(c);
  Rng rng(seed);
  for (StrokePoint& p : stroke) {
    p.x += static_cast<float>((rng.uniform() - 0.5) * 2.0 * jitter);
    p.y += static_cast<float>((rng.uniform() - 0.5) * 2.0 * jitter);
  }
  return stroke;
}

Bytes encode_stroke(const Stroke& stroke) {
  serial::OutArchive ar;
  ar.put_varint(stroke.size());
  for (const StrokePoint& p : stroke) {
    ar.put_double(p.x);
    ar.put_double(p.y);
  }
  return std::move(ar).take();
}

Stroke decode_stroke(BytesView data) {
  serial::InArchive ar(data);
  Stroke stroke(ar.get_varint());
  for (StrokePoint& p : stroke) {
    p.x = static_cast<float>(ar.get_double());
    p.y = static_cast<float>(ar.get_double());
  }
  return stroke;
}

namespace {

/// Moving-average smoothing: averages each sample with its neighbours to
/// knock down stylus jitter before direction features are computed.
Stroke smooth(const Stroke& stroke, int radius = 2) {
  if (stroke.size() < 3) return stroke;
  Stroke out(stroke.size());
  const int n = static_cast<int>(stroke.size());
  for (int i = 0; i < n; ++i) {
    float sx = 0, sy = 0;
    int count = 0;
    for (int k = -radius; k <= radius; ++k) {
      const int j = i + k;
      if (j < 0 || j >= n) continue;
      sx += stroke[static_cast<std::size_t>(j)].x;
      sy += stroke[static_cast<std::size_t>(j)].y;
      ++count;
    }
    out[static_cast<std::size_t>(i)] = StrokePoint{
        sx / static_cast<float>(count), sy / static_cast<float>(count)};
  }
  return out;
}

/// Arc-length resampling to a fixed point count (the $1-recognizer trick):
/// makes features independent of sampling density.  Takes its working copy
/// by value because inserted points become new segment starts.
Stroke resample(Stroke stroke, std::size_t target = 48) {
  if (stroke.size() < 2) return stroke;
  float total = 0;
  for (std::size_t i = 0; i + 1 < stroke.size(); ++i) {
    const float dx = stroke[i + 1].x - stroke[i].x;
    const float dy = stroke[i + 1].y - stroke[i].y;
    total += std::sqrt(dx * dx + dy * dy);
  }
  if (total < 1e-6F) return stroke;
  const float step = total / static_cast<float>(target - 1);

  Stroke out;
  out.reserve(target);
  out.push_back(stroke.front());
  float carried = 0;
  for (std::size_t i = 0; i + 1 < stroke.size() && out.size() < target;) {
    const float dx = stroke[i + 1].x - stroke[i].x;
    const float dy = stroke[i + 1].y - stroke[i].y;
    const float seg = std::sqrt(dx * dx + dy * dy);
    if (carried + seg >= step && seg > 1e-9F) {
      const float t = (step - carried) / seg;
      const StrokePoint p{stroke[i].x + t * dx, stroke[i].y + t * dy};
      out.push_back(p);
      stroke[i] = p;  // the inserted point starts the next segment
      carried = 0;
    } else {
      carried += seg;
      ++i;
    }
  }
  while (out.size() < target) out.push_back(stroke.back());
  return out;
}

}  // namespace

StrokeFeatures extract_features(const Stroke& raw_stroke) {
  PIA_REQUIRE(raw_stroke.size() >= 2, "stroke too short to featurize");
  const Stroke stroke = resample(smooth(raw_stroke));
  StrokeFeatures f;

  float min_x = stroke[0].x, max_x = stroke[0].x;
  float min_y = stroke[0].y, max_y = stroke[0].y;
  float path_length = 0;
  float previous_angle = 0;
  bool have_previous = false;

  for (std::size_t i = 0; i + 1 < stroke.size(); ++i) {
    const float dx = stroke[i + 1].x - stroke[i].x;
    const float dy = stroke[i + 1].y - stroke[i].y;
    const float len = std::sqrt(dx * dx + dy * dy);
    path_length += len;
    if (len > 1e-6F) {
      const float angle = std::atan2(dy, dx);  // [-pi, pi]
      const int bin = std::min(
          7, static_cast<int>((angle + 3.14159265F) / (2 * 3.14159265F) * 8));
      f.direction_histogram[static_cast<std::size_t>(bin)] += len;
      if (have_previous) {
        float turn = angle - previous_angle;
        while (turn > 3.14159265F) turn -= 2 * 3.14159265F;
        while (turn < -3.14159265F) turn += 2 * 3.14159265F;
        f.total_turning += std::fabs(turn);
      }
      previous_angle = angle;
      have_previous = true;
    }
    min_x = std::min(min_x, stroke[i + 1].x);
    max_x = std::max(max_x, stroke[i + 1].x);
    min_y = std::min(min_y, stroke[i + 1].y);
    max_y = std::max(max_y, stroke[i + 1].y);
  }

  if (path_length > 1e-6F)
    for (float& bin : f.direction_histogram) bin /= path_length;
  const float width = std::max(max_x - min_x, 1e-6F);
  f.aspect = (max_y - min_y) / width;
  const float dx = stroke.back().x - stroke.front().x;
  const float dy = stroke.back().y - stroke.front().y;
  f.closure = path_length > 1e-6F
                  ? std::sqrt(dx * dx + dy * dy) / path_length
                  : 0;
  return f;
}

HandwritingClassifier::HandwritingClassifier() {
  for (char c : stroke_alphabet())
    templates_.emplace_back(c, extract_features(stroke_for_char(c)));
}

HandwritingClassifier::Result HandwritingClassifier::classify(
    const Stroke& stroke) const {
  const StrokeFeatures f = extract_features(stroke);
  Result best{.character = '?', .distance = 1e30F};
  for (const auto& [c, tmpl] : templates_) {
    float d = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      const float diff = f.direction_histogram[i] - tmpl.direction_histogram[i];
      d += diff * diff;
    }
    const float turn_diff = (f.total_turning - tmpl.total_turning) / 6.28F;
    const float aspect_diff = (f.aspect - tmpl.aspect) * 0.25F;
    const float closure_diff = f.closure - tmpl.closure;
    d += turn_diff * turn_diff + aspect_diff * aspect_diff +
         closure_diff * closure_diff;
    if (d < best.distance) best = Result{.character = c, .distance = d};
  }
  return best;
}

std::uint64_t HandwritingClassifier::classify_cycles(std::size_t points) {
  // feature extraction ~ 30 cycles per sample; matching ~ 40 per template.
  return points * 30 + stroke_alphabet().size() * 40;
}

}  // namespace pia::wubbleu
