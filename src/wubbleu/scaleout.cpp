#include "wubbleu/scaleout.hpp"

#include <sys/resource.h>

#include <algorithm>
#include <mutex>
#include <utility>

#include "base/error.hpp"

namespace pia::wubbleu {

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

std::string page_url(std::uint32_t rank) {
  return "http://wubbleu.example/page/" + std::to_string(rank);
}

PageSpec catalog_page_spec(const CatalogSpec& catalog, std::uint32_t rank) {
  PageSpec spec;
  spec.url = page_url(rank);
  // Sizes cycle through a small spread so every shard serves a mix and the
  // per-byte service term actually varies.
  spec.target_bytes = catalog.page_bytes + (rank % 5) * (catalog.page_bytes / 4);
  spec.image_count = catalog.images;
  spec.image_width = 24;
  spec.image_height = 24;
  spec.seed = dist::stream_seed(catalog.seed, rank);
  return spec;
}

// ---------------------------------------------------------------------------
// Wire payloads
// ---------------------------------------------------------------------------

Bytes encode_tagged_request(const TaggedRequest& tagged) {
  serial::OutArchive ar;
  ar.put_varint(tagged.client);
  ar.put_bytes(encode_request(tagged.request));
  return std::move(ar).take();
}

TaggedRequest decode_tagged_request(BytesView data) {
  serial::InArchive ar(data);
  TaggedRequest tagged;
  tagged.client = static_cast<std::uint32_t>(ar.get_varint());
  tagged.request = decode_request(ar.get_bytes());
  return tagged;
}

Bytes encode_response_summary(const ResponseSummary& summary) {
  serial::OutArchive ar;
  ar.put_varint(summary.client);
  ar.put_varint(summary.status);
  ar.put_string(summary.url);
  ar.put_varint(summary.body_bytes);
  ar.put_varint(summary.images);
  ar.put_varint(summary.body_hash);
  return std::move(ar).take();
}

ResponseSummary decode_response_summary(BytesView data) {
  serial::InArchive ar(data);
  ResponseSummary summary;
  summary.client = static_cast<std::uint32_t>(ar.get_varint());
  summary.status = static_cast<std::uint16_t>(ar.get_varint());
  summary.url = ar.get_string();
  summary.body_bytes = ar.get_varint();
  summary.images = static_cast<std::uint32_t>(ar.get_varint());
  summary.body_hash = ar.get_varint();
  return summary;
}

// ---------------------------------------------------------------------------
// ClientLoadGen
// ---------------------------------------------------------------------------

ClientLoadGen::ClientLoadGen(std::string name, Config config)
    : Component(std::move(name)),
      config_(std::move(config)),
      stream_(dist::stream_seed(config_.seed, config_.client_id)) {
  PIA_CHECK(config_.popularity != nullptr, "client needs a popularity model");
  req_ = add_output("req");
  resp_ = add_input("resp");
  fetches_.reserve(config_.requests);
}

std::uint64_t ClientLoadGen::next_u64() {
  // Counter-based SplitMix64: draw k of this stream is the same value
  // Rng(stream_) would produce, but the cursor is a plain counter, so
  // checkpoint/restore is exact.
  return dist::mix64(stream_ + (draws_++) * 0x9E3779B97F4A7C15ULL);
}

double ClientLoadGen::next_uniform() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

void ClientLoadGen::on_init() {
  if (config_.requests == 0) return;
  const std::uint64_t offset =
      config_.start_spread == 0 ? 0 : next_u64() % (config_.start_spread + 1);
  wake_at(ticks(static_cast<VirtualTime::rep>(1 + offset)));
}

void ClientLoadGen::on_wake() { issue_request(); }

void ClientLoadGen::issue_request() {
  const std::uint32_t rank = config_.popularity->sample(next_uniform());
  pending_page_ = rank;
  pending_issued_ = local_time();
  ++issued_;
  const TaggedRequest tagged{.client = config_.client_id,
                             .request = {.url = page_url(rank)}};
  send(req_, Value::packet(encode_tagged_request(tagged)));
}

void ClientLoadGen::on_receive(PortIndex, const Value& value) {
  const ResponseSummary summary = decode_response_summary(value.as_packet());
  PIA_CHECK(summary.client == config_.client_id,
            "response routed to the wrong client");
  fetches_.push_back(Fetch{.page = pending_page_,
                           .issued = pending_issued_,
                           .completed = delivery_time(),
                           .body_bytes = summary.body_bytes,
                           .body_hash = summary.body_hash,
                           .status = summary.status});
  if (issued_ < config_.requests) {
    const VirtualTime think =
        config_.think_base +
        ticks(static_cast<VirtualTime::rep>(
            config_.think_spread == 0
                ? 0
                : next_u64() % (config_.think_spread + 1)));
    wake_after(think);
  }
}

void ClientLoadGen::save_state(serial::OutArchive& ar) const {
  ar.put_varint(stream_);
  ar.put_varint(draws_);
  ar.put_varint(issued_);
  ar.put_varint(pending_page_);
  serial::write(ar, pending_issued_);
  ar.put_varint(fetches_.size());
  for (const Fetch& f : fetches_) {
    ar.put_varint(f.page);
    serial::write(ar, f.issued);
    serial::write(ar, f.completed);
    ar.put_varint(f.body_bytes);
    ar.put_varint(f.body_hash);
    ar.put_varint(f.status);
  }
}

void ClientLoadGen::restore_state(serial::InArchive& ar) {
  stream_ = ar.get_varint();
  draws_ = ar.get_varint();
  issued_ = static_cast<std::uint32_t>(ar.get_varint());
  pending_page_ = static_cast<std::uint32_t>(ar.get_varint());
  pending_issued_ = serial::read<VirtualTime>(ar);
  fetches_.clear();
  const std::uint64_t n = ar.get_varint();
  for (std::uint64_t i = 0; i < n; ++i) {
    Fetch f;
    f.page = static_cast<std::uint32_t>(ar.get_varint());
    f.issued = serial::read<VirtualTime>(ar);
    f.completed = serial::read<VirtualTime>(ar);
    f.body_bytes = ar.get_varint();
    f.body_hash = ar.get_varint();
    f.status = static_cast<std::uint16_t>(ar.get_varint());
    fetches_.push_back(f);
  }
}

// ---------------------------------------------------------------------------
// StationMux
// ---------------------------------------------------------------------------

StationMux::StationMux(std::string name, Config config)
    : Component(std::move(name)), config_(std::move(config)) {
  PIA_CHECK(!config_.clients.empty(), "station needs at least one client");
  for (std::size_t c = 0; c < config_.clients.size(); ++c) {
    up_.push_back(add_input("up" + std::to_string(c)));
    down_.push_back(add_output("down" + std::to_string(c)));
    local_index_[config_.clients[c]] = static_cast<std::uint32_t>(c);
  }
  tx_ = add_output("tx");
  rx_ = add_input("rx");
}

void StationMux::on_receive(PortIndex port, const Value& value) {
  if (port == rx_) {
    // Frontend reply: route back to the tagged client's downlink.
    const ResponseSummary summary = decode_response_summary(value.as_packet());
    const auto it = local_index_.find(summary.client);
    PIA_CHECK(it != local_index_.end(),
              "reply for a client this station does not host");
    ++relayed_down_;
    send(down_[it->second], value);
    return;
  }
  // Client uplink: fan in — forward the original packet upstream, the client
  // tag rides along untouched.
  ++relayed_up_;
  send(tx_, value);
}

void StationMux::save_state(serial::OutArchive& ar) const {
  ar.put_varint(relayed_up_);
  ar.put_varint(relayed_down_);
}

void StationMux::restore_state(serial::InArchive& ar) {
  relayed_up_ = ar.get_varint();
  relayed_down_ = ar.get_varint();
}

// ---------------------------------------------------------------------------
// ShardFrontend
// ---------------------------------------------------------------------------

ShardFrontend::ShardFrontend(std::string name, Config config)
    : Component(std::move(name)), config_(std::move(config)) {
  PIA_CHECK(config_.peers >= 1 && config_.shards >= 1 &&
                config_.clients_per_peer >= 1,
            "frontend needs at least one peer and one shard");
  for (std::uint32_t p = 0; p < config_.peers; ++p) {
    up_.push_back(add_input("up" + std::to_string(p)));
    down_.push_back(add_output("down" + std::to_string(p)));
  }
  for (std::uint32_t m = 0; m < config_.shards; ++m) {
    tx_.push_back(add_output("tx" + std::to_string(m)));
    rx_.push_back(add_input("rx" + std::to_string(m)));
  }
}

void ShardFrontend::on_receive(PortIndex port, const Value& value) {
  if (port >= rx_.front()) {
    // Shard reply: route back to the peer hosting the tagged client.
    const ResponseSummary summary = decode_response_summary(value.as_packet());
    const std::uint32_t peer = summary.client / config_.clients_per_peer;
    PIA_CHECK(peer < config_.peers, "reply for an unknown peer");
    ++routed_replies_;
    send(down_[peer], value);
    return;
  }
  // Request: route by the shard that owns the URL — the same partition
  // function the shards used to split the catalog.
  const TaggedRequest tagged = decode_tagged_request(value.as_packet());
  const std::uint32_t m = dist::shard_of_key(tagged.request.url, config_.shards);
  ++routed_requests_;
  send(tx_[m], value);
}

void ShardFrontend::save_state(serial::OutArchive& ar) const {
  ar.put_varint(routed_requests_);
  ar.put_varint(routed_replies_);
}

void ShardFrontend::restore_state(serial::InArchive& ar) {
  routed_requests_ = ar.get_varint();
  routed_replies_ = ar.get_varint();
}

// ---------------------------------------------------------------------------
// ShardGateway
// ---------------------------------------------------------------------------

ShardGateway::ShardGateway(std::string name, Config config)
    : Component(std::move(name)), config_(std::move(config)) {
  rx_ = add_input("rx");
  tx_ = add_output("tx");
  // Build the hash partition: this shard owns exactly the catalog entries
  // the shared partition function maps here.  Replies are precomputed —
  // serving is then a pure lookup, independent of request arrival order.
  for (std::uint32_t rank = 0;
       rank < static_cast<std::uint32_t>(config_.catalog.pages); ++rank) {
    const std::string url = page_url(rank);
    if (dist::shard_of_key(url, config_.shards) != config_.shard) continue;
    const HttpResponse page = make_page(catalog_page_spec(config_.catalog, rank));
    Entry entry;
    entry.summary =
        ResponseSummary{.client = 0,
                        .status = page.status,
                        .url = url,
                        .body_bytes = page.body.size(),
                        .images = static_cast<std::uint32_t>(page.images.size()),
                        .body_hash = fnv1a(page.body)};
    const auto kb = static_cast<VirtualTime::rep>((page.body.size() + 1023) / 1024);
    entry.service = config_.service_base +
                    ticks(config_.service_per_kb.ticks() * kb);
    pages_.emplace(url, std::move(entry));
  }
}

void ShardGateway::on_receive(PortIndex, const Value& value) {
  const TaggedRequest tagged = decode_tagged_request(value.as_packet());
  const auto it = pages_.find(tagged.request.url);
  PIA_CHECK(it != pages_.end(),
            "request for '" + tagged.request.url +
                "' mis-routed to shard " + std::to_string(config_.shard));
  ++served_;
  ResponseSummary summary = it->second.summary;
  summary.client = tagged.client;
  // Stamp the reply at delivery + service via extra_delay — a pure function
  // of the request, never of this component's own clock.
  send(tx_, Value::packet(encode_response_summary(summary)),
       it->second.service);
}

void ShardGateway::save_state(serial::OutArchive& ar) const {
  ar.put_varint(served_);
}

void ShardGateway::restore_state(serial::InArchive& ar) {
  served_ = ar.get_varint();
}

// ---------------------------------------------------------------------------
// Shared graph pieces
// ---------------------------------------------------------------------------

namespace {

ClientLoadGen::Config client_config(
    const ScaleoutSpec& spec,
    std::shared_ptr<const dist::ZipfSampler> popularity, std::uint32_t id) {
  return ClientLoadGen::Config{
      .client_id = id,
      .seed = spec.seed,
      .requests = spec.requests_per_client,
      .popularity = std::move(popularity),
      .think_base = spec.think_base,
      .think_spread = spec.think_spread,
      .start_spread = spec.start_spread,
  };
}

std::vector<std::uint32_t> station_clients(const ScaleoutSpec& spec,
                                           std::size_t station) {
  std::vector<std::uint32_t> ids;
  const std::size_t first = station * spec.clients_per_station;
  const std::size_t last =
      std::min(spec.clients, first + spec.clients_per_station);
  for (std::size_t i = first; i < last; ++i)
    ids.push_back(static_cast<std::uint32_t>(i));
  return ids;
}

ShardFrontend::Config frontend_config(const ScaleoutSpec& spec) {
  return ShardFrontend::Config{
      .peers = static_cast<std::uint32_t>(
          spec.aggregated ? spec.stations() : spec.clients),
      .shards = spec.shards,
      .clients_per_peer = static_cast<std::uint32_t>(
          spec.aggregated ? spec.clients_per_station : 1),
  };
}

ShardGateway::Config shard_config(const ScaleoutSpec& spec, std::uint32_t m) {
  return ShardGateway::Config{
      .shard = m,
      .shards = spec.shards,
      .catalog = spec.catalog,
      .service_base = spec.service_base,
      .service_per_kb = spec.service_per_kb,
  };
}

std::uint64_t collect(const std::vector<ClientLoadGen*>& clients,
                      ScaleoutResult& result) {
  std::uint64_t total = 0;
  result.fetches.clear();
  result.fetches.reserve(clients.size());
  for (const ClientLoadGen* c : clients) {
    result.fetches.push_back(c->fetches());
    total += c->fetches().size();
  }
  return total;
}

}  // namespace

std::uint64_t ScaleoutResult::total_fetches() const {
  std::uint64_t n = 0;
  for (const auto& per_client : fetches) n += per_client.size();
  return n;
}

std::uint64_t ScaleoutResult::total_bytes() const {
  std::uint64_t n = 0;
  for (const auto& per_client : fetches)
    for (const Fetch& f : per_client) n += f.body_bytes;
  return n;
}

// ---------------------------------------------------------------------------
// Single-host oracle
// ---------------------------------------------------------------------------

ScaleoutResult run_single_host(const ScaleoutSpec& spec, VirtualTime horizon) {
  Scheduler sched("scaleout");
  auto popularity = std::make_shared<const dist::ZipfSampler>(
      spec.catalog.pages, spec.zipf_exponent);

  std::vector<ClientLoadGen*> clients;
  for (std::size_t i = 0; i < spec.clients; ++i)
    clients.push_back(&sched.emplace<ClientLoadGen>(
        "client" + std::to_string(i),
        client_config(spec, popularity, static_cast<std::uint32_t>(i))));

  ShardFrontend& frontend =
      sched.emplace<ShardFrontend>("frontend", frontend_config(spec));

  std::vector<ShardGateway*> shards;
  for (std::uint32_t m = 0; m < spec.shards; ++m)
    shards.push_back(&sched.emplace<ShardGateway>(
        "shard" + std::to_string(m), shard_config(spec, m)));

  if (spec.aggregated) {
    std::vector<StationMux*> stations;
    for (std::size_t s = 0; s < spec.stations(); ++s)
      stations.push_back(&sched.emplace<StationMux>(
          "station" + std::to_string(s),
          StationMux::Config{.clients = station_clients(spec, s)}));
    for (std::size_t i = 0; i < spec.clients; ++i) {
      const std::size_t s = i / spec.clients_per_station;
      const std::size_t k = i % spec.clients_per_station;
      sched.connect(clients[i]->id(), "req", stations[s]->id(),
                    "up" + std::to_string(k), spec.uplink);
      sched.connect(stations[s]->id(), "down" + std::to_string(k),
                    clients[i]->id(), "resp", spec.downlink);
    }
    for (std::size_t s = 0; s < stations.size(); ++s) {
      sched.connect(stations[s]->id(), "tx", frontend.id(),
                    "up" + std::to_string(s), spec.backhaul);
      sched.connect(frontend.id(), "down" + std::to_string(s),
                    stations[s]->id(), "rx", spec.backhaul);
    }
  } else {
    // The baseline folds the station hop into its direct nets, so both
    // layouts share one end-to-end virtual timing.
    for (std::size_t i = 0; i < spec.clients; ++i) {
      sched.connect(clients[i]->id(), "req", frontend.id(),
                    "up" + std::to_string(i), spec.uplink + spec.backhaul);
      sched.connect(frontend.id(), "down" + std::to_string(i),
                    clients[i]->id(), "resp", spec.backhaul + spec.downlink);
    }
  }
  for (std::uint32_t m = 0; m < spec.shards; ++m) {
    sched.connect(frontend.id(), "tx" + std::to_string(m), shards[m]->id(),
                  "rx", spec.fanout);
    sched.connect(shards[m]->id(), "tx", frontend.id(),
                  "rx" + std::to_string(m), spec.fanout);
  }

  sched.init();
  if (horizon.is_infinite())
    sched.run();
  else
    sched.run_until(horizon);

  ScaleoutResult result;
  collect(clients, result);
  result.events_dispatched = sched.stats().events_dispatched;
  return result;
}

// ---------------------------------------------------------------------------
// Distributed deployment
// ---------------------------------------------------------------------------

void raise_fd_limit() {
  rlimit limit{};
  if (getrlimit(RLIMIT_NOFILE, &limit) == 0 &&
      limit.rlim_cur < limit.rlim_max) {
    limit.rlim_cur = limit.rlim_max;
    (void)setrlimit(RLIMIT_NOFILE, &limit);
  }
}

ScaleoutCluster::ScaleoutCluster(const ScaleoutSpec& spec) : spec_(spec) {
  static std::once_flag fd_once;
  std::call_once(fd_once, raise_fd_limit);

  auto popularity = std::make_shared<const dist::ZipfSampler>(
      spec_.catalog.pages, spec_.zipf_exponent);

  // Clients (and their stations) pool on one edge node — their channels ride
  // the SPSC upgrade.  The frontend sits on a core node and each gateway
  // shard gets its own node, reached over cross-node loopback — exactly the
  // tree a multi-host deployment shards into.  The interconnection rule
  // (dist/topology.hpp) keeps this a tree: that is what makes conservative
  // self-restriction removal exact, and the frontend is where the per-client
  // vs aggregated fan-in cost concentrates.
  dist::PiaNode& edge = cluster_.add_node("edge");
  edge.set_worker_threads(spec_.worker_threads);
  dist::PiaNode& core = cluster_.add_node("core");
  core.set_worker_threads(spec_.worker_threads > 0 ? 1 : 0);
  const std::size_t replicas =
      std::max<std::size_t>(std::size_t{1}, spec_.shard_replicas);
  std::vector<dist::PiaNode*> shard_nodes;  // [m * replicas + k]
  for (std::uint32_t m = 0; m < spec_.shards; ++m) {
    for (std::size_t k = 0; k < replicas; ++k) {
      // Replica members get their own nodes: ReplicaSet placement is
      // anti-affine, one clone per failure domain.
      std::string name = "shardnode" + std::to_string(m);
      if (replicas > 1) name += "r" + std::to_string(k);
      shard_nodes.push_back(&cluster_.add_node(name));
      shard_nodes.back()->set_worker_threads(spec_.worker_threads > 0 ? 1 : 0);
    }
  }

  std::vector<dist::Subsystem*> client_ss;
  for (std::size_t i = 0; i < spec_.clients; ++i) {
    dist::Subsystem& ss = edge.add_subsystem("client" + std::to_string(i));
    ss.set_channel_batch_limit(spec_.batch_limit);
    clients_.push_back(&ss.scheduler().emplace<ClientLoadGen>(
        "client" + std::to_string(i),
        client_config(spec_, popularity, static_cast<std::uint32_t>(i))));
    client_ss.push_back(&ss);
    subsystems_.push_back(&ss);
  }

  dist::Subsystem& frontend_ss = core.add_subsystem("frontend");
  frontend_ss.set_channel_batch_limit(spec_.batch_limit);
  frontend_ = &frontend_ss.scheduler().emplace<ShardFrontend>(
      "frontend", frontend_config(spec_));
  frontend_ss_ = &frontend_ss;
  subsystems_.push_back(&frontend_ss);

  std::vector<std::vector<dist::Subsystem*>> shard_ss;  // [shard][member]
  for (std::uint32_t m = 0; m < spec_.shards; ++m) {
    shard_ss.emplace_back();
    shard_members_.emplace_back();
    for (std::size_t k = 0; k < replicas; ++k) {
      // Every member of a shard runs the identical deterministic config;
      // only the instance name differs.  The logical shard name is the
      // ReplicaSet's ("shard<m>"), so members get an r<k> suffix.
      std::string name = "shard" + std::to_string(m);
      if (replicas > 1) name += "r" + std::to_string(k);
      dist::Subsystem& ss =
          shard_nodes[m * replicas + k]->add_subsystem(name);
      ss.set_channel_batch_limit(spec_.batch_limit);
      shard_members_.back().push_back(&ss.scheduler().emplace<ShardGateway>(
          name, shard_config(spec_, m)));
      shard_ss.back().push_back(&ss);
      subsystems_.push_back(&ss);
    }
    shards_.push_back(shard_members_.back().front());
  }

  Scheduler& fs = frontend_ss.scheduler();
  std::size_t chan = 0;  // creation index, drives the mode cycle

  if (spec_.aggregated) {
    std::vector<dist::Subsystem*> station_ss;
    for (std::size_t s = 0; s < spec_.stations(); ++s) {
      dist::Subsystem& ss = edge.add_subsystem("station" + std::to_string(s));
      ss.set_channel_batch_limit(spec_.batch_limit);
      stations_.push_back(&ss.scheduler().emplace<StationMux>(
          "station" + std::to_string(s),
          StationMux::Config{.clients = station_clients(spec_, s)}));
      station_ss.push_back(&ss);
      subsystems_.push_back(&ss);
    }

    for (std::size_t i = 0; i < spec_.clients; ++i) {
      const std::size_t s = i / spec_.clients_per_station;
      const std::size_t k = i % spec_.clients_per_station;
      Scheduler& cs = client_ss[i]->scheduler();
      Scheduler& st = station_ss[s]->scheduler();
      const dist::ChannelPair pair = cluster_.connect_checked(
          *client_ss[i], *station_ss[s], spec_.mode_at(chan++));

      const NetId up_c = cs.make_net("up", spec_.uplink);
      cs.attach(up_c, clients_[i]->id(), "req");
      const NetId up_s = st.make_net("up" + std::to_string(i));
      st.attach(up_s, stations_[s]->id(), "up" + std::to_string(k));
      dist::split_net(*client_ss[i], pair.a, up_c, *station_ss[s], pair.b,
                      up_s);

      const NetId down_s = st.make_net("down" + std::to_string(i),
                                       spec_.downlink);
      st.attach(down_s, stations_[s]->id(), "down" + std::to_string(k));
      const NetId down_c = cs.make_net("down");
      cs.attach(down_c, clients_[i]->id(), "resp");
      dist::split_net(*station_ss[s], pair.b, down_s, *client_ss[i], pair.a,
                      down_c);

      client_ss[i]->set_lookahead(pair.a, spec_.uplink);
      client_ss[i]->set_reaction_lookahead(pair.a, spec_.think_base);
      station_ss[s]->set_lookahead(pair.b, spec_.downlink);
      station_ss[s]->set_reaction_lookahead(
          pair.b, spec_.backhaul + spec_.fanout + spec_.service_base +
                      spec_.fanout + spec_.backhaul);
      ++channel_count_;
    }

    for (std::size_t s = 0; s < station_ss.size(); ++s) {
      Scheduler& st = station_ss[s]->scheduler();
      const dist::ChannelPair pair = cluster_.connect_checked(
          *station_ss[s], frontend_ss, spec_.mode_at(chan++));

      const NetId tx_s = st.make_net("tx", spec_.backhaul);
      st.attach(tx_s, stations_[s]->id(), "tx");
      const NetId up_f = fs.make_net("up" + std::to_string(s));
      fs.attach(up_f, frontend_->id(), "up" + std::to_string(s));
      dist::split_net(*station_ss[s], pair.a, tx_s, frontend_ss, pair.b, up_f);

      const NetId down_f = fs.make_net("down" + std::to_string(s),
                                       spec_.backhaul);
      fs.attach(down_f, frontend_->id(), "down" + std::to_string(s));
      const NetId rx_s = st.make_net("rx");
      st.attach(rx_s, stations_[s]->id(), "rx");
      dist::split_net(frontend_ss, pair.b, down_f, *station_ss[s], pair.a,
                      rx_s);

      station_ss[s]->set_lookahead(pair.a, spec_.backhaul);
      station_ss[s]->set_reaction_lookahead(
          pair.a, spec_.downlink + spec_.think_base + spec_.uplink);
      frontend_ss.set_lookahead(pair.b, spec_.backhaul);
      frontend_ss.set_reaction_lookahead(
          pair.b, spec_.fanout + spec_.service_base + spec_.fanout);
      ++channel_count_;
    }
  } else {
    for (std::size_t i = 0; i < spec_.clients; ++i) {
      Scheduler& cs = client_ss[i]->scheduler();
      const dist::ChannelPair pair = cluster_.connect_checked(
          *client_ss[i], frontend_ss, spec_.mode_at(chan++));

      const NetId up_c = cs.make_net("up", spec_.uplink + spec_.backhaul);
      cs.attach(up_c, clients_[i]->id(), "req");
      const NetId up_f = fs.make_net("up" + std::to_string(i));
      fs.attach(up_f, frontend_->id(), "up" + std::to_string(i));
      dist::split_net(*client_ss[i], pair.a, up_c, frontend_ss, pair.b, up_f);

      const NetId down_f = fs.make_net("down" + std::to_string(i),
                                       spec_.backhaul + spec_.downlink);
      fs.attach(down_f, frontend_->id(), "down" + std::to_string(i));
      const NetId down_c = cs.make_net("down");
      cs.attach(down_c, clients_[i]->id(), "resp");
      dist::split_net(frontend_ss, pair.b, down_f, *client_ss[i], pair.a,
                      down_c);

      client_ss[i]->set_lookahead(pair.a, spec_.uplink + spec_.backhaul);
      client_ss[i]->set_reaction_lookahead(pair.a, spec_.think_base);
      frontend_ss.set_lookahead(pair.b, spec_.backhaul + spec_.downlink);
      frontend_ss.set_reaction_lookahead(
          pair.b, spec_.fanout + spec_.service_base + spec_.fanout);
      ++channel_count_;
    }
  }

  for (std::uint32_t m = 0; m < spec_.shards; ++m) {
    if (replicas == 1) {
      Scheduler& sh = shard_ss[m][0]->scheduler();
      const dist::ChannelPair pair = cluster_.connect_checked(
          frontend_ss, *shard_ss[m][0], spec_.mode_at(chan++));

      const NetId tx_f = fs.make_net("tx" + std::to_string(m), spec_.fanout);
      fs.attach(tx_f, frontend_->id(), "tx" + std::to_string(m));
      const NetId rx_m = sh.make_net("rx");
      sh.attach(rx_m, shards_[m]->id(), "rx");
      dist::split_net(frontend_ss, pair.a, tx_f, *shard_ss[m][0], pair.b,
                      rx_m);

      const NetId tx_m = sh.make_net("tx", spec_.fanout);
      sh.attach(tx_m, shards_[m]->id(), "tx");
      const NetId rx_f = fs.make_net("rx" + std::to_string(m));
      fs.attach(rx_f, frontend_->id(), "rx" + std::to_string(m));
      dist::split_net(*shard_ss[m][0], pair.b, tx_m, frontend_ss, pair.a,
                      rx_f);

      frontend_ss.set_lookahead(pair.a, spec_.fanout);
      frontend_ss.set_reaction_lookahead(
          pair.a, spec_.downlink + spec_.think_base + spec_.uplink);
      shard_ss[m][0]->set_lookahead(pair.b, spec_.fanout);
      shard_ss[m][0]->set_reaction_lookahead(pair.b, spec_.service_base);
      ++channel_count_;
      continue;
    }

    // Replicated: the K clones form ONE logical channel to the frontend —
    // sends fan out to every live member, replies dedup down to a single
    // stream, and a member crash promotes a survivor with zero rollback.
    auto set = std::make_unique<dist::ReplicaSet>("shard" + std::to_string(m));
    for (std::size_t k = 0; k < replicas; ++k) set->add_member(*shard_ss[m][k]);

    std::vector<transport::FaultPlan> member_faults;
    const ScaleoutSpec::ReplicaKill& kill = spec_.replica_kill;
    if (kill.frames > 0 && kill.shard == m) {
      member_faults.resize(replicas);
      // Endpoint 2 is the member side of each sub-link: the clone's wire
      // dies and the group side survives to detect it and promote.
      member_faults.at(kill.member) =
          transport::FaultPlan::crash_at(kill.seed, kill.frames, 2);
    }

    (void)spec_.mode_at(chan++);  // keep the mode cycle aligned with K == 1
    const dist::ReplicaSet::Channel rchan = dist::connect_replicated_checked(
        cluster_, frontend_ss, *set, dist::ChannelMode::kConservative,
        dist::Wire::kLoopback, {}, std::move(member_faults));

    const NetId tx_f = fs.make_net("tx" + std::to_string(m), spec_.fanout);
    fs.attach(tx_f, frontend_->id(), "tx" + std::to_string(m));
    NetId rx_m{};
    NetId tx_m{};
    for (std::size_t k = 0; k < replicas; ++k) {
      // Clones create their nets in the same order, so the NetIds (and the
      // per-channel export indices) line up across the whole set.
      Scheduler& sh = shard_ss[m][k]->scheduler();
      rx_m = sh.make_net("rx");
      sh.attach(rx_m, shard_members_[m][k]->id(), "rx");
      tx_m = sh.make_net("tx", spec_.fanout);
      sh.attach(tx_m, shard_members_[m][k]->id(), "tx");
    }
    set->export_net(frontend_ss, rchan, tx_f, rx_m);

    const NetId rx_f = fs.make_net("rx" + std::to_string(m));
    fs.attach(rx_f, frontend_->id(), "rx" + std::to_string(m));
    set->export_net(frontend_ss, rchan, rx_f, tx_m);

    frontend_ss.set_lookahead(rchan.peer, spec_.fanout);
    frontend_ss.set_reaction_lookahead(
        rchan.peer, spec_.downlink + spec_.think_base + spec_.uplink);
    for (std::size_t k = 0; k < replicas; ++k) {
      shard_ss[m][k]->set_lookahead(rchan.members[k], spec_.fanout);
      shard_ss[m][k]->set_reaction_lookahead(rchan.members[k],
                                             spec_.service_base);
    }
    replica_sets_.push_back(std::move(set));
    ++channel_count_;
  }

  cluster_.start_all();
}

std::map<std::string, dist::Subsystem::RunOutcome> ScaleoutCluster::run(
    const dist::Subsystem::RunConfig& config) {
  return cluster_.run_all(config);
}

ScaleoutResult ScaleoutCluster::result() const {
  ScaleoutResult result;
  collect(clients_, result);
  result.events_dispatched = events_dispatched();
  return result;
}

dist::SubsystemStats ScaleoutCluster::total_stats() const {
  dist::SubsystemStats total;
  for (const dist::Subsystem* ss : subsystems_) {
    const dist::SubsystemStats s = ss->stats();
    total.events_sent += s.events_sent;
    total.events_received += s.events_received;
    total.grants_sent += s.grants_sent;
    total.grants_received += s.grants_received;
    total.requests_sent += s.requests_sent;
    total.stalls += s.stalls;
    total.rollbacks += s.rollbacks;
    total.retracts_sent += s.retracts_sent;
    total.retracts_received += s.retracts_received;
    total.checkpoints += s.checkpoints;
    total.marks_received += s.marks_received;
  }
  return total;
}

dist::SubsystemStats ScaleoutCluster::frontend_stats() const {
  return frontend_ss_->stats();
}

std::uint64_t ScaleoutCluster::events_dispatched() const {
  std::uint64_t total = 0;
  for (const dist::Subsystem* ss : subsystems_)
    total += ss->scheduler().stats().events_dispatched;
  return total;
}

}  // namespace pia::wubbleu
