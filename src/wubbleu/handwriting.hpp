// Handwriting recognition (paper §4: "Handwriting recognition software" is
// one of the IP blocks a WubbleU implementation can contain).
//
// The user enters URLs with a stylus.  A stroke is a polyline of (x, y)
// samples; the recognizer extracts rotation/scale-tolerant features —
// an 8-bin direction histogram, net displacement quadrant, total turning —
// and classifies against templates generated from the same canonical stroke
// alphabet used by the synthesizer.  Deterministic, self-consistent, and
// with enough arithmetic to be worth timing.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "base/bytes.hpp"

namespace pia::wubbleu {

struct StrokePoint {
  float x = 0;
  float y = 0;
};

using Stroke = std::vector<StrokePoint>;

/// Characters the recognizer knows: enough for URLs.
[[nodiscard]] const std::string& stroke_alphabet();

/// Canonical stroke for a character (throws for unknown characters).
[[nodiscard]] Stroke stroke_for_char(char c);

/// A noisy rendition of the canonical stroke (what a stylus produces).
[[nodiscard]] Stroke noisy_stroke_for_char(char c, std::uint64_t seed,
                                           float jitter = 0.01F);

[[nodiscard]] Bytes encode_stroke(const Stroke& stroke);
[[nodiscard]] Stroke decode_stroke(BytesView data);

struct StrokeFeatures {
  std::array<float, 8> direction_histogram{};
  float total_turning = 0;
  float aspect = 0;       // height / width of the bounding box
  float closure = 0;      // end-to-start distance / path length
};

[[nodiscard]] StrokeFeatures extract_features(const Stroke& stroke);

class HandwritingClassifier {
 public:
  HandwritingClassifier();

  /// Best-match character and its distance score.
  struct Result {
    char character = '?';
    float distance = 0;
  };
  [[nodiscard]] Result classify(const Stroke& stroke) const;

  /// Classification cost in processor cycles (feature extraction + match).
  [[nodiscard]] static std::uint64_t classify_cycles(std::size_t points);

 private:
  std::vector<std::pair<char, StrokeFeatures>> templates_;
};

}  // namespace pia::wubbleu
