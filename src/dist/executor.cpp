#include "dist/executor.hpp"

#include <poll.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

#ifdef __linux__
#include <pthread.h>
#include <sched.h>
#endif

#include "base/error.hpp"

namespace pia::dist {
namespace {

using Clock = std::chrono::steady_clock;

/// One pooled subsystem.  last_progress feeds the per-subsystem stall
/// clock, exactly like the local variable in the single-threaded run().
struct Entry {
  Subsystem* subsystem = nullptr;
  Clock::time_point last_progress{};
};

/// Best effort: pin the worker to one core so a scheduler thread does not
/// migrate mid-slice (cache locality for the event queue).  Failure is
/// ignored — restricted affinity masks and exotic configurations must not
/// break correctness.
void pin_to_core(std::size_t worker_index) {
#ifdef __linux__
  const unsigned cores = std::thread::hardware_concurrency();
  if (cores == 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(worker_index % cores), &set);
  (void)::pthread_setaffinity_np(::pthread_self(), sizeof(set), &set);
#else
  (void)worker_index;
#endif
}

class Pool {
 public:
  Pool(const std::vector<Subsystem*>& subsystems, std::size_t workers,
       const Subsystem::RunConfig& config)
      : config_(config),
        queues_(workers),
        remaining_(subsystems.size()) {
    // Initial placement: round-robin.  Imbalance is the steady state the
    // stealing path corrects; the initial assignment only has to be fair.
    const auto now = Clock::now();
    for (std::size_t i = 0; i < subsystems.size(); ++i)
      queues_[i % workers].push_back(Entry{subsystems[i], now});
  }

  void run_worker(std::size_t index) {
    pin_to_core(index);
    std::vector<Entry> batch;
    for (;;) {
      batch.clear();
      {
        std::unique_lock<std::mutex> lock(mutex_);
        if (done_locked()) return;
        if (queues_[index].empty() && !steal_locked(index)) {
          // Every unfinished subsystem is inside some other worker's
          // batch: nothing to run until one is requeued.
          idle_.wait_for(lock, std::chrono::milliseconds(1));
          continue;
        }
        // Take the whole queue as a batch.  While held here the entries
        // are invisible to thieves, so this worker is the only one that
        // can slice them — the ownership rule the confinement guard
        // asserts.
        batch.assign(queues_[index].begin(), queues_[index].end());
        queues_[index].clear();
      }

      bool any_progress = false;
      std::size_t kept = 0;
      for (Entry& entry : batch) {
        if (abort_.load(std::memory_order_acquire)) return;
        bool progressed = false;
        std::optional<Subsystem::RunOutcome> outcome;
        try {
          outcome = entry.subsystem->run_slice(config_, progressed);
        } catch (...) {
          fail(std::current_exception());
          return;
        }
        slices_.fetch_add(1, std::memory_order_relaxed);
        any_progress |= progressed;
        const auto now = Clock::now();
        if (progressed) entry.last_progress = now;
        if (!outcome && !progressed &&
            now - entry.last_progress > config_.stall_timeout)
          outcome = Subsystem::RunOutcome::kStalled;
        if (outcome) {
          finish(*entry.subsystem, *outcome);
          continue;
        }
        batch[kept++] = entry;
      }
      batch.resize(kept);
      if (batch.empty()) continue;

      // A fully unproductive pass: sleep on every owned channel at once.
      // A wake resets the stall clocks, mirroring the single-threaded
      // loop's treatment of wait_any() returning true.
      if (!any_progress && wait_batch(batch)) {
        const auto now = Clock::now();
        for (Entry& entry : batch) entry.last_progress = now;
      }

      {
        const std::lock_guard<std::mutex> lock(mutex_);
        for (Entry& entry : batch) queues_[index].push_back(entry);
      }
      idle_.notify_all();
    }
  }

  std::map<std::string, Subsystem::RunOutcome> take_results() {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (error_) std::rethrow_exception(error_);
    return std::move(results_);
  }

  [[nodiscard]] std::uint64_t slices() const {
    return slices_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] bool done_locked() const {
    return remaining_ == 0 || abort_.load(std::memory_order_acquire);
  }

  /// Moves half of the largest victim queue (rounded up, from the back —
  /// the entries the victim would reach last) into `index`'s queue.
  bool steal_locked(std::size_t index) {
    std::size_t victim = index;
    std::size_t best = 0;
    for (std::size_t i = 0; i < queues_.size(); ++i) {
      if (i != index && queues_[i].size() > best) {
        best = queues_[i].size();
        victim = i;
      }
    }
    if (best == 0) return false;
    auto& from = queues_[victim];
    auto& to = queues_[index];
    const std::size_t take = (best + 1) / 2;
    to.insert(to.end(), from.end() - static_cast<std::ptrdiff_t>(take),
              from.end());
    from.erase(from.end() - static_cast<std::ptrdiff_t>(take), from.end());
    steals_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  void finish(Subsystem& subsystem, Subsystem::RunOutcome outcome) {
    const std::lock_guard<std::mutex> lock(mutex_);
    results_[subsystem.name()] = outcome;
    --remaining_;
    if (remaining_ == 0) idle_.notify_all();
  }

  void fail(std::exception_ptr error) {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::move(error);
    }
    abort_.store(true, std::memory_order_release);
    idle_.notify_all();
  }

  /// One poll across every channel of every batch member.  Returns true on
  /// a possible wake (fd readiness or a decorator-held frame maturing).
  bool wait_batch(const std::vector<Entry>& batch) {
    std::vector<pollfd> fds;
    auto wait = std::chrono::milliseconds::max();
    bool clamped = false;
    for (const Entry& entry : batch) {
      ChannelSet& channels = entry.subsystem->channel_set();
      const auto hint = entry.subsystem->idle_wait_hint();
      const auto bounded = channels.prepare_wait(fds, hint);
      clamped |= bounded < hint;
      wait = std::min(wait, bounded);
    }
    if (fds.empty()) return false;
    const int wait_ms = static_cast<int>(std::clamp<std::int64_t>(
        wait.count(), 0, std::numeric_limits<int>::max()));
    const int pr = ::poll(fds.data(), fds.size(), wait_ms);
    if (pr < 0) {
      if (errno == EINTR) return true;  // retried as a spurious wake
      raise(ErrorKind::kTransport,
            std::string("executor wait poll: ") + std::strerror(errno));
    }
    return pr > 0 || clamped;
  }

  const Subsystem::RunConfig config_;
  std::mutex mutex_;
  std::condition_variable idle_;
  std::vector<std::deque<Entry>> queues_;
  std::size_t remaining_;
  std::map<std::string, Subsystem::RunOutcome> results_;
  std::exception_ptr error_;
  std::atomic<bool> abort_{false};
  std::atomic<std::uint64_t> slices_{0};
  std::atomic<std::uint64_t> steals_{0};
};

}  // namespace

NodeExecutor::NodeExecutor(std::vector<Subsystem*> subsystems,
                           std::size_t workers)
    : subsystems_(std::move(subsystems)), workers_(std::max<std::size_t>(
                                              workers, 1)) {}

std::map<std::string, Subsystem::RunOutcome> NodeExecutor::run(
    const Subsystem::RunConfig& config) {
  if (subsystems_.empty()) return {};
  // More workers than subsystems would only contend on the queues.
  const std::size_t workers = std::min(workers_, subsystems_.size());
  Pool pool(subsystems_, workers, config);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i)
    threads.emplace_back([&pool, i] { pool.run_worker(i); });
  for (auto& t : threads) t.join();
  stats_.slices += pool.slices();
  stats_.steals += pool.steals();
  return pool.take_results();  // rethrows the first worker error
}

}  // namespace pia::dist
