// ChannelSet: a subsystem's channel table plus the unified idle wait.
//
// Owning the endpoints in one object lets the subsystem idle on *all* of
// them at once: every link shares one ReadySignal (in-process queues pulse
// it) and contributes its kernel fd (sockets), so wait_any() is a single
// poll() whose wake latency is independent of the channel count.  The old
// run-loop idle path scanned the channels sequentially with a 1 ms blocking
// receive each — worst case N × 1 ms before noticing traffic on the last
// channel.
#pragma once

#include <poll.h>

#include <chrono>
#include <memory>
#include <vector>

#include "dist/channel.hpp"
#include "transport/ready.hpp"

namespace pia::dist {

class ChannelSet {
 public:
  ChannelSet();

  ChannelSet(const ChannelSet&) = delete;
  ChannelSet& operator=(const ChannelSet&) = delete;

  /// Appends an endpoint and attaches the shared readiness signal to its
  /// link.  The endpoint's position is its ChannelId value.
  void add(std::unique_ptr<ChannelEndpoint> endpoint);

  [[nodiscard]] ChannelEndpoint& at(ChannelId id);
  [[nodiscard]] const ChannelEndpoint& at(ChannelId id) const;
  [[nodiscard]] ChannelEndpoint& operator[](std::size_t i) {
    return *channels_[i];
  }
  [[nodiscard]] const ChannelEndpoint& operator[](std::size_t i) const {
    return *channels_[i];
  }
  [[nodiscard]] std::size_t size() const { return channels_.size(); }
  [[nodiscard]] bool empty() const { return channels_.empty(); }

  // Iteration yields the owning pointers so existing `c->field` loops keep
  // reading naturally.
  [[nodiscard]] auto begin() { return channels_.begin(); }
  [[nodiscard]] auto end() { return channels_.end(); }
  [[nodiscard]] auto begin() const { return channels_.begin(); }
  [[nodiscard]] auto end() const { return channels_.end(); }

  /// Swaps in a fresh link on one channel and re-attaches the shared
  /// readiness signal to it.
  void replace_link(ChannelId id, transport::LinkPtr link);

  /// Blocks until any channel may have receivable traffic (data, close, or
  /// a decorator-buffered frame maturing), or `timeout` elapses.  Returns
  /// true when woken by possible readiness — possibly spuriously; the
  /// caller's next drain pass decides.  False means the full timeout passed
  /// with no wake condition.
  bool wait_any(std::chrono::milliseconds timeout);

  /// The fan-in half of wait_any, exposed so a worker pool can sleep on the
  /// channel sets of *several* subsystems in one poll: drains this set's
  /// shared signal and appends its poll entries (the signal fd plus every
  /// kernel-backed link fd) to `fds`, returning `timeout` clamped to the
  /// earliest decorator-buffered frame release.  A return value strictly
  /// below `timeout` therefore means "a buffered frame matures then — treat
  /// its expiry as a wake".  Call order matters: drain before inspect, so a
  /// pulse racing in after this point leaves the fd readable for the poll.
  std::chrono::milliseconds prepare_wait(std::vector<pollfd>& fds,
                                         std::chrono::milliseconds timeout);

 private:
  std::vector<std::unique_ptr<ChannelEndpoint>> channels_;
  transport::ReadySignalPtr signal_;
};

/// Brackets a burst of sends: every channel holds its batch open until the
/// scope exits, so all messages one loop slice emits share a link frame.
/// Flushing from the destructor is safe — ChannelEndpoint::flush converts
/// transport failures into peer_closed instead of throwing.
class FlushHold {
 public:
  explicit FlushHold(ChannelSet& channels) : channels_(channels) {
    for (const auto& c : channels_) c->hold_flush();
  }
  ~FlushHold() {
    for (const auto& c : channels_) c->release_flush();
  }
  FlushHold(const FlushHold&) = delete;
  FlushHold& operator=(const FlushHold&) = delete;

 private:
  ChannelSet& channels_;
};

}  // namespace pia::dist
