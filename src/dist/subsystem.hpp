// Subsystem: one fragment of the design under test, with its scheduler and
// channel endpoints (paper §2.2).
//
// A Pia node contains one or more subsystems; each subsystem owns a
// Scheduler (the local timing kernel), a CheckpointManager, and a set of
// channels to peer subsystems.  The distributed time rules themselves live
// in four layered engines under dist/sync/, each owning one protocol's
// state and statistics:
//
//   * sync::ConservativeEngine (§2.2.3): safe-time grants with
//     self-restriction removal, unsolicited grant pushes (null messages),
//     the advance barrier, and the diffusing termination probe.
//
//   * sync::OptimisticEngine (§2.2.4): checkpoint cadence, rollback to the
//     newest suitable snapshot, retraction (anti-messages) with lazy
//     cancellation, and GVT-driven fossil collection.
//
//   * sync::SnapshotCoordinator (§2.2.5): Chandy–Lamport marks, channel
//     state recording, coordinated restore, and durable persistence.
//
//   * sync::RecoveryCoordinator: heartbeat liveness, the durable-image
//     format, fresh-process restore, and the post-recovery rejoin
//     handshake.
//
//   * sync::AdaptiveController: runtime conservative↔optimistic
//     renegotiation per channel, flipped atomically at a Chandy–Lamport
//     cut (see adaptive.hpp for the handshake).
//
// The facade owns the run loop, the channel message dispatch, and the
// outbound send path; engines reach shared infrastructure and each other's
// services only through sync::EngineContext, which Subsystem implements
// privately.  Aggregate SubsystemStats are assembled from the per-engine
// statistics on demand, so existing consumers (metrics export, tests) see
// the same totals as before the split.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/checkpoint.hpp"
#include "core/scheduler.hpp"
#include "dist/channel.hpp"
#include "dist/channel_set.hpp"
#include "dist/protocol.hpp"
#include "dist/snapshot_store.hpp"
#include "dist/sync/adaptive.hpp"
#include "dist/sync/conservative.hpp"
#include "dist/sync/engine_context.hpp"
#include "dist/sync/optimistic.hpp"
#include "dist/sync/recovery.hpp"
#include "dist/sync/snapshot.hpp"

namespace pia::dist {

/// The facade's own slice of the statistics: raw event traffic, counted on
/// the send/receive paths the facade owns.
struct TrafficStats {
  std::uint64_t events_sent = 0;      // EventMsgs to peers
  std::uint64_t events_received = 0;  // EventMsgs from peers
};

/// Aggregate view over the facade and all four engines.  Field-compatible
/// with the pre-split Subsystem statistics; assembled by value in
/// Subsystem::stats().
struct SubsystemStats {
  std::uint64_t events_sent = 0;        // EventMsgs to peers
  std::uint64_t events_received = 0;    // EventMsgs from peers
  std::uint64_t grants_sent = 0;
  std::uint64_t grants_received = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t stalls = 0;             // loop iterations blocked on a grant
  std::uint64_t rollbacks = 0;
  std::uint64_t retracts_sent = 0;
  std::uint64_t retracts_received = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t marks_received = 0;
  std::uint64_t mode_changes = 0;       // adaptive-sync flips applied locally
  // Crash-recovery layer.
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_received = 0;
  std::uint64_t peer_down_events = 0;    // channels declared dead
  std::uint64_t snapshots_persisted = 0; // completed CL snapshots written out
  std::uint64_t snapshot_persist_bytes = 0;
  std::uint64_t snapshots_invalidated = 0;  // durable cuts revoked by rollback
  std::uint64_t recoveries = 0;          // restores from a durable image
  std::uint64_t rejoins_verified = 0;    // rejoin handshakes cross-checked
};

class Subsystem : private sync::EngineContext {
 public:
  Subsystem(std::string name, std::uint32_t numeric_id);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint32_t numeric_id() const { return id_; }
  [[nodiscard]] Scheduler& scheduler() override { return scheduler_; }
  [[nodiscard]] const Scheduler& scheduler() const override {
    return scheduler_;
  }
  [[nodiscard]] CheckpointManager& checkpoints() override {
    return checkpoints_;
  }
  [[nodiscard]] const CheckpointManager& checkpoints() const override {
    return checkpoints_;
  }

  /// Aggregate statistics, assembled from the per-engine counters.  The
  /// totals match the pre-split flat counters field for field.
  [[nodiscard]] SubsystemStats stats() const;

  // Per-engine statistics, for consumers that want the layered view.
  [[nodiscard]] const TrafficStats& traffic_stats() const { return traffic_; }
  [[nodiscard]] const sync::ConservativeStats& conservative_stats() const {
    return conservative_.stats();
  }
  [[nodiscard]] const sync::OptimisticStats& optimistic_stats() const {
    return optimistic_.stats();
  }
  [[nodiscard]] const sync::SnapshotStats& snapshot_stats() const {
    return snapshot_.stats();
  }
  [[nodiscard]] const sync::RecoveryStats& recovery_stats() const {
    return recovery_.stats();
  }
  [[nodiscard]] const sync::AdaptiveStats& adaptive_stats() const {
    return adaptive_.stats();
  }

  // --- channel setup ---------------------------------------------------------

  /// Attaches a channel to a peer subsystem over `link`.  Creates the
  /// channel component pair member on this side.
  ChannelId add_channel(const std::string& channel_name, ChannelMode mode,
                        transport::LinkPtr link);

  [[nodiscard]] ChannelEndpoint& channel(ChannelId id);
  [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }

  /// Splits `local_net` across the channel: attaches a hidden port of the
  /// channel component to it.  Call in the same order on both subsystems so
  /// net indexes line up.  Returns the net's index in the channel table.
  std::uint32_t export_net(ChannelId channel_id, NetId local_net);

  /// Sets the batch limit (messages per link frame) on every channel, and
  /// the default applied to channels added later.  1 disables batching.
  void set_channel_batch_limit(std::uint32_t limit);

  /// Sets the horizon slack of a conservative channel (typically the
  /// minimum delay of the nets it exports).
  void set_lookahead(ChannelId channel_id, VirtualTime lookahead);
  /// Sets the reaction slack this subsystem declares on the channel: the
  /// minimum virtual time between receiving a peer event and sending
  /// anything back.  Pure sinks declare VirtualTime::infinity().
  void set_reaction_lookahead(ChannelId channel_id, VirtualTime lookahead);

  // --- checkpoint cadence (optimistic operation) -------------------------------

  void set_checkpoint_interval(std::uint64_t dispatches) {
    optimistic_.set_checkpoint_interval(dispatches);
  }
  [[nodiscard]] std::uint64_t checkpoint_interval() const {
    return optimistic_.checkpoint_interval();
  }

  // --- adaptive synchronization ---------------------------------------------------

  /// Enables measurement-driven per-channel mode renegotiation.  Off by
  /// default; a disabled subsystem still answers peers' proposals with a
  /// clean "unsupported" rejection, so enabling one side is always safe.
  void set_adaptive_sync(const sync::AdaptivePolicy& policy = {}) {
    adaptive_.enable(policy);
  }

  /// Forces a renegotiation of `channel_id` to `target` at the next slice
  /// the facade's arbitration allows (tests, operators).  Deferred — not
  /// dropped — while a rejoin or failover is in flight.
  void request_mode_change(ChannelId channel_id, ChannelMode target) {
    adaptive_.request_mode(channel_id.value(), target);
  }

  // --- runlevel coordination across channels ------------------------------------

  /// Asks the peer subsystem to switch one of ITS components.
  void send_runlevel(ChannelId channel_id, const std::string& component,
                     const RunLevel& level);

  // --- distributed snapshots ------------------------------------------------------

  /// Starts a Chandy–Lamport snapshot; returns the token identifying it
  /// across all subsystems.  (Doubles as the EngineContext service the
  /// AdaptiveController cuts its mode-flip barrier with.)
  std::uint64_t initiate_snapshot() override { return snapshot_.initiate(); }
  [[nodiscard]] bool snapshot_complete(std::uint64_t token) const {
    return snapshot_.complete(token);
  }
  /// Restores the local checkpoint of `token` plus its recorded channel
  /// state.  All subsystems must restore the same token (coordinated by the
  /// caller) for a consistent global restore.
  void restore_snapshot(std::uint64_t token) {
    snapshot_.restore(token);
    // The restore adopted the cut's recorded modes; any half-open
    // negotiation described the abandoned timeline.
    adaptive_.reset();
  }

  // --- durable snapshots / crash recovery ---------------------------------------

  /// Attaches an on-disk store: every Chandy–Lamport snapshot that
  /// completes on this subsystem is exported and committed automatically
  /// (atomic write-temp-then-rename; see SnapshotStore for the format).
  void set_snapshot_store(std::shared_ptr<SnapshotStore> store) {
    snapshot_.set_store(std::move(store));
  }
  [[nodiscard]] SnapshotStore* snapshot_store() { return snapshot_.store(); }

  /// Makes this subsystem initiate a Chandy–Lamport snapshot every N local
  /// dispatches (0 disables).  Dispatch-count cadence keeps the snapshot
  /// points deterministic per run, unlike wall-clock timers.
  void set_auto_snapshot_interval(std::uint64_t dispatches) {
    snapshot_.set_auto_interval(dispatches);
  }

  /// Serializes the completed snapshot `token` — component images, event
  /// queue, per-channel logs and the recorded in-flight channel frames —
  /// into a self-contained durable image (the SnapshotStore payload).
  [[nodiscard]] Bytes export_snapshot(std::uint64_t token) const {
    return recovery_.export_image(token);
  }

  /// Fresh-process restore: rebuilds this subsystem's entire execution
  /// state from a durable image produced by export_snapshot on an
  /// identically wired subsystem.  Must be called after start(), before
  /// run(); links are expected to be fresh (empty).  The restored subsystem
  /// resumes at the snapshot's virtual time, bit-exact with the original.
  void restore_snapshot_image(BytesView image);

  /// Announces this side of the post-recovery handshake: sends a RejoinMsg
  /// carrying `token` and the channel sequence state on every channel, and
  /// arms verification of the peer's announcement.  Counter or token
  /// mismatches raise Error{kProtocol}.
  void begin_rejoin(std::uint64_t token) { recovery_.begin_rejoin(token); }

  /// Swaps in a fresh link on one channel (reconnect path for a surviving
  /// subsystem whose peer is being restarted).
  void replace_link(ChannelId channel_id, transport::LinkPtr link) {
    recovery_.replace_link(channel_id, std::move(link));
  }

  // --- failure detection ----------------------------------------------------------

  /// Enables heartbeats on every channel: a beacon every `interval`, peer
  /// declared down after `timeout` with no traffic at all.  Disabled by
  /// default (interval zero); timeout must comfortably exceed interval.
  void set_heartbeat(std::chrono::milliseconds interval,
                     std::chrono::milliseconds timeout) {
    recovery_.set_heartbeat(interval, timeout);
  }

  // --- execution --------------------------------------------------------------------

  /// Must be called once after wiring, before the first run.  Initializes
  /// the scheduler and takes the base checkpoint optimistic rollback needs.
  void start();
  [[nodiscard]] bool started() const { return started_; }

  /// Processes every currently available channel message.  Returns true if
  /// anything was consumed.
  bool drain();

  enum class StepResult { kStepped, kBlocked, kIdle };

  /// Dispatches the next local event if the conservative grants allow it.
  StepResult try_advance(VirtualTime horizon = VirtualTime::infinity());

  struct RunConfig {
    VirtualTime horizon = VirtualTime::infinity();
    /// Give up if no progress happens for this long (deadlock guard in
    /// tests; production would wait forever).
    std::chrono::milliseconds stall_timeout{5000};
  };

  /// kDisconnected: a channel's transport failed (peer crash, abrupt
  /// close); the subsystem wound down cleanly instead of unwinding with a
  /// transport exception mid-protocol.  kPeerDown: the transport still
  /// looks open but the peer stopped sending anything (heartbeat liveness
  /// timeout) — the distributed-system failure mode kDisconnected cannot
  /// see.
  enum class RunOutcome {
    kQuiescent,
    kHorizon,
    kStalled,
    kDisconnected,
    kPeerDown,
  };

  /// The subsystem main loop: drain / advance / exchange grants and status
  /// until global quiescence is observed, the horizon is guaranteed, or no
  /// progress happens for stall_timeout.
  RunOutcome run(const RunConfig& config);
  RunOutcome run() { return run(RunConfig{}); }

  /// One cooperative slice of the main loop: drain, a bounded advance
  /// burst, grant/status push, and the exit checks — everything run() does
  /// between two idle waits.  Returns an outcome when the subsystem is
  /// finished, nullopt to keep going; `progressed` reports whether the
  /// slice consumed messages or dispatched events (the caller's idle/stall
  /// signal).  The calling thread holds the scheduler confinement for the
  /// duration of the slice, so a pool may move a subsystem between workers
  /// across slices but never run two slices concurrently.
  std::optional<RunOutcome> run_slice(const RunConfig& config,
                                      bool& progressed);

  /// How long an idle wait after an unproductive slice may sleep before
  /// protocol timers (heartbeats) need service.
  [[nodiscard]] std::chrono::milliseconds idle_wait_hint() const;

  /// The channel table, for callers that wait on several subsystems at
  /// once (dist::NodeExecutor builds one poll set across pool members).
  [[nodiscard]] ChannelSet& channel_set() { return channels_; }

  /// Host tagging (set by PiaNode::add_subsystem): lets connect() pick the
  /// mutex-free SPSC transport when both endpoints are co-scheduled on the
  /// same node.  Opaque to Subsystem itself.
  void set_host_node(const void* node) { host_node_ = node; }
  [[nodiscard]] const void* host_node() const { return host_node_; }

  /// Marks this subsystem as a member of a ReplicaSet.  Replica members
  /// never ORIGINATE termination probes — a probe floods away from its
  /// arrival channel, so one originated by a replica could confirm
  /// termination without ever consulting the sibling clones.  They still
  /// relay probes and reply.
  void set_replica_member(bool on) {
    replica_member_ = on;
    conservative_.set_originate_probes(!on);
  }

  /// Retires this subsystem from cluster-wide accounting (GVT minima).  Set
  /// by the replica failover path when this member's link group drops it:
  /// its virtual floor is frozen at the crash point and must not drag GVT.
  /// Atomic because the death is detected on the peer's runner thread.
  void set_retired() { retired_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool retired() const {
    return retired_.load(std::memory_order_relaxed);
  }

  /// True when this subsystem is locally idle and every peer reported an
  /// idle status with matched message counters (nothing in flight).
  [[nodiscard]] bool quiescent() const;

  /// Per-subsystem contribution to GVT: min(next event, unacknowledged
  /// optimistic sends).  A global GVT is the min over all subsystems, taken
  /// when no messages are in flight (see NodeCluster::compute_gvt).
  [[nodiscard]] VirtualTime local_virtual_floor() const;

  /// Discards checkpoints and log prefixes older than `gvt`.
  void fossil_collect(VirtualTime gvt) { optimistic_.fossil_collect(gvt); }

 private:
  // --- facade-owned message paths ------------------------------------------
  void handle_message(ChannelId channel_id, ChannelMessage message);
  void handle_event(ChannelId channel_id, EventMsg event);
  /// Outbound path: runs the optimistic lazy-cancellation filter, then
  /// transmits and logs the send.
  void send_or_suppress(ChannelEndpoint& endpoint, std::uint32_t net_index,
                        const Value& value, VirtualTime time);

  // --- sync::EngineContext (cross-engine service forwarding) ---------------
  [[nodiscard]] ChannelSet& channels() override { return channels_; }
  [[nodiscard]] const ChannelSet& channels() const override {
    return channels_;
  }
  [[nodiscard]] const std::string& subsystem_name() const override {
    return name_;
  }
  [[nodiscard]] std::uint32_t subsystem_id() const override { return id_; }
  void note_activity() override { conservative_.note_activity(); }
  void reset_termination() override { conservative_.reset_termination(); }
  // Termination accounting sums the per-channel counters, NOT the run-loop
  // stats: channel counters are re-based at every snapshot restore, so the
  // probe's global balance closes again after a recovery (a restarted
  // process has no stats history, and a survivor's stats keep pre-crash
  // traffic the replacement never received).
  [[nodiscard]] std::uint64_t messages_sent_total() const override {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < channels_.size(); ++i)
      total += channels_[i].event_msgs_sent + channels_[i].retract_msgs_sent;
    return total;
  }
  [[nodiscard]] std::uint64_t messages_received_total() const override {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < channels_.size(); ++i)
      total += channels_[i].event_msgs_received +
               channels_[i].retract_msgs_received;
    return total;
  }
  void flush_unregenerated(VirtualTime upto) override {
    optimistic_.flush_unregenerated(upto);
  }
  SnapshotId take_checkpoint() override {
    return optimistic_.take_checkpoint();
  }
  void reset_checkpoint_cadence() override { optimistic_.reset_cadence(); }
  [[nodiscard]] sync::SnapshotPositions positions_of(
      SnapshotId snap) const override {
    return optimistic_.positions_of(snap);
  }
  void drop_positions_after(SnapshotId snap) override {
    optimistic_.drop_positions_after(snap);
  }
  void clear_positions() override { optimistic_.clear_positions(); }
  void scrub_retracted(const sync::SnapshotPositions& positions) override {
    optimistic_.scrub_retracted(positions);
  }
  void inject_input(ChannelEndpoint& endpoint,
                    ChannelEndpoint::InputRecord& record) override {
    optimistic_.inject_input(endpoint, record);
  }
  void invalidate_snapshots_after(SnapshotId kept) override {
    snapshot_.invalidate_after(kept);
  }
  [[nodiscard]] const sync::PendingSnapshot* find_snapshot(
      std::uint64_t token) const override {
    return snapshot_.find(token);
  }
  [[nodiscard]] std::uint64_t snapshot_next_token() const override {
    return snapshot_.next_token();
  }
  void reset_snapshots(std::uint64_t next_token) override {
    snapshot_.reset(next_token);
  }
  [[nodiscard]] Bytes export_snapshot_image(
      std::uint64_t token) const override {
    return recovery_.export_image(token);
  }
  [[nodiscard]] sync::ChannelCostSample cost_sample() const override;
  [[nodiscard]] bool mode_negotiation_hold() const override {
    return adaptive_.hold();
  }
  [[nodiscard]] bool mode_change_allowed() const override;

  std::string name_;
  std::uint32_t id_;
  Scheduler scheduler_;
  CheckpointManager checkpoints_;
  ChannelSet channels_;
  const void* host_node_ = nullptr;
  std::atomic<bool> retired_{false};
  bool started_ = false;
  std::uint32_t channel_batch_limit_ = 64;
  TrafficStats traffic_;

  // Engines are constructed against *this as their EngineContext; they only
  // store the reference, so ordering after channels_ is safe.
  sync::ConservativeEngine conservative_{*this};
  sync::OptimisticEngine optimistic_{*this};
  sync::SnapshotCoordinator snapshot_{*this};
  sync::RecoveryCoordinator recovery_{*this};
  sync::AdaptiveController adaptive_{*this};
  bool replica_member_ = false;
};

}  // namespace pia::dist
