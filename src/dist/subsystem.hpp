// Subsystem: one fragment of the design under test, with its scheduler and
// channel endpoints (paper §2.2).
//
// A Pia node contains one or more subsystems; each subsystem owns a
// Scheduler (the local timing kernel), a CheckpointManager, and a set of
// channels to peer subsystems.  The subsystem drives its scheduler under the
// distributed time rules:
//
//   * Conservative channels (§2.2.3): before advancing past a peer's last
//     grant, request a safe time.  The grant we report to a requester is our
//     own horizon with all restrictions *from that requester* removed
//     (self-restriction removal), which is exact and deadlock-free because
//     the topology validator only admits forests of bidirectional edges.
//     Improved grants are also pushed unsolicited (null messages) so chains
//     of idle subsystems converge without request storms.
//
//   * Optimistic channels (§2.2.4): advance freely; checkpoint every
//     checkpoint_interval() dispatches; a straggler event or retraction
//     rolls the subsystem back to the latest suitable snapshot, retracts the
//     output messages produced after it (anti-messages) and replays logged
//     inputs.
//
//   * Chandy–Lamport snapshots (§2.2.5): a mark received (or generated)
//     triggers exactly one local checkpoint per token; events arriving on a
//     channel between the local checkpoint and that channel's mark are
//     recorded as channel state.  FIFO links make this correct.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/scheduler.hpp"
#include "dist/channel.hpp"
#include "dist/protocol.hpp"
#include "dist/snapshot_store.hpp"

namespace pia::dist {

struct SubsystemStats {
  std::uint64_t events_sent = 0;        // EventMsgs to peers
  std::uint64_t events_received = 0;    // EventMsgs from peers
  std::uint64_t grants_sent = 0;
  std::uint64_t grants_received = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t stalls = 0;             // loop iterations blocked on a grant
  std::uint64_t rollbacks = 0;
  std::uint64_t retracts_sent = 0;
  std::uint64_t retracts_received = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t marks_received = 0;
  // Crash-recovery layer.
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_received = 0;
  std::uint64_t peer_down_events = 0;    // channels declared dead
  std::uint64_t snapshots_persisted = 0; // completed CL snapshots written out
  std::uint64_t snapshot_persist_bytes = 0;
  std::uint64_t snapshots_invalidated = 0;  // durable cuts revoked by rollback
  std::uint64_t recoveries = 0;          // restores from a durable image
  std::uint64_t rejoins_verified = 0;    // rejoin handshakes cross-checked
};

class Subsystem {
 public:
  Subsystem(std::string name, std::uint32_t numeric_id);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint32_t numeric_id() const { return id_; }
  [[nodiscard]] Scheduler& scheduler() { return scheduler_; }
  [[nodiscard]] const Scheduler& scheduler() const { return scheduler_; }
  [[nodiscard]] CheckpointManager& checkpoints() { return checkpoints_; }
  [[nodiscard]] const SubsystemStats& stats() const { return stats_; }

  // --- channel setup ---------------------------------------------------------

  /// Attaches a channel to a peer subsystem over `link`.  Creates the
  /// channel component pair member on this side.
  ChannelId add_channel(const std::string& channel_name, ChannelMode mode,
                        transport::LinkPtr link);

  [[nodiscard]] ChannelEndpoint& channel(ChannelId id);
  [[nodiscard]] std::size_t channel_count() const { return channels_.size(); }

  /// Splits `local_net` across the channel: attaches a hidden port of the
  /// channel component to it.  Call in the same order on both subsystems so
  /// net indexes line up.  Returns the net's index in the channel table.
  std::uint32_t export_net(ChannelId channel_id, NetId local_net);

  /// Sets the batch limit (messages per link frame) on every channel, and
  /// the default applied to channels added later.  1 disables batching.
  void set_channel_batch_limit(std::uint32_t limit);

  /// Sets the horizon slack of a conservative channel (typically the
  /// minimum delay of the nets it exports).
  void set_lookahead(ChannelId channel_id, VirtualTime lookahead);
  /// Sets the reaction slack this subsystem declares on the channel: the
  /// minimum virtual time between receiving a peer event and sending
  /// anything back.  Pure sinks declare VirtualTime::infinity().
  void set_reaction_lookahead(ChannelId channel_id, VirtualTime lookahead);

  // --- checkpoint cadence (optimistic operation) -------------------------------

  void set_checkpoint_interval(std::uint64_t dispatches) {
    checkpoint_interval_ = dispatches;
  }
  [[nodiscard]] std::uint64_t checkpoint_interval() const {
    return checkpoint_interval_;
  }

  // --- runlevel coordination across channels ------------------------------------

  /// Asks the peer subsystem to switch one of ITS components.
  void send_runlevel(ChannelId channel_id, const std::string& component,
                     const RunLevel& level);

  // --- distributed snapshots ------------------------------------------------------

  /// Starts a Chandy–Lamport snapshot; returns the token identifying it
  /// across all subsystems.
  std::uint64_t initiate_snapshot();
  [[nodiscard]] bool snapshot_complete(std::uint64_t token) const;
  /// Restores the local checkpoint of `token` plus its recorded channel
  /// state.  All subsystems must restore the same token (coordinated by the
  /// caller) for a consistent global restore.
  void restore_snapshot(std::uint64_t token);

  // --- durable snapshots / crash recovery ---------------------------------------

  /// Attaches an on-disk store: every Chandy–Lamport snapshot that
  /// completes on this subsystem is exported and committed automatically
  /// (atomic write-temp-then-rename; see SnapshotStore for the format).
  void set_snapshot_store(std::shared_ptr<SnapshotStore> store) {
    store_ = std::move(store);
  }
  [[nodiscard]] SnapshotStore* snapshot_store() { return store_.get(); }

  /// Makes this subsystem initiate a Chandy–Lamport snapshot every N local
  /// dispatches (0 disables).  Dispatch-count cadence keeps the snapshot
  /// points deterministic per run, unlike wall-clock timers.
  void set_auto_snapshot_interval(std::uint64_t dispatches) {
    auto_snapshot_interval_ = dispatches;
  }

  /// Serializes the completed snapshot `token` — component images, event
  /// queue, per-channel logs and the recorded in-flight channel frames —
  /// into a self-contained durable image (the SnapshotStore payload).
  [[nodiscard]] Bytes export_snapshot(std::uint64_t token) const;

  /// Fresh-process restore: rebuilds this subsystem's entire execution
  /// state from a durable image produced by export_snapshot on an
  /// identically wired subsystem.  Must be called after start(), before
  /// run(); links are expected to be fresh (empty).  The restored subsystem
  /// resumes at the snapshot's virtual time, bit-exact with the original.
  void restore_snapshot_image(BytesView image);

  /// Announces this side of the post-recovery handshake: sends a RejoinMsg
  /// carrying `token` and the channel sequence state on every channel, and
  /// arms verification of the peer's announcement.  Counter or token
  /// mismatches raise Error{kProtocol}.
  void begin_rejoin(std::uint64_t token);

  /// Swaps in a fresh link on one channel (reconnect path for a surviving
  /// subsystem whose peer is being restarted).
  void replace_link(ChannelId channel_id, transport::LinkPtr link);

  // --- failure detection ----------------------------------------------------------

  /// Enables heartbeats on every channel: a beacon every `interval`, peer
  /// declared down after `timeout` with no traffic at all.  Disabled by
  /// default (interval zero); timeout must comfortably exceed interval.
  void set_heartbeat(std::chrono::milliseconds interval,
                     std::chrono::milliseconds timeout) {
    heartbeat_interval_ = interval;
    heartbeat_timeout_ = timeout;
  }

  // --- execution --------------------------------------------------------------------

  /// Must be called once after wiring, before the first run.  Initializes
  /// the scheduler and takes the base checkpoint optimistic rollback needs.
  void start();
  [[nodiscard]] bool started() const { return started_; }

  /// Processes every currently available channel message.  Returns true if
  /// anything was consumed.
  bool drain();

  enum class StepResult { kStepped, kBlocked, kIdle };

  /// Dispatches the next local event if the conservative grants allow it.
  StepResult try_advance(VirtualTime horizon = VirtualTime::infinity());

  struct RunConfig {
    VirtualTime horizon = VirtualTime::infinity();
    /// Give up if no progress happens for this long (deadlock guard in
    /// tests; production would wait forever).
    std::chrono::milliseconds stall_timeout{5000};
  };

  /// kDisconnected: a channel's transport failed (peer crash, abrupt
  /// close); the subsystem wound down cleanly instead of unwinding with a
  /// transport exception mid-protocol.  kPeerDown: the transport still
  /// looks open but the peer stopped sending anything (heartbeat liveness
  /// timeout) — the distributed-system failure mode kDisconnected cannot
  /// see.
  enum class RunOutcome {
    kQuiescent,
    kHorizon,
    kStalled,
    kDisconnected,
    kPeerDown,
  };

  /// The subsystem main loop: drain / advance / exchange grants and status
  /// until global quiescence is observed, the horizon is guaranteed, or no
  /// progress happens for stall_timeout.
  RunOutcome run(const RunConfig& config);
  RunOutcome run() { return run(RunConfig{}); }

  /// True when this subsystem is locally idle and every peer reported an
  /// idle status with matched message counters (nothing in flight).
  [[nodiscard]] bool quiescent() const;

  /// Per-subsystem contribution to GVT: min(next event, unacknowledged
  /// optimistic sends).  A global GVT is the min over all subsystems, taken
  /// when no messages are in flight (see NodeCluster::compute_gvt).
  [[nodiscard]] VirtualTime local_virtual_floor() const;

  /// Discards checkpoints and log prefixes older than `gvt`.
  void fossil_collect(VirtualTime gvt);

 private:
  struct SnapshotPositions {
    // per channel: output_log size, input injected count and lazy-replay
    // cursor at request time
    std::vector<std::size_t> out;
    std::vector<std::size_t> in;
    std::vector<std::size_t> cursor;
  };

  struct PendingSnapshot {  // Chandy–Lamport state per token
    SnapshotId local;
    std::vector<bool> mark_pending;  // per channel: still recording?
    std::vector<std::vector<EventMsg>> recorded;  // channel state
    SnapshotPositions positions;
    bool persisted = false;  // committed to the attached SnapshotStore
  };

  void handle_message(ChannelId channel_id, ChannelMessage message);
  void handle_event(ChannelId channel_id, EventMsg event);
  void handle_rejoin(ChannelId channel_id, const RejoinMsg& rejoin);
  /// Sends due heartbeats and checks liveness timeouts on every channel;
  /// true when some peer has been declared down.
  bool service_heartbeats();
  /// Commits `token` to the attached store if the snapshot just completed.
  void maybe_persist_snapshot(std::uint64_t token);
  void handle_retract(ChannelId channel_id, const RetractMsg& retract);
  void handle_mark(ChannelId channel_id, const MarkMsg& mark);
  void handle_probe(ChannelId channel_id, const ProbeMsg& probe);
  void handle_probe_reply(ChannelId channel_id, const ProbeReply& reply);
  void handle_terminate(ChannelId from, const TerminateMsg& terminate);

  /// Outbound path with lazy cancellation: a send identical to the next
  /// unconfirmed output-log entry is a regeneration and is suppressed; a
  /// divergence retracts the remaining unconfirmed tail.
  void send_or_suppress(ChannelEndpoint& endpoint, std::uint32_t net_index,
                        const Value& value, VirtualTime time);
  /// Retracts unconfirmed entries that can no longer be regenerated
  /// because execution reached `upto` (sends are monotone in time).
  void flush_unregenerated(VirtualTime upto);
  void retract_output(ChannelEndpoint& endpoint,
                      ChannelEndpoint::OutputRecord& record);

  /// Starts a termination probe round if none is outstanding.
  void maybe_start_probe();
  void inject_input(ChannelEndpoint& endpoint,
                    const ChannelEndpoint::InputRecord& record);
  /// After a restore: remove from the restored queue any event whose input
  /// record was retracted after the snapshot was taken (the snapshot may
  /// still contain it as a pending delivery).
  void scrub_retracted(const SnapshotPositions& positions);

  /// The grant we can promise `requester` right now (self-restriction
  /// removed): min over next local event and the grants peers on *other*
  /// conservative channels gave us, plus the channel lookahead.
  [[nodiscard]] VirtualTime grant_for(ChannelId requester) const;
  /// Pushes improved grants on all conservative channels (null messages).
  void push_grants();
  void push_status_if_changed();

  /// min over conservative channels of granted_in (the advance barrier).
  [[nodiscard]] VirtualTime conservative_barrier() const;

  void take_periodic_checkpoint_if_due();
  SnapshotId take_checkpoint();
  /// Rolls back so that an input event at `to_time` (at input-log position
  /// `entry_hint` on `entry_channel` if known) can be (re)applied.
  void rollback(VirtualTime to_time,
                std::optional<std::pair<ChannelId, std::size_t>> entry_hint);

  [[nodiscard]] bool has_optimistic_channel() const;

  std::string name_;
  std::uint32_t id_;
  Scheduler scheduler_;
  CheckpointManager checkpoints_;
  std::vector<std::unique_ptr<ChannelEndpoint>> channels_;
  bool started_ = false;
  std::uint32_t channel_batch_limit_ = 64;

  std::uint64_t checkpoint_interval_ = 64;
  std::uint64_t dispatches_since_checkpoint_ = 0;
  std::map<SnapshotId, SnapshotPositions> snapshot_positions_;

  std::map<std::uint64_t, PendingSnapshot> cl_snapshots_;
  std::uint64_t next_cl_token_ = 1;

  // Crash-recovery state.
  std::shared_ptr<SnapshotStore> store_;
  std::uint64_t auto_snapshot_interval_ = 0;
  std::uint64_t dispatches_since_auto_snapshot_ = 0;
  std::chrono::milliseconds heartbeat_interval_{0};  // 0 = disabled
  std::chrono::milliseconds heartbeat_timeout_{0};

  // Termination detection (diffusing probe waves).
  struct ProbeRound {
    std::uint64_t nonce = 0;
    std::size_t pending = 0;
    bool ok = true;
    std::uint64_t activity_at_start = 0;
  };
  struct RelayedProbe {
    ChannelId from;
    std::size_t pending = 0;
    bool ok = true;
  };
  std::optional<ProbeRound> my_probe_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, RelayedProbe>
      relayed_probes_;
  std::uint64_t next_probe_nonce_ = 1;
  std::uint64_t activity_counter_ = 0;  // bumps on any state-changing input
  std::uint64_t activity_at_last_failed_probe_ = UINT64_MAX;
  bool terminate_received_ = false;

  SubsystemStats stats_;
};

}  // namespace pia::dist
