// Channels and channel components (paper §2.2.1, Fig. 2).
//
// "Between each pair of communicating subsystems is a channel, across which
// all communication occurs.  Each channel is associated with a pair of dummy
// components (one on each subsystem).  Each of the hidden ports is the
// property of one of these channel components. ... Channel components are
// not self contained, rather, they are proxies for the subsystems on the
// opposite side of the channel."
//
// A net split across two subsystems becomes two local nets; each local piece
// gains a hidden inout port owned by the ChannelComponent.  Local traffic on
// the net reaches the hidden port and is forwarded over the Link as an
// EventMsg; remote EventMsgs are injected to the channel component, which
// re-drives them onto the local piece at their original timestamp.  Channel
// components have no thread of their own — they run inside the subsystem's
// scheduler like any component (the paper: they "use the subsystem's own").
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "base/ids.hpp"
#include "core/component.hpp"
#include "dist/protocol.hpp"
#include "serial/archive.hpp"
#include "serial/arena.hpp"
#include "transport/link.hpp"

namespace pia::dist {

enum class ChannelMode : std::uint8_t { kConservative, kOptimistic };

class ChannelComponent final : public Component {
 public:
  /// Callback invoked when local traffic must cross the channel.
  using OutboundFn =
      std::function<void(std::uint32_t net_index, const Value& value,
                         VirtualTime time)>;

  explicit ChannelComponent(std::string name);

  /// Registers the next split net; returns its index in the channel's
  /// split-net table and the hidden port to attach to the local net piece.
  /// Both subsystems must register split nets in the same order.
  PortIndex add_split_net();
  [[nodiscard]] std::uint32_t split_net_count() const {
    return static_cast<std::uint32_t>(hidden_ports_.size());
  }
  [[nodiscard]] PortIndex hidden_port(std::uint32_t net_index) const;

  void set_outbound(OutboundFn fn) { outbound_ = std::move(fn); }

  /// Encodes a remote event for injection onto this component's rx port.
  [[nodiscard]] static Value encode_remote(std::uint32_t net_index,
                                           const Value& value);

  /// The rx port index remote events are injected on.
  [[nodiscard]] PortIndex rx_port() const { return rx_; }

  void on_receive(PortIndex port, const Value& value) override;

 private:
  PortIndex rx_;                         // unwired input fed by the endpoint
  std::vector<PortIndex> hidden_ports_;  // one inout per split net
  OutboundFn outbound_;
};

/// One side of a channel: the Link plus all per-channel protocol state.
/// Plain data driven by the Subsystem; kept separate from ChannelComponent
/// because this state must survive rollbacks that rewind the component.
class ChannelEndpoint {
 public:
  ChannelEndpoint(std::string name, ChannelMode mode, transport::LinkPtr link,
                  std::uint32_t origin_id);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] ChannelMode mode() const { return mode_; }
  /// Fence for mode renegotiation: bumped on every set_mode().  A mode
  /// proposal carries the proposer's epoch; the peer rejects on mismatch,
  /// so a flip can never apply against a stale view of the channel.
  [[nodiscard]] std::uint64_t mode_epoch() const { return mode_epoch_; }
  /// Flips the synchronization mode.  Only the sync engines may call this,
  /// and only at a barrier (a Chandy–Lamport cut or an image restore) where
  /// no in-flight traffic straddles the two protocols.
  void set_mode(ChannelMode mode) {
    mode_ = mode;
    ++mode_epoch_;
  }
  /// Restore path: adopt a recorded (mode, epoch) pair verbatim.  Both
  /// endpoints restore from the same cut (or image of it), so adopting the
  /// recorded epoch — instead of bumping — keeps the two sides' epochs
  /// equal even when a restore lands mid-negotiation, after one endpoint
  /// flipped and before the other did.
  void restore_mode(ChannelMode mode, std::uint64_t epoch) {
    mode_ = mode;
    mode_epoch_ = epoch;
  }
  [[nodiscard]] transport::Link& link() { return *link_; }

  /// Swaps in a fresh link (reconnect after a peer crash).  Clears the
  /// failure flags and liveness timers; all protocol state (logs, counters,
  /// grants) is left untouched — the caller re-synchronizes it via the
  /// snapshot restore + rejoin handshake.
  void replace_link(transport::LinkPtr link);

  // --- outbound ------------------------------------------------------------

  /// Sends an EventMsg and appends it to the output log.  Returns its id.
  SendId send_event(std::uint32_t net_index, const Value& value,
                    VirtualTime time);
  /// Transport failures (peer crashed, link abruptly closed) do not throw:
  /// they set peer_closed so the subsystem loop can wind down with
  /// RunOutcome::kDisconnected instead of unwinding mid-protocol.
  ///
  /// Batching: while a flush hold is active (the subsystem brackets its
  /// burst phases with hold_flush/release_flush) messages accumulate into
  /// one batch frame and go out together; outside a hold each message
  /// flushes immediately, preserving the unbatched send-now semantics.
  void send_message(const ChannelMessage& message);

  /// Transmits the pending batch (if any) as one link frame.  A batch of
  /// one is sent in the bare single-message wire format.
  void flush();

  /// Defer flushing until the matching release; nests.  The subsystem holds
  /// across a scheduler burst so everything the slice emits shares a frame.
  void hold_flush() { ++flush_hold_; }
  void release_flush() {
    if (flush_hold_ > 0 && --flush_hold_ == 0) flush();
  }

  /// Messages per batch frame before an automatic flush.
  void set_batch_limit(std::uint32_t limit) {
    batch_limit_ = limit == 0 ? 1 : limit;
  }
  [[nodiscard]] std::uint32_t batch_limit() const { return batch_limit_; }
  [[nodiscard]] std::uint32_t pending_batch() const { return batch_count_; }

  /// The batch arena (capacity/epoch/shrink introspection for tests and
  /// benches).
  [[nodiscard]] const serial::FrameArena& arena() const { return arena_; }

  // --- inbound -------------------------------------------------------------

  /// Non-blocking: next decoded message, if any.  A drained closed link
  /// sets peer_closed.
  std::optional<ChannelMessage> poll();

  /// Blocking form: waits up to `timeout` for a message (served from the
  /// already-decoded inbound queue first, then the link).
  std::optional<ChannelMessage> recv_for(std::chrono::milliseconds timeout);

  /// Pulls a frame already sitting on the link into the decoded inbound
  /// queue WITHOUT delivering anything.  Keeps last_arrival honest while
  /// the subsystem sits inside a long advance burst: liveness stamping must
  /// not wait for the slice-top drain, or a busy peer judges a live sender
  /// silent (the receive-side half of the heartbeat false positive).
  void prime_inbound();

  /// Drops buffered state on both sides: the un-flushed outbound batch and
  /// the decoded-but-undelivered inbound queue.  Used when the link is
  /// replaced or a snapshot restore discards in-flight traffic.
  void discard_pending();

  /// The link failed or the peer went away; no further traffic is possible
  /// on this channel.
  bool peer_closed = false;

  // --- failure detection (heartbeats) ---------------------------------------

  /// Wall clock of the last raw arrival on this channel (any message kind).
  /// note_arrival() maintains it; the subsystem's heartbeat service compares
  /// it against the liveness timeout.
  std::chrono::steady_clock::time_point last_arrival{};
  std::chrono::steady_clock::time_point last_heartbeat_sent{};
  std::uint64_t heartbeat_seq = 0;       // next HeartbeatMsg sequence
  std::uint64_t heartbeats_received = 0;
  bool liveness_armed = false;  // timers initialized on first service pass
  /// Liveness timeout expired: the peer stopped sending ANY traffic.
  bool peer_down = false;

  void note_arrival() { last_arrival = std::chrono::steady_clock::now(); }

  // --- rejoin handshake -------------------------------------------------------

  /// Token announced by begin_rejoin(); a RejoinMsg arriving with a
  /// different token (or mismatched counters) raises Error{kProtocol}.
  std::optional<std::uint64_t> rejoin_token;
  bool rejoin_verified = false;  // peer's RejoinMsg arrived and cross-checked
  /// Counters frozen at begin_rejoin(): the peer's RejoinMsg is checked
  /// against these, not the live counters — an optimistic subsystem may
  /// legitimately resume sending before the peer's handshake frame arrives.
  std::uint64_t rejoin_sent = 0;
  std::uint64_t rejoin_received = 0;
  /// Transport-capability bitmask from the peer's RejoinMsg (kTransportShm
  /// etc.; 0 from pre-capability peers ⇒ assume the TCP baseline).  Purely
  /// informational — capability mismatch is never a handshake failure, the
  /// channel just stays on the transport it already has.
  std::uint64_t peer_transports = 0;

  // --- conservative state ----------------------------------------------------

  VirtualTime granted_in = VirtualTime::zero();   // peer's promise to us
  std::uint64_t granted_in_seen = 0;  // our sends the peer had seen then
  VirtualTime granted_in_lookahead;   // peer's declared reaction slack
  VirtualTime granted_out = VirtualTime::zero();  // our last promise to peer
  std::uint64_t granted_out_seen = 0;
  bool request_outstanding = false;
  std::uint64_t next_request_id = 1;
  /// Dedup state for safe-time requests: the (pending dispatch time,
  /// effective grant) pair the last request was sent under.  A reply that
  /// improves nothing clears request_outstanding, and without this memory
  /// the next blocked pass would fire an identical request at once —
  /// degenerating into a request/grant ping-pong storm between two pooled
  /// workers (observed: ~150 round trips per event on an 8-leaf star).
  /// Re-requesting is pointless until either value changes; liveness is
  /// preserved because push_grants() pushes every real improvement anyway.
  VirtualTime last_request_next = VirtualTime::infinity();
  VirtualTime last_request_grant = VirtualTime::infinity();

  /// EventMsg counters on this channel (grant grounding).
  std::uint64_t event_msgs_sent = 0;
  std::uint64_t event_msgs_received = 0;
  /// RetractMsg counters (termination accounting only: the probe's global
  /// send/receive balance must count every revival-capable message).  Like
  /// the event counters these are re-based at every snapshot restore — a
  /// restarted process has no engine-stat history, so the balance would
  /// otherwise never close after a recovery.
  std::uint64_t retract_msgs_sent = 0;
  std::uint64_t retract_msgs_received = 0;
  /// Entries trimmed off the front of the logs by fossil collection.
  std::uint64_t output_trimmed = 0;
  std::uint64_t input_trimmed = 0;

  /// The barrier this channel imposes: the peer's grant, clamped to the
  /// timestamp of our first send it had not yet seen plus the reaction
  /// slack it declared (CMB channel-clock grounding + lookahead).
  [[nodiscard]] VirtualTime effective_grant() const {
    if (granted_in_seen >= event_msgs_sent) return granted_in;
    if (granted_in_seen < output_trimmed) return granted_in;  // pre-GVT
    const std::size_t index =
        static_cast<std::size_t>(granted_in_seen - output_trimmed);
    if (index >= output_log.size()) return granted_in;
    return min(granted_in,
               output_log[index].time + granted_in_lookahead);
  }
  /// Horizon slack: the minimum virtual-time delay between dispatching a
  /// local event and any resulting value crossing this channel (net delays
  /// plus mandatory processing).  Added to the safe times we grant.
  VirtualTime lookahead = VirtualTime::zero();
  /// Reaction slack: the minimum virtual-time delay between RECEIVING a
  /// peer event and sending anything back across this channel.  Sent
  /// inside grants so the peer can run ahead of its unacknowledged sends;
  /// a pure sink honestly declares infinity.
  VirtualTime reaction_lookahead = VirtualTime::zero();
  /// Derived at Subsystem::start() from the net topology: false when no
  /// split net on this endpoint has a local driver besides the channel
  /// component's own hidden port, i.e. no component output can ever route
  /// an event out through this side of the channel.  Such a sink-side
  /// endpoint promises infinite safe time (the peer's advancement must not
  /// wait on our processing) — without this a forward-only pipeline runs in
  /// virtual-time lockstep, every stage throttled by its downstream.
  bool can_send_events = true;

  // --- optimistic logs --------------------------------------------------------

  struct OutputRecord {
    SendId id;
    std::uint32_t net_index;
    VirtualTime time;
    Value value;
    bool retracted = false;
  };
  struct InputRecord {
    SendId id;
    std::uint32_t net_index;
    VirtualTime time;
    Value value;
    bool retracted = false;
    /// Scheduler seq of this input's queued delivery, refreshed on every
    /// (re-)injection.  Retraction erases by seq: payload matching is
    /// ambiguous when two live sends carry identical (time, value) — a
    /// common case under hot-page load — and erasing a sibling's copy
    /// silently loses its event.
    std::uint64_t seq = 0;
  };
  std::vector<OutputRecord> output_log;
  std::vector<InputRecord> input_log;
  std::size_t injected_count = 0;  // input_log prefix already injected

  /// Lazy cancellation: output_log entries in [replay_cursor, size) were
  /// sent by a rolled-back execution and await confirmation.  A
  /// re-execution that regenerates an entry identically consumes it without
  /// resending; an entry whose send time passes unregenerated is retracted.
  std::size_t replay_cursor = 0;

  // --- counters (quiescence detection, status, GVT) ----------------------------

  std::uint64_t msgs_sent = 0;      // all non-status messages
  std::uint64_t msgs_received = 0;  // all non-status messages
  StatusMsg peer_status{};          // last status received
  bool peer_status_seen = false;
  std::uint64_t msgs_sent_at_last_status_push = UINT64_MAX;
  std::uint64_t msgs_received_at_last_status_push = UINT64_MAX;
  bool idle_at_last_status_push = false;

  // --- wiring ------------------------------------------------------------------

  ComponentId channel_component;  // the proxy living in the local scheduler
  std::vector<NetId> split_nets;  // local net piece per net index
  std::uint32_t index = 0;        // position in the owning subsystem's table

  /// SendId counter state, persisted by durable snapshots: a recovered
  /// process restarting the counter at zero would mint SendIds that collide
  /// with ids already in the peer's logs, corrupting retraction lookups.
  [[nodiscard]] std::uint64_t send_counter() const {
    return next_send_counter_;
  }
  void set_send_counter(std::uint64_t counter) {
    next_send_counter_ = counter;
  }

 private:
  /// Pops the front of the decoded inbound queue and counts it.
  ChannelMessage take_inbound();

  /// Pulls the next ready frame off the link into the decoded queue,
  /// borrowing it in place when the link supports views.  Returns false
  /// when no frame was ready.
  bool pull_frame();

  std::string name_;
  ChannelMode mode_;
  std::uint64_t mode_epoch_ = 0;
  transport::LinkPtr link_;
  std::uint32_t origin_id_;
  std::uint64_t next_send_counter_ = 0;

  // Outbound batching state.  The whole batch — a reserved header gap, then
  // per-message [length prefix][encoded message] — builds up contiguously
  // in the arena; flush() back-patches the header and hands the batch to
  // the link as one subspan, with no intermediate scratch→batch→frame
  // copies.  The arena's epoch recycling keeps the allocation warm across
  // frames and bounds the high-water mark after a burst.
  serial::FrameArena arena_;
  serial::OutArchive enc_{arena_.storage()};  // appends into the arena
  std::uint32_t batch_count_ = 0;
  std::size_t first_payload_offset_ = 0;  // bare-format start, batch of one
  std::uint32_t batch_limit_ = 64;
  std::uint32_t flush_hold_ = 0;

  std::deque<ChannelMessage> inbound_;  // decoded, not yet delivered
};

}  // namespace pia::dist
