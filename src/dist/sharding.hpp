// Shard routing and seeded workload streams for scale-out scenarios.
//
// A sharded deployment hash-partitions gateway state across M nodes; every
// party (load generators, base-station muxes, gateway shards, the
// single-host oracle) must agree on the partition function, so it lives
// here, below the wiring layers.  The same file owns the deterministic
// seed-splitting used to give each of N clients an independent RNG stream
// derived from (run seed, client id), and the Zipf sampler that shapes page
// popularity — the classic web-traffic skew, so a handful of hot pages
// dominate while the tail stays long.
//
// Everything here is pure arithmetic over explicit inputs: no clocks, no
// global state, no I/O.  That is what makes an (N, shards, workers) run
// reproducible bit-for-bit from its seed alone.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace pia::dist {

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t z) {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Derives the seed of stream `stream` from the run seed.  Streams are
/// decorrelated by double-mixing: neighbouring stream ids land in unrelated
/// regions of the SplitMix64 sequence, so client k and client k+1 never see
/// shifted copies of the same draws.
[[nodiscard]] constexpr std::uint64_t stream_seed(std::uint64_t seed,
                                                 std::uint64_t stream) {
  return mix64(seed ^ mix64(stream * 0xD6E8FEB86659FD93ULL +
                            0x2545F4914F6CDD1DULL));
}

/// FNV-1a over text keys (URLs).  Same constants as pia::fnv1a over bytes;
/// duplicated for string_view so routing never copies the key.
[[nodiscard]] constexpr std::uint64_t fnv1a_str(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

/// The partition function: which of `shards` nodes owns the key with this
/// hash.  Remixes before reducing so low-entropy hashes (short URLs differ
/// in one digit) still spread evenly.
[[nodiscard]] constexpr std::uint32_t shard_of(std::uint64_t hash,
                                               std::uint32_t shards) {
  return shards <= 1
             ? 0u
             : static_cast<std::uint32_t>(mix64(hash) % shards);
}

[[nodiscard]] constexpr std::uint32_t shard_of_key(std::string_view key,
                                                   std::uint32_t shards) {
  return shard_of(fnv1a_str(key), shards);
}

/// Zipf(s) sampler over ranks 0..items-1: P(rank r) proportional to
/// 1/(r+1)^s.  The CDF is precomputed once; sample() maps a uniform draw in
/// [0,1) through a binary search, so a shared immutable sampler serves any
/// number of client streams.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t items, double exponent);

  /// Maps u in [0,1) to a rank.  Monotone in u.
  [[nodiscard]] std::uint32_t sample(double u) const;

  /// Exact model probability of `rank`, for distribution tests.
  [[nodiscard]] double probability(std::uint32_t rank) const;

  [[nodiscard]] std::size_t items() const { return cdf_.size(); }
  [[nodiscard]] double exponent() const { return exponent_; }

 private:
  double exponent_;
  std::vector<double> cdf_;  // cdf_[r] = P(rank <= r); back() == 1.0
};

}  // namespace pia::dist
