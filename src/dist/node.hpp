// Pia nodes and clusters (paper §2, Fig. 1).
//
// "The Pia simulation system is a set of Pia nodes that can be
// interconnected through a network.  Each node contains a number of sockets
// and each socket can facilitate a connection to a design tool ... or a
// device."  A PiaNode hosts one or more subsystems and runs each on its own
// thread; channels between subsystems ride on loopback pipes when both live
// in the same process and on TCP sockets when they do not.  NodeCluster is
// the in-process harness gluing several nodes together for tests, examples
// and benches — including the coordinated GVT barrier used for fossil
// collection.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "dist/subsystem.hpp"
#include "dist/topology.hpp"
#include "obs/metrics.hpp"
#include "transport/fault.hpp"
#include "transport/latency.hpp"
#include "transport/tcp.hpp"

namespace pia::dist {

class PiaNode {
 public:
  explicit PiaNode(std::string name);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Creates a subsystem hosted on this node.
  Subsystem& add_subsystem(const std::string& subsystem_name);

  [[nodiscard]] Subsystem& subsystem(const std::string& subsystem_name);
  [[nodiscard]] std::vector<Subsystem*> subsystems();

  /// start() every subsystem (after wiring and channel setup).
  void start_all();

  /// Worker pool size for NodeCluster::run_all.  0 (the default) keeps the
  /// legacy execution exactly: one dedicated OS thread per subsystem.  Any
  /// n >= 1 runs this node's subsystems on a NodeExecutor pool of n
  /// scheduler threads with work stealing — set it to the core count to
  /// let an N-core host actually run N subsystems at once.
  void set_worker_threads(std::size_t n) { worker_threads_ = n; }
  [[nodiscard]] std::size_t worker_threads() const { return worker_threads_; }

 private:
  friend class NodeCluster;
  std::string name_;
  std::vector<std::unique_ptr<Subsystem>> subsystems_;
  std::size_t worker_threads_ = 0;
  std::uint32_t next_subsystem_id_;
  // Atomic: nodes are legitimately constructed from concurrent test/driver
  // threads, and a torn read-modify-write here would hand two nodes the
  // same subsystem id block.
  static std::atomic<std::uint32_t> next_node_seed_;
};

struct ChannelPair {
  ChannelId a;
  ChannelId b;
};

/// How the two endpoints of a channel are physically connected.
enum class Wire {
  kLoopback,  // in-process pipe (same node, or co-located nodes)
  kSpsc,      // lock-free in-process ring (co-scheduled subsystems)
  kShm,       // shared-memory byte ring, zero-copy receive (co-located)
  kTcp,       // real sockets over localhost (the "Internet" of Fig. 1)
};

/// Environment override for the shm transport (read per connect call):
///   PIA_SHM=1 / force  — upgrade every co-located channel to Wire::kShm
///   PIA_SHM=0 / forbid — map Wire::kShm requests back to the SPSC ring
/// Unset: shm is used exactly where the caller asked for it.
inline constexpr const char* kShmEnvVar = "PIA_SHM";

/// Builds a connected raw link pair for `wire` — no latency, faults or
/// loopback→SPSC upgrade applied.  connect() and the replica wiring share
/// this so every transport is constructed one way.
transport::LinkPair make_wire_pair(Wire wire);

/// Connects two subsystems with a channel.  `latency` models the wide-area
/// path and `fault` injects seed-driven wire faults (both applied in both
/// directions; fault decisions are endpoint-salted so the two directions do
/// not mirror each other).  The subsystems may live on the same node or
/// different nodes; the transport is chosen by `wire`.
ChannelPair connect(Subsystem& a, Subsystem& b, ChannelMode mode,
                    Wire wire = Wire::kLoopback,
                    transport::LatencyModel latency = {},
                    const transport::FaultPlan& fault = {});

/// Splits a logical net across a channel: `net_a` is its piece inside `a`,
/// `net_b` inside `b` (Fig. 2).  Call once per shared net, in the same order
/// as any other exports on this channel.
void split_net(Subsystem& a, ChannelId chan_a, NetId net_a, Subsystem& b,
               ChannelId chan_b, NetId net_b);

/// Collects a subsystem's counters into `registry`: SubsystemStats and
/// scheduler totals under "sub/<tag>", per-component dispatch counts under
/// "dispatch/<tag>", and every channel endpoint's protocol + link counters
/// under "chan/<tag>/<index>:<channel>".  `tag` defaults to the subsystem
/// name; pass an explicit tag when several collected subsystems share one
/// (a scenario generator stamping out N identically-named subsystems).
/// Throws Error{kConsistency} if "sub/<tag>" is already populated — silent
/// metric merging across subsystems hides real counters.
void collect_metrics(Subsystem& subsystem, obs::MetricsRegistry& registry,
                     const std::string& tag = "");

class NodeCluster {
 public:
  PiaNode& add_node(const std::string& node_name);
  [[nodiscard]] PiaNode& node(const std::string& node_name);
  [[nodiscard]] std::vector<Subsystem*> all_subsystems();

  /// Records a channel for topology validation; connect() via the cluster
  /// helper does this automatically.
  ChannelPair connect_checked(Subsystem& a, Subsystem& b, ChannelMode mode,
                              Wire wire = Wire::kLoopback,
                              transport::LatencyModel latency = {},
                              const transport::FaultPlan& fault = {});

  /// Adds an edge to the topology forest without wiring a transport —
  /// connect_replicated_checked() registers a replica group as ONE logical
  /// edge (peer <-> set name) this way, since its K member links are not
  /// forest edges of their own.
  void register_logical_channel(const std::string& a, const std::string& b);

  /// Validates topology and starts every subsystem.
  void start_all();

  /// Runs every subsystem on its own thread until each returns; returns the
  /// outcome per subsystem name.
  std::map<std::string, Subsystem::RunOutcome> run_all(
      const Subsystem::RunConfig& config);
  std::map<std::string, Subsystem::RunOutcome> run_all() {
    return run_all(Subsystem::RunConfig{});
  }

  /// Global virtual time at a drained barrier: with no runner active, keeps
  /// draining all subsystems until no channel has pending traffic, then
  /// takes the min local floor.  (A cross-process deployment would use
  /// Mattern's token algorithm instead; in-process the barrier is exact.)
  [[nodiscard]] VirtualTime compute_gvt();

  /// compute_gvt() + fossil_collect(gvt) on every subsystem.
  VirtualTime fossil_collect_all();

  [[nodiscard]] const Topology& topology() const { return topology_; }

  // --- observability ----------------------------------------------------------

  /// One metrics snapshot covering every subsystem and channel endpoint in
  /// the cluster (see collect_metrics).
  [[nodiscard]] obs::MetricsRegistry metrics();

  /// Exports the whole run as Chrome trace-event JSON, one track per
  /// subsystem — viewable in chrome://tracing or Perfetto.  Capture must
  /// have been enabled (PIA_TRACE=1 or obs::set_trace_enabled) for the
  /// tracks to hold records.
  void export_chrome_trace(const std::string& path);

 private:
  std::vector<std::unique_ptr<PiaNode>> nodes_;
  Topology topology_;
};

}  // namespace pia::dist
