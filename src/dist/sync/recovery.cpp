#include "dist/sync/recovery.hpp"

#include <algorithm>

#include "base/error.hpp"
#include "base/log.hpp"
#include "serial/archive.hpp"

namespace pia::dist::sync {

void RecoveryCoordinator::service_beacons() {
  if (heartbeat_interval_.count() <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  for (auto& cp : ctx_.channels()) {
    ChannelEndpoint& c = *cp;
    if (!c.liveness_armed) {
      // Lazy arming: timers start on the first serviced loop pass, not at
      // wiring time, so a peer's slow startup is not mistaken for death.
      c.liveness_armed = true;
      c.last_arrival = now;
      c.last_heartbeat_sent = now - heartbeat_interval_;  // beacon at once
    }
    if (now - c.last_heartbeat_sent >= heartbeat_interval_) {
      c.send_message(HeartbeatMsg{.seq = c.heartbeat_seq++});
      // The beacon must reach the wire NOW.  Inside a slice the batch
      // FlushHold defers sends to slice end, and a long slice would hold
      // the beacon past the peer's liveness timeout — the classic
      // heartbeat false positive under load.
      c.flush();
      c.last_heartbeat_sent = now;
      stats_.heartbeats_sent++;
      PIA_OBS_TRACE(ctx_.scheduler().trace(), obs::TraceKind::kHeartbeat,
                    ctx_.scheduler().now(), c.index, c.heartbeat_seq);
    }
    // The receive-side half: a burst that neither drains nor polls would
    // let last_arrival go stale and judge a live, beaconing peer silent.
    // Priming pulls waiting frames into the inbound queue (stamping the
    // arrival clock) without delivering anything out of order.
    c.prime_inbound();
  }
}

bool RecoveryCoordinator::judge_liveness() {
  if (heartbeat_interval_.count() <= 0) return false;
  const auto now = std::chrono::steady_clock::now();
  bool any_down = false;
  for (auto& cp : ctx_.channels()) {
    ChannelEndpoint& c = *cp;
    if (!c.liveness_armed) continue;
    // Silence alone is the verdict: beacons are sent (and flushed) from
    // inside the slice loop, so a live peer keeps arriving no matter how
    // loaded it is — what remains silent past the timeout is dead.
    if (!c.peer_down && heartbeat_timeout_.count() > 0 &&
        now - c.last_arrival > heartbeat_timeout_) {
      c.peer_down = true;
      stats_.peer_down_events++;
      PIA_OBS_TRACE(ctx_.scheduler().trace(), obs::TraceKind::kPeerDown,
                    ctx_.scheduler().now(), c.index);
    }
    any_down = any_down || c.peer_down;
  }
  return any_down;
}

void RecoveryCoordinator::on_heartbeat(ChannelId channel_id,
                                       const HeartbeatMsg& /*heartbeat*/) {
  // Liveness content is the arrival itself; poll() already stamped
  // last_arrival.
  stats_.heartbeats_received++;
  ctx_.channels().at(channel_id).heartbeats_received++;
}

Bytes RecoveryCoordinator::export_image(std::uint64_t token) const {
  const PendingSnapshot* pending = ctx_.find_snapshot(token);
  PIA_REQUIRE(pending != nullptr, "unknown snapshot token");
  PIA_REQUIRE(std::none_of(pending->mark_pending.begin(),
                           pending->mark_pending.end(),
                           [](bool p) { return p; }),
              "export of an incomplete distributed snapshot");
  const CheckpointManager& checkpoints = ctx_.checkpoints();
  const Scheduler& scheduler = ctx_.scheduler();
  const ChannelSet& channels = ctx_.channels();
  PIA_REQUIRE(checkpoints.contains(pending->local),
              "snapshot's local checkpoint was discarded on " +
                  ctx_.subsystem_name());

  serial::OutArchive ar;
  // Version 2: events use the compact port encoding (see Event::save).
  // Version 3: per-channel mode is the CUT-recorded (mode, epoch) pair —
  // a renegotiation completing after the cut's checkpoint must not leak
  // its flipped mode into an image of the pre-flip state.
  serial::begin_section(ar, "pia.dist.recovery", 3);
  ar.put_string(ctx_.subsystem_name());
  ar.put_varint(token);
  ar.put_varint(ctx_.snapshot_next_token());
  serial::write(ar, checkpoints.snapshot_time(pending->local));

  // Component images, matched by name at restore (ids are assigned in
  // construction order, but names make wiring mismatches loud).
  const std::vector<ComponentId> comps = scheduler.component_ids();
  ar.put_varint(comps.size());
  for (const ComponentId comp : comps) {
    ar.put_string(scheduler.component(comp).name());
    ar.put_bytes(checkpoints.snapshot_image(pending->local, comp));
  }

  // The event queue at the cut, original seqs included: replace_queue
  // raises the restoring scheduler's counter past them so replayed
  // injections keep sorting after the restored events.
  const std::vector<Event> events = checkpoints.snapshot_events(pending->local);
  ar.put_varint(events.size());
  for (const Event& e : events) e.save(ar);

  const auto put_record = [&ar](const auto& record) {
    ar.put_varint(record.id.origin);
    ar.put_varint(record.id.counter);
    ar.put_varint(record.net_index);
    serial::write(ar, record.time);
    record.value.save(ar);
    ar.put_bool(record.retracted);
  };

  ar.put_varint(channels.size());
  for (std::uint32_t i = 0; i < channels.size(); ++i) {
    const ChannelEndpoint& c = channels[i];
    ar.put_string(c.name());
    const ChannelMode cut_mode =
        i < pending->modes.size() ? pending->modes[i] : c.mode();
    const std::uint64_t cut_epoch =
        i < pending->mode_epochs.size() ? pending->mode_epochs[i]
                                        : c.mode_epoch();
    ar.put_u8(static_cast<std::uint8_t>(cut_mode));
    ar.put_varint(cut_epoch);
    const std::size_t out =
        std::min(pending->positions.out[i], c.output_log.size());
    ar.put_varint(out);
    for (std::size_t k = 0; k < out; ++k) put_record(c.output_log[k]);
    const std::size_t in =
        std::min(pending->positions.in[i], c.input_log.size());
    ar.put_varint(in);
    for (std::size_t k = 0; k < in; ++k) put_record(c.input_log[k]);
    ar.put_varint(std::min(pending->positions.cursor[i], out));
    ar.put_varint(c.output_trimmed);
    ar.put_varint(c.input_trimmed);
    ar.put_varint(c.send_counter());
    // The channel state proper: events in flight at the cut.
    const auto& recorded = pending->recorded[i];
    ar.put_varint(recorded.size());
    for (const EventMsg& event : recorded) {
      ar.put_varint(event.id.origin);
      ar.put_varint(event.id.counter);
      ar.put_varint(event.net_index);
      serial::write(ar, event.time);
      event.value.save(ar);
    }
  }
  return std::move(ar).take();
}

void RecoveryCoordinator::restore_image(BytesView image) {
  serial::InArchive ar(image);
  const std::uint32_t version =
      serial::expect_section(ar, "pia.dist.recovery");
  if (version < 1 || version > 3)
    raise(ErrorKind::kSerialization,
          "unsupported recovery image version " + std::to_string(version));
  // Version-1 images carry the old raw Event port encoding.
  const bool legacy_events = version == 1;
  const std::string owner = ar.get_string();
  if (owner != ctx_.subsystem_name())
    raise(ErrorKind::kState, "recovery image belongs to subsystem '" + owner +
                                 "', not '" + ctx_.subsystem_name() + "'");
  const std::uint64_t token = ar.get_varint();
  const std::uint64_t next_cl_token = ar.get_varint();
  const VirtualTime cut_now = serial::read<VirtualTime>(ar);

  Scheduler& scheduler = ctx_.scheduler();
  ChannelSet& channels = ctx_.channels();

  // Whatever this process did in its brief pre-restore life is void.
  ctx_.checkpoints().discard_all();
  ctx_.clear_positions();
  ctx_.reset_snapshots(next_cl_token);

  const std::uint64_t comp_count = ar.get_varint();
  if (comp_count != scheduler.component_count())
    raise(ErrorKind::kState,
          "recovery image has " + std::to_string(comp_count) +
              " components, subsystem '" + ctx_.subsystem_name() + "' has " +
              std::to_string(scheduler.component_count()));
  for (std::uint64_t k = 0; k < comp_count; ++k) {
    const std::string comp_name = ar.get_string();
    const Bytes comp_image = ar.get_bytes();
    Component* comp = scheduler.find_component(comp_name);
    if (comp == nullptr)
      raise(ErrorKind::kState,
            "recovery image names unknown component '" + comp_name + "'");
    comp->restore_image(comp_image);
  }

  const std::uint64_t event_count = ar.get_varint();
  std::vector<Event> events;
  events.reserve(event_count);
  for (std::uint64_t k = 0; k < event_count; ++k)
    events.push_back(Event::load(ar, legacy_events));
  scheduler.replace_queue(std::move(events));
  scheduler.set_now(cut_now);

  const std::uint64_t channel_count = ar.get_varint();
  if (channel_count != channels.size())
    raise(ErrorKind::kState,
          "recovery image has " + std::to_string(channel_count) +
              " channels, subsystem '" + ctx_.subsystem_name() + "' has " +
              std::to_string(channels.size()));
  SnapshotPositions prefix;  // for the retracted-delivery scrub below
  for (std::uint32_t i = 0; i < channels.size(); ++i) {
    ChannelEndpoint& c = channels[i];
    const std::string channel_name = ar.get_string();
    if (channel_name != c.name())
      raise(ErrorKind::kState, "recovery image channel '" + channel_name +
                                   "' does not match '" + c.name() + "'");
    // Adopt the image's (mode, epoch): with runtime renegotiation the
    // construction-time mode is only a default, and the cut the cluster is
    // restoring to is the authority on what was live.  The epoch is adopted
    // verbatim so both endpoints' fences stay equal (the peer restores the
    // same cut — from its own image or its in-memory snapshot of it).
    const auto mode = static_cast<ChannelMode>(ar.get_u8());
    const std::uint64_t mode_epoch = version >= 3 ? ar.get_varint() : 0;
    c.restore_mode(mode, mode_epoch);

    c.output_log.clear();
    const std::uint64_t out_count = ar.get_varint();
    c.output_log.reserve(out_count);
    for (std::uint64_t k = 0; k < out_count; ++k) {
      ChannelEndpoint::OutputRecord r;
      r.id.origin = static_cast<std::uint32_t>(ar.get_varint());
      r.id.counter = ar.get_varint();
      r.net_index = static_cast<std::uint32_t>(ar.get_varint());
      r.time = serial::read<VirtualTime>(ar);
      r.value = Value::load(ar);
      r.retracted = ar.get_bool();
      c.output_log.push_back(std::move(r));
    }
    c.input_log.clear();
    const std::uint64_t in_count = ar.get_varint();
    c.input_log.reserve(in_count);
    for (std::uint64_t k = 0; k < in_count; ++k) {
      ChannelEndpoint::InputRecord r;
      r.id.origin = static_cast<std::uint32_t>(ar.get_varint());
      r.id.counter = ar.get_varint();
      r.net_index = static_cast<std::uint32_t>(ar.get_varint());
      r.time = serial::read<VirtualTime>(ar);
      r.value = Value::load(ar);
      r.retracted = ar.get_bool();
      c.input_log.push_back(std::move(r));
    }
    c.replay_cursor = std::min<std::size_t>(ar.get_varint(),
                                            c.output_log.size());
    c.output_trimmed = ar.get_varint();
    c.input_trimmed = ar.get_varint();
    c.set_send_counter(ar.get_varint());
    // The input prefix was already injected at the cut: its undispatched
    // deliveries travel inside the restored queue.
    c.injected_count = c.input_log.size();
    prefix.out.push_back(c.output_log.size());
    prefix.in.push_back(c.input_log.size());
    prefix.cursor.push_back(c.replay_cursor);

    // The recorded channel state — events in flight at the cut — is
    // re-delivered now.  The persist gate guarantees none of them predates
    // the cut, so these injections never hit the straggler path.
    const std::uint64_t recorded_count = ar.get_varint();
    for (std::uint64_t k = 0; k < recorded_count; ++k) {
      ChannelEndpoint::InputRecord r;
      r.id.origin = static_cast<std::uint32_t>(ar.get_varint());
      r.id.counter = ar.get_varint();
      r.net_index = static_cast<std::uint32_t>(ar.get_varint());
      r.time = serial::read<VirtualTime>(ar);
      r.value = Value::load(ar);
      c.input_log.push_back(std::move(r));
      ctx_.inject_input(c, c.input_log.back());
      c.injected_count = c.input_log.size();
    }
    c.event_msgs_sent = c.output_trimmed + c.output_log.size();
    c.event_msgs_received = c.input_trimmed + c.input_log.size();
    c.retract_msgs_sent = 0;
    c.retract_msgs_received = 0;

    // Fresh process, fresh negotiation: grants, statuses and liveness all
    // restart from scratch, symmetrically with the recovering peer.
    c.granted_in = VirtualTime::zero();
    c.granted_in_seen = 0;
    c.granted_in_lookahead = VirtualTime::zero();
    c.granted_out = VirtualTime::zero();
    c.granted_out_seen = 0;
    c.request_outstanding = false;
    c.last_request_next = VirtualTime::infinity();
    c.last_request_grant = VirtualTime::infinity();
    c.peer_status_seen = false;
    c.msgs_sent = 0;
    c.msgs_received = 0;
    c.msgs_sent_at_last_status_push = UINT64_MAX;
    c.idle_at_last_status_push = false;
    c.peer_closed = false;
    c.peer_down = false;
    c.liveness_armed = false;
  }

  // Remove queued deliveries whose input record was retracted after the
  // cut (the retraction is part of the committed global state).
  ctx_.scrub_retracted(prefix);

  ctx_.reset_termination();
  ctx_.note_activity();

  // The restored cut becomes the rollback target of last resort.
  ctx_.take_checkpoint();

  stats_.recoveries++;
  PIA_OBS_TRACE(scheduler.trace(), obs::TraceKind::kRecover,
                scheduler.now(), token);
}

void RecoveryCoordinator::begin_rejoin(std::uint64_t token) {
  for (auto& cp : ctx_.channels()) {
    ChannelEndpoint& c = *cp;
    c.rejoin_token = token;
    c.rejoin_verified = false;
    // Freeze the cut's counters: execution may legitimately resume (and
    // advance the live counters) before the peer's RejoinMsg arrives.
    c.rejoin_sent = c.event_msgs_sent;
    c.rejoin_received = c.event_msgs_received;
    c.send_message(RejoinMsg{.token = token,
                             .events_sent = c.rejoin_sent,
                             .events_received = c.rejoin_received});
  }
}

void RecoveryCoordinator::on_rejoin(ChannelId channel_id,
                                    const RejoinMsg& rejoin) {
  ChannelEndpoint& c = ctx_.channels().at(channel_id);
  ctx_.note_activity();
  // Record the peer's transport capabilities first: unlike the protocol
  // version, a capability mismatch is never a handshake failure — the
  // channel just keeps the transport it already runs on (the fallback
  // ladder ends at TCP, which every peer speaks).
  c.peer_transports = rejoin.transports;
  if (rejoin.protocol != kChannelProtocolVersion)
    raise(ErrorKind::kProtocol,
          "rejoin protocol mismatch on channel '" + c.name() +
              "': peer speaks version " + std::to_string(rejoin.protocol) +
              ", local side version " +
              std::to_string(kChannelProtocolVersion));
  if (!c.rejoin_token.has_value() || *c.rejoin_token != rejoin.token)
    raise(ErrorKind::kProtocol,
          "rejoin token mismatch on channel '" + c.name() +
              "': peer restored " + std::to_string(rejoin.token) +
              ", local side " +
              (c.rejoin_token
                   ? "restored " + std::to_string(*c.rejoin_token)
                   : std::string("has no rejoin in progress")));
  // My sent-at-the-cut must be your received-at-the-cut and vice versa, or
  // the two sides restored inconsistent cuts and resuming would diverge
  // silently.  Both sides compare the counters frozen by begin_rejoin():
  // FIFO puts the peer's RejoinMsg ahead of any of its post-restore event
  // traffic, but the *local* live counters may already have moved on.
  if (rejoin.events_sent != c.rejoin_received ||
      rejoin.events_received != c.rejoin_sent)
    raise(ErrorKind::kProtocol,
          "rejoin sequence mismatch on channel '" + c.name() +
              "': peer sent " + std::to_string(rejoin.events_sent) +
              "/received " + std::to_string(rejoin.events_received) +
              ", local received " + std::to_string(c.rejoin_received) +
              "/sent " + std::to_string(c.rejoin_sent));
  c.rejoin_verified = true;
  stats_.rejoins_verified++;
}

void RecoveryCoordinator::replace_link(ChannelId channel_id,
                                       transport::LinkPtr link) {
  ctx_.channels().replace_link(channel_id, std::move(link));
}

}  // namespace pia::dist::sync
