// OptimisticEngine: Time-Warp-style rollback (paper §2.2.4).
//
// Owns the checkpoint cadence, the per-checkpoint channel-log positions,
// rollback to the newest suitable snapshot, retraction (anti-messages) with
// lazy cancellation of the unconfirmed output tail, straggler/retract input
// handling, and the GVT-driven fossil collection of logs and checkpoints.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>

#include "dist/sync/engine_context.hpp"

namespace pia::dist::sync {

struct OptimisticStats {
  std::uint64_t rollbacks = 0;
  std::uint64_t retracts_sent = 0;
  std::uint64_t retracts_received = 0;
  std::uint64_t checkpoints = 0;
};

class OptimisticEngine {
 public:
  explicit OptimisticEngine(EngineContext& ctx) : ctx_(ctx) {}

  [[nodiscard]] const OptimisticStats& stats() const { return stats_; }

  void set_checkpoint_interval(std::uint64_t dispatches) {
    checkpoint_interval_ = dispatches;
  }
  [[nodiscard]] std::uint64_t checkpoint_interval() const {
    return checkpoint_interval_;
  }
  [[nodiscard]] bool has_optimistic_channel() const;

  // --- checkpoints ---------------------------------------------------------

  /// Snapshots the scheduler plus the channel-log positions that let a
  /// rollback rewind the logs consistently.
  SnapshotId take_checkpoint();
  /// Dispatch cadence: counts one dispatch, checkpointing when the interval
  /// elapses (only meaningful with an optimistic channel attached).
  void on_dispatch();
  void reset_cadence() { dispatches_since_checkpoint_ = 0; }

  [[nodiscard]] SnapshotPositions positions_of(SnapshotId snap) const {
    return snapshot_positions_.at(snap);
  }
  void drop_positions_after(SnapshotId snap);
  void clear_positions() { snapshot_positions_.clear(); }

  // --- rollback / retraction -----------------------------------------------

  void on_retract(ChannelId channel_id, const RetractMsg& retract);

  /// Rolls back so that an input event at `to_time` (at input-log position
  /// `entry_hint` on `entry_channel` if known) can be (re)applied.
  void rollback(VirtualTime to_time,
                std::optional<std::pair<ChannelId, std::size_t>> entry_hint);

  /// Outbound lazy-cancellation filter: consumes the unconfirmed output
  /// tail left by a rollback.  Returns true when the send was an identical
  /// regeneration already held by the peer (suppress it); false when the
  /// caller must transmit.  Divergence retracts the remaining tail first.
  bool suppress_regeneration(ChannelEndpoint& endpoint,
                             std::uint32_t net_index, const Value& value,
                             VirtualTime time);

  /// Retracts unconfirmed entries that can no longer be regenerated
  /// because execution reached `upto` (sends are monotone in time).
  void flush_unregenerated(VirtualTime upto);

  /// Re-schedules a logged input (skipping tombstones).
  void inject_input(ChannelEndpoint& endpoint,
                    ChannelEndpoint::InputRecord& record);

  /// After a restore: remove from the restored queue any event whose input
  /// record was retracted after the snapshot was taken (the snapshot may
  /// still contain it as a pending delivery).
  void scrub_retracted(const SnapshotPositions& positions);

  /// Discards checkpoints and log prefixes older than `gvt`.
  void fossil_collect(VirtualTime gvt);

 private:
  void retract_output(ChannelEndpoint& endpoint,
                      ChannelEndpoint::OutputRecord& record);

  EngineContext& ctx_;
  OptimisticStats stats_;
  std::uint64_t checkpoint_interval_ = 64;
  std::uint64_t dispatches_since_checkpoint_ = 0;
  std::map<SnapshotId, SnapshotPositions> snapshot_positions_;
};

}  // namespace pia::dist::sync
