#include "dist/sync/snapshot.hpp"

#include <algorithm>

#include "base/error.hpp"
#include "base/log.hpp"

namespace pia::dist::sync {

void SnapshotCoordinator::on_dispatch() {
  if (auto_snapshot_interval_ > 0 &&
      ++dispatches_since_auto_snapshot_ >= auto_snapshot_interval_) {
    dispatches_since_auto_snapshot_ = 0;
    initiate();
  }
}

std::uint64_t SnapshotCoordinator::initiate() {
  const std::uint64_t token =
      (static_cast<std::uint64_t>(ctx_.subsystem_id()) << 32) |
      next_cl_token_++;
  PIA_OBS_TRACE(ctx_.scheduler().trace(), obs::TraceKind::kMark,
                ctx_.scheduler().now(), token, /*initiated=*/1);
  ChannelSet& channels = ctx_.channels();
  PendingSnapshot pending;
  pending.local = ctx_.take_checkpoint();
  pending.positions = ctx_.positions_of(pending.local);
  pending.mark_pending.assign(channels.size(), true);
  pending.recorded.resize(channels.size());
  record_modes(pending);
  cl_snapshots_.emplace(token, std::move(pending));
  for (auto& c : channels) c->send_message(MarkMsg{.token = token});
  maybe_persist(token);  // complete immediately when channel-less
  return token;
}

void SnapshotCoordinator::on_mark(ChannelId channel_id, const MarkMsg& mark) {
  stats_.marks_received++;
  PIA_OBS_TRACE(ctx_.scheduler().trace(), obs::TraceKind::kMark,
                ctx_.scheduler().now(), mark.token, /*initiated=*/0);
  ChannelSet& channels = ctx_.channels();
  auto it = cl_snapshots_.find(mark.token);
  if (it == cl_snapshots_.end()) {
    // First sight of this snapshot: checkpoint immediately, BEFORE
    // receiving anything else, then relay marks (paper §2.2.5).
    PendingSnapshot pending;
    pending.local = ctx_.take_checkpoint();
    pending.positions = ctx_.positions_of(pending.local);
    pending.mark_pending.assign(channels.size(), true);
    pending.recorded.resize(channels.size());
    record_modes(pending);
    // The arrival channel's state is empty: everything the peer sent before
    // its mark was already consumed (FIFO).
    pending.mark_pending[channel_id.value()] = false;
    it = cl_snapshots_.emplace(mark.token, std::move(pending)).first;
    for (auto& c : channels) c->send_message(MarkMsg{.token = mark.token});
  } else {
    it->second.mark_pending[channel_id.value()] = false;
  }
  maybe_persist(mark.token);
}

void SnapshotCoordinator::on_event_received(ChannelId channel_id,
                                            const EventMsg& event) {
  for (auto& [token, pending] : cl_snapshots_) {
    if (pending.mark_pending[channel_id.value()])
      pending.recorded[channel_id.value()].push_back(event);
  }
}

bool SnapshotCoordinator::complete(std::uint64_t token) const {
  const auto it = cl_snapshots_.find(token);
  if (it == cl_snapshots_.end()) return false;
  return std::none_of(it->second.mark_pending.begin(),
                      it->second.mark_pending.end(),
                      [](bool pending) { return pending; });
}

void SnapshotCoordinator::restore(std::uint64_t token) {
  const auto it = cl_snapshots_.find(token);
  PIA_REQUIRE(it != cl_snapshots_.end(), "unknown snapshot token");
  PIA_REQUIRE(complete(token),
              "restore of an incomplete distributed snapshot");
  const PendingSnapshot& pending = it->second;

  ctx_.checkpoints().restore(pending.local);
  ctx_.scrub_retracted(pending.positions);
  ctx_.reset_checkpoint_cadence();
  // The subsystem is live again: any previous termination consensus or
  // probe state described the discarded timeline.
  ctx_.reset_termination();
  ctx_.note_activity();
  ChannelSet& channels = ctx_.channels();
  // Anything still sitting in the links (stale grants, probe replies,
  // statuses from the abandoned timeline) must not leak into the replay.
  // Coordinated restores happen at global quiescence with no runner
  // active, so whatever is pending is stale by definition.
  for (auto& c : channels) {
    while (c->link().try_recv()) {
    }
    // ... including anything buffered inside the endpoint itself: an
    // un-flushed outbound batch or decoded-but-undelivered inbound messages.
    c->discard_pending();
  }
  ctx_.drop_positions_after(pending.local);

  for (std::uint32_t i = 0; i < channels.size(); ++i) {
    ChannelEndpoint& c = channels[i];
    // The cut is a mode barrier: a mode flip negotiated after it belongs to
    // the discarded timeline, so adopt the mode (and epoch, verbatim — both
    // sides restore from the same cut, keeping the endpoints' fences equal)
    // that was live when the cut's checkpoint was taken.
    if (i < pending.modes.size())
      c.restore_mode(pending.modes[i], pending.mode_epochs[i]);
    // Conservative promises describe the discarded future: re-negotiate.
    c.granted_in = VirtualTime::zero();
    c.granted_in_seen = 0;
    c.granted_out = VirtualTime::zero();
    c.granted_out_seen = 0;
    c.request_outstanding = false;
    c.last_request_next = VirtualTime::infinity();
    c.last_request_grant = VirtualTime::infinity();
    c.peer_status_seen = false;
    // Restart liveness from scratch: the peer may be mid-restart and the
    // old timers describe the abandoned timeline.
    c.peer_down = false;
    c.liveness_armed = false;
    // Sends and arrivals after the cut never happened, globally: peers are
    // being restored to states from before those sends.
    c.output_log.resize(
        std::min(c.output_log.size(), pending.positions.out[i]));
    c.replay_cursor =
        std::min(pending.positions.cursor[i], c.output_log.size());
    c.input_log.resize(std::min(c.input_log.size(), pending.positions.in[i]));
    c.injected_count = c.input_log.size();
    // The recorded channel state — messages in flight at the cut — is
    // re-delivered.
    for (const EventMsg& event : pending.recorded[i]) {
      c.input_log.push_back(ChannelEndpoint::InputRecord{
          .id = event.id,
          .net_index = event.net_index,
          .time = event.time,
          .value = event.value});
      ctx_.inject_input(c, c.input_log.back());
      c.injected_count = c.input_log.size();
    }
    // Re-base the event counters on the truncated logs so safe-time grants
    // index consistently on both sides after the restore; retract counters
    // restart at zero on both sides of the cut (they only feed the
    // termination balance, which needs a shared epoch, not history).
    c.event_msgs_sent = c.output_trimmed + c.output_log.size();
    c.event_msgs_received = c.input_trimmed + c.input_log.size();
    c.retract_msgs_sent = 0;
    c.retract_msgs_received = 0;
  }
}

void SnapshotCoordinator::invalidate_after(SnapshotId kept) {
  if (!store_) return;
  for (auto& [cl_token, pending] : cl_snapshots_) {
    if (!pending.persisted || !(kept < pending.local)) continue;
    store_->remove(cl_token);
    pending.persisted = false;
    stats_.snapshots_invalidated++;
  }
}

const PendingSnapshot* SnapshotCoordinator::find(std::uint64_t token) const {
  const auto it = cl_snapshots_.find(token);
  return it == cl_snapshots_.end() ? nullptr : &it->second;
}

void SnapshotCoordinator::reset(std::uint64_t next_token) {
  cl_snapshots_.clear();
  next_cl_token_ = next_token;
  dispatches_since_auto_snapshot_ = 0;
}

void SnapshotCoordinator::record_modes(PendingSnapshot& pending) const {
  const ChannelSet& channels = ctx_.channels();
  pending.modes.reserve(channels.size());
  pending.mode_epochs.reserve(channels.size());
  for (const auto& c : channels) {
    pending.modes.push_back(c->mode());
    pending.mode_epochs.push_back(c->mode_epoch());
  }
}

void SnapshotCoordinator::maybe_persist(std::uint64_t token) {
  if (!store_) return;
  const auto it = cl_snapshots_.find(token);
  if (it == cl_snapshots_.end() || it->second.persisted) return;
  if (!complete(token)) return;
  const CheckpointManager& checkpoints = ctx_.checkpoints();
  // A rollback past the cut discards its local checkpoint; the token can
  // never be persisted here, so it never becomes common across the cluster.
  if (!checkpoints.contains(it->second.local)) return;
  // A recorded in-flight event older than the cut is an optimistic
  // straggler frozen mid-flight: replaying it bit-exactly needs rollback
  // history from before the cut, which a fresh process cannot have.  Skip
  // the token; recovery simply uses an earlier common one.
  const VirtualTime cut_now = checkpoints.snapshot_time(it->second.local);
  for (const auto& recorded : it->second.recorded)
    for (const EventMsg& event : recorded)
      if (event.time < cut_now) return;
  const Bytes payload = ctx_.export_snapshot_image(token);
  store_->commit(token, payload);
  it->second.persisted = true;
  stats_.snapshots_persisted++;
  stats_.snapshot_persist_bytes += payload.size();
  PIA_OBS_TRACE(ctx_.scheduler().trace(), obs::TraceKind::kSnapshotPersist,
                ctx_.scheduler().now(), token, payload.size());
}

}  // namespace pia::dist::sync
