#include "dist/sync/adaptive.hpp"

#include "base/error.hpp"
#include "base/log.hpp"

namespace pia::dist::sync {

void AdaptiveController::request_mode(std::size_t channel, ChannelMode target) {
  ensure_watch();
  PIA_REQUIRE(channel < watch_.size(), "request_mode: no such channel");
  watch_[channel].forced = target;
}

bool AdaptiveController::flip_safe(std::size_t channel,
                                   ChannelMode target) const {
  // Flipping to optimistic is always safe: the new engine tolerates any
  // arrival order and the flip takes a fresh checkpoint to land rollbacks
  // on.  Flipping to CONSERVATIVE is only sound from a state an
  // always-conservative channel could be in, checked per endpoint:
  //
  //  (a) the local clock has not outrun the peer's standing safe-time
  //      promise (effective_grant folds in the unseen-sends clamp, so a
  //      response the peer has yet to provoke is accounted for).  A
  //      speculated-ahead receiver would otherwise see a perfectly legal
  //      post-flip event arrive "behind subsystem time" (fuzz seed 6);
  //  (b) the channel carries no live unconfirmed output tail — entries a
  //      rolled-back execution sent and lazy cancellation has not yet
  //      confirmed or retracted.  Such entries retract on divergence, and a
  //      retraction must never cross the barrier into a conservative peer.
  //
  // Both conditions are stable through the negotiation hold: dispatch is
  // blocked (no new sends, no tail growth), the clock moves only backward
  // (rollback), and arrivals the hold admits are bounded by the same
  // promises (a) checks.  An unsafe flip is deferred (forced) or rejected
  // busy (proposals), and retried once the channel drains.
  if (target != ChannelMode::kConservative) return true;
  const ChannelEndpoint& c = ctx_.channels()[channel];
  if (ctx_.scheduler().now() > c.effective_grant()) return false;
  for (std::size_t k = c.replay_cursor; k < c.output_log.size(); ++k)
    if (!c.output_log[k].retracted) return false;
  return true;
}

void AdaptiveController::tick() {
  if (holding_) {
    stats_.hold_slices++;
    return;
  }
  if (state_ != State::kIdle) return;
  ensure_watch();
  // Forced targets fire as soon as arbitration allows, bypassing the
  // measurement machinery; they are deferred (not dropped) while a rejoin,
  // a replica membership, or a down peer is in the way.
  if (ctx_.mode_change_allowed()) {
    const ChannelSet& channels = ctx_.channels();
    for (std::size_t i = 0; i < channels.size(); ++i) {
      Watch& w = watch_[i];
      if (!w.forced) continue;
      if (*w.forced == channels[i].mode() || w.never) {
        w.forced.reset();
        continue;
      }
      if (channels[i].peer_closed || channels[i].peer_down) continue;
      if (!flip_safe(i, *w.forced)) continue;  // deferred, retried next tick
      propose(i, *w.forced);
      return;
    }
  }
  if (!enabled_) return;
  if (++slice_ < policy_.window_slices) return;
  slice_ = 0;
  sample_windows();
}

void AdaptiveController::sample_windows() {
  const ChannelCostSample sample = ctx_.cost_sample();
  const std::uint64_t stalls_delta =
      sample.stalls >= prev_stalls_ ? sample.stalls - prev_stalls_ : 0;
  prev_stalls_ = sample.stalls;
  ChannelSet& channels = ctx_.channels();
  std::optional<std::size_t> candidate;
  ChannelMode candidate_target = ChannelMode::kConservative;
  for (std::size_t i = 0; i < channels.size(); ++i) {
    ChannelEndpoint& c = channels[i];
    Watch& w = watch_[i];
    const std::uint64_t events = c.event_msgs_sent + c.event_msgs_received;
    const std::uint64_t retracts =
        c.retract_msgs_sent + c.retract_msgs_received;
    const std::uint64_t msgs = c.msgs_sent + c.msgs_received;
    // Saturating deltas: restores re-base the channel counters downward.
    const std::uint64_t ev_d = events >= w.events ? events - w.events : 0;
    const std::uint64_t re_d =
        retracts >= w.retracts ? retracts - w.retracts : 0;
    const std::uint64_t ms_d = msgs >= w.msgs ? msgs - w.msgs : 0;
    w.events = events;
    w.retracts = retracts;
    w.msgs = msgs;
    if (w.cooldown > 0) {
      --w.cooldown;
      w.lean_conservative = 0;
      w.lean_optimistic = 0;
      continue;
    }
    if (w.never || w.forced || c.peer_closed || c.peer_down) continue;
    if (ev_d < policy_.min_events) {
      w.lean_conservative = 0;
      w.lean_optimistic = 0;
      continue;
    }
    if (c.mode() == ChannelMode::kOptimistic) {
      // Rollback thrash: anti-messages eating a large fraction of the
      // channel's event bandwidth.
      const bool lean =
          static_cast<double>(re_d) >
          policy_.retract_rate_hi * static_cast<double>(ev_d);
      w.lean_conservative = lean ? w.lean_conservative + 1 : 0;
      w.lean_optimistic = 0;
      if (lean && w.lean_conservative >= policy_.hysteresis && !candidate) {
        candidate = i;
        candidate_target = ChannelMode::kConservative;
      }
    } else {
      // Null-message domination: grant/request/mark traffic dwarfing the
      // events it shepherds, or the engine stalling more than it moves.
      const std::uint64_t control =
          ms_d > ev_d + re_d ? ms_d - ev_d - re_d : 0;
      const bool lean =
          static_cast<double>(control) >
              policy_.control_rate_hi * static_cast<double>(ev_d) ||
          stalls_delta > ev_d;
      w.lean_optimistic = lean ? w.lean_optimistic + 1 : 0;
      w.lean_conservative = 0;
      if (lean && w.lean_optimistic >= policy_.hysteresis && !candidate) {
        candidate = i;
        candidate_target = ChannelMode::kOptimistic;
      }
    }
  }
  if (candidate && ctx_.mode_change_allowed() &&
      flip_safe(*candidate, candidate_target))
    propose(*candidate, candidate_target);
}

void AdaptiveController::propose(std::size_t channel, ChannelMode target) {
  ChannelEndpoint& c = ctx_.channels()[channel];
  nonce_ = (static_cast<std::uint64_t>(ctx_.subsystem_id()) << 32) |
           (next_nonce_++ & 0xffffffffull);
  target_ = target;
  active_ = channel;
  state_ = State::kProposed;
  holding_ = true;
  stats_.proposals_sent++;
  PIA_TRACE("[" << ctx_.subsystem_name() << "] mode propose channel="
                << c.name() << " target="
                << (target == ChannelMode::kOptimistic ? "optimistic"
                                                       : "conservative")
                << " nonce=" << nonce_);
  c.send_message(ModeProposalMsg{.nonce = nonce_,
                                 .epoch = c.mode_epoch(),
                                 .target = static_cast<std::uint8_t>(target),
                                 .caps = kLocalSyncCaps});
}

void AdaptiveController::on_proposal(ChannelId channel_id,
                                     const ModeProposalMsg& m) {
  ensure_watch();
  ChannelEndpoint& c = ctx_.channels().at(channel_id);
  stats_.proposals_received++;
  const auto target = static_cast<ChannelMode>(m.target);
  const auto proposer = static_cast<std::uint32_t>(m.nonce >> 32);
  const auto reject = [&](std::uint8_t reason) {
    stats_.proposals_rejected++;
    c.send_message(ModeAckMsg{
        .nonce = m.nonce, .phase = 0, .accept = false, .reason = reason});
  };
  // A disabled controller still answers — with a clean "unsupported" — so a
  // peer that enabled adaptation never wedges waiting on us.
  if (!enabled_ || (m.caps & kSyncAdaptive) == 0) {
    reject(1);
    return;
  }
  // Epoch fence: the proposal was computed against a view of this channel
  // that a completed flip (or a restore) has since replaced.
  if (target == c.mode() || m.epoch != c.mode_epoch()) {
    reject(0);
    return;
  }
  if (!ctx_.mode_change_allowed() || c.peer_closed || c.peer_down) {
    reject(0);
    return;
  }
  // The proposer vouched for its own end; this end must qualify too.
  if (!flip_safe(channel_id.value(), target)) {
    reject(0);
    return;
  }
  if (state_ != State::kIdle) {
    // Crossed proposals on the same channel tie-break on the proposer id
    // baked into the nonce: the lower id's proposal wins, the higher id
    // abandons its own (whose eventual busy-reject is ignored by nonce).
    const bool yield = state_ == State::kProposed &&
                       active_ == channel_id.value() &&
                       proposer < ctx_.subsystem_id();
    if (!yield) {
      reject(0);
      return;
    }
  }
  stats_.proposals_accepted++;
  state_ = State::kAccepted;
  holding_ = true;
  active_ = channel_id.value();
  nonce_ = m.nonce;
  target_ = target;
  c.send_message(ModeAckMsg{.nonce = m.nonce, .phase = 0, .accept = true});
}

void AdaptiveController::on_ack(ChannelId channel_id, const ModeAckMsg& m) {
  ensure_watch();
  ChannelEndpoint& c = ctx_.channels().at(channel_id);
  if (m.phase == 0) {
    if (state_ != State::kProposed || m.nonce != nonce_ ||
        active_ != channel_id.value())
      return;  // stale (abandoned or post-restore) round
    if (!m.accept) {
      Watch& w = watch_[active_];
      if (m.reason == 1) {
        w.never = true;  // fixed-mode peer: stop asking on this channel
        w.forced.reset();
      } else {
        w.cooldown = policy_.cooldown_windows;
      }
      holding_ = false;
      state_ = State::kIdle;
      return;
    }
    // Agreed: the cut is the barrier.  Its marker floods every channel;
    // FIFO puts the one on this channel ahead of the commit we send next.
    cut_token_ = ctx_.initiate_snapshot();
    c.send_message(ModeCommitMsg{.nonce = nonce_, .token = cut_token_});
    state_ = State::kCommitted;
    return;
  }
  // phase 1 — the acceptor flipped at the cut.
  if (state_ != State::kCommitted || m.nonce != nonce_ ||
      active_ != channel_id.value())
    return;
  // FIFO: the acceptor's mark relay on this channel precedes its flipped
  // ack, so the cut's bookkeeping (if a rollback has not retired it) must
  // show this channel's mark consumed.
  if (const PendingSnapshot* snap = ctx_.find_snapshot(cut_token_))
    PIA_REQUIRE(!snap->mark_pending[active_],
                "mode flip ahead of the cut's mark");
  apply_flip(c, target_);
  c.send_message(ModeResumeMsg{.nonce = nonce_});
  finish(active_);
}

void AdaptiveController::on_commit(ChannelId channel_id,
                                   const ModeCommitMsg& m) {
  if (state_ != State::kAccepted || m.nonce != nonce_ ||
      active_ != channel_id.value())
    return;  // stale round
  ChannelEndpoint& c = ctx_.channels().at(channel_id);
  // FIFO: the proposer's mark on this channel precedes its commit.
  if (const PendingSnapshot* snap = ctx_.find_snapshot(m.token))
    PIA_REQUIRE(!snap->mark_pending[active_],
                "mode flip ahead of the cut's mark");
  cut_token_ = m.token;
  apply_flip(c, target_);
  c.send_message(ModeAckMsg{.nonce = nonce_, .phase = 1, .accept = true});
  state_ = State::kFlipped;  // hold until the proposer's resume
}

void AdaptiveController::on_resume(ChannelId channel_id,
                                   const ModeResumeMsg& m) {
  if (state_ != State::kFlipped || m.nonce != nonce_ ||
      active_ != channel_id.value())
    return;
  finish(active_);
}

void AdaptiveController::apply_flip(ChannelEndpoint& c, ChannelMode target) {
  c.set_mode(target);
  if (target == ChannelMode::kOptimistic) {
    // First checkpoint under the new protocol: a later rollback lands here
    // instead of crossing the flip barrier.
    ctx_.take_checkpoint();
  } else {
    // The grant floors stayed live the whole time (push_grants maintains
    // them on every channel regardless of mode), so the barrier is grounded
    // at once; only the request slate belongs to the old era.
    c.request_outstanding = false;
    c.last_request_next = VirtualTime::infinity();
    c.last_request_grant = VirtualTime::infinity();
  }
  ctx_.note_activity();
  stats_.mode_changes++;
  if (target == ChannelMode::kOptimistic)
    stats_.to_optimistic++;
  else
    stats_.to_conservative++;
  PIA_TRACE("[" << ctx_.subsystem_name() << "] mode flip channel=" << c.name()
                << " -> "
                << (target == ChannelMode::kOptimistic ? "optimistic"
                                                       : "conservative")
                << " epoch=" << c.mode_epoch());
  PIA_OBS_TRACE(ctx_.scheduler().trace(), obs::TraceKind::kModeChange,
                ctx_.scheduler().now(), c.index, c.mode_epoch());
}

void AdaptiveController::finish(std::size_t channel) {
  holding_ = false;
  state_ = State::kIdle;
  ensure_watch();
  Watch& w = watch_[channel];
  const ChannelEndpoint& c = ctx_.channels()[channel];
  w.cooldown = policy_.cooldown_windows;
  w.lean_conservative = 0;
  w.lean_optimistic = 0;
  // Re-baseline so the negotiation's own traffic is not judged.
  w.events = c.event_msgs_sent + c.event_msgs_received;
  w.retracts = c.retract_msgs_sent + c.retract_msgs_received;
  w.msgs = c.msgs_sent + c.msgs_received;
  if (w.forced && *w.forced == c.mode()) w.forced.reset();
}

void AdaptiveController::reset() {
  state_ = State::kIdle;
  holding_ = false;
  cut_token_ = 0;
  slice_ = 0;
  ensure_watch();
  const ChannelSet& channels = ctx_.channels();
  for (std::size_t i = 0; i < watch_.size(); ++i) {
    Watch& w = watch_[i];
    const ChannelEndpoint& c = channels[i];
    // Re-baseline on the re-based counters; leanings and cooldowns
    // described the discarded timeline.  `forced` and `never` survive: a
    // restore changes neither what the operator asked for nor what the
    // peer supports.
    w.events = c.event_msgs_sent + c.event_msgs_received;
    w.retracts = c.retract_msgs_sent + c.retract_msgs_received;
    w.msgs = c.msgs_sent + c.msgs_received;
    w.lean_conservative = 0;
    w.lean_optimistic = 0;
    w.cooldown = 0;
  }
  prev_stalls_ = ctx_.cost_sample().stalls;
}

void AdaptiveController::ensure_watch() {
  if (watch_.size() != ctx_.channels().size())
    watch_.resize(ctx_.channels().size());
}

}  // namespace pia::dist::sync
