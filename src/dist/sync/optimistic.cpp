#include "dist/sync/optimistic.hpp"

#include <algorithm>

#include "base/error.hpp"
#include "base/log.hpp"

namespace pia::dist::sync {

bool OptimisticEngine::has_optimistic_channel() const {
  const ChannelSet& channels = ctx_.channels();
  return std::any_of(channels.begin(), channels.end(), [](const auto& c) {
    return c->mode() == ChannelMode::kOptimistic;
  });
}

SnapshotId OptimisticEngine::take_checkpoint() {
  const ChannelSet& channels = ctx_.channels();
  const SnapshotId snap = ctx_.checkpoints().request();
  SnapshotPositions positions;
  positions.out.reserve(channels.size());
  positions.in.reserve(channels.size());
  for (const auto& c : channels) {
    positions.out.push_back(c->output_log.size());
    positions.in.push_back(c->injected_count);
    positions.cursor.push_back(c->replay_cursor);
  }
  snapshot_positions_[snap] = std::move(positions);
  stats_.checkpoints++;
  dispatches_since_checkpoint_ = 0;
  PIA_OBS_TRACE(ctx_.scheduler().trace(), obs::TraceKind::kCheckpoint,
                ctx_.scheduler().now(), stats_.checkpoints);
  return snap;
}

void OptimisticEngine::on_dispatch() {
  if (!has_optimistic_channel()) return;
  if (++dispatches_since_checkpoint_ >= checkpoint_interval_)
    take_checkpoint();
}

void OptimisticEngine::drop_positions_after(SnapshotId snap) {
  for (auto it = snapshot_positions_.upper_bound(snap);
       it != snapshot_positions_.end();)
    it = snapshot_positions_.erase(it);
}

void OptimisticEngine::inject_input(ChannelEndpoint& endpoint,
                                    ChannelEndpoint::InputRecord& record) {
  if (record.retracted) return;
  Scheduler& scheduler = ctx_.scheduler();
  record.seq = scheduler.inject(Event{
      .time = record.time,
      .target = endpoint.channel_component,
      .port = static_cast<ChannelComponent&>(
                  scheduler.component(endpoint.channel_component))
                  .rx_port(),
      .kind = EventKind::kDeliver,
      .value = ChannelComponent::encode_remote(record.net_index, record.value),
      .source = ComponentId::invalid()});
}

void OptimisticEngine::on_retract(ChannelId channel_id,
                                  const RetractMsg& retract) {
  ChannelEndpoint& endpoint = ctx_.channels().at(channel_id);
  stats_.retracts_received++;
  endpoint.retract_msgs_received++;
  ctx_.note_activity();

  // Find the cancelled event (search newest-first: retractions target
  // recent sends).
  auto& log = endpoint.input_log;
  std::size_t index = log.size();
  for (std::size_t i = log.size(); i-- > 0;) {
    if (log[i].id == retract.id) {
      index = i;
      break;
    }
  }
  if (index == log.size())
    raise(ErrorKind::kProtocol,
          "retraction for unknown event on channel " + endpoint.name());
  if (log[index].retracted) return;  // duplicate retraction

  if (index >= endpoint.injected_count) {
    // Not yet injected: tombstone it; the injection loop will skip it.
    log[index].retracted = true;
    return;
  }
  Scheduler& scheduler = ctx_.scheduler();
  log[index].retracted = true;
  if (retract.time > scheduler.now()) {
    // Probably injected but not yet dispatched: try to cancel its queued
    // delivery, addressed by the seq recorded at injection (payloads are
    // not unique — two live sends may carry identical (time, value)).
    // This is a fast path, not a guarantee: across rollback histories the
    // clock alone cannot prove the event is still pending.  If the erase
    // finds nothing, fall through to the rewind below, which is correct
    // either way.
    const std::uint64_t seq = log[index].seq;
    bool removed = false;
    scheduler.erase_events_if([&](const Event& e) {
      if (e.seq != seq || e.target != endpoint.channel_component)
        return false;
      removed = true;
      return true;
    });
    if (removed) return;
  }
  // Its effects may already be in component state — rewind.  The entry hint
  // forces a snapshot from before this input's injection; the tombstone set
  // above keeps the replay loop from re-injecting it.
  rollback(retract.time, std::make_pair(channel_id, index));
}

void OptimisticEngine::rollback(
    VirtualTime to_time,
    std::optional<std::pair<ChannelId, std::size_t>> entry_hint) {
  CheckpointManager& checkpoints = ctx_.checkpoints();
  // Choose the newest snapshot that precedes `to_time` and, when undoing an
  // already-applied input, precedes that input's injection.
  std::optional<SnapshotId> chosen;
  for (auto it = snapshot_positions_.rbegin();
       it != snapshot_positions_.rend(); ++it) {
    if (!checkpoints.contains(it->first)) continue;
    if (checkpoints.snapshot_time(it->first) > to_time) continue;
    if (entry_hint &&
        it->second.in[entry_hint->first.value()] > entry_hint->second)
      continue;
    chosen = it->first;
    break;
  }
  // A live run always has the base checkpoint from start() (virtual time
  // zero) to fall back on; only a subsystem restored from a durable image
  // can lack one — its base sits at the cut, and a straggler below the cut
  // means the snapshot froze optimistic state the original timeline went on
  // to roll back.  Surface that as a recoverable error so the restart
  // driver can fall back to an older snapshot (or a cold start).
  if (!chosen.has_value())
    raise(ErrorKind::kState,
          "no checkpoint on " + ctx_.subsystem_name() +
              " precedes rollback target " + to_time.str() +
              ": the restored snapshot cut was optimistically unstable");

  // Durable snapshots whose cut lies in the discarded future captured a
  // state this rollback just unwound: revoke them before anyone restores
  // one.
  ctx_.invalidate_snapshots_after(*chosen);

  const SnapshotPositions positions = snapshot_positions_.at(*chosen);
  checkpoints.restore(*chosen);
  scrub_retracted(positions);
  stats_.rollbacks++;
  dispatches_since_checkpoint_ = 0;
  PIA_OBS_TRACE(ctx_.scheduler().trace(), obs::TraceKind::kRollback, to_time,
                stats_.rollbacks);

  // Forget snapshots describing the discarded future.
  drop_positions_after(*chosen);

  ChannelSet& channels = ctx_.channels();
  for (std::uint32_t i = 0; i < channels.size(); ++i) {
    ChannelEndpoint& c = channels[i];
    // Lazy cancellation: outputs produced after the snapshot become
    // *unconfirmed* rather than being retracted immediately.  Re-execution
    // that regenerates them identically will consume them silently —
    // retracting eagerly makes every rollback echo back and forth between
    // subsystems forever when the regenerated messages are the same.
    c.replay_cursor = std::min(c.replay_cursor, positions.cursor[i]);
    // Replay the inputs that arrived after the snapshot (skipping
    // tombstones).
    c.injected_count = positions.in[i];
    for (std::size_t k = positions.in[i]; k < c.input_log.size(); ++k)
      inject_input(c, c.input_log[k]);
    c.injected_count = c.input_log.size();
  }
}

void OptimisticEngine::retract_output(ChannelEndpoint& endpoint,
                                      ChannelEndpoint::OutputRecord& record) {
  if (record.retracted) return;
  record.retracted = true;
  endpoint.send_message(RetractMsg{.id = record.id, .time = record.time});
  stats_.retracts_sent++;
  endpoint.retract_msgs_sent++;
}

bool OptimisticEngine::suppress_regeneration(ChannelEndpoint& endpoint,
                                             std::uint32_t net_index,
                                             const Value& value,
                                             VirtualTime time) {
  // Consume the unconfirmed tail left by a rollback.
  while (endpoint.replay_cursor < endpoint.output_log.size()) {
    auto& old = endpoint.output_log[endpoint.replay_cursor];
    if (old.retracted) {
      ++endpoint.replay_cursor;
      continue;
    }
    if (old.time < time) {
      // Passed its send time without regenerating it: it is history that
      // no longer happens.
      retract_output(endpoint, old);
      ++endpoint.replay_cursor;
      continue;
    }
    if (old.time == time && old.net_index == net_index &&
        old.value == value) {
      // Identical regeneration: the peer already has this message.
      ++endpoint.replay_cursor;
      return true;
    }
    // Divergence: the rest of the old future is invalid.
    for (std::size_t k = endpoint.replay_cursor;
         k < endpoint.output_log.size(); ++k)
      retract_output(endpoint, endpoint.output_log[k]);
    endpoint.replay_cursor = endpoint.output_log.size();
    break;
  }
  return false;
}

void OptimisticEngine::flush_unregenerated(VirtualTime upto) {
  for (auto& cp : ctx_.channels()) {
    ChannelEndpoint& c = *cp;
    while (c.replay_cursor < c.output_log.size()) {
      auto& old = c.output_log[c.replay_cursor];
      if (!old.retracted && old.time >= upto) break;
      retract_output(c, old);
      ++c.replay_cursor;
    }
  }
}

void OptimisticEngine::scrub_retracted(const SnapshotPositions& positions) {
  ChannelSet& channels = ctx_.channels();
  Scheduler& scheduler = ctx_.scheduler();
  for (std::uint32_t i = 0; i < channels.size(); ++i) {
    ChannelEndpoint& c = channels[i];
    for (std::size_t k = 0; k < positions.in[i] && k < c.input_log.size();
         ++k) {
      const auto& record = c.input_log[k];
      if (!record.retracted) continue;
      // The restored queue preserves original seqs, so a record retracted
      // after the snapshot is erased by the exact entry it re-materialised.
      // If the record's copy was already consumed before the snapshot there
      // is no seq match and nothing is (wrongly) erased.
      scheduler.erase_events_if([&](const Event& e) {
        return e.seq == record.seq && e.target == c.channel_component;
      });
    }
  }
}

void OptimisticEngine::fossil_collect(VirtualTime gvt) {
  CheckpointManager& checkpoints = ctx_.checkpoints();
  const auto keep = checkpoints.latest_at_or_before(gvt);
  if (!keep) return;
  checkpoints.discard_before(*keep);
  for (auto it = snapshot_positions_.begin();
       it != snapshot_positions_.end();) {
    if (it->first < *keep)
      it = snapshot_positions_.erase(it);
    else
      ++it;
  }
  const SnapshotPositions& base = snapshot_positions_.at(*keep);
  ChannelSet& channels = ctx_.channels();
  for (std::uint32_t i = 0; i < channels.size(); ++i) {
    ChannelEndpoint& c = channels[i];
    const std::size_t trim_out = base.out[i];
    const std::size_t trim_in = base.in[i];
    c.output_log.erase(c.output_log.begin(),
                       c.output_log.begin() +
                           static_cast<std::ptrdiff_t>(trim_out));
    c.input_log.erase(c.input_log.begin(),
                      c.input_log.begin() +
                          static_cast<std::ptrdiff_t>(trim_in));
    c.injected_count -= trim_in;
    c.replay_cursor -= std::min(c.replay_cursor, trim_out);
    c.output_trimmed += trim_out;
    c.input_trimmed += trim_in;
    for (auto& [snap, positions] : snapshot_positions_) {
      positions.out[i] -= trim_out;
      positions.in[i] -= trim_in;
      positions.cursor[i] -= std::min(positions.cursor[i], trim_out);
    }
  }
}

}  // namespace pia::dist::sync
