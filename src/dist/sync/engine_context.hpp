// EngineContext: the narrow seam between the Subsystem facade and the four
// sync engines (conservative, optimistic, snapshot, recovery).
//
// Each engine owns one protocol's state and stats and sees the rest of the
// subsystem only through this interface: the shared infrastructure
// (scheduler, checkpoint manager, channel set) plus a handful of
// cross-engine services.  Every service is implemented by exactly one
// engine and forwarded by the facade, so engines never include — or even
// name — each other; the layering lint (tools/lint_layers.py) enforces
// that structurally.  A test can implement EngineContext with a stub and
// drive an engine without sockets, threads, or the other protocols.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/scheduler.hpp"
#include "dist/channel_set.hpp"
#include "dist/protocol.hpp"

namespace pia::dist::sync {

/// Per-channel log positions at a checkpoint: output_log size, input
/// injected count and lazy-replay cursor at request time.  Owned per
/// SnapshotId by the OptimisticEngine; shared here because the snapshot and
/// recovery coordinators serialize and restore against the same shape.
struct SnapshotPositions {
  std::vector<std::size_t> out;
  std::vector<std::size_t> in;
  std::vector<std::size_t> cursor;
};

/// Chandy–Lamport bookkeeping per token.  Owned by the SnapshotCoordinator;
/// the type is shared so the RecoveryCoordinator can serialize a completed
/// cut without reaching into the coordinator's internals.
struct PendingSnapshot {
  SnapshotId local;
  std::vector<bool> mark_pending;  // per channel: still recording?
  std::vector<std::vector<EventMsg>> recorded;  // channel state
  SnapshotPositions positions;
  /// Per-channel (ChannelMode, mode epoch) at checkpoint time.  A cut is a
  /// mode barrier: restoring it must also restore the modes that were live
  /// at the cut, or a restore racing a renegotiation would resume with the
  /// two endpoints disagreeing on protocol.  Epochs are restored verbatim
  /// (ChannelEndpoint::restore_mode) so both sides stay in step.
  std::vector<ChannelMode> modes;
  std::vector<std::uint64_t> mode_epochs;
  bool persisted = false;  // committed to the attached SnapshotStore
};

/// One channel's protocol-cost counters, assembled from the per-engine
/// stats blocks by the facade.  The AdaptiveController's decisions and
/// NodeCluster::metrics() both read THIS accessor, so the number the
/// controller acted on is always the number the operator sees.
struct ChannelCostSample {
  // Conservative-side cost (null-message / grant traffic and blocking).
  std::uint64_t grants_sent = 0;
  std::uint64_t grants_received = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t stalls = 0;
  // Optimistic-side cost (rollback + anti-message volume).
  std::uint64_t rollbacks = 0;
  std::uint64_t retracts_sent = 0;
  std::uint64_t retracts_received = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t snapshots_invalidated = 0;
};

class EngineContext {
 public:
  virtual ~EngineContext() = default;

  // --- shared infrastructure ---------------------------------------------
  [[nodiscard]] virtual Scheduler& scheduler() = 0;
  [[nodiscard]] virtual const Scheduler& scheduler() const = 0;
  [[nodiscard]] virtual CheckpointManager& checkpoints() = 0;
  [[nodiscard]] virtual const CheckpointManager& checkpoints() const = 0;
  [[nodiscard]] virtual ChannelSet& channels() = 0;
  [[nodiscard]] virtual const ChannelSet& channels() const = 0;
  [[nodiscard]] virtual const std::string& subsystem_name() const = 0;
  [[nodiscard]] virtual std::uint32_t subsystem_id() const = 0;

  // --- services of the ConservativeEngine --------------------------------
  /// Something state-changing happened (event, retract, runlevel, rejoin);
  /// bumps the activity counter termination probes validate against.
  virtual void note_activity() = 0;
  /// Lifetime totals of simulation messages (events + retractions) this
  /// subsystem sent / received, on all channels.  Termination probes sum
  /// them over the tree: the cluster is only done when the global sums
  /// match — an excess on the sent side is a message still in flight
  /// toward a subsystem that would otherwise already have stopped.
  [[nodiscard]] virtual std::uint64_t messages_sent_total() const = 0;
  [[nodiscard]] virtual std::uint64_t messages_received_total() const = 0;
  /// A restore put the subsystem back on a live timeline: forget any
  /// termination consensus and probe state from the abandoned one.
  virtual void reset_termination() = 0;

  // --- services of the OptimisticEngine -----------------------------------
  virtual void flush_unregenerated(VirtualTime upto) = 0;
  virtual SnapshotId take_checkpoint() = 0;
  /// Restart the periodic-checkpoint countdown without taking one (used by
  /// restores, which put a checkpoint-equivalent state in place).
  virtual void reset_checkpoint_cadence() = 0;
  [[nodiscard]] virtual SnapshotPositions positions_of(SnapshotId snap)
      const = 0;
  /// Forget checkpoint positions describing a discarded future.
  virtual void drop_positions_after(SnapshotId snap) = 0;
  virtual void clear_positions() = 0;
  virtual void scrub_retracted(const SnapshotPositions& positions) = 0;
  virtual void inject_input(ChannelEndpoint& endpoint,
                            ChannelEndpoint::InputRecord& record) = 0;

  // --- services of the SnapshotCoordinator --------------------------------
  /// A rollback discarded the future past `kept`: revoke durable cuts that
  /// captured it.
  virtual void invalidate_snapshots_after(SnapshotId kept) = 0;
  [[nodiscard]] virtual const PendingSnapshot* find_snapshot(
      std::uint64_t token) const = 0;
  [[nodiscard]] virtual std::uint64_t snapshot_next_token() const = 0;
  /// Fresh-process restore: drop all pending cuts and resume token
  /// numbering where the image left off.
  virtual void reset_snapshots(std::uint64_t next_token) = 0;

  // --- services of the RecoveryCoordinator --------------------------------
  /// Serializes the completed snapshot `token` into a durable image.
  [[nodiscard]] virtual Bytes export_snapshot_image(
      std::uint64_t token) const = 0;

  // --- services of the AdaptiveController ----------------------------------
  /// Subsystem-wide protocol cost counters (summed over channels); the
  /// controller windows successive samples to estimate per-mode overhead.
  [[nodiscard]] virtual ChannelCostSample cost_sample() const = 0;
  /// True while a mode negotiation holds dispatch on this subsystem: the
  /// run loop must not dispatch events, and the conservative engine must
  /// neither originate termination probes nor answer them ok — both paths
  /// flush unregenerated output, which would leak retractions across the
  /// flip barrier.
  [[nodiscard]] virtual bool mode_negotiation_hold() const = 0;
  /// Facade arbitration: false while a flip would race a rejoin, a replica
  /// membership, or retirement; proposals are rejected busy and the
  /// controller retries after its cooldown.
  [[nodiscard]] virtual bool mode_change_allowed() const = 0;
  /// Starts a Chandy–Lamport cut and returns its token (the mode-flip
  /// barrier).  Forwarded to SnapshotCoordinator::initiate().
  virtual std::uint64_t initiate_snapshot() = 0;
};

}  // namespace pia::dist::sync
