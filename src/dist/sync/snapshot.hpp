// SnapshotCoordinator: Chandy–Lamport distributed snapshots (paper §2.2.5)
// plus their durable persistence.
//
// Owns the per-token mark bookkeeping and recorded channel state, the
// dispatch-count auto-snapshot cadence, the coordinated (in-process)
// restore, and the durable side: committing completed cuts to the attached
// SnapshotStore and revoking cuts a rollback has unwound.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "dist/snapshot_store.hpp"
#include "dist/sync/engine_context.hpp"

namespace pia::dist::sync {

struct SnapshotStats {
  std::uint64_t marks_received = 0;
  std::uint64_t snapshots_persisted = 0;  // completed CL cuts written out
  std::uint64_t snapshot_persist_bytes = 0;
  std::uint64_t snapshots_invalidated = 0;  // durable cuts revoked by rollback
};

class SnapshotCoordinator {
 public:
  explicit SnapshotCoordinator(EngineContext& ctx) : ctx_(ctx) {}

  [[nodiscard]] const SnapshotStats& stats() const { return stats_; }

  void set_store(std::shared_ptr<SnapshotStore> store) {
    store_ = std::move(store);
  }
  [[nodiscard]] SnapshotStore* store() { return store_.get(); }
  [[nodiscard]] const SnapshotStore* store() const { return store_.get(); }

  void set_auto_interval(std::uint64_t dispatches) {
    auto_snapshot_interval_ = dispatches;
  }
  /// Dispatch cadence: initiates a snapshot every N local dispatches.
  /// Dispatch-count cadence keeps the cut points deterministic per run,
  /// unlike wall-clock timers.
  void on_dispatch();

  /// Starts a Chandy–Lamport snapshot; returns its cluster-wide token.
  std::uint64_t initiate();
  void on_mark(ChannelId channel_id, const MarkMsg& mark);
  /// Channel-state recording: every event arriving between the local
  /// checkpoint of a token and that channel's mark belongs to the cut.
  void on_event_received(ChannelId channel_id, const EventMsg& event);
  [[nodiscard]] bool complete(std::uint64_t token) const;

  /// Restores the local checkpoint of `token` plus its recorded channel
  /// state (coordinated restore; all subsystems restore the same token).
  void restore(std::uint64_t token);

  // --- services reached via EngineContext ----------------------------------
  void invalidate_after(SnapshotId kept);
  [[nodiscard]] const PendingSnapshot* find(std::uint64_t token) const;
  [[nodiscard]] std::uint64_t next_token() const { return next_cl_token_; }
  void reset(std::uint64_t next_token);

 private:
  /// Commits `token` to the attached store if the snapshot just completed.
  void maybe_persist(std::uint64_t token);
  /// Stamps the per-channel (mode, epoch) pairs live at checkpoint time
  /// into `pending` — the cut doubles as the mode-flip barrier, so a
  /// restore must put the modes of the cut back too.
  void record_modes(PendingSnapshot& pending) const;

  EngineContext& ctx_;
  SnapshotStats stats_;
  std::map<std::uint64_t, PendingSnapshot> cl_snapshots_;
  std::uint64_t next_cl_token_ = 1;
  std::shared_ptr<SnapshotStore> store_;
  std::uint64_t auto_snapshot_interval_ = 0;
  std::uint64_t dispatches_since_auto_snapshot_ = 0;
};

}  // namespace pia::dist::sync
