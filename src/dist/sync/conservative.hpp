// ConservativeEngine: the safe-time protocol and termination detection
// (paper §2.2.3).
//
// Owns grant negotiation with self-restriction removal, unsolicited grant
// pushes (null messages), the advance barrier, idle-status pushes, the
// stall-time SafeTimeRequest fan-out, and the diffusing termination probe
// that decides infinite-horizon quiescence.  It also keeps the subsystem's
// activity counter — the monotone "anything state-changing happened" clock
// every probe round validates against.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>

#include "dist/sync/engine_context.hpp"

namespace pia::dist::sync {

struct ConservativeStats {
  std::uint64_t grants_sent = 0;
  std::uint64_t grants_received = 0;
  std::uint64_t requests_sent = 0;
  std::uint64_t stalls = 0;  // loop iterations blocked on a grant
};

class ConservativeEngine {
 public:
  explicit ConservativeEngine(EngineContext& ctx) : ctx_(ctx) {}

  [[nodiscard]] const ConservativeStats& stats() const { return stats_; }

  // --- message handlers ----------------------------------------------------
  void on_request(ChannelId channel_id, const SafeTimeRequest& request);
  void on_grant(ChannelId channel_id, const SafeTimeGrant& grant);
  void on_probe(ChannelId channel_id, const ProbeMsg& probe);
  void on_probe_reply(const ProbeReply& reply);
  void on_terminate(ChannelId from, const TerminateMsg& terminate);

  // --- run-loop services ---------------------------------------------------

  /// The grant we can promise `requester` right now (self-restriction
  /// removed): min over next local event and the grants peers on *other*
  /// channels gave us, plus the channel lookahead.
  [[nodiscard]] VirtualTime grant_for(ChannelId requester) const;

  /// min over conservative channels of granted_in (the advance barrier).
  [[nodiscard]] VirtualTime barrier() const;

  /// Pushes improved grants on all channels (null messages).
  void push_grants();
  void push_status_if_changed();

  /// The advance was blocked on a grant: count the stall and request safe
  /// times from every conservative channel that restricts us.
  void on_blocked();

  /// Starts a termination probe round if none is outstanding.
  void maybe_start_probe();

  /// Replica members must not ORIGINATE probes: a probe floods away from
  /// its arrival channel, and a replica leaf has only the one channel — its
  /// own round would confirm termination without consulting the sibling
  /// clones.  Relaying and replying stay enabled.
  void set_originate_probes(bool on) { originate_probes_ = on; }

  /// A peer's status report moved (it flipped idle, or its counters
  /// advanced): a probe round that failed on that peer's busyness can
  /// succeed now, so drop the don't-respin guard.  Without this, a
  /// subsystem whose peers never originate probes (a replica set is all
  /// leaves) wedges after one failed round: its own activity never moves
  /// again and nobody else re-opens the wave.
  void note_peer_status_changed() {
    activity_at_last_failed_probe_ = UINT64_MAX;
  }

  // --- activity / termination bookkeeping ----------------------------------
  // Other engines reach these through EngineContext::note_activity /
  // reset_termination.
  void note_activity() { ++activity_counter_; }
  void reset_termination();
  [[nodiscard]] bool terminated() const { return terminate_received_; }

 private:
  // Termination detection (diffusing probe waves).
  struct ProbeRound {
    std::uint64_t nonce = 0;
    std::size_t pending = 0;
    bool ok = true;
    std::uint64_t activity_at_start = 0;
    // Subtree sums accumulated from the replies (the origin's own totals
    // are added at completion).
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t activity = 0;
  };
  /// Global accounting of the last all-ok round.  Termination needs two
  /// consecutive candidate rounds with identical sums and sent == received:
  /// one round alone can certify a past in which a subsystem that had
  /// already replied was later revived by a message still in flight.
  struct CandidateRound {
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t activity = 0;
    friend bool operator==(const CandidateRound&,
                           const CandidateRound&) = default;
  };
  struct RelayedProbe {
    ChannelId from;
    std::size_t pending = 0;
    bool ok = true;
    /// Activity when the probe arrived.  The origin validates its own
    /// round-long quiet window, but a relay can go busy *after* forwarding
    /// the wave (an optimistic subsystem speculating on an in-flight
    /// straggler) and be idle again by the time the subtree answers; its
    /// reply must then be negative or the origin confirms a termination
    /// that a revived relay is about to break with fresh sends.
    std::uint64_t activity_at_arrival = 0;
    // Subtree sums accumulated from the replies (the relay's own totals
    // are added when it answers).
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t activity = 0;
  };

  EngineContext& ctx_;
  ConservativeStats stats_;
  std::optional<ProbeRound> my_probe_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, RelayedProbe>
      relayed_probes_;
  /// Highest probe nonce observed per remote origin (probes and terminate
  /// tokens both carry one), and the staleness floor a TerminateMsg must
  /// clear to be honored.  reset_termination() raises the floor past
  /// everything seen: a terminate still in flight when a snapshot restore
  /// rolled the timeline back certifies the DISCARDED run, and honoring it
  /// would falsely quiesce the replay.  Origins keep their monotone nonce
  /// counters across resets, so every post-restore terminate clears the
  /// floor naturally.
  std::map<std::uint64_t, std::uint64_t> probe_nonce_seen_;
  std::map<std::uint64_t, std::uint64_t> terminate_floor_;
  std::uint64_t next_probe_nonce_ = 1;
  std::uint64_t activity_counter_ = 0;  // bumps on any state-changing input
  std::uint64_t activity_at_last_failed_probe_ = UINT64_MAX;
  std::optional<CandidateRound> last_candidate_;
  // A candidate round is pending confirmation: re-probe even though the
  // activity counter has not moved (the usual don't-spin guard would
  // otherwise block the confirming round forever).
  bool confirm_pending_ = false;
  bool terminate_received_ = false;
  bool originate_probes_ = true;
};

}  // namespace pia::dist::sync
