#include "dist/sync/conservative.hpp"

#include "base/log.hpp"

namespace pia::dist::sync {

void ConservativeEngine::on_request(ChannelId channel_id,
                                    const SafeTimeRequest& request) {
  ChannelEndpoint& endpoint = ctx_.channels().at(channel_id);
  endpoint.granted_out = grant_for(channel_id);
  endpoint.granted_out_seen = endpoint.event_msgs_received;
  endpoint.send_message(
      SafeTimeGrant{.request_id = request.request_id,
                    .safe_time = endpoint.granted_out,
                    .events_seen = endpoint.granted_out_seen,
                    .lookahead = endpoint.reaction_lookahead});
  stats_.grants_sent++;
}

void ConservativeEngine::on_grant(ChannelId channel_id,
                                  const SafeTimeGrant& grant) {
  ChannelEndpoint& endpoint = ctx_.channels().at(channel_id);
  // FIFO: later grants reflect later grantor states; overwrite.
  endpoint.granted_in = grant.safe_time;
  endpoint.granted_in_seen = grant.events_seen;
  endpoint.granted_in_lookahead = grant.lookahead;
  endpoint.request_outstanding = false;
  stats_.grants_received++;
  PIA_OBS_TRACE(ctx_.scheduler().trace(), obs::TraceKind::kGrant,
                grant.safe_time, endpoint.index, grant.events_seen);
}

VirtualTime ConservativeEngine::grant_for(ChannelId requester) const {
  const ChannelSet& channels = ctx_.channels();
  // Sink-side endpoint (no local driver can route onto it, derived at
  // start()): nothing will ever be sent to the requester, so the honest
  // promise is infinity regardless of local progress.  This is the paper's
  // self-restriction removal extended to topology: without it the grant is
  // capped by next_event_time() and a forward-only pipeline degenerates to
  // virtual-time lockstep, every stage waiting on its downstream listener.
  if (!channels[requester.value()].can_send_events)
    return VirtualTime::infinity();
  const ChannelEndpoint& target = channels[requester.value()];
  // Split the pending events by what they mean to the requester.  A
  // delivery already queued for the requester's own channel proxy on a
  // hidden (split-net) port IS a crossing: its timestamp carries the full
  // sender-side net delay and the proxy forwards it to the peer unchanged,
  // so it arrives at exactly event.time — no lookahead applies on top.
  // Folding these into a flat next_event_time() + lookahead over-promised
  // by exactly the lookahead whenever a relay routed a value onto the
  // channel without advancing its own clock past the net delay first
  // (delay-carrying split nets, e.g. the scale-out station fan-in).
  // Everything else — wakes, ordinary local deliveries, and rx-port
  // injections (whose causal responses re-cross no earlier than their own
  // stamp plus the net delay the lookahead declares) — still earns it.
  const ComponentId proxy = target.channel_component;
  VirtualTime crossing = VirtualTime::infinity();
  VirtualTime horizon = VirtualTime::infinity();
  if (proxy.valid()) {
    const PortIndex rx = static_cast<const ChannelComponent&>(
                             ctx_.scheduler().component(proxy))
                             .rx_port();
    for (const Event& e : ctx_.scheduler().pending()) {
      if (e.kind == EventKind::kDeliver && e.target == proxy && e.port != rx)
        crossing = min(crossing, e.time);
      else
        horizon = min(horizon, e.time);
    }
  } else {
    // Endpoint without a local proxy (protocol unit tests): every pending
    // event is plain local work.
    horizon = ctx_.scheduler().next_event_time();
  }
  for (std::uint32_t i = 0; i < channels.size(); ++i) {
    if (ChannelId{i} == requester) continue;  // self-restriction removal
    const ChannelEndpoint& c = channels[i];
    // Every channel restricts the promise, optimistic ones included: an
    // optimistic peer's pushed floor bounds the stragglers it can still
    // send us, and a rollback they trigger here may regenerate sends to the
    // requester no earlier than that floor.  Ignoring optimistic channels
    // let a mixed subsystem promise infinity to a conservative peer before
    // its optimistic upstream had produced anything (fuzz_cluster seed 2).
    horizon = min(horizon, c.effective_grant());
  }
  // Unconfirmed outputs already sent to the requester can still be
  // retracted at their recorded times if re-execution diverges: they bound
  // the promise too (times are monotone, the first live entry is the min).
  for (std::size_t k = target.replay_cursor; k < target.output_log.size();
       ++k) {
    if (target.output_log[k].retracted) continue;
    horizon = min(horizon, target.output_log[k].time);
    break;
  }
  return min(horizon + target.lookahead, crossing);
}

VirtualTime ConservativeEngine::barrier() const {
  VirtualTime barrier = VirtualTime::infinity();
  for (const auto& c : ctx_.channels())
    if (c->mode() == ChannelMode::kConservative)
      barrier = min(barrier, c->effective_grant());
  return barrier;
}

void ConservativeEngine::push_grants() {
  // Floors are pushed on optimistic channels as well: they never block the
  // receiver's advancement, but they let conservative safe times propagate
  // *through* optimistic subsystems, which is what makes mixed-mode chains
  // sound (a conservative grant grounded on an optimistic upstream).
  ChannelSet& channels = ctx_.channels();
  for (std::uint32_t i = 0; i < channels.size(); ++i) {
    ChannelEndpoint& c = channels[i];
    const VirtualTime grant = grant_for(ChannelId{i});
    // Push when the promise improves in either dimension: a later horizon,
    // or a horizon grounded on more of the peer's sends.  The second case
    // pushes even when the time component regresses (e.g. an initial
    // infinite promise made before any events were queued): every push is
    // an independently sound promise, and withholding the events_seen
    // acknowledgment froze the peer's unseen-send clamp forever, wedging
    // whole mixed-mode chains (fuzz_cluster seed 2).
    if (grant > c.granted_out ||
        c.event_msgs_received > c.granted_out_seen) {
      c.granted_out = grant;
      c.granted_out_seen = c.event_msgs_received;
      c.send_message(SafeTimeGrant{.request_id = 0,
                                   .safe_time = grant,
                                   .events_seen = c.granted_out_seen,
                                   .lookahead = c.reaction_lookahead});
      stats_.grants_sent++;
    }
  }
}

void ConservativeEngine::push_status_if_changed() {
  const Scheduler& scheduler = ctx_.scheduler();
  const bool idle = scheduler.idle();
  for (auto& cp : ctx_.channels()) {
    ChannelEndpoint& c = *cp;
    // Receive counters matter too: a pure sink that consumes each batch
    // within one slice is idle at every boundary and never sends, yet its
    // peer's termination probe failed against the unconsumed messages and
    // waits on exactly this announcement to respin.
    const bool counters_changed =
        c.msgs_sent != c.msgs_sent_at_last_status_push ||
        c.msgs_received != c.msgs_received_at_last_status_push;
    if (idle != c.idle_at_last_status_push || (idle && counters_changed)) {
      c.send_message(StatusMsg{.now = scheduler.now(),
                               .msgs_sent = c.msgs_sent,
                               .msgs_received = c.msgs_received,
                               .idle = idle});
      c.idle_at_last_status_push = idle;
      c.msgs_sent_at_last_status_push = c.msgs_sent;
      c.msgs_received_at_last_status_push = c.msgs_received;
    }
  }
}

void ConservativeEngine::on_blocked() {
  stats_.stalls++;
  const VirtualTime next = ctx_.scheduler().next_event_time();
  PIA_OBS_TRACE(ctx_.scheduler().trace(), obs::TraceKind::kStall, next,
                stats_.stalls);
  for (auto& cp : ctx_.channels()) {
    ChannelEndpoint& c = *cp;
    if (c.mode() != ChannelMode::kConservative) continue;
    const VirtualTime grant = c.effective_grant();
    if (grant >= next || c.request_outstanding) continue;
    // Nothing moved since the last request on this channel: the peer
    // already answered for exactly this state, and asking again only
    // manufactures wakeups (see last_request_next in channel.hpp).  The
    // next improvement arrives via the peer's proactive grant push.
    if (c.last_request_next == next && c.last_request_grant == grant)
      continue;
    c.last_request_next = next;
    c.last_request_grant = grant;
    c.send_message(SafeTimeRequest{.request_id = c.next_request_id++});
    c.request_outstanding = true;
    stats_.requests_sent++;
    PIA_OBS_TRACE(ctx_.scheduler().trace(), obs::TraceKind::kGrantRequest,
                  next, c.index);
  }
}

void ConservativeEngine::maybe_start_probe() {
  ChannelSet& channels = ctx_.channels();
  if (!originate_probes_) return;
  if (my_probe_ || terminate_received_) return;
  if (!ctx_.scheduler().idle()) return;
  // A mode negotiation is holding dispatch: the flush below would emit
  // retractions across the flip barrier, and a quiescence verdict reached
  // mid-flip would describe a paused subsystem, not a finished one.
  if (ctx_.mode_negotiation_hold()) return;
  // Don't spin probe rounds: retry only after something changed — unless a
  // candidate round awaits its confirming twin, which by construction runs
  // with the activity counter unmoved.
  if (activity_counter_ == activity_at_last_failed_probe_ && !confirm_pending_)
    return;
  // A clean probe requires our own unconfirmed outputs settled first.
  ctx_.flush_unregenerated(VirtualTime::infinity());
  my_probe_ = ProbeRound{.nonce = next_probe_nonce_++,
                         .pending = channels.size(),
                         .ok = true,
                         .activity_at_start = activity_counter_};
  const std::uint64_t origin =
      static_cast<std::uint64_t>(ctx_.subsystem_id());
  PIA_TRACE("[" << ctx_.subsystem_name() << "] probe start nonce="
                << my_probe_->nonce << " pending=" << my_probe_->pending
                << " act=" << activity_counter_);
  for (auto& c : channels)
    c->send_message(ProbeMsg{.origin = origin, .nonce = my_probe_->nonce});
}

void ConservativeEngine::on_probe(ChannelId channel_id,
                                  const ProbeMsg& probe) {
  ChannelSet& channels = ctx_.channels();
  ChannelEndpoint& from = channels.at(channel_id);
  if (std::uint64_t& seen = probe_nonce_seen_[probe.origin];
      probe.nonce > seen)
    seen = probe.nonce;
  // During a mode negotiation the subsystem is paused, not idle: answer
  // busy (ok=false) instead of flushing unregenerated output, which would
  // leak retractions across the flip barrier.
  if (!ctx_.scheduler().idle() || ctx_.mode_negotiation_hold()) {
    PIA_TRACE("[" << ctx_.subsystem_name() << "] probe nonce=" << probe.nonce
                  << " busy -> ok=false");
    from.send_message(ProbeReply{.origin = probe.origin,
                                 .nonce = probe.nonce,
                                 .ok = false});
    return;
  }
  ctx_.flush_unregenerated(VirtualTime::infinity());
  if (channels.size() == 1) {
    PIA_TRACE("[" << ctx_.subsystem_name() << "] probe nonce=" << probe.nonce
                  << " leaf reply ok=" << ctx_.scheduler().idle()
                  << " sent=" << ctx_.messages_sent_total()
                  << " recv=" << ctx_.messages_received_total()
                  << " act=" << activity_counter_);
    from.send_message(ProbeReply{.origin = probe.origin,
                                 .nonce = probe.nonce,
                                 .ok = ctx_.scheduler().idle(),
                                 .sent = ctx_.messages_sent_total(),
                                 .received = ctx_.messages_received_total(),
                                 .activity = activity_counter_});
    return;
  }
  // Relay the wave away from the arrival channel; answer once the subtree
  // answers (the topology is a forest, so the wave terminates).
  RelayedProbe relayed{.from = channel_id,
                       .pending = channels.size() - 1,
                       .ok = true,
                       .activity_at_arrival = activity_counter_};
  relayed_probes_[{probe.origin, probe.nonce}] = relayed;
  for (std::uint32_t i = 0; i < channels.size(); ++i) {
    if (ChannelId{i} == channel_id) continue;
    channels[i].send_message(probe);
  }
}

void ConservativeEngine::on_probe_reply(const ProbeReply& reply) {
  ChannelSet& channels = ctx_.channels();
  if (my_probe_ &&
      reply.origin == static_cast<std::uint64_t>(ctx_.subsystem_id()) &&
      reply.nonce == my_probe_->nonce) {
    my_probe_->ok = my_probe_->ok && reply.ok;
    my_probe_->sent += reply.sent;
    my_probe_->received += reply.received;
    my_probe_->activity += reply.activity;
    if (--my_probe_->pending == 0) {
      const bool candidate = my_probe_->ok && ctx_.scheduler().idle() &&
                             activity_counter_ == my_probe_->activity_at_start;
      const CandidateRound round{
          .sent = my_probe_->sent + ctx_.messages_sent_total(),
          .received = my_probe_->received + ctx_.messages_received_total(),
          .activity = my_probe_->activity + activity_counter_};
      PIA_TRACE("[" << ctx_.subsystem_name() << "] probe done nonce="
                    << my_probe_->nonce << " ok=" << my_probe_->ok
                    << " candidate=" << candidate << " sent=" << round.sent
                    << " recv=" << round.received << " act=" << round.activity
                    << " confirm=" << confirm_pending_);
      // Terminate only on the second of two identical all-ok rounds whose
      // global send/receive totals balance: a lone ok-round describes the
      // past, and a message that was in flight during it can still revive
      // a subsystem that already answered.  Nothing moved anywhere between
      // two identical rounds, and balanced totals mean nothing is in
      // flight now.
      if (!terminate_received_ && candidate && round.sent == round.received &&
          last_candidate_ == round) {
        // The !terminate_received_ guard stops a duplicate flood: when the
        // peer's own confirming round won the race, its TerminateMsg already
        // reached us, and a second terminate launched here would linger
        // unread in the link once the peer stops draining.
        terminate_received_ = true;
        const std::uint64_t token =
            (static_cast<std::uint64_t>(ctx_.subsystem_id()) << 32) |
            my_probe_->nonce;
        for (auto& c : channels)
          c->send_message(TerminateMsg{.token = token});
      } else if (candidate) {
        last_candidate_ = round;
        confirm_pending_ = true;
      } else {
        last_candidate_.reset();
        confirm_pending_ = false;
        // Don't arm the don't-respin guard when every peer's latest status
        // already claims idle: the busy reply that failed this round was
        // generated before those reports and is stale.  With clone peers
        // the statuses contradicting it can be byte-identical duplicates
        // of one another, so note_peer_status_changed() would never fire
        // again.  Leaving the guard open costs at most a few extra rounds;
        // correctness rests on the two-candidate confirmation, not on this
        // spin brake.
        bool peers_report_idle = true;
        for (auto& c : channels) {
          if (!c->peer_status_seen || !c->peer_status.idle) {
            peers_report_idle = false;
            break;
          }
        }
        activity_at_last_failed_probe_ =
            !peers_report_idle &&
                    my_probe_->activity_at_start == activity_counter_
                ? activity_counter_
                : UINT64_MAX;
      }
      my_probe_.reset();
    }
    return;
  }
  const auto it = relayed_probes_.find({reply.origin, reply.nonce});
  if (it == relayed_probes_.end()) return;  // stale round
  it->second.ok = it->second.ok && reply.ok;
  it->second.sent += reply.sent;
  it->second.received += reply.received;
  it->second.activity += reply.activity;
  if (--it->second.pending == 0) {
    ChannelEndpoint& back = channels.at(it->second.from);
    back.send_message(ProbeReply{
        .origin = reply.origin,
        .nonce = reply.nonce,
        .ok = it->second.ok && ctx_.scheduler().idle() &&
              activity_counter_ == it->second.activity_at_arrival,
        .sent = it->second.sent + ctx_.messages_sent_total(),
        .received = it->second.received + ctx_.messages_received_total(),
        .activity = it->second.activity + activity_counter_});
    relayed_probes_.erase(it);
  }
}

void ConservativeEngine::on_terminate(ChannelId from,
                                      const TerminateMsg& terminate) {
  const std::uint64_t origin = terminate.token >> 32;
  const std::uint64_t nonce = terminate.token & 0xffffffffull;
  if (const auto floor = terminate_floor_.find(origin);
      floor != terminate_floor_.end() && nonce < floor->second) {
    // In flight since before a restore rolled this subsystem back: the
    // confirming rounds certified the discarded timeline, and honoring the
    // verdict now would falsely quiesce the replay.  No re-flood either —
    // every neighbour judges the same token against its own floor.
    PIA_TRACE("[" << ctx_.subsystem_name() << "] stale terminate dropped"
                  << " origin=" << origin << " nonce=" << nonce);
    return;
  }
  if (std::uint64_t& seen = probe_nonce_seen_[origin]; nonce > seen)
    seen = nonce;
  if (terminate_received_) return;
  PIA_TRACE("[" << ctx_.subsystem_name() << "] terminate received token="
                << terminate.token);
  terminate_received_ = true;
  // Flood away from the arrival direction only: on a tree every subsystem
  // is reached exactly once and no terminate ever lingers unread in a link
  // (a leftover would falsely stop a post-restore replay).
  ChannelSet& channels = ctx_.channels();
  for (std::uint32_t i = 0; i < channels.size(); ++i) {
    if (ChannelId{i} == from) continue;
    channels[i].send_message(terminate);
  }
}

void ConservativeEngine::reset_termination() {
  // The subsystem is live again: any previous termination consensus or
  // probe state described the discarded timeline.
  terminate_received_ = false;
  my_probe_.reset();
  relayed_probes_.clear();
  activity_at_last_failed_probe_ = UINT64_MAX;
  last_candidate_.reset();
  confirm_pending_ = false;
  // Terminates still in flight certify the timeline being discarded: raise
  // the staleness floor past every nonce seen so they land dead on arrival.
  for (const auto& [origin, seen] : probe_nonce_seen_)
    terminate_floor_[origin] = seen + 1;
}

}  // namespace pia::dist::sync
