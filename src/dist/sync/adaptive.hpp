// AdaptiveController: runtime conservative↔optimistic renegotiation per
// channel (the paper's runlevel idea applied to synchronization).
//
// Measures per-channel protocol cost from the counters the other engines
// already maintain — retraction volume against event volume on optimistic
// channels, grant/request/mark overhead and blocked time on conservative
// ones — and, when a hysteresis policy says the other protocol would be
// cheaper, renegotiates the channel's mode with the peer.  The flip itself
// rides a Chandy–Lamport cut from the SnapshotCoordinator: the cut's marker
// is the barrier on the FIFO channel, so each endpoint flips only after it
// has consumed every message the peer sent under the old protocol, and
// neither endpoint dispatches (the negotiation HOLD) between agreeing and
// flipping — no frame ever straddles the two protocols.
//
// The six-step handshake (proposer A, acceptor B, channel c):
//   1. propose  A→B ModeProposal{nonce, epoch, target, caps}; A holds.
//   2. agree    B arbitrates (capability, epoch fence, rejoin/replica/
//               retired state, crossed proposals by proposer id) and either
//               rejects — ModeAck{agree, accept=false}, A releases — or
//               holds and answers ModeAck{agree, accept=true}.
//   3. cut      A initiates a snapshot (marks flood every channel) and
//               sends ModeCommit{nonce, token}.  FIFO puts the mark on c
//               ahead of the commit.
//   4. flip@B   B, at the commit, has consumed everything A sent pre-cut;
//               it flips its endpoint and answers ModeAck{flipped}.
//   5. flip@A   A, at the flipped-ack, has consumed B's mark relay (FIFO
//               again) and everything B sent pre-cut; it flips, sends
//               ModeResume{nonce}, and releases its hold.
//   6. resume   B releases its hold.
//
// All five messages are control messages (excluded from the quiescence
// counters) and v2-wire compatible: the proposal announces a trailing
// sync-capability varint, mirroring the rejoin transport-capability
// pattern, so a fixed-mode peer rejects cleanly instead of desyncing.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dist/sync/engine_context.hpp"

namespace pia::dist::sync {

/// Decision policy.  Costs are sampled every `window_slices` run-loop
/// slices; a channel must lean the same way `hysteresis` consecutive
/// windows before a proposal fires, and after any flip or rejection the
/// channel sits out `cooldown_windows` windows.
struct AdaptivePolicy {
  std::uint32_t window_slices = 64;
  std::uint32_t hysteresis = 2;
  /// Optimistic → conservative when retractions exceed this fraction of
  /// event traffic in a window (rollback thrash).
  double retract_rate_hi = 0.25;
  /// Conservative → optimistic when non-event protocol traffic (grants,
  /// requests, marks) exceeds this multiple of event traffic in a window
  /// (null-message dominated), or when the engine stalled more often than
  /// it moved events.
  double control_rate_hi = 4.0;
  /// Windows with fewer events than this are too quiet to judge.
  std::uint64_t min_events = 16;
  std::uint32_t cooldown_windows = 4;
};

struct AdaptiveStats {
  std::uint64_t proposals_sent = 0;
  std::uint64_t proposals_received = 0;
  std::uint64_t proposals_accepted = 0;  // local accept decisions
  std::uint64_t proposals_rejected = 0;  // local reject decisions
  std::uint64_t mode_changes = 0;        // flips applied to a local endpoint
  std::uint64_t to_optimistic = 0;
  std::uint64_t to_conservative = 0;
  std::uint64_t hold_slices = 0;  // run-loop slices spent under negotiation
};

class AdaptiveController {
 public:
  explicit AdaptiveController(EngineContext& ctx) : ctx_(ctx) {}

  [[nodiscard]] const AdaptiveStats& stats() const { return stats_; }

  /// Turns measurement-driven renegotiation on.  Off (the default) the
  /// controller never proposes, but still answers peers' proposals —
  /// with a clean "unsupported" rejection — so enabling adaptation on one
  /// side of a channel is always safe.
  void enable(const AdaptivePolicy& policy) {
    policy_ = policy;
    enabled_ = true;
  }
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// True while a negotiation holds local dispatch (and probe origination):
  /// the straddle-freedom of the flip rests on nothing being dispatched
  /// between agreeing and flipping.
  [[nodiscard]] bool hold() const { return holding_; }

  /// Forced flip (tests, operators): renegotiate `channel` to `target` at
  /// the next tick the facade's arbitration allows, bypassing windows,
  /// hysteresis and cooldown.  Deferred — not dropped — while a rejoin or
  /// failover is in flight.  Cleared once the channel reaches `target`.
  void request_mode(std::size_t channel, ChannelMode target);

  /// Once per run-loop slice: sample cost windows, fire due proposals.
  void tick();

  // --- message handlers ----------------------------------------------------
  void on_proposal(ChannelId channel_id, const ModeProposalMsg& m);
  void on_ack(ChannelId channel_id, const ModeAckMsg& m);
  void on_commit(ChannelId channel_id, const ModeCommitMsg& m);
  void on_resume(ChannelId channel_id, const ModeResumeMsg& m);

  /// A restore abandoned the timeline: drop the active negotiation and the
  /// measurement windows, release the hold.  The peer restores from the
  /// same cut (or rejoins), so the half-open handshake cannot resume; its
  /// stale messages are ignored by nonce.
  void reset();

 private:
  enum class State : std::uint8_t {
    kIdle,
    kProposed,   // proposer: waiting for the agree ack
    kCommitted,  // proposer: cut initiated, waiting for the flipped ack
    kAccepted,   // acceptor: waiting for the commit
    kFlipped,    // acceptor: flipped, waiting for the resume
  };

  /// Per-channel measurement window and negotiation memory.
  struct Watch {
    std::uint64_t events = 0;    // event_msgs sent+received at last sample
    std::uint64_t retracts = 0;  // retract_msgs sent+received at last sample
    std::uint64_t msgs = 0;      // msgs sent+received at last sample
    std::uint32_t lean_conservative = 0;  // consecutive leaning windows
    std::uint32_t lean_optimistic = 0;
    std::uint32_t cooldown = 0;  // windows left before proposing again
    bool never = false;          // peer answered "unsupported": stop asking
    std::optional<ChannelMode> forced;
  };

  void ensure_watch();
  /// True when flipping `channel` to `target` cannot violate the target
  /// protocol's invariants at THIS endpoint (see the definition for the two
  /// conditions a flip to conservative must meet).
  [[nodiscard]] bool flip_safe(std::size_t channel, ChannelMode target) const;
  void sample_windows();
  void propose(std::size_t channel, ChannelMode target);
  /// The flip proper, at the barrier: switch the endpoint's mode and hand
  /// state across — a first checkpoint under optimism so no rollback ever
  /// crosses the flip, or a cleared request slate under conservatism (the
  /// grant floors themselves stayed live the whole time; push_grants
  /// maintains them on every channel regardless of mode).
  void apply_flip(ChannelEndpoint& c, ChannelMode target);
  void finish(std::size_t channel);  // release hold, start cooldown

  EngineContext& ctx_;
  AdaptivePolicy policy_{};
  AdaptiveStats stats_{};
  bool enabled_ = false;

  State state_ = State::kIdle;
  bool holding_ = false;
  std::size_t active_ = 0;     // channel of the live negotiation
  std::uint64_t nonce_ = 0;    // its handshake nonce
  ChannelMode target_ = ChannelMode::kConservative;
  std::uint64_t cut_token_ = 0;
  std::uint64_t next_nonce_ = 1;

  std::uint32_t slice_ = 0;  // slices since the last sample
  std::uint64_t prev_stalls_ = 0;
  std::vector<Watch> watch_;
};

}  // namespace pia::dist::sync
