// RecoveryCoordinator: the crash-recovery layer.
//
// Owns failure detection (heartbeat beacons + liveness timeouts), the
// durable-image serialization format ("pia.dist.recovery"), the
// fresh-process restore that rebuilds a subsystem from such an image, the
// post-recovery rejoin handshake that cross-checks both sides restored the
// same cut, and link replacement for surviving peers of a restarted node.
#pragma once

#include <chrono>
#include <cstdint>

#include "dist/sync/engine_context.hpp"

namespace pia::dist::sync {

struct RecoveryStats {
  std::uint64_t heartbeats_sent = 0;
  std::uint64_t heartbeats_received = 0;
  std::uint64_t peer_down_events = 0;  // channels declared dead
  std::uint64_t recoveries = 0;        // restores from a durable image
  std::uint64_t rejoins_verified = 0;  // rejoin handshakes cross-checked
};

class RecoveryCoordinator {
 public:
  explicit RecoveryCoordinator(EngineContext& ctx) : ctx_(ctx) {}

  [[nodiscard]] const RecoveryStats& stats() const { return stats_; }

  // --- failure detection ---------------------------------------------------
  void set_heartbeat(std::chrono::milliseconds interval,
                     std::chrono::milliseconds timeout) {
    heartbeat_interval_ = interval;
    heartbeat_timeout_ = timeout;
  }
  [[nodiscard]] std::chrono::milliseconds heartbeat_interval() const {
    return heartbeat_interval_;
  }
  /// Sends due liveness beacons on every channel and pushes them onto the
  /// wire immediately (past any batch FlushHold).  Cheap when nothing is
  /// due; called at the top of every slice AND periodically from inside
  /// long advance bursts so a heavily loaded worker never starves its own
  /// beacons past a peer's timeout.
  void service_beacons();
  /// Judges peer liveness; true when some peer stands declared down.  A
  /// channel silent for the timeout is dead: with beacons serviced from
  /// inside the advance burst (see service_beacons), a live peer keeps
  /// arriving no matter how loaded it is, so silence is no longer the
  /// false positive it was when beacons waited for slice boundaries.
  bool judge_liveness();
  void on_heartbeat(ChannelId channel_id, const HeartbeatMsg& heartbeat);

  // --- durable image / rejoin ----------------------------------------------
  /// Serializes the completed snapshot `token` into a self-contained
  /// durable image (the SnapshotStore payload).
  [[nodiscard]] Bytes export_image(std::uint64_t token) const;
  /// Fresh-process restore from an image produced by export_image on an
  /// identically wired subsystem.
  void restore_image(BytesView image);
  void begin_rejoin(std::uint64_t token);
  void on_rejoin(ChannelId channel_id, const RejoinMsg& rejoin);
  /// Swaps in a fresh link on one channel (reconnect path for a surviving
  /// subsystem whose peer is being restarted).
  void replace_link(ChannelId channel_id, transport::LinkPtr link);

 private:
  EngineContext& ctx_;
  RecoveryStats stats_;
  std::chrono::milliseconds heartbeat_interval_{0};  // 0 = disabled
  std::chrono::milliseconds heartbeat_timeout_{0};
};

}  // namespace pia::dist::sync
