#include "dist/channel_set.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>

#include "base/error.hpp"

namespace pia::dist {

using Clock = std::chrono::steady_clock;

ChannelSet::ChannelSet()
    : signal_(std::make_shared<transport::ReadySignal>()) {}

void ChannelSet::add(std::unique_ptr<ChannelEndpoint> endpoint) {
  endpoint->link().set_ready_signal(signal_);
  channels_.push_back(std::move(endpoint));
}

ChannelEndpoint& ChannelSet::at(ChannelId id) {
  PIA_REQUIRE(id.valid() && id.value() < channels_.size(), "bad channel id");
  return *channels_[id.value()];
}

const ChannelEndpoint& ChannelSet::at(ChannelId id) const {
  PIA_REQUIRE(id.valid() && id.value() < channels_.size(), "bad channel id");
  return *channels_[id.value()];
}

void ChannelSet::replace_link(ChannelId id, transport::LinkPtr link) {
  ChannelEndpoint& endpoint = at(id);
  endpoint.replace_link(std::move(link));
  endpoint.link().set_ready_signal(signal_);
}

std::chrono::milliseconds ChannelSet::prepare_wait(
    std::vector<pollfd>& fds, std::chrono::milliseconds timeout) {
  // Frames parked inside fault/latency decorators mature silently: clamp
  // the wait to the earliest reported release so they are picked up on
  // time regardless of how long the caller was willing to sleep.
  const Clock::time_point now = Clock::now();
  auto wait = std::max(timeout, std::chrono::milliseconds(0));
  for (const auto& c : channels_) {
    if (const auto due = c->link().next_ready_time()) {
      const auto remaining =
          std::chrono::ceil<std::chrono::milliseconds>(*due - now);
      wait = std::min(wait,
                      std::max(remaining, std::chrono::milliseconds(0)));
    }
  }

  // Drain stale pulses BEFORE building the poll set: a pulse racing in
  // after this point simply leaves the signal fd readable and the poll
  // returns immediately — a spurious wake, never a lost one.
  //
  // A pulse consumed HERE is also a wake, not noise: it may belong to a
  // frame that landed after the caller's last queue inspection, and eating
  // it silently would stall that frame for the full idle timeout.  Clamp
  // the wait to zero so the caller re-inspects at once; at worst the frame
  // was already consumed and the caller pays one empty re-slice.
  if (signal_->drain()) wait = std::chrono::milliseconds(0);

  fds.push_back(pollfd{.fd = signal_->fd(), .events = POLLIN, .revents = 0});
  for (const auto& c : channels_) {
    const int fd = c->link().readable_fd();
    if (fd >= 0)
      fds.push_back(pollfd{.fd = fd, .events = POLLIN, .revents = 0});
  }
  return wait;
}

bool ChannelSet::wait_any(std::chrono::milliseconds timeout) {
  // Allocating the poll set per call is fine: this is the idle path.
  std::vector<pollfd> fds;
  fds.reserve(channels_.size() + 1);
  const auto wait = prepare_wait(fds, timeout);
  const bool clamped = wait < timeout;

  const Clock::time_point deadline = Clock::now() + wait;
  for (;;) {
    const auto remaining =
        std::chrono::ceil<std::chrono::milliseconds>(deadline - Clock::now());
    const int wait_ms = static_cast<int>(std::clamp<std::int64_t>(
        remaining.count(), 0, std::numeric_limits<int>::max()));
    const int pr = ::poll(fds.data(), fds.size(), wait_ms);
    if (pr < 0) {
      if (errno == EINTR) {
        // A signal interrupted the poll.  Reporting that as either a wake
        // or a timeout would be a lie; retry for whatever wait remains.
        if (Clock::now() >= deadline) break;
        continue;
      }
      raise(ErrorKind::kTransport,
            std::string("channel wait poll: ") + std::strerror(errno));
    }
    if (pr > 0) return true;
    break;  // full timeout elapsed
  }
  // A clamped timeout that expired is a wake too: the matured frame is now
  // receivable even though no fd fired.
  return clamped;
}

}  // namespace pia::dist
