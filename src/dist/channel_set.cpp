#include "dist/channel_set.hpp"

#include <poll.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <limits>

#include "base/error.hpp"

namespace pia::dist {

using Clock = std::chrono::steady_clock;

ChannelSet::ChannelSet()
    : signal_(std::make_shared<transport::ReadySignal>()) {}

void ChannelSet::add(std::unique_ptr<ChannelEndpoint> endpoint) {
  endpoint->link().set_ready_signal(signal_);
  channels_.push_back(std::move(endpoint));
}

ChannelEndpoint& ChannelSet::at(ChannelId id) {
  PIA_REQUIRE(id.valid() && id.value() < channels_.size(), "bad channel id");
  return *channels_[id.value()];
}

const ChannelEndpoint& ChannelSet::at(ChannelId id) const {
  PIA_REQUIRE(id.valid() && id.value() < channels_.size(), "bad channel id");
  return *channels_[id.value()];
}

void ChannelSet::replace_link(ChannelId id, transport::LinkPtr link) {
  ChannelEndpoint& endpoint = at(id);
  endpoint.replace_link(std::move(link));
  endpoint.link().set_ready_signal(signal_);
}

bool ChannelSet::wait_any(std::chrono::milliseconds timeout) {
  // Frames parked inside fault/latency decorators mature silently: clamp
  // the wait to the earliest reported release so they are picked up on
  // time regardless of how long the caller was willing to sleep.
  const Clock::time_point now = Clock::now();
  auto wait = timeout;
  bool clamped = false;
  for (const auto& c : channels_) {
    if (const auto due = c->link().next_ready_time()) {
      const auto remaining =
          std::chrono::ceil<std::chrono::milliseconds>(*due - now);
      const auto bounded = std::max(remaining, std::chrono::milliseconds(0));
      if (bounded < wait) {
        wait = bounded;
        clamped = true;
      }
    }
  }

  // Drain stale pulses BEFORE building the poll set: a pulse racing in
  // after this point simply leaves the signal fd readable and the poll
  // returns immediately — a spurious wake, never a lost one.
  signal_->drain();

  // Allocating the poll set per call is fine: this is the idle path.
  std::vector<pollfd> fds;
  fds.reserve(channels_.size() + 1);
  fds.push_back(pollfd{.fd = signal_->fd(), .events = POLLIN, .revents = 0});
  for (const auto& c : channels_) {
    const int fd = c->link().readable_fd();
    if (fd >= 0)
      fds.push_back(pollfd{.fd = fd, .events = POLLIN, .revents = 0});
  }

  const int wait_ms = static_cast<int>(std::clamp<std::int64_t>(
      wait.count(), 0, std::numeric_limits<int>::max()));
  const int pr = ::poll(fds.data(), fds.size(), wait_ms);
  if (pr < 0) {
    if (errno == EINTR) return true;  // treat as a spurious wake
    raise(ErrorKind::kTransport,
          std::string("channel wait poll: ") + std::strerror(errno));
  }
  // A clamped timeout that expired is a wake too: the matured frame is now
  // receivable even though no fd fired.
  return pr > 0 || (clamped && wait < timeout);
}

}  // namespace pia::dist
