#include "dist/node.hpp"

#include <atomic>
#include <cstdlib>
#include <string_view>
#include <thread>

#include "base/error.hpp"
#include "base/log.hpp"
#include "dist/executor.hpp"
#include "obs/chrome_trace.hpp"
#include "transport/spsc.hpp"

namespace pia::dist {

std::atomic<std::uint32_t> PiaNode::next_node_seed_{0};

PiaNode::PiaNode(std::string name)
    : name_(std::move(name)),
      // Subsystem numeric ids must be process-unique so SendIds never
      // collide across channels.
      next_subsystem_id_(next_node_seed_.fetch_add(1000) + 1000) {}

Subsystem& PiaNode::add_subsystem(const std::string& subsystem_name) {
  subsystems_.push_back(
      std::make_unique<Subsystem>(subsystem_name, next_subsystem_id_++));
  subsystems_.back()->set_host_node(this);
  return *subsystems_.back();
}

Subsystem& PiaNode::subsystem(const std::string& subsystem_name) {
  for (auto& s : subsystems_)
    if (s->name() == subsystem_name) return *s;
  raise(ErrorKind::kNotFound,
        "node '" + name_ + "' has no subsystem '" + subsystem_name + "'");
}

std::vector<Subsystem*> PiaNode::subsystems() {
  std::vector<Subsystem*> out;
  out.reserve(subsystems_.size());
  for (auto& s : subsystems_) out.push_back(s.get());
  return out;
}

void PiaNode::start_all() {
  for (auto& s : subsystems_)
    if (!s->started()) s->start();
}

transport::LinkPair make_wire_pair(Wire wire) {
  switch (wire) {
    case Wire::kLoopback:
      return transport::make_loopback_pair();
    case Wire::kSpsc:
      return transport::make_spsc_pair();
    case Wire::kShm:
      return transport::make_shm_pair();
    case Wire::kTcp: {
      transport::TcpListener listener(0);
      return transport::connect_tcp_pair(listener);
    }
  }
  raise(ErrorKind::kState, "unknown wire kind");
}

namespace {

enum class ShmPolicy { kDefault, kForce, kForbid };

/// PIA_SHM knob (see node.hpp).  Read per connect call so tests can flip it
/// between clusters.
ShmPolicy shm_policy() {
  const char* v = std::getenv(kShmEnvVar);
  if (v == nullptr) return ShmPolicy::kDefault;
  const std::string_view s{v};
  if (s == "1" || s == "force") return ShmPolicy::kForce;
  if (s == "0" || s == "forbid") return ShmPolicy::kForbid;
  return ShmPolicy::kDefault;
}

}  // namespace

ChannelPair connect(Subsystem& a, Subsystem& b, ChannelMode mode, Wire wire,
                    transport::LatencyModel latency,
                    const transport::FaultPlan& fault) {
  // Co-scheduled subsystems (same host node) are each driven by exactly
  // one thread at a time in every execution mode, which is precisely the
  // single-producer/single-consumer contract — upgrade their loopback to
  // the mutex-free ring so pooled workers never serialize on a pipe lock.
  if (wire == Wire::kLoopback && a.host_node() != nullptr &&
      a.host_node() == b.host_node()) {
    wire = Wire::kSpsc;
  }
  // The shm force/forbid ladder: kShm is an explicit per-channel request
  // (both endpoints must be in this process, which connect() guarantees);
  // PIA_SHM=force upgrades every in-process ring to shm, PIA_SHM=forbid
  // maps shm requests back to the SPSC ring.  TCP is never rewritten —
  // it is the only transport that crosses hosts.
  switch (shm_policy()) {
    case ShmPolicy::kForce:
      if (wire != Wire::kTcp) wire = Wire::kShm;
      break;
    case ShmPolicy::kForbid:
      if (wire == Wire::kShm) wire = Wire::kSpsc;
      break;
    case ShmPolicy::kDefault:
      break;
  }
  transport::LinkPair pair = make_wire_pair(wire);
  // Faults sit closest to the wire (they model the wire); latency decorates
  // the faulty link the way WAN delay rides on a lossy path.
  if (fault.enabled()) {
    pair.a = transport::make_fault_link(std::move(pair.a),
                                        fault.for_endpoint(1));
    pair.b = transport::make_fault_link(std::move(pair.b),
                                        fault.for_endpoint(2));
  }
  const bool has_latency = latency.base.count() > 0 ||
                           latency.per_byte.count() > 0 ||
                           latency.jitter_max.count() > 0;
  if (has_latency) {
    pair.a = transport::make_latency_link(std::move(pair.a), latency);
    pair.b = transport::make_latency_link(std::move(pair.b), latency);
  }
  const std::string channel_name = a.name() + "<->" + b.name();
  return ChannelPair{
      .a = a.add_channel(channel_name, mode, std::move(pair.a)),
      .b = b.add_channel(channel_name, mode, std::move(pair.b)),
  };
}

void split_net(Subsystem& a, ChannelId chan_a, NetId net_a, Subsystem& b,
               ChannelId chan_b, NetId net_b) {
  const std::uint32_t index_a = a.export_net(chan_a, net_a);
  const std::uint32_t index_b = b.export_net(chan_b, net_b);
  PIA_CHECK(index_a == index_b,
            "split-net registration order differs between '" + a.name() +
                "' and '" + b.name() + "'");
}

PiaNode& NodeCluster::add_node(const std::string& node_name) {
  nodes_.push_back(std::make_unique<PiaNode>(node_name));
  return *nodes_.back();
}

PiaNode& NodeCluster::node(const std::string& node_name) {
  for (auto& n : nodes_)
    if (n->name() == node_name) return *n;
  raise(ErrorKind::kNotFound, "no node named '" + node_name + "'");
}

std::vector<Subsystem*> NodeCluster::all_subsystems() {
  std::vector<Subsystem*> out;
  for (auto& n : nodes_)
    for (Subsystem* s : n->subsystems()) out.push_back(s);
  return out;
}

ChannelPair NodeCluster::connect_checked(Subsystem& a, Subsystem& b,
                                         ChannelMode mode, Wire wire,
                                         transport::LatencyModel latency,
                                         const transport::FaultPlan& fault) {
  register_logical_channel(a.name(), b.name());
  return connect(a, b, mode, wire, latency, fault);
}

void NodeCluster::register_logical_channel(const std::string& a,
                                           const std::string& b) {
  topology_.add_channel(a, b);
  topology_.validate();  // fail fast at wiring time
}

void NodeCluster::start_all() {
  topology_.validate();
  for (auto& n : nodes_) n->start_all();
}

std::map<std::string, Subsystem::RunOutcome> NodeCluster::run_all(
    const Subsystem::RunConfig& config) {
  // Per node: a NodeExecutor pool when the node asked for one, the legacy
  // one-thread-per-subsystem layout otherwise.  Nodes always run
  // concurrently with each other either way.
  struct Runner {
    std::thread thread;
    std::map<std::string, Subsystem::RunOutcome> outcomes;
    std::exception_ptr error;
  };
  std::vector<std::unique_ptr<Runner>> runners;
  for (auto& n : nodes_) {
    if (n->worker_threads() > 0) {
      auto runner = std::make_unique<Runner>();
      Runner* r = runner.get();
      PiaNode* node = n.get();
      r->thread = std::thread([r, node, &config] {
        try {
          NodeExecutor executor(node->subsystems(), node->worker_threads());
          r->outcomes = executor.run(config);
        } catch (...) {
          r->error = std::current_exception();
        }
      });
      runners.push_back(std::move(runner));
    } else {
      for (Subsystem* s : n->subsystems()) {
        auto runner = std::make_unique<Runner>();
        Runner* r = runner.get();
        r->thread = std::thread([r, s, &config] {
          try {
            r->outcomes[s->name()] = s->run(config);
          } catch (...) {
            r->error = std::current_exception();
          }
        });
        runners.push_back(std::move(runner));
      }
    }
  }
  for (auto& r : runners) r->thread.join();
  std::map<std::string, Subsystem::RunOutcome> outcomes;
  for (auto& r : runners) {
    if (r->error) std::rethrow_exception(r->error);
    outcomes.merge(r->outcomes);
  }
  return outcomes;
}

VirtualTime NodeCluster::compute_gvt() {
  // Requires that no runner thread is active.  Drain repeatedly until one
  // full pass moves nothing — then no messages are in flight and the min
  // local floor is an exact GVT.
  std::vector<Subsystem*> subs = all_subsystems();
  bool moved = true;
  while (moved) {
    moved = false;
    for (Subsystem* s : subs)
      if (!s->retired()) moved |= s->drain();
  }
  VirtualTime gvt = VirtualTime::infinity();
  for (Subsystem* s : subs) {
    // A dead replica member's floor is frozen at its crash point; letting it
    // into the min would drag cluster GVT backwards forever.
    if (s->retired()) continue;
    gvt = min(gvt, s->local_virtual_floor());
  }
  return gvt;
}

VirtualTime NodeCluster::fossil_collect_all() {
  const VirtualTime gvt = compute_gvt();
  for (Subsystem* s : all_subsystems()) s->fossil_collect(gvt);
  return gvt;
}

// ---------------------------------------------------------------------------
// Observability
// ---------------------------------------------------------------------------

void collect_metrics(Subsystem& subsystem, obs::MetricsRegistry& registry,
                     const std::string& tag) {
  const std::string& scope_tag = tag.empty() ? subsystem.name() : tag;
  const std::string sub_scope = "sub/" + scope_tag;
  // A second collection into the same scope would silently interleave two
  // subsystems' counters; scope tags must be unique per registry.
  PIA_CHECK(!registry.has_scope(sub_scope),
            "metric scope collision: '" + sub_scope +
                "' already collected; disambiguate with an explicit tag");
  const SubsystemStats& stats = subsystem.stats();
  registry.set(sub_scope, "events_sent", stats.events_sent);
  registry.set(sub_scope, "events_received", stats.events_received);
  registry.set(sub_scope, "grants_sent", stats.grants_sent);
  registry.set(sub_scope, "grants_received", stats.grants_received);
  registry.set(sub_scope, "requests_sent", stats.requests_sent);
  registry.set(sub_scope, "stalls", stats.stalls);
  registry.set(sub_scope, "rollbacks", stats.rollbacks);
  registry.set(sub_scope, "retracts_sent", stats.retracts_sent);
  registry.set(sub_scope, "retracts_received", stats.retracts_received);
  registry.set(sub_scope, "checkpoints", stats.checkpoints);
  registry.set(sub_scope, "marks_received", stats.marks_received);
  registry.set(sub_scope, "heartbeats_sent", stats.heartbeats_sent);
  registry.set(sub_scope, "heartbeats_received", stats.heartbeats_received);
  registry.set(sub_scope, "peer_down_events", stats.peer_down_events);
  registry.set(sub_scope, "snapshots_persisted", stats.snapshots_persisted);
  registry.set(sub_scope, "snapshot_persist_bytes",
               stats.snapshot_persist_bytes);
  registry.set(sub_scope, "snapshots_invalidated",
               stats.snapshots_invalidated);
  registry.set(sub_scope, "recoveries", stats.recoveries);
  registry.set(sub_scope, "rejoins_verified", stats.rejoins_verified);

  // The layered view: the same counters grouped by owning sync engine.
  // Additive — the flat "sub/<name>" aggregate keys above are the stable
  // interface and stay untouched.
  const std::string engine_scope = "engine/" + scope_tag;
  const TrafficStats& traffic = subsystem.traffic_stats();
  registry.set(engine_scope + "/traffic", "events_sent", traffic.events_sent);
  registry.set(engine_scope + "/traffic", "events_received",
               traffic.events_received);
  const sync::ConservativeStats& cons = subsystem.conservative_stats();
  registry.set(engine_scope + "/conservative", "grants_sent",
               cons.grants_sent);
  registry.set(engine_scope + "/conservative", "grants_received",
               cons.grants_received);
  registry.set(engine_scope + "/conservative", "requests_sent",
               cons.requests_sent);
  registry.set(engine_scope + "/conservative", "stalls", cons.stalls);
  const sync::OptimisticStats& opt = subsystem.optimistic_stats();
  registry.set(engine_scope + "/optimistic", "rollbacks", opt.rollbacks);
  registry.set(engine_scope + "/optimistic", "retracts_sent",
               opt.retracts_sent);
  registry.set(engine_scope + "/optimistic", "retracts_received",
               opt.retracts_received);
  registry.set(engine_scope + "/optimistic", "checkpoints", opt.checkpoints);
  const sync::SnapshotStats& snap = subsystem.snapshot_stats();
  registry.set(engine_scope + "/snapshot", "marks_received",
               snap.marks_received);
  registry.set(engine_scope + "/snapshot", "snapshots_persisted",
               snap.snapshots_persisted);
  registry.set(engine_scope + "/snapshot", "snapshot_persist_bytes",
               snap.snapshot_persist_bytes);
  registry.set(engine_scope + "/snapshot", "snapshots_invalidated",
               snap.snapshots_invalidated);
  const sync::RecoveryStats& rec = subsystem.recovery_stats();
  registry.set(engine_scope + "/recovery", "heartbeats_sent",
               rec.heartbeats_sent);
  registry.set(engine_scope + "/recovery", "heartbeats_received",
               rec.heartbeats_received);
  registry.set(engine_scope + "/recovery", "peer_down_events",
               rec.peer_down_events);
  registry.set(engine_scope + "/recovery", "recoveries", rec.recoveries);
  registry.set(engine_scope + "/recovery", "rejoins_verified",
               rec.rejoins_verified);
  const sync::AdaptiveStats& adapt = subsystem.adaptive_stats();
  registry.set(engine_scope + "/adaptive", "proposals_sent",
               adapt.proposals_sent);
  registry.set(engine_scope + "/adaptive", "proposals_received",
               adapt.proposals_received);
  registry.set(engine_scope + "/adaptive", "proposals_accepted",
               adapt.proposals_accepted);
  registry.set(engine_scope + "/adaptive", "proposals_rejected",
               adapt.proposals_rejected);
  registry.set(engine_scope + "/adaptive", "mode_changes",
               adapt.mode_changes);
  registry.set(engine_scope + "/adaptive", "to_optimistic",
               adapt.to_optimistic);
  registry.set(engine_scope + "/adaptive", "to_conservative",
               adapt.to_conservative);
  registry.set(engine_scope + "/adaptive", "hold_slices", adapt.hold_slices);
  if (const SnapshotStore* store = subsystem.snapshot_store()) {
    registry.set(sub_scope, "store_commits", store->stats().commits);
    registry.set(sub_scope, "store_bytes_written",
                 store->stats().bytes_written);
    registry.set(sub_scope, "store_pruned", store->stats().pruned);
    registry.set(sub_scope, "store_load_failures",
                 store->stats().load_failures);
    registry.set(sub_scope, "store_invalidated", store->stats().invalidated);
  }

  const Scheduler& sched = subsystem.scheduler();
  registry.set(sub_scope, "sched_events_dispatched",
               sched.stats().events_dispatched);
  registry.set(sub_scope, "sched_events_scheduled",
               sched.stats().events_scheduled);
  registry.set(sub_scope, "sched_wakes_dispatched",
               sched.stats().wakes_dispatched);
  registry.set(sub_scope, "sched_violations", sched.stats().violations);
  registry.set(sub_scope, "sched_runlevel_switches",
               sched.stats().runlevel_switches);
  registry.set(sub_scope, "trace_records", sched.trace().total_recorded());
  registry.set(sub_scope, "trace_dropped", sched.trace().dropped());

  const std::string dispatch_scope = "dispatch/" + scope_tag;
  for (const ComponentId id : sched.component_ids())
    registry.set(dispatch_scope, sched.component(id).name(),
                 sched.dispatches(id));

  for (std::size_t i = 0; i < subsystem.channel_count(); ++i) {
    ChannelEndpoint& c =
        subsystem.channel(ChannelId{static_cast<std::uint32_t>(i)});
    const std::string scope = "chan/" + scope_tag + "/" +
                              std::to_string(c.index) + ":" + c.name();
    registry.set(scope, "event_msgs_sent", c.event_msgs_sent);
    registry.set(scope, "event_msgs_received", c.event_msgs_received);
    registry.set(scope, "msgs_sent", c.msgs_sent);
    registry.set(scope, "msgs_received", c.msgs_received);
    registry.set(scope, "output_log", std::uint64_t{c.output_log.size()});
    registry.set(scope, "input_log", std::uint64_t{c.input_log.size()});
    registry.set(scope, "output_trimmed", c.output_trimmed);
    registry.set(scope, "input_trimmed", c.input_trimmed);
    registry.set(scope, "granted_in_ticks", c.granted_in.ticks());
    registry.set(scope, "granted_out_ticks", c.granted_out.ticks());
    // Live sync mode (0 = conservative, 1 = optimistic) and its
    // renegotiation epoch, so dashboards can see adaptive flips land.
    registry.set(scope, "mode", static_cast<std::uint64_t>(c.mode()));
    registry.set(scope, "mode_epoch", c.mode_epoch());
    const transport::LinkStats link = c.link().stats();
    registry.set(scope, "link_messages_sent", link.messages_sent);
    registry.set(scope, "link_messages_received", link.messages_received);
    // messages_sent / frames_sent is the batching efficiency of the channel.
    registry.set(scope, "link_frames_sent", link.frames_sent);
    registry.set(scope, "link_frames_received", link.frames_received);
    registry.set(scope, "link_bytes_sent", link.bytes_sent);
    registry.set(scope, "link_bytes_received", link.bytes_received);
    registry.set(scope, "link_faults_delayed", link.faults_delayed);
    registry.set(scope, "link_faults_duplicated", link.faults_duplicated);
    registry.set(scope, "link_faults_dropped", link.faults_dropped);
    registry.set(scope, "link_faults_dup_discarded",
                 link.faults_dup_discarded);
    registry.set(scope, "link_faults_partition_held",
                 link.faults_partition_held);
    registry.set(scope, "link_faults_abrupt_closes",
                 link.faults_abrupt_closes);
    registry.set(scope, "heartbeats_received", c.heartbeats_received);
    registry.set(scope, "peer_down", std::uint64_t{c.peer_down ? 1u : 0u});
  }
}

obs::MetricsRegistry NodeCluster::metrics() {
  obs::MetricsRegistry registry;
  // Scenario generators legitimately stamp out same-named subsystems on
  // different nodes; suffix duplicates with their cluster ordinal so every
  // scope stays unique (unique names keep their plain scope — the stable
  // interface existing consumers read).
  std::map<std::string, std::size_t> name_counts;
  const std::vector<Subsystem*> subsystems = all_subsystems();
  for (Subsystem* s : subsystems) ++name_counts[s->name()];
  std::map<std::string, std::size_t> ordinals;
  for (Subsystem* s : subsystems) {
    std::string tag = s->name();
    if (name_counts[tag] > 1)
      tag += "#" + std::to_string(ordinals[s->name()]++);
    collect_metrics(*s, registry, tag);
  }
  return registry;
}

void NodeCluster::export_chrome_trace(const std::string& path) {
  std::vector<const obs::TraceBuffer*> tracks;
  for (Subsystem* s : all_subsystems())
    tracks.push_back(&s->scheduler().trace());
  const obs::MetricsRegistry registry = metrics();
  obs::write_chrome_trace_file(path, tracks, &registry);
}

}  // namespace pia::dist
