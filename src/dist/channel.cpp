#include "dist/channel.hpp"

#include "base/error.hpp"
#include "serial/archive.hpp"

namespace pia::dist {

ChannelComponent::ChannelComponent(std::string name)
    : Component(std::move(name)) {
  // Remote events are accepted at whatever local time the proxy has reached;
  // their real timestamps travel inside the payload and are re-applied with
  // send_at, so the port is asynchronous.
  rx_ = add_input("rx", PortSync::kAsynchronous);
}

PortIndex ChannelComponent::add_split_net() {
  const auto index = static_cast<std::uint32_t>(hidden_ports_.size());
  const PortIndex port =
      add_inout("hidden" + std::to_string(index), PortSync::kAsynchronous);
  mutable_port(port).hidden = true;  // invisible to the designer (Fig. 2)
  hidden_ports_.push_back(port);
  return port;
}

PortIndex ChannelComponent::hidden_port(std::uint32_t net_index) const {
  PIA_REQUIRE(net_index < hidden_ports_.size(),
              "split net index out of range on " + name());
  return hidden_ports_[net_index];
}

Value ChannelComponent::encode_remote(std::uint32_t net_index,
                                      const Value& value) {
  // One scratch archive per subsystem thread: wrapping a remote event (a
  // per-delivery operation at word level) stays allocation-free — small
  // wrapped payloads land in Value's inline buffer.
  thread_local serial::OutArchive scratch;
  scratch.clear();
  scratch.put_varint(net_index);
  value.save(scratch);
  return Value::packet(scratch.bytes());
}

void ChannelComponent::on_receive(PortIndex port, const Value& value) {
  if (port == rx_) {
    // Remote traffic: decode and re-drive onto the local net piece at the
    // original timestamp (== this delivery's event time == local_time()).
    serial::InArchive ar(value.as_packet());
    const auto net_index = static_cast<std::uint32_t>(ar.get_varint());
    const Value payload = Value::load(ar);
    send_at(hidden_port(net_index), payload, local_time());
    return;
  }
  // Local traffic heard on a hidden port: forward across the channel.
  for (std::uint32_t i = 0; i < hidden_ports_.size(); ++i) {
    if (hidden_ports_[i] == port) {
      PIA_CHECK(outbound_ != nullptr,
                "channel component '" + name() + "' has no outbound hook");
      outbound_(i, value, local_time());
      return;
    }
  }
  raise(ErrorKind::kState,
        "value on unexpected port of channel component " + name());
}

// ---------------------------------------------------------------------------

ChannelEndpoint::ChannelEndpoint(std::string name, ChannelMode mode,
                                 transport::LinkPtr link,
                                 std::uint32_t origin_id)
    : name_(std::move(name)),
      mode_(mode),
      link_(std::move(link)),
      origin_id_(origin_id) {
  PIA_REQUIRE(link_ != nullptr, "channel endpoint without a link");
}

SendId ChannelEndpoint::send_event(std::uint32_t net_index,
                                   const Value& value, VirtualTime time) {
  const SendId id{.origin = origin_id_, .counter = next_send_counter_++};
  ++event_msgs_sent;
  send_message(EventMsg{
      .id = id, .net_index = net_index, .time = time, .value = value});
  output_log.push_back(OutputRecord{
      .id = id, .net_index = net_index, .time = time, .value = value});
  return id;
}

void ChannelEndpoint::send_message(const ChannelMessage& message) {
  if (peer_closed) return;  // nobody is listening any more
  scratch_.clear();
  encode_message_into(scratch_, message);
  const std::size_t before = batch_.size();
  batch_.put_varint(scratch_.size());
  if (batch_count_ == 0) batch_first_offset_ = batch_.size() - before;
  batch_.put_raw(scratch_.bytes());
  ++batch_count_;
  // Counted at enqueue: a flush that fails mid-batch closes the channel, so
  // the counters stop mattering on the same path they could diverge on.
  if (!is_control_message(message)) ++msgs_sent;
  if (flush_hold_ == 0 || batch_count_ >= batch_limit_) flush();
}

void ChannelEndpoint::flush() {
  if (batch_count_ == 0) return;
  const std::uint32_t count = batch_count_;
  batch_count_ = 0;
  if (peer_closed) {
    batch_.clear();
    return;
  }
  BytesView payload;
  if (count == 1) {
    // A lone message travels in the bare wire format.
    payload = BytesView{batch_.bytes()}.subspan(batch_first_offset_);
  } else {
    frame_.clear();
    frame_.put_u8(kBatchFrameTag);
    frame_.put_varint(count);
    frame_.put_raw(batch_.bytes());
    payload = frame_.bytes();
  }
  try {
    link_->send(payload, count);
  } catch (const Error& e) {
    batch_.clear();
    if (e.kind() != ErrorKind::kTransport) throw;
    peer_closed = true;
    return;
  }
  batch_.clear();
}

ChannelMessage ChannelEndpoint::take_inbound() {
  ChannelMessage message = std::move(inbound_.front());
  inbound_.pop_front();
  if (!is_control_message(message)) ++msgs_received;
  return message;
}

std::optional<ChannelMessage> ChannelEndpoint::poll() {
  if (inbound_.empty()) {
    auto raw = link_->try_recv();
    if (!raw) {
      if (link_->closed()) peer_closed = true;
      return std::nullopt;
    }
    note_arrival();
    decode_frame(*raw, inbound_);
  }
  return take_inbound();
}

std::optional<ChannelMessage> ChannelEndpoint::recv_for(
    std::chrono::milliseconds timeout) {
  if (inbound_.empty()) {
    auto raw = link_->recv_for(timeout);
    if (!raw) return std::nullopt;
    note_arrival();
    decode_frame(*raw, inbound_);
  }
  return take_inbound();
}

void ChannelEndpoint::prime_inbound() {
  if (peer_closed) return;
  auto raw = link_->try_recv();
  if (!raw) {
    if (link_->closed()) peer_closed = true;
    return;
  }
  note_arrival();
  decode_frame(*raw, inbound_);
}

void ChannelEndpoint::discard_pending() {
  batch_count_ = 0;
  batch_.clear();
  inbound_.clear();
}

void ChannelEndpoint::replace_link(transport::LinkPtr link) {
  PIA_REQUIRE(link != nullptr, "replace_link with a null link");
  link_ = std::move(link);
  // Buffered traffic belongs to the dead link's world: an un-flushed batch
  // or an undelivered decode must not leak onto the fresh connection.
  discard_pending();
  peer_closed = false;
  peer_down = false;
  liveness_armed = false;
  rejoin_verified = false;
  rejoin_token.reset();
}

}  // namespace pia::dist
